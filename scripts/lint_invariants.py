#!/usr/bin/env python3
"""Repo-specific invariant lint (runs as the `lint_invariants` ctest).

Checks things no generic tool enforces:

1. Atomic discipline: in any file under src/ that uses std::atomic, every
   atomic access (.load/.store/.exchange/.fetch_*/.compare_exchange_*) must
   (a) pass an explicit std::memory_order argument -- never the seq_cst
       default, which hides the intent, and
   (b) sit next to a `// order:` comment stating the invariant the chosen
       ordering protects. "Next to" means: on the access line, inside the
       same (possibly multi-line) statement, or in the comment block
       immediately above the access cluster -- consecutive atomic-access
       lines share one comment; at most LOOKBACK_BUDGET unrelated lines may
       separate an access from its justification.
2. Hot-path headers stay mutex-free: headers under src/util/, src/core/,
   src/hh/, src/hhh/ must not include <mutex>, <shared_mutex>, or
   <condition_variable> (the engine's control plane lives in src/engine/,
   which may).
3. Every header under src/ starts with #pragma once.
4. Telemetry call-site discipline (src/, tests/, examples/, bench/):
   instruments are registry-owned -- `obs::Counter/Gauge/Histogram` must
   never be constructed directly outside src/obs/ (cache the reference
   `MetricsRegistry::counter()` returns instead), and registrations must
   carry a real metric name: `counter("")` & friends are rejected here
   before the runtime std::invalid_argument backstop fires.
5. Engine hot paths stay batched: files under src/engine/ must not call
   per-record `update(...)` on an algorithm -- popped batches go through
   `update_batch(...)` (the staged LatticeHhh pipeline; byte-identical by
   contract, so there is never a correctness reason to drop back to the
   scalar loop). A deliberate exception carries a `// per-record:` comment
   on the same or the preceding line stating why batching cannot apply.

Exit code 0 when clean, 1 with one line per finding otherwise.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

ACCESS_RE = re.compile(
    r"""(?:\.|->)
        (load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|
         fetch_xor|compare_exchange_weak|compare_exchange_strong)
        \s*\(""",
    re.VERBOSE,
)
ORDER_COMMENT_RE = re.compile(r"//.*\border:")
MEMORY_ORDER_RE = re.compile(r"\bmemory_order(_\w+|::\w+)")

# Unrelated (non-comment, non-atomic-access) lines allowed between an access
# and the `// order:` comment that justifies it.
LOOKBACK_BUDGET = 4
# Hard cap on how far the upward walk goes, whatever the line mix.
LOOKBACK_MAX = 30

HOT_PATH_DIRS = ("util", "core", "hh", "hhh")
FORBIDDEN_INCLUDES = re.compile(
    r"#\s*include\s*<(mutex|shared_mutex|condition_variable)>"
)

# Direct instrument construction (`obs::Counter c;` / `obs::Histogram h{...}`)
# -- pointer/reference declarations (`obs::Counter*`, `obs::Counter&`) don't
# match and stay legal. Constructors are private with a MetricsRegistry
# friend, so this is the readable early finding for what the compiler would
# reject anyway.
OBS_DIRECT_RE = re.compile(r"\bobs::(Counter|Gauge|Histogram)\s+\w+\s*[;{(=]")
# Empty metric name at a registration call site (matched on the raw line,
# before string stripping).
OBS_EMPTY_NAME_RE = re.compile(r"\b(gauge_fn|counter|gauge|histogram)\s*\(\s*\"\s*\"")

# Per-record algorithm update in engine code. `update` followed directly by
# `(` -- update_batch/update_weighted don't match. The member-access prefix
# keeps free functions and declarations out of scope.
PER_RECORD_UPDATE_RE = re.compile(r"(?:\.|->)update\s*\(")
PER_RECORD_WAIVER_RE = re.compile(r"//\s*per-record:")


def strip_strings(line: str) -> str:
    """Blank out string/char literals so tokens inside them don't match."""
    return re.sub(r'"(?:[^"\\]|\\.)*"|\'(?:[^\'\\]|\\.)*\'', '""', line)


def gather_statement(lines: list[str], row: int, col: int) -> str:
    """The full call expression starting at lines[row][col] (an opening
    paren), across physical lines until the parens balance."""
    depth = 0
    out = []
    r, c = row, col
    while r < len(lines):
        segment = strip_strings(lines[r])
        start = c if r == row else 0
        for i in range(start, len(segment)):
            ch = segment[i]
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
                if depth == 0:
                    out.append(segment[start : i + 1])
                    return "\n".join(out)
        out.append(segment[start:])
        r, c = r + 1, 0
    return "\n".join(out)


def has_adjacent_order_comment(lines: list[str], row: int) -> bool:
    """True when an `// order:` comment covers lines[row]'s access: same
    line, or found walking upward through the access cluster (comments and
    other atomic-access lines are free; anything else eats the budget)."""
    if ORDER_COMMENT_RE.search(lines[row]):
        return True
    budget = LOOKBACK_BUDGET
    for back in range(1, LOOKBACK_MAX + 1):
        j = row - back
        if j < 0:
            return False
        stripped = lines[j].strip()
        if stripped.startswith("//"):
            if ORDER_COMMENT_RE.search(stripped):
                return True
            continue  # non-order comment: keep walking, free
        if ACCESS_RE.search(strip_strings(stripped)) or MEMORY_ORDER_RE.search(
            stripped
        ):
            continue  # same access cluster: free
        budget -= 1
        if budget < 0:
            return False
    return False


def lint_atomics(path: Path, rel: str, findings: list[str]) -> None:
    text = path.read_text(encoding="utf-8")
    if "std::atomic" not in text and "memory_order" not in text:
        return
    lines = text.splitlines()
    for row, raw in enumerate(lines):
        code = strip_strings(raw)
        if code.lstrip().startswith("//"):
            continue
        for m in ACCESS_RE.finditer(code):
            # The paren ACCESS_RE matched is the last char of the match.
            call = gather_statement(lines, row, m.end() - 1)
            if not MEMORY_ORDER_RE.search(call):
                findings.append(
                    f"{rel}:{row + 1}: atomic .{m.group(1)}() without an "
                    "explicit std::memory_order argument (seq_cst by default "
                    "-- state the order you mean)"
                )
            if not has_adjacent_order_comment(lines, row):
                findings.append(
                    f"{rel}:{row + 1}: atomic .{m.group(1)}() without an "
                    "adjacent `// order:` justification comment"
                )


def lint_hot_path_header(path: Path, rel: str, findings: list[str]) -> None:
    for row, line in enumerate(path.read_text(encoding="utf-8").splitlines()):
        m = FORBIDDEN_INCLUDES.search(line)
        if m:
            findings.append(
                f"{rel}:{row + 1}: hot-path header includes <{m.group(1)}> "
                "(blocking primitives belong in src/engine/ or a .cpp)"
            )


def lint_obs_call_sites(path: Path, rel: str, findings: list[str]) -> None:
    in_obs = "src/obs/" in rel
    for row, raw in enumerate(path.read_text(encoding="utf-8").splitlines()):
        if raw.lstrip().startswith("//"):
            continue
        if not in_obs:
            m = OBS_DIRECT_RE.search(strip_strings(raw))
            if m:
                findings.append(
                    f"{rel}:{row + 1}: direct obs::{m.group(1)} construction "
                    "outside src/obs/ -- instruments are registry-owned; cache "
                    "the reference MetricsRegistry returns"
                )
        m = OBS_EMPTY_NAME_RE.search(raw)
        if m:
            findings.append(
                f"{rel}:{row + 1}: {m.group(1)}(\"\") registers an unnamed "
                "metric -- every instrument needs a Prometheus family name"
            )


def lint_engine_batching(path: Path, rel: str, findings: list[str]) -> None:
    lines = path.read_text(encoding="utf-8").splitlines()
    for row, raw in enumerate(lines):
        if raw.lstrip().startswith("//"):
            continue
        if not PER_RECORD_UPDATE_RE.search(strip_strings(raw)):
            continue
        waived = PER_RECORD_WAIVER_RE.search(raw) or (
            row > 0 and PER_RECORD_WAIVER_RE.search(lines[row - 1])
        )
        if not waived:
            findings.append(
                f"{rel}:{row + 1}: per-record update() in engine code -- feed "
                "whole batches through update_batch() (byte-identical by "
                "contract), or waive with a `// per-record:` comment"
            )


def lint_pragma_once(path: Path, rel: str, findings: list[str]) -> None:
    for line in path.read_text(encoding="utf-8").splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("//"):
            continue
        if stripped != "#pragma once":
            findings.append(f"{rel}:1: header does not start with #pragma once")
        return


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", type=Path, default=Path(__file__).parent.parent)
    args = ap.parse_args()
    src = args.root / "src"
    if not src.is_dir():
        print(f"lint_invariants: no src/ under {args.root}", file=sys.stderr)
        return 1

    findings: list[str] = []
    for path in sorted(src.rglob("*")):
        if path.suffix not in (".hpp", ".cpp") or not path.is_file():
            continue
        rel = path.relative_to(args.root).as_posix()
        lint_atomics(path, rel, findings)
        lint_obs_call_sites(path, rel, findings)
        if "src/engine/" in rel:
            lint_engine_batching(path, rel, findings)
        if path.suffix == ".hpp":
            lint_pragma_once(path, rel, findings)
            if path.parent.name in HOT_PATH_DIRS:
                lint_hot_path_header(path, rel, findings)

    # Telemetry call-site rules also cover the consumers of src/obs/.
    for extra in ("tests", "examples", "bench"):
        d = args.root / extra
        if not d.is_dir():
            continue
        for path in sorted(d.rglob("*")):
            if path.suffix not in (".hpp", ".cpp") or not path.is_file():
                continue
            rel = path.relative_to(args.root).as_posix()
            lint_obs_call_sites(path, rel, findings)

    if findings:
        print(f"lint_invariants: {len(findings)} finding(s)")
        for f in findings:
            print(f"  {f}")
        return 1
    print("lint_invariants: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
