// Equivalence suite for the batched hot-path update pipeline: feeding a
// stream through HhhAlgorithm::update_batch must leave every algorithm in
// state byte-identical to n per-packet update() calls -- same RNG draw
// sequence, same rotation packets, same counter rosters, same output() and
// estimate() values -- for every lattice mode x backend and for arbitrary
// batch split points. This pins the determinism contract the engine's
// golden digests (test_engine.cpp) rely on.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/windowed.hpp"
#include "hh/count_min.hpp"
#include "hh/count_sketch.hpp"
#include "hh/space_saving.hpp"
#include "hhh/lattice_hhh.hpp"
#include "hhh/trie_hhh.hpp"
#include "net/ipv4.hpp"
#include "trace/trace_gen.hpp"
#include "util/random.hpp"

namespace rhhh {
namespace {

std::uint64_t fnv1a(std::uint64_t h, const char* s) {
  for (; *s != '\0'; ++s) {
    h ^= static_cast<unsigned char>(*s);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// In-order digest of an HHH set: pins candidate iteration order and
/// full-precision numbers, not just set membership.
std::uint64_t digest_set_ordered(const Hierarchy& h, const HhhSet& s) {
  std::uint64_t d = 0xcbf29ce484222325ULL;
  for (const HhhCandidate& c : s) {
    char buf[160];
    std::snprintf(buf, sizeof buf, "%s|%.17g|%.17g|%.17g|%.17g",
                  h.format(c.prefix).c_str(), c.f_est, c.f_lo, c.f_hi, c.c_hat);
    d = fnv1a(d, buf);
  }
  return d;
}

/// Digest of every per-node backend roster in iteration order (for backends
/// exposing for_each) -- byte-identical internal state, not just identical
/// query answers.
template <class Backend>
std::uint64_t digest_nodes(const LatticeHhh<Backend>& alg, std::uint32_t nodes) {
  std::uint64_t d = 0xcbf29ce484222325ULL;
  if constexpr (requires(const Backend& b) {
                  b.for_each([](const Key128&, std::uint64_t, std::uint64_t) {});
                }) {
    for (std::uint32_t v = 0; v < nodes; ++v) {
      alg.instance(v).for_each([&](const Key128& k, std::uint64_t up, std::uint64_t lo) {
        char buf[120];
        std::snprintf(buf, sizeof buf, "%u|%016llx%016llx|%llu|%llu", v,
                      static_cast<unsigned long long>(k.hi),
                      static_cast<unsigned long long>(k.lo),
                      static_cast<unsigned long long>(up),
                      static_cast<unsigned long long>(lo));
        d = fnv1a(d, buf);
      });
    }
  }
  return d;
}

/// A skewed key stream with enough distinct keys to force evictions in the
/// Space-Saving rosters (the order-sensitive backend path).
std::vector<Key128> make_stream(std::size_t n, std::uint64_t seed) {
  std::vector<Key128> keys;
  keys.reserve(n);
  Xoroshiro128 rng(seed);
  ZipfDistribution zipf(50000, 1.1);
  for (std::size_t i = 0; i < n; ++i) {
    const auto z = static_cast<std::uint32_t>(zipf(rng));
    keys.push_back(Key128::from_u32(0x0a000000u + z));
  }
  return keys;
}

/// Feed `keys` through update_batch in randomly sized chunks (including
/// empty and single-record batches) -- fuzzes the split points the engine /
/// windowed monitor would produce.
template <class Alg>
void feed_batched(Alg& alg, const std::vector<Key128>& keys, std::uint64_t seed) {
  Xoroshiro128 rng(seed);
  std::size_t i = 0;
  while (i < keys.size()) {
    std::size_t take = rng.bounded(257);  // 0..256: exercises the n == 0 edge
    if (take > keys.size() - i) take = keys.size() - i;
    alg.update_batch(keys.data() + i, take);
    i += take;
  }
}

template <class Backend>
void expect_equivalent(LatticeMode mode, std::uint64_t chunk_seed) {
  const Hierarchy h = Hierarchy::ipv4_1d(Granularity::kByte);
  LatticeParams lp;
  lp.eps = 0.01;
  lp.delta = 0.05;
  lp.V = 10 * static_cast<std::uint32_t>(h.size());  // 10-RHHH flavor
  lp.seed = 99;
  LatticeHhh<Backend> serial(h, mode, lp);
  LatticeHhh<Backend> batched(h, mode, lp);

  const std::vector<Key128> keys = make_stream(60000, 1234);
  for (const Key128& k : keys) serial.update(k);
  feed_batched(batched, keys, chunk_seed);

  const auto nodes = static_cast<std::uint32_t>(h.size());
  EXPECT_EQ(serial.stream_length(), batched.stream_length());
  EXPECT_EQ(serial.updates_performed(), batched.updates_performed());
  EXPECT_EQ(digest_nodes(serial, nodes), digest_nodes(batched, nodes));
  for (const double theta : {0.001, 0.01, 0.1}) {
    EXPECT_EQ(digest_set_ordered(h, serial.output(theta)),
              digest_set_ordered(h, batched.output(theta)))
        << to_string(mode) << " theta=" << theta;
  }
  // estimate() spot checks on hot and cold prefixes at every lattice level.
  for (std::uint32_t node = 0; node < nodes; ++node) {
    for (const std::uint32_t ip : {0x0a000001u, 0x0a0000ffu, 0x0b010203u}) {
      const Prefix p{node, h.mask_key(node, Key128::from_u32(ip))};
      EXPECT_EQ(serial.estimate(p), batched.estimate(p));
    }
  }
}

TEST(BatchEquivalence, SpaceSavingAllModes) {
  expect_equivalent<SpaceSaving<Key128>>(LatticeMode::kRhhh, 7);
  expect_equivalent<SpaceSaving<Key128>>(LatticeMode::kMst, 8);
  expect_equivalent<SpaceSaving<Key128>>(LatticeMode::kSampledMst, 9);
}

TEST(BatchEquivalence, CountMinAllModes) {
  expect_equivalent<CountMinHh<Key128>>(LatticeMode::kRhhh, 17);
  expect_equivalent<CountMinHh<Key128>>(LatticeMode::kMst, 18);
  expect_equivalent<CountMinHh<Key128>>(LatticeMode::kSampledMst, 19);
}

TEST(BatchEquivalence, CountSketchAllModes) {
  expect_equivalent<CountSketchHh<Key128>>(LatticeMode::kRhhh, 27);
  expect_equivalent<CountSketchHh<Key128>>(LatticeMode::kMst, 28);
  expect_equivalent<CountSketchHh<Key128>>(LatticeMode::kSampledMst, 29);
}

TEST(BatchEquivalence, MultiUpdateFactorRhhh) {
  // r > 1 consumes r draws per packet; batch draw order must still match.
  const Hierarchy h = Hierarchy::ipv4_2d(Granularity::kByte);
  LatticeParams lp;
  lp.eps = 0.02;
  lp.delta = 0.05;
  lp.V = 4 * static_cast<std::uint32_t>(h.size());
  lp.r = 3;
  lp.seed = 5;
  RhhhSpaceSaving serial(h, LatticeMode::kRhhh, lp);
  RhhhSpaceSaving batched(h, LatticeMode::kRhhh, lp);
  const std::vector<Key128> keys = make_stream(30000, 77);
  for (const Key128& k : keys) serial.update(k);
  feed_batched(batched, keys, 42);
  EXPECT_EQ(serial.updates_performed(), batched.updates_performed());
  EXPECT_EQ(digest_nodes(serial, static_cast<std::uint32_t>(h.size())),
            digest_nodes(batched, static_cast<std::uint32_t>(h.size())));
  EXPECT_EQ(digest_set_ordered(h, serial.output(0.01)),
            digest_set_ordered(h, batched.output(0.01)));
}

TEST(BatchEquivalence, PrefetchDistanceNeverChangesResults) {
  // prefetch_distance is a pure performance knob: every setting (off, tiny,
  // default, huge) must produce the identical roster digest.
  const Hierarchy h = Hierarchy::ipv4_1d(Granularity::kByte);
  const std::vector<Key128> keys = make_stream(40000, 9);
  std::uint64_t reference = 0;
  bool first = true;
  for (const std::uint32_t dist : {0u, 1u, 4u, 8u, 16u, 64u}) {
    LatticeParams lp;
    lp.eps = 0.01;
    lp.delta = 0.05;
    lp.V = 10 * static_cast<std::uint32_t>(h.size());
    lp.seed = 31;
    lp.prefetch_distance = dist;
    RhhhSpaceSaving alg(h, LatticeMode::kRhhh, lp);
    feed_batched(alg, keys, 55);
    const std::uint64_t d =
        digest_nodes(alg, static_cast<std::uint32_t>(h.size())) ^
        digest_set_ordered(h, alg.output(0.01));
    if (first) {
      reference = d;
      first = false;
    } else {
      EXPECT_EQ(d, reference) << "prefetch_distance=" << dist;
    }
  }
}

TEST(BatchEquivalence, BaseClassFallbackLoop) {
  // Algorithms that do not override update_batch get the base-class loop;
  // it must be exactly n update() calls.
  const Hierarchy h = Hierarchy::ipv4_1d(Granularity::kByte);
  TrieHhh serial(h, AncestryMode::kFull, 0.01);
  TrieHhh batched(h, AncestryMode::kFull, 0.01);
  const std::vector<Key128> keys = make_stream(20000, 3);
  for (const Key128& k : keys) serial.update(k);
  HhhAlgorithm& base = batched;  // dispatch through the virtual
  feed_batched(base, keys, 11);
  EXPECT_EQ(serial.stream_length(), batched.stream_length());
  EXPECT_EQ(digest_set_ordered(h, serial.output(0.01)),
            digest_set_ordered(h, batched.output(0.01)));
}

TEST(BatchEquivalence, WindowedMonitorRotatesOnTheSamePacket) {
  // Batches that straddle epoch boundaries must rotate on exactly the same
  // packet as the per-packet path: epochs_completed, the live partial epoch,
  // and every sealed window digest must agree.
  MonitorConfig cfg;
  cfg.hierarchy = HierarchyKind::kIpv4OneDimBytes;
  cfg.eps = 0.05;
  cfg.delta = 0.1;
  cfg.seed = 7;
  WindowedHhhMonitor serial(cfg, 2000, 3);
  WindowedHhhMonitor batched(cfg, 2000, 3);
  const std::vector<Key128> keys = make_stream(13777, 21);  // partial last epoch
  for (const Key128& k : keys) serial.update(k);
  feed_batched(batched, keys, 67);
  EXPECT_EQ(serial.epochs_completed(), batched.epochs_completed());
  EXPECT_EQ(serial.packets_in_epoch(), batched.packets_in_epoch());
  const Hierarchy& h = serial.hierarchy();
  EXPECT_EQ(digest_set_ordered(h, serial.current(0.01)),
            digest_set_ordered(h, batched.current(0.01)));
  EXPECT_EQ(digest_set_ordered(h, serial.previous(0.01)),
            digest_set_ordered(h, batched.previous(0.01)));
  const Prefix hot{h.bottom(), Key128::from_u32(0x0a000001u)};
  const auto ts = serial.trend(hot);
  const auto tb = batched.trend(hot);
  ASSERT_EQ(ts.size(), tb.size());
  for (std::size_t i = 0; i < ts.size(); ++i) {
    EXPECT_EQ(ts[i].stream_length, tb[i].stream_length);
    EXPECT_EQ(ts[i].estimate, tb[i].estimate);
  }
}

TEST(BatchEquivalence, WeightedUpdatesInterleaveWithBatches) {
  // update_weighted stays consistent when interleaved with batched ingest:
  // both orderings consume the same draw sequence.
  const Hierarchy h = Hierarchy::ipv4_1d(Granularity::kByte);
  LatticeParams lp;
  lp.eps = 0.01;
  lp.delta = 0.05;
  lp.V = 10 * static_cast<std::uint32_t>(h.size());
  lp.seed = 13;
  RhhhSpaceSaving serial(h, LatticeMode::kRhhh, lp);
  RhhhSpaceSaving batched(h, LatticeMode::kRhhh, lp);
  const std::vector<Key128> keys = make_stream(8000, 31);
  const Key128 heavy = Key128::from_u32(0x0a000002u);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    serial.update(keys[i]);
    if (i % 1000 == 999) serial.update_weighted(heavy, 5);
  }
  for (std::size_t i = 0; i < keys.size(); i += 1000) {
    batched.update_batch(keys.data() + i, 1000);
    batched.update_weighted(heavy, 5);
  }
  EXPECT_EQ(serial.stream_length(), batched.stream_length());
  EXPECT_EQ(digest_nodes(serial, static_cast<std::uint32_t>(h.size())),
            digest_nodes(batched, static_cast<std::uint32_t>(h.size())));
}

TEST(BatchEquivalence, PrefetchableBackendRoster) {
  // The hash/probe split must be detected for the three pipelined backends
  // (and drive the prefetching apply loop), and its absence tolerated.
  static_assert(LatticeHhh<SpaceSaving<Key128>>::backend_prefetchable());
  static_assert(LatticeHhh<CountMinHh<Key128>>::backend_prefetchable());
  static_assert(LatticeHhh<CountSketchHh<Key128>>::backend_prefetchable());
}

}  // namespace
}  // namespace rhhh
