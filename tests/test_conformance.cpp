// Statistical conformance suite: the paper's accuracy (Theorem 6.11) and
// coverage (Theorem 6.15) guarantees, checked against exact ground truth
// (eval/ground_truth) on seeded heavy-tailed Zipf traces (trace_gen), at
// several (eps, theta, V) operating points, for the full algorithm roster:
// the randomized lattice modes (RHHH at V = H and V = 10H, Sampled-MST),
// the deterministic lattice baseline (MST), and the deterministic
// trie-based comparators (Partial/Full Ancestry).
//
// What the theorems promise once the stream passes the convergence bound
// psi (Theorem 6.17):
//   * accuracy: each returned candidate's estimate is within eps * N of the
//     exact frequency, w.p. >= 1 - delta  (deterministic algorithms: always);
//   * coverage: each prefix whose exact conditioned frequency w.r.t. the
//     returned set reaches theta * N is returned, w.p. >= 1 - delta
//     (deterministic algorithms: always).
//
// So the deterministic rows assert *zero* errors, and the randomized rows
// assert the empirical violation ratio stays within delta plus a small
// finite-sample margin. Seeds are fixed: this runs as a normal ctest, no
// flakiness budget needed.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "core/monitor.hpp"
#include "eval/ground_truth.hpp"
#include "eval/metrics.hpp"
#include "hhh/lattice_hhh.hpp"
#include "obs/health.hpp"
#include "trace/trace_gen.hpp"

namespace rhhh {
namespace {

/// Finite-sample slack on top of delta for the randomized ratio checks:
/// with tens of candidates per point, one unlucky candidate moves the
/// empirical ratio by a few percent.
constexpr double kMargin = 0.08;

struct OperatingPoint {
  const char* label;
  HierarchyKind hierarchy;
  AlgorithmKind randomized;  ///< the randomized mode under test at this point
  double eps;
  double delta;
  std::uint32_t V;  ///< 0 = V = H
  double theta;
  std::uint64_t n;
  const char* trace;
  std::uint64_t seed;
};

const OperatingPoint kPoints[] = {
    // 1D bytes (H = 5): the cheapest hierarchy, tight eps.
    {"1d_rhhh_VH", HierarchyKind::kIpv4OneDimBytes, AlgorithmKind::kRhhh, 0.04,
     0.05, 0, 0.10, 400000, "chicago16", 11},
    // V = 10H: the paper's throughput configuration; psi grows with V, so
    // the stream is longer.
    {"1d_rhhh_V10H", HierarchyKind::kIpv4OneDimBytes, AlgorithmKind::kRhhh, 0.04,
     0.05, 50, 0.05, 1200000, "sanjose14", 12},
    // The Section 1 strawman at V = 5H.
    {"1d_sampledmst_V5H", HierarchyKind::kIpv4OneDimBytes,
     AlgorithmKind::kSampledMst, 0.04, 0.05, 25, 0.10, 600000, "chicago15", 13},
    // 2D bytes (H = 25): the paper's main evaluated hierarchy.
    {"2d_rhhh_VH", HierarchyKind::kIpv4TwoDimBytes, AlgorithmKind::kRhhh, 0.05,
     0.05, 0, 0.10, 500000, "sanjose13", 14},
};

class Conformance : public ::testing::TestWithParam<int> {};

TEST_P(Conformance, TheoremBoundsHoldAtOperatingPoint) {
  const OperatingPoint& pt = kPoints[GetParam()];
  SCOPED_TRACE(pt.label);
  const Hierarchy h = make_hierarchy(pt.hierarchy);

  // Seeded Zipf trace mapped through the hierarchy, plus exact truth.
  TraceConfig tc = trace_preset(pt.trace);
  tc.seed = pt.seed;
  TraceGenerator gen(tc);
  ExactHhh truth(h);
  std::vector<Key128> keys;
  keys.reserve(pt.n);
  for (std::uint64_t i = 0; i < pt.n; ++i) {
    keys.push_back(h.key_of(gen.next()));
    truth.add(keys.back());
  }

  MonitorConfig base;
  base.hierarchy = pt.hierarchy;
  base.eps = pt.eps;
  base.delta = pt.delta;
  base.V = pt.V;
  base.seed = pt.seed;

  const AlgorithmKind roster[] = {pt.randomized, AlgorithmKind::kMst,
                                  AlgorithmKind::kPartialAncestry,
                                  AlgorithmKind::kFullAncestry};
  for (const AlgorithmKind kind : roster) {
    MonitorConfig cfg = base;
    cfg.algorithm = kind;
    if (kind == AlgorithmKind::kPartialAncestry ||
        kind == AlgorithmKind::kFullAncestry || kind == AlgorithmKind::kMst) {
      cfg.V = 0;  // V is a randomized-lattice parameter only
    }
    const std::unique_ptr<HhhAlgorithm> alg = make_algorithm(h, cfg);
    SCOPED_TRACE(std::string(alg->name()));

    for (const Key128& k : keys) alg->update(k);
    ASSERT_EQ(alg->stream_length(), pt.n);
    const bool randomized = alg->psi() > 0.0;
    if (randomized) {
      // The theorems only apply past the convergence bound; the operating
      // points are sized so every stream comfortably clears it.
      ASSERT_GT(static_cast<double>(pt.n), alg->psi())
          << "operating point mis-sized: N below psi";
    }

    const HhhSet out = alg->output(pt.theta);
    ASSERT_GT(out.size(), 0u);

    // Theorem 6.11 (accuracy): |f - f_est| <= eps * N.
    const AccuracyReport acc = accuracy_errors(truth, out, pt.eps);
    // Theorem 6.15 (coverage): no heavy conditioned prefix is missed.
    const CoverageReport cov = coverage_errors(truth, out, pt.theta);
    if (randomized) {
      EXPECT_LE(acc.ratio(), pt.delta + kMargin)
          << acc.errors << "/" << acc.candidates << " accuracy violations";
      EXPECT_LE(cov.ratio(), pt.delta + kMargin)
          << cov.misses << "/" << cov.candidates << " coverage misses";
    } else {
      EXPECT_EQ(acc.errors, 0u) << "deterministic algorithm broke the "
                                   "eps*N accuracy bound";
      EXPECT_EQ(cov.misses, 0u) << "deterministic algorithm missed a heavy "
                                   "conditioned prefix";
    }

    // The theorem-shaped per-candidate check for the lattice modes: the
    // estimate sits within eps_a * N plus the 2 Z sqrt(NV) sampling slack
    // of Theorem 6.11 (a *tighter* additive bound than eps * N past psi).
    if (const auto* lattice = dynamic_cast<const RhhhSpaceSaving*>(alg.get())) {
      std::vector<Prefix> prefixes;
      prefixes.reserve(out.size());
      for (const HhhCandidate& c : out) prefixes.push_back(c.prefix);
      const std::vector<std::uint64_t> exact = truth.frequencies(prefixes);
      const double bound = lattice->eps_a() * static_cast<double>(pt.n) +
                           lattice->correction();
      std::size_t violations = 0;
      for (std::size_t i = 0; i < prefixes.size(); ++i) {
        const double err =
            std::abs(out[i].f_est - static_cast<double>(exact[i]));
        if (err > bound) ++violations;
      }
      if (randomized) {
        EXPECT_LE(static_cast<double>(violations) /
                      static_cast<double>(prefixes.size()),
                  pt.delta + kMargin)
            << violations << "/" << prefixes.size()
            << " exceed eps_a*N + 2Z*sqrt(NV)";
      } else {
        EXPECT_EQ(violations, 0u);
      }
    }
  }
}

/// Health-layer tie-in: the per-window AccuracyCertificate's self-reported
/// additive bound -- (eps_empirical + sampling_slack) * N, recomputed from
/// nothing but the backends' live min-counts -- must dominate the max
/// estimation error actually observed against exact ground truth, at every
/// operating point, for both the randomized mode and the deterministic MST
/// baseline (where the sampling slack is zero and dominance is
/// unconditional). Seeds are fixed, so the randomized rows are exact
/// reruns, not a flakiness budget.
TEST_P(Conformance, CertificateBoundDominatesObservedError) {
  const OperatingPoint& pt = kPoints[GetParam()];
  SCOPED_TRACE(pt.label);
  const Hierarchy h = make_hierarchy(pt.hierarchy);

  TraceConfig tc = trace_preset(pt.trace);
  tc.seed = pt.seed;
  TraceGenerator gen(tc);
  ExactHhh truth(h);
  std::vector<Key128> keys;
  keys.reserve(pt.n);
  for (std::uint64_t i = 0; i < pt.n; ++i) {
    keys.push_back(h.key_of(gen.next()));
    truth.add(keys.back());
  }

  MonitorConfig base;
  base.hierarchy = pt.hierarchy;
  base.eps = pt.eps;
  base.delta = pt.delta;
  base.V = pt.V;
  base.seed = pt.seed;

  const AlgorithmKind roster[] = {pt.randomized, AlgorithmKind::kMst};
  for (const AlgorithmKind kind : roster) {
    MonitorConfig cfg = base;
    cfg.algorithm = kind;
    if (kind == AlgorithmKind::kMst) cfg.V = 0;
    const std::unique_ptr<HhhAlgorithm> alg = make_algorithm(h, cfg);
    SCOPED_TRACE(std::string(alg->name()));
    const auto* lattice = dynamic_cast<const RhhhSpaceSaving*>(alg.get());
    ASSERT_NE(lattice, nullptr);

    for (const Key128& k : keys) alg->update(k);
    const obs::AccuracyCertificate cert =
        obs::certify_window({lattice}, /*epoch=*/1, /*drops=*/0,
                            /*stamped_ns=*/0);
    EXPECT_EQ(cert.stream_length, pt.n);
    EXPECT_EQ(cert.epoch, 1u);
    EXPECT_TRUE(cert.converged) << "operating point mis-sized: N below psi";
    EXPECT_DOUBLE_EQ(cert.eps_configured, lattice->eps_a());
    if (kind == AlgorithmKind::kMst) {
      EXPECT_EQ(cert.sampling_slack, 0.0) << "MST has no sampling variance";
    } else {
      EXPECT_GT(cert.sampling_slack, 0.0);
    }

    // The certified bound vs the worst observed error over the output set.
    const HhhSet out = alg->output(pt.theta);
    ASSERT_GT(out.size(), 0u);
    std::vector<Prefix> prefixes;
    prefixes.reserve(out.size());
    for (const HhhCandidate& c : out) prefixes.push_back(c.prefix);
    const std::vector<std::uint64_t> exact = truth.frequencies(prefixes);
    double max_err = 0.0;
    for (std::size_t i = 0; i < prefixes.size(); ++i) {
      max_err = std::max(
          max_err, std::abs(out[i].f_est - static_cast<double>(exact[i])));
    }
    const double certified = (cert.eps_empirical + cert.sampling_slack) *
                             static_cast<double>(cert.stream_length);
    EXPECT_GE(certified, max_err)
        << "certificate claims a tighter bound than reality: certified "
        << certified << " < observed max error " << max_err;

    // The empirical eps is itself recomputable from the public probes:
    // max over nodes of scale * min-count, over N.
    const std::vector<BackendProbe> probes = lattice->health_probes();
    ASSERT_EQ(probes.size(), lattice->H());
    double expect_eps = 0.0;
    for (const BackendProbe& p : probes) {
      expect_eps = std::max(expect_eps,
                            lattice->scale() * static_cast<double>(p.min_count) /
                                static_cast<double>(pt.n));
    }
    EXPECT_DOUBLE_EQ(cert.eps_empirical, expect_eps);
  }

  // Cross-shard fold: splitting the same stream over two shards and
  // certifying the pair must account for every node's untracked mass by
  // ADDING min-counts across shards (the merged structure's bound), with N
  // the drop-folded sum.
  MonitorConfig cfg = base;
  cfg.algorithm = pt.randomized;
  const std::unique_ptr<HhhAlgorithm> a = make_algorithm(h, cfg);
  cfg.seed = pt.seed + 1;
  const std::unique_ptr<HhhAlgorithm> b = make_algorithm(h, cfg);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    (i % 2 == 0 ? a : b)->update(keys[i]);
  }
  const auto* sa = dynamic_cast<const RhhhSpaceSaving*>(a.get());
  const auto* sb = dynamic_cast<const RhhhSpaceSaving*>(b.get());
  ASSERT_NE(sa, nullptr);
  ASSERT_NE(sb, nullptr);
  const std::uint64_t drops = 1000;
  const obs::AccuracyCertificate pair =
      obs::certify_window({sa, sb}, /*epoch=*/2, drops, /*stamped_ns=*/0);
  EXPECT_EQ(pair.stream_length, pt.n + drops);
  EXPECT_EQ(pair.drops, drops);
  const std::vector<BackendProbe> pa = sa->health_probes();
  const std::vector<BackendProbe> pb = sb->health_probes();
  ASSERT_EQ(pa.size(), pb.size());
  double expect_eps = 0.0;
  for (std::size_t d = 0; d < pa.size(); ++d) {
    const double untracked =
        sa->scale() * static_cast<double>(pa[d].min_count) +
        sb->scale() * static_cast<double>(pb[d].min_count);
    expect_eps =
        std::max(expect_eps, untracked / static_cast<double>(pt.n + drops));
  }
  EXPECT_DOUBLE_EQ(pair.eps_empirical, expect_eps);
}

INSTANTIATE_TEST_SUITE_P(OperatingPoints, Conformance,
                         ::testing::Range(0, static_cast<int>(std::size(kPoints))),
                         [](const auto& info) {
                           return std::string(kPoints[info.param].label);
                         });

}  // namespace
}  // namespace rhhh
