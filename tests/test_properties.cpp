// Cross-cutting property and invariant tests: weighted/unitary equivalence,
// determinism under seeding, output-set invariants, exhaustive lattice
// algebra, and self-consistency of the exact ground truth -- the "laws"
// the system must satisfy on arbitrary inputs rather than hand-picked ones.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "eval/ground_truth.hpp"
#include "eval/metrics.hpp"
#include "hhh/lattice_hhh.hpp"
#include "hhh/trie_hhh.hpp"
#include "net/ipv4.hpp"
#include "trace/trace_gen.hpp"
#include "util/random.hpp"

namespace rhhh {
namespace {

// -------------------------------------------- weighted == repeated unit ----

/// For the deterministic MST lattice, update_weighted(k, w) must be
/// indistinguishable from w repetitions of update(k).
TEST(WeightedEquivalence, MstWeightedEqualsRepeatedUnits) {
  const Hierarchy h = Hierarchy::ipv4_2d(Granularity::kByte);
  LatticeParams lp;
  lp.eps = 0.02;
  RhhhSpaceSaving a(h, LatticeMode::kMst, lp);
  RhhhSpaceSaving b(h, LatticeMode::kMst, lp);
  Xoroshiro128 rng(31);
  for (int i = 0; i < 3000; ++i) {
    const Key128 k = Key128::from_pair(rng.bounded(64), rng.bounded(64));
    const std::uint64_t w = 1 + rng.bounded(9);
    a.update_weighted(k, w);
    for (std::uint64_t j = 0; j < w; ++j) b.update(k);
  }
  ASSERT_EQ(a.stream_length(), b.stream_length());
  const HhhSet oa = a.output(0.01);
  const HhhSet ob = b.output(0.01);
  ASSERT_EQ(oa.size(), ob.size());
  for (const HhhCandidate& c : oa) {
    const HhhCandidate* d = ob.find(c.prefix);
    ASSERT_NE(d, nullptr) << h.format(c.prefix);
    EXPECT_DOUBLE_EQ(c.f_hi, d->f_hi);
    EXPECT_DOUBLE_EQ(c.f_lo, d->f_lo);
  }
}

/// Same law for the tries (also deterministic).
TEST(WeightedEquivalence, TrieWeightedEqualsRepeatedUnits) {
  const Hierarchy h = Hierarchy::ipv4_1d(Granularity::kByte);
  for (const AncestryMode mode : {AncestryMode::kFull, AncestryMode::kPartial}) {
    TrieHhh a(h, mode, 0.01);
    TrieHhh b(h, mode, 0.01);
    Xoroshiro128 rng(32);
    for (int i = 0; i < 2000; ++i) {
      const Key128 k = Key128::from_u32(rng.bounded(512) * 7919u);
      const std::uint64_t w = 1 + rng.bounded(4);
      a.update_weighted(k, w);
      for (std::uint64_t j = 0; j < w; ++j) b.update(k);
    }
    ASSERT_EQ(a.stream_length(), b.stream_length()) << to_string(mode);
    const HhhSet oa = a.output(0.02);
    const HhhSet ob = b.output(0.02);
    EXPECT_EQ(oa.size(), ob.size()) << to_string(mode);
    for (const HhhCandidate& c : oa) {
      EXPECT_TRUE(ob.contains(c.prefix)) << to_string(mode) << " " << h.format(c.prefix);
    }
  }
}

// ---------------------------------------------------------- determinism ----

TEST(Determinism, RhhhSameSeedSameOutput) {
  const Hierarchy h = Hierarchy::ipv4_2d(Granularity::kByte);
  LatticeParams lp;
  lp.eps = 0.05;
  lp.seed = 77;
  RhhhSpaceSaving a(h, LatticeMode::kRhhh, lp);
  RhhhSpaceSaving b(h, LatticeMode::kRhhh, lp);
  TraceGenerator ga(trace_preset("chicago15"));
  TraceGenerator gb(trace_preset("chicago15"));
  for (int i = 0; i < 100000; ++i) {
    a.update(h.key_of(ga.next()));
    b.update(h.key_of(gb.next()));
  }
  EXPECT_EQ(a.updates_performed(), b.updates_performed());
  const HhhSet oa = a.output(0.05);
  const HhhSet ob = b.output(0.05);
  ASSERT_EQ(oa.size(), ob.size());
  for (const HhhCandidate& c : oa) EXPECT_TRUE(ob.contains(c.prefix));
}

TEST(Determinism, DifferentSeedsDifferentSampling) {
  const Hierarchy h = Hierarchy::ipv4_2d(Granularity::kByte);
  LatticeParams lp;
  lp.eps = 0.05;
  lp.seed = 1;
  LatticeParams lp2 = lp;
  lp2.seed = 2;
  lp.V = lp2.V = 250;  // sparse sampling so divergence is visible
  RhhhSpaceSaving a(h, LatticeMode::kRhhh, lp);
  RhhhSpaceSaving b(h, LatticeMode::kRhhh, lp2);
  for (int i = 0; i < 10000; ++i) {
    a.update(Key128::from_pair(1, 2));
    b.update(Key128::from_pair(1, 2));
  }
  EXPECT_NE(a.instance(0).total(), b.instance(0).total());
}

// ------------------------------------------------- output-set invariants ----

/// Every returned candidate must carry c_hat >= theta*N, f_lo <= f_est <=
/// f_hi, and a prefix whose key is properly masked for its node.
class OutputInvariants : public ::testing::TestWithParam<int> {};

TEST_P(OutputInvariants, HoldOnRandomStreams) {
  const Hierarchy h = Hierarchy::ipv4_2d(Granularity::kByte);
  LatticeParams lp;
  lp.eps = 0.02;
  lp.seed = static_cast<std::uint64_t>(GetParam());
  RhhhSpaceSaving alg(h, GetParam() % 2 == 0 ? LatticeMode::kRhhh : LatticeMode::kMst,
                      lp);
  TraceGenerator gen(trace_preset(trace_preset_names()[static_cast<std::size_t>(
      GetParam()) % 4]));
  for (int i = 0; i < 150000; ++i) alg.update(h.key_of(gen.next()));
  const double theta = 0.03;
  const HhhSet out = alg.output(theta);
  const double thresh = theta * static_cast<double>(alg.stream_length());
  for (const HhhCandidate& c : out) {
    EXPECT_GE(c.c_hat, thresh);
    EXPECT_LE(c.f_lo, c.f_hi);
    EXPECT_GE(c.f_est, c.f_lo);
    EXPECT_LE(c.f_est, c.f_hi);
    EXPECT_EQ(c.prefix.key, h.mask_key(c.prefix.node, c.prefix.key))
        << "keys must be pre-masked";
  }
}

INSTANTIATE_TEST_SUITE_P(Streams, OutputInvariants, ::testing::Range(0, 8));

TEST(OutputInvariants, ThetaAboveOneYieldsEmptyForDeterministic) {
  const Hierarchy h = Hierarchy::ipv4_1d(Granularity::kByte);
  auto mst = make_mst(h);
  for (int i = 0; i < 1000; ++i) mst->update(Key128::from_u32(1));
  EXPECT_TRUE(mst->output(1.01).empty());
  EXPECT_EQ(mst->output(1.0).size(), 1u);  // exactly-N prefix chain head
}

/// Lowering theta never removes... (not true in general for conditioned
/// sets) -- but the *fully-general* prefix (*,*) must appear whenever the
/// uncovered residue reaches theta*N, and output(0) contains every tracked
/// prefix's maximal chain. Check the cheap directional property: the
/// output at theta=0 is a superset of the output at any higher theta for
/// deterministic MST on a fixed stream.
TEST(OutputInvariants, ZeroThetaIsSuperset) {
  const Hierarchy h = Hierarchy::ipv4_1d(Granularity::kByte);
  LatticeParams lp;
  lp.eps = 0.01;
  RhhhSpaceSaving mst(h, LatticeMode::kMst, lp);
  TraceGenerator gen(trace_preset("sanjose13"));
  for (int i = 0; i < 50000; ++i) mst.update(h.key_of(gen.next()));
  const HhhSet all = mst.output(0.0);
  for (const HhhCandidate& c : mst.output(0.05)) {
    EXPECT_TRUE(all.contains(c.prefix)) << h.format(c.prefix);
  }
}

// ------------------------------------------------ exact-truth consistency ----

/// Definition 8 self-consistency on random streams: every member of the
/// exact HHH set has exact conditioned frequency >= theta*N w.r.t. the
/// *final* set minus more-general members... the directly checkable law:
/// no heavy prefix outside the set still has C_{q|P} >= theta*N (zero
/// coverage errors against itself), and every member's recorded c_hat is
/// its conditioned frequency at admission (>= theta*N).
class TruthConsistency : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TruthConsistency, ComputeIsSelfConsistent) {
  const Hierarchy h = Hierarchy::ipv4_2d(Granularity::kByte);
  ExactHhh truth(h);
  Xoroshiro128 rng(GetParam());
  // Structured random stream: a few planted aggregates + noise.
  const int kN = 30000;
  for (int i = 0; i < kN; ++i) {
    const std::uint32_t roll = rng.bounded(10);
    if (roll < 3) {
      truth.add(Key128::from_pair(ipv4(10, 1, 0, 0) | rng.bounded(1 << 10),
                                  ipv4(99, 9, 9, 9)));
    } else if (roll < 5) {
      truth.add(Key128::from_pair(ipv4(20, 2, 2, 2),
                                  ipv4(50, 5, 0, 0) | rng.bounded(1 << 12)));
    } else {
      truth.add(Key128::from_pair(rng(), static_cast<std::uint32_t>(rng())));
    }
  }
  const double theta = 0.05;
  const HhhSet set = truth.compute(theta);
  const double thresh = theta * static_cast<double>(truth.stream_length());
  for (const HhhCandidate& c : set) {
    EXPECT_GE(c.c_hat, thresh) << h.format(c.prefix);
    EXPECT_GE(c.f_est, c.c_hat) << "f >= conditioned frequency";
  }
  // Zero coverage errors against itself (Definition 9 coverage with the
  // exact conditioned frequencies).
  const CoverageReport rep = coverage_errors(truth, set, theta);
  EXPECT_EQ(rep.misses, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TruthConsistency,
                         ::testing::Values(3, 17, 2024, 99999));

// ------------------------------------------------- exhaustive lattice laws ----

/// Over the full 5x5 byte lattice with a fixed underlying key: glb really
/// is the *greatest* lower bound (any common descendant is generalized by
/// it), checked for all node pairs exhaustively.
TEST(LatticeLaws, GlbIsGreatestExhaustive) {
  const Hierarchy h = Hierarchy::ipv4_2d(Granularity::kByte);
  const Key128 key = Key128::from_pair(ipv4(1, 2, 3, 4), ipv4(5, 6, 7, 8));
  for (std::uint32_t a = 0; a < h.size(); ++a) {
    for (std::uint32_t b = 0; b < h.size(); ++b) {
      const Prefix pa{a, h.mask_key(a, key)};
      const Prefix pb{b, h.mask_key(b, key)};
      const auto q = h.glb(pa, pb);
      ASSERT_TRUE(q.has_value());
      EXPECT_TRUE(h.generalizes(pa, *q));
      EXPECT_TRUE(h.generalizes(pb, *q));
      for (std::uint32_t c = 0; c < h.size(); ++c) {
        const Prefix pc{c, h.mask_key(c, key)};
        if (h.generalizes(pa, pc) && h.generalizes(pb, pc)) {
          EXPECT_TRUE(h.generalizes(*q, pc)) << "common descendant not under glb";
        }
      }
    }
  }
}

/// Node levels partition the lattice and parents sit exactly one level up
/// along every generalization cover relation.
TEST(LatticeLaws, LevelsArePartition) {
  for (const Hierarchy& h :
       {Hierarchy::ipv4_2d(Granularity::kByte), Hierarchy::ipv4_1d(Granularity::kBit),
        Hierarchy::ipv6_1d(Granularity::kByte)}) {
    std::size_t total = 0;
    for (int l = 0; l <= h.depth(); ++l) {
      for (const std::uint32_t n : h.nodes_at_level(l)) {
        EXPECT_EQ(h.node(n).level, l);
        ++total;
      }
    }
    EXPECT_EQ(total, h.size());
  }
}

/// The sum of instance totals equals the number of performed updates for
/// every lattice mode (no update lost or double-counted).
TEST(LatticeLaws, UpdateAccounting) {
  const Hierarchy h = Hierarchy::ipv4_2d(Granularity::kByte);
  for (const LatticeMode mode :
       {LatticeMode::kRhhh, LatticeMode::kMst, LatticeMode::kSampledMst}) {
    LatticeParams lp;
    lp.eps = 0.05;
    lp.V = mode == LatticeMode::kMst ? 0 : 100;
    RhhhSpaceSaving alg(h, mode, lp);
    TraceGenerator gen(trace_preset("chicago16"));
    for (int i = 0; i < 50000; ++i) alg.update(h.key_of(gen.next()));
    std::uint64_t sum = 0;
    for (std::uint32_t d = 0; d < h.size(); ++d) sum += alg.instance(d).total();
    EXPECT_EQ(sum, alg.updates_performed()) << to_string(mode);
  }
}

}  // namespace
}  // namespace rhhh
