// Tests for the prefix lattice: sizes (H values the paper quotes), masks,
// levels, the generalization partial order (with algebraic property checks),
// glb (Definition 12), canonical parent chains and prefix formatting
// (Table 1's lattice is exercised directly).
#include <gtest/gtest.h>

#include <set>

#include "hierarchy/hierarchy.hpp"
#include "net/ipv4.hpp"
#include "util/random.hpp"

namespace rhhh {
namespace {

TEST(HierarchyShape, PaperSizes) {
  EXPECT_EQ(Hierarchy::ipv4_1d(Granularity::kByte).size(), 5u);    // H = 5
  EXPECT_EQ(Hierarchy::ipv4_1d(Granularity::kBit).size(), 33u);    // H = 33
  EXPECT_EQ(Hierarchy::ipv4_2d(Granularity::kByte).size(), 25u);   // H = 25
  EXPECT_EQ(Hierarchy::ipv6_1d(Granularity::kByte).size(), 17u);
  EXPECT_EQ(Hierarchy::ipv6_1d(Granularity::kNibble).size(), 33u);
  EXPECT_EQ(Hierarchy::ipv4_2d(Granularity::kNibble).size(), 81u);
}

TEST(HierarchyShape, DepthAndLevels) {
  const Hierarchy h1 = Hierarchy::ipv4_1d(Granularity::kByte);
  EXPECT_EQ(h1.depth(), 4);
  EXPECT_EQ(h1.num_levels(), 5);
  const Hierarchy h2 = Hierarchy::ipv4_2d(Granularity::kByte);
  EXPECT_EQ(h2.depth(), 8);
  // Level sizes of the 5x5 lattice: 1,2,3,4,5,4,3,2,1.
  const int expected[] = {1, 2, 3, 4, 5, 4, 3, 2, 1};
  std::size_t total = 0;
  for (int l = 0; l <= h2.depth(); ++l) {
    EXPECT_EQ(h2.nodes_at_level(l).size(), static_cast<std::size_t>(expected[l])) << l;
    total += h2.nodes_at_level(l).size();
  }
  EXPECT_EQ(total, h2.size());
}

TEST(HierarchyShape, BottomAndTop) {
  const Hierarchy h = Hierarchy::ipv4_2d(Granularity::kByte);
  EXPECT_EQ(h.node(h.bottom()).level, 0);
  EXPECT_EQ(h.node(h.top()).level, h.depth());
  EXPECT_EQ(h.node(h.bottom()).mask, (Key128{0, ~0ull}));
  EXPECT_EQ(h.node(h.top()).mask, (Key128{}));
}

TEST(HierarchyShape, MasksOneDimBytes) {
  const Hierarchy h = Hierarchy::ipv4_1d(Granularity::kByte);
  EXPECT_EQ(h.node(h.node_index(0)).mask.lo, 0xffffffffull);
  EXPECT_EQ(h.node(h.node_index(1)).mask.lo, 0xffffff00ull);
  EXPECT_EQ(h.node(h.node_index(2)).mask.lo, 0xffff0000ull);
  EXPECT_EQ(h.node(h.node_index(3)).mask.lo, 0xff000000ull);
  EXPECT_EQ(h.node(h.node_index(4)).mask.lo, 0u);
}

TEST(HierarchyShape, MasksTwoDimCombineSrcDst) {
  const Hierarchy h = Hierarchy::ipv4_2d(Granularity::kByte);
  // (src /16, dst /24): src bits live in [32,64), dst in [0,32).
  const auto n = h.node_index(2, 1);
  EXPECT_EQ(h.node(n).mask.lo, 0xffff0000ffffff00ull);
  EXPECT_EQ(h.node(n).len[0], 16);
  EXPECT_EQ(h.node(n).len[1], 24);
}

TEST(HierarchyShape, Ipv6Masks) {
  const Hierarchy h = Hierarchy::ipv6_1d(Granularity::kByte);
  EXPECT_EQ(h.node(h.node_index(0)).mask, (Key128{~0ull, ~0ull}));
  EXPECT_EQ(h.node(h.node_index(8)).mask, (Key128{~0ull, 0}));
  EXPECT_EQ(h.node(h.node_index(12)).mask, (Key128{0xffffffff00000000ull, 0}));
  EXPECT_EQ(h.node(h.node_index(16)).mask, (Key128{}));
}

TEST(HierarchyValidation, RejectsBadSpecs) {
  DimensionSpec d;
  d.offset_bits = 0;
  d.width_bits = 32;
  d.lengths = {32, 16};  // does not end at 0
  EXPECT_THROW(Hierarchy({d}, "bad"), std::invalid_argument);
  d.lengths = {16, 8, 0};  // does not start at width
  EXPECT_THROW(Hierarchy({d}, "bad"), std::invalid_argument);
  d.lengths = {32, 16, 16, 0};  // not strictly descending
  EXPECT_THROW(Hierarchy({d}, "bad"), std::invalid_argument);
  EXPECT_THROW(Hierarchy({}, "empty"), std::invalid_argument);
  // Overlapping dimensions.
  DimensionSpec a;
  a.offset_bits = 0;
  a.width_bits = 32;
  a.lengths = {32, 0};
  DimensionSpec b = a;
  b.offset_bits = 16;
  EXPECT_THROW(Hierarchy({a, b}, "overlap"), std::invalid_argument);
}

// ------------------------------------------------- generalization order ----

TEST(Generalization, NodeOrder2D) {
  const Hierarchy h = Hierarchy::ipv4_2d(Granularity::kByte);
  const auto n00 = h.node_index(0, 0);
  const auto n12 = h.node_index(1, 2);
  const auto n21 = h.node_index(2, 1);
  const auto n22 = h.node_index(2, 2);
  EXPECT_TRUE(h.node_generalizes(n22, n12));
  EXPECT_TRUE(h.node_generalizes(n22, n21));
  EXPECT_TRUE(h.node_generalizes(n12, n00));
  EXPECT_FALSE(h.node_generalizes(n12, n21));  // incomparable
  EXPECT_FALSE(h.node_generalizes(n21, n12));
  EXPECT_TRUE(h.node_generalizes(n12, n12));  // reflexive
}

TEST(Generalization, PrefixGeneralizesRequiresKeyMatch) {
  const Hierarchy h = Hierarchy::ipv4_1d(Granularity::kByte);
  const Key128 ip = Key128::from_u32(ipv4(181, 7, 20, 6));
  const Prefix full{h.node_index(0), ip};
  const Prefix slash16{h.node_index(2), h.mask_key(h.node_index(2), ip)};
  const Prefix other16{h.node_index(2),
                       Key128::from_u32(ipv4(10, 0, 0, 0))};
  EXPECT_TRUE(h.generalizes(slash16, full));
  EXPECT_FALSE(h.generalizes(other16, full));
  EXPECT_FALSE(h.generalizes(full, slash16));
  EXPECT_TRUE(h.strictly_generalizes(slash16, full));
  EXPECT_FALSE(h.strictly_generalizes(slash16, slash16));
}

/// Property sweep: reflexivity, antisymmetry and transitivity of the prefix
/// order over random prefixes of the 2D lattice.
TEST(Generalization, PartialOrderProperties) {
  const Hierarchy h = Hierarchy::ipv4_2d(Granularity::kByte);
  Xoroshiro128 rng(17);
  std::vector<Prefix> ps;
  for (int i = 0; i < 60; ++i) {
    const auto node = rng.bounded(static_cast<std::uint32_t>(h.size()));
    // Small address pool to force related prefixes.
    const Key128 key = Key128::from_pair(0x0a000000u | rng.bounded(4),
                                         0xc0a80000u | rng.bounded(4));
    ps.push_back(Prefix{node, h.mask_key(node, key)});
  }
  for (const auto& a : ps) {
    EXPECT_TRUE(h.generalizes(a, a));
    for (const auto& b : ps) {
      if (h.generalizes(a, b) && h.generalizes(b, a)) {
        EXPECT_EQ(a, b);
      }
      for (const auto& c : ps) {
        if (h.generalizes(a, b) && h.generalizes(b, c)) {
          EXPECT_TRUE(h.generalizes(a, c));
        }
      }
    }
  }
}

// ------------------------------------------------------------------ glb ----

TEST(Glb, NodeGlbIsComponentwiseMin) {
  const Hierarchy h = Hierarchy::ipv4_2d(Granularity::kByte);
  EXPECT_EQ(h.glb_node(h.node_index(1, 3), h.node_index(2, 0)), h.node_index(1, 0));
  EXPECT_EQ(h.glb_node(h.node_index(4, 4), h.node_index(0, 0)), h.node_index(0, 0));
}

TEST(Glb, CompatiblePrefixesMerge) {
  const Hierarchy h = Hierarchy::ipv4_2d(Granularity::kByte);
  const Ipv4 s = ipv4(181, 7, 20, 6);
  const Ipv4 d = ipv4(208, 67, 222, 222);
  const Key128 full = Key128::from_pair(s, d);
  // a = (181.7.*, 208.67.222.222), b = (181.7.20.6, 208.67.*)
  const Prefix a{h.node_index(2, 0), h.mask_key(h.node_index(2, 0), full)};
  const Prefix b{h.node_index(0, 2), h.mask_key(h.node_index(0, 2), full)};
  const auto q = h.glb(a, b);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->node, h.node_index(0, 0));
  EXPECT_EQ(q->key, full);
}

TEST(Glb, IncompatiblePrefixesHaveNoGlb) {
  const Hierarchy h = Hierarchy::ipv4_2d(Granularity::kByte);
  const Prefix a{h.node_index(0, 2),
                 h.mask_key(h.node_index(0, 2), Key128::from_pair(ipv4(1, 2, 3, 4), 0))};
  const Prefix b{h.node_index(2, 0),
                 h.mask_key(h.node_index(2, 0), Key128::from_pair(ipv4(9, 9, 0, 0), 0))};
  // Sources disagree on the /16: no common descendant.
  EXPECT_FALSE(h.glb(a, b).has_value());
}

/// Property: when glb(a,b) exists it is generalized by both a and b, and it
/// is the *greatest* such element among sampled common descendants.
TEST(Glb, GlbIsGreatestLowerBound) {
  const Hierarchy h = Hierarchy::ipv4_2d(Granularity::kByte);
  Xoroshiro128 rng(23);
  for (int i = 0; i < 500; ++i) {
    const Key128 key = Key128::from_pair(0x0a000000u | rng.bounded(8),
                                         0xc0a80000u | rng.bounded(8));
    const auto na = rng.bounded(static_cast<std::uint32_t>(h.size()));
    const auto nb = rng.bounded(static_cast<std::uint32_t>(h.size()));
    const Prefix a{na, h.mask_key(na, key)};
    const Prefix b{nb, h.mask_key(nb, key)};
    const auto q = h.glb(a, b);
    ASSERT_TRUE(q.has_value());  // same underlying key: always compatible
    EXPECT_TRUE(h.generalizes(a, *q));
    EXPECT_TRUE(h.generalizes(b, *q));
    // The fully-specified key is a common descendant; glb must generalize it.
    EXPECT_TRUE(h.generalizes(*q, Prefix{h.bottom(), key}));
  }
}

// ----------------------------------------------------- canonical parent ----

TEST(CanonicalParent, ChainVisitsEveryLevelOnce) {
  for (const Hierarchy& h : {Hierarchy::ipv4_1d(Granularity::kBit),
                             Hierarchy::ipv4_2d(Granularity::kByte)}) {
    std::uint32_t n = h.bottom();
    std::set<int> levels{h.node(n).level};
    while (auto p = h.canonical_parent(n)) {
      EXPECT_EQ(h.node(*p).level, h.node(n).level + 1);
      EXPECT_TRUE(h.node_generalizes(*p, n));
      n = *p;
      levels.insert(h.node(n).level);
    }
    EXPECT_EQ(n, h.top());
    EXPECT_EQ(static_cast<int>(levels.size()), h.num_levels());
  }
}

TEST(CanonicalParent, TopHasNoParent) {
  const Hierarchy h = Hierarchy::ipv4_2d(Granularity::kByte);
  EXPECT_FALSE(h.canonical_parent(h.top()).has_value());
}

// ------------------------------------------------------------ formatting ----

TEST(Formatting, OneDim) {
  const Hierarchy h = Hierarchy::ipv4_1d(Granularity::kByte);
  const Key128 ip = Key128::from_u32(ipv4(181, 7, 20, 6));
  EXPECT_EQ(h.format({h.node_index(0), ip}), "181.7.20.6");
  EXPECT_EQ(h.format({h.node_index(2), h.mask_key(h.node_index(2), ip)}), "181.7.*.*");
  EXPECT_EQ(h.format({h.node_index(4), Key128{}}), "*");
}

TEST(Formatting, TwoDimMatchesTableOne) {
  // Table 1's lattice entries, e.g. (s1.s2.*, d1.d2.d3.*).
  const Hierarchy h = Hierarchy::ipv4_2d(Granularity::kByte);
  const Key128 full = Key128::from_pair(ipv4(181, 7, 20, 6), ipv4(208, 67, 222, 222));
  const auto n = h.node_index(2, 1);
  EXPECT_EQ(h.format({n, h.mask_key(n, full)}), "(181.7.*.*, 208.67.222.*)");
  EXPECT_EQ(h.format({h.top(), Key128{}}), "(*, *)");
  EXPECT_EQ(h.format({h.bottom(), full}), "(181.7.20.6, 208.67.222.222)");
}

TEST(Formatting, Ipv6) {
  const Hierarchy h = Hierarchy::ipv6_1d(Granularity::kByte);
  const Key128 a{0x20010db800000000ull, 0x1ull};
  const auto n4 = h.node_index(12);  // keep 4 bytes = /32
  EXPECT_EQ(h.format({n4, h.mask_key(n4, a)}), "2001:db8::/32");
}

TEST(KeyOf, MatchesDimensionality) {
  const Hierarchy h1 = Hierarchy::ipv4_1d(Granularity::kByte);
  const Hierarchy h2 = Hierarchy::ipv4_2d(Granularity::kByte);
  PacketRecord p;
  p.src_ip = ipv4(1, 2, 3, 4);
  p.dst_ip = ipv4(5, 6, 7, 8);
  EXPECT_EQ(h1.key_of(p), Key128::from_u32(p.src_ip));
  EXPECT_EQ(h2.key_of(p), Key128::from_pair(p.src_ip, p.dst_ip));
}

}  // namespace
}  // namespace rhhh
