// Tests for the library extensions beyond the paper's core evaluation:
// mergeable summaries (the Section 7 multi-device story), the Count-Sketch
// and exact-oracle backends, the log-scale latency histogram, and the
// structural validators under randomized stress.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "hh/count_sketch.hpp"
#include "hh/exact_counter.hpp"
#include "hh/space_saving.hpp"
#include "hhh/lattice_hhh.hpp"
#include "hhh/trie_hhh.hpp"
#include "net/ipv4.hpp"
#include "stats/histogram.hpp"
#include "trace/trace_gen.hpp"
#include "trace/zipf.hpp"
#include "util/random.hpp"

namespace rhhh {
namespace {

using K64 = std::uint64_t;

// ------------------------------------------------- space-saving merge ----

TEST(SpaceSavingMerge, DisjointStreamsAdd) {
  SpaceSaving<K64> a(8);
  SpaceSaving<K64> b(8);
  a.increment(1, 100);
  a.increment(2, 50);
  b.increment(3, 70);
  a.merge(b);
  EXPECT_EQ(a.total(), 220u);
  EXPECT_GE(a.upper(1), 100u);
  EXPECT_LE(a.lower(1), 100u);
  EXPECT_GE(a.upper(3), 70u);
  EXPECT_TRUE(a.validate());
}

TEST(SpaceSavingMerge, OverlappingKeysSum) {
  SpaceSaving<K64> a(8);
  SpaceSaving<K64> b(8);
  for (int i = 0; i < 60; ++i) a.increment(7);
  for (int i = 0; i < 40; ++i) b.increment(7);
  a.merge(b);
  EXPECT_EQ(a.upper(7), 100u);
  EXPECT_EQ(a.lower(7), 100u);
}

TEST(SpaceSavingMerge, EmptyOtherIsNoop) {
  SpaceSaving<K64> a(4);
  SpaceSaving<K64> b(4);
  a.increment(1, 10);
  a.merge(b);
  EXPECT_EQ(a.total(), 10u);
  EXPECT_EQ(a.upper(1), 10u);
  EXPECT_TRUE(a.validate());
}

/// Property: after merging two independent streams, the merged bounds must
/// bracket the true combined frequency for every key, with error <= the
/// combined 2N/m budget.
class MergeOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MergeOracle, BoundsBracketCombinedStream) {
  const std::size_t cap = 64;
  SpaceSaving<K64> a(cap);
  SpaceSaving<K64> b(cap);
  std::map<K64, std::uint64_t> oracle;
  Xoroshiro128 rng(GetParam());
  ZipfDistribution zipf(500, 1.1);
  for (int i = 0; i < 20000; ++i) {
    const K64 k = zipf(rng);
    if (rng.bounded(2) == 0) {
      a.increment(k);
    } else {
      b.increment(k);
    }
    ++oracle[k];
  }
  a.merge(b);
  EXPECT_TRUE(a.validate());
  EXPECT_EQ(a.total(), 20000u);
  const std::uint64_t budget = 2 * a.total() / cap;
  for (const auto& [k, f] : oracle) {
    EXPECT_GE(a.upper(k) + budget, f) << k;  // upper covers f (with margin)
    EXPECT_LE(a.lower(k), f) << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MergeOracle, ::testing::Values(1, 7, 99, 12345));

TEST(LatticeMerge, TwoSwitchesFindGlobalAggregate) {
  // Two "switches" each see 15% of their local traffic toward one /16
  // aggregate -- individually below a 25% threshold, globally... still 15%.
  // The interesting case: switch A sees hot prefix X, switch B sees hot
  // prefix Y; the merged instance must report both.
  const Hierarchy h = Hierarchy::ipv4_2d(Granularity::kByte);
  LatticeParams lp;
  lp.eps = 0.02;
  lp.delta = 0.05;
  RhhhSpaceSaving sw_a(h, LatticeMode::kRhhh, lp);
  LatticeParams lp_b = lp;
  lp_b.seed = 2;
  RhhhSpaceSaving sw_b(h, LatticeMode::kRhhh, lp_b);

  const Key128 hot_a = Key128::from_pair(ipv4(10, 1, 2, 3), ipv4(99, 1, 1, 1));
  const Key128 hot_b = Key128::from_pair(ipv4(20, 5, 6, 7), ipv4(88, 2, 2, 2));
  TraceGenerator gen_a(trace_preset("chicago15"));
  TraceGenerator gen_b(trace_preset("sanjose13"));
  Xoroshiro128 rng(3);
  const int kN = 300000;
  for (int i = 0; i < kN; ++i) {
    sw_a.update(rng.bounded(10) < 4 ? hot_a : h.key_of(gen_a.next()));
    sw_b.update(rng.bounded(10) < 4 ? hot_b : h.key_of(gen_b.next()));
  }
  sw_a.merge(sw_b);
  EXPECT_EQ(sw_a.stream_length(), static_cast<std::uint64_t>(2 * kN));
  const HhhSet out = sw_a.output(0.15);
  EXPECT_TRUE(out.contains(Prefix{h.bottom(), hot_a}));
  EXPECT_TRUE(out.contains(Prefix{h.bottom(), hot_b}));
}

TEST(LatticeMerge, MismatchedConfigsThrow) {
  const Hierarchy h2 = Hierarchy::ipv4_2d(Granularity::kByte);
  const Hierarchy h1 = Hierarchy::ipv4_1d(Granularity::kByte);
  LatticeParams lp;
  RhhhSpaceSaving a(h2, LatticeMode::kRhhh, lp);
  RhhhSpaceSaving b(h1, LatticeMode::kRhhh, lp);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
  RhhhSpaceSaving c(h2, LatticeMode::kMst, lp);
  EXPECT_THROW(a.merge(c), std::invalid_argument);
  LatticeParams lp_v = lp;
  lp_v.V = 250;
  RhhhSpaceSaving d(h2, LatticeMode::kRhhh, lp_v);
  EXPECT_THROW(a.merge(d), std::invalid_argument);
}

TEST(LatticeMerge, NonMergeableBackendThrows) {
  const Hierarchy h = Hierarchy::ipv4_1d(Granularity::kByte);
  LatticeParams lp;
  LatticeHhh<MisraGries<Key128>> a(h, LatticeMode::kRhhh, lp);
  LatticeHhh<MisraGries<Key128>> b(h, LatticeMode::kRhhh, lp);
  EXPECT_THROW(a.merge(b), std::logic_error);
}

// ------------------------------------------------------- count sketch ----

TEST(CountSketchTest, RejectsBadParams) {
  EXPECT_THROW(CountSketchHh<K64>(0.0, 0.1, 8, 1), std::invalid_argument);
  EXPECT_THROW(CountSketchHh<K64>(0.1, 0.0, 8, 1), std::invalid_argument);
  EXPECT_THROW(CountSketchHh<K64>(0.1, 0.1, 0, 1), std::invalid_argument);
}

TEST(CountSketchTest, OddDepthForMedian) {
  CountSketchHh<K64> cs(0.01, 0.05, 16, 1);
  EXPECT_EQ(cs.depth() % 2, 1u);
}

TEST(CountSketchTest, EstimatesWithinSlack) {
  const double eps = 0.02;
  CountSketchHh<K64> cs(eps, 0.05, 64, 17);
  std::map<K64, std::uint64_t> oracle;
  Xoroshiro128 rng(18);
  ZipfDistribution zipf(2000, 1.2);
  for (int i = 0; i < 30000; ++i) {
    const K64 k = zipf(rng);
    cs.increment(k);
    ++oracle[k];
  }
  const double slack = eps * static_cast<double>(cs.total());
  std::size_t violations = 0;
  for (const auto& [k, f] : oracle) {
    const double err = std::fabs(static_cast<double>(cs.estimate(k)) -
                                 static_cast<double>(f));
    if (err > slack) ++violations;
  }
  EXPECT_LE(violations, oracle.size() / 10);
  // upper/lower bracket the estimate band.
  const K64 top = 1;
  EXPECT_GE(cs.upper(top), cs.lower(top));
  EXPECT_GE(static_cast<double>(cs.upper(top)),
            static_cast<double>(oracle[top]) - slack);
}

TEST(CountSketchTest, TracksHeavyKeys) {
  CountSketchHh<K64> cs(0.01, 0.05, 16, 5);
  Xoroshiro128 rng(6);
  ZipfDistribution zipf(10000, 1.4);
  for (int i = 0; i < 40000; ++i) cs.increment(zipf(rng));
  bool found_rank1 = false;
  cs.for_each([&](const K64& k, std::uint64_t, std::uint64_t) {
    if (k == 1) found_rank1 = true;
  });
  EXPECT_TRUE(found_rank1);
}

TEST(CountSketchTest, WorksAsLatticeBackend) {
  const Hierarchy h = Hierarchy::ipv4_1d(Granularity::kByte);
  LatticeParams lp;
  lp.eps = 0.05;
  lp.delta = 0.05;
  LatticeHhh<CountSketchHh<Key128>> alg(h, LatticeMode::kRhhh, lp);
  Xoroshiro128 rng(7);
  const Key128 hot = Key128::from_u32(ipv4(66, 1, 2, 3));
  for (int i = 0; i < 200000; ++i) {
    alg.update(rng.bounded(10) < 4 ? hot
                                   : Key128::from_u32(static_cast<std::uint32_t>(rng())));
  }
  bool found = false;
  for (const HhhCandidate& c : alg.output(0.3)) {
    if (c.prefix.key == hot && c.prefix.node == h.bottom()) found = true;
  }
  EXPECT_TRUE(found);
}

// ------------------------------------------------------ exact counter ----

TEST(ExactCounterTest, IsExact) {
  ExactCounter<K64> ec;
  Xoroshiro128 rng(8);
  std::map<K64, std::uint64_t> oracle;
  for (int i = 0; i < 10000; ++i) {
    const K64 k = rng.bounded(100);
    const std::uint64_t w = 1 + rng.bounded(5);
    ec.increment(k, w);
    oracle[k] += w;
  }
  for (const auto& [k, f] : oracle) {
    EXPECT_EQ(ec.upper(k), f);
    EXPECT_EQ(ec.lower(k), f);
  }
  EXPECT_EQ(ec.size(), oracle.size());
}

TEST(ExactCounterTest, LatticeWithExactBackendMatchesGroundTruthShape) {
  // With exact per-node counters, MST-mode output == the conservative
  // Algorithm 1 on the true counts: a useful oracle configuration.
  const Hierarchy h = Hierarchy::ipv4_1d(Granularity::kByte);
  LatticeParams lp;
  lp.eps = 0.01;
  LatticeHhh<ExactCounter<Key128>> alg(h, LatticeMode::kMst, lp);
  for (int i = 0; i < 102; ++i) {
    alg.update(Key128::from_u32(ipv4(101, 102, static_cast<std::uint8_t>(i), 1)));
  }
  for (int i = 0; i < 6; ++i) {
    alg.update(Key128::from_u32(ipv4(101, 103, static_cast<std::uint8_t>(i), 1)));
  }
  const HhhSet out = alg.output(100.0 / 108.0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(h.format(out[0].prefix), "101.102.*.*");
}

// ---------------------------------------------------------- histogram ----

TEST(LogHistogramTest, SmallValuesExact) {
  LogHistogram hist;
  for (std::uint64_t v = 0; v < 16; ++v) hist.add(v);
  EXPECT_EQ(hist.count(), 16u);
  EXPECT_EQ(hist.min(), 0u);
  EXPECT_EQ(hist.max(), 15u);
  EXPECT_EQ(hist.quantile(0.0), 0u);
  EXPECT_EQ(hist.quantile(1.0), 15u);
}

TEST(LogHistogramTest, QuantileAccuracyWithinResolution) {
  LogHistogram hist;
  Xoroshiro128 rng(9);
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 100000; ++i) {
    const std::uint64_t v = 20 + (rng() % 1000000);
    hist.add(v);
    values.push_back(v);
  }
  std::sort(values.begin(), values.end());
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    const auto exact = static_cast<double>(
        values[static_cast<std::size_t>(q * (double(values.size()) - 1))]);
    const auto approx = static_cast<double>(hist.quantile(q));
    EXPECT_NEAR(approx / exact, 1.0, 0.10) << "q=" << q;
  }
}

TEST(LogHistogramTest, MeanAndMerge) {
  LogHistogram a;
  LogHistogram b;
  for (int i = 1; i <= 100; ++i) a.add(static_cast<std::uint64_t>(i));
  for (int i = 101; i <= 200; ++i) b.add(static_cast<std::uint64_t>(i));
  EXPECT_DOUBLE_EQ(a.mean(), 50.5);
  a.merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_DOUBLE_EQ(a.mean(), 100.5);
  EXPECT_EQ(a.min(), 1u);
  EXPECT_EQ(a.max(), 200u);
}

TEST(LogHistogramTest, ClearResets) {
  LogHistogram h;
  h.add(42);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);
}

TEST(LogHistogramTest, ResetIsClearSynonym) {
  LogHistogram h;
  h.add(42);
  h.add(7);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  h.add(5);  // usable again after reset
  EXPECT_EQ(h.quantile(1.0), 5u);
}

TEST(LogHistogramTest, BucketIndexMatchesAddPlacement) {
  // add(v) then quantile must report exactly bucket_upper(bucket_index(v)):
  // the static helpers expose the same bucketing the instance uses.
  for (const std::uint64_t v :
       {0ull, 1ull, 15ull, 16ull, 17ull, 1000ull, 123456789ull}) {
    LogHistogram h;
    h.add(v);
    EXPECT_EQ(h.quantile(0.5), LogHistogram::bucket_upper(
                                   LogHistogram::bucket_index(v)))
        << "v=" << v;
  }
  // Small values are exact; bucket edges are monotone in v.
  EXPECT_EQ(LogHistogram::bucket_upper(LogHistogram::bucket_index(7)), 7u);
  EXPECT_LE(LogHistogram::bucket_index(100), LogHistogram::bucket_index(1000));
}

TEST(LogHistogramTest, AddBucketedFoldsLikeAdd) {
  // Folding pre-bucketed shard data must agree with direct adds up to the
  // bucket-edge resolution min/max carries (exact below 16).
  LogHistogram direct;
  LogHistogram folded;
  std::uint64_t sum = 0;
  for (const std::uint64_t v : {3ull, 3ull, 500ull, 70000ull}) {
    direct.add(v);
    folded.add_bucketed(LogHistogram::bucket_index(v), 1, 0);
    sum += v;
  }
  folded.add_bucketed(0, 0, sum);  // n == 0 folds only the sum contribution
  EXPECT_EQ(folded.count(), direct.count());
  EXPECT_DOUBLE_EQ(folded.mean(), direct.mean());
  EXPECT_EQ(folded.min(), 3u) << "min is exact for small values";
  EXPECT_EQ(folded.quantile(0.5), direct.quantile(0.5));
  // quantile(1.0) returns max_: exact on direct adds, bucket-edge on folds.
  EXPECT_GE(folded.max(), 70000u);
  EXPECT_LE(static_cast<double>(folded.max()), 70000.0 * 1.07);
  // A fold into a merge()d result stays consistent too.
  LogHistogram merged;
  merged.merge(folded);
  merged.merge(direct);
  EXPECT_EQ(merged.count(), 8u);
  EXPECT_EQ(merged.min(), 3u);
}

// ----------------------------------------------------- validators (stress) ----

TEST(Validators, SpaceSavingUnderRandomOps) {
  SpaceSaving<K64> ss(32);
  Xoroshiro128 rng(11);
  for (int step = 0; step < 200; ++step) {
    for (int i = 0; i < 500; ++i) {
      ss.increment(rng.bounded(200), 1 + rng.bounded(4));
    }
    ASSERT_TRUE(ss.validate()) << "after step " << step;
  }
}

TEST(Validators, TrieUnderRandomStreams) {
  const Hierarchy h = Hierarchy::ipv4_2d(Granularity::kByte);
  for (const AncestryMode mode : {AncestryMode::kFull, AncestryMode::kPartial}) {
    TrieHhh t(h, mode, 0.02);
    TraceGenerator gen(trace_preset("chicago16"));
    for (int step = 0; step < 50; ++step) {
      for (int i = 0; i < 2000; ++i) t.update(h.key_of(gen.next()));
      ASSERT_TRUE(t.validate()) << to_string(mode) << " step " << step;
    }
  }
}

TEST(Validators, TrieValidAfterClear) {
  const Hierarchy h = Hierarchy::ipv4_1d(Granularity::kByte);
  TrieHhh t(h, AncestryMode::kFull, 0.01);
  for (int i = 0; i < 10000; ++i) t.update(Key128::from_u32(static_cast<std::uint32_t>(i * 2654435761u)));
  t.clear();
  EXPECT_TRUE(t.validate());
}

}  // namespace
}  // namespace rhhh
