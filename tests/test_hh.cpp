// Tests for the heavy-hitter backends. Space-Saving gets the deepest
// treatment (it is the paper's building block): exactness below capacity,
// the classic error bounds, heavy-hitter recall, weighted updates, and
// randomized differential tests against an exact oracle across stream
// shapes. Misra-Gries, Lossy Counting and Count-Min are validated against
// their respective guarantees.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "hh/count_min.hpp"
#include "hh/count_sketch.hpp"
#include "hh/lossy_counting.hpp"
#include "hh/misra_gries.hpp"
#include "hh/space_saving.hpp"
#include "trace/zipf.hpp"
#include "util/random.hpp"

namespace rhhh {
namespace {

using K64 = std::uint64_t;

// ------------------------------------------------------- space saving ----

TEST(SpaceSaving, RejectsZeroCapacity) {
  EXPECT_THROW(SpaceSaving<K64>(0), std::invalid_argument);
}

TEST(SpaceSaving, ExactBelowCapacity) {
  SpaceSaving<K64> ss(10);
  for (K64 k = 0; k < 8; ++k) {
    for (K64 i = 0; i <= k; ++i) ss.increment(k);
  }
  EXPECT_EQ(ss.size(), 8u);
  EXPECT_EQ(ss.total(), 36u);
  for (K64 k = 0; k < 8; ++k) {
    EXPECT_EQ(ss.upper(k), k + 1);
    EXPECT_EQ(ss.lower(k), k + 1);
  }
  EXPECT_EQ(ss.upper(99), 0u);  // not full: untracked keys are exact zeros
  EXPECT_EQ(ss.min_bound(), 0u);
}

TEST(SpaceSaving, EvictionInheritsMinAsError) {
  SpaceSaving<K64> ss(2);
  ss.increment(1);
  ss.increment(1);
  ss.increment(2);
  // Full: {1:2, 2:1}. New key 3 evicts the min (2, count 1).
  ss.increment(3);
  EXPECT_FALSE(ss.tracked(2));
  EXPECT_TRUE(ss.tracked(3));
  EXPECT_EQ(ss.upper(3), 2u);  // min(1) + 1
  EXPECT_EQ(ss.lower(3), 1u);  // count - error = 2 - 1
  EXPECT_EQ(ss.upper(2), ss.min_bound());
}

TEST(SpaceSaving, SumOfCountsEqualsTotal) {
  SpaceSaving<K64> ss(16);
  Xoroshiro128 rng(3);
  for (int i = 0; i < 10000; ++i) ss.increment(rng.bounded(100));
  // Stream-summary invariant: counts (with replacement inheritance) sum to N.
  std::uint64_t sum = 0;
  ss.for_each([&](const K64&, std::uint64_t up, std::uint64_t) { sum += up; });
  EXPECT_EQ(sum, ss.total());
  EXPECT_EQ(ss.total(), 10000u);
}

TEST(SpaceSaving, MinBoundIsMinimumCount) {
  SpaceSaving<K64> ss(8);
  Xoroshiro128 rng(4);
  for (int i = 0; i < 5000; ++i) ss.increment(rng.bounded(50));
  std::uint64_t min_count = UINT64_MAX;
  ss.for_each([&](const K64&, std::uint64_t up, std::uint64_t) {
    min_count = std::min(min_count, up);
  });
  EXPECT_EQ(ss.min_bound(), min_count);
}

TEST(SpaceSaving, WeightedUpdates) {
  SpaceSaving<K64> ss(4);
  ss.increment(1, 100);
  ss.increment(2, 50);
  ss.increment(1, 7);
  EXPECT_EQ(ss.upper(1), 107u);
  EXPECT_EQ(ss.lower(1), 107u);
  EXPECT_EQ(ss.total(), 157u);
  // Weighted eviction: fill, then a big newcomer.
  ss.increment(3, 1);
  ss.increment(4, 1);
  ss.increment(5, 1000);  // evicts a min=1 counter
  EXPECT_TRUE(ss.tracked(5));
  EXPECT_EQ(ss.upper(5), 1001u);
  EXPECT_EQ(ss.lower(5), 1000u);
}

TEST(SpaceSaving, ZeroWeightIsNoop) {
  SpaceSaving<K64> ss(4);
  ss.increment(1, 0);
  EXPECT_EQ(ss.total(), 0u);
  EXPECT_EQ(ss.size(), 0u);
}

TEST(SpaceSaving, ClearResets) {
  SpaceSaving<K64> ss(4);
  for (int i = 0; i < 100; ++i) ss.increment(i % 10);
  ss.clear();
  EXPECT_EQ(ss.total(), 0u);
  EXPECT_EQ(ss.size(), 0u);
  EXPECT_EQ(ss.min_bound(), 0u);
  ss.increment(42);
  EXPECT_EQ(ss.upper(42), 1u);
}

TEST(SpaceSaving, HeavyHittersFilter) {
  SpaceSaving<K64> ss(8);
  for (int i = 0; i < 900; ++i) ss.increment(1);
  for (int i = 0; i < 80; ++i) ss.increment(2);
  for (int i = 0; i < 20; ++i) ss.increment(K64(3) + (i % 4));
  const auto hh = ss.heavy_hitters(100);
  ASSERT_EQ(hh.size(), 1u);
  EXPECT_EQ(hh[0].key, 1u);
  EXPECT_GE(hh[0].upper, 900u);
}

TEST(SpaceSaving, EntriesMatchForEach) {
  SpaceSaving<K64> ss(8);
  for (int i = 0; i < 500; ++i) ss.increment(i % 20);
  const auto es = ss.entries();
  EXPECT_EQ(es.size(), ss.size());
  for (const auto& e : es) {
    EXPECT_EQ(ss.upper(e.key), e.upper);
    EXPECT_EQ(ss.lower(e.key), e.lower);
    EXPECT_GE(e.upper, e.lower);
  }
}

TEST(SpaceSaving, Key128Instantiation) {
  SpaceSaving<Key128> ss(4);
  const Key128 a{1, 2};
  const Key128 b{3, 4};
  ss.increment(a, 5);
  ss.increment(b);
  EXPECT_EQ(ss.upper(a), 5u);
  EXPECT_EQ(ss.upper(b), 1u);
}

struct StreamShape {
  std::string name;
  std::uint64_t domain;
  double zipf_s;  // 0 = uniform
};

class SpaceSavingOracle
    : public ::testing::TestWithParam<std::tuple<StreamShape, std::size_t>> {};

/// Differential property test: for every key (tracked or not),
/// lower <= f <= upper and upper - f <= N/m; every key with f > N/m tracked.
TEST_P(SpaceSavingOracle, BoundsHoldOnRandomStreams) {
  const auto& [shape, capacity] = GetParam();
  SpaceSaving<K64> ss(capacity);
  std::map<K64, std::uint64_t> oracle;
  Xoroshiro128 rng(0xabc + capacity);
  const int kN = 30000;
  ZipfDistribution zipf(shape.domain, shape.zipf_s > 0 ? shape.zipf_s : 1.0);
  for (int i = 0; i < kN; ++i) {
    const K64 k = shape.zipf_s > 0
                      ? zipf(rng)
                      : rng.bounded(static_cast<std::uint32_t>(shape.domain));
    ss.increment(k);
    ++oracle[k];
  }
  const std::uint64_t err_bound = ss.total() / capacity;
  for (const auto& [k, f] : oracle) {
    EXPECT_LE(ss.lower(k), f) << shape.name << " key " << k;
    EXPECT_GE(ss.upper(k), f) << shape.name << " key " << k;
    EXPECT_LE(ss.upper(k) - f, err_bound) << shape.name << " key " << k;
    if (f > err_bound) {
      EXPECT_TRUE(ss.tracked(k)) << shape.name << " heavy key " << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SpaceSavingOracle,
    ::testing::Combine(
        ::testing::Values(StreamShape{"zipf1.2-small", 200, 1.2},
                          StreamShape{"zipf0.8-large", 5000, 0.8},
                          StreamShape{"uniform-small", 64, 0.0},
                          StreamShape{"uniform-large", 4000, 0.0},
                          StreamShape{"zipf1.5-huge", 100000, 1.5}),
        ::testing::Values(std::size_t{4}, std::size_t{32}, std::size_t{256})),
    [](const auto& info) {
      std::string n = std::get<0>(info.param).name + "_cap" +
                      std::to_string(std::get<1>(info.param));
      for (char& c : n) {
        if (c == '.' || c == '-') c = '_';
      }
      return n;
    });

/// The same differential check with weighted updates.
TEST(SpaceSaving, WeightedOracle) {
  SpaceSaving<K64> ss(32);
  std::map<K64, std::uint64_t> oracle;
  Xoroshiro128 rng(77);
  for (int i = 0; i < 5000; ++i) {
    const K64 k = rng.bounded(300);
    const std::uint64_t w = 1 + rng.bounded(20);
    ss.increment(k, w);
    oracle[k] += w;
  }
  // Weighted error bound: at most total/capacity + max single weight slack;
  // the classic analysis gives error <= min-count <= N/m.
  const std::uint64_t err_bound = ss.total() / 32;
  for (const auto& [k, f] : oracle) {
    EXPECT_LE(ss.lower(k), f);
    EXPECT_GE(ss.upper(k), f);
    EXPECT_LE(ss.upper(k) - f, err_bound);
  }
}

// -------------------------------------------------------- misra-gries ----

TEST(MisraGriesTest, ExactBelowCapacity) {
  MisraGries<K64> mg(8);
  for (int i = 0; i < 5; ++i) mg.increment(7);
  mg.increment(9);
  EXPECT_EQ(mg.lower(7), 5u);
  EXPECT_EQ(mg.upper(7), 5u);
  EXPECT_EQ(mg.lower(9), 1u);
  EXPECT_EQ(mg.decrements(), 0u);
}

TEST(MisraGriesTest, DecrementBoundHolds) {
  const std::size_t k = 16;
  MisraGries<K64> mg(k);
  std::map<K64, std::uint64_t> oracle;
  Xoroshiro128 rng(9);
  for (int i = 0; i < 20000; ++i) {
    const K64 key = rng.bounded(400);
    mg.increment(key);
    ++oracle[key];
  }
  EXPECT_LE(mg.decrements(), mg.total() / (k + 1));
  for (const auto& [key, f] : oracle) {
    EXPECT_LE(mg.lower(key), f);
    EXPECT_GE(mg.upper(key), f);
  }
}

TEST(MisraGriesTest, TracksHeavyKey) {
  MisraGries<K64> mg(4);
  Xoroshiro128 rng(10);
  for (int i = 0; i < 9000; ++i) {
    mg.increment(i % 3 == 0 ? 1000 : rng.bounded(500));
  }
  EXPECT_TRUE(mg.lower(1000) > 0) << "a 1/3-frequency key must survive";
}

// ------------------------------------------------------ lossy counting ----

TEST(LossyCountingTest, RejectsBadEps) {
  EXPECT_THROW(LossyCounting<K64>(0.0), std::invalid_argument);
  EXPECT_THROW(LossyCounting<K64>(1.5), std::invalid_argument);
}

TEST(LossyCountingTest, GuaranteesHold) {
  const double eps = 0.01;
  LossyCounting<K64> lc(eps);
  std::map<K64, std::uint64_t> oracle;
  Xoroshiro128 rng(12);
  ZipfDistribution zipf(1000, 1.1);
  for (int i = 0; i < 50000; ++i) {
    const K64 k = zipf(rng);
    lc.increment(k);
    ++oracle[k];
  }
  const double n = static_cast<double>(lc.total());
  for (const auto& [k, f] : oracle) {
    EXPECT_LE(lc.lower(k), f);
    EXPECT_GE(lc.upper(k) + 1, f);  // +1 absorbs the epoch-boundary rounding
    if (static_cast<double>(f) > eps * n) {
      EXPECT_GT(lc.lower(k), 0u) << "key with f > eps*N must be tracked: " << k;
    }
  }
  // Space bound sanity: Lossy Counting keeps O(1/eps log(eps N)) entries.
  EXPECT_LT(lc.size(), 4000u);
}

TEST(LossyCountingTest, PrunesInfrequentKeys) {
  LossyCounting<K64> lc(0.1);  // window 10
  for (K64 k = 0; k < 1000; ++k) lc.increment(k);  // all singletons
  EXPECT_LT(lc.size(), 30u);
}

// ----------------------------------------------------------- count-min ----

TEST(CountMinTest, RejectsBadParams) {
  EXPECT_THROW(CountMinHh<K64>(0.0, 0.1, 8, 1), std::invalid_argument);
  EXPECT_THROW(CountMinHh<K64>(0.1, 0.0, 8, 1), std::invalid_argument);
  EXPECT_THROW(CountMinHh<K64>(0.1, 0.1, 0, 1), std::invalid_argument);
}

TEST(CountMinTest, NeverUnderestimates) {
  CountMinHh<K64> cm(0.005, 0.01, 64, 42);
  std::map<K64, std::uint64_t> oracle;
  Xoroshiro128 rng(13);
  for (int i = 0; i < 30000; ++i) {
    const K64 k = rng.bounded(2000);
    cm.increment(k);
    ++oracle[k];
  }
  for (const auto& [k, f] : oracle) {
    EXPECT_GE(cm.upper(k), f);  // deterministic property of CMS
  }
}

TEST(CountMinTest, OverestimateWithinBoundMostly) {
  const double eps = 0.005;
  CountMinHh<K64> cm(eps, 0.01, 64, 43);
  std::map<K64, std::uint64_t> oracle;
  Xoroshiro128 rng(14);
  for (int i = 0; i < 30000; ++i) {
    const K64 k = rng.bounded(2000);
    cm.increment(k);
    ++oracle[k];
  }
  const double slack = eps * static_cast<double>(cm.total());
  std::size_t violations = 0;
  for (const auto& [k, f] : oracle) {
    if (static_cast<double>(cm.upper(k) - f) > slack) ++violations;
  }
  // delta = 1% per key; allow generous slack on 2000 keys.
  EXPECT_LE(violations, 60u);
}

TEST(CountMinTest, TracksTopKeys) {
  CountMinHh<K64> cm(0.01, 0.01, 16, 44);
  Xoroshiro128 rng(15);
  ZipfDistribution zipf(10000, 1.3);
  for (int i = 0; i < 40000; ++i) cm.increment(zipf(rng));
  bool found_rank1 = false;
  cm.for_each([&](const K64& k, std::uint64_t, std::uint64_t) {
    if (k == 1) found_rank1 = true;
  });
  EXPECT_TRUE(found_rank1);
  EXPECT_LE(cm.size(), 32u);
}

TEST(CountMinTest, DimensionsMatchFormulas) {
  CountMinHh<K64> cm(0.001, 0.01, 8, 1);
  EXPECT_GE(cm.width(), 2718u);
  EXPECT_EQ(cm.depth(), 5u);  // ceil(ln(100)) = 5
}

// ------------------------------------------------ linear-sketch merge ----

TEST(CountMinTest, MergeIsElementWiseAndExactOnDisjointKeys) {
  // Same seed => identical hash rows: merge is the element-wise sum, so
  // disjoint single-key streams combine with no additional error beyond
  // each side's own collisions (none here: two keys, wide table).
  CountMinHh<K64> a(0.01, 0.01, 16, 9);
  CountMinHh<K64> b(0.01, 0.01, 16, 9);
  for (int i = 0; i < 300; ++i) a.increment(1);
  for (int i = 0; i < 500; ++i) b.increment(2);
  for (int i = 0; i < 200; ++i) b.increment(1);
  a.merge(b);
  EXPECT_EQ(a.total(), 1000u);
  EXPECT_GE(a.upper(1), 500u);  // never underestimates after merge
  EXPECT_GE(a.upper(2), 500u);
  // Upper bound still holds w.h.p.: eps * N over the combined stream.
  EXPECT_LE(a.upper(1), 500u + static_cast<std::uint64_t>(0.01 * 1000));
  // Both sides' candidates survive the merge re-ranking.
  bool saw1 = false, saw2 = false;
  a.for_each([&](const K64& k, std::uint64_t, std::uint64_t) {
    saw1 |= k == 1;
    saw2 |= k == 2;
  });
  EXPECT_TRUE(saw1);
  EXPECT_TRUE(saw2);
}

TEST(CountMinTest, SelfMergeDoublesTheStream) {
  // merge(*this) must be well-defined (LatticeHhh::mergeable_with accepts
  // self): the linear-sketch semantics are "the same stream twice".
  CountMinHh<K64> a(0.01, 0.01, 16, 9);
  for (int i = 0; i < 250; ++i) a.increment(7);
  a.merge(a);
  EXPECT_EQ(a.total(), 500u);
  EXPECT_GE(a.upper(7), 500u);

  CountSketchHh<K64> cs(0.02, 0.05, 16, 9);
  for (int i = 0; i < 250; ++i) cs.increment(7);
  cs.merge(cs);
  EXPECT_EQ(cs.total(), 500u);
  EXPECT_NEAR(static_cast<double>(cs.estimate(7)), 500.0, 0.02 * 500.0 + 1.0);
}

TEST(CountMinTest, MergeRejectsIncompatibleSketches) {
  CountMinHh<K64> a(0.01, 0.01, 16, 9);
  CountMinHh<K64> seed_mismatch(0.01, 0.01, 16, 10);
  EXPECT_THROW(a.merge(seed_mismatch), std::invalid_argument);
  CountMinHh<K64> dim_mismatch(0.02, 0.01, 16, 9);
  EXPECT_THROW(a.merge(dim_mismatch), std::invalid_argument);
  CountMinHh<K64> depth_mismatch(0.01, 0.2, 16, 9);
  EXPECT_THROW(a.merge(depth_mismatch), std::invalid_argument);
}

TEST(CountMinTest, MergedBoundsHoldOnZipfStreams) {
  // Two shards of one heavy-tailed stream: the merged sketch must keep the
  // Count-Min contract (f <= upper <= f + eps*N) over the union.
  const double eps = 0.005;
  CountMinHh<K64> a(eps, 0.01, 64, 5);
  CountMinHh<K64> b(eps, 0.01, 64, 5);
  std::map<K64, std::uint64_t> truth;
  Xoroshiro128 rng(31);
  ZipfDistribution zipf(5000, 1.2);
  for (int i = 0; i < 30000; ++i) {
    const K64 k = zipf(rng);
    ++truth[k];
    (i % 2 == 0 ? a : b).increment(k);
  }
  a.merge(b);
  ASSERT_EQ(a.total(), 30000u);
  // upper() never underestimates (deterministic), and overestimates beyond
  // eps*N only with the per-key sketch failure probability -- check the
  // violation *rate*, as the single-sketch "Mostly" test does.
  const auto slack = static_cast<std::uint64_t>(eps * 30000.0);
  std::size_t over = 0;
  for (const auto& [k, f] : truth) {
    ASSERT_GE(a.upper(k), f) << "key " << k;
    if (a.upper(k) > f + slack) ++over;
  }
  EXPECT_LE(over, truth.size() / 20) << "eps*N bound violated too often";
}

TEST(CountSketchTest, MergeAddsRowsAndKeepsUnbiasedEstimates) {
  CountSketchHh<K64> a(0.02, 0.05, 16, 9);
  CountSketchHh<K64> b(0.02, 0.05, 16, 9);
  for (int i = 0; i < 400; ++i) a.increment(1);
  for (int i = 0; i < 600; ++i) b.increment(1);
  for (int i = 0; i < 300; ++i) b.increment(2);
  a.merge(b);
  EXPECT_EQ(a.total(), 1300u);
  const auto slack = static_cast<std::int64_t>(0.02 * 1300.0);
  EXPECT_NEAR(static_cast<double>(a.estimate(1)), 1000.0,
              static_cast<double>(slack) + 1.0);
  EXPECT_NEAR(static_cast<double>(a.estimate(2)), 300.0,
              static_cast<double>(slack) + 1.0);
  bool saw2 = false;
  a.for_each([&](const K64& k, std::uint64_t, std::uint64_t) { saw2 |= k == 2; });
  EXPECT_TRUE(saw2) << "other side's candidate lost in merge";
}

TEST(CountSketchTest, MergeRejectsIncompatibleSketches) {
  CountSketchHh<K64> a(0.02, 0.05, 16, 9);
  CountSketchHh<K64> seed_mismatch(0.02, 0.05, 16, 10);
  EXPECT_THROW(a.merge(seed_mismatch), std::invalid_argument);
  CountSketchHh<K64> dim_mismatch(0.1, 0.05, 16, 9);
  EXPECT_THROW(a.merge(dim_mismatch), std::invalid_argument);
}

// ----------------------------------------------- uniform make() factory ----

template <class B>
class BackendFactory : public ::testing::Test {};

using BackendTypes = ::testing::Types<SpaceSaving<Key128>, MisraGries<Key128>,
                                      LossyCounting<Key128>, CountMinHh<Key128>>;
TYPED_TEST_SUITE(BackendFactory, BackendTypes);

TYPED_TEST(BackendFactory, MakeAndBasicContract) {
  BackendConfig cfg;
  cfg.capacity = 64;
  cfg.eps_a = 1.0 / 64;
  cfg.delta_a = 0.05;
  cfg.seed = 7;
  TypeParam b = TypeParam::make(cfg);
  const Key128 hot{0, 42};
  for (int i = 0; i < 1000; ++i) {
    b.increment(hot);
    b.increment(Key128{0, 1000 + static_cast<std::uint64_t>(i) % 8});
  }
  EXPECT_EQ(b.total(), 2000u);
  EXPECT_GE(b.upper(hot), 1000u);
  EXPECT_LE(b.lower(hot), 1000u);
  bool hot_listed = false;
  for (const auto& e : b.entries()) {
    EXPECT_GE(e.upper, e.lower);
    if (e.key == hot) hot_listed = true;
  }
  EXPECT_TRUE(hot_listed);
  b.clear();
  EXPECT_EQ(b.total(), 0u);
}

}  // namespace
}  // namespace rhhh
