// Tests for the mini virtual switch: masks, the exact-match cache, the
// tuple-space megaflow classifier, the datapath pipeline with measurement
// hooks, and the distributed (SPSC ring + measurement thread) deployment.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "net/ipv4.hpp"
#include "trace/trace_gen.hpp"
#include "vswitch/datapath.hpp"
#include "vswitch/distributed.hpp"
#include "vswitch/emc.hpp"
#include "vswitch/megaflow.hpp"

namespace rhhh {
namespace {

FiveTuple tuple(Ipv4 src, Ipv4 dst, std::uint16_t sp = 1000, std::uint16_t dp = 80,
                std::uint8_t proto = 6) {
  return FiveTuple{src, dst, sp, dp, proto};
}

// ---------------------------------------------------------------- masks ----

TEST(FlowMaskTest, ExactKeepsEverything) {
  const FiveTuple t = tuple(ipv4(1, 2, 3, 4), ipv4(5, 6, 7, 8), 1234, 443, 17);
  EXPECT_EQ(FlowMask::exact().apply(t), t);
}

TEST(FlowMaskTest, PrefixesWildcardPortsAndProto) {
  const FiveTuple t = tuple(ipv4(1, 2, 3, 4), ipv4(5, 6, 7, 8), 1234, 443, 17);
  const FiveTuple m = FlowMask::prefixes(16, 24).apply(t);
  EXPECT_EQ(m.src_ip, ipv4(1, 2, 0, 0));
  EXPECT_EQ(m.dst_ip, ipv4(5, 6, 7, 0));
  EXPECT_EQ(m.src_port, 0);
  EXPECT_EQ(m.dst_port, 0);
  EXPECT_EQ(m.proto, 0);
}

// ------------------------------------------------------------------ emc ----

TEST(EmcTest, MissThenHit) {
  ExactMatchCache emc(64);
  const FiveTuple t = tuple(1, 2);
  EXPECT_EQ(emc.lookup(t), nullptr);
  emc.insert(t, Action::output(3));
  const Action* a = emc.lookup(t);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(*a, Action::output(3));
  EXPECT_EQ(emc.hits(), 1u);
  EXPECT_EQ(emc.misses(), 1u);
}

TEST(EmcTest, RefreshUpdatesAction) {
  ExactMatchCache emc(64);
  const FiveTuple t = tuple(1, 2);
  emc.insert(t, Action::output(1));
  emc.insert(t, Action::drop());
  const Action* a = emc.lookup(t);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->type, ActionType::kDrop);
}

TEST(EmcTest, EvictionWithinSetKeepsWorking) {
  ExactMatchCache emc(8);  // 4 sets x 2 ways: tiny, lots of eviction
  for (std::uint32_t i = 0; i < 1000; ++i) {
    emc.insert(tuple(i, i + 1), Action::output(static_cast<std::uint16_t>(i % 7)));
  }
  // The most recently inserted entry must be present.
  EXPECT_NE(emc.lookup(tuple(999, 1000)), nullptr);
}

TEST(EmcTest, ClearDropsEntries) {
  ExactMatchCache emc(64);
  emc.insert(tuple(1, 2), Action::output(1));
  emc.clear();
  EXPECT_EQ(emc.lookup(tuple(1, 2)), nullptr);
}

// ------------------------------------------------------------- megaflow ----

TEST(MegaflowTest, ExactRuleMatches) {
  MegaflowTable t;
  t.add_rule(FlowMask::exact(), tuple(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2)),
             Action::output(7));
  const Action* a = t.lookup(tuple(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2)));
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->port, 7);
  EXPECT_EQ(t.lookup(tuple(ipv4(1, 1, 1, 2), ipv4(2, 2, 2, 2))), nullptr);
}

TEST(MegaflowTest, WildcardRuleMatchesWholeSubnet) {
  MegaflowTable t;
  t.add_rule(FlowMask::prefixes(16, 0), tuple(ipv4(10, 1, 0, 0), 0),
             Action::drop());
  for (std::uint8_t i = 0; i < 10; ++i) {
    const Action* a = t.lookup(tuple(ipv4(10, 1, i, i), ipv4(99, 9, 9, 9), i, i, i));
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a->type, ActionType::kDrop);
  }
  EXPECT_EQ(t.lookup(tuple(ipv4(10, 2, 0, 0), 5)), nullptr);
}

TEST(MegaflowTest, FirstSubtableWinsOnOverlap) {
  MegaflowTable t;
  t.add_rule(FlowMask::exact(), tuple(ipv4(10, 1, 1, 1), ipv4(2, 2, 2, 2)),
             Action::output(1));
  t.add_rule(FlowMask::prefixes(8, 0), tuple(ipv4(10, 0, 0, 0), 0), Action::drop());
  const Action* a = t.lookup(tuple(ipv4(10, 1, 1, 1), ipv4(2, 2, 2, 2)));
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->type, ActionType::kOutput);  // exact rule added first
}

TEST(MegaflowTest, SharedMaskSharesSubtable) {
  MegaflowTable t;
  t.add_rule(FlowMask::prefixes(24, 0), tuple(ipv4(1, 1, 1, 0), 0), Action::output(1));
  t.add_rule(FlowMask::prefixes(24, 0), tuple(ipv4(2, 2, 2, 0), 0), Action::output(2));
  EXPECT_EQ(t.subtables(), 1u);
  EXPECT_EQ(t.rules(), 2u);
}

// ------------------------------------------------------------- datapath ----

TEST(DatapathTest, DefaultForwardsAndCaches) {
  Datapath dp;
  TraceGenerator gen(trace_preset("chicago16"));
  const auto packets = gen.generate(10000);
  const std::uint64_t forwarded = dp.run(packets);
  EXPECT_EQ(forwarded, 10000u);
  EXPECT_EQ(dp.stats().received, 10000u);
  // Flow locality: the EMC must absorb most lookups after the first packet
  // of each flow.
  EXPECT_GT(dp.stats().emc_hits, 5000u);
  EXPECT_EQ(dp.stats().emc_hits + dp.stats().megaflow_hits + dp.stats().misses,
            10000u);
}

TEST(DatapathTest, RulesApply) {
  DatapathConfig cfg;
  cfg.default_action = Action::output(1);
  Datapath dp(cfg);
  // Drop everything from 10.0.0.0/8.
  dp.add_rule(FlowMask::prefixes(8, 0), tuple(ipv4(10, 0, 0, 0), 0), Action::drop());
  PacketRecord bad;
  bad.src_ip = ipv4(10, 5, 5, 5);
  bad.dst_ip = ipv4(1, 1, 1, 1);
  PacketRecord good = bad;
  good.src_ip = ipv4(11, 5, 5, 5);
  EXPECT_EQ(dp.process(bad).type, ActionType::kDrop);
  EXPECT_EQ(dp.process(good).type, ActionType::kOutput);
  EXPECT_EQ(dp.stats().dropped, 1u);
  EXPECT_EQ(dp.stats().forwarded, 1u);
  // Second packet of the dropped flow hits the EMC, same verdict.
  EXPECT_EQ(dp.process(bad).type, ActionType::kDrop);
  EXPECT_GE(dp.stats().emc_hits, 1u);
}

TEST(DatapathTest, HookSeesEveryPacket) {
  const Hierarchy h = Hierarchy::ipv4_2d(Granularity::kByte);
  auto mst = make_mst(h);
  HhhHook hook(*mst);
  Datapath dp;
  dp.set_hook(&hook);
  TraceGenerator gen(trace_preset("sanjose13"));
  const auto packets = gen.generate(5000);
  dp.run(packets);
  EXPECT_EQ(mst->stream_length(), 5000u);
  dp.set_hook(nullptr);
  dp.process(packets[0]);
  EXPECT_EQ(mst->stream_length(), 5000u);
}

TEST(DatapathTest, InlineRhhhFindsHeavyPair) {
  const Hierarchy h = Hierarchy::ipv4_2d(Granularity::kByte);
  LatticeParams lp;
  lp.eps = 0.05;
  lp.delta = 0.05;
  RhhhSpaceSaving alg(h, LatticeMode::kRhhh, lp);
  HhhHook hook(alg);
  Datapath dp;
  dp.set_hook(&hook);
  TraceGenerator gen(trace_preset("chicago15"));
  PacketRecord hot;
  hot.src_ip = ipv4(66, 1, 2, 3);
  hot.dst_ip = ipv4(77, 4, 5, 6);
  Xoroshiro128 rng(3);
  for (int i = 0; i < 300000; ++i) {
    dp.process(rng.bounded(10) < 4 ? hot : gen.next());
  }
  const HhhSet out = alg.output(0.3);
  bool found = false;
  for (const HhhCandidate& c : out) {
    if (c.prefix.key == Key128::from_pair(hot.src_ip, hot.dst_ip)) found = true;
  }
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------- distributed ----

TEST(DistributedTest, EndToEndFindsHeavyPair) {
  const Hierarchy h = Hierarchy::ipv4_2d(Granularity::kByte);
  LatticeParams lp;
  lp.eps = 0.05;
  lp.delta = 0.05;
  lp.V = 50;  // V = 2H: forward ~50% of packets
  DistributedMeasurement dist(h, lp, 1 << 14);
  dist.start();
  Datapath dp;
  dp.set_hook(&dist);
  PacketRecord hot;
  hot.src_ip = ipv4(66, 1, 2, 3);
  hot.dst_ip = ipv4(77, 4, 5, 6);
  TraceGenerator gen(trace_preset("chicago16"));
  Xoroshiro128 rng(4);
  const int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    dp.process(rng.bounded(10) < 4 ? hot : gen.next());
  }
  dist.stop();
  EXPECT_EQ(dist.offered(), static_cast<std::uint64_t>(kN));
  // ~H/V of packets forwarded, minus any ring drops.
  EXPECT_NEAR(static_cast<double>(dist.forwarded() + dist.drops()), kN * 0.5,
              kN * 0.05);
  EXPECT_EQ(dist.algorithm().stream_length(), static_cast<std::uint64_t>(kN));
  const HhhSet out = dist.output(0.3);
  bool found = false;
  for (const HhhCandidate& c : out) {
    if (c.prefix.key == Key128::from_pair(hot.src_ip, hot.dst_ip)) found = true;
  }
  EXPECT_TRUE(found) << "forwarded=" << dist.forwarded() << " drops="
                     << dist.drops();
}

TEST(DistributedTest, StartStopIdempotent) {
  const Hierarchy h = Hierarchy::ipv4_1d(Granularity::kByte);
  DistributedMeasurement dist(h, LatticeParams{});
  dist.start();
  dist.start();
  dist.stop();
  dist.stop();
  SUCCEED();
}

TEST(DistributedTest, CountsRingDropsWhenConsumerStalls) {
  const Hierarchy h = Hierarchy::ipv4_1d(Granularity::kByte);
  LatticeParams lp;
  DistributedMeasurement dist(h, lp, 16);  // tiny ring, V = H: every packet
  // Consumer never started: the ring fills and further samples drop.
  PacketRecord p;
  p.src_ip = ipv4(1, 2, 3, 4);
  for (int i = 0; i < 1000; ++i) dist.on_packet(p);
  EXPECT_GT(dist.drops(), 900u);
  const DistributedMeasurement::Stats before = dist.stats();
  EXPECT_EQ(before.offered, 1000u);
  EXPECT_EQ(before.drops, dist.drops());
  EXPECT_GT(before.drop_rate, 0.9);
  dist.start();
  dist.stop();
  EXPECT_GT(dist.algorithm().updates_performed(), 0u);
  const DistributedMeasurement::Stats after = dist.stats();
  EXPECT_EQ(after.forwarded + after.drops, 1000u);
  EXPECT_NEAR(after.drop_rate,
              static_cast<double>(after.drops) / 1000.0, 1e-12);
}

TEST(DistributedTest, LosslessRunHasZeroDropRate) {
  const Hierarchy h = Hierarchy::ipv4_1d(Granularity::kByte);
  LatticeParams lp;
  DistributedMeasurement dist(h, lp, 1 << 16);
  dist.start();
  PacketRecord p;
  p.src_ip = ipv4(9, 8, 7, 6);
  for (int i = 0; i < 20000; ++i) dist.on_packet(p);
  dist.stop();
  const DistributedMeasurement::Stats s = dist.stats();
  EXPECT_EQ(s.offered, 20000u);
  EXPECT_EQ(s.drops, 0u);
  EXPECT_DOUBLE_EQ(s.drop_rate, 0.0);
  EXPECT_EQ(s.forwarded, dist.algorithm().updates_performed());
}

}  // namespace
}  // namespace rhhh
