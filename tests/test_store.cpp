// Durable window store tests (src/store/).
//
// Three layers of coverage:
//   * serde round-trip fidelity: encode -> decode reproduces stream
//     counters, per-node rosters, estimates and whole HHH sets byte for
//     byte, across the hierarchy roster and every lattice mode, for both
//     directly-updated and merge()-built instances.
//   * corruption is LOUD: truncated records, flipped payload bytes (CRC),
//     version skew, impossible rosters and torn segment tails all throw or
//     degrade to the valid prefix -- never UB (this suite runs under the
//     ASan/UBSan CI job).
//   * the acceptance criterion: an archiver-enabled engine's store,
//     reopened cold, answers a last-K-windows query byte-identical to the
//     trend_snapshot() taken before shutdown (same HHH sets, same stream
//     lengths, same folded drops).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "store/archive.hpp"
#include "store/segment.hpp"
#include "store/serde.hpp"
#include "util/random.hpp"

namespace rhhh {
namespace {

namespace fs = std::filesystem;

// ------------------------------------------------------------- helpers ----

/// Fresh per-test scratch directory, removed on destruction.
struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag) {
    path = fs::path(::testing::TempDir()) /
           ("rhhh_store_" + tag + "_" + std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  [[nodiscard]] std::string str() const { return path.string(); }
};

std::uint64_t fnv1a(std::uint64_t h, const std::string& s) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Order-independent-but-content-exact digest of an HHH set: one line per
/// candidate (formatted prefix + full-precision numbers), sorted.
std::uint64_t digest_set(const Hierarchy& h, const HhhSet& s) {
  std::vector<std::string> lines;
  lines.reserve(s.size());
  for (const HhhCandidate& c : s) {
    char buf[160];
    std::snprintf(buf, sizeof buf, "%s|%.17g|%.17g|%.17g|%.17g",
                  h.format(c.prefix).c_str(), c.f_est, c.f_lo, c.f_hi, c.c_hat);
    lines.emplace_back(buf);
  }
  std::sort(lines.begin(), lines.end());
  std::uint64_t d = 0xcbf29ce484222325ULL;
  for (const std::string& l : lines) d = fnv1a(d, l);
  return d;
}

/// In-order digest: also pins the candidate iteration order ("byte
/// identical", not merely set-equal).
std::uint64_t digest_set_ordered(const Hierarchy& h, const HhhSet& s) {
  std::uint64_t d = 0xcbf29ce484222325ULL;
  for (const HhhCandidate& c : s) {
    char buf[160];
    std::snprintf(buf, sizeof buf, "%s|%.17g|%.17g|%.17g|%.17g",
                  h.format(c.prefix).c_str(), c.f_est, c.f_lo, c.f_hi, c.c_hat);
    d = fnv1a(d, buf);
  }
  return d;
}

Key128 random_key(const Hierarchy& h, Xoroshiro128& rng) {
  if (h.dim(0).width_bits == 128) return Key128{rng(), rng()};
  if (h.dims() == 2) {
    return Key128::from_pair(static_cast<std::uint32_t>(rng()),
                             static_cast<std::uint32_t>(rng()));
  }
  return Key128::from_u32(static_cast<std::uint32_t>(rng()));
}

/// A skewed deterministic stream: a few hot keys over random background.
void feed(RhhhSpaceSaving& lat, const Hierarchy& h, std::uint64_t seed,
          std::size_t n) {
  Xoroshiro128 rng(seed);
  std::vector<Key128> hot;
  hot.reserve(8);
  for (int i = 0; i < 8; ++i) hot.push_back(random_key(h, rng));
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.bounded(100) < 60) {
      lat.update(hot[rng.bounded(8)]);
    } else {
      lat.update(random_key(h, rng));
    }
  }
}

void expect_identical(const RhhhSpaceSaving& a, const RhhhSpaceSaving& b,
                      const Hierarchy& h, std::uint64_t probe_seed) {
  ASSERT_EQ(a.stream_length(), b.stream_length());
  ASSERT_EQ(a.updates_performed(), b.updates_performed());
  ASSERT_DOUBLE_EQ(a.psi(), b.psi());
  // Per-node rosters: identical sequences (keys, bounds, order, totals).
  for (std::uint32_t d = 0; d < a.H(); ++d) {
    const auto ea = a.instance(d).entries();
    const auto eb = b.instance(d).entries();
    ASSERT_EQ(ea.size(), eb.size()) << "node " << d;
    ASSERT_EQ(a.instance(d).total(), b.instance(d).total()) << "node " << d;
    for (std::size_t i = 0; i < ea.size(); ++i) {
      EXPECT_EQ(ea[i].key, eb[i].key) << "node " << d << " entry " << i;
      EXPECT_EQ(ea[i].upper, eb[i].upper) << "node " << d << " entry " << i;
      EXPECT_EQ(ea[i].lower, eb[i].lower) << "node " << d << " entry " << i;
    }
  }
  // Whole HHH sets, order included, at several thresholds.
  for (const double theta : {0.02, 0.1, 0.3}) {
    EXPECT_EQ(digest_set_ordered(h, a.output(theta)),
              digest_set_ordered(h, b.output(theta)))
        << "theta " << theta;
  }
  // Point estimates on random prefixes (tracked or not).
  Xoroshiro128 rng(probe_seed);
  for (int i = 0; i < 64; ++i) {
    const auto node = static_cast<std::uint32_t>(rng.bounded(
        static_cast<std::uint64_t>(h.size())));
    const Prefix p{node, h.mask_key(node, random_key(h, rng))};
    EXPECT_DOUBLE_EQ(a.estimate(p), b.estimate(p));
  }
}

store::WindowMeta meta_of(const RhhhSpaceSaving& lat, std::uint64_t epoch) {
  store::WindowMeta m;
  m.epoch = epoch;
  m.wall_start_ns = static_cast<std::int64_t>(epoch) * 1'000'000'000;
  m.wall_end_ns = m.wall_start_ns + 999'999'999;  // [e, e+1) seconds
  m.duration_ns = 900'000'000;
  m.drops = 0;
  m.stream_length = lat.stream_length();
  m.updates = lat.updates_performed();
  return m;
}

// -------------------------------------------------- serde round trips ----

struct RosterCase {
  HierarchyKind kind;
  LatticeMode mode;
};

class SerdeRoundTrip : public ::testing::TestWithParam<RosterCase> {};

TEST_P(SerdeRoundTrip, ReproducesWindowExactly) {
  const auto [kind, mode] = GetParam();
  const Hierarchy h = make_hierarchy(kind);
  LatticeParams lp;
  lp.eps = 0.05;
  lp.delta = 0.05;
  lp.seed = 17;
  RhhhSpaceSaving lat(h, mode, lp);
  feed(lat, h, 99, 60000);

  const store::WindowMeta meta = meta_of(lat, 7);
  const store::Bytes bytes = store::encode_window(meta, kind, lat);

  // Cheap header peek agrees with what was written.
  const store::WindowHeader hdr =
      store::decode_window_header(bytes.data(), bytes.size());
  EXPECT_EQ(hdr.version, store::kWindowFormatVersion);
  EXPECT_EQ(hdr.config.hierarchy, kind);
  EXPECT_EQ(hdr.config.mode, mode);
  EXPECT_EQ(hdr.config.H, h.size());
  EXPECT_EQ(hdr.meta.epoch, 7u);
  EXPECT_EQ(hdr.meta.stream_length, lat.stream_length());

  store::WindowMeta meta2;
  const auto back =
      store::decode_window(bytes.data(), bytes.size(), h, &meta2);
  EXPECT_EQ(meta2.wall_start_ns, meta.wall_start_ns);
  EXPECT_EQ(meta2.duration_ns, meta.duration_ns);
  expect_identical(lat, *back, h, 1234);

  // Determinism: re-encoding the decoded instance is byte-identical.
  EXPECT_EQ(store::encode_window(meta, kind, *back), bytes);
}

INSTANTIATE_TEST_SUITE_P(
    Roster, SerdeRoundTrip,
    ::testing::Values(
        RosterCase{HierarchyKind::kIpv4OneDimBytes, LatticeMode::kRhhh},
        RosterCase{HierarchyKind::kIpv4OneDimBytes, LatticeMode::kMst},
        RosterCase{HierarchyKind::kIpv4TwoDimBytes, LatticeMode::kRhhh},
        RosterCase{HierarchyKind::kIpv4TwoDimBytes, LatticeMode::kSampledMst},
        RosterCase{HierarchyKind::kIpv6Bytes, LatticeMode::kRhhh},
        RosterCase{HierarchyKind::kIpv4TwoDimNibbles, LatticeMode::kRhhh}));

TEST(SerdeRoundTripExtra, MergedInstanceSurvives) {
  // The archiver serializes *merged* lattices (merge() leaves total() above
  // the roster sum and rebuilds smallest-first); the round trip must keep
  // all of that.
  const Hierarchy h = make_hierarchy(HierarchyKind::kIpv4TwoDimBytes);
  LatticeParams lp;
  lp.eps = 0.05;
  lp.delta = 0.05;
  lp.seed = 5;
  RhhhSpaceSaving a(h, LatticeMode::kRhhh, lp);
  lp.seed = 6;
  RhhhSpaceSaving b(h, LatticeMode::kRhhh, lp);
  feed(a, h, 41, 40000);
  feed(b, h, 42, 40000);
  lp.seed = 7;
  RhhhSpaceSaving merged(h, LatticeMode::kRhhh, lp);
  merged.merge(a);
  merged.merge(b);
  merged.advance_stream(123);  // folded drops

  const store::Bytes bytes = store::encode_window(
      meta_of(merged, 1), HierarchyKind::kIpv4TwoDimBytes, merged);
  const auto back = store::decode_window(bytes.data(), bytes.size(), h);
  expect_identical(merged, *back, h, 777);
}

TEST(SerdeRoundTripExtra, EmptyWindow) {
  const Hierarchy h = make_hierarchy(HierarchyKind::kIpv4OneDimBytes);
  LatticeParams lp;
  lp.eps = 0.1;
  lp.delta = 0.1;
  RhhhSpaceSaving lat(h, LatticeMode::kRhhh, lp);
  const store::Bytes bytes =
      store::encode_window(meta_of(lat, 1), HierarchyKind::kIpv4OneDimBytes, lat);
  const auto back = store::decode_window(bytes.data(), bytes.size(), h);
  EXPECT_EQ(back->stream_length(), 0u);
  EXPECT_TRUE(back->output(0.1).empty());
}

// ------------------------------------------------------ loud corruption ----

store::Bytes sample_record(const Hierarchy& h, std::uint64_t seed = 3) {
  LatticeParams lp;
  lp.eps = 0.1;
  lp.delta = 0.1;
  lp.seed = seed;
  RhhhSpaceSaving lat(h, LatticeMode::kRhhh, lp);
  feed(lat, h, seed, 20000);
  return store::encode_window(meta_of(lat, seed),
                              HierarchyKind::kIpv4TwoDimBytes, lat);
}

TEST(SerdeCorruption, VersionSkewThrows) {
  const Hierarchy h = make_hierarchy(HierarchyKind::kIpv4TwoDimBytes);
  store::Bytes bytes = sample_record(h);
  bytes[0] = 99;  // format version word
  EXPECT_THROW((void)store::decode_window(bytes.data(), bytes.size(), h),
               std::runtime_error);
  EXPECT_THROW((void)store::decode_window_header(bytes.data(), bytes.size()),
               std::runtime_error);
}

TEST(SerdeCorruption, TruncationThrowsAtAnyCut) {
  const Hierarchy h = make_hierarchy(HierarchyKind::kIpv4TwoDimBytes);
  const store::Bytes bytes = sample_record(h);
  // Every prefix of the record must decode loudly, never out of bounds
  // (ASan watches this suite).
  for (const double f : {0.0, 0.1, 0.5, 0.9, 0.999}) {
    const auto cut = static_cast<std::size_t>(static_cast<double>(bytes.size()) * f);
    EXPECT_THROW((void)store::decode_window(bytes.data(), cut, h),
                 std::runtime_error)
        << "cut " << cut << "/" << bytes.size();
  }
}

TEST(SerdeCorruption, TrailingGarbageThrows) {
  const Hierarchy h = make_hierarchy(HierarchyKind::kIpv4TwoDimBytes);
  store::Bytes bytes = sample_record(h);
  bytes.push_back(0xAB);
  EXPECT_THROW((void)store::decode_window(bytes.data(), bytes.size(), h),
               std::runtime_error);
}

TEST(SerdeCorruption, HierarchyMismatchThrows) {
  const Hierarchy h2 = make_hierarchy(HierarchyKind::kIpv4TwoDimBytes);
  const Hierarchy h1 = make_hierarchy(HierarchyKind::kIpv4OneDimBytes);
  const store::Bytes bytes = sample_record(h2);
  EXPECT_THROW((void)store::decode_window(bytes.data(), bytes.size(), h1),
               std::runtime_error);
}

TEST(SerdeCorruption, SameHDifferentKindRejectedWhenKindIsPinned) {
  // kIpv4OneDimBits and kIpv6Nibbles are both H=33: the size check alone
  // cannot tell them apart, so a pinned expected kind must.
  const Hierarchy h6 = make_hierarchy(HierarchyKind::kIpv6Nibbles);
  const Hierarchy h4 = make_hierarchy(HierarchyKind::kIpv4OneDimBits);
  ASSERT_EQ(h6.size(), h4.size());
  LatticeParams lp;
  lp.eps = 0.1;
  lp.delta = 0.1;
  RhhhSpaceSaving lat(h6, LatticeMode::kRhhh, lp);
  feed(lat, h6, 9, 5000);
  const store::Bytes bytes =
      store::encode_window(meta_of(lat, 1), HierarchyKind::kIpv6Nibbles, lat);
  // Unpinned decode over the same-H foreign hierarchy cannot be caught...
  EXPECT_NO_THROW((void)store::decode_window(bytes.data(), bytes.size(), h4));
  // ...but every store/archiver read pins the kind and fails loudly.
  const HierarchyKind expect = HierarchyKind::kIpv4OneDimBits;
  EXPECT_THROW((void)store::decode_window(bytes.data(), bytes.size(), h4,
                                          nullptr, &expect),
               std::runtime_error);
}

// ---------------------------------------------------------- segment log ----

TEST(SegmentLog, SealedWriteReadBack) {
  const Hierarchy h = make_hierarchy(HierarchyKind::kIpv4TwoDimBytes);
  TempDir tmp("segment");
  const std::string path = (tmp.path / "00000001.seg").string();
  std::vector<store::Bytes> payloads;
  {
    store::SegmentWriter w(path);
    for (std::uint64_t e = 1; e <= 3; ++e) {
      payloads.push_back(sample_record(h, e));
      w.append(payloads.back(), e, static_cast<std::int64_t>(e) * 1000,
               static_cast<std::int64_t>(e) * 1000 + 999);
    }
    w.seal();
  }
  store::SegmentReader r(path);
  EXPECT_TRUE(r.sealed());
  EXPECT_FALSE(r.truncated_tail());
  ASSERT_EQ(r.records(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(r.index()[i].epoch, i + 1);
    EXPECT_EQ(r.read(i), payloads[i]);
  }
}

TEST(SegmentLog, TornTailServesValidPrefix) {
  const Hierarchy h = make_hierarchy(HierarchyKind::kIpv4TwoDimBytes);
  TempDir tmp("torn");
  const std::string path = (tmp.path / "00000001.seg").string();
  const std::string crash = (tmp.path / "crash.seg").string();
  std::vector<store::Bytes> payloads;
  std::uint64_t rec3_offset = 0;
  {
    store::SegmentWriter w(path);
    for (std::uint64_t e = 1; e <= 3; ++e) {
      payloads.push_back(sample_record(h, e));
      const store::SegmentIndexEntry ie = w.append(payloads.back(), e, 0, 0);
      if (e == 3) rec3_offset = ie.offset;
    }
    // Simulate the crash: snapshot the file while the writer is still
    // open (no footer yet), before the destructor seals the original.
    fs::copy_file(path, crash);
    w.seal();
  }
  // Tear the copy mid-record-3.
  fs::resize_file(crash, rec3_offset + 20);
  store::SegmentReader r(crash);
  EXPECT_FALSE(r.sealed());
  EXPECT_TRUE(r.truncated_tail());
  ASSERT_EQ(r.records(), 2u);
  EXPECT_EQ(r.read(0), payloads[0]);
  EXPECT_EQ(r.read(1), payloads[1]);
}

TEST(SegmentLog, UnsealedCleanScanSeesEverything) {
  const Hierarchy h = make_hierarchy(HierarchyKind::kIpv4TwoDimBytes);
  TempDir tmp("unsealed");
  const std::string path = (tmp.path / "00000001.seg").string();
  const std::string crash = (tmp.path / "crash.seg").string();
  {
    store::SegmentWriter w(path);
    w.append(sample_record(h, 1), 1, 0, 0);
    w.append(sample_record(h, 2), 2, 0, 0);
    fs::copy_file(path, crash);  // crash right after a completed append
  }
  store::SegmentReader r(crash);
  EXPECT_FALSE(r.sealed());
  EXPECT_FALSE(r.truncated_tail());  // every byte accounted for
  EXPECT_EQ(r.records(), 2u);
}

TEST(SegmentLog, BitFlipFailsCrcLoudly) {
  const Hierarchy h = make_hierarchy(HierarchyKind::kIpv4TwoDimBytes);
  TempDir tmp("crc");
  const std::string path = (tmp.path / "00000001.seg").string();
  store::SegmentIndexEntry ie;
  {
    store::SegmentWriter w(path);
    ie = w.append(sample_record(h, 1), 1, 0, 0);
    w.seal();
  }
  // Flip one byte in the middle of the payload.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<std::streamoff>(ie.offset) + 12 + ie.length / 2);
    char c{};
    f.get(c);
    f.seekp(static_cast<std::streamoff>(ie.offset) + 12 + ie.length / 2);
    f.put(static_cast<char>(c ^ 0x40));
  }
  store::SegmentReader r(path);  // footer still valid
  EXPECT_TRUE(r.sealed());
  ASSERT_EQ(r.records(), 1u);
  EXPECT_THROW((void)r.read(0), std::runtime_error);
}

TEST(SegmentLog, NotASegmentThrows) {
  TempDir tmp("notseg");
  const std::string path = (tmp.path / "bogus.seg").string();
  std::ofstream(path, std::ios::binary) << "this is not a segment file";
  EXPECT_THROW(store::SegmentReader r(path), std::runtime_error);
}

// -------------------------------------------------------- window archive ----

/// Small lattices so many windows fit in tiny segments.
std::unique_ptr<RhhhSpaceSaving> small_window(const Hierarchy& h,
                                              std::uint64_t seed) {
  LatticeParams lp;
  lp.eps = 0.2;
  lp.delta = 0.1;
  lp.seed = seed;
  auto lat = std::make_unique<RhhhSpaceSaving>(h, LatticeMode::kRhhh, lp);
  feed(*lat, h, seed, 5000);
  return lat;
}

TEST(WindowArchive, AppendRollQueryRetention) {
  const Hierarchy h = make_hierarchy(HierarchyKind::kIpv4OneDimBytes);
  TempDir tmp("archive");
  ArchiveConfig cfg;
  cfg.dir = tmp.str();
  cfg.segment_bytes = 6 << 10;  // force several rolls
  {
    auto ar = store::WindowArchive::open_write(cfg);
    for (std::uint64_t e = 1; e <= 12; ++e) {
      const auto lat = small_window(h, e);
      ar.append(meta_of(*lat, e), HierarchyKind::kIpv4OneDimBytes, *lat);
    }
    ar.close();
    EXPECT_GT(ar.segments(), 2u);
    EXPECT_EQ(ar.windows(), 12u);
  }

  // Cold reopen: full catalog, ordered metadata, newest-first last().
  const auto ar = store::WindowArchive::open_read(tmp.str());
  EXPECT_FALSE(ar.truncated_tail());
  ASSERT_EQ(ar.windows(), 12u);
  const auto metas = ar.list();
  for (std::size_t i = 0; i < metas.size(); ++i) {
    EXPECT_EQ(metas[i].epoch, i + 1);
  }
  const auto newest = ar.last(3);
  ASSERT_EQ(newest.size(), 3u);
  EXPECT_EQ(newest[0].meta.epoch, 12u);
  EXPECT_EQ(newest[2].meta.epoch, 10u);

  // Time-range query: window e spans [e, e+1) seconds (see meta_of).
  const auto mid = ar.range(4'000'000'000, 6'500'000'000);
  ASSERT_EQ(mid.size(), 3u);  // epochs 4, 5, 6 overlap
  EXPECT_EQ(mid.front().meta.epoch, 4u);
  EXPECT_EQ(mid.back().meta.epoch, 6u);

  // merged_last == manual merge of the same windows (oldest first).
  std::uint64_t drops = 0;
  const auto merged = ar.merged_last(3, &drops);
  ASSERT_NE(merged, nullptr);
  auto manual = ar.read(9).window;
  manual->merge(*ar.read(10).window);
  manual->merge(*ar.read(11).window);
  EXPECT_EQ(merged->stream_length(), manual->stream_length());
  EXPECT_EQ(digest_set(h, merged->output(0.1)), digest_set(h, manual->output(0.1)));

  // Replay covers the whole history in order.
  auto it = ar.replay();
  store::ArchivedWindow w;
  std::uint64_t expect_epoch = 1;
  while (it.next(w)) EXPECT_EQ(w.meta.epoch, expect_epoch++);
  EXPECT_EQ(expect_epoch, 13u);

  // Retention compaction: trim to ~2 segments' worth of bytes; the newest
  // windows survive, the oldest segments are gone.
  ArchiveConfig wcfg = cfg;
  auto war = store::WindowArchive::open_write(wcfg);
  const std::size_t before = war.segments();
  const std::uint64_t budget = war.total_bytes() / 2;
  const std::size_t deleted = war.compact(budget);
  EXPECT_GT(deleted, 0u);
  EXPECT_EQ(war.segments(), before - deleted);
  EXPECT_LE(war.total_bytes(), budget);
  ASSERT_GT(war.windows(), 0u);
  EXPECT_EQ(war.list().back().epoch, 12u);  // newest retained
}

TEST(WindowArchive, CompactRepairsTornSegment) {
  const Hierarchy h = make_hierarchy(HierarchyKind::kIpv4OneDimBytes);
  TempDir tmp("repair");
  ArchiveConfig cfg;
  cfg.dir = tmp.str();
  std::uint64_t rec2_offset = 0;
  {
    store::SegmentWriter w((tmp.path / "00000001.seg").string());
    const auto l1 = small_window(h, 1);
    w.append(store::encode_window(meta_of(*l1, 1), HierarchyKind::kIpv4OneDimBytes, *l1),
             1, 0, 0);
    const auto l2 = small_window(h, 2);
    rec2_offset =
        w.append(store::encode_window(meta_of(*l2, 2), HierarchyKind::kIpv4OneDimBytes, *l2),
                 2, 1000, 1999)
            .offset;
    // No seal: emulate a crash, then tear record 2.
    fs::copy_file(tmp.path / "00000001.seg", tmp.path / "torn.seg");
  }
  fs::remove(tmp.path / "00000001.seg");
  fs::rename(tmp.path / "torn.seg", tmp.path / "00000001.seg");
  fs::resize_file(tmp.path / "00000001.seg", rec2_offset + 16);

  auto ar = store::WindowArchive::open_write(cfg);
  EXPECT_TRUE(ar.truncated_tail());
  EXPECT_EQ(ar.windows(), 1u);
  ar.compact(0);  // repair only
  EXPECT_FALSE(ar.truncated_tail());

  const auto cold = store::WindowArchive::open_read(tmp.str());
  EXPECT_FALSE(cold.truncated_tail());
  ASSERT_EQ(cold.windows(), 1u);
  EXPECT_EQ(cold.read(0).meta.epoch, 1u);
}

TEST(WindowArchive, MixedHierarchyRejected) {
  const Hierarchy h1 = make_hierarchy(HierarchyKind::kIpv4OneDimBytes);
  TempDir tmp("mixed");
  ArchiveConfig cfg;
  cfg.dir = tmp.str();
  auto ar = store::WindowArchive::open_write(cfg);
  const auto l1 = small_window(h1, 1);
  ar.append(meta_of(*l1, 1), HierarchyKind::kIpv4OneDimBytes, *l1);
  EXPECT_THROW(ar.append(meta_of(*l1, 2), HierarchyKind::kIpv4TwoDimBytes, *l1),
               std::invalid_argument);
}

// ------------------------------------------ durability & run identity ----

TEST(SegmentDurability, FsyncCadenceIsObservable) {
  // 3 appends + 1 seal: kNone never syncs, kPerRoll syncs the sealed
  // footer only, kPerRecord syncs every append and the footer.
  const Hierarchy h = make_hierarchy(HierarchyKind::kIpv4TwoDimBytes);
  TempDir tmp("fsync");
  const store::Bytes payload = sample_record(h);
  struct Case {
    FsyncMode mode;
    std::uint64_t want;
  };
  for (const Case c : {Case{FsyncMode::kNone, 0}, Case{FsyncMode::kPerRoll, 1},
                       Case{FsyncMode::kPerRecord, 4}}) {
    const std::string path =
        (tmp.path / (std::string(to_string(c.mode)) + ".seg")).string();
    store::SegmentWriter w(path, c.mode, 0x5EED);
    for (std::uint64_t e = 1; e <= 3; ++e) w.append(payload, e, 0, 0);
    w.seal();
    EXPECT_EQ(w.fsyncs(), c.want) << to_string(c.mode);
    // The cadence changes durability only, never the bytes' readability.
    store::SegmentReader r(path);
    EXPECT_TRUE(r.sealed());
    EXPECT_EQ(r.records(), 3u);
  }
}

TEST(WindowArchive, FsyncModeFlowsThroughTheArchive) {
  const Hierarchy h = make_hierarchy(HierarchyKind::kIpv4OneDimBytes);
  {  // kNone: zero syncs no matter how much is written.
    TempDir tmp("fsnone");
    ArchiveConfig cfg;
    cfg.dir = tmp.str();
    auto ar = store::WindowArchive::open_write(cfg);
    for (std::uint64_t e = 1; e <= 4; ++e) {
      const auto lat = small_window(h, e);
      ar.append(meta_of(*lat, e), HierarchyKind::kIpv4OneDimBytes, *lat);
    }
    ar.close();
    EXPECT_EQ(ar.fsyncs(), 0u);
  }
  {  // kPerRoll: exactly one sync per sealed segment.
    TempDir tmp("fsroll");
    ArchiveConfig cfg;
    cfg.dir = tmp.str();
    cfg.segment_bytes = 6 << 10;  // force several rolls
    cfg.fsync_mode = FsyncMode::kPerRoll;
    auto ar = store::WindowArchive::open_write(cfg);
    for (std::uint64_t e = 1; e <= 12; ++e) {
      const auto lat = small_window(h, e);
      ar.append(meta_of(*lat, e), HierarchyKind::kIpv4OneDimBytes, *lat);
    }
    ar.close();
    EXPECT_GT(ar.segments(), 2u);
    EXPECT_EQ(ar.fsyncs(), ar.segments());
  }
  {  // kPerRecord: every append syncs, plus the segment's footer.
    TempDir tmp("fsrec");
    ArchiveConfig cfg;
    cfg.dir = tmp.str();
    cfg.fsync_mode = FsyncMode::kPerRecord;
    auto ar = store::WindowArchive::open_write(cfg);
    for (std::uint64_t e = 1; e <= 4; ++e) {
      const auto lat = small_window(h, e);
      ar.append(meta_of(*lat, e), HierarchyKind::kIpv4OneDimBytes, *lat);
    }
    ar.close();
    ASSERT_EQ(ar.segments(), 1u);
    EXPECT_EQ(ar.fsyncs(), 5u);  // 4 records + 1 footer
  }
}

TEST(WindowArchive, RunIdStampedAndDistinctAcrossRuns) {
  const Hierarchy h = make_hierarchy(HierarchyKind::kIpv4OneDimBytes);
  TempDir tmp("runid");
  ArchiveConfig cfg;
  cfg.dir = tmp.str();
  std::uint64_t r1 = 0;
  std::uint64_t r2 = 0;
  {
    auto ar = store::WindowArchive::open_write(cfg);
    r1 = ar.run_id();
    EXPECT_NE(r1, 0u);  // 0 is reserved for "unknown" (v1 segments)
    const auto l = small_window(h, 1);
    ar.append(meta_of(*l, 1), HierarchyKind::kIpv4OneDimBytes, *l);
    ar.close();
    EXPECT_EQ(ar.segment_run_id(0), r1);
  }
  {
    // A second archiver run over the same store draws a fresh identity;
    // its segments are attributable to it, the first run's keep theirs.
    auto ar = store::WindowArchive::open_write(cfg);
    r2 = ar.run_id();
    EXPECT_NE(r2, 0u);
    EXPECT_NE(r2, r1);
    const auto l = small_window(h, 2);
    ar.append(meta_of(*l, 2), HierarchyKind::kIpv4OneDimBytes, *l);
    ar.close();
  }
  const auto cold = store::WindowArchive::open_read(tmp.str());
  EXPECT_EQ(cold.run_id(), 0u);  // read-only: no identity of its own
  ASSERT_EQ(cold.segments(), 2u);
  EXPECT_EQ(cold.segment_run_id(0), r1);
  EXPECT_EQ(cold.segment_run_id(1), r2);
  // The id really lives in the file header, not just the catalog.
  store::SegmentReader seg0((tmp.path / "00000001.seg").string());
  EXPECT_EQ(seg0.version(), 2u);
  EXPECT_EQ(seg0.run_id(), r1);
}

TEST(SegmentLog, ReadsV1SegmentsWithoutRunId) {
  // Hand-write the exact bytes a pre-run-id (format v1) writer produced: a
  // 16-byte header, two framed records and a sealed footer. Today's reader
  // must serve it unchanged, reporting run_id() == 0 ("unknown").
  const Hierarchy h = make_hierarchy(HierarchyKind::kIpv4TwoDimBytes);
  TempDir tmp("v1seg");
  const std::string path = (tmp.path / "00000001.seg").string();
  const store::Bytes p1 = sample_record(h, 1);
  const store::Bytes p2 = sample_record(h, 2);

  store::ByteWriter out;
  out.u32(0x53484852u);  // 'R','H','H','S'
  out.u32(1);            // format v1: no run-id field
  out.u32(16);           // self-declared header length
  out.u32(0);            // flags
  std::vector<store::SegmentIndexEntry> idx;
  for (const store::Bytes* p : {&p1, &p2}) {
    store::SegmentIndexEntry e;
    e.offset = out.size();
    e.length = static_cast<std::uint32_t>(p->size());
    e.epoch = idx.size() + 1;
    e.wall_start_ns = static_cast<std::int64_t>(e.epoch) * 1'000'000'000;
    e.wall_end_ns = e.wall_start_ns + 999'999'999;
    out.u32(0x43455257u);  // 'W','R','E','C'
    out.u32(e.length);
    out.u32(store::crc32(*p));
    for (const std::uint8_t b : *p) out.u8(b);
    idx.push_back(e);
  }
  const std::uint64_t idx_off = out.size();
  store::ByteWriter ix;
  ix.u32(static_cast<std::uint32_t>(idx.size()));
  for (const store::SegmentIndexEntry& e : idx) {
    ix.u64(e.offset);
    ix.u32(e.length);
    ix.u64(e.epoch);
    ix.i64(e.wall_start_ns);
    ix.i64(e.wall_end_ns);
  }
  for (const std::uint8_t b : ix.bytes()) out.u8(b);
  out.u64(idx_off);
  out.u32(static_cast<std::uint32_t>(ix.size()));
  out.u32(store::crc32(ix.bytes()));
  out.u32(0x46484852u);  // 'R','H','H','F'
  {
    std::ofstream f(path, std::ios::binary);
    f.write(reinterpret_cast<const char*>(out.bytes().data()),
            static_cast<std::streamsize>(out.size()));
  }

  store::SegmentReader r(path);
  EXPECT_EQ(r.version(), 1u);
  EXPECT_EQ(r.run_id(), 0u);
  EXPECT_TRUE(r.sealed());
  EXPECT_FALSE(r.truncated_tail());
  ASSERT_EQ(r.records(), 2u);
  EXPECT_EQ(r.read(0), p1);
  EXPECT_EQ(r.read(1), p2);

  // The archive layers on top without noticing the age of the file.
  const auto ar = store::WindowArchive::open_read(tmp.str());
  ASSERT_EQ(ar.windows(), 2u);
  EXPECT_EQ(ar.segment_run_id(0), 0u);
  EXPECT_EQ(ar.read(1).meta.epoch, 2u);
}

TEST(WindowArchive, CompactPreservesSegmentRunId) {
  // Compaction repairs the file; it must not re-author the data -- the
  // rewritten segment keeps the run id of the process that produced it.
  const Hierarchy h = make_hierarchy(HierarchyKind::kIpv4OneDimBytes);
  TempDir tmp("repairid");
  ArchiveConfig cfg;
  cfg.dir = tmp.str();
  const std::uint64_t rid = 0x00C0FFEE12345678ULL;
  {
    store::SegmentWriter w((tmp.path / "00000001.seg").string(),
                           FsyncMode::kNone, rid);
    const auto l1 = small_window(h, 1);
    w.append(store::encode_window(meta_of(*l1, 1),
                                  HierarchyKind::kIpv4OneDimBytes, *l1),
             1, 0, 0);
    // Snapshot before the destructor seals: an unsealed (crashed) segment.
    fs::copy_file(tmp.path / "00000001.seg", tmp.path / "torn.seg");
  }
  fs::remove(tmp.path / "00000001.seg");
  fs::rename(tmp.path / "torn.seg", tmp.path / "00000001.seg");

  auto ar = store::WindowArchive::open_write(cfg);
  EXPECT_EQ(ar.segment_run_id(0), rid);
  ar.compact(0);  // repair only

  store::SegmentReader r((tmp.path / "00000001.seg").string());
  EXPECT_TRUE(r.sealed());
  EXPECT_EQ(r.version(), 2u);
  EXPECT_EQ(r.run_id(), rid);
  ASSERT_EQ(r.records(), 1u);
}

// ------------------------------------------- engine acceptance round trip ----

/// Deterministic skewed engine stream shared by both acceptance tests.
std::vector<Key128> engine_stream(const Hierarchy& h, std::size_t n) {
  Xoroshiro128 rng(2024);
  std::vector<Key128> keys;
  keys.reserve(n);
  const auto victim = static_cast<std::uint32_t>(0xCB007100);  // 203.0.113.0/24
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.bounded(10) < 3) {
      keys.push_back(Key128::from_pair(static_cast<std::uint32_t>(rng()),
                                       victim | static_cast<std::uint32_t>(
                                                    rng.bounded(256))));
    } else {
      keys.push_back(random_key(h, rng));
    }
  }
  return keys;
}

TEST(EngineArchive, ColdReopenMatchesTrendSnapshotByteForByte) {
  TempDir tmp("engine");
  EngineConfig cfg;
  cfg.monitor.hierarchy = HierarchyKind::kIpv4TwoDimBytes;
  cfg.monitor.algorithm = AlgorithmKind::kRhhh;
  cfg.monitor.eps = 0.05;
  cfg.monitor.delta = 0.05;
  cfg.monitor.seed = 31;
  cfg.workers = 3;
  cfg.producers = 1;
  cfg.history_depth = 3;
  cfg.archive.dir = tmp.str();
  cfg.archive.segment_bytes = 256 << 10;  // several segments over the run
  HhhEngine eng(cfg);
  const Hierarchy& h = eng.hierarchy();

  constexpr std::uint64_t kEpoch = 40000;
  constexpr std::uint64_t kRotations = 5;
  const std::vector<Key128> keys = engine_stream(h, kEpoch * kRotations + 9000);

  eng.start();
  HhhEngine::Producer& prod = eng.producer(0);
  std::uint64_t next_rotate = kEpoch;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    prod.ingest(keys[i]);
    if (i + 1 == next_rotate) {
      prod.flush();
      eng.rotate_epoch();
      next_rotate += kEpoch;
    }
  }
  prod.flush();

  // The in-memory K-window view, taken while the engine is still live.
  const TrendSnapshot trend = eng.trend_snapshot();
  ASSERT_EQ(trend.sealed_windows(), 3u);
  eng.stop();  // drains the archiver queue and seals the segment

  const EngineStats s = eng.stats();
  EXPECT_EQ(s.archived_windows, kRotations);
  EXPECT_EQ(s.archive_queue_drops, 0u);
  EXPECT_EQ(s.archive_errors, 0u);

  // Cold reopen: every rotation was persisted, and the last K windows
  // answer byte-identically to the pre-shutdown trend_snapshot().
  const auto ar = store::WindowArchive::open_read(tmp.str());
  ASSERT_EQ(ar.windows(), kRotations);
  EXPECT_FALSE(ar.truncated_tail());
  const auto latest = ar.last(trend.sealed_windows());
  ASSERT_EQ(latest.size(), trend.sealed_windows());
  for (std::size_t age = 0; age < latest.size(); ++age) {
    const RhhhSpaceSaving& mem = trend.window_algorithm(age);
    const RhhhSpaceSaving& disk = *latest[age].window;
    EXPECT_EQ(latest[age].meta.epoch, kRotations - age);
    ASSERT_EQ(disk.stream_length(), mem.stream_length()) << "age " << age;
    EXPECT_EQ(latest[age].meta.drops, trend.window_drops(age)) << "age " << age;
    for (const double theta : {0.05, 0.15}) {
      EXPECT_EQ(digest_set_ordered(h, disk.output(theta)),
                digest_set_ordered(h, mem.output(theta)))
          << "age " << age << " theta " << theta;
    }
    EXPECT_GT(latest[age].meta.duration_ns, 0u);
    EXPECT_GE(latest[age].meta.wall_end_ns, latest[age].meta.wall_start_ns);
  }

  // Epoch-aligned metadata: stream lengths equal the planted epoch size.
  for (const store::WindowMeta& m : ar.list()) {
    EXPECT_EQ(m.stream_length, kEpoch);
  }
}

TEST(EngineArchive, RestartContinuesTheStore) {
  TempDir tmp("restart");
  EngineConfig cfg;
  cfg.monitor.hierarchy = HierarchyKind::kIpv4TwoDimBytes;
  cfg.monitor.eps = 0.1;
  cfg.monitor.delta = 0.1;
  cfg.monitor.seed = 77;
  cfg.workers = 2;
  cfg.producers = 1;
  cfg.archive.dir = tmp.str();

  const auto run_once = [&](std::uint64_t seed) {
    HhhEngine eng(cfg);
    const std::vector<Key128> keys = engine_stream(eng.hierarchy(), 30000);
    eng.start();
    HhhEngine::Producer& prod = eng.producer(0);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      prod.ingest(keys[i] ^ Key128::from_u64(seed));
      if ((i + 1) % 10000 == 0) {
        prod.flush();
        eng.rotate_epoch();
      }
    }
    prod.flush();
    eng.stop();
    return eng.stats().archived_windows;
  };
  const std::uint64_t first = run_once(0);
  const std::uint64_t second = run_once(1);
  EXPECT_EQ(first, 3u);
  EXPECT_EQ(second, 3u);

  const auto ar = store::WindowArchive::open_read(tmp.str());
  EXPECT_EQ(ar.windows(), 6u);
  EXPECT_GE(ar.segments(), 2u);  // one per engine run
  // The two runs' windows replay in order; per-run epochs restart at 1.
  const auto metas = ar.list();
  EXPECT_EQ(metas[0].epoch, 1u);
  EXPECT_EQ(metas[3].epoch, 1u);
}

}  // namespace
}  // namespace rhhh
