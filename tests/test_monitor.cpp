// Tests for the HhhMonitor facade: hierarchy/algorithm factories, the
// packet-level API, psi/convergence reporting, report formatting, and
// cross-config smoke tests over every (hierarchy, algorithm) combination.
#include <gtest/gtest.h>

#include <memory>

#include "core/monitor.hpp"
#include "net/ipv4.hpp"
#include "trace/trace_gen.hpp"

namespace rhhh {
namespace {

TEST(MonitorFactories, HierarchySizes) {
  EXPECT_EQ(make_hierarchy(HierarchyKind::kIpv4OneDimBytes).size(), 5u);
  EXPECT_EQ(make_hierarchy(HierarchyKind::kIpv4OneDimBits).size(), 33u);
  EXPECT_EQ(make_hierarchy(HierarchyKind::kIpv4TwoDimBytes).size(), 25u);
  EXPECT_EQ(make_hierarchy(HierarchyKind::kIpv4TwoDimNibbles).size(), 81u);
  EXPECT_EQ(make_hierarchy(HierarchyKind::kIpv6Bytes).size(), 17u);
  EXPECT_EQ(make_hierarchy(HierarchyKind::kIpv6Nibbles).size(), 33u);
}

TEST(MonitorFactories, AlgorithmNames) {
  const Hierarchy h = make_hierarchy(HierarchyKind::kIpv4TwoDimBytes);
  MonitorConfig cfg;
  cfg.algorithm = AlgorithmKind::kRhhh;
  EXPECT_EQ(make_algorithm(h, cfg)->name(), "RHHH");
  cfg.algorithm = AlgorithmKind::kTenRhhh;
  EXPECT_EQ(make_algorithm(h, cfg)->name(), "10-RHHH");
  cfg.algorithm = AlgorithmKind::kMst;
  EXPECT_EQ(make_algorithm(h, cfg)->name(), "MST");
  cfg.algorithm = AlgorithmKind::kSampledMst;
  EXPECT_EQ(make_algorithm(h, cfg)->name(), "Sampled-MST");
  cfg.algorithm = AlgorithmKind::kPartialAncestry;
  EXPECT_EQ(make_algorithm(h, cfg)->name(), "Partial-Ancestry");
  cfg.algorithm = AlgorithmKind::kFullAncestry;
  EXPECT_EQ(make_algorithm(h, cfg)->name(), "Full-Ancestry");
}

TEST(MonitorBasics, UpdateAndQuery1D) {
  MonitorConfig cfg;
  cfg.hierarchy = HierarchyKind::kIpv4OneDimBytes;
  cfg.algorithm = AlgorithmKind::kMst;
  cfg.eps = 0.01;
  HhhMonitor mon(cfg);
  for (int i = 0; i < 1000; ++i) mon.update(ipv4(44, 44, 1, 1), ipv4(9, 9, 9, 9));
  EXPECT_EQ(mon.packets(), 1000u);
  const HhhSet out = mon.query(0.5);
  ASSERT_FALSE(out.empty());
  EXPECT_TRUE(out.contains(
      Prefix{0, Key128::from_u32(ipv4(44, 44, 1, 1))}));
}

TEST(MonitorBasics, PacketRecordUpdate) {
  MonitorConfig cfg;
  cfg.hierarchy = HierarchyKind::kIpv4TwoDimBytes;
  cfg.algorithm = AlgorithmKind::kMst;
  HhhMonitor mon(cfg);
  PacketRecord p;
  p.src_ip = ipv4(1, 2, 3, 4);
  p.dst_ip = ipv4(5, 6, 7, 8);
  for (int i = 0; i < 100; ++i) mon.update(p);
  const HhhSet out = mon.query(0.9);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(mon.hierarchy().format(out[0].prefix), "(1.2.3.4, 5.6.7.8)");
}

TEST(MonitorBasics, PsiAndConvergence) {
  MonitorConfig cfg;
  cfg.hierarchy = HierarchyKind::kIpv4OneDimBytes;
  cfg.algorithm = AlgorithmKind::kRhhh;
  cfg.eps = 0.1;
  cfg.delta = 0.1;
  HhhMonitor mon(cfg);
  EXPECT_GT(mon.psi(), 0.0);
  EXPECT_FALSE(mon.converged());
  const auto need = static_cast<int>(mon.psi()) + 1;
  ASSERT_LT(need, 50000);
  for (int i = 0; i < need; ++i) mon.update(ipv4(1, 1, 1, 1), 0);
  EXPECT_TRUE(mon.converged());
  // Deterministic algorithms are always converged.
  MonitorConfig mcfg = cfg;
  mcfg.algorithm = AlgorithmKind::kMst;
  EXPECT_TRUE(HhhMonitor(mcfg).converged());
}

TEST(MonitorBasics, ReportFormatsLines) {
  MonitorConfig cfg;
  cfg.hierarchy = HierarchyKind::kIpv4OneDimBytes;
  cfg.algorithm = AlgorithmKind::kMst;
  HhhMonitor mon(cfg);
  for (int i = 0; i < 900; ++i) mon.update(ipv4(8, 8, 8, 8), 0);
  for (int i = 0; i < 100; ++i) mon.update(ipv4(9, 9, 9, 9), 0);
  const auto lines = mon.report(0.05);
  ASSERT_GE(lines.size(), 2u);
  // Sorted by estimate: 8.8.8.8 first.
  EXPECT_NE(lines[0].find("8.8.8.8"), std::string::npos);
  EXPECT_NE(lines[0].find("90.00%"), std::string::npos);
}

TEST(MonitorBasics, ClearResets) {
  HhhMonitor mon;
  mon.update(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2));
  EXPECT_EQ(mon.packets(), 1u);
  mon.clear();
  EXPECT_EQ(mon.packets(), 0u);
}

TEST(MonitorConfigTest, VOverrideRespected) {
  MonitorConfig cfg;
  cfg.algorithm = AlgorithmKind::kRhhh;
  cfg.V = 100;
  HhhMonitor mon(cfg);
  const auto* lattice = dynamic_cast<const RhhhSpaceSaving*>(&mon.algorithm());
  ASSERT_NE(lattice, nullptr);
  EXPECT_EQ(lattice->V(), 100u);
}

TEST(MonitorConfigTest, InvalidConfigThrows) {
  MonitorConfig cfg;
  cfg.eps = -1.0;
  EXPECT_THROW(HhhMonitor{cfg}, std::invalid_argument);
  cfg = {};
  cfg.V = 2;  // < H
  EXPECT_THROW(HhhMonitor{cfg}, std::invalid_argument);
}

/// Smoke sweep: every (hierarchy, algorithm) pair ingests a skewed stream
/// and returns a plausible HHH set containing a planted heavy hitter.
class MonitorMatrix
    : public ::testing::TestWithParam<std::tuple<HierarchyKind, AlgorithmKind>> {};

TEST_P(MonitorMatrix, FindsPlantedHeavyHitter) {
  const auto [hk, ak] = GetParam();
  MonitorConfig cfg;
  cfg.hierarchy = hk;
  cfg.algorithm = ak;
  cfg.eps = 0.05;
  cfg.delta = 0.05;
  HhhMonitor mon(cfg);
  TraceGenerator gen(trace_preset("chicago16"));
  const Ipv4 hot_src = ipv4(123, 45, 67, 89);
  const Ipv4 hot_dst = ipv4(98, 76, 54, 32);
  Xoroshiro128 rng(11);
  const int kN = 60000;
  for (int i = 0; i < kN; ++i) {
    if (rng.bounded(2) == 0) {
      mon.update(hot_src, hot_dst);
    } else {
      const PacketRecord p = gen.next();
      mon.update(p.src_ip, p.dst_ip);
    }
  }
  const HhhSet out = mon.query(0.4);
  // The planted pair carries ~50%: some returned prefix must generalize it.
  const Key128 hot = mon.hierarchy().dims() == 2
                         ? Key128::from_pair(hot_src, hot_dst)
                         : Key128::from_u32(hot_src);
  bool covered = false;
  for (const HhhCandidate& c : out) {
    if (mon.hierarchy().generalizes(c.prefix,
                                    Prefix{mon.hierarchy().bottom(), hot})) {
      covered = true;
    }
  }
  EXPECT_TRUE(covered) << to_string(hk) << "/" << to_string(ak) << " size="
                       << out.size();
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, MonitorMatrix,
    ::testing::Combine(::testing::Values(HierarchyKind::kIpv4OneDimBytes,
                                         HierarchyKind::kIpv4OneDimBits,
                                         HierarchyKind::kIpv4TwoDimBytes),
                       ::testing::Values(AlgorithmKind::kRhhh, AlgorithmKind::kTenRhhh,
                                         AlgorithmKind::kMst,
                                         AlgorithmKind::kSampledMst,
                                         AlgorithmKind::kPartialAncestry,
                                         AlgorithmKind::kFullAncestry)),
    [](const auto& info) {
      std::string n = std::string(to_string(std::get<0>(info.param))) + "_" +
                      std::string(to_string(std::get<1>(info.param)));
      for (char& c : n) {
        if (c == '-') c = '_';
      }
      return n;
    });

}  // namespace
}  // namespace rhhh
