// Tests for the statistics substrate: normal CDF/quantile against reference
// values, Student-t critical values against standard tables, Poisson
// interval calibration by simulation, and the Welford accumulator.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "stats/normal.hpp"
#include "stats/poisson.hpp"
#include "stats/student_t.hpp"
#include "stats/summary.hpp"
#include "util/random.hpp"

namespace rhhh {
namespace {

// -------------------------------------------------------------- normal ----

TEST(Normal, CdfKnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.0), 0.8413447460685429, 1e-10);
  EXPECT_NEAR(normal_cdf(-1.0), 0.15865525393145707, 1e-10);
  EXPECT_NEAR(normal_cdf(1.959963984540054), 0.975, 1e-9);
  EXPECT_NEAR(normal_cdf(3.0), 0.9986501019683699, 1e-10);
}

TEST(Normal, PdfKnownValues) {
  EXPECT_NEAR(normal_pdf(0.0), 0.3989422804014327, 1e-12);
  EXPECT_NEAR(normal_pdf(1.0), 0.24197072451914337, 1e-12);
  EXPECT_NEAR(normal_pdf(-1.0), normal_pdf(1.0), 1e-15);
}

struct QuantileCase {
  double p;
  double z;
};

class NormalQuantileTable : public ::testing::TestWithParam<QuantileCase> {};

TEST_P(NormalQuantileTable, MatchesReference) {
  EXPECT_NEAR(normal_quantile(GetParam().p), GetParam().z, 5e-8);
}

INSTANTIATE_TEST_SUITE_P(
    Table, NormalQuantileTable,
    ::testing::Values(QuantileCase{0.5, 0.0}, QuantileCase{0.8413447460685429, 1.0},
                      QuantileCase{0.975, 1.959963984540054},
                      QuantileCase{0.95, 1.6448536269514722},
                      QuantileCase{0.99, 2.3263478740408408},
                      QuantileCase{0.999, 3.090232306167813},
                      QuantileCase{0.9999, 3.719016485455709},
                      QuantileCase{0.000125, -3.662259930888},
                      QuantileCase{0.01, -2.3263478740408408},
                      QuantileCase{1e-6, -4.753424308822899}));

TEST(Normal, QuantileInvertsCdf) {
  for (double p = 0.001; p < 1.0; p += 0.013) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-9) << p;
  }
}

TEST(Normal, QuantileEdges) {
  EXPECT_EQ(normal_quantile(0.0), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(normal_quantile(1.0), std::numeric_limits<double>::infinity());
}

TEST(Normal, ZValueAliases) {
  EXPECT_DOUBLE_EQ(z_value(0.975), normal_quantile(0.975));
}

// ----------------------------------------------------------- student-t ----

TEST(StudentT, IncompleteBetaEdges) {
  EXPECT_DOUBLE_EQ(incomplete_beta(2, 3, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(incomplete_beta(2, 3, 1.0), 1.0);
}

TEST(StudentT, IncompleteBetaSymmetry) {
  // I_x(a,b) == 1 - I_{1-x}(b,a)
  for (double x : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    EXPECT_NEAR(incomplete_beta(2.5, 1.5, x), 1.0 - incomplete_beta(1.5, 2.5, 1.0 - x),
                1e-12);
  }
}

TEST(StudentT, CdfSymmetric) {
  for (double df : {1.0, 4.0, 30.0}) {
    EXPECT_NEAR(student_t_cdf(0.0, df), 0.5, 1e-12);
    EXPECT_NEAR(student_t_cdf(1.7, df) + student_t_cdf(-1.7, df), 1.0, 1e-12);
  }
}

struct TCase {
  double df;
  double confidence;
  double t;
};

class TCriticalTable : public ::testing::TestWithParam<TCase> {};

TEST_P(TCriticalTable, MatchesStandardTable) {
  EXPECT_NEAR(t_critical(GetParam().df, GetParam().confidence), GetParam().t, 2e-3);
}

// Classic two-sided critical values. df=4 / 95% is the paper's setting
// (5 runs).
INSTANTIATE_TEST_SUITE_P(Table, TCriticalTable,
                         ::testing::Values(TCase{1, 0.95, 12.706}, TCase{2, 0.95, 4.303},
                                           TCase{4, 0.95, 2.776}, TCase{9, 0.95, 2.262},
                                           TCase{4, 0.99, 4.604}, TCase{29, 0.95, 2.045},
                                           TCase{100, 0.95, 1.984}));

TEST(StudentT, ApproachesNormalForLargeDf) {
  EXPECT_NEAR(t_critical(100000, 0.95), 1.95996, 2e-3);
}

TEST(StudentT, QuantileInvertsCdf) {
  for (double df : {3.0, 10.0}) {
    for (double p : {0.05, 0.25, 0.5, 0.9, 0.995}) {
      EXPECT_NEAR(student_t_cdf(student_t_quantile(p, df), df), p, 1e-9);
    }
  }
}

// -------------------------------------------------------------- poisson ----

TEST(Poisson, IntervalCenteredOnLambda) {
  const Interval iv = poisson_interval(100.0, 0.05);
  EXPECT_LT(iv.lo, 100.0);
  EXPECT_GT(iv.hi, 100.0);
  EXPECT_NEAR(iv.hi - 100.0, 100.0 - iv.lo, 1e-9);
  EXPECT_NEAR(iv.hi - 100.0, 1.959963984540054 * 10.0, 1e-6);
}

TEST(Poisson, IntervalWidthShrinksWithDelta) {
  EXPECT_LT(poisson_interval(50, 0.1).width(), poisson_interval(50, 0.01).width());
}

TEST(Poisson, PmfSumsToOne) {
  double sum = 0;
  for (unsigned k = 0; k < 200; ++k) sum += poisson_pmf(k, 20.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Poisson, PmfEdge) {
  EXPECT_DOUBLE_EQ(poisson_pmf(0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(poisson_pmf(3, 0.0), 0.0);
}

/// Simulation check of Lemma 6.2's interval: the miss rate of the
/// lambda +- Z*sqrt(lambda) interval must not exceed delta by much.
TEST(Poisson, IntervalCalibration) {
  const double lambda = 400.0;
  const double delta = 0.05;
  const Interval iv = poisson_interval(lambda, delta);
  std::mt19937_64 gen(7);
  std::poisson_distribution<long> pd(lambda);
  int misses = 0;
  const int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    if (!iv.contains(static_cast<double>(pd(gen)))) ++misses;
  }
  const double miss_rate = static_cast<double>(misses) / kTrials;
  EXPECT_LT(miss_rate, delta * 1.5);
  EXPECT_GT(miss_rate, delta * 0.4);  // not absurdly conservative either
}

TEST(Poisson, MeanIntervalCoversObservation) {
  const Interval iv = poisson_mean_interval(25.0, 0.05);
  EXPECT_TRUE(iv.contains(25.0));
  EXPECT_GE(iv.lo, 0.0);
}

// -------------------------------------------------------------- summary ----

TEST(RunningStatsTest, MeanVarianceAgainstClosedForm) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  const Interval ci = s.mean_ci();
  EXPECT_DOUBLE_EQ(ci.lo, 3.5);
  EXPECT_DOUBLE_EQ(ci.hi, 3.5);
}

TEST(RunningStatsTest, CiMatchesManualTInterval) {
  RunningStats s;
  const std::vector<double> xs = {10.0, 12.0, 9.0, 11.0, 13.0};
  for (double x : xs) s.add(x);
  const Interval ci = s.mean_ci(0.95);
  // Manual: mean 11, sd sqrt(2.5), sem sqrt(0.5), t_4,0.975 = 2.776.
  const double half = 2.776 * std::sqrt(0.5);
  EXPECT_NEAR(ci.lo, 11.0 - half, 5e-3);
  EXPECT_NEAR(ci.hi, 11.0 + half, 5e-3);
}

TEST(RunningStatsTest, SpanHelperMatches) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  RunningStats s;
  for (double x : xs) s.add(x);
  const Interval a = s.mean_ci(0.95);
  const Interval b = mean_ci(xs, 0.95);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

/// Property: 95% CI over repeated Gaussian samples covers the true mean
/// about 95% of the time.
TEST(RunningStatsTest, CiCalibration) {
  Xoroshiro128 rng(99);
  int covered = 0;
  const int kTrials = 2000;
  for (int t = 0; t < kTrials; ++t) {
    RunningStats s;
    for (int i = 0; i < 5; ++i) {
      // Box-Muller from our RNG.
      const double u1 = rng.uniform01() + 1e-12;
      const double u2 = rng.uniform01();
      s.add(std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2));
    }
    if (s.mean_ci(0.95).contains(0.0)) ++covered;
  }
  const double rate = static_cast<double>(covered) / kTrials;
  EXPECT_GT(rate, 0.92);
  EXPECT_LT(rate, 0.98);
}

}  // namespace
}  // namespace rhhh
