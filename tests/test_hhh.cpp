// Tests for the HHH algorithms themselves: the conditioned-frequency
// machinery (G(p|P), calcPred), the paper's worked example from Section 3.1,
// MST exactness, RHHH's randomized behaviour (update counting, psi, planted
// heavy hitters, Corollary 6.8), Sampled-MST, the ancestry tries, and
// cross-algorithm agreement.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "eval/ground_truth.hpp"
#include "hhh/conditioned.hpp"
#include "hhh/lattice_hhh.hpp"
#include "hhh/trie_hhh.hpp"
#include "net/ipv4.hpp"
#include "trace/trace_gen.hpp"
#include "util/random.hpp"

namespace rhhh {
namespace {

// ------------------------------------------------------ conditioned ----

TEST(BestGeneralized, PaperExampleFromDefinition2) {
  // p = <142.14.*>, P = {<142.14.13.*>, <142.14.13.14>}:
  // G(p|P) contains only <142.14.13.*>.
  const Hierarchy h = Hierarchy::ipv4_1d(Granularity::kByte);
  HhhSet P(h.size());
  const Key128 ip = Key128::from_u32(ipv4(142, 14, 13, 14));
  const Prefix p24{h.node_index(1), h.mask_key(h.node_index(1), ip)};
  const Prefix p32{h.node_index(0), ip};
  P.add(HhhCandidate{p24, 10, 10, 10, 10});
  P.add(HhhCandidate{p32, 5, 5, 5, 5});
  const Prefix p16{h.node_index(2), h.mask_key(h.node_index(2), ip)};
  const auto g = best_generalized(h, p16, P);
  ASSERT_EQ(g.size(), 1u);
  EXPECT_EQ(P[g[0]].prefix, p24);
}

TEST(BestGeneralized, UnrelatedPrefixesExcluded) {
  const Hierarchy h = Hierarchy::ipv4_1d(Granularity::kByte);
  HhhSet P(h.size());
  const Key128 other = Key128::from_u32(ipv4(10, 0, 0, 1));
  P.add(HhhCandidate{{h.node_index(1), h.mask_key(h.node_index(1), other)}, 1, 1, 1, 1});
  const Key128 ip = Key128::from_u32(ipv4(142, 14, 13, 14));
  const Prefix p16{h.node_index(2), h.mask_key(h.node_index(2), ip)};
  EXPECT_TRUE(best_generalized(h, p16, P).empty());
}

TEST(CalcPred, OneDimensionSubtractsLowerBounds) {
  const Hierarchy h = Hierarchy::ipv4_1d(Granularity::kByte);
  HhhSet P(h.size());
  const Key128 a = Key128::from_u32(ipv4(142, 14, 1, 1));
  const Key128 b = Key128::from_u32(ipv4(142, 14, 2, 2));
  P.add(HhhCandidate{{h.node_index(1), h.mask_key(h.node_index(1), a)}, 50, 40, 50, 50});
  P.add(HhhCandidate{{h.node_index(1), h.mask_key(h.node_index(1), b)}, 30, 25, 30, 30});
  const Prefix p16{h.node_index(2), h.mask_key(h.node_index(2), a)};
  const auto g = best_generalized(h, p16, P);
  ASSERT_EQ(g.size(), 2u);
  const double r = calc_pred(h, p16, P, g, [](const Prefix&) { return 1e9; });
  EXPECT_DOUBLE_EQ(r, -(40.0 + 25.0));  // glb add-back never fires in 1D
}

TEST(CalcPred, TwoDimensionGlbAddBack) {
  const Hierarchy h = Hierarchy::ipv4_2d(Granularity::kByte);
  const Key128 full = Key128::from_pair(ipv4(1, 2, 3, 4), ipv4(5, 6, 7, 8));
  HhhSet P(h.size());
  // Two overlapping members: (1.2.3.4, 5.6.7.*) and (1.2.3.*, 5.6.7.8).
  const Prefix m1{h.node_index(0, 1), h.mask_key(h.node_index(0, 1), full)};
  const Prefix m2{h.node_index(1, 0), h.mask_key(h.node_index(1, 0), full)};
  P.add(HhhCandidate{m1, 60, 55, 60, 60});
  P.add(HhhCandidate{m2, 40, 35, 40, 40});
  // Candidate parent (1.2.3.*, 5.6.7.*).
  const Prefix p{h.node_index(1, 1), h.mask_key(h.node_index(1, 1), full)};
  const auto g = best_generalized(h, p, P);
  ASSERT_EQ(g.size(), 2u);
  // glb(m1, m2) = the fully-specified pair; its upper estimate is 20.
  const double r = calc_pred(h, p, P, g, [&](const Prefix& q) {
    EXPECT_EQ(q.node, h.bottom());
    EXPECT_EQ(q.key, full);
    return 20.0;
  });
  EXPECT_DOUBLE_EQ(r, -(55.0 + 35.0) + 20.0);
}

TEST(CalcPred, ThirdElementSuppressesAddBack) {
  const Hierarchy h = Hierarchy::ipv4_2d(Granularity::kByte);
  const Key128 full = Key128::from_pair(ipv4(1, 2, 3, 4), ipv4(5, 6, 7, 8));
  HhhSet P(h.size());
  // Three members over the same underlying pair at pairwise-incomparable
  // nodes: (0,2) = (1.2.3.4, 5.6.*), (2,0) = (1.2.*, 5.6.7.8) and
  // (1,1) = (1.2.3.*, 5.6.7.*).
  const Prefix m1{h.node_index(0, 2), h.mask_key(h.node_index(0, 2), full)};
  const Prefix m2{h.node_index(2, 0), h.mask_key(h.node_index(2, 0), full)};
  const Prefix m3{h.node_index(1, 1), h.mask_key(h.node_index(1, 1), full)};
  P.add(HhhCandidate{m1, 60, 50, 60, 60});
  P.add(HhhCandidate{m2, 40, 30, 40, 40});
  P.add(HhhCandidate{m3, 20, 10, 20, 20});
  const Prefix p{h.node_index(2, 2), h.mask_key(h.node_index(2, 2), full)};
  const auto g = best_generalized(h, p, P);
  ASSERT_EQ(g.size(), 3u);
  // glb(m1,m2) = the fully-specified pair, which m3 generalizes -> that pair's
  // add-back is suppressed (Algorithm 3 line 8). glb(m1,m3) = (1.2.3.4,
  // 5.6.7.*) is not generalized by m2; glb(m2,m3) = (1.2.3.*, 5.6.7.8) is not
  // generalized by m1 -> both add back.
  std::vector<Prefix> added;
  const double r = calc_pred(h, p, P, g, [&](const Prefix& q) {
    added.push_back(q);
    return 5.0;
  });
  EXPECT_DOUBLE_EQ(r, -(50.0 + 30.0 + 10.0) + 2 * 5.0);
  ASSERT_EQ(added.size(), 2u);
  for (const Prefix& q : added) {
    EXPECT_NE(q, Prefix(h.bottom(), full)) << "suppressed glb was added back";
  }
}

// -------------------------------------------- paper example, Section 3.1 ----

/// Builds the Section 3.1 stream: 102 packets spread under 101.102.*.* and
/// 6 under 101.103.*.*, each fully-specified item unique.
std::vector<Key128> paper_example_stream() {
  std::vector<Key128> s;
  for (int i = 0; i < 102; ++i) {
    s.push_back(Key128::from_u32(ipv4(101, 102, static_cast<std::uint8_t>(i), 1)));
  }
  for (int i = 0; i < 6; ++i) {
    s.push_back(Key128::from_u32(ipv4(101, 103, static_cast<std::uint8_t>(i), 1)));
  }
  return s;
}

/// theta*N = 100 with N = 108.
constexpr double kPaperTheta = 100.0 / 108.0;

TEST(PaperExample, MstReturnsOnlyTheDeepHhh) {
  const Hierarchy h = Hierarchy::ipv4_1d(Granularity::kByte);
  LatticeParams lp;
  lp.eps = 0.001;  // plenty of counters: deterministic exact bounds
  RhhhSpaceSaving mst(h, LatticeMode::kMst, lp);
  for (const Key128& k : paper_example_stream()) mst.update(k);
  const HhhSet out = mst.output(kPaperTheta);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(h.format(out[0].prefix), "101.102.*.*");
  // p1 = 101.* has frequency 108 >= 100 but conditioned frequency 6 < 100.
  EXPECT_NEAR(out[0].f_est, 102.0, 1e-9);
}

TEST(PaperExample, TrieAlgorithmsAgree) {
  const Hierarchy h = Hierarchy::ipv4_1d(Granularity::kByte);
  for (const AncestryMode mode : {AncestryMode::kFull, AncestryMode::kPartial}) {
    TrieHhh trie(h, mode, 1e-4);  // window larger than the stream: no pruning
    for (const Key128& k : paper_example_stream()) trie.update(k);
    const HhhSet out = trie.output(kPaperTheta);
    ASSERT_EQ(out.size(), 1u) << to_string(mode);
    EXPECT_EQ(h.format(out[0].prefix), "101.102.*.*") << to_string(mode);
  }
}

TEST(PaperExample, ExactGroundTruthMatches) {
  const Hierarchy h = Hierarchy::ipv4_1d(Granularity::kByte);
  ExactHhh truth(h);
  for (const Key128& k : paper_example_stream()) truth.add(k);
  const HhhSet exact = truth.compute(kPaperTheta);
  ASSERT_EQ(exact.size(), 1u);
  EXPECT_EQ(h.format(exact[0].prefix), "101.102.*.*");
  EXPECT_DOUBLE_EQ(exact[0].f_est, 102.0);
  EXPECT_DOUBLE_EQ(exact[0].c_hat, 102.0);
}

// ----------------------------------------------------------- LatticeHhh ----

TEST(LatticeHhhConfig, Validation) {
  const Hierarchy h = Hierarchy::ipv4_1d(Granularity::kByte);
  LatticeParams lp;
  lp.eps = 0.0;
  EXPECT_THROW(RhhhSpaceSaving(h, LatticeMode::kRhhh, lp), std::invalid_argument);
  lp = {};
  lp.delta = 1.0;
  EXPECT_THROW(RhhhSpaceSaving(h, LatticeMode::kRhhh, lp), std::invalid_argument);
  lp = {};
  lp.V = 3;  // < H = 5
  EXPECT_THROW(RhhhSpaceSaving(h, LatticeMode::kRhhh, lp), std::invalid_argument);
  lp = {};
  lp.r = 0;
  EXPECT_THROW(RhhhSpaceSaving(h, LatticeMode::kRhhh, lp), std::invalid_argument);
  lp = {};
  lp.r = 2;
  EXPECT_THROW(RhhhSpaceSaving(h, LatticeMode::kMst, lp), std::invalid_argument);
}

TEST(LatticeHhhConfig, NamesAndDefaults) {
  const Hierarchy h = Hierarchy::ipv4_2d(Granularity::kByte);
  EXPECT_EQ(make_rhhh(h)->name(), "RHHH");
  EXPECT_EQ(make_10rhhh(h)->name(), "10-RHHH");
  EXPECT_EQ(make_mst(h)->name(), "MST");
  EXPECT_EQ(make_rhhh(h)->V(), 25u);
  EXPECT_EQ(make_10rhhh(h)->V(), 250u);
  LatticeParams lp;
  RhhhSpaceSaving sm(h, LatticeMode::kSampledMst, lp);
  EXPECT_EQ(sm.name(), "Sampled-MST");
}

TEST(LatticeHhhConfig, OverSampleCompensatedCounterCount) {
  // Paper Section 6.1: eps_a = 0.001 with eps_s = 0.001 -> 1001 counters.
  const Hierarchy h = Hierarchy::ipv4_1d(Granularity::kByte);
  LatticeParams lp;
  lp.eps = 0.002;  // split: eps_a = eps_s = 0.001
  RhhhSpaceSaving r(h, LatticeMode::kRhhh, lp);
  EXPECT_EQ(r.counters_per_node(), 1001u);
}

TEST(LatticeHhhConfig, PsiFormula) {
  const Hierarchy h = Hierarchy::ipv4_2d(Granularity::kByte);
  LatticeParams lp;
  lp.eps = 0.01;
  lp.delta = 0.003;  // delta_s = 0.001
  RhhhSpaceSaving r(h, LatticeMode::kRhhh, lp);
  const double z = z_value(1.0 - 0.0005);
  EXPECT_NEAR(r.psi(), z * 25.0 / (0.005 * 0.005), 1e-6);
  EXPECT_DOUBLE_EQ(make_mst(h)->psi(), 0.0);
  // Corollary 6.8: r updates converge r times faster.
  lp.r = 4;
  RhhhSpaceSaving r4(h, LatticeMode::kRhhh, lp);
  EXPECT_NEAR(r4.psi(), r.psi() / 4.0, 1e-9);
}

TEST(LatticeHhhUpdate, MstUpdatesEveryNode) {
  const Hierarchy h = Hierarchy::ipv4_2d(Granularity::kByte);
  auto mst = make_mst(h);
  for (int i = 0; i < 100; ++i) mst->update(Key128::from_pair(1, 2));
  EXPECT_EQ(mst->stream_length(), 100u);
  EXPECT_EQ(mst->updates_performed(), 100u * 25u);
  // Every node saw every packet.
  for (std::uint32_t d = 0; d < 25; ++d) {
    EXPECT_EQ(mst->instance(d).total(), 100u) << d;
  }
}

TEST(LatticeHhhUpdate, RhhhUpdatesAtMostOneNode) {
  const Hierarchy h = Hierarchy::ipv4_2d(Granularity::kByte);
  auto r = make_rhhh(h);  // V = H: every packet updates exactly one node
  const int kN = 50000;
  for (int i = 0; i < kN; ++i) r->update(Key128::from_pair(1, 2));
  EXPECT_EQ(r->updates_performed(), static_cast<std::uint64_t>(kN));
  // Each node receives ~N/H updates.
  for (std::uint32_t d = 0; d < 25; ++d) {
    EXPECT_NEAR(static_cast<double>(r->instance(d).total()), kN / 25.0,
                5.0 * std::sqrt(kN / 25.0));
  }
}

TEST(LatticeHhhUpdate, TenRhhhSamplesTenPercent) {
  const Hierarchy h = Hierarchy::ipv4_2d(Granularity::kByte);
  auto r = make_10rhhh(h);
  const int kN = 100000;
  for (int i = 0; i < kN; ++i) r->update(Key128::from_pair(1, 2));
  const double frac = static_cast<double>(r->updates_performed()) / kN;
  EXPECT_NEAR(frac, 0.1, 0.01);
  EXPECT_DOUBLE_EQ(r->scale(), 250.0);
}

TEST(LatticeHhhUpdate, MultiUpdateR) {
  const Hierarchy h = Hierarchy::ipv4_1d(Granularity::kByte);
  LatticeParams lp;
  lp.r = 4;
  RhhhSpaceSaving r(h, LatticeMode::kRhhh, lp);
  const int kN = 20000;
  for (int i = 0; i < kN; ++i) r.update(Key128::from_u32(7));
  // r draws per packet with V = H: expect ~4 updates per packet.
  EXPECT_NEAR(static_cast<double>(r.updates_performed()), 4.0 * kN, 0.02 * 4 * kN);
  EXPECT_DOUBLE_EQ(r.scale(), 5.0 / 4.0);
}

TEST(LatticeHhhUpdate, SampledMstBurstUpdates) {
  const Hierarchy h = Hierarchy::ipv4_2d(Granularity::kByte);
  LatticeParams lp;
  lp.V = 250;
  RhhhSpaceSaving s(h, LatticeMode::kSampledMst, lp);
  const int kN = 100000;
  for (int i = 0; i < kN; ++i) s.update(Key128::from_pair(3, 4));
  // Samples w.p. H/V = 0.1, then updates all 25 nodes.
  EXPECT_NEAR(static_cast<double>(s.updates_performed()), 0.1 * kN * 25,
              0.1 * kN * 25 * 0.1);
  EXPECT_DOUBLE_EQ(s.scale(), 10.0);
}

TEST(LatticeHhhUpdate, WeightedCountsTowardN) {
  const Hierarchy h = Hierarchy::ipv4_1d(Granularity::kByte);
  auto mst = make_mst(h);
  mst->update_weighted(Key128::from_u32(1), 500);
  EXPECT_EQ(mst->stream_length(), 500u);
  EXPECT_EQ(mst->instance(0).upper(Key128::from_u32(1)), 500u);
}

TEST(LatticeHhhUpdate, ClearResets) {
  const Hierarchy h = Hierarchy::ipv4_1d(Granularity::kByte);
  auto r = make_rhhh(h);
  for (int i = 0; i < 1000; ++i) r->update(Key128::from_u32(9));
  r->clear();
  EXPECT_EQ(r->stream_length(), 0u);
  EXPECT_EQ(r->updates_performed(), 0u);
  EXPECT_TRUE(r->output(0.1).empty());
}

TEST(LatticeHhhOutput, EmptyStream) {
  const Hierarchy h = Hierarchy::ipv4_2d(Granularity::kByte);
  EXPECT_TRUE(make_rhhh(h)->output(0.01).empty());
}

/// A planted heavy pair must be reported by every lattice algorithm once
/// past its convergence bound.
class PlantedHeavyHitter : public ::testing::TestWithParam<LatticeMode> {};

TEST_P(PlantedHeavyHitter, IsFound) {
  const Hierarchy h = Hierarchy::ipv4_2d(Granularity::kByte);
  LatticeParams lp;
  lp.eps = 0.05;
  lp.delta = 0.05;
  lp.seed = 99;
  RhhhSpaceSaving alg(h, GetParam(), lp);
  Xoroshiro128 rng(123);
  const Key128 hot = Key128::from_pair(ipv4(10, 1, 2, 3), ipv4(99, 5, 6, 7));
  const int kN = 400000;
  for (int i = 0; i < kN; ++i) {
    if (rng.bounded(10) < 3) {
      alg.update(hot);
    } else {
      alg.update(Key128::from_pair(rng(), static_cast<std::uint32_t>(rng())));
    }
  }
  const HhhSet out = alg.output(0.2);
  // The fully-specified hot pair (30% of traffic) must appear.
  bool found = false;
  for (const HhhCandidate& c : out) {
    if (c.prefix.key == hot && c.prefix.node == h.bottom()) found = true;
  }
  EXPECT_TRUE(found) << to_string(GetParam()) << " returned " << out.size()
                     << " prefixes";
}

INSTANTIATE_TEST_SUITE_P(Modes, PlantedHeavyHitter,
                         ::testing::Values(LatticeMode::kRhhh, LatticeMode::kMst,
                                           LatticeMode::kSampledMst),
                         [](const auto& info) {
                           return std::string(to_string(info.param)) == "Sampled-MST"
                                      ? "SampledMst"
                                      : std::string(to_string(info.param));
                         });

TEST(LatticeHhhOutput, MstMatchesExactTruthOnSmallStream) {
  const Hierarchy h = Hierarchy::ipv4_2d(Granularity::kByte);
  LatticeParams lp;
  lp.eps = 0.001;  // capacity far above distinct keys: exact counting
  RhhhSpaceSaving mst(h, LatticeMode::kMst, lp);
  ExactHhh truth(h);
  TraceGenerator gen(trace_preset("chicago16"));
  for (int i = 0; i < 20000; ++i) {
    const PacketRecord p = gen.next();
    const Key128 k = h.key_of(p);
    mst.update(k);
    truth.add(k);
  }
  const double theta = 0.05;
  const HhhSet approx = mst.output(theta);
  const HhhSet exact = truth.compute(theta);
  // With exact per-node counts MST's conservative output must contain every
  // exact HHH (coverage) -- and here bounds are tight, so the sets coincide.
  for (const HhhCandidate& c : exact) {
    EXPECT_TRUE(approx.contains(c.prefix)) << h.format(c.prefix);
  }
  for (const HhhCandidate& c : approx) {
    EXPECT_TRUE(exact.contains(c.prefix)) << h.format(c.prefix);
  }
}

// --------------------------------------------------------------- merge ----

TEST(LatticeMerge, MismatchedConfigurationsThrow) {
  const Hierarchy h = Hierarchy::ipv4_2d(Granularity::kByte);
  LatticeParams lp;
  RhhhSpaceSaving base(h, LatticeMode::kRhhh, lp);

  LatticeParams lp_v = lp;
  lp_v.V = 250;  // unequal V: per-node estimates would not share a scale
  RhhhSpaceSaving other_v(h, LatticeMode::kRhhh, lp_v);
  EXPECT_FALSE(base.mergeable_with(other_v));
  EXPECT_THROW(base.merge(other_v), std::invalid_argument);

  RhhhSpaceSaving other_mode(h, LatticeMode::kMst, lp);
  EXPECT_THROW(base.merge(other_mode), std::invalid_argument);

  LatticeParams lp_r = lp;
  lp_r.r = 2;
  RhhhSpaceSaving other_r(h, LatticeMode::kRhhh, lp_r);
  EXPECT_THROW(base.merge(other_r), std::invalid_argument);

  const Hierarchy h1 = Hierarchy::ipv4_2d(Granularity::kNibble);
  RhhhSpaceSaving other_h(h1, LatticeMode::kRhhh, lp);
  EXPECT_THROW(base.merge(other_h), std::invalid_argument);

  // Differing seeds are explicitly allowed (that is how shards are built).
  LatticeParams lp_s = lp;
  lp_s.seed = 777;
  RhhhSpaceSaving other_s(h, LatticeMode::kRhhh, lp_s);
  EXPECT_TRUE(base.mergeable_with(other_s));
}

TEST(LatticeMerge, StreamLengthsAndUpdatesAdd) {
  const Hierarchy h = Hierarchy::ipv4_1d(Granularity::kByte);
  LatticeParams lp;
  RhhhSpaceSaving a(h, LatticeMode::kMst, lp);
  RhhhSpaceSaving b(h, LatticeMode::kMst, lp);
  for (int i = 0; i < 100; ++i) a.update(Key128::from_u32(ipv4(1, 2, 3, 4)));
  for (int i = 0; i < 250; ++i) b.update(Key128::from_u32(ipv4(1, 2, 3, 4)));
  a.merge(b);
  EXPECT_EQ(a.stream_length(), 350u);
  EXPECT_EQ(a.updates_performed(), 350u * h.size());
  EXPECT_EQ(a.instance(0).upper(Key128::from_u32(ipv4(1, 2, 3, 4))), 350u);
}

/// Merging k disjoint sub-streams (of very unequal lengths) must satisfy
/// the same accuracy and coverage bounds as one instance over the union:
/// every exact HHH of the union covered, and every point estimate within
/// eps_a * N + correction() of the truth, with N the merged stream length.
TEST(LatticeMerge, DisjointSubstreamsMatchUnionBounds) {
  const Hierarchy h = Hierarchy::ipv4_2d(Granularity::kByte);
  LatticeParams lp;
  lp.eps = 0.02;
  lp.delta = 0.05;

  // Unequal split of a 300k-packet stream: 60% / 30% / 10%.
  constexpr int kN = 300000;
  const char* presets[3] = {"chicago16", "chicago15", "sanjose13"};
  const int share[3] = {180000, 90000, 30000};

  ExactHhh truth(h);
  RhhhSpaceSaving union_alg(h, LatticeMode::kRhhh, lp);
  std::vector<std::unique_ptr<RhhhSpaceSaving>> parts;
  for (int s = 0; s < 3; ++s) {
    LatticeParams lps = lp;
    lps.seed = static_cast<std::uint64_t>(s + 10);
    parts.push_back(
        std::make_unique<RhhhSpaceSaving>(h, LatticeMode::kRhhh, lps));
    TraceGenerator gen(trace_preset(presets[s]));
    for (int i = 0; i < share[s]; ++i) {
      const Key128 k = h.key_of(gen.next());
      truth.add(k);
      union_alg.update(k);
      parts[static_cast<std::size_t>(s)]->update(k);
    }
  }

  RhhhSpaceSaving merged(h, LatticeMode::kRhhh, lp);
  for (const auto& part : parts) merged.merge(*part);
  ASSERT_EQ(merged.stream_length(), static_cast<std::uint64_t>(kN));
  ASSERT_EQ(merged.stream_length(), union_alg.stream_length());
  // Same configuration => identical additive slack.
  ASSERT_DOUBLE_EQ(merged.correction(), union_alg.correction());

  const double theta = 0.1;
  const HhhSet exact = truth.compute(theta);
  ASSERT_GT(exact.size(), 0u);
  const double bound = merged.eps_a() * kN + merged.correction();

  const HhhSet merged_out = merged.output(theta);
  const HhhSet union_out = union_alg.output(theta);
  for (const HhhCandidate& c : exact) {
    // Coverage: both the merged and the union instance report (or refine)
    // every exact HHH...
    for (const HhhSet* out : {&merged_out, &union_out}) {
      bool covered = out->contains(c.prefix);
      if (!covered) {
        for (const HhhCandidate& o : *out) {
          if (h.generalizes(c.prefix, o.prefix) ||
              h.generalizes(o.prefix, c.prefix)) {
            covered = true;
            break;
          }
        }
      }
      EXPECT_TRUE(covered) << (out == &merged_out ? "merged" : "union")
                           << " missing " << h.format(c.prefix);
    }
    // ... and the merged point estimates obey the union instance's
    // accuracy bound around the exact count.
    EXPECT_NEAR(merged.estimate(c.prefix), c.f_est, bound)
        << h.format(c.prefix);
  }
}

TEST(LatticeMerge, SketchBackendsAreMergeable) {
  // The linear sketches gained element-wise merge: sketch-backed lattices
  // are no longer rejected at compile time...
  static_assert(LatticeHhh<CountMinHh<Key128>>::backend_mergeable());
  static_assert(LatticeHhh<CountSketchHh<Key128>>::backend_mergeable());
  static_assert(LatticeHhh<SpaceSaving<Key128>>::backend_mergeable());
  // ... while the windowed/exact backends stay non-mergeable.
  static_assert(!LatticeHhh<MisraGries<Key128>>::backend_mergeable());
  static_assert(!LatticeHhh<LossyCounting<Key128>>::backend_mergeable());
  static_assert(!LatticeHhh<ExactCounter<Key128>>::backend_mergeable());
}

TEST(LatticeMerge, CountMinShardsMergeWithPinnedBackendSeed) {
  // Shard-style deployment of a Count-Min-backed lattice: every shard pins
  // the same backend_seed (identical hash rows, the element-wise merge
  // precondition) while drawing an independent sampling stream per shard.
  const Hierarchy h = Hierarchy::ipv4_1d(Granularity::kByte);
  LatticeParams lp;
  lp.eps = 0.02;
  lp.delta = 0.05;
  lp.backend_seed = 4242;
  LatticeHhh<CountMinHh<Key128>> a(h, LatticeMode::kMst, lp);
  LatticeParams lp_b = lp;
  lp_b.seed = 777;  // different sampling seed, same sketch hashes
  LatticeHhh<CountMinHh<Key128>> b(h, LatticeMode::kMst, lp_b);
  ASSERT_TRUE(a.mergeable_with(b));

  const Key128 hot = Key128::from_u32(ipv4(10, 1, 2, 3));
  for (int i = 0; i < 4000; ++i) a.update(hot);
  for (int i = 0; i < 2000; ++i) b.update(hot);
  Xoroshiro128 rng(3);
  for (int i = 0; i < 2000; ++i) {
    b.update(Key128::from_u32(static_cast<std::uint32_t>(rng())));
  }
  a.merge(b);
  EXPECT_EQ(a.stream_length(), 8000u);
  // MST + Count-Min: estimate never underestimates and stays within the
  // sketch's eps_a * N over the merged stream.
  const Prefix p{h.bottom(), hot};
  EXPECT_GE(a.estimate(p), 6000.0);
  EXPECT_LE(a.estimate(p), 6000.0 + a.eps_a() * 8000.0 + 1.0);
  EXPECT_TRUE(a.output(0.5).contains(p));
}

TEST(LatticeMerge, SketchShardsWithoutPinnedSeedThrow) {
  // Without backend_seed pinning the per-shard hash rows differ, and the
  // backend's dimension/seed check must reject the element-wise merge even
  // though the lattice-level parameters look compatible.
  const Hierarchy h = Hierarchy::ipv4_1d(Granularity::kByte);
  LatticeParams lp;
  LatticeHhh<CountSketchHh<Key128>> a(h, LatticeMode::kMst, lp);
  LatticeParams lp_b = lp;
  lp_b.seed = 999;
  LatticeHhh<CountSketchHh<Key128>> b(h, LatticeMode::kMst, lp_b);
  ASSERT_TRUE(a.mergeable_with(b));  // lattice params agree...
  a.update(Key128::from_u32(ipv4(1, 2, 3, 4)));
  b.update(Key128::from_u32(ipv4(1, 2, 3, 4)));
  EXPECT_THROW(a.merge(b), std::invalid_argument);  // ...hash rows do not
}

TEST(LatticeMerge, CountSketchShardsMergeEstimates) {
  const Hierarchy h = Hierarchy::ipv4_1d(Granularity::kByte);
  LatticeParams lp;
  lp.eps = 0.04;
  lp.delta = 0.05;
  lp.backend_seed = 17;
  LatticeHhh<CountSketchHh<Key128>> a(h, LatticeMode::kMst, lp);
  LatticeParams lp_b = lp;
  lp_b.seed = 31;
  LatticeHhh<CountSketchHh<Key128>> b(h, LatticeMode::kMst, lp_b);
  const Key128 hot = Key128::from_u32(ipv4(10, 1, 2, 3));
  for (int i = 0; i < 3000; ++i) a.update(hot);
  for (int i = 0; i < 1000; ++i) b.update(hot);
  a.merge(b);
  EXPECT_EQ(a.stream_length(), 4000u);
  const Prefix p{h.bottom(), hot};
  EXPECT_NEAR(a.estimate(p), 4000.0, a.eps_a() * 4000.0 + 1.0);
}

// ------------------------------------------------------------- TrieHhh ----

TEST(TrieHhhTest, Validation) {
  const Hierarchy h = Hierarchy::ipv4_1d(Granularity::kByte);
  EXPECT_THROW(TrieHhh(h, AncestryMode::kFull, 0.0), std::invalid_argument);
  EXPECT_THROW(TrieHhh(h, AncestryMode::kFull, 1.0), std::invalid_argument);
}

TEST(TrieHhhTest, RootAlwaysTracked) {
  const Hierarchy h = Hierarchy::ipv4_1d(Granularity::kByte);
  TrieHhh t(h, AncestryMode::kFull, 0.01);
  EXPECT_EQ(t.tracked_nodes(), 1u);
  t.update(Key128::from_u32(ipv4(1, 2, 3, 4)));
  EXPECT_GT(t.tracked_nodes(), 1u);
}

TEST(TrieHhhTest, EstimateIndexKeepsLossyCountingBounds) {
  // estimate() now answers from a lazily rebuilt per-prefix mass index;
  // interleave updates (which dirty the index), compressions and probes,
  // and check every probe against the exact stream counts. Tracked mass
  // never exceeds the true count, so estimate <= f + slack everywhere. On
  // the 1D chain (every lattice node on the canonical chain) full
  // ancestry additionally keeps the classic lossy-counting guarantee: a
  // nonzero estimate upper-bounds f, a zero one means f <= slack. (2D
  // off-chain aggregates can undercount past the slack when compression
  // folds mass to a canonical parent outside their cone -- the documented
  // adaptation caveat, same as output()'s f_hi.)
  for (const bool one_dim : {true, false}) {
    const Hierarchy h = one_dim ? Hierarchy::ipv4_1d(Granularity::kByte)
                                : Hierarchy::ipv4_2d(Granularity::kByte);
    for (const AncestryMode mode : {AncestryMode::kFull, AncestryMode::kPartial}) {
      TrieHhh t(h, mode, 0.02);
      TraceGenerator gen(trace_preset("chicago16"));
      Xoroshiro128 rng(11);
      FlatHashMap<Key128, std::uint64_t, KeyHash<Key128>> exact(1 << 12);
      std::vector<Key128> seen;
      for (int round = 0; round < 6; ++round) {
        for (int i = 0; i < 2000; ++i) {
          const Key128 k = h.key_of(gen.next());
          t.update(k);
          ++exact[k];
          if (seen.size() < 64) seen.push_back(k);
        }
        ASSERT_TRUE(t.validate());
        const double slack = static_cast<double>(t.epoch() - 1);
        for (int probe = 0; probe < 24; ++probe) {
          const Key128 k =
              seen[rng.bounded(static_cast<std::uint32_t>(seen.size()))];
          const auto node = static_cast<std::uint32_t>(
              rng.bounded(static_cast<std::uint32_t>(h.size())));
          const Prefix p{node, h.mask_key(node, k)};
          std::uint64_t f = 0;  // exact mass of p over the stream so far
          exact.for_each([&](const Key128& key, const std::uint64_t& c) {
            if (h.mask_key(node, key) == p.key) f += c;
          });
          const double est = t.estimate(p);
          EXPECT_LE(est, static_cast<double>(f) + slack)
              << to_string(mode) << " " << h.format(p);
          if (one_dim && mode == AncestryMode::kFull) {
            if (est > 0.0) {
              EXPECT_GE(est, static_cast<double>(f)) << h.format(p);
            } else {
              EXPECT_LE(static_cast<double>(f), slack) << h.format(p);
            }
          }
        }
      }
    }
  }
}

TEST(TrieHhhTest, FullAncestryTracksWholePath) {
  const Hierarchy h = Hierarchy::ipv4_1d(Granularity::kByte);
  TrieHhh t(h, AncestryMode::kFull, 1e-4);
  t.update(Key128::from_u32(ipv4(1, 2, 3, 4)));
  // Root + the 4 prefix nodes of the chain.
  EXPECT_EQ(t.tracked_nodes(), 5u);
  TrieHhh p(h, AncestryMode::kPartial, 1e-4);
  p.update(Key128::from_u32(ipv4(1, 2, 3, 4)));
  EXPECT_EQ(p.tracked_nodes(), 2u);  // root + one lazily expanded node (1.*)
  p.update(Key128::from_u32(ipv4(1, 2, 3, 4)));
  EXPECT_EQ(p.tracked_nodes(), 3u);  // the path grows one level per arrival
}

TEST(TrieHhhTest, CompressionBoundsState) {
  const Hierarchy h = Hierarchy::ipv4_1d(Granularity::kByte);
  TrieHhh t(h, AncestryMode::kPartial, 0.01);  // window 100
  Xoroshiro128 rng(5);
  for (int i = 0; i < 50000; ++i) {
    t.update(Key128::from_u32(static_cast<std::uint32_t>(rng())));  // all noise
  }
  EXPECT_GT(t.compressions(), 0u);
  // Lossy-counting style space bound: O(levels/eps).
  EXPECT_LT(t.tracked_nodes(), 5u * 100u * 4u);
}

TEST(TrieHhhTest, MassConservedUnderCompression) {
  const Hierarchy h = Hierarchy::ipv4_1d(Granularity::kByte);
  TrieHhh t(h, AncestryMode::kFull, 0.02);
  Xoroshiro128 rng(6);
  const int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    t.update(Key128::from_u32(static_cast<std::uint32_t>(rng.bounded(1000) * 7919)));
  }
  // The root's subtree total (all g) must equal N: compression rolls mass up
  // but never loses it. Query via output at theta=0: root's f_lo covers all.
  const HhhSet all = t.output(0.0);
  double root_flo = -1;
  for (const HhhCandidate& c : all) {
    if (c.prefix.node == h.top()) root_flo = c.f_lo;
  }
  ASSERT_GE(root_flo, 0.0) << "root must be in a theta=0 output";
  EXPECT_DOUBLE_EQ(root_flo, static_cast<double>(kN));
}

TEST(TrieHhhTest, PlantedHeavyHitterFound2D) {
  const Hierarchy h = Hierarchy::ipv4_2d(Granularity::kByte);
  for (const AncestryMode mode : {AncestryMode::kFull, AncestryMode::kPartial}) {
    TrieHhh t(h, mode, 0.01);
    Xoroshiro128 rng(7);
    const Key128 hot = Key128::from_pair(ipv4(10, 1, 2, 3), ipv4(99, 5, 6, 7));
    for (int i = 0; i < 100000; ++i) {
      if (rng.bounded(10) < 3) {
        t.update(hot);
      } else {
        t.update(Key128::from_pair(rng(), static_cast<std::uint32_t>(rng())));
      }
    }
    const HhhSet out = t.output(0.2);
    bool covered = false;
    for (const HhhCandidate& c : out) {
      if (h.generalizes(c.prefix, Prefix{h.bottom(), hot})) covered = true;
    }
    EXPECT_TRUE(covered) << to_string(mode);
  }
}

TEST(TrieHhhTest, ClearResets) {
  const Hierarchy h = Hierarchy::ipv4_1d(Granularity::kByte);
  TrieHhh t(h, AncestryMode::kFull, 0.01);
  for (int i = 0; i < 5000; ++i) t.update(Key128::from_u32(42));
  t.clear();
  EXPECT_EQ(t.stream_length(), 0u);
  EXPECT_EQ(t.tracked_nodes(), 1u);
  EXPECT_TRUE(t.output(0.5).empty());
}

// ------------------------------------------------- cross-algorithm ----

/// All five algorithms on the same skewed stream: every exact HHH must be
/// covered (itself or refined) in every algorithm's output at a threshold
/// comfortably above the noise floor.
TEST(CrossAlgorithm, AllAlgorithmsCoverExactHhhs) {
  const Hierarchy h = Hierarchy::ipv4_2d(Granularity::kByte);
  const auto packets = [&] {
    std::vector<Key128> keys;
    TraceGenerator g2(trace_preset("sanjose14"));
    keys.reserve(300000);
    for (int i = 0; i < 300000; ++i) keys.push_back(h.key_of(g2.next()));
    return keys;
  }();

  ExactHhh truth(h);
  for (const Key128& k : packets) truth.add(k);
  const double theta = 0.1;
  const HhhSet exact = truth.compute(theta);
  ASSERT_GT(exact.size(), 0u);

  LatticeParams lp;
  lp.eps = 0.02;
  lp.delta = 0.05;
  std::vector<std::unique_ptr<HhhAlgorithm>> algs;
  algs.push_back(std::make_unique<RhhhSpaceSaving>(h, LatticeMode::kRhhh, lp));
  algs.push_back(std::make_unique<RhhhSpaceSaving>(h, LatticeMode::kMst, lp));
  algs.push_back(std::make_unique<TrieHhh>(h, AncestryMode::kFull, lp.eps));
  algs.push_back(std::make_unique<TrieHhh>(h, AncestryMode::kPartial, lp.eps));

  for (auto& alg : algs) {
    for (const Key128& k : packets) alg->update(k);
    const HhhSet out = alg->output(theta);
    for (const HhhCandidate& c : exact) {
      bool covered = out.contains(c.prefix);
      // Approximate algorithms may return a descendant that claims the mass;
      // accept any output member generalized by the exact prefix as well.
      if (!covered) {
        for (const HhhCandidate& o : out) {
          if (h.generalizes(c.prefix, o.prefix) ||
              h.generalizes(o.prefix, c.prefix)) {
            covered = true;
            break;
          }
        }
      }
      EXPECT_TRUE(covered) << alg->name() << " missing " << h.format(c.prefix);
    }
  }
}

}  // namespace
}  // namespace rhhh
