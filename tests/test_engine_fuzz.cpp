// Randomized conservation fuzz for the sharded engine: every iteration
// draws a topology (producers x workers x ring size x batch x router x
// overflow policy x algorithm x windowing mode) from a seeded RNG, hammers
// it from concurrent producer threads while a chaos thread takes snapshots,
// window snapshots and epoch rotations mid-stream, then asserts the
// conservation invariants the accounting promises:
//
//   * offered == pushed + dropped          (per engine, from per-ring counts)
//   * pushed == popped per ring            (after stop() drains everything)
//   * consumed == sum of per-ring pops == sum of per-worker counts
//   * merged N == sum of shard Ns + drops  (lifetime and per-window views)
//
// Registered under the `stress` ctest label: CI runs these under
// ASan/UBSan, where the interleavings are the point.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "core/monitor.hpp"
#include "engine/engine.hpp"
#include "net/ipv4.hpp"
#include "util/random.hpp"

namespace rhhh {
namespace {

struct FuzzPlan {
  EngineConfig cfg;
  std::uint64_t per_producer = 0;
  int chaos_ops = 0;  ///< mid-stream snapshot/rotate calls
};

FuzzPlan draw_plan(std::uint64_t seed) {
  Xoroshiro128 rng(seed);
  FuzzPlan plan;
  EngineConfig& cfg = plan.cfg;
  cfg.workers = 1 + rng.bounded(4);
  cfg.producers = 1 + rng.bounded(3);
  const std::size_t caps[] = {64, 512, 4096};
  cfg.ring_capacity = caps[rng.bounded(3)];
  const std::size_t batches[] = {1, 7, 64};
  cfg.batch = batches[rng.bounded(3)];
  cfg.policy = rng.bounded(2) == 0 ? ShardPolicy::kKeyHash : ShardPolicy::kRoundRobin;
  cfg.overflow =
      rng.bounded(2) == 0 ? OverflowPolicy::kBlock : OverflowPolicy::kDropTail;
  const AlgorithmKind algs[] = {AlgorithmKind::kRhhh, AlgorithmKind::kTenRhhh,
                                AlgorithmKind::kMst};
  cfg.monitor.algorithm = algs[rng.bounded(3)];
  cfg.monitor.eps = 0.05;
  cfg.monitor.delta = 0.05;
  cfg.monitor.seed = seed;
  if (rng.bounded(2) == 0) cfg.epoch_packets = 20000;  // coordinator clock on
  cfg.history_depth = 1 + rng.bounded(4);  // K-deep window rings
  plan.per_producer = 20000 + rng.bounded(20000);
  plan.chaos_ops = 2 + static_cast<int>(rng.bounded(4));
  return plan;
}

class EngineFuzz : public ::testing::TestWithParam<int> {};

TEST_P(EngineFuzz, ConservationHoldsUnderConcurrentChaos) {
  const auto seed = static_cast<std::uint64_t>(9000 + GetParam());
  const FuzzPlan plan = draw_plan(seed);
  SCOPED_TRACE(::testing::Message()
               << "seed=" << seed << " W=" << plan.cfg.workers
               << " M=" << plan.cfg.producers << " ring=" << plan.cfg.ring_capacity
               << " batch=" << plan.cfg.batch << " overflow="
               << to_string(plan.cfg.overflow) << " epoch_packets="
               << plan.cfg.epoch_packets << " n/producer=" << plan.per_producer);

  HhhEngine eng(plan.cfg);
  eng.start();

  const Key128 hot = Key128::from_pair(ipv4(10, 1, 2, 3), ipv4(99, 5, 6, 7));
  std::vector<std::thread> threads;
  for (std::uint32_t p = 0; p < plan.cfg.producers; ++p) {
    threads.emplace_back([&, p] {
      HhhEngine::Producer& prod = eng.producer(p);
      Xoroshiro128 rng(seed * 31 + p);
      for (std::uint64_t i = 0; i < plan.per_producer; ++i) {
        if (rng.bounded(10) < 3) {
          prod.ingest(hot);
        } else {
          prod.ingest(Key128::from_pair(rng(), static_cast<std::uint32_t>(rng())));
        }
      }
      prod.flush();
    });
  }

  // Chaos: interleave every control operation with live producers.
  {
    Xoroshiro128 rng(seed ^ 0xc4a05u);
    for (int i = 0; i < plan.chaos_ops; ++i) {
      switch (rng.bounded(4)) {
        case 0: (void)eng.snapshot(); break;
        case 1: (void)eng.window_snapshot(); break;
        case 2: (void)eng.trend_snapshot(); break;
        default: eng.rotate_epoch(); break;
      }
    }
  }
  for (std::thread& t : threads) t.join();
  eng.stop();

  const EngineStats s = eng.stats();
  const std::uint64_t offered_expect =
      std::uint64_t{plan.cfg.producers} * plan.per_producer;
  EXPECT_EQ(s.offered, offered_expect);

  // Per-ring conservation: everything offered was pushed or dropped, and
  // after the stop() drain every pushed record was popped.
  const std::size_t n_rings = std::size_t{plan.cfg.producers} * plan.cfg.workers;
  ASSERT_EQ(s.per_ring_pushed.size(), n_rings);
  ASSERT_EQ(s.per_ring_popped.size(), n_rings);
  ASSERT_EQ(s.per_ring_dropped.size(), n_rings);
  std::uint64_t pushed = 0, popped = 0, dropped = 0;
  for (std::size_t r = 0; r < n_rings; ++r) {
    EXPECT_EQ(s.per_ring_pushed[r], s.per_ring_popped[r]) << "ring " << r;
    pushed += s.per_ring_pushed[r];
    popped += s.per_ring_popped[r];
    dropped += s.per_ring_dropped[r];
  }
  EXPECT_EQ(pushed + dropped, s.offered);
  EXPECT_EQ(dropped, s.dropped);
  EXPECT_EQ(popped, s.consumed);
  EXPECT_EQ(s.consumed + s.dropped, s.offered);
  if (plan.cfg.overflow == OverflowPolicy::kBlock) {
    EXPECT_EQ(s.dropped, 0u) << "kBlock must be lossless";
  }
  std::uint64_t per_worker = 0;
  for (const std::uint64_t c : s.per_worker_consumed) per_worker += c;
  EXPECT_EQ(per_worker, s.consumed);

  // Merged stream lengths (engine quiescent now): the lifetime snapshot
  // spans every live shard plus all drops; each window view spans its
  // shards' sub-streams plus exactly its own drops.
  std::uint64_t live_n = 0;
  std::uint64_t sealed_n = 0;
  for (std::uint32_t w = 0; w < eng.workers(); ++w) {
    live_n += eng.shard(w).stream_length();
    if (const RhhhSpaceSaving* sealed = eng.shard_sealed(w)) {
      sealed_n += sealed->stream_length();
    }
  }
  const EngineSnapshot life = eng.snapshot();
  EXPECT_EQ(life.stream_length(), live_n + s.dropped);

  const WindowedEngineSnapshot win = eng.window_snapshot();
  EXPECT_EQ(win.current_length(), live_n + win.current_drops());
  EXPECT_LE(win.current_drops() + win.previous_drops(), s.dropped);
  if (win.has_previous()) {
    EXPECT_EQ(win.previous_length(), sealed_n + win.previous_drops());
  } else {
    EXPECT_EQ(win.previous_length(), 0u);
    EXPECT_EQ(win.previous_drops(), 0u);
  }
  EXPECT_EQ(win.stats().window_epochs, eng.window_epochs());

  // K-window trend view: per-age window lengths must equal the
  // index-aligned sum of the shard ring slots plus exactly that window's
  // drops, and the newest age must agree with the two-window view.
  const TrendSnapshot tr = eng.trend_snapshot();
  EXPECT_EQ(tr.sealed_windows(),
            std::min<std::uint64_t>(eng.window_epochs(), plan.cfg.history_depth));
  EXPECT_EQ(tr.current_length(), live_n + tr.current_drops());
  EXPECT_EQ(tr.current_drops(), win.current_drops());
  std::uint64_t retained_drops = tr.current_drops();
  for (std::size_t age = 0; age < tr.sealed_windows(); ++age) {
    std::uint64_t shard_sum = 0;
    for (std::uint32_t w = 0; w < eng.workers(); ++w) {
      shard_sum += eng.shard_sealed(w, age).stream_length();
    }
    EXPECT_EQ(tr.window_length(age), shard_sum + tr.window_drops(age))
        << "age " << age;
    retained_drops += tr.window_drops(age);
  }
  EXPECT_LE(retained_drops, s.dropped);
  if (eng.window_epochs() <= plan.cfg.history_depth) {
    EXPECT_EQ(retained_drops, s.dropped) << "no eviction: every drop retained";
  }
  if (tr.sealed_windows() != 0) {
    EXPECT_EQ(tr.window_length(0), win.previous_length());
    EXPECT_EQ(tr.window_drops(0), win.previous_drops());
  }
}

INSTANTIATE_TEST_SUITE_P(Topologies, EngineFuzz, ::testing::Range(0, 12));

}  // namespace
}  // namespace rhhh
