// Schedule-stress suite: TSan-targeted interleavings of the engine's
// concurrent machinery. Functionally these tests assert conservation and
// shutdown invariants; their real payload is the schedules they force --
// ring push/pop under contention, rotate-vs-snapshot chaos, archiver
// start/stop/drain cycles, the coordinator clock stopped mid-rotation, and
// the shutdown edges (stop() twice, stop() racing an in-flight rotation).
// The `tsan` CI job runs them under ThreadSanitizer (and the `asan` job
// under ASan/UBSan) via the `stress` ctest label, where any data race or
// mis-ordered atomic on these paths fails the build.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/monitor.hpp"
#include "engine/engine.hpp"
#include "net/ipv4.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_ring.hpp"
#include "store/archive.hpp"
#include "util/random.hpp"
#include "util/spsc_ring.hpp"

namespace rhhh {
namespace {

namespace fs = std::filesystem;

/// Fresh per-test scratch directory, removed on destruction.
struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag) {
    path = fs::path(::testing::TempDir()) /
           ("rhhh_sched_" + tag + "_" + std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  [[nodiscard]] std::string str() const { return path.string(); }
};

EngineConfig small_engine(std::uint32_t workers, std::uint32_t producers) {
  EngineConfig cfg;
  cfg.workers = workers;
  cfg.producers = producers;
  cfg.ring_capacity = 256;  // small ring: full/empty transitions are the point
  cfg.batch = 16;
  cfg.monitor.eps = 0.05;
  cfg.monitor.delta = 0.05;
  cfg.monitor.seed = 42;
  return cfg;
}

void ingest_stream(HhhEngine& eng, std::uint32_t producer, std::uint64_t n,
                   std::uint64_t seed) {
  HhhEngine::Producer& prod = eng.producer(producer);
  Xoroshiro128 rng(seed);
  const Key128 hot = Key128::from_pair(ipv4(10, 1, 2, 3), ipv4(99, 5, 6, 7));
  for (std::uint64_t i = 0; i < n; ++i) {
    if (rng.bounded(8) == 0) {
      prod.ingest(hot);
    } else {
      prod.ingest(Key128::from_pair(rng(), static_cast<std::uint32_t>(rng())));
    }
  }
  prod.flush();
}

// --------------------------------------------------------------- SpscRing --

// One producer thread mixing single and batched pushes against one consumer
// thread mixing single and batched pops, over a deliberately tiny ring so
// both sides keep crossing the full/empty boundaries where the index
// acquire/release pairs do their work; a third thread hammers size_approx()
// (documented safe from any thread). The checksum proves every record
// arrived intact and exactly once.
TEST(SpscScheduleStress, PushPopContentionSingleAndBatch) {
  constexpr std::uint64_t kRecords = 200'000;
  SpscRing<std::uint64_t> ring(64);

  std::atomic<bool> done{false};
  std::uint64_t pushed_sum = 0;
  std::uint64_t popped_sum = 0;
  std::uint64_t popped_cnt = 0;

  std::thread producer([&] {
    Xoroshiro128 rng(7);
    std::uint64_t next = 1;
    std::uint64_t batch[32];
    while (next <= kRecords) {
      if (rng.bounded(2) == 0) {
        if (ring.try_push(next)) {
          pushed_sum += next;
          ++next;
        }
      } else {
        const std::size_t want = std::min<std::uint64_t>(
            1 + rng.bounded(32), kRecords - next + 1);
        for (std::size_t i = 0; i < want; ++i) batch[i] = next + i;
        const std::size_t sent = ring.try_push_n(batch, want);
        for (std::size_t i = 0; i < sent; ++i) pushed_sum += batch[i];
        next += sent;
      }
    }
  });

  std::thread watcher([&] {
    // size_approx() must stay within [0, capacity] no matter the schedule.
    while (!done.load(std::memory_order_acquire)) {
      EXPECT_LE(ring.size_approx(), ring.capacity());
      std::this_thread::yield();
    }
  });

  Xoroshiro128 rng(13);
  std::uint64_t out[32];
  while (popped_cnt < kRecords) {
    if (rng.bounded(2) == 0) {
      std::uint64_t v = 0;
      if (ring.try_pop(v)) {
        popped_sum += v;
        ++popped_cnt;
      }
    } else {
      const std::size_t got = ring.try_pop_n(out, 1 + rng.bounded(32));
      for (std::size_t i = 0; i < got; ++i) popped_sum += out[i];
      popped_cnt += got;
    }
  }
  producer.join();
  done.store(true, std::memory_order_release);
  watcher.join();

  EXPECT_EQ(popped_cnt, kRecords);
  EXPECT_EQ(pushed_sum, kRecords * (kRecords + 1) / 2);
  EXPECT_EQ(popped_sum, pushed_sum);
  EXPECT_EQ(ring.size_approx(), 0u);
}

// ---------------------------------------------------------- engine chaos --

// Rotations, every snapshot flavor and lock-free stats polls interleaved
// with live producers: the quiesce protocol (epoch_req_/epoch_acked/
// epoch_resume_) and the rotation bookkeeping under maximum contention.
TEST(ScheduleStress, RotateVsSnapshotChaos) {
  EngineConfig cfg = small_engine(2, 2);
  cfg.history_depth = 3;
  HhhEngine eng(cfg);
  eng.start();

  constexpr std::uint64_t kPerProducer = 60'000;
  std::vector<std::thread> producers;
  producers.reserve(2);
  for (std::uint32_t p = 0; p < 2; ++p) {
    producers.emplace_back([&, p] { ingest_stream(eng, p, kPerProducer, 100 + p); });
  }
  std::thread rotator([&] {
    for (int i = 0; i < 25; ++i) {
      eng.rotate_epoch();
      std::this_thread::yield();
    }
  });
  std::thread snapshotter([&] {
    Xoroshiro128 rng(0x51AB);
    for (int i = 0; i < 25; ++i) {
      switch (rng.bounded(3)) {
        case 0: (void)eng.snapshot(); break;
        case 1: (void)eng.window_snapshot(); break;
        default: (void)eng.trend_snapshot(); break;
      }
    }
  });
  std::thread poller([&] {
    // The lock-free read side: stats() and the window_epochs() poll that
    // detection loops use, never touching snap_mu_.
    for (int i = 0; i < 400; ++i) {
      const EngineStats s = eng.stats();
      EXPECT_LE(s.consumed + s.dropped, 2 * kPerProducer);
      (void)eng.window_epochs();
      (void)eng.epochs();
      std::this_thread::yield();
    }
  });

  for (std::thread& t : producers) t.join();
  rotator.join();
  snapshotter.join();
  poller.join();
  eng.stop();

  const EngineStats s = eng.stats();
  EXPECT_EQ(s.offered, 2 * kPerProducer);
  EXPECT_EQ(s.consumed + s.dropped, s.offered);
  EXPECT_EQ(s.dropped, 0u) << "kBlock must stay lossless";
  EXPECT_GE(s.window_epochs, 25u);
}

// Archiver lifecycle: start / rotate / stop cycles on one store directory.
// Every rotation while running must be disposed of exactly once -- archived,
// dropped on a full queue, or counted as an error -- and a cold reopen must
// see exactly the archived windows across all generations of the archiver
// thread (stop() retires a generation; start() spawns the next).
TEST(ScheduleStress, ArchiverStartStopDrainCycles) {
  TempDir dir("archiver_cycles");
  EngineConfig cfg = small_engine(2, 1);
  cfg.history_depth = 2;
  cfg.archive.dir = dir.str();
  cfg.archive.queue_windows = 4;

  std::uint64_t rotations = 0;
  HhhEngine eng(cfg);
  for (int cycle = 0; cycle < 3; ++cycle) {
    eng.start();
    std::thread producer([&] {
      ingest_stream(eng, 0, 30'000, 7'000 + static_cast<std::uint64_t>(cycle));
    });
    for (int r = 0; r < 4; ++r) {
      eng.rotate_epoch();
      ++rotations;
    }
    producer.join();
    eng.stop();  // retires the archiver generation and drains the queue
  }

  const EngineStats s = eng.stats();
  EXPECT_EQ(s.window_epochs, rotations);
  EXPECT_EQ(s.archived_windows + s.archive_queue_drops + s.archive_errors,
            rotations)
      << "every sealed window disposed of exactly once";
  EXPECT_EQ(s.archive_errors, 0u);

  const store::WindowArchive arch = store::WindowArchive::open_read(dir.str());
  EXPECT_EQ(arch.windows(), s.archived_windows);
  EXPECT_FALSE(arch.truncated_tail()) << "stop() must seal the open segment";
}

// The coordinator wall clock stopped while a rotation may be in flight:
// stop() must retire the clock generation without deadlocking against a
// clock thread blocked on snap_mu_, and without the retired thread ever
// rotating again. Several short-lived engines maximize the chance of
// catching the clock inside rotate_locked().
TEST(ScheduleStress, CoordinatorStopDuringRotation) {
  for (int round = 0; round < 4; ++round) {
    EngineConfig cfg = small_engine(2, 1);
    cfg.overflow = OverflowPolicy::kDropTail;
    cfg.epoch_millis = 1;  // rotate as fast as the clock can meter
    cfg.history_depth = 2;
    HhhEngine eng(cfg);
    eng.start();
    std::atomic<bool> quit{false};
    std::thread producer([&] {
      HhhEngine::Producer& prod = eng.producer(0);
      Xoroshiro128 rng(31 + static_cast<std::uint64_t>(round));
      // order: relaxed -- quit is a plain stop flag with no payload to
      // publish; the join below is the synchronization point.
      while (!quit.load(std::memory_order_relaxed)) {
        for (int i = 0; i < 256; ++i) {
          prod.ingest(Key128::from_pair(rng(), static_cast<std::uint32_t>(rng())));
        }
        prod.flush();
      }
    });
    // Give the clock time to arm, then stop while rotations are streaming.
    std::this_thread::sleep_for(std::chrono::milliseconds(5 + 3 * round));
    eng.stop();
    // order: relaxed -- see above; producer exits on next check.
    quit.store(true, std::memory_order_relaxed);
    producer.join();
    // The retired clock must not rotate a stopped engine: the count is
    // stable from here on.
    const std::uint64_t epochs_at_stop = eng.window_epochs();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_EQ(eng.window_epochs(), epochs_at_stop);
  }
}

// ------------------------------------------------------------ shutdown ----

// stop() is idempotent and safe to race with itself: one caller wins the
// running_ exchange and tears down; the others return without touching the
// joined threads. The destructor then runs stop() a fourth time.
TEST(ShutdownEdges, StopTwiceAndConcurrently) {
  EngineConfig cfg = small_engine(2, 1);
  cfg.epoch_millis = 1;
  HhhEngine eng(cfg);
  eng.start();
  std::thread producer([&] { ingest_stream(eng, 0, 20'000, 99); });
  producer.join();

  std::thread s1([&] { eng.stop(); });
  std::thread s2([&] { eng.stop(); });
  s1.join();
  s2.join();
  eng.stop();  // third, sequential stop: still a no-op

  const EngineStats s = eng.stats();
  EXPECT_EQ(s.consumed + s.dropped, s.offered);

  // Restart after the triple stop must come up clean and stop again.
  eng.start();
  std::thread producer2([&] { ingest_stream(eng, 0, 10'000, 100); });
  producer2.join();
  eng.stop();
  const EngineStats s2stats = eng.stats();
  EXPECT_EQ(s2stats.consumed + s2stats.dropped, s2stats.offered);
}

// stop() racing manual rotate_epoch() calls: rotations serialized behind
// snap_mu_ either complete before the teardown or run on a stopped engine
// through the no-quiesce path; neither may deadlock or corrupt the window
// accounting.
TEST(ShutdownEdges, StopRacesInFlightRotation) {
  for (int round = 0; round < 3; ++round) {
    EngineConfig cfg = small_engine(2, 1);
    cfg.history_depth = 2;
    HhhEngine eng(cfg);
    eng.start();
    std::thread producer([&] {
      ingest_stream(eng, 0, 40'000, 500 + static_cast<std::uint64_t>(round));
    });
    std::thread rotator([&] {
      for (int i = 0; i < 20; ++i) eng.rotate_epoch();
    });
    // Stop mid-rotation-storm; remaining rotations hit the stopped engine.
    std::this_thread::sleep_for(std::chrono::milliseconds(1 + round));
    eng.stop();
    rotator.join();
    producer.join();
    EXPECT_EQ(eng.window_epochs(), 20u);
    const TrendSnapshot tr = eng.trend_snapshot();
    EXPECT_LE(tr.sealed_windows(), cfg.history_depth);
  }
}

// The archive hand-off across shutdown: a queue bounded well below the
// rotation count forces drops, and the books must still balance -- every
// rotation's sealed window either reached the disk (exactly once) or was
// counted as a drop/error, with the cold store agreeing with the engine's
// own archived_windows.
TEST(ShutdownEdges, ArchiveQueueDrainedExactlyOnce) {
  TempDir dir("drain_once");
  EngineConfig cfg = small_engine(2, 1);
  cfg.archive.dir = dir.str();
  cfg.archive.queue_windows = 2;  // small: rotation bursts overrun it
  cfg.history_depth = 2;

  std::uint64_t rotations = 0;
  {
    HhhEngine eng(cfg);
    eng.start();
    std::thread producer([&] { ingest_stream(eng, 0, 50'000, 1234); });
    for (int r = 0; r < 12; ++r) {
      eng.rotate_epoch();
      ++rotations;
    }
    producer.join();
    eng.stop();

    const EngineStats s = eng.stats();
    EXPECT_EQ(s.window_epochs, rotations);
    EXPECT_EQ(s.archived_windows + s.archive_queue_drops + s.archive_errors,
              rotations);
    EXPECT_EQ(s.archive_errors, 0u);

    const store::WindowArchive arch = store::WindowArchive::open_read(dir.str());
    EXPECT_EQ(arch.windows(), s.archived_windows);

    // stop() again: the queue is already drained; the books must not move.
    eng.stop();
    const EngineStats s2 = eng.stats();
    EXPECT_EQ(s2.archived_windows, s.archived_windows);
    EXPECT_EQ(s2.archive_queue_drops, s.archive_queue_drops);
  }  // destructor: one more stop() on the torn-down engine
}

// ------------------------------------------------------------- telemetry --

// Conservation at every scrape: with the engine's gauge_fns sampled in the
// order consumed, dropped, offered (each strictly before the next), the
// identity `offered >= consumed + dropped` must hold at any instant --
// offered is published before the ring push, consumption counted after the
// pop -- and the slack is bounded by what can be in flight (per-worker
// batches mid-push plus ring occupancy). Rotations and Prometheus renders
// run concurrently as chaos; after stop() the identity is exact.
TEST(ScheduleStress, MetricsConservationUnderChaos) {
  obs::MetricsRegistry reg;
  EngineConfig cfg = small_engine(2, 2);
  cfg.metrics = &reg;
  HhhEngine eng(cfg);
  eng.start();

  constexpr std::uint64_t kPerProducer = 60'000;
  std::vector<std::thread> producers;
  producers.reserve(2);
  for (std::uint32_t p = 0; p < 2; ++p) {
    producers.emplace_back(
        [&, p] { ingest_stream(eng, p, kPerProducer, 500 + p); });
  }
  std::thread rotator([&] {
    for (int i = 0; i < 15; ++i) {
      eng.rotate_epoch();
      std::this_thread::yield();
    }
  });

  // The in-flight bound: every worker ring full plus one mid-push batch per
  // (producer, worker) pair whose offered count is published already.
  const std::uint64_t in_flight_cap =
      static_cast<std::uint64_t>(cfg.producers) * cfg.workers *
      (cfg.ring_capacity + cfg.batch);
  for (int scrape = 0; scrape < 300; ++scrape) {
    const auto consumed =
        static_cast<std::uint64_t>(reg.value("rhhh_engine_consumed"));
    const auto dropped =
        static_cast<std::uint64_t>(reg.value("rhhh_engine_dropped"));
    const auto offered =
        static_cast<std::uint64_t>(reg.value("rhhh_engine_offered"));
    ASSERT_GE(offered, consumed + dropped)
        << "conservation violated at scrape " << scrape;
    EXPECT_LE(offered - consumed - dropped, in_flight_cap)
        << "more in flight than the rings and batches can hold";
    if ((scrape & 31) == 0) {
      const std::string text = reg.render_prometheus();
      EXPECT_NE(text.find("rhhh_engine_offered"), std::string::npos);
    }
    std::this_thread::yield();
  }

  for (std::thread& t : producers) t.join();
  rotator.join();
  eng.stop();

  // Quiesced: the identity is exact and matches the engine's own stats.
  const EngineStats s = eng.stats();
  EXPECT_EQ(static_cast<std::uint64_t>(reg.value("rhhh_engine_offered")),
            2 * kPerProducer);
  EXPECT_EQ(static_cast<std::uint64_t>(reg.value("rhhh_engine_consumed")) +
                static_cast<std::uint64_t>(reg.value("rhhh_engine_dropped")),
            s.offered);
  EXPECT_EQ(static_cast<std::uint64_t>(reg.value("rhhh_engine_epochs")),
            s.epochs);
}

// TraceRing under concurrent writers and a dumping reader: every dump must
// be strictly seq-ordered, never exceed capacity, and never contain a torn
// payload (arg1 is derived from arg0, so a slot mixing two generations is
// detectable). Runs under the TSan CI job via the stress label.
TEST(ScheduleStress, TraceRingConcurrentWrapAndDump) {
  obs::TraceRing ring(64);
  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerWriter = 20'000;
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&ring, w] {
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        const std::uint64_t tag = (static_cast<std::uint64_t>(w) << 32) | i;
        ring.record(obs::TraceEvent::kSeal, static_cast<std::int64_t>(i), tag,
                    tag ^ 0xA5A5A5A5ull);
      }
    });
  }
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const std::vector<obs::TraceRecord> d = ring.dump();
      EXPECT_LE(d.size(), ring.capacity());
      for (std::size_t i = 0; i < d.size(); ++i) {
        if (i > 0) {
          EXPECT_GT(d[i].seq, d[i - 1].seq) << "dump must be seq-ordered";
        }
        EXPECT_EQ(d[i].arg1, d[i].arg0 ^ 0xA5A5A5A5ull)
            << "torn slot survived the ticket validation";
        EXPECT_EQ(d[i].event, obs::TraceEvent::kSeal);
      }
    }
  });

  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(ring.recorded(), kWriters * kPerWriter);
  const std::vector<obs::TraceRecord> final_dump = ring.dump();
  EXPECT_EQ(final_dump.size(), ring.capacity())
      << "a quiesced over-full ring dumps exactly the newest capacity events";
  EXPECT_EQ(final_dump.back().seq, kWriters * kPerWriter - 1);
}

// Cooperative rotation, single consumer: with one worker there is no
// cross-worker boundary backlog, so every sealed window's length is
// deterministically bounded -- the budget guarantees >= epoch_packets
// (consumed-only basis), and the batch-boundary crossing check plus the
// rotator's own boundary drain cap the overshoot at roughly one pop batch
// plus the in-flight ring backlog, independent of host speed. A regression
// that reintroduces timeslice-polling drift (or rotates off the wrong
// basis) shows up as a sealed window outside the band. Runs under TSan via
// the stress label, where the claim CAS / budget countdown / quiesce
// hand-off interleavings are the real payload.
TEST(ScheduleStress, CooperativeRotationBoundsSealedWindowLength) {
  constexpr std::uint64_t kEpoch = 20'000;
  constexpr std::uint64_t kPerProducer = 90'000;
  // One pop batch (crossing granularity) + one more for a claim retry +
  // the boundary-drain backlog (P rings x capacity) + racing pushes.
  constexpr std::uint64_t kSlack = 2'048;

  EngineConfig cfg = small_engine(/*workers=*/1, /*producers=*/2);
  cfg.epoch_packets = kEpoch;
  cfg.history_depth = 8;
  HhhEngine eng(cfg);
  eng.start();

  std::thread p0([&] { ingest_stream(eng, 0, kPerProducer, 101); });
  std::thread p1([&] { ingest_stream(eng, 1, kPerProducer, 202); });
  p0.join();
  p1.join();
  eng.stop();

  const TrendSnapshot trend = eng.trend_snapshot();
  ASSERT_GT(trend.sealed_windows(), 0u);
  for (std::size_t age = 0; age < trend.sealed_windows(); ++age) {
    const std::uint64_t n = trend.window_length(age);
    EXPECT_GE(n, kEpoch) << "window sealed before its budget was spent";
    EXPECT_LE(n, kEpoch + kSlack)
        << "rotation drifted past the one-batch bound at age " << age;
  }

  const EngineStats s = trend.stats();
  EXPECT_EQ(s.consumed, 2 * kPerProducer);  // kBlock: lossless
  // Every rotation here is budget-driven (no manual calls, no wall clock),
  // and each spends a full budget: the drift telemetry must agree.
  EXPECT_EQ(s.budget_rotations, s.window_epochs);
  EXPECT_GE(s.budget_rotations,
            2 * kPerProducer / (kEpoch + kSlack) - 1);
  EXPECT_LE(s.late_rotations, s.budget_rotations);
}

// Rotator election racing engine shutdown: producers keep flooding
// (kDropTail, so they never block on a stopped engine) while stop() lands
// mid-storm -- a worker may be joined between claiming the epoch-due token
// and rotating, and stop() itself quiesces while a claim is in flight.
// Several rounds force different stop points. Invariants: the window count
// freezes at stop, the books balance, and the consumed-only basis holds
// (every rotation spent a full budget of consumed records, drops included
// in N but never in the budget).
TEST(ScheduleStress, RotatorElectionSurvivesEngineStop) {
  constexpr std::uint64_t kEpoch = 3'000;
  for (int round = 0; round < 4; ++round) {
    EngineConfig cfg = small_engine(/*workers=*/2, /*producers=*/2);
    cfg.overflow = OverflowPolicy::kDropTail;
    cfg.epoch_packets = kEpoch;
    cfg.history_depth = 4;
    HhhEngine eng(cfg);
    eng.start();

    std::atomic<bool> quit{false};
    std::vector<std::thread> producers;
    for (std::uint32_t p = 0; p < 2; ++p) {
      producers.emplace_back([&, p] {
        HhhEngine::Producer& prod = eng.producer(p);
        Xoroshiro128 rng(1000 + round * 10 + p);
        while (!quit.load(std::memory_order_acquire)) {
          for (int i = 0; i < 256; ++i) {
            prod.ingest(
                Key128::from_pair(rng(), static_cast<std::uint32_t>(rng())));
          }
          prod.flush();
        }
      });
    }

    // Vary the stop point across rounds: from "barely started" to "several
    // rotations deep".
    std::this_thread::sleep_for(std::chrono::milliseconds(1 + 3 * round));
    eng.stop();
    const std::uint64_t epochs_at_stop = eng.window_epochs();

    quit.store(true, std::memory_order_release);
    for (std::thread& t : producers) t.join();

    EXPECT_EQ(eng.window_epochs(), epochs_at_stop)
        << "no rotation may land after stop() returns";
    const EngineStats s = eng.stats();
    EXPECT_LE(s.consumed + s.dropped, s.offered);
    EXPECT_GE(s.consumed, kEpoch * s.window_epochs)
        << "a rotation fired without a full consumed-only budget";
  }
}

// Cooperative workers and the fallback clock chasing the same packet
// budget: with a small epoch the clock's 200us poll regularly lands right
// as a worker claims, so both paths reach the rotation attempt
// concurrently. The stale-claim re-check under snap_mu_ must dissolve the
// loser -- a double rotation would seal a window that never spent a
// budget, violating consumed >= epoch_packets * rotations and leaving a
// short window in the retained history.
TEST(ScheduleStress, NoDoubleRotationWhenCooperativeAndFallbackRace) {
  constexpr std::uint64_t kEpoch = 2'000;
  constexpr std::uint64_t kPerProducer = 60'000;

  EngineConfig cfg = small_engine(/*workers=*/2, /*producers=*/2);
  cfg.epoch_packets = kEpoch;
  cfg.history_depth = 4;
  HhhEngine eng(cfg);
  eng.start();

  std::thread p0([&] { ingest_stream(eng, 0, kPerProducer, 303); });
  std::thread p1([&] { ingest_stream(eng, 1, kPerProducer, 404); });
  p0.join();
  p1.join();
  eng.stop();

  const TrendSnapshot trend = eng.trend_snapshot();
  const EngineStats s = trend.stats();
  EXPECT_EQ(s.consumed, 2 * kPerProducer);  // kBlock: lossless
  ASSERT_GT(s.window_epochs, 0u);
  EXPECT_GE(s.consumed, kEpoch * s.window_epochs)
      << "double rotation: more windows sealed than budgets spent";
  // The retained tail must show no short (double-rotation) window either.
  for (std::size_t age = 0; age < trend.sealed_windows(); ++age) {
    EXPECT_GE(trend.window_length(age), kEpoch)
        << "short sealed window at age " << age;
  }
  EXPECT_EQ(s.budget_rotations, s.window_epochs);
}

}  // namespace
}  // namespace rhhh
