// Tests for the sliding-window (epoch-rotating) monitor: rotation
// bookkeeping, current/previous separation, and emerging-aggregate
// detection on a simulated attack ramp.
#include <gtest/gtest.h>

#include <cmath>

#include "core/windowed.hpp"
#include "net/ipv4.hpp"
#include "trace/trace_gen.hpp"
#include "util/random.hpp"

namespace rhhh {
namespace {

MonitorConfig small_config() {
  MonitorConfig cfg;
  cfg.hierarchy = HierarchyKind::kIpv4TwoDimBytes;
  cfg.algorithm = AlgorithmKind::kMst;  // deterministic: crisp assertions
  cfg.eps = 0.01;
  cfg.delta = 0.01;
  return cfg;
}

TEST(WindowedMonitor, RejectsZeroEpoch) {
  EXPECT_THROW(WindowedHhhMonitor(small_config(), 0), std::invalid_argument);
}

TEST(WindowedMonitor, RotatesEveryEpoch) {
  WindowedHhhMonitor mon(small_config(), 1000);
  EXPECT_EQ(mon.epochs_completed(), 0u);
  for (int i = 0; i < 2500; ++i) mon.update(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2));
  EXPECT_EQ(mon.epochs_completed(), 2u);
  EXPECT_EQ(mon.packets_in_epoch(), 500u);
}

TEST(WindowedMonitor, PreviousEmptyBeforeFirstRotation) {
  WindowedHhhMonitor mon(small_config(), 10000);
  for (int i = 0; i < 100; ++i) mon.update(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2));
  EXPECT_TRUE(mon.previous(0.1).empty());
  EXPECT_FALSE(mon.current(0.5).empty());
}

TEST(WindowedMonitor, CurrentAndPreviousSeparate) {
  WindowedHhhMonitor mon(small_config(), 1000);
  // Epoch 0: traffic to A. Epoch 1: traffic to B.
  for (int i = 0; i < 1000; ++i) mon.update(ipv4(10, 0, 0, 1), ipv4(1, 1, 1, 1));
  for (int i = 0; i < 999; ++i) mon.update(ipv4(20, 0, 0, 2), ipv4(2, 2, 2, 2));
  const Hierarchy& h = mon.hierarchy();
  const Prefix a{h.bottom(), Key128::from_pair(ipv4(10, 0, 0, 1), ipv4(1, 1, 1, 1))};
  const Prefix b{h.bottom(), Key128::from_pair(ipv4(20, 0, 0, 2), ipv4(2, 2, 2, 2))};
  EXPECT_TRUE(mon.previous(0.5).contains(a));
  EXPECT_FALSE(mon.previous(0.5).contains(b));
  EXPECT_TRUE(mon.current(0.5).contains(b));
  EXPECT_FALSE(mon.current(0.5).contains(a));
}

TEST(WindowedMonitor, ConvergedEpochReflectsPsi) {
  MonitorConfig cfg = small_config();
  EXPECT_TRUE(WindowedHhhMonitor(cfg, 100).converged_epoch());  // MST: always
  cfg.algorithm = AlgorithmKind::kRhhh;
  cfg.eps = 0.1;
  cfg.delta = 0.1;
  WindowedHhhMonitor tight(cfg, 1u << 20);
  EXPECT_TRUE(tight.converged_epoch());
  WindowedHhhMonitor loose(cfg, 100);
  EXPECT_FALSE(loose.converged_epoch());
}

TEST(WindowedMonitor, EmergingDetectsRampingAggregate) {
  MonitorConfig cfg = small_config();
  WindowedHhhMonitor mon(cfg, 50000);
  TraceGenerator background(trace_preset("chicago16"));
  Xoroshiro128 rng(5);
  const Ipv4 attack_net = ipv4(66, 66, 0, 0);
  const Ipv4 victim = ipv4(9, 9, 9, 9);

  auto run_epoch = [&](double attack_share) {
    for (int i = 0; i < 50000; ++i) {
      if (rng.uniform01() < attack_share) {
        mon.update(attack_net | rng.bounded(1 << 16), victim);
      } else {
        const PacketRecord p = background.next();
        mon.update(p.src_ip, p.dst_ip);
      }
    }
  };

  run_epoch(0.0);  // quiet baseline epoch
  run_epoch(0.0);  // second quiet epoch: "previous" is now a quiet epoch
  ASSERT_EQ(mon.epochs_completed(), 2u);

  // Attack begins mid-epoch: the live (partial) epoch carries the ramp while
  // the sealed previous epoch is quiet -- exactly when emerging() must fire.
  for (int i = 0; i < 25000; ++i) {
    if (rng.uniform01() < 0.25) {
      mon.update(attack_net | rng.bounded(1 << 16), victim);
    } else {
      const PacketRecord p = background.next();
      mon.update(p.src_ip, p.dst_ip);
    }
  }
  ASSERT_EQ(mon.epochs_completed(), 2u) << "attack burst must not cross an epoch";
  const auto emerging = mon.emerging(0.1, 3.0);
  bool found = false;
  for (const EmergingPrefix& e : emerging) {
    const auto& node = mon.hierarchy().node(e.now.prefix.node);
    if (node.step[0] >= 1 && node.step[1] == 0 && e.share_now > 0.15) found = true;
  }
  EXPECT_TRUE(found) << emerging.size() << " emerging prefixes";
}

TEST(WindowedMonitor, RotatesExactlyAtEpochBoundary) {
  WindowedHhhMonitor mon(small_config(), 1000);
  for (int i = 0; i < 999; ++i) mon.update(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2));
  EXPECT_EQ(mon.epochs_completed(), 0u);
  EXPECT_EQ(mon.packets_in_epoch(), 999u);
  EXPECT_TRUE(mon.previous(0.1).empty());

  // The 1000th update is the boundary: the rotation happens inside this
  // update, leaving a freshly cleared live epoch (not one packet into it).
  mon.update(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2));
  EXPECT_EQ(mon.epochs_completed(), 1u);
  EXPECT_EQ(mon.packets_in_epoch(), 0u);
  EXPECT_FALSE(mon.previous(0.5).empty());

  mon.update(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2));
  EXPECT_EQ(mon.epochs_completed(), 1u);
  EXPECT_EQ(mon.packets_in_epoch(), 1u);
}

TEST(WindowedMonitor, GrowthIsExplicitInfinityForNewPrefixes) {
  EmergingPrefix fresh{};
  fresh.previous_share = 0.0;
  fresh.share_now = 0.25;
  EXPECT_TRUE(std::isinf(fresh.growth()));
  EXPECT_GT(fresh.growth(), 0.0);

  EmergingPrefix grown{};
  grown.previous_share = 0.1;
  grown.share_now = 0.25;
  EXPECT_DOUBLE_EQ(grown.growth(), 2.5);
}

TEST(WindowedMonitor, EmergingSharesMatchHandComputedValues) {
  // Deterministic MST + exact backend sizing: every count below is exact,
  // so the reported shares and growth factors can be pinned precisely.
  WindowedHhhMonitor mon(small_config(), 1000);
  const Ipv4 a_src = ipv4(10, 0, 0, 1), a_dst = ipv4(1, 1, 1, 1);
  const Ipv4 b_src = ipv4(20, 0, 0, 2), b_dst = ipv4(2, 2, 2, 2);
  const Ipv4 c_src = ipv4(30, 0, 0, 3), c_dst = ipv4(3, 3, 3, 3);

  // Sealed epoch: A = 300/1000, B = 700/1000, C absent.
  for (int i = 0; i < 300; ++i) mon.update(a_src, a_dst);
  for (int i = 0; i < 700; ++i) mon.update(b_src, b_dst);
  ASSERT_EQ(mon.epochs_completed(), 1u);

  // Live epoch (partial): A = 300/500, C = 150/500, B = 50/500.
  for (int i = 0; i < 300; ++i) mon.update(a_src, a_dst);
  for (int i = 0; i < 150; ++i) mon.update(c_src, c_dst);
  for (int i = 0; i < 50; ++i) mon.update(b_src, b_dst);
  ASSERT_EQ(mon.packets_in_epoch(), 500u);

  const Hierarchy& h = mon.hierarchy();
  const Prefix a{h.bottom(), Key128::from_pair(a_src, a_dst)};
  const Prefix b{h.bottom(), Key128::from_pair(b_src, b_dst)};
  const Prefix c{h.bottom(), Key128::from_pair(c_src, c_dst)};

  // A: share 0.3 -> 0.6, growth exactly 2. C: new, infinite growth.
  // B: share 0.7 -> 0.1, shrinking -- must not be reported.
  const auto emerging = mon.emerging(0.25, 2.0);
  const EmergingPrefix* ea = nullptr;
  const EmergingPrefix* ec = nullptr;
  for (const EmergingPrefix& e : emerging) {
    if (e.now.prefix == a) ea = &e;
    if (e.now.prefix == c) ec = &e;
    EXPECT_FALSE(e.now.prefix == b) << "shrinking prefix reported as emerging";
  }
  ASSERT_NE(ea, nullptr);
  EXPECT_DOUBLE_EQ(ea->previous_share, 0.3);
  EXPECT_DOUBLE_EQ(ea->share_now, 0.6);
  EXPECT_DOUBLE_EQ(ea->growth(), 2.0);
  ASSERT_NE(ec, nullptr);
  EXPECT_DOUBLE_EQ(ec->previous_share, 0.0);
  EXPECT_DOUBLE_EQ(ec->share_now, 0.3);
  EXPECT_TRUE(std::isinf(ec->growth()));
}

TEST(WindowedMonitor, ConvergedEpochStableAcrossRotations) {
  // converged_epoch() compares the configuration's psi against the epoch
  // size; it must not flap as the monitor rotates through epochs.
  MonitorConfig cfg = small_config();
  cfg.algorithm = AlgorithmKind::kRhhh;
  cfg.eps = 0.1;
  cfg.delta = 0.1;
  WindowedHhhMonitor loose(cfg, 100);
  ASSERT_FALSE(loose.converged_epoch());
  for (int i = 0; i < 550; ++i) loose.update(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2));
  EXPECT_GE(loose.epochs_completed(), 5u);
  EXPECT_FALSE(loose.converged_epoch());

  WindowedHhhMonitor deterministic(small_config(), 100);
  ASSERT_TRUE(deterministic.converged_epoch());
  for (int i = 0; i < 550; ++i) {
    deterministic.update(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2));
  }
  EXPECT_TRUE(deterministic.converged_epoch());
}

TEST(WindowedMonitor, StableTrafficNotEmerging) {
  // The same heavy aggregate in both epochs must not be reported as
  // emerging at any meaningful growth factor.
  WindowedHhhMonitor mon(small_config(), 20000);
  TraceGenerator gen(trace_preset("sanjose14"));
  for (int i = 0; i < 50000; ++i) {
    const PacketRecord p = gen.next();
    mon.update(p.src_ip, p.dst_ip);
  }
  for (const EmergingPrefix& e : mon.emerging(0.05, 2.0)) {
    // Anything reported must genuinely have doubled (or be brand new).
    EXPECT_TRUE(e.previous_share == 0.0 || e.growth() >= 2.0);
  }
}

}  // namespace
}  // namespace rhhh
