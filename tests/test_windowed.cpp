// Tests for the sliding-window (epoch-rotating) monitor: rotation
// bookkeeping, current/previous separation, and emerging-aggregate
// detection on a simulated attack ramp.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/windowed.hpp"
#include "net/ipv4.hpp"
#include "trace/trace_gen.hpp"
#include "util/random.hpp"

namespace rhhh {
namespace {

MonitorConfig small_config() {
  MonitorConfig cfg;
  cfg.hierarchy = HierarchyKind::kIpv4TwoDimBytes;
  cfg.algorithm = AlgorithmKind::kMst;  // deterministic: crisp assertions
  cfg.eps = 0.01;
  cfg.delta = 0.01;
  return cfg;
}

TEST(WindowedMonitor, RejectsZeroEpoch) {
  EXPECT_THROW(WindowedHhhMonitor(small_config(), 0), std::invalid_argument);
}

TEST(WindowedMonitor, RotatesEveryEpoch) {
  WindowedHhhMonitor mon(small_config(), 1000);
  EXPECT_EQ(mon.epochs_completed(), 0u);
  for (int i = 0; i < 2500; ++i) mon.update(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2));
  EXPECT_EQ(mon.epochs_completed(), 2u);
  EXPECT_EQ(mon.packets_in_epoch(), 500u);
}

TEST(WindowedMonitor, PreviousEmptyBeforeFirstRotation) {
  WindowedHhhMonitor mon(small_config(), 10000);
  for (int i = 0; i < 100; ++i) mon.update(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2));
  EXPECT_TRUE(mon.previous(0.1).empty());
  EXPECT_FALSE(mon.current(0.5).empty());
}

TEST(WindowedMonitor, CurrentAndPreviousSeparate) {
  WindowedHhhMonitor mon(small_config(), 1000);
  // Epoch 0: traffic to A. Epoch 1: traffic to B.
  for (int i = 0; i < 1000; ++i) mon.update(ipv4(10, 0, 0, 1), ipv4(1, 1, 1, 1));
  for (int i = 0; i < 999; ++i) mon.update(ipv4(20, 0, 0, 2), ipv4(2, 2, 2, 2));
  const Hierarchy& h = mon.hierarchy();
  const Prefix a{h.bottom(), Key128::from_pair(ipv4(10, 0, 0, 1), ipv4(1, 1, 1, 1))};
  const Prefix b{h.bottom(), Key128::from_pair(ipv4(20, 0, 0, 2), ipv4(2, 2, 2, 2))};
  EXPECT_TRUE(mon.previous(0.5).contains(a));
  EXPECT_FALSE(mon.previous(0.5).contains(b));
  EXPECT_TRUE(mon.current(0.5).contains(b));
  EXPECT_FALSE(mon.current(0.5).contains(a));
}

TEST(WindowedMonitor, ConvergedEpochReflectsPsi) {
  MonitorConfig cfg = small_config();
  EXPECT_TRUE(WindowedHhhMonitor(cfg, 100).converged_epoch());  // MST: always
  cfg.algorithm = AlgorithmKind::kRhhh;
  cfg.eps = 0.1;
  cfg.delta = 0.1;
  WindowedHhhMonitor tight(cfg, 1u << 20);
  EXPECT_TRUE(tight.converged_epoch());
  WindowedHhhMonitor loose(cfg, 100);
  EXPECT_FALSE(loose.converged_epoch());
}

TEST(WindowedMonitor, EmergingDetectsRampingAggregate) {
  MonitorConfig cfg = small_config();
  WindowedHhhMonitor mon(cfg, 50000);
  TraceGenerator background(trace_preset("chicago16"));
  Xoroshiro128 rng(5);
  const Ipv4 attack_net = ipv4(66, 66, 0, 0);
  const Ipv4 victim = ipv4(9, 9, 9, 9);

  auto run_epoch = [&](double attack_share) {
    for (int i = 0; i < 50000; ++i) {
      if (rng.uniform01() < attack_share) {
        mon.update(attack_net | rng.bounded(1 << 16), victim);
      } else {
        const PacketRecord p = background.next();
        mon.update(p.src_ip, p.dst_ip);
      }
    }
  };

  run_epoch(0.0);  // quiet baseline epoch
  run_epoch(0.0);  // second quiet epoch: "previous" is now a quiet epoch
  ASSERT_EQ(mon.epochs_completed(), 2u);

  // Attack begins mid-epoch: the live (partial) epoch carries the ramp while
  // the sealed previous epoch is quiet -- exactly when emerging() must fire.
  for (int i = 0; i < 25000; ++i) {
    if (rng.uniform01() < 0.25) {
      mon.update(attack_net | rng.bounded(1 << 16), victim);
    } else {
      const PacketRecord p = background.next();
      mon.update(p.src_ip, p.dst_ip);
    }
  }
  ASSERT_EQ(mon.epochs_completed(), 2u) << "attack burst must not cross an epoch";
  const auto emerging = mon.emerging(0.1, 3.0);
  bool found = false;
  for (const EmergingPrefix& e : emerging) {
    const auto& node = mon.hierarchy().node(e.now.prefix.node);
    if (node.step[0] >= 1 && node.step[1] == 0 && e.share_now > 0.15) found = true;
  }
  EXPECT_TRUE(found) << emerging.size() << " emerging prefixes";
}

TEST(WindowedMonitor, RotatesExactlyAtEpochBoundary) {
  WindowedHhhMonitor mon(small_config(), 1000);
  for (int i = 0; i < 999; ++i) mon.update(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2));
  EXPECT_EQ(mon.epochs_completed(), 0u);
  EXPECT_EQ(mon.packets_in_epoch(), 999u);
  EXPECT_TRUE(mon.previous(0.1).empty());

  // The 1000th update is the boundary: the rotation happens inside this
  // update, leaving a freshly cleared live epoch (not one packet into it).
  mon.update(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2));
  EXPECT_EQ(mon.epochs_completed(), 1u);
  EXPECT_EQ(mon.packets_in_epoch(), 0u);
  EXPECT_FALSE(mon.previous(0.5).empty());

  mon.update(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2));
  EXPECT_EQ(mon.epochs_completed(), 1u);
  EXPECT_EQ(mon.packets_in_epoch(), 1u);
}

TEST(WindowedMonitor, GrowthIsExplicitInfinityForNewPrefixes) {
  EmergingPrefix fresh{};
  fresh.previous_share = 0.0;
  fresh.share_now = 0.25;
  EXPECT_TRUE(std::isinf(fresh.growth()));
  EXPECT_GT(fresh.growth(), 0.0);

  EmergingPrefix grown{};
  grown.previous_share = 0.1;
  grown.share_now = 0.25;
  EXPECT_DOUBLE_EQ(grown.growth(), 2.5);
}

TEST(WindowedMonitor, EmergingSharesMatchHandComputedValues) {
  // Deterministic MST + exact backend sizing: every count below is exact,
  // so the reported shares and growth factors can be pinned precisely.
  WindowedHhhMonitor mon(small_config(), 1000);
  const Ipv4 a_src = ipv4(10, 0, 0, 1), a_dst = ipv4(1, 1, 1, 1);
  const Ipv4 b_src = ipv4(20, 0, 0, 2), b_dst = ipv4(2, 2, 2, 2);
  const Ipv4 c_src = ipv4(30, 0, 0, 3), c_dst = ipv4(3, 3, 3, 3);

  // Sealed epoch: A = 300/1000, B = 700/1000, C absent.
  for (int i = 0; i < 300; ++i) mon.update(a_src, a_dst);
  for (int i = 0; i < 700; ++i) mon.update(b_src, b_dst);
  ASSERT_EQ(mon.epochs_completed(), 1u);

  // Live epoch (partial): A = 300/500, C = 150/500, B = 50/500.
  for (int i = 0; i < 300; ++i) mon.update(a_src, a_dst);
  for (int i = 0; i < 150; ++i) mon.update(c_src, c_dst);
  for (int i = 0; i < 50; ++i) mon.update(b_src, b_dst);
  ASSERT_EQ(mon.packets_in_epoch(), 500u);

  const Hierarchy& h = mon.hierarchy();
  const Prefix a{h.bottom(), Key128::from_pair(a_src, a_dst)};
  const Prefix b{h.bottom(), Key128::from_pair(b_src, b_dst)};
  const Prefix c{h.bottom(), Key128::from_pair(c_src, c_dst)};

  // A: share 0.3 -> 0.6, growth exactly 2. C: new, infinite growth.
  // B: share 0.7 -> 0.1, shrinking -- must not be reported.
  const auto emerging = mon.emerging(0.25, 2.0);
  const EmergingPrefix* ea = nullptr;
  const EmergingPrefix* ec = nullptr;
  for (const EmergingPrefix& e : emerging) {
    if (e.now.prefix == a) ea = &e;
    if (e.now.prefix == c) ec = &e;
    EXPECT_FALSE(e.now.prefix == b) << "shrinking prefix reported as emerging";
  }
  ASSERT_NE(ea, nullptr);
  EXPECT_DOUBLE_EQ(ea->previous_share, 0.3);
  EXPECT_DOUBLE_EQ(ea->share_now, 0.6);
  EXPECT_DOUBLE_EQ(ea->growth(), 2.0);
  ASSERT_NE(ec, nullptr);
  EXPECT_DOUBLE_EQ(ec->previous_share, 0.0);
  EXPECT_DOUBLE_EQ(ec->share_now, 0.3);
  EXPECT_TRUE(std::isinf(ec->growth()));
}

TEST(WindowedMonitor, ConvergedEpochStableAcrossRotations) {
  // converged_epoch() compares the configuration's psi against the epoch
  // size; it must not flap as the monitor rotates through epochs.
  MonitorConfig cfg = small_config();
  cfg.algorithm = AlgorithmKind::kRhhh;
  cfg.eps = 0.1;
  cfg.delta = 0.1;
  WindowedHhhMonitor loose(cfg, 100);
  ASSERT_FALSE(loose.converged_epoch());
  for (int i = 0; i < 550; ++i) loose.update(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2));
  EXPECT_GE(loose.epochs_completed(), 5u);
  EXPECT_FALSE(loose.converged_epoch());

  WindowedHhhMonitor deterministic(small_config(), 100);
  ASSERT_TRUE(deterministic.converged_epoch());
  for (int i = 0; i < 550; ++i) {
    deterministic.update(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2));
  }
  EXPECT_TRUE(deterministic.converged_epoch());
}

// ------------------------------------------------ K-deep window ring ----

TEST(WindowRing, RejectsZeroDepth) {
  EXPECT_THROW(WindowedHhhMonitor(small_config(), 1000, 0), std::invalid_argument);
}

TEST(WindowRing, DepthOneIsTheDefault) {
  WindowedHhhMonitor mon(small_config(), 1000);
  EXPECT_EQ(mon.history_depth(), 1u);
  EXPECT_EQ(mon.sealed_windows(), 0u);
}

TEST(WindowRing, SealedCountSaturatesAtDepth) {
  WindowedHhhMonitor mon(small_config(), 100, 3);
  EXPECT_EQ(mon.history_depth(), 3u);
  for (int e = 1; e <= 5; ++e) {
    for (int i = 0; i < 100; ++i) mon.update(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2));
    EXPECT_EQ(mon.epochs_completed(), static_cast<std::uint64_t>(e));
    EXPECT_EQ(mon.sealed_windows(), std::min<std::size_t>(e, 3));
  }
}

TEST(WindowRing, RotatesExactlyAtBoundaryAtDepthK) {
  // The exact-boundary semantics of the depth-1 monitor must hold at any
  // depth: the Nth update itself performs the rotation, leaving a freshly
  // cleared live window.
  WindowedHhhMonitor mon(small_config(), 1000, 4);
  for (int i = 0; i < 999; ++i) mon.update(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2));
  EXPECT_EQ(mon.epochs_completed(), 0u);
  EXPECT_EQ(mon.packets_in_epoch(), 999u);
  EXPECT_EQ(mon.sealed_windows(), 0u);
  mon.update(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2));
  EXPECT_EQ(mon.epochs_completed(), 1u);
  EXPECT_EQ(mon.packets_in_epoch(), 0u);
  EXPECT_EQ(mon.sealed_windows(), 1u);
  EXPECT_FALSE(mon.previous(0.5).empty());
}

TEST(WindowRing, TrendTracksPerEpochSharesOldestFirst) {
  // Deterministic MST: every share below is exact. Four distinct epochs:
  //   e1: A=1000           e2: A=500 B=500     e3: B=1000
  //   live (partial): A=250 C=250
  // With depth 3 all sealed epochs are retained; trend() must return
  // oldest -> newest with the live window last.
  WindowedHhhMonitor mon(small_config(), 1000, 3);
  const Ipv4 a_src = ipv4(10, 0, 0, 1), a_dst = ipv4(1, 1, 1, 1);
  const Ipv4 b_src = ipv4(20, 0, 0, 2), b_dst = ipv4(2, 2, 2, 2);
  const Ipv4 c_src = ipv4(30, 0, 0, 3), c_dst = ipv4(3, 3, 3, 3);
  for (int i = 0; i < 1000; ++i) mon.update(a_src, a_dst);
  for (int i = 0; i < 500; ++i) mon.update(a_src, a_dst);
  for (int i = 0; i < 500; ++i) mon.update(b_src, b_dst);
  for (int i = 0; i < 1000; ++i) mon.update(b_src, b_dst);
  for (int i = 0; i < 250; ++i) mon.update(a_src, a_dst);
  for (int i = 0; i < 250; ++i) mon.update(c_src, c_dst);
  ASSERT_EQ(mon.epochs_completed(), 3u);
  ASSERT_EQ(mon.packets_in_epoch(), 500u);

  const Hierarchy& h = mon.hierarchy();
  const Prefix a{h.bottom(), Key128::from_pair(a_src, a_dst)};
  const Prefix b{h.bottom(), Key128::from_pair(b_src, b_dst)};

  const auto ta = mon.trend(a);
  ASSERT_EQ(ta.size(), 4u);  // 3 sealed + live
  EXPECT_EQ(ta[0].stream_length, 1000u);
  EXPECT_DOUBLE_EQ(ta[0].share, 1.0);
  EXPECT_DOUBLE_EQ(ta[1].share, 0.5);
  EXPECT_DOUBLE_EQ(ta[2].share, 0.0);
  EXPECT_EQ(ta[3].stream_length, 500u);
  EXPECT_DOUBLE_EQ(ta[3].share, 0.5);
  EXPECT_DOUBLE_EQ(ta[3].estimate, 250.0);

  const auto tb = mon.trend(b);
  ASSERT_EQ(tb.size(), 4u);
  EXPECT_DOUBLE_EQ(tb[0].share, 0.0);
  EXPECT_DOUBLE_EQ(tb[1].share, 0.5);
  EXPECT_DOUBLE_EQ(tb[2].share, 1.0);
  EXPECT_DOUBLE_EQ(tb[3].share, 0.0);
}

TEST(WindowRing, TrendBeforeAnyRotationIsLiveOnly) {
  WindowedHhhMonitor mon(small_config(), 1000, 4);
  for (int i = 0; i < 100; ++i) mon.update(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2));
  const Hierarchy& h = mon.hierarchy();
  const Prefix p{h.bottom(),
                 Key128::from_pair(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2))};
  const auto t = mon.trend(p);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_DOUBLE_EQ(t[0].share, 1.0);
}

TEST(WindowRing, RingEvictsOldestWindow) {
  // Depth 2, four epochs of distinct keys: only the two newest sealed
  // epochs survive, so the evicted epochs' key is absent from every
  // retained window and its trend shows zeros.
  WindowedHhhMonitor mon(small_config(), 1000, 2);
  const Ipv4 srcs[] = {ipv4(10, 0, 0, 1), ipv4(20, 0, 0, 2), ipv4(30, 0, 0, 3),
                       ipv4(40, 0, 0, 4)};
  for (const Ipv4 s : srcs) {
    for (int i = 0; i < 1000; ++i) mon.update(s, ipv4(9, 9, 9, 9));
  }
  ASSERT_EQ(mon.epochs_completed(), 4u);
  ASSERT_EQ(mon.sealed_windows(), 2u);
  const Hierarchy& h = mon.hierarchy();
  const Prefix first{h.bottom(), Key128::from_pair(srcs[0], ipv4(9, 9, 9, 9))};
  const Prefix third{h.bottom(), Key128::from_pair(srcs[2], ipv4(9, 9, 9, 9))};
  const auto t_first = mon.trend(first);   // evicted epoch's key
  const auto t_third = mon.trend(third);   // oldest retained epoch's key
  ASSERT_EQ(t_first.size(), 3u);
  for (const TrendPoint& p : t_first) EXPECT_DOUBLE_EQ(p.share, 0.0);
  EXPECT_DOUBLE_EQ(t_third[0].share, 1.0);
  EXPECT_DOUBLE_EQ(t_third[1].share, 0.0);
}

TEST(WindowRing, EmergingSustainedMatchesHandComputedEwma) {
  // MST, depth 4, alpha 0.5, min_epochs 2. Attack key X carries per-epoch
  // shares 0.1, 0.2 (baseline epochs), then 0.6, 0.6 (the run). Baseline
  // EWMA = 0.5*0.2 + 0.5*0.1 = 0.15; growth bar at 3x = 0.45; both run
  // windows clear it -> alarm with exactly pinned fields.
  WindowedHhhMonitor mon(small_config(), 1000, 4);
  const Ipv4 x_src = ipv4(66, 66, 0, 1), x_dst = ipv4(9, 9, 9, 9);
  const Ipv4 f_src = ipv4(10, 0, 0, 1), f_dst = ipv4(1, 1, 1, 1);
  auto run_epoch = [&](int x_pkts) {
    for (int i = 0; i < x_pkts; ++i) mon.update(x_src, x_dst);
    for (int i = 0; i < 1000 - x_pkts; ++i) mon.update(f_src, f_dst);
  };
  run_epoch(100);
  run_epoch(200);
  run_epoch(600);
  ASSERT_EQ(mon.epochs_completed(), 3u);
  // Partial live window: 300/500 = 0.6 share, same as the sealed run epoch.
  for (int i = 0; i < 300; ++i) mon.update(x_src, x_dst);
  for (int i = 0; i < 200; ++i) mon.update(f_src, f_dst);
  ASSERT_EQ(mon.epochs_completed(), 3u) << "live window must stay partial";

  const Hierarchy& h = mon.hierarchy();
  const Prefix x{h.bottom(), Key128::from_pair(x_src, x_dst)};
  const auto alarms = mon.emerging_sustained(0.3, 3.0, 2, 0.5);
  const SustainedPrefix* sx = nullptr;
  for (const SustainedPrefix& s : alarms) {
    if (s.now.prefix == x) sx = &s;
    // The filler key shrinks (0.9, 0.8 -> 0.4, 0.4): it must never alarm.
    EXPECT_FALSE(s.now.prefix ==
                 Prefix(h.bottom(), Key128::from_pair(f_src, f_dst)));
  }
  ASSERT_NE(sx, nullptr);
  EXPECT_DOUBLE_EQ(sx->baseline_share, 0.15);
  EXPECT_DOUBLE_EQ(sx->share_now, 0.6);
  EXPECT_DOUBLE_EQ(sx->min_run_share, 0.6);
  EXPECT_EQ(sx->run_epochs, 2u);
  EXPECT_DOUBLE_EQ(sx->growth(), 4.0);
}

TEST(WindowRing, OneEpochBlipDoesNotAlarmSustained) {
  // Same setup, but the surge is a single sealed epoch followed by a quiet
  // one: the blip sits inside the run for min_epochs=2 only as one of two
  // windows, and the quiet window fails the persistence bar. A sustained
  // detector must stay silent where plain emerging() (one-window
  // comparison) could still fire on the partial live window.
  WindowedHhhMonitor mon(small_config(), 1000, 4);
  const Ipv4 x_src = ipv4(66, 66, 0, 1), x_dst = ipv4(9, 9, 9, 9);
  const Ipv4 f_src = ipv4(10, 0, 0, 1), f_dst = ipv4(1, 1, 1, 1);
  auto run_epoch = [&](int x_pkts) {
    for (int i = 0; i < x_pkts; ++i) mon.update(x_src, x_dst);
    for (int i = 0; i < 1000 - x_pkts; ++i) mon.update(f_src, f_dst);
  };
  run_epoch(100);
  run_epoch(600);  // the blip epoch
  run_epoch(100);  // quiet again
  for (int i = 0; i < 300; ++i) mon.update(x_src, x_dst);  // live resurges
  for (int i = 0; i < 200; ++i) mon.update(f_src, f_dst);
  ASSERT_EQ(mon.epochs_completed(), 3u);

  const Hierarchy& h = mon.hierarchy();
  const Prefix x{h.bottom(), Key128::from_pair(x_src, x_dst)};
  // Run = {quiet epoch (0.1), live (0.6)}; baseline EWMA = 0.5*0.6 + 0.5*0.1
  // = 0.35. min_run = 0.1 < 3 * 0.35: no sustained alarm for X.
  for (const SustainedPrefix& s : mon.emerging_sustained(0.3, 3.0, 2, 0.5)) {
    EXPECT_FALSE(s.now.prefix == x) << "one-epoch blip alarmed as sustained";
  }
}

TEST(WindowRing, SustainedNeedsEnoughHistory) {
  WindowedHhhMonitor mon(small_config(), 1000, 4);
  EXPECT_THROW(mon.emerging_sustained(0.3, 3.0, 0), std::invalid_argument);
  EXPECT_THROW(mon.emerging_sustained(0.3, 3.0, 2, 0.0), std::invalid_argument);
  EXPECT_THROW(mon.emerging_sustained(0.3, 3.0, 2, 1.5), std::invalid_argument);
  // Epoch 1: background only; then the attacker appears and persists
  // through epoch 2 and the live window.
  for (int i = 0; i < 1000; ++i) mon.update(ipv4(10, 0, 0, 1), ipv4(1, 1, 1, 1));
  for (int i = 0; i < 1000; ++i) mon.update(ipv4(66, 66, 0, 1), ipv4(9, 9, 9, 9));
  ASSERT_EQ(mon.epochs_completed(), 2u);
  for (int i = 0; i < 500; ++i) mon.update(ipv4(66, 66, 0, 1), ipv4(9, 9, 9, 9));
  // Brand-new aggregate (zero baseline) that held for the whole run: alarms.
  EXPECT_FALSE(mon.emerging_sustained(0.3, 3.0, 2).empty());
  // min_epochs 3 would need a 4th window for the baseline: conservatively
  // empty, not an alarm storm.
  EXPECT_TRUE(mon.emerging_sustained(0.3, 3.0, 3).empty());
}

// ------------------------------------- depth-1 regression (golden pins) ----

namespace golden {

std::uint64_t fnv1a(std::uint64_t h, const std::string& s) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  h ^= static_cast<unsigned char>('\n');
  h *= 1099511628211ULL;
  return h;
}

std::uint64_t digest_set(const Hierarchy& h, const HhhSet& s) {
  std::vector<std::string> lines;
  for (const HhhCandidate& c : s) {
    char buf[160];
    std::snprintf(buf, sizeof buf, "%s f_est=%.6f f_lo=%.6f f_hi=%.6f c_hat=%.6f",
                  h.format(c.prefix).c_str(), c.f_est, c.f_lo, c.f_hi, c.c_hat);
    lines.emplace_back(buf);
  }
  std::sort(lines.begin(), lines.end());
  std::uint64_t d = 14695981039346656037ULL;
  for (const std::string& l : lines) d = fnv1a(d, l);
  return d;
}

std::uint64_t digest_emerging(const Hierarchy& h,
                              const std::vector<EmergingPrefix>& es) {
  std::vector<std::string> lines;
  for (const EmergingPrefix& e : es) {
    char buf[160];
    std::snprintf(buf, sizeof buf, "%s prev=%.9f now=%.9f",
                  h.format(e.now.prefix).c_str(), e.previous_share, e.share_now);
    lines.emplace_back(buf);
  }
  std::sort(lines.begin(), lines.end());
  std::uint64_t d = 14695981039346656037ULL;
  for (const std::string& l : lines) d = fnv1a(d, l);
  return d;
}

}  // namespace golden

TEST(WindowRing, HistoryDepthOneReproducesEpochPairGolden) {
  // Golden digests recorded from the pre-WindowRing EpochPair
  // implementation (PR 3) on this fixed-seed RHHH scenario. depth 1 must
  // reproduce current/previous/emerging byte for byte: same instance
  // seeds, same rotation points, same probe math.
  MonitorConfig cfg;
  cfg.hierarchy = HierarchyKind::kIpv4TwoDimBytes;
  cfg.algorithm = AlgorithmKind::kRhhh;
  cfg.eps = 0.1;
  cfg.delta = 0.1;
  cfg.seed = 7;
  WindowedHhhMonitor mon(cfg, 2000, 1);
  Xoroshiro128 rng(99);
  for (int i = 0; i < 5000; ++i) {
    if (rng.bounded(10) < 4) {
      mon.update(ipv4(10, 0, 0, 1), ipv4(1, 1, 1, 1));
    } else {
      mon.update(Ipv4{static_cast<std::uint32_t>(rng())},
                 Ipv4{static_cast<std::uint32_t>(rng())});
    }
  }
  ASSERT_EQ(mon.epochs_completed(), 2u);
  ASSERT_EQ(mon.packets_in_epoch(), 1000u);
  const Hierarchy& h = mon.hierarchy();
  EXPECT_EQ(golden::digest_set(h, mon.current(0.2)), 0x334133ac58a01e52ULL);
  EXPECT_EQ(golden::digest_set(h, mon.previous(0.2)), 0x7deffb8c49571ca3ULL);
  EXPECT_EQ(golden::digest_emerging(h, mon.emerging(0.2, 2.0)),
            0xd6eb44a633f4db8fULL);
}

TEST(WindowedMonitor, StableTrafficNotEmerging) {
  // The same heavy aggregate in both epochs must not be reported as
  // emerging at any meaningful growth factor.
  WindowedHhhMonitor mon(small_config(), 20000);
  TraceGenerator gen(trace_preset("sanjose14"));
  for (int i = 0; i < 50000; ++i) {
    const PacketRecord p = gen.next();
    mon.update(p.src_ip, p.dst_ip);
  }
  for (const EmergingPrefix& e : mon.emerging(0.05, 2.0)) {
    // Anything reported must genuinely have doubled (or be brand new).
    EXPECT_TRUE(e.previous_share == 0.0 || e.growth() >= 2.0);
  }
}

}  // namespace
}  // namespace rhhh
