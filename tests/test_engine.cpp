// Tests for the sharded multi-core ingest engine (src/engine/): shard
// routing, config validation, the single-shard == single-LatticeHhh
// equivalence the snapshot path promises, multi-shard coverage against
// exact ground truth, epoch accounting, drop/backpressure accounting, and a
// producer/worker thread stress (the W>=4 case CI runs under ASan/UBSan).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/monitor.hpp"
#include "engine/engine.hpp"
#include "engine/shard_router.hpp"
#include "eval/ground_truth.hpp"
#include "net/ipv4.hpp"
#include "trace/trace_gen.hpp"
#include "util/random.hpp"

namespace rhhh {
namespace {

// ---------------------------------------------------------- ShardRouter ----

TEST(ShardRouterTest, KeyHashIsDeterministicAndInRange) {
  ShardRouter a(ShardPolicy::kKeyHash, 4, 42);
  ShardRouter b(ShardPolicy::kKeyHash, 4, 42);
  Xoroshiro128 rng(1);
  for (int i = 0; i < 10000; ++i) {
    const Key128 k{rng(), rng()};
    const std::uint32_t s = a.route(k);
    EXPECT_LT(s, 4u);
    EXPECT_EQ(s, b.route(k)) << "same salt must give the same mapping";
    EXPECT_EQ(s, a.route(k)) << "key-hash routing is stateless";
  }
}

TEST(ShardRouterTest, KeyHashSpreadsAcrossShards) {
  ShardRouter r(ShardPolicy::kKeyHash, 4, 7);
  Xoroshiro128 rng(2);
  std::vector<int> hits(4, 0);
  constexpr int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) ++hits[r.route(Key128{rng(), rng()})];
  for (int s = 0; s < 4; ++s) {
    EXPECT_NEAR(hits[s], kDraws / 4, kDraws / 20) << "shard " << s;
  }
}

TEST(ShardRouterTest, RoundRobinCyclesFromStaggeredStart) {
  ShardRouter r(ShardPolicy::kRoundRobin, 3, 0, /*rr_start=*/2);
  const Key128 k{};
  EXPECT_EQ(r.route(k), 2u);
  EXPECT_EQ(r.route(k), 0u);
  EXPECT_EQ(r.route(k), 1u);
  EXPECT_EQ(r.route(k), 2u);
}

// ------------------------------------------------------------ config ----

TEST(EngineConfigTest, Validation) {
  EngineConfig cfg;
  cfg.workers = 0;
  EXPECT_THROW(HhhEngine{cfg}, std::invalid_argument);
  cfg = {};
  cfg.producers = 0;
  EXPECT_THROW(HhhEngine{cfg}, std::invalid_argument);
  cfg = {};
  cfg.batch = 0;
  EXPECT_THROW(HhhEngine{cfg}, std::invalid_argument);
  cfg = {};
  cfg.monitor.algorithm = AlgorithmKind::kFullAncestry;
  EXPECT_THROW(HhhEngine{cfg}, std::invalid_argument)
      << "trie algorithms are not mergeable and must be rejected";
}

TEST(EngineConfigTest, FactoryBuildsConfiguredTopology) {
  EngineConfig cfg;
  cfg.workers = 3;
  cfg.producers = 2;
  cfg.monitor.algorithm = AlgorithmKind::kTenRhhh;
  const std::unique_ptr<HhhEngine> eng = make_engine(cfg);
  EXPECT_EQ(eng->workers(), 3u);
  EXPECT_EQ(eng->producers(), 2u);
  EXPECT_EQ(eng->epochs(), 0u);
  // kTenRhhh resolved V = 10H on every shard.
  EXPECT_EQ(eng->shard(0).V(), 250u);
  EXPECT_TRUE(eng->shard(0).mergeable_with(eng->shard(2)));
}

// ------------------------------------------------- single-shard == one ----

/// Acceptance criterion: a 1-producer / 1-worker engine must be
/// statistically equivalent to a single LatticeHhh over the same trace --
/// same stream length, same error bounds, same heavy hitters.
TEST(EngineTest, SingleShardMatchesSingleLattice) {
  EngineConfig cfg;
  cfg.workers = 1;
  cfg.producers = 1;
  cfg.monitor.eps = 0.05;
  cfg.monitor.delta = 0.05;
  cfg.monitor.seed = 99;
  HhhEngine eng(cfg);

  const Hierarchy h = make_hierarchy(cfg.monitor.hierarchy);
  const auto [mode, lp] = lattice_config_of(h, cfg.monitor);
  RhhhSpaceSaving reference(h, mode, lp);

  const Key128 hot = Key128::from_pair(ipv4(10, 1, 2, 3), ipv4(99, 5, 6, 7));
  constexpr int kN = 200000;
  std::uint64_t true_hot = 0;
  std::vector<Key128> stream;
  stream.reserve(kN);
  {
    Xoroshiro128 rng(123);
    for (int i = 0; i < kN; ++i) {
      if (rng.bounded(10) < 3) {
        stream.push_back(hot);
        ++true_hot;
      } else {
        stream.push_back(
            Key128::from_pair(rng(), static_cast<std::uint32_t>(rng())));
      }
    }
  }

  eng.start();
  HhhEngine::Producer& prod = eng.producer(0);
  for (const Key128& k : stream) {
    prod.ingest(k);
    reference.update(k);
  }
  prod.flush();
  eng.stop();
  const EngineSnapshot snap = eng.snapshot();

  // Same stream length (lossless ingest, everything flushed and drained).
  ASSERT_EQ(snap.stream_length(), static_cast<std::uint64_t>(kN));
  ASSERT_EQ(reference.stream_length(), static_cast<std::uint64_t>(kN));
  const EngineStats& s = snap.stats();
  EXPECT_EQ(s.offered, static_cast<std::uint64_t>(kN));
  EXPECT_EQ(s.consumed, static_cast<std::uint64_t>(kN));
  EXPECT_EQ(s.dropped, 0u);

  // Same configuration => same error-bound machinery.
  const RhhhSpaceSaving& merged = snap.algorithm();
  EXPECT_EQ(merged.V(), reference.V());
  EXPECT_DOUBLE_EQ(merged.scale(), reference.scale());
  EXPECT_DOUBLE_EQ(merged.correction(), reference.correction());

  // Both estimates of the planted pair obey the same additive bound
  // (Theorem 6.11: eps_a * N + the 2 Z sqrt(NV) sampling slack).
  const Prefix hot_prefix{h.bottom(), hot};
  const double bound =
      reference.eps_a() * kN + reference.correction();
  EXPECT_NEAR(merged.estimate(hot_prefix), static_cast<double>(true_hot), bound);
  EXPECT_NEAR(reference.estimate(hot_prefix), static_cast<double>(true_hot), bound);

  // Both report the planted pair (30% of traffic) at theta = 0.2.
  for (const HhhSet& out : {snap.output(0.2), reference.output(0.2)}) {
    bool found = false;
    for (const HhhCandidate& c : out) {
      if (c.prefix == hot_prefix) found = true;
    }
    EXPECT_TRUE(found);
  }
}

// ------------------------------------------------------- multi-shard ----

/// Sharded ingest + epoch merge must cover every exact HHH of the union
/// stream, whichever routing policy spreads the packets.
class EngineCoverage : public ::testing::TestWithParam<ShardPolicy> {};

TEST_P(EngineCoverage, MergedSnapshotCoversExactHhhs) {
  EngineConfig cfg;
  cfg.workers = 4;
  cfg.producers = 2;
  cfg.policy = GetParam();
  cfg.monitor.eps = 0.02;
  cfg.monitor.delta = 0.05;
  HhhEngine eng(cfg);
  const Hierarchy& h = eng.hierarchy();

  constexpr int kN = 300000;
  std::vector<Key128> stream;
  stream.reserve(kN);
  {
    TraceGenerator gen(trace_preset("sanjose14"));
    for (int i = 0; i < kN; ++i) stream.push_back(h.key_of(gen.next()));
  }
  ExactHhh truth(h);
  for (const Key128& k : stream) truth.add(k);
  const double theta = 0.1;
  const HhhSet exact = truth.compute(theta);
  ASSERT_GT(exact.size(), 0u);

  eng.start();
  // Two producer threads, each ingesting half the stream.
  std::vector<std::thread> threads;
  for (std::uint32_t p = 0; p < 2; ++p) {
    threads.emplace_back([&, p] {
      HhhEngine::Producer& prod = eng.producer(p);
      for (std::size_t i = p; i < stream.size(); i += 2) prod.ingest(stream[i]);
      prod.flush();
    });
  }
  for (std::thread& t : threads) t.join();
  eng.stop();
  const EngineSnapshot snap = eng.snapshot();

  ASSERT_EQ(snap.stream_length(), static_cast<std::uint64_t>(kN));
  const HhhSet out = snap.output(theta);
  for (const HhhCandidate& c : exact) {
    bool covered = out.contains(c.prefix);
    if (!covered) {
      for (const HhhCandidate& o : out) {
        if (h.generalizes(c.prefix, o.prefix) ||
            h.generalizes(o.prefix, c.prefix)) {
          covered = true;
          break;
        }
      }
    }
    EXPECT_TRUE(covered) << to_string(GetParam()) << " missing "
                         << h.format(c.prefix);
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, EngineCoverage,
                         ::testing::Values(ShardPolicy::kKeyHash,
                                           ShardPolicy::kRoundRobin),
                         [](const auto& info) {
                           return info.param == ShardPolicy::kKeyHash
                                      ? "KeyHash"
                                      : "RoundRobin";
                         });

TEST(EngineTest, RoundRobinBalancesWorkAndMergeRestoresTotals) {
  EngineConfig cfg;
  cfg.workers = 4;
  cfg.producers = 1;
  cfg.policy = ShardPolicy::kRoundRobin;
  cfg.monitor.algorithm = AlgorithmKind::kMst;  // deterministic counts
  HhhEngine eng(cfg);
  eng.start();
  HhhEngine::Producer& prod = eng.producer(0);
  const Key128 k = Key128::from_pair(ipv4(1, 2, 3, 4), ipv4(5, 6, 7, 8));
  constexpr std::uint64_t kN = 40000;
  for (std::uint64_t i = 0; i < kN; ++i) prod.ingest(k);
  prod.flush();
  eng.stop();
  const EngineSnapshot snap = eng.snapshot();

  // Round-robin spreads the stream exactly evenly over the 4 shards...
  const EngineStats& s = snap.stats();
  ASSERT_EQ(s.per_worker_consumed.size(), 4u);
  for (std::uint32_t w = 0; w < 4; ++w) {
    EXPECT_EQ(s.per_worker_consumed[w], kN / 4) << "worker " << w;
  }
  // ... and the merged MST lattice recovers the exact network-wide count.
  EXPECT_EQ(snap.stream_length(), kN);
  const Prefix p{eng.hierarchy().bottom(), k};
  EXPECT_DOUBLE_EQ(snap.algorithm().estimate(p), static_cast<double>(kN));
}

// ---------------------------------------------------- epochs and drops ----

TEST(EngineTest, EpochSnapshotsAdvanceAndAccumulate) {
  EngineConfig cfg;
  cfg.workers = 2;
  cfg.producers = 1;
  HhhEngine eng(cfg);
  eng.start();
  HhhEngine::Producer& prod = eng.producer(0);
  Xoroshiro128 rng(7);
  const auto feed = [&](int n) {
    for (int i = 0; i < n; ++i) {
      prod.ingest(Key128::from_pair(rng(), static_cast<std::uint32_t>(rng())));
    }
    prod.flush();
  };

  feed(30000);
  const EngineSnapshot first = eng.snapshot();
  EXPECT_EQ(first.epoch(), 1u);
  EXPECT_EQ(first.stream_length(), 30000u);
  EXPECT_EQ(eng.epochs(), 1u);

  // The engine keeps ingesting across epochs; the next snapshot sees the
  // cumulative stream, not just the delta.
  feed(20000);
  const EngineSnapshot second = eng.snapshot();
  EXPECT_EQ(second.epoch(), 2u);
  EXPECT_EQ(second.stream_length(), 50000u);
  EXPECT_EQ(second.stats().epochs, 2u);
  eng.stop();
}

TEST(EngineTest, DropTailAccountingAndStreamLengthFold) {
  EngineConfig cfg;
  cfg.workers = 2;
  cfg.producers = 1;
  cfg.ring_capacity = 16;
  cfg.batch = 8;
  cfg.overflow = OverflowPolicy::kDropTail;
  HhhEngine eng(cfg);  // never started: rings fill, tails drop
  HhhEngine::Producer& prod = eng.producer(0);
  Xoroshiro128 rng(11);
  constexpr std::uint64_t kN = 10000;
  for (std::uint64_t i = 0; i < kN; ++i) {
    prod.ingest(Key128::from_pair(rng(), static_cast<std::uint32_t>(rng())));
  }
  prod.flush();

  EngineStats s = eng.stats();
  EXPECT_EQ(s.offered, kN);
  EXPECT_GT(s.dropped, 0u);
  EXPECT_EQ(s.consumed, 0u);
  EXPECT_EQ(s.per_ring_dropped.size(), 2u);
  std::uint64_t per_ring_sum = 0;
  for (const std::uint64_t d : s.per_ring_dropped) per_ring_sum += d;
  EXPECT_EQ(per_ring_sum, s.dropped);
  // Everything not dropped is still sitting in the rings.
  EXPECT_LE(kN - s.dropped, 2u * 16u);

  // Drops count toward N (they were offered on the wire), like
  // DistributedMeasurement::advance_stream.
  const EngineSnapshot before = eng.snapshot();
  EXPECT_EQ(before.stream_length(), s.dropped);

  // Starting the workers drains the rings; the final snapshot accounts for
  // every offered packet as consumed or dropped.
  eng.start();
  eng.stop();
  const EngineSnapshot after = eng.snapshot();
  s = after.stats();
  EXPECT_EQ(s.consumed + s.dropped, kN);
  EXPECT_EQ(after.stream_length(), kN);
}

/// Regression: a snapshot taken before start() must not strand workers
/// started afterwards at the already-resumed epoch boundary (the resume
/// mark has to advance with the request even when nobody is parked).
TEST(EngineTest, SnapshotBeforeStartDoesNotWedgeWorkers) {
  EngineConfig cfg;
  cfg.workers = 2;
  cfg.producers = 1;
  HhhEngine eng(cfg);

  const EngineSnapshot empty = eng.snapshot();  // pre-start epoch
  EXPECT_EQ(empty.epoch(), 1u);
  EXPECT_EQ(empty.stream_length(), 0u);

  eng.start();
  HhhEngine::Producer& prod = eng.producer(0);
  Xoroshiro128 rng(17);
  constexpr std::uint64_t kN = 50000;
  for (std::uint64_t i = 0; i < kN; ++i) {
    prod.ingest(Key128::from_pair(rng(), static_cast<std::uint32_t>(rng())));
  }
  prod.flush();
  // Workers must still be consuming (not parked): a live snapshot completes
  // and sees the whole stream.
  const EngineSnapshot live = eng.snapshot();
  EXPECT_EQ(live.epoch(), 2u);
  EXPECT_EQ(live.stream_length(), kN);
  eng.stop();
}

TEST(EngineTest, BlockingOverflowIsLosslessAndCounted) {
  EngineConfig cfg;
  cfg.workers = 1;
  cfg.producers = 1;
  cfg.ring_capacity = 64;  // tiny: force backpressure
  cfg.batch = 32;
  cfg.overflow = OverflowPolicy::kBlock;
  HhhEngine eng(cfg);
  eng.start();
  HhhEngine::Producer& prod = eng.producer(0);
  Xoroshiro128 rng(13);
  constexpr std::uint64_t kN = 100000;
  for (std::uint64_t i = 0; i < kN; ++i) {
    prod.ingest(Key128::from_pair(rng(), static_cast<std::uint32_t>(rng())));
  }
  prod.flush();
  eng.stop();
  const EngineStats s = eng.stats();
  EXPECT_EQ(s.offered, kN);
  EXPECT_EQ(s.consumed, kN) << "kBlock must not lose records";
  EXPECT_EQ(s.dropped, 0u);
}

// ---------------------------------------------------- windowed engine ----

TEST(WindowedEngine, ManualRotationSeparatesWindows) {
  EngineConfig cfg;
  cfg.workers = 2;
  cfg.producers = 1;
  cfg.monitor.algorithm = AlgorithmKind::kMst;  // deterministic counts
  HhhEngine eng(cfg);
  eng.start();
  HhhEngine::Producer& prod = eng.producer(0);
  const Key128 a = Key128::from_pair(ipv4(10, 0, 0, 1), ipv4(1, 1, 1, 1));
  const Key128 b = Key128::from_pair(ipv4(20, 0, 0, 2), ipv4(2, 2, 2, 2));

  // Window 0: traffic to A only; seal it on the shared boundary.
  for (int i = 0; i < 30000; ++i) prod.ingest(a);
  prod.flush();
  eng.rotate_epoch();
  EXPECT_EQ(eng.window_epochs(), 1u);

  // Window 1 (live): traffic to B only.
  for (int i = 0; i < 20000; ++i) prod.ingest(b);
  prod.flush();
  eng.stop();

  const WindowedEngineSnapshot snap = eng.window_snapshot();
  ASSERT_TRUE(snap.has_previous());
  EXPECT_EQ(snap.window_epochs(), 1u);
  EXPECT_EQ(snap.previous_length(), 30000u);
  EXPECT_EQ(snap.current_length(), 20000u);

  const Hierarchy& h = eng.hierarchy();
  const Prefix pa{h.bottom(), a};
  const Prefix pb{h.bottom(), b};
  EXPECT_TRUE(snap.previous(0.5).contains(pa));
  EXPECT_FALSE(snap.previous(0.5).contains(pb));
  EXPECT_TRUE(snap.current(0.5).contains(pb));
  EXPECT_FALSE(snap.current(0.5).contains(pa));

  // B is brand new this window: infinite growth. A must not be reported.
  bool found_b = false;
  for (const EmergingPrefix& e : snap.emerging(0.5, 2.0)) {
    EXPECT_FALSE(e.now.prefix == pa);
    if (e.now.prefix == pb) {
      found_b = true;
      EXPECT_DOUBLE_EQ(e.previous_share, 0.0);
      EXPECT_DOUBLE_EQ(e.share_now, 1.0);
      EXPECT_TRUE(std::isinf(e.growth()));
    }
  }
  EXPECT_TRUE(found_b);

  // The merged MST lattices recover the exact per-window counts.
  EXPECT_DOUBLE_EQ(snap.previous_algorithm().estimate(pa), 30000.0);
  EXPECT_DOUBLE_EQ(snap.current_algorithm().estimate(pb), 20000.0);
}

TEST(WindowedEngine, NoPreviousWindowBeforeFirstRotation) {
  EngineConfig cfg;
  cfg.workers = 2;
  cfg.producers = 1;
  HhhEngine eng(cfg);  // never started, never rotated
  const WindowedEngineSnapshot snap = eng.window_snapshot();
  EXPECT_FALSE(snap.has_previous());
  EXPECT_EQ(snap.window_epochs(), 0u);
  EXPECT_EQ(snap.previous_length(), 0u);
  EXPECT_TRUE(snap.previous(0.01).empty());
  EXPECT_TRUE(snap.emerging(0.5, 2.0).empty()) << "no traffic, nothing emerges";
}

// ------------------------------------------- K-deep trend snapshots ----

TEST(TrendEngine, HistoryDepthValidation) {
  EngineConfig cfg;
  cfg.history_depth = 0;
  EXPECT_THROW(HhhEngine{cfg}, std::invalid_argument);
  cfg.history_depth = 1;
  HhhEngine eng(cfg);
  EXPECT_EQ(eng.config().history_depth, 1u);
}

TEST(TrendEngine, TrendBeforeAnyRotationIsLiveOnly) {
  EngineConfig cfg;
  cfg.workers = 2;
  cfg.producers = 1;
  cfg.history_depth = 4;
  HhhEngine eng(cfg);  // never started, never rotated
  const TrendSnapshot snap = eng.trend_snapshot();
  EXPECT_EQ(snap.sealed_windows(), 0u);
  EXPECT_EQ(snap.window_epochs(), 0u);
  const Prefix root{eng.hierarchy().top(), Key128{}};
  EXPECT_EQ(snap.trend(root).size(), 1u);
  EXPECT_TRUE(snap.emerging(0.5, 2.0).empty());
  EXPECT_TRUE(snap.emerging_sustained(0.5, 2.0, 2).empty());
}

TEST(TrendEngine, IndexAlignedMultiShardTrendMerges) {
  // Three shards, depth 3, deterministic MST: every per-epoch share below
  // is exact. Keys hash to different shards, so each sealed epoch's
  // network-wide lattice only reconstructs correctly if every shard
  // contributes its ring slot of the SAME age (index alignment); mixing
  // ages would bleed mass across epochs and break the exact counts.
  EngineConfig cfg;
  cfg.workers = 3;
  cfg.producers = 1;
  cfg.history_depth = 3;
  cfg.monitor.algorithm = AlgorithmKind::kMst;
  HhhEngine eng(cfg);
  eng.start();
  HhhEngine::Producer& prod = eng.producer(0);
  const Key128 a = Key128::from_pair(ipv4(10, 0, 0, 1), ipv4(1, 1, 1, 1));
  const Key128 b = Key128::from_pair(ipv4(20, 0, 0, 2), ipv4(2, 2, 2, 2));
  const Key128 c = Key128::from_pair(ipv4(30, 0, 0, 3), ipv4(3, 3, 3, 3));

  // Epoch 1: A=12000 B=6000. Epoch 2: B=9000. Epoch 3: A=3000 C=3000.
  // Live: A=8000.
  for (int i = 0; i < 12000; ++i) prod.ingest(a);
  for (int i = 0; i < 6000; ++i) prod.ingest(b);
  prod.flush();
  eng.rotate_epoch();
  for (int i = 0; i < 9000; ++i) prod.ingest(b);
  prod.flush();
  eng.rotate_epoch();
  for (int i = 0; i < 3000; ++i) prod.ingest(a);
  for (int i = 0; i < 3000; ++i) prod.ingest(c);
  prod.flush();
  eng.rotate_epoch();
  for (int i = 0; i < 8000; ++i) prod.ingest(a);
  prod.flush();
  eng.stop();

  const TrendSnapshot snap = eng.trend_snapshot();
  ASSERT_EQ(snap.sealed_windows(), 3u);
  EXPECT_EQ(snap.window_epochs(), 3u);
  // Ages are newest-first; trend() is oldest-first with live last.
  EXPECT_EQ(snap.window_length(2), 18000u);
  EXPECT_EQ(snap.window_length(1), 9000u);
  EXPECT_EQ(snap.window_length(0), 6000u);
  EXPECT_EQ(snap.current_length(), 8000u);

  const Hierarchy& h = eng.hierarchy();
  const Prefix pa{h.bottom(), a};
  const Prefix pb{h.bottom(), b};
  const auto ta = snap.trend(pa);
  ASSERT_EQ(ta.size(), 4u);
  EXPECT_DOUBLE_EQ(ta[0].share, 12000.0 / 18000.0);
  EXPECT_DOUBLE_EQ(ta[0].estimate, 12000.0);
  EXPECT_DOUBLE_EQ(ta[1].share, 0.0);
  EXPECT_DOUBLE_EQ(ta[2].share, 0.5);
  EXPECT_DOUBLE_EQ(ta[3].share, 1.0);
  const auto tb = snap.trend(pb);
  EXPECT_DOUBLE_EQ(tb[0].share, 6000.0 / 18000.0);
  EXPECT_DOUBLE_EQ(tb[1].share, 1.0);
  EXPECT_DOUBLE_EQ(tb[2].share, 0.0);
  EXPECT_DOUBLE_EQ(tb[3].share, 0.0);

  // The per-age window sets answer like a dedicated two-window snapshot.
  EXPECT_TRUE(snap.window(0, 0.4).contains(pa));
  EXPECT_TRUE(snap.window(1, 0.9).contains(pb));
  EXPECT_FALSE(snap.window(1, 0.1).contains(pa));

  // Cross-check against per-shard ring slots: summing every shard's age-i
  // lattice length must equal the merged window length (index alignment).
  for (std::size_t age = 0; age < 3; ++age) {
    std::uint64_t sum = 0;
    for (std::uint32_t w = 0; w < eng.workers(); ++w) {
      sum += eng.shard_sealed(w, age).stream_length();
    }
    EXPECT_EQ(sum, snap.window_length(age)) << "age " << age;
  }
}

TEST(TrendEngine, RingEvictsBeyondDepth) {
  EngineConfig cfg;
  cfg.workers = 2;
  cfg.producers = 1;
  cfg.history_depth = 2;
  cfg.monitor.algorithm = AlgorithmKind::kMst;
  HhhEngine eng(cfg);
  eng.start();
  HhhEngine::Producer& prod = eng.producer(0);
  for (int e = 0; e < 4; ++e) {
    for (int i = 0; i < 1000 * (e + 1); ++i) {
      prod.ingest(Key128::from_pair(ipv4(10, 0, 0, std::uint8_t(e)),
                                    ipv4(1, 1, 1, 1)));
    }
    prod.flush();
    eng.rotate_epoch();
  }
  eng.stop();
  const TrendSnapshot snap = eng.trend_snapshot();
  EXPECT_EQ(snap.window_epochs(), 4u);
  ASSERT_EQ(snap.sealed_windows(), 2u);  // depth caps retention
  EXPECT_EQ(snap.window_length(0), 4000u);  // newest sealed epoch
  EXPECT_EQ(snap.window_length(1), 3000u);
  EXPECT_EQ(snap.current_length(), 0u);
}

TEST(TrendEngine, DropsAttributedPerWindowAge) {
  EngineConfig cfg;
  cfg.workers = 2;
  cfg.producers = 1;
  cfg.ring_capacity = 16;
  cfg.batch = 8;
  cfg.overflow = OverflowPolicy::kDropTail;
  cfg.history_depth = 3;
  HhhEngine eng(cfg);  // never started: rings fill, tails drop
  HhhEngine::Producer& prod = eng.producer(0);
  Xoroshiro128 rng(23);
  auto blast = [&](int n) {
    for (int i = 0; i < n; ++i) {
      prod.ingest(Key128::from_pair(rng(), static_cast<std::uint32_t>(rng())));
    }
    prod.flush();
  };
  blast(5000);
  const std::uint64_t drops_w0 = eng.stats().dropped;
  ASSERT_GT(drops_w0, 0u);
  eng.rotate_epoch();
  blast(3000);
  const std::uint64_t drops_w1 = eng.stats().dropped - drops_w0;
  eng.rotate_epoch();
  blast(2000);

  const TrendSnapshot snap = eng.trend_snapshot();
  ASSERT_EQ(snap.sealed_windows(), 2u);
  EXPECT_EQ(snap.window_drops(1), drops_w0);
  EXPECT_EQ(snap.window_drops(0), drops_w1);
  EXPECT_EQ(snap.current_drops(), snap.stats().dropped - drops_w0 - drops_w1);
  // Nothing consumed yet: every window's N is exactly its own drops.
  EXPECT_EQ(snap.window_length(1), drops_w0);
  EXPECT_EQ(snap.window_length(0), drops_w1);
  EXPECT_EQ(snap.current_length(), snap.current_drops());
  // The two-window view must agree with the trend view's newest age.
  const WindowedEngineSnapshot two = eng.window_snapshot();
  EXPECT_EQ(two.previous_drops(), snap.window_drops(0));
  EXPECT_EQ(two.previous_length(), snap.window_length(0));
}

TEST(TrendEngine, SustainedRampAlarmsAtEngineScale) {
  // Two quiet epochs, then a ramp that persists for two more epochs into
  // the live window: emerging_sustained on the engine's trend snapshot
  // must flag the attack aggregate, mirroring the monitor semantics.
  EngineConfig cfg;
  cfg.workers = 4;
  cfg.producers = 1;
  cfg.history_depth = 4;
  cfg.monitor.algorithm = AlgorithmKind::kMst;
  HhhEngine eng(cfg);
  eng.start();
  HhhEngine::Producer& prod = eng.producer(0);
  Xoroshiro128 rng(7);
  const Ipv4 attack_net = ipv4(66, 66, 0, 0);
  const Ipv4 victim = ipv4(9, 9, 9, 9);
  auto run_epoch = [&](int attack_pct, int n) {
    for (int i = 0; i < n; ++i) {
      if (static_cast<int>(rng.bounded(100)) < attack_pct) {
        prod.ingest(Key128::from_pair(attack_net | rng.bounded(1 << 16), victim));
      } else {
        prod.ingest(Key128::from_pair(rng(), static_cast<std::uint32_t>(rng())));
      }
    }
    prod.flush();
    eng.rotate_epoch();
  };
  run_epoch(2, 20000);
  run_epoch(2, 20000);
  run_epoch(40, 20000);
  run_epoch(45, 20000);
  for (int i = 0; i < 10000; ++i) {
    if (static_cast<int>(rng.bounded(100)) < 50) {
      prod.ingest(Key128::from_pair(attack_net | rng.bounded(1 << 16), victim));
    } else {
      prod.ingest(Key128::from_pair(rng(), static_cast<std::uint32_t>(rng())));
    }
  }
  prod.flush();
  eng.stop();

  const TrendSnapshot snap = eng.trend_snapshot();
  ASSERT_EQ(snap.sealed_windows(), 4u);
  const Hierarchy& h = eng.hierarchy();
  const Prefix attack_bottom{h.bottom(),
                             Key128::from_pair(attack_net | 0x0102u, victim)};
  bool found = false;
  for (const SustainedPrefix& s : snap.emerging_sustained(0.2, 3.0, 3)) {
    if (h.generalizes(s.now.prefix, attack_bottom) && s.share_now > 0.3) {
      found = true;
      EXPECT_GE(s.min_run_share, 3.0 * s.baseline_share);
    }
  }
  EXPECT_TRUE(found) << "sustained ramp not flagged";
}

namespace golden {

std::uint64_t fnv1a(std::uint64_t h, const std::string& s) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  h ^= static_cast<unsigned char>('\n');
  h *= 1099511628211ULL;
  return h;
}

std::uint64_t digest_set(const Hierarchy& h, const HhhSet& s) {
  std::vector<std::string> lines;
  for (const HhhCandidate& c : s) {
    char buf[160];
    std::snprintf(buf, sizeof buf, "%s f_est=%.6f f_lo=%.6f f_hi=%.6f c_hat=%.6f",
                  h.format(c.prefix).c_str(), c.f_est, c.f_lo, c.f_hi, c.c_hat);
    lines.emplace_back(buf);
  }
  std::sort(lines.begin(), lines.end());
  std::uint64_t d = 14695981039346656037ULL;
  for (const std::string& l : lines) d = fnv1a(d, l);
  return d;
}

std::uint64_t digest_emerging(const Hierarchy& h,
                              const std::vector<EmergingPrefix>& es) {
  std::vector<std::string> lines;
  for (const EmergingPrefix& e : es) {
    char buf[160];
    std::snprintf(buf, sizeof buf, "%s prev=%.9f now=%.9f",
                  h.format(e.now.prefix).c_str(), e.previous_share, e.share_now);
    lines.emplace_back(buf);
  }
  std::sort(lines.begin(), lines.end());
  std::uint64_t d = 14695981039346656037ULL;
  for (const std::string& l : lines) d = fnv1a(d, l);
  return d;
}

}  // namespace golden

TEST(TrendEngine, HistoryDepthOneReproducesEpochPairGolden) {
  // Golden digests recorded from the pre-WindowRing EpochPair engine
  // (PR 3) on this fixed-seed scenario: the default depth-1 ring must
  // reproduce the two-window snapshot byte for byte (same shard lattice
  // salts, same rotation behavior, same drop folding).
  EngineConfig ecfg;
  ecfg.monitor.hierarchy = HierarchyKind::kIpv4TwoDimBytes;
  ecfg.monitor.algorithm = AlgorithmKind::kRhhh;
  ecfg.monitor.eps = 0.1;
  ecfg.monitor.delta = 0.1;
  ecfg.monitor.seed = 11;
  ecfg.workers = 3;
  ecfg.producers = 1;
  HhhEngine eng(ecfg);
  eng.start();
  Xoroshiro128 erng(123);
  HhhEngine::Producer& prod = eng.producer(0);
  for (int i = 0; i < 30000; ++i) {
    if (erng.bounded(10) < 3) {
      prod.ingest(Key128::from_pair(ipv4(20, 0, 0, 2), ipv4(2, 2, 2, 2)));
    } else {
      prod.ingest(Key128::from_pair(static_cast<std::uint32_t>(erng()),
                                    static_cast<std::uint32_t>(erng())));
    }
  }
  prod.flush();
  eng.stop();
  eng.rotate_epoch();
  eng.start();
  for (int i = 0; i < 10000; ++i) {
    if (erng.bounded(10) < 5) {
      prod.ingest(Key128::from_pair(ipv4(30, 0, 0, 3), ipv4(3, 3, 3, 3)));
    } else {
      prod.ingest(Key128::from_pair(static_cast<std::uint32_t>(erng()),
                                    static_cast<std::uint32_t>(erng())));
    }
  }
  prod.flush();
  eng.stop();
  const WindowedEngineSnapshot snap = eng.window_snapshot();
  ASSERT_EQ(snap.window_epochs(), 1u);
  ASSERT_EQ(snap.current_length(), 10000u);
  ASSERT_EQ(snap.previous_length(), 30000u);
  const Hierarchy& h = eng.hierarchy();
  EXPECT_EQ(golden::digest_set(h, snap.current(0.2)), 0xeb2d4bc442596af9ULL);
  EXPECT_EQ(golden::digest_set(h, snap.previous(0.2)), 0x63988573466a14bdULL);
  EXPECT_EQ(golden::digest_emerging(h, snap.emerging(0.2, 2.0)),
            0x4d1e9ccdc44b0d45ULL);
}

/// Acceptance criterion: a planted mid-stream burst must be flagged by
/// emerging() on a >= 4-worker engine, end to end through producers, rings,
/// shard rotation and the two-window merge -- with fixed seeds throughout.
TEST(WindowedEngine, DetectsPlantedBurstEndToEnd) {
  EngineConfig cfg;
  cfg.workers = 4;
  cfg.producers = 2;
  cfg.monitor.eps = 0.05;
  cfg.monitor.delta = 0.05;
  cfg.monitor.seed = 42;
  HhhEngine eng(cfg);
  const Hierarchy& h = eng.hierarchy();
  eng.start();

  const Ipv4 attack_net = ipv4(66, 66, 0, 0);
  const Ipv4 victim = ipv4(9, 9, 9, 9);
  auto ingest_phase = [&](double attack_share, std::uint64_t per_producer) {
    std::vector<std::thread> threads;
    for (std::uint32_t p = 0; p < 2; ++p) {
      threads.emplace_back([&, p] {
        HhhEngine::Producer& prod = eng.producer(p);
        TraceGenerator gen(trace_preset(p == 0 ? "chicago16" : "sanjose14"));
        Xoroshiro128 rng(777 + p);
        for (std::uint64_t i = 0; i < per_producer; ++i) {
          if (rng.uniform01() < attack_share) {
            prod.ingest(Key128::from_pair(attack_net | rng.bounded(1 << 16), victim));
          } else {
            prod.ingest(h.key_of(gen.next()));
          }
        }
        prod.flush();
      });
    }
    for (std::thread& t : threads) t.join();
  };

  ingest_phase(0.0, 60000);  // quiet window
  eng.rotate_epoch();
  ingest_phase(0.30, 40000);  // the burst: ~30% of the live window
  eng.stop();

  const WindowedEngineSnapshot snap = eng.window_snapshot();
  ASSERT_TRUE(snap.has_previous());
  EXPECT_EQ(snap.previous_length(), 120000u);
  EXPECT_EQ(snap.current_length(), 80000u);
  EXPECT_EQ(snap.stats().dropped, 0u);

  // Some aggregate generalizing the attack traffic must emerge with a big
  // share and >= 3x growth; nothing in the quiet background should.
  const Prefix attack_bottom{h.bottom(),
                             Key128::from_pair(attack_net | 0x0102u, victim)};
  bool detected = false;
  for (const EmergingPrefix& e : snap.emerging(0.1, 3.0)) {
    if (e.share_now > 0.15 && e.growth() >= 3.0 &&
        h.generalizes(e.now.prefix, attack_bottom)) {
      detected = true;
    }
  }
  EXPECT_TRUE(detected) << "planted burst not flagged by emerging()";
}

TEST(WindowedEngine, DropsAttributedToTheirWindow) {
  EngineConfig cfg;
  cfg.workers = 2;
  cfg.producers = 1;
  cfg.ring_capacity = 16;
  cfg.batch = 8;
  cfg.overflow = OverflowPolicy::kDropTail;
  HhhEngine eng(cfg);  // never started: rings fill, tails drop
  HhhEngine::Producer& prod = eng.producer(0);
  Xoroshiro128 rng(23);
  for (int i = 0; i < 5000; ++i) {
    prod.ingest(Key128::from_pair(rng(), static_cast<std::uint32_t>(rng())));
  }
  prod.flush();
  const std::uint64_t drops_window0 = eng.stats().dropped;
  ASSERT_GT(drops_window0, 0u);

  eng.rotate_epoch();  // seal window 0 (and its drops) pre-start

  // Window 1: the rings are still full, so everything new is dropped too.
  for (int i = 0; i < 3000; ++i) {
    prod.ingest(Key128::from_pair(rng(), static_cast<std::uint32_t>(rng())));
  }
  prod.flush();

  const WindowedEngineSnapshot snap = eng.window_snapshot();
  ASSERT_TRUE(snap.has_previous());
  EXPECT_EQ(snap.previous_drops(), drops_window0);
  EXPECT_EQ(snap.current_drops(), snap.stats().dropped - drops_window0);
  // Nothing was consumed yet: each window's N is exactly its drops.
  EXPECT_EQ(snap.previous_length(), drops_window0);
  EXPECT_EQ(snap.current_length(), snap.current_drops());

  // Draining the rings books the backlog into the *current* window.
  eng.start();
  eng.stop();
  const WindowedEngineSnapshot after = eng.window_snapshot();
  const EngineStats& s = after.stats();
  EXPECT_EQ(s.consumed + s.dropped, 8000u);
  EXPECT_EQ(after.current_length(), s.consumed + after.current_drops());
  EXPECT_EQ(after.previous_length(), drops_window0);
}

TEST(WindowedEngine, PacketClockRotatesAutomatically) {
  EngineConfig cfg;
  cfg.workers = 2;
  cfg.producers = 1;
  cfg.epoch_packets = 10000;
  HhhEngine eng(cfg);
  EXPECT_TRUE(eng.windowed());
  eng.start();
  HhhEngine::Producer& prod = eng.producer(0);
  Xoroshiro128 rng(29);
  for (int i = 0; i < 100000; ++i) {
    prod.ingest(Key128::from_pair(rng(), static_cast<std::uint32_t>(rng())));
  }
  prod.flush();
  // The coordinator clock owes at least one rotation once 100k >> 10k
  // records are through; give it (generous) wall time to notice.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (eng.window_epochs() == 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  eng.stop();
  const std::uint64_t rotations = eng.window_epochs();
  EXPECT_GE(rotations, 1u);
  EXPECT_LE(rotations, 10u) << "clock must meter ~epoch_packets per window";
  const WindowedEngineSnapshot snap = eng.window_snapshot();
  EXPECT_TRUE(snap.has_previous());
  EXPECT_EQ(snap.stats().consumed, 100000u);
  EXPECT_EQ(snap.stats().window_epochs, rotations);
}

// The packet budget meters CONSUMED records only (the EngineConfig
// contract): drop-tail drops fold into the window's N but must never spend
// the budget. Saturate a tiny ring while the engine is stopped -- nearly
// everything drops, almost nothing is consumed -- then run briefly. A
// combined consumed+dropped basis would see ~5 budgets spent and rotate;
// the consumed-only basis owes zero rotations.
TEST(WindowedEngine, PacketBudgetMetersConsumedOnly) {
  constexpr std::uint64_t kEpoch = 10'000;
  EngineConfig cfg;
  cfg.workers = 1;
  cfg.producers = 1;
  cfg.ring_capacity = 64;
  cfg.batch = 16;
  cfg.overflow = OverflowPolicy::kDropTail;
  cfg.epoch_packets = kEpoch;
  HhhEngine eng(cfg);

  // Phase 1: flood the stopped engine. The ring holds 64 records; the rest
  // is counted drop-tail loss attributed to the live window.
  HhhEngine::Producer& prod = eng.producer(0);
  Xoroshiro128 rng(31);
  for (std::uint64_t i = 0; i < 5 * kEpoch; ++i) {
    prod.ingest(Key128::from_pair(rng(), static_cast<std::uint32_t>(rng())));
  }
  prod.flush();
  ASSERT_GT(eng.stats().dropped, 4 * kEpoch) << "ring did not saturate";

  // Phase 2: run long enough for the fallback clock to poll many times and
  // for the worker to drain the 64-record backlog. Consumed stays far
  // below one budget, so no window may close.
  eng.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  eng.stop();

  const EngineStats s = eng.stats();
  EXPECT_LT(s.consumed, kEpoch);
  EXPECT_GT(s.dropped, 4 * kEpoch);
  EXPECT_EQ(s.window_epochs, 0u)
      << "drops spent the packet budget: basis is not consumed-only";

  // Phase 3: live traffic through the same saturated ring. Whatever drops
  // along the way, rotations may never outpace consumed records.
  eng.start();
  for (std::uint64_t i = 0; i < 3 * kEpoch; ++i) {
    prod.ingest(Key128::from_pair(rng(), static_cast<std::uint32_t>(rng())));
  }
  prod.flush();
  eng.stop();
  const EngineStats s2 = eng.stats();
  EXPECT_GE(s2.consumed, kEpoch * s2.window_epochs);
  EXPECT_EQ(s2.consumed + s2.dropped, s2.offered);
}

// cooperative_rotation = false is the escape hatch: the coordinator clock's
// 200us polling timeslice must still drive packet-budget rotations on its
// own (workers meter the budget but never claim it).
TEST(WindowedEngine, FallbackClockRotatesWithCooperativeOff) {
  EngineConfig cfg;
  cfg.workers = 2;
  cfg.producers = 1;
  cfg.epoch_packets = 10000;
  cfg.cooperative_rotation = false;
  HhhEngine eng(cfg);
  eng.start();
  HhhEngine::Producer& prod = eng.producer(0);
  Xoroshiro128 rng(37);
  for (int i = 0; i < 100000; ++i) {
    prod.ingest(Key128::from_pair(rng(), static_cast<std::uint32_t>(rng())));
  }
  prod.flush();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (eng.window_epochs() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  eng.stop();
  const EngineStats s = eng.stats();
  EXPECT_GE(s.window_epochs, 1u);
  EXPECT_LE(s.window_epochs, 10u);
  EXPECT_EQ(s.budget_rotations, s.window_epochs)
      << "clock-driven budget rotations must feed the drift telemetry";
  EXPECT_EQ(s.consumed, 100000u);
}

TEST(WindowedEngine, WallClockRotatesAutomatically) {
  EngineConfig cfg;
  cfg.workers = 1;
  cfg.producers = 1;
  cfg.epoch_millis = 5;
  HhhEngine eng(cfg);
  eng.start();
  HhhEngine::Producer& prod = eng.producer(0);
  prod.ingest(Key128::from_pair(ipv4(1, 2, 3, 4), ipv4(5, 6, 7, 8)));
  prod.flush();
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (eng.window_epochs() < 2 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  eng.stop();
  EXPECT_GE(eng.window_epochs(), 2u);
}

// ------------------------------------------------------------- stress ----

/// The ASan/UBSan CI tier runs this: 4 producer threads x 4 workers under
/// concurrent mid-stream snapshots. Checks lossless accounting end to end.
TEST(EngineStress, FourProducersFourWorkersWithConcurrentSnapshots) {
  EngineConfig cfg;
  cfg.workers = 4;
  cfg.producers = 4;
  cfg.ring_capacity = 1 << 12;
  cfg.monitor.eps = 0.05;
  cfg.monitor.delta = 0.05;
  HhhEngine eng(cfg);
  eng.start();

  const Key128 hot = Key128::from_pair(ipv4(10, 1, 2, 3), ipv4(99, 5, 6, 7));
  constexpr std::uint64_t kPerProducer = 50000;
  std::vector<std::thread> threads;
  for (std::uint32_t p = 0; p < 4; ++p) {
    threads.emplace_back([&, p] {
      HhhEngine::Producer& prod = eng.producer(p);
      Xoroshiro128 rng(1000 + p);
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        if (rng.bounded(10) < 3) {
          prod.ingest(hot);
        } else {
          prod.ingest(
              Key128::from_pair(rng(), static_cast<std::uint32_t>(rng())));
        }
      }
      prod.flush();
    });
  }
  // Two snapshots taken while producers are firing: must quiesce and resume
  // without losing records or deadlocking.
  for (int i = 0; i < 2; ++i) {
    const EngineSnapshot mid = eng.snapshot();
    EXPECT_EQ(mid.epoch(), static_cast<std::uint64_t>(i + 1));
  }
  for (std::thread& t : threads) t.join();
  eng.stop();

  const EngineSnapshot final_snap = eng.snapshot();
  EXPECT_EQ(final_snap.stream_length(), 4 * kPerProducer);
  const EngineStats& s = final_snap.stats();
  EXPECT_EQ(s.offered, 4 * kPerProducer);
  EXPECT_EQ(s.consumed, 4 * kPerProducer);
  EXPECT_EQ(s.dropped, 0u);
  EXPECT_EQ(s.epochs, 3u);

  bool found = false;
  const Prefix hot_prefix{eng.hierarchy().bottom(), hot};
  for (const HhhCandidate& c : final_snap.output(0.2)) {
    if (c.prefix == hot_prefix) found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace rhhh
