// Trend conformance: the acceptance criterion for the K-deep WindowRing.
// Both the single-threaded WindowedHhhMonitor and the sharded HhhEngine
// answer a depth-K (K >= 4) trend query whose per-epoch estimates match a
// single-threaded exact replay of the same stream within the Theorem 6.11
// error bound (eps_a * N_w + 2 Z sqrt(N_w * V), per window), with fixed
// seeds throughout -- a normal ctest, no flakiness budget.
//
// The stream is a DDoS-style ramp: heavy-tailed background traffic plus a
// scattered-source flood toward one victim whose share grows epoch over
// epoch, exactly the k-epoch growth curve trend() exists to expose.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/windowed.hpp"
#include "engine/engine.hpp"
#include "net/ipv4.hpp"
#include "stats/normal.hpp"
#include "trace/trace_gen.hpp"
#include "util/random.hpp"

namespace rhhh {
namespace {

constexpr std::uint64_t kEpoch = 150000;  ///< packets per window
constexpr int kFullEpochs = 6;            ///< completed windows in the stream
constexpr std::uint64_t kTail = kEpoch / 2;  ///< partial live window
constexpr double kEps = 0.05;
constexpr double kDelta = 0.05;

/// Attack share per epoch index (the planted ramp), in units of 1/1000.
constexpr std::uint32_t kRampPerMille[kFullEpochs + 1] = {0,   50,  100, 200,
                                                          300, 400, 450};

struct RampStream {
  std::vector<Key128> keys;                ///< the whole stream, in order
  std::vector<std::uint64_t> exact_attack; ///< per-epoch exact attack mass
  Prefix attack16;      ///< the (66.66/16 -> victim) aggregate under test
  Prefix attack_bottom; ///< one fully-specified flow inside it
  std::uint64_t n() const { return keys.size(); }
};

/// One deterministic stream shared by the monitor and the engine runs, with
/// the exact per-epoch mass of the attack aggregate counted alongside.
RampStream make_ramp_stream(const Hierarchy& h) {
  RampStream s;
  const Ipv4 attack_net = ipv4(66, 66, 0, 0);
  const Ipv4 victim = ipv4(203, 0, 113, 9);
  const std::uint32_t a16 = h.node_index(2, 0);  // drop 2 src bytes, keep dst
  s.attack16 = Prefix{a16, h.mask_key(a16, Key128::from_pair(attack_net, victim))};
  s.attack_bottom =
      Prefix{h.bottom(), Key128::from_pair(attack_net | 0x0102u, victim)};

  TraceConfig tc = trace_preset("chicago16");
  tc.seed = 40;
  TraceGenerator gen(tc);
  Xoroshiro128 rng(41);
  const std::uint64_t total = kEpoch * kFullEpochs + kTail;
  s.keys.reserve(total);
  s.exact_attack.assign(kFullEpochs + 1, 0);
  for (std::uint64_t i = 0; i < total; ++i) {
    const std::size_t e = static_cast<std::size_t>(i / kEpoch);
    Key128 k;
    if (rng.bounded(1000) < kRampPerMille[e]) {
      k = Key128::from_pair(attack_net | rng.bounded(1 << 16), victim);
    } else {
      k = h.key_of(gen.next());
    }
    // Exact per-epoch mass of the probe aggregate (background flows can
    // land inside 66.66/16 -> victim too, so count by mask, not by branch).
    if (h.mask_key(a16, k) == s.attack16.key) ++s.exact_attack[e];
    s.keys.push_back(k);
  }
  return s;
}

/// Theorem 6.11 additive bound for one window of length n_w:
/// eps_a * N + 2 Z_{1 - delta/8} sqrt(N * V).
double window_bound(const RhhhSpaceSaving& ref, std::uint64_t n_w) {
  return ref.eps_a() * static_cast<double>(n_w) +
         2.0 * z_value(1.0 - kDelta / 8.0) *
             std::sqrt(static_cast<double>(n_w) * ref.V());
}

TEST(TrendConformance, MonitorDepthSixSharesMatchExactReplay) {
  MonitorConfig cfg;
  cfg.hierarchy = HierarchyKind::kIpv4TwoDimBytes;
  cfg.algorithm = AlgorithmKind::kRhhh;
  cfg.eps = kEps;
  cfg.delta = kDelta;
  cfg.seed = 21;
  WindowedHhhMonitor mon(cfg, kEpoch, /*history_depth=*/6);
  ASSERT_TRUE(mon.converged_epoch()) << "epoch must exceed psi for the bound";

  const Hierarchy& h = mon.hierarchy();
  const RampStream s = make_ramp_stream(h);
  for (const Key128& k : s.keys) mon.update(k);
  ASSERT_EQ(mon.epochs_completed(), static_cast<std::uint64_t>(kFullEpochs));
  ASSERT_EQ(mon.sealed_windows(), 6u);
  ASSERT_EQ(mon.packets_in_epoch(), kTail);

  // Reference lattice for the bound's eps_a / V (same configuration).
  const auto [mode, lp] = lattice_config_of(h, cfg);
  const RhhhSpaceSaving ref(h, mode, lp);

  const auto t = mon.trend(s.attack16);
  ASSERT_EQ(t.size(), 7u);  // 6 sealed + live, oldest first
  std::size_t violations = 0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    const std::uint64_t n_w = i + 1 < t.size() ? kEpoch : kTail;
    ASSERT_EQ(t[i].stream_length, n_w) << "window " << i;
    const double exact = static_cast<double>(s.exact_attack[i]);
    const double err = std::abs(t[i].estimate - exact);
    if (err > window_bound(ref, n_w)) ++violations;
    // Share is the estimate normalized by this window's own length.
    EXPECT_NEAR(t[i].share, std::min(t[i].estimate / n_w, 1.0), 1e-12);
  }
  // Each window's bound holds w.p. >= 1 - delta: allow one unlucky window.
  EXPECT_LE(violations, 1u) << violations << "/7 windows exceed the bound";

  // The curve exposes the ramp: the newest sealed window's share clearly
  // dominates the quiet first epoch's.
  EXPECT_GT(t[5].share, t[0].share + 0.2);
}

TEST(TrendConformance, EngineDepthFourSharesMatchExactReplay) {
  EngineConfig cfg;
  cfg.monitor.hierarchy = HierarchyKind::kIpv4TwoDimBytes;
  cfg.monitor.algorithm = AlgorithmKind::kRhhh;
  cfg.monitor.eps = kEps;
  cfg.monitor.delta = kDelta;
  cfg.monitor.seed = 22;
  cfg.workers = 4;
  cfg.producers = 1;
  cfg.history_depth = 4;
  HhhEngine eng(cfg);
  const Hierarchy& h = eng.hierarchy();
  const RampStream s = make_ramp_stream(h);

  eng.start();
  HhhEngine::Producer& prod = eng.producer(0);
  std::uint64_t next_rotate = kEpoch;
  for (std::uint64_t i = 0; i < s.n(); ++i) {
    prod.ingest(s.keys[i]);
    if (i + 1 == next_rotate) {
      // Deterministic stream-position rotation on the shared boundary.
      prod.flush();
      eng.rotate_epoch();
      next_rotate += kEpoch;
    }
  }
  prod.flush();
  eng.stop();

  const TrendSnapshot snap = eng.trend_snapshot();
  ASSERT_EQ(snap.window_epochs(), static_cast<std::uint64_t>(kFullEpochs));
  ASSERT_EQ(snap.sealed_windows(), 4u);  // depth-capped: epochs 3..6 retained
  ASSERT_EQ(snap.current_length(), kTail);

  const auto t = snap.trend(s.attack16);
  ASSERT_EQ(t.size(), 5u);  // 4 sealed + live, oldest first
  std::size_t violations = 0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    // Oldest retained window is epoch index kFullEpochs - 4 = 2.
    const std::size_t e = static_cast<std::size_t>(kFullEpochs) - 4 + i;
    const std::uint64_t n_w = i + 1 < t.size() ? kEpoch : kTail;
    ASSERT_EQ(t[i].stream_length, n_w) << "window " << i;
    const RhhhSpaceSaving& alg =
        i + 1 < t.size() ? snap.window_algorithm(4 - 1 - i) : snap.current_algorithm();
    const double exact = static_cast<double>(s.exact_attack[e]);
    const double err = std::abs(t[i].estimate - exact);
    if (err > window_bound(alg, n_w)) ++violations;
  }
  EXPECT_LE(violations, 1u) << violations << "/5 windows exceed the bound";

  // Ramp visible across the retained engine windows too.
  EXPECT_GT(t[3].share, t[0].share + 0.15);

  // And the sustained-ramp alarm fires on the engine's trend view for the
  // attack aggregate (three consecutive growing windows over the quiet-ish
  // baseline), while being derived from the exact same shares just checked.
  bool alarmed = false;
  for (const SustainedPrefix& sp : snap.emerging_sustained(0.15, 1.5, 3)) {
    if (h.generalizes(sp.now.prefix, s.attack_bottom)) alarmed = true;
  }
  EXPECT_TRUE(alarmed);
}

// ------------------------------------------------- trend snapshot cache ----

namespace golden {

std::uint64_t fnv1a(std::uint64_t h, const std::string& s) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t digest_set(const Hierarchy& h, const HhhSet& s) {
  std::vector<std::string> lines;
  lines.reserve(s.size());
  for (const HhhCandidate& c : s) {
    char buf[160];
    std::snprintf(buf, sizeof buf, "%s|%.17g|%.17g", h.format(c.prefix).c_str(),
                  c.f_est, c.c_hat);
    lines.emplace_back(buf);
  }
  std::sort(lines.begin(), lines.end());
  std::uint64_t d = 0xcbf29ce484222325ULL;
  for (const std::string& l : lines) d = fnv1a(d, l);
  return d;
}

}  // namespace golden

TEST(TrendCache, RepeatedPollsReuseSealedMergesUnchanged) {
  EngineConfig cfg;
  cfg.monitor.hierarchy = HierarchyKind::kIpv4TwoDimBytes;
  cfg.monitor.eps = 0.05;
  cfg.monitor.delta = 0.05;
  cfg.monitor.seed = 23;
  cfg.workers = 3;
  cfg.producers = 1;
  cfg.history_depth = 4;
  HhhEngine eng(cfg);
  const Hierarchy& h = eng.hierarchy();
  const RampStream s = make_ramp_stream(h);

  eng.start();
  HhhEngine::Producer& prod = eng.producer(0);
  std::uint64_t next_rotate = kEpoch;
  for (std::uint64_t i = 0; i < s.n(); ++i) {
    prod.ingest(s.keys[i]);
    if (i + 1 == next_rotate) {
      prod.flush();
      eng.rotate_epoch();
      next_rotate += kEpoch;
    }
  }
  prod.flush();
  eng.stop();

  // First poll merges and caches; repeated polls between rotations reuse
  // the sealed merges and must answer identically.
  const TrendSnapshot first = eng.trend_snapshot();
  const TrendSnapshot second = eng.trend_snapshot();
  const TrendSnapshot third = eng.trend_snapshot();
  EXPECT_EQ(eng.stats().trend_cache_hits, 2u);
  ASSERT_EQ(second.sealed_windows(), first.sealed_windows());
  for (std::size_t age = 0; age < first.sealed_windows(); ++age) {
    EXPECT_EQ(second.window_length(age), first.window_length(age));
    EXPECT_EQ(golden::digest_set(h, second.window(age, 0.15)),
              golden::digest_set(h, first.window(age, 0.15)))
        << "age " << age;
    EXPECT_EQ(golden::digest_set(h, third.window(age, 0.15)),
              golden::digest_set(h, first.window(age, 0.15)))
        << "age " << age;
  }
  // The shared merges really are shared (no re-merge): same instances.
  EXPECT_EQ(&first.window_algorithm(0), &second.window_algorithm(0));

  // A rotation invalidates the cache: the next poll re-merges (hit count
  // unchanged) and the ages shift by one epoch.
  eng.rotate_epoch();
  const TrendSnapshot after = eng.trend_snapshot();
  EXPECT_EQ(eng.stats().trend_cache_hits, 2u);
  EXPECT_NE(&after.window_algorithm(0), &first.window_algorithm(0));
  EXPECT_EQ(golden::digest_set(h, after.window(1, 0.15)),
            golden::digest_set(h, first.window(0, 0.15)));
}

// --------------------------------------- duration-weighted EWMA baseline ----

namespace {

/// An MST window with `target_n` packets of the probed key and
/// `background_n` spread over distinct background keys (exact estimates:
/// deterministic shares).
std::unique_ptr<RhhhSpaceSaving> mst_window(const Hierarchy& h,
                                            Key128 target, std::uint64_t target_n,
                                            std::uint64_t background_n) {
  LatticeParams lp;
  lp.eps = 0.1;
  lp.delta = 0.1;
  auto lat = std::make_unique<RhhhSpaceSaving>(h, LatticeMode::kMst, lp);
  for (std::uint64_t i = 0; i < target_n; ++i) lat->update(target);
  for (std::uint64_t i = 0; i < background_n; ++i) {
    lat->update(Key128::from_u32(static_cast<std::uint32_t>(0x0A000000 + i % 50)));
  }
  return lat;
}

}  // namespace

TEST(DurationWeightedSustained, IdleBlipsNoLongerFakeRamps) {
  // Wall-clock windows: a stable 50%-share aggregate, two near-empty idle
  // windows of 1% the duration, then two more stable windows (the "run").
  // Epoch-weighted EWMA lets the idle windows crush the baseline and fires
  // a spurious sustained-ramp alarm; duration weighting keeps the baseline
  // honest and stays quiet. Equal durations must reproduce the unweighted
  // answer exactly.
  const Hierarchy h = Hierarchy::ipv4_1d(Granularity::kByte);
  const Ipv4 target_ip = ipv4(66, 66, 1, 2);
  const Key128 target = Key128::from_u32(target_ip);

  std::vector<std::unique_ptr<RhhhSpaceSaving>> own;
  own.push_back(mst_window(h, target, 500, 500));  // stable: share 0.5
  own.push_back(mst_window(h, target, 0, 10));     // idle blip
  own.push_back(mst_window(h, target, 0, 10));     // idle blip
  own.push_back(mst_window(h, target, 500, 500));  // run window
  own.push_back(mst_window(h, target, 500, 500));  // live window
  std::vector<const HhhAlgorithm*> windows;
  windows.reserve(own.size());
  for (const auto& w : own) windows.push_back(w.get());
  const std::vector<std::uint64_t> durations = {
      10'000'000'000, 100'000'000, 100'000'000, 10'000'000'000, 10'000'000'000};

  const auto hits_target = [&](const std::vector<SustainedPrefix>& alarms) {
    for (const SustainedPrefix& sp : alarms) {
      if (sp.now.prefix.node == h.bottom() && sp.now.prefix.key == target) {
        return true;
      }
    }
    return false;
  };

  // Epoch-weighted: baseline 0.5 -> 0.25 -> 0.125; run shares 0.5 clear a
  // 2x bar over it -- the spurious alarm this satellite removes.
  EXPECT_TRUE(hits_target(emerging_sustained_from(windows, 0.3, 2.0, 2, 0.5)));
  // Duration-weighted: the 0.1 s blips barely dent a 10 s baseline
  // (effective alpha ~2%), so 0.5 never doubles it -- no alarm.
  EXPECT_FALSE(hits_target(
      emerging_sustained_from(windows, durations, 0.3, 2.0, 2, 0.5)));

  // Equal durations: the weighted overload degenerates to the plain one.
  const std::vector<std::uint64_t> equal(windows.size(), 5'000'000'000);
  const auto plain = emerging_sustained_from(windows, 0.3, 2.0, 2, 0.5);
  const auto weighted =
      emerging_sustained_from(windows, equal, 0.3, 2.0, 2, 0.5);
  ASSERT_EQ(plain.size(), weighted.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i].now.prefix, weighted[i].now.prefix);
    EXPECT_DOUBLE_EQ(plain[i].baseline_share, weighted[i].baseline_share);
    EXPECT_DOUBLE_EQ(plain[i].min_run_share, weighted[i].min_run_share);
  }

  // Zero-duration windows carry no weight at all: with the idle blips at
  // duration 0 the baseline is exactly the stable windows'.
  const std::vector<std::uint64_t> zeroed = {10'000'000'000, 0, 0,
                                             10'000'000'000, 10'000'000'000};
  for (const SustainedPrefix& sp :
       emerging_sustained_from(windows, zeroed, 0.3, 2.0, 2, 0.5)) {
    EXPECT_NE(sp.now.prefix.key, target);
  }

  // Mis-sized durations are refused loudly.
  const std::vector<std::uint64_t> short_durs(2, 1);
  EXPECT_THROW(
      (void)emerging_sustained_from(windows, short_durs, 0.3, 2.0, 2, 0.5),
      std::invalid_argument);
}

TEST(DurationWeightedSustained, EngineFlagsWallClockModeOnly) {
  EngineConfig cfg;
  cfg.monitor.hierarchy = HierarchyKind::kIpv4TwoDimBytes;
  cfg.monitor.eps = 0.1;
  cfg.monitor.delta = 0.1;
  cfg.workers = 2;
  cfg.producers = 1;

  cfg.epoch_millis = 50;  // pure wall-clock rotation
  {
    HhhEngine eng(cfg);
    EXPECT_TRUE(eng.trend_snapshot().duration_weighted());
  }
  cfg.epoch_millis = 0;
  cfg.epoch_packets = 1000;  // packet clock: equal windows, plain EWMA
  {
    HhhEngine eng(cfg);
    const TrendSnapshot snap = eng.trend_snapshot();
    EXPECT_FALSE(snap.duration_weighted());
    EXPECT_GT(snap.current_duration_ns(), 0u);
  }
}

}  // namespace
}  // namespace rhhh
