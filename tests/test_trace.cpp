// Tests for the trace substrate: Zipf sampler statistics, the hierarchical
// address model, trace generator determinism and presets, and binary trace
// file round-trips.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <vector>

#include "trace/address_model.hpp"
#include "trace/trace_gen.hpp"
#include "trace/trace_io.hpp"
#include "trace/zipf.hpp"

namespace rhhh {
namespace {

// ----------------------------------------------------------------- zipf ----

TEST(Zipf, RejectsBadParams) {
  EXPECT_THROW(ZipfDistribution(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfDistribution(10, 0.0), std::invalid_argument);
}

TEST(Zipf, StaysInRange) {
  Xoroshiro128 rng(1);
  for (double s : {0.5, 1.0, 1.3, 2.5}) {
    ZipfDistribution z(100, s);
    for (int i = 0; i < 5000; ++i) {
      const auto k = z(rng);
      ASSERT_GE(k, 1u);
      ASSERT_LE(k, 100u);
    }
  }
}

TEST(Zipf, DegenerateSingleValue) {
  Xoroshiro128 rng(2);
  ZipfDistribution z(1, 1.2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(z(rng), 1u);
}

/// Empirical frequencies must match the Zipf pmf (chi-square on the head).
class ZipfPmf : public ::testing::TestWithParam<double> {};

TEST_P(ZipfPmf, HeadFrequenciesMatchTheory) {
  const double s = GetParam();
  const std::uint64_t n = 1000;
  ZipfDistribution z(n, s);
  Xoroshiro128 rng(42);
  const int kDraws = 200000;
  std::vector<int> counts(11, 0);  // ranks 1..10 + tail bucket
  for (int i = 0; i < kDraws; ++i) {
    const auto k = z(rng);
    if (k <= 10) {
      ++counts[static_cast<std::size_t>(k)];
    } else {
      ++counts[0];
    }
  }
  double hn = 0;
  for (std::uint64_t r = 1; r <= n; ++r) hn += std::pow(double(r), -s);
  double chi2 = 0;
  double tail_expected = kDraws;
  for (int r = 1; r <= 10; ++r) {
    const double expected = kDraws * std::pow(double(r), -s) / hn;
    tail_expected -= expected;
    const double d = counts[static_cast<std::size_t>(r)] - expected;
    chi2 += d * d / expected;
  }
  const double dt = counts[0] - tail_expected;
  chi2 += dt * dt / tail_expected;
  // 10 dof, 99.9th percentile ~= 29.6.
  EXPECT_LT(chi2, 29.6) << "s = " << s;
}

INSTANTIATE_TEST_SUITE_P(Skews, ZipfPmf, ::testing::Values(0.7, 1.0, 1.2, 1.8));

TEST(Zipf, RankOneIsMostFrequent) {
  ZipfDistribution z(10000, 1.1);
  Xoroshiro128 rng(5);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 50000; ++i) ++counts[z(rng)];
  int max_count = 0;
  std::uint64_t max_rank = 0;
  for (const auto& [r, c] : counts) {
    if (c > max_count) {
      max_count = c;
      max_rank = r;
    }
  }
  EXPECT_EQ(max_rank, 1u);
}

// -------------------------------------------------------- address model ----

TEST(AddressModel, Deterministic) {
  const std::array<double, 4> skews{1.2, 1.0, 0.8, 0.6};
  HierarchicalAddressModel m1(77, skews);
  HierarchicalAddressModel m2(77, skews);
  for (std::uint64_t f = 0; f < 1000; ++f) {
    EXPECT_EQ(m1.address(f), m2.address(f));
    EXPECT_EQ(m1.address6(f).hi, m2.address6(f).hi);
  }
}

TEST(AddressModel, SeedsProduceDifferentSpaces) {
  const std::array<double, 4> skews{1.2, 1.0, 0.8, 0.6};
  HierarchicalAddressModel a(1, skews);
  HierarchicalAddressModel b(2, skews);
  int same = 0;
  for (std::uint64_t f = 0; f < 1000; ++f) same += (a.address(f) == b.address(f));
  EXPECT_LT(same, 50);
}

TEST(AddressModel, FirstByteSkewConcentrates) {
  // With strong skew on byte 0, a handful of /8s must carry most flows.
  HierarchicalAddressModel m(9, {1.3, 1.0, 0.8, 0.6});
  std::map<std::uint8_t, int> first_byte;
  const int kFlows = 20000;
  for (std::uint64_t f = 0; f < kFlows; ++f) {
    ++first_byte[static_cast<std::uint8_t>(m.address(f) >> 24)];
  }
  std::vector<int> counts;
  for (const auto& [b, c] : first_byte) counts.push_back(c);
  std::sort(counts.rbegin(), counts.rend());
  int top8 = 0;
  for (std::size_t i = 0; i < 8 && i < counts.size(); ++i) top8 += counts[i];
  EXPECT_GT(static_cast<double>(top8) / kFlows, 0.35)
      << "top 8 /8s should dominate under byte-0 skew 1.3";
}

TEST(AddressModel, Ipv6GroupsHaveStructure) {
  HierarchicalAddressModel m(10, {1.3, 1.0, 0.8, 0.6});
  std::set<std::uint16_t> top_groups;
  for (std::uint64_t f = 0; f < 5000; ++f) {
    top_groups.insert(m.address6(f).group(0));
  }
  // The leading 16 bits follow the strongest skews: far fewer distinct
  // values than flows, but not a constant either.
  EXPECT_LT(top_groups.size(), 2500u);
  EXPECT_GT(top_groups.size(), 10u);
}

// ------------------------------------------------------------ generator ----

TEST(TraceGen, PresetsExistAndDiffer) {
  const auto& names = trace_preset_names();
  ASSERT_EQ(names.size(), 4u);
  std::set<std::uint64_t> seeds;
  for (const auto& n : names) seeds.insert(trace_preset(n).seed);
  EXPECT_EQ(seeds.size(), 4u);
  EXPECT_THROW(trace_preset("nonexistent"), std::invalid_argument);
}

TEST(TraceGen, DeterministicPerConfig) {
  TraceGenerator a(trace_preset("chicago16"));
  TraceGenerator b(trace_preset("chicago16"));
  for (int i = 0; i < 2000; ++i) {
    const PacketRecord pa = a.next();
    const PacketRecord pb = b.next();
    EXPECT_EQ(pa, pb);
  }
}

TEST(TraceGen, PresetsProduceDistinctStreams) {
  TraceGenerator a(trace_preset("chicago16"));
  TraceGenerator b(trace_preset("sanjose14"));
  int same = 0;
  for (int i = 0; i < 1000; ++i) same += (a.next().src_ip == b.next().src_ip);
  EXPECT_LT(same, 100);
}

TEST(TraceGen, HeavyTailAndStructure) {
  TraceGenerator gen(trace_preset("sanjose14"));
  std::map<std::uint64_t, int> pair_counts;
  std::map<std::uint32_t, int> src16_counts;
  const int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const PacketRecord p = gen.next();
    ++pair_counts[(std::uint64_t(p.src_ip) << 32) | p.dst_ip];
    ++src16_counts[p.src_ip >> 16];
  }
  // Heavy tail over flows: the most frequent pair well above uniform share.
  int max_pair = 0;
  for (const auto& [k, c] : pair_counts) max_pair = std::max(max_pair, c);
  EXPECT_GT(max_pair, kN / 1000);
  // Prefix concentration: some /16 aggregate holds >= 2% of traffic.
  int max16 = 0;
  for (const auto& [k, c] : src16_counts) max16 = std::max(max16, c);
  EXPECT_GT(max16, kN / 50);
}

TEST(TraceGen, TimestampsMonotone) {
  TraceGenerator gen(trace_preset("chicago15"));
  std::uint32_t last = 0;
  for (int i = 0; i < 5000; ++i) {
    const PacketRecord p = gen.next();
    EXPECT_GT(p.ts_us, last);
    last = p.ts_us;
  }
}

TEST(TraceGen, ProtocolMixRoughlyConfigured) {
  const TraceConfig cfg = trace_preset("chicago16");
  TraceGenerator gen(cfg);
  int tcp = 0;
  int udp = 0;
  int icmp = 0;
  const int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const PacketRecord p = gen.next();
    if (p.proto == static_cast<std::uint8_t>(IpProto::kTcp)) ++tcp;
    if (p.proto == static_cast<std::uint8_t>(IpProto::kUdp)) ++udp;
    if (p.proto == static_cast<std::uint8_t>(IpProto::kIcmp)) ++icmp;
  }
  EXPECT_EQ(tcp + udp + icmp, kN);
  // Flow-weighted shares drift from per-flow shares under skew; just check
  // all three protocols show up and TCP is a large share.
  EXPECT_GT(tcp, kN / 4);
  EXPECT_GT(udp, 0);
  EXPECT_GT(icmp, 0);
}

TEST(TraceGen, GenerateBatch) {
  TraceGenerator gen(trace_preset("sanjose13"));
  const auto batch = gen.generate(1234);
  EXPECT_EQ(batch.size(), 1234u);
  EXPECT_EQ(gen.packets_emitted(), 1234u);
}

// ---------------------------------------------------------------- trace io ----

class TraceIoTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/rhhh_trace_test.rhht";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(TraceIoTest, RoundTrip) {
  TraceGenerator gen(trace_preset("chicago15"));
  const auto packets = gen.generate(5000);
  {
    TraceWriter w(path_);
    for (const auto& p : packets) w.write(p);
    w.close();
    EXPECT_EQ(w.written(), 5000u);
  }
  TraceReader r(path_);
  EXPECT_EQ(r.count(), 5000u);
  for (const auto& expected : packets) {
    const auto got = r.next();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, expected);
  }
  EXPECT_FALSE(r.next().has_value());
}

TEST_F(TraceIoTest, ReadAll) {
  {
    TraceWriter w(path_);
    TraceGenerator gen(trace_preset("sanjose14"));
    for (int i = 0; i < 100; ++i) w.write(gen.next());
  }  // destructor closes
  const auto all = TraceReader::read_all(path_);
  EXPECT_EQ(all.size(), 100u);
}

TEST_F(TraceIoTest, RejectsMissingFile) {
  EXPECT_THROW(TraceReader("/nonexistent/path.rhht"), std::runtime_error);
}

TEST_F(TraceIoTest, RejectsBadMagic) {
  {
    std::ofstream f(path_, std::ios::binary);
    f << "NOT A TRACE FILE AT ALL.....";
  }
  EXPECT_THROW(TraceReader r(path_), std::runtime_error);
}

TEST_F(TraceIoTest, DetectsTruncation) {
  {
    TraceWriter w(path_);
    TraceGenerator gen(trace_preset("chicago16"));
    for (int i = 0; i < 10; ++i) w.write(gen.next());
    w.close();
  }
  // Chop the last record in half.
  {
    std::ifstream in(path_, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    bytes.resize(bytes.size() - 10);
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  TraceReader r(path_);
  for (int i = 0; i < 9; ++i) ASSERT_TRUE(r.next().has_value());
  EXPECT_THROW((void)r.next(), std::runtime_error);
}

}  // namespace
}  // namespace rhhh
