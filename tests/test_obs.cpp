// Telemetry layer tests (src/obs/): instrument semantics (sharded counters,
// gauges, log-bucketed histograms), registry behavior (idempotent
// registration, kind/name validation, both expositions), the TraceRing's
// wrap-around/ordering contract, and the exporter acceptance criterion --
// `GET /metrics` against a live engine returns Prometheus text while
// ingestion keeps running at full rate (no quiesce).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <pthread.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <fstream>
#include <sstream>

#include "engine/engine.hpp"
#include "obs/exporter.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_ring.hpp"
#include "util/random.hpp"

namespace rhhh {
namespace {

using obs::AccuracyCertificate;
using obs::HealthLedger;
using obs::MetricsExporter;
using obs::MetricsRegistry;
using obs::StallWatchdog;
using obs::TraceEvent;
using obs::TraceRing;

// --------------------------------------------------------- instruments ----

TEST(ObsCounter, AddsFromManyThreadsSumExactly) {
  MetricsRegistry reg;
  obs::Counter& c = reg.counter("obs_test_adds_total");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPer = 50000;
  std::vector<std::thread> ts;
  ts.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPer; ++i) c.inc();
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(c.value(), kThreads * kPer);
}

TEST(ObsGauge, SetAddValue) {
  MetricsRegistry reg;
  obs::Gauge& g = reg.gauge("obs_test_depth");
  EXPECT_EQ(g.value(), 0);
  g.set(42);
  EXPECT_EQ(g.value(), 42);
  g.add(-50);
  EXPECT_EQ(g.value(), -8);
}

TEST(ObsHistogram, SnapshotFoldsAllShards) {
  MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("obs_test_latency_ns");
  // Record from several threads so multiple shard slots are exercised.
  constexpr int kThreads = 4;
  constexpr int kPer = 10000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&h, t] {
      for (int i = 0; i < kPer; ++i) {
        h.record(static_cast<std::uint64_t>(t) * 1000 + 100);
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPer);
  const LogHistogram snap = h.snapshot();
  EXPECT_EQ(snap.count(), h.count());
  EXPECT_GE(snap.max(), 3000u);  // bucket-edge resolution, >= largest sample
  EXPECT_GT(snap.quantile(0.5), 0.0);
  // sum folds exactly (relaxed adds, but all joined before the snapshot).
  EXPECT_DOUBLE_EQ(snap.mean() * static_cast<double>(snap.count()),
                   10000.0 * (100 + 1100 + 2100 + 3100));
}

TEST(ObsHistogram, RecordSinceAndScopedTimer) {
  MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("obs_test_scoped_ns");
  { const obs::ScopedTimer t(&h); }
  { const obs::ScopedTimer t(nullptr); }  // telemetry off: must be a no-op
  h.record_since(obs::now_ns());          // ~0 elapsed, still one sample
  EXPECT_EQ(h.count(), 2u);
}

// ------------------------------------------------------------ registry ----

TEST(ObsRegistry, RegistrationIsIdempotent) {
  MetricsRegistry reg;
  obs::Counter& a = reg.counter("obs_test_idem_total", "help text");
  obs::Counter& b = reg.counter("obs_test_idem_total");
  EXPECT_EQ(&a, &b) << "same name must return the same instrument";
  EXPECT_EQ(reg.size(), 1u);
  a.add(3);
  EXPECT_EQ(reg.value("obs_test_idem_total"), 3.0);
}

TEST(ObsRegistry, KindMismatchAndBadNamesThrow) {
  MetricsRegistry reg;
  reg.counter("obs_test_kind_total");
  EXPECT_THROW(reg.gauge("obs_test_kind_total"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("obs_test_kind_total"), std::invalid_argument);
  // Built via std::string so the lint's literal `counter("")` rule (which
  // this throw is the runtime backstop for) doesn't flag its own test.
  EXPECT_THROW(reg.counter(std::string()), std::invalid_argument);
  EXPECT_THROW(reg.counter("1starts_with_digit"), std::invalid_argument);
  EXPECT_THROW(reg.counter("has space"), std::invalid_argument);
  EXPECT_THROW(reg.counter("unclosed{label=\"v\""), std::invalid_argument);
  // Labeled series names are valid.
  EXPECT_NO_THROW(reg.counter("obs_test_ring{ring=\"p0w1\"}"));
}

TEST(ObsRegistry, UnregisterRemovesAndGaugeFnLastWriterWins) {
  MetricsRegistry reg;
  reg.gauge_fn("obs_test_fn", [] { return 1.0; });
  reg.gauge_fn("obs_test_fn", [] { return 7.0; });
  EXPECT_EQ(reg.value("obs_test_fn"), 7.0);
  EXPECT_TRUE(reg.unregister("obs_test_fn"));
  EXPECT_FALSE(reg.unregister("obs_test_fn"));
  EXPECT_FALSE(reg.has("obs_test_fn"));
  EXPECT_EQ(reg.value("obs_test_fn"), 0.0);
}

TEST(ObsRegistry, PrometheusRendering) {
  MetricsRegistry reg;
  reg.counter("obs_req_total", "requests").add(5);
  reg.gauge("obs_depth", "queue depth").set(-3);
  reg.counter("obs_hits{path=\"a\"}", "hits by path").add(1);
  reg.counter("obs_hits{path=\"b\"}").add(2);
  obs::Histogram& h = reg.histogram("obs_lat_ns", "latency");
  h.record(100);
  h.record(200);
  const std::string text = reg.render_prometheus();
  EXPECT_NE(text.find("# TYPE obs_req_total counter"), std::string::npos);
  EXPECT_NE(text.find("# HELP obs_req_total requests"), std::string::npos);
  EXPECT_NE(text.find("obs_req_total 5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE obs_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("obs_depth -3"), std::string::npos);
  EXPECT_NE(text.find("obs_hits{path=\"a\"} 1"), std::string::npos);
  EXPECT_NE(text.find("obs_hits{path=\"b\"} 2"), std::string::npos);
  // TYPE emitted once per family even with two labeled series.
  std::size_t n = 0;
  for (std::size_t p = text.find("# TYPE obs_hits"); p != std::string::npos;
       p = text.find("# TYPE obs_hits", p + 1)) {
    ++n;
  }
  EXPECT_EQ(n, 1u);
  // Histograms render as summaries: quantiles plus _sum/_count.
  EXPECT_NE(text.find("# TYPE obs_lat_ns summary"), std::string::npos);
  EXPECT_NE(text.find("obs_lat_ns{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(text.find("obs_lat_ns{quantile=\"0.99\"}"), std::string::npos);
  EXPECT_NE(text.find("obs_lat_ns_count 2"), std::string::npos);
  EXPECT_NE(text.find("obs_lat_ns_sum 300"), std::string::npos);
}

TEST(ObsRegistry, JsonRendering) {
  MetricsRegistry reg;
  reg.counter("obs_j_total", "with \"quotes\"").add(9);
  reg.histogram("obs_j_ns").record(50);
  const std::string j = reg.render_json();
  EXPECT_EQ(j.front(), '{');
  EXPECT_EQ(j.back(), '}');
  EXPECT_NE(j.find("\"name\":\"obs_j_total\""), std::string::npos);
  EXPECT_NE(j.find("\"kind\":\"counter\""), std::string::npos);
  EXPECT_NE(j.find("\"value\":9"), std::string::npos);
  EXPECT_NE(j.find("\\\"quotes\\\""), std::string::npos) << "help is escaped";
  EXPECT_NE(j.find("\"kind\":\"histogram\""), std::string::npos);
  EXPECT_NE(j.find("\"count\":1"), std::string::npos);
}

// ----------------------------------------------------------- TraceRing ----

TEST(ObsTraceRing, DumpIsSeqOrderedAndWrapKeepsNewest) {
  TraceRing ring(16);  // rounded to 16
  EXPECT_EQ(ring.capacity(), 16u);
  for (std::uint64_t i = 0; i < 40; ++i) {
    ring.record(TraceEvent::kRotate, static_cast<std::int64_t>(i), i, i * 2);
  }
  EXPECT_EQ(ring.recorded(), 40u);
  const std::vector<obs::TraceRecord> d = ring.dump();
  ASSERT_EQ(d.size(), 16u) << "wrap keeps exactly the newest capacity events";
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(d[i].seq, 24 + i);  // 40 - 16 .. 39, oldest first
    EXPECT_EQ(d[i].arg0, d[i].seq);
    EXPECT_EQ(d[i].arg1, d[i].seq * 2);
    EXPECT_EQ(d[i].event, TraceEvent::kRotate);
  }
}

TEST(ObsTraceRing, ToStringCoversEveryEvent) {
  EXPECT_STREQ(to_string(TraceEvent::kRotate), "rotate");
  EXPECT_STREQ(to_string(TraceEvent::kQuiesce), "quiesce");
  EXPECT_STREQ(to_string(TraceEvent::kSeal), "seal");
  EXPECT_STREQ(to_string(TraceEvent::kArchive), "archive");
  EXPECT_STREQ(to_string(TraceEvent::kArchiveDrop), "archive_drop");
  EXPECT_STREQ(to_string(TraceEvent::kArchiveError), "archive_error");
  EXPECT_STREQ(to_string(TraceEvent::kSegmentRoll), "segment_roll");
  EXPECT_STREQ(to_string(TraceEvent::kCompaction), "compaction");
  EXPECT_STREQ(to_string(TraceEvent::kSnapshot), "snapshot");
  EXPECT_STREQ(to_string(TraceEvent::kScrape), "scrape");
  EXPECT_STREQ(to_string(TraceEvent::kStall), "stall");
}

// -------------------------------------------------------- health ledger ----

TEST(ObsHealthLedger, RegistersGaugesMirrorsNewestAndUnregisters) {
  MetricsRegistry reg;
  {
    HealthLedger led(&reg, 2);
    EXPECT_TRUE(reg.has("rhhh_health_certificates_total"));
    EXPECT_TRUE(reg.has("rhhh_health_eps_empirical"));
    EXPECT_TRUE(reg.has("rhhh_health_converged"));
    AccuracyCertificate c;
    c.epoch = 3;
    c.stream_length = 1000;
    c.drops = 10;
    c.eps_configured = 0.1;
    c.eps_empirical = 0.25;
    c.sampling_slack = 0.05;
    c.occupancy = 0.5;
    c.max_saturation = 1.0;
    c.converged = true;
    led.stamp(c);
    EXPECT_EQ(reg.value("rhhh_health_certificates_total"), 1.0);
    EXPECT_EQ(reg.value("rhhh_health_window_epoch"), 3.0);
    EXPECT_EQ(reg.value("rhhh_health_window_stream_length"), 1000.0);
    EXPECT_EQ(reg.value("rhhh_health_window_drops"), 10.0);
    EXPECT_DOUBLE_EQ(reg.value("rhhh_health_eps_empirical"), 0.25);
    EXPECT_DOUBLE_EQ(reg.value("rhhh_health_eps_configured"), 0.1);
    EXPECT_DOUBLE_EQ(reg.value("rhhh_health_sampling_slack"), 0.05);
    EXPECT_EQ(reg.value("rhhh_health_converged"), 1.0);
    // keep=2: stamping two more ages epoch 3 out; newest stays in front.
    c.epoch = 4;
    led.stamp(c);
    c.epoch = 5;
    c.converged = false;
    led.stamp(c);
    const std::vector<AccuracyCertificate> recent = led.recent();
    ASSERT_EQ(recent.size(), 2u);
    EXPECT_EQ(recent[0].epoch, 5u);
    EXPECT_EQ(recent[1].epoch, 4u);
    EXPECT_EQ(led.stamped(), 3u);
    EXPECT_EQ(reg.value("rhhh_health_converged"), 0.0);
    const std::string j = led.render_json();
    EXPECT_NE(j.find("\"stamped\":3"), std::string::npos);
    EXPECT_NE(j.find("\"certificates\":["), std::string::npos);
    EXPECT_NE(j.find("\"epoch\":5"), std::string::npos);
    EXPECT_EQ(j.find("\"epoch\":3"), std::string::npos) << "aged out of keep=2";
  }
  EXPECT_FALSE(reg.has("rhhh_health_eps_empirical"))
      << "the ledger must unregister its gauge_fns on destruction";
  EXPECT_EQ(reg.size(), 0u);
}

// ------------------------------------------------------- stall watchdog ----

/// Detection policy against a synthetic sampler: frozen consumed counters
/// with backlog in the rings trips a stall within two periods, the first
/// stalled period of the episode writes the flight recorder (trace +
/// certificates + stats sections), and resumed progress re-arms it.
TEST(ObsHealthWatchdog, DetectsFrozenProgressAndWritesFlightRecorder) {
  MetricsRegistry reg;
  HealthLedger ledger(&reg, 4);
  AccuracyCertificate cert;
  cert.epoch = 7;
  cert.stream_length = 123;
  ledger.stamp(cert);
  TraceRing ring(64);
  const std::string dump_path = testing::TempDir() + "obs_wd_dump.json";
  std::remove(dump_path.c_str());
  StallWatchdog::Config wc;
  wc.period_ns = 20'000'000;  // 20 ms: fast test, same policy as production
  wc.dump_path = dump_path;
  std::atomic<bool> frozen{true};
  std::atomic<std::uint64_t> ticks{0};
  StallWatchdog wd(
      wc,
      [&] {
        StallWatchdog::Progress p;
        if (!frozen.load(std::memory_order_relaxed)) {
          ticks.fetch_add(1, std::memory_order_relaxed);
        }
        p.consumed = ticks.load(std::memory_order_relaxed);
        p.backlog = 10;  // rings never drain
        return p;
      },
      [] { return std::string("{\"consumed\":0}"); }, &ledger, &ring, &reg);
  EXPECT_TRUE(reg.has("rhhh_health_stall_periods_total"));
  wd.start();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  while (wd.stalls() == 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GE(wd.stalls(), 1u) << "frozen progress + backlog must trip a stall";
  EXPECT_GE(wd.stall_episodes(), 1u);
  EXPECT_GE(reg.value("rhhh_health_stall_periods_total"), 1.0);
  const std::string dump = wd.last_dump();
  EXPECT_NE(dump.find("\"reason\":\"no_progress\""), std::string::npos);
  EXPECT_NE(dump.find("\"certificates\":["), std::string::npos);
  EXPECT_NE(dump.find("\"epoch\":7"), std::string::npos);
  EXPECT_NE(dump.find("\"trace\":"), std::string::npos);
  EXPECT_NE(dump.find("\"stats\":{"), std::string::npos);
  EXPECT_NE(dump.find("\"backlog\":10"), std::string::npos);
  // The flight recorder reached disk, readable and identical.
  std::ifstream in(dump_path);
  ASSERT_TRUE(in.good()) << "flight-recorder file missing: " << dump_path;
  std::stringstream file_body;
  file_body << in.rdbuf();
  EXPECT_NE(file_body.str().find("\"reason\":\"no_progress\""),
            std::string::npos);
  // kStall landed in the trace ring (arg1 carries the backlog).
  bool saw_stall = false;
  for (const obs::TraceRecord& r : ring.dump()) {
    if (r.event == TraceEvent::kStall) {
      saw_stall = true;
      EXPECT_EQ(r.arg1, 10u);
    }
  }
  EXPECT_TRUE(saw_stall);
  // Progress re-arms the episode counter: no new episode while advancing.
  frozen.store(false, std::memory_order_relaxed);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const std::uint64_t episodes_after_recovery = wd.stall_episodes();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(wd.stall_episodes(), episodes_after_recovery)
      << "advancing progress must not open new stall episodes";
  wd.stop();
  wd.stop();  // idempotent
  std::remove(dump_path.c_str());
}

/// Acceptance criterion: a deliberately stalled engine (worker parked via
/// the test hook while records sit in its rings) is detected by the
/// engine-integrated watchdog, with a readable flight-recorder dump.
TEST(ObsHealthWatchdog, DeliberatelyStalledEngineIsDetected) {
  MetricsRegistry reg;
  const std::string dump_path = testing::TempDir() + "obs_engine_stall.json";
  std::remove(dump_path.c_str());
  EngineConfig cfg;
  cfg.workers = 1;
  cfg.producers = 1;
  cfg.metrics = &reg;
  // Drop-tail: a kBlock producer would spin forever against the parked
  // worker; with drop-tail the flush returns and the full ring IS the
  // backlog the watchdog must see.
  cfg.overflow = OverflowPolicy::kDropTail;
  cfg.health.watchdog_millis = 20;
  cfg.health.dump_path = dump_path;
  HhhEngine eng(cfg);
  ASSERT_NE(eng.health(), nullptr);
  ASSERT_NE(eng.watchdog(), nullptr);
  eng.test_block_worker(0);  // park the only consumer before it ever runs
  eng.start();
  HhhEngine::Producer& p = eng.producer(0);
  Xoroshiro128 rng(11);
  for (int i = 0; i < 50000; ++i) p.ingest(Key128{rng(), rng()});
  p.flush();  // ring now holds backlog no one is draining
  // Steady state (frozen consumed + backlog) needs two watchdog samples:
  // detection within 2 periods of the first post-stall sample. The poll
  // deadline is generous for loaded CI machines; typical detection is
  // ~2-3 periods.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (eng.watchdog()->stalls() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(eng.watchdog()->stalls(), 1u)
      << "a parked worker with ring backlog must read as a stall";
  EXPECT_GE(eng.watchdog()->stall_episodes(), 1u);
  const std::string dump = eng.watchdog()->last_dump();
  EXPECT_NE(dump.find("\"reason\":\"no_progress\""), std::string::npos);
  EXPECT_NE(dump.find("\"stats\":{"), std::string::npos);
  EXPECT_NE(dump.find("\"window_epochs\""), std::string::npos);
  std::ifstream in(dump_path);
  EXPECT_TRUE(in.good()) << "flight-recorder file missing: " << dump_path;
  eng.test_unblock_workers();
  eng.stop();
  // The unparked worker's shutdown drain recovers every queued record.
  const EngineStats s = eng.stats();
  EXPECT_EQ(s.offered, s.consumed + s.dropped);
  EXPECT_GT(s.consumed, 0u);
  std::remove(dump_path.c_str());
}

// ------------------------------------------------------------ exporter ----

/// Every route answers on an ephemeral port; stop() is idempotent.
TEST(ObsExporter, ServesAllRoutes) {
  MetricsRegistry reg;
  reg.counter("obs_exp_total", "served").add(11);
  TraceRing ring(32);
  ring.record(TraceEvent::kScrape, 123, 1, 0);
  MetricsExporter exp(reg, &ring);
  exp.start(0);
  ASSERT_TRUE(exp.running());
  ASSERT_NE(exp.port(), 0);

  const std::string metrics = obs::http_get_local(exp.port(), "/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("obs_exp_total 11"), std::string::npos);

  const std::string json = obs::http_get_local(exp.port(), "/metrics.json");
  EXPECT_NE(json.find("\"obs_exp_total\""), std::string::npos);

  const std::string trace = obs::http_get_local(exp.port(), "/trace");
  EXPECT_NE(trace.find("\"scrape\""), std::string::npos);

  const std::string health = obs::http_get_local(exp.port(), "/healthz");
  EXPECT_NE(health.find("ok"), std::string::npos);

  const std::string missing = obs::http_get_local(exp.port(), "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos);

  EXPECT_GE(exp.scrapes(), 5u);
  exp.stop();
  EXPECT_FALSE(exp.running());
  exp.stop();  // idempotent
}

/// /trace?n=K serves only the newest K events; bare /trace is unlimited
/// and a non-numeric n falls back to the full dump.
TEST(ObsExporter, TraceQueryLimitsToNewestEvents) {
  MetricsRegistry reg;
  TraceRing ring(32);
  for (std::int64_t i = 0; i < 10; ++i) {
    ring.record(TraceEvent::kScrape, i, static_cast<std::uint64_t>(i), 0);
  }
  MetricsExporter exp(reg, &ring);
  exp.start(0);
  const auto count_events = [](const std::string& body) {
    std::size_t n = 0;
    for (std::size_t p = body.find("\"seq\":"); p != std::string::npos;
         p = body.find("\"seq\":", p + 1)) {
      ++n;
    }
    return n;
  };
  const std::string all = obs::http_get_local(exp.port(), "/trace");
  EXPECT_EQ(count_events(all), 10u);
  const std::string three = obs::http_get_local(exp.port(), "/trace?n=3");
  EXPECT_NE(three.find("200 OK"), std::string::npos);
  EXPECT_EQ(count_events(three), 3u);
  EXPECT_NE(three.find("\"seq\":9"), std::string::npos) << "newest kept";
  EXPECT_EQ(three.find("\"seq\":0,"), std::string::npos) << "oldest trimmed";
  const std::string none = obs::http_get_local(exp.port(), "/trace?n=0");
  EXPECT_EQ(count_events(none), 0u);
  // "recorded" still reports the full count even when the dump is trimmed.
  EXPECT_NE(none.find("\"recorded\":10"), std::string::npos);
  const std::string junk = obs::http_get_local(exp.port(), "/trace?n=zap");
  EXPECT_EQ(count_events(junk), 10u);
  exp.stop();
}

/// /health 404s without a source, serves the ledger once attached, and
/// 404s again after detach -- the exporter-before-engine construction
/// order the demos use.
TEST(ObsExporter, HealthRouteFollowsAttachedLedger) {
  MetricsRegistry reg;
  MetricsExporter exp(reg);
  exp.start(0);
  EXPECT_NE(obs::http_get_local(exp.port(), "/health").find("404"),
            std::string::npos);
  HealthLedger ledger(nullptr, 4);
  AccuracyCertificate c;
  c.epoch = 42;
  c.stream_length = 99;
  ledger.stamp(c);
  exp.set_health_source(&ledger);
  const std::string body = obs::http_get_local(exp.port(), "/health");
  EXPECT_NE(body.find("200 OK"), std::string::npos);
  EXPECT_NE(body.find("application/json"), std::string::npos);
  EXPECT_NE(body.find("\"certificates\":["), std::string::npos);
  EXPECT_NE(body.find("\"epoch\":42"), std::string::npos);
  exp.set_health_source(nullptr);
  EXPECT_NE(obs::http_get_local(exp.port(), "/health").find("404"),
            std::string::npos);
  exp.stop();
}

// ------------------------------------------------- malformed requests ----

/// Send an arbitrary byte payload (optionally half-closing the write side)
/// and return whatever the exporter answers -- http_get_local always forms
/// valid GETs, so the 4xx paths need a raw client.
std::string raw_http(std::uint16_t port, const std::string& payload) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  obs::detail::send_all(fd, payload);
  ::shutdown(fd, SHUT_WR);
  std::string resp;
  char buf[4096];
  struct pollfd pfd = {fd, POLLIN, 0};
  while (true) {
    const int rc = ::poll(&pfd, 1, 5000);
    if (rc < 0 && errno == EINTR) continue;
    if (rc <= 0) break;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    resp.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return resp;
}

/// Non-GET methods, unparseable request lines, and heads exceeding the
/// read cap each get a clean 4xx and a close -- never a hang (the 5 s
/// client poll timeout above is the hang detector).
TEST(ObsExporterMalformed, BadRequestsGetClean4xxAndClose) {
  MetricsRegistry reg;
  reg.counter("obs_malformed_total").add(1);
  MetricsExporter exp(reg);
  exp.start(0);

  const std::string post =
      raw_http(exp.port(), "POST /metrics HTTP/1.0\r\nHost: x\r\n\r\n");
  EXPECT_NE(post.find("405 Method Not Allowed"), std::string::npos);
  EXPECT_NE(post.find("Connection: close"), std::string::npos);

  const std::string junk = raw_http(exp.port(), "garbage\r\n\r\n");
  EXPECT_NE(junk.find("400 Bad Request"), std::string::npos);

  const std::string empty = raw_http(exp.port(), "");
  EXPECT_NE(empty.find("400 Bad Request"), std::string::npos)
      << "a client that closes without sending still gets an answer";

  // An oversized request line: > 16 KiB with no header terminator.
  const std::string oversized = "GET /" + std::string(20 * 1024, 'a');
  const std::string too_long = raw_http(exp.port(), oversized);
  EXPECT_NE(too_long.find("414 URI Too Long"), std::string::npos);

  // The exporter survived all of it and still serves real scrapes.
  const std::string ok = obs::http_get_local(exp.port(), "/metrics");
  EXPECT_NE(ok.find("200 OK"), std::string::npos);
  EXPECT_NE(ok.find("obs_malformed_total 1"), std::string::npos);
  EXPECT_GE(exp.scrapes(), 5u);
  exp.stop();
}

// ------------------------------------------------- EINTR resilience ----

std::atomic<int> g_sigusr1_hits{0};
extern "C" void obs_test_on_sigusr1(int) {
  g_sigusr1_hits.fetch_add(1, std::memory_order_relaxed);
}

/// Installs a SIGUSR1 handler WITHOUT SA_RESTART -- blocking syscalls in
/// the signaled thread return EINTR instead of resuming transparently,
/// which is exactly the condition the exporter's retry loops must survive.
/// Restores the previous disposition on scope exit.
struct SigusrGuard {
  struct sigaction old {};
  SigusrGuard() {
    struct sigaction sa {};
    sa.sa_handler = obs_test_on_sigusr1;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;  // deliberately NOT SA_RESTART
    sigaction(SIGUSR1, &sa, &old);
  }
  ~SigusrGuard() { sigaction(SIGUSR1, &old, nullptr); }
};

/// send_all must deliver the whole payload even when signals interrupt the
/// blocked send() mid-transfer (pre-fix it treated EINTR as "client went
/// away" and silently truncated the response).
TEST(ObsExporterEintr, SendAllDeliversAcrossInterruptedWrites) {
  SigusrGuard sig;
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // Tiny send buffer: the 1 MiB payload forces send() to block over and
  // over, maximizing the window a signal can land in.
  const int sndbuf = 4096;
  ::setsockopt(fds[0], SOL_SOCKET, SO_SNDBUF, &sndbuf, sizeof(sndbuf));
  std::string payload(1 << 20, '\0');
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>('a' + i % 26);
  }
  std::atomic<bool> done{false};
  std::thread sender([&] {
    obs::detail::send_all(fds[0], payload);
    ::shutdown(fds[0], SHUT_WR);
    done.store(true, std::memory_order_relaxed);
  });
  const pthread_t sender_h = sender.native_handle();
  std::string got;
  char buf[1024];
  std::size_t since_sleep = 0;
  for (;;) {
    if (!done.load(std::memory_order_relaxed)) pthread_kill(sender_h, SIGUSR1);
    const ssize_t n = ::recv(fds[1], buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // 0 = sender shut down after a complete send_all
    got.append(buf, static_cast<std::size_t>(n));
    // Drain slower than the sender fills, so it spends its time blocked in
    // send() where the signals actually bite.
    since_sleep += static_cast<std::size_t>(n);
    if (since_sleep >= 64 * 1024) {
      since_sleep = 0;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  sender.join();
  ::close(fds[0]);
  ::close(fds[1]);
  EXPECT_EQ(got.size(), payload.size());
  EXPECT_EQ(got, payload);
  EXPECT_GT(g_sigusr1_hits.load(std::memory_order_relaxed), 0);
}

/// read_request must keep reading across EINTR on both poll() and recv():
/// a signal while parked between the two halves of a split request header
/// must not truncate the request (pre-fix the poll error aborted it).
TEST(ObsExporterEintr, ReadRequestReadsAcrossInterruptedPoll) {
  SigusrGuard sig;
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::string req_out;
  std::thread reader([&] { req_out = obs::detail::read_request(fds[1]); });
  const pthread_t reader_h = reader.native_handle();
  const std::string part1 = "GET /metrics HTT";
  const std::string part2 = "P/1.0\r\nHost: x\r\n\r\n";
  ASSERT_EQ(::send(fds[0], part1.data(), part1.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(part1.size()));
  // The reader consumed part1 and is parked in poll() waiting for the rest
  // of the header; interrupt it repeatedly before sending the remainder.
  for (int i = 0; i < 50; ++i) {
    pthread_kill(reader_h, SIGUSR1);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(::send(fds[0], part2.data(), part2.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(part2.size()));
  reader.join();
  ::close(fds[0]);
  ::close(fds[1]);
  EXPECT_EQ(req_out, part1 + part2);
}

/// End to end: a full /metrics scrape survives signals hammering the
/// serving thread mid-response. The response is larger than the socket
/// buffers and the client reads slowly, so the server blocks in send()
/// where an unretried EINTR would cut the body short of Content-Length.
TEST(ObsExporterEintr, ScrapeSurvivesInterruptedWrite) {
  SigusrGuard sig;
  MetricsRegistry reg;
  for (int i = 0; i < 4000; ++i) {
    reg.counter("obs_eintr_padding_counter_number_" + std::to_string(i),
                "padding to outgrow the socket buffers")
        .add(static_cast<std::uint64_t>(i));
  }
  MetricsExporter exp(reg);
  exp.start(0);  // the serving thread inherits an unblocked SIGUSR1 mask
  ASSERT_NE(exp.port(), 0);
  // Block SIGUSR1 in this thread so the process-directed kills below are
  // delivered to the serving thread (the only unblocked candidate).
  sigset_t set, oldmask;
  sigemptyset(&set);
  sigaddset(&set, SIGUSR1);
  pthread_sigmask(SIG_BLOCK, &set, &oldmask);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  const int rcvbuf = 4096;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(exp.port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const std::string req = "GET /metrics HTTP/1.0\r\nHost: x\r\n\r\n";
  ASSERT_EQ(::send(fd, req.data(), req.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(req.size()));
  std::string resp;
  char buf[512];
  for (;;) {
    ::kill(::getpid(), SIGUSR1);
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    resp.append(buf, static_cast<std::size_t>(n));
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  ::close(fd);
  pthread_sigmask(SIG_SETMASK, &oldmask, nullptr);
  exp.stop();

  const std::size_t hdr_end = resp.find("\r\n\r\n");
  ASSERT_NE(hdr_end, std::string::npos) << "no complete header in response";
  const std::size_t cl_pos = resp.find("Content-Length: ");
  ASSERT_NE(cl_pos, std::string::npos);
  const std::size_t declared = std::stoull(resp.substr(cl_pos + 16));
  EXPECT_EQ(resp.size() - (hdr_end + 4), declared)
      << "body truncated: an EINTR mid-send aborted the response";
  EXPECT_NE(resp.find("obs_eintr_padding_counter_number_3999"),
            std::string::npos);
}

/// Acceptance criterion: scraping /metrics while an engine ingests at full
/// rate returns live counters WITHOUT quiescing -- ingestion keeps making
/// progress between scrapes and epochs() stays untouched by the scrape.
TEST(ObsExporter, ScrapesLiveEngineWithoutQuiescing) {
  MetricsRegistry reg;
  EngineConfig cfg;
  cfg.workers = 2;
  cfg.producers = 1;
  cfg.metrics = &reg;
  HhhEngine eng(cfg);
  eng.start();

  MetricsExporter exp(reg, &TraceRing::global());
  exp.start(0);

  std::atomic<bool> stop{false};
  std::thread producer([&] {
    HhhEngine::Producer& p = eng.producer(0);
    Xoroshiro128 rng(7);
    while (!stop.load(std::memory_order_relaxed)) {
      for (int i = 0; i < 512; ++i) p.ingest(Key128{rng(), rng()});
    }
    p.flush();
  });

  std::uint64_t last_offered = 0;
  for (int scrape = 0; scrape < 5; ++scrape) {
    const std::string body = obs::http_get_local(exp.port(), "/metrics");
    ASSERT_NE(body.find("200 OK"), std::string::npos);
    EXPECT_NE(body.find("rhhh_engine_offered"), std::string::npos);
    EXPECT_NE(body.find("rhhh_engine_push_batch_ns"), std::string::npos);
    const std::uint64_t now_offered = eng.producer(0).offered();
    EXPECT_GE(now_offered, last_offered);
    last_offered = now_offered;
  }
  EXPECT_EQ(eng.epochs(), 0u) << "a scrape must never force an epoch quiesce";
  EXPECT_GT(last_offered, 0u) << "ingestion ran concurrently with scrapes";

  stop.store(true, std::memory_order_relaxed);
  producer.join();
  exp.stop();
  eng.stop();
  // After stop + flush the conservation identity is exact.
  EXPECT_EQ(static_cast<std::uint64_t>(reg.value("rhhh_engine_offered")),
            static_cast<std::uint64_t>(reg.value("rhhh_engine_consumed")) +
                static_cast<std::uint64_t>(reg.value("rhhh_engine_dropped")));
}

/// Engine destruction unregisters its `this`-capturing samplers; the
/// registry-owned histograms/gauges stay (cumulative across engines).
TEST(ObsEngineMetrics, DestructorUnregistersEngineOwnedSamplers) {
  MetricsRegistry reg;
  {
    EngineConfig cfg;
    cfg.workers = 1;
    cfg.producers = 1;
    cfg.metrics = &reg;
    HhhEngine eng(cfg);
    EXPECT_TRUE(reg.has("rhhh_engine_offered"));
    EXPECT_TRUE(reg.has("rhhh_engine_ring_occupancy{ring=\"p0w0\"}"));
  }
  EXPECT_FALSE(reg.has("rhhh_engine_offered"))
      << "per-engine gauge_fns must not dangle past the engine";
  EXPECT_FALSE(reg.has("rhhh_engine_ring_occupancy{ring=\"p0w0\"}"));
  EXPECT_TRUE(reg.has("rhhh_engine_push_batch_ns"))
      << "registry-owned instruments survive the engine";
  // A telemetry=off engine registers nothing.
  MetricsRegistry quiet;
  EngineConfig off;
  off.workers = 1;
  off.producers = 1;
  off.telemetry = false;
  off.metrics = &quiet;
  const HhhEngine dark(off);
  EXPECT_EQ(quiet.size(), 0u);
}

}  // namespace
}  // namespace rhhh
