// Telemetry layer tests (src/obs/): instrument semantics (sharded counters,
// gauges, log-bucketed histograms), registry behavior (idempotent
// registration, kind/name validation, both expositions), the TraceRing's
// wrap-around/ordering contract, and the exporter acceptance criterion --
// `GET /metrics` against a live engine returns Prometheus text while
// ingestion keeps running at full rate (no quiesce).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <pthread.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "obs/exporter.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_ring.hpp"
#include "util/random.hpp"

namespace rhhh {
namespace {

using obs::MetricsExporter;
using obs::MetricsRegistry;
using obs::TraceEvent;
using obs::TraceRing;

// --------------------------------------------------------- instruments ----

TEST(ObsCounter, AddsFromManyThreadsSumExactly) {
  MetricsRegistry reg;
  obs::Counter& c = reg.counter("obs_test_adds_total");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPer = 50000;
  std::vector<std::thread> ts;
  ts.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPer; ++i) c.inc();
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(c.value(), kThreads * kPer);
}

TEST(ObsGauge, SetAddValue) {
  MetricsRegistry reg;
  obs::Gauge& g = reg.gauge("obs_test_depth");
  EXPECT_EQ(g.value(), 0);
  g.set(42);
  EXPECT_EQ(g.value(), 42);
  g.add(-50);
  EXPECT_EQ(g.value(), -8);
}

TEST(ObsHistogram, SnapshotFoldsAllShards) {
  MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("obs_test_latency_ns");
  // Record from several threads so multiple shard slots are exercised.
  constexpr int kThreads = 4;
  constexpr int kPer = 10000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&h, t] {
      for (int i = 0; i < kPer; ++i) {
        h.record(static_cast<std::uint64_t>(t) * 1000 + 100);
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPer);
  const LogHistogram snap = h.snapshot();
  EXPECT_EQ(snap.count(), h.count());
  EXPECT_GE(snap.max(), 3000u);  // bucket-edge resolution, >= largest sample
  EXPECT_GT(snap.quantile(0.5), 0.0);
  // sum folds exactly (relaxed adds, but all joined before the snapshot).
  EXPECT_DOUBLE_EQ(snap.mean() * static_cast<double>(snap.count()),
                   10000.0 * (100 + 1100 + 2100 + 3100));
}

TEST(ObsHistogram, RecordSinceAndScopedTimer) {
  MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("obs_test_scoped_ns");
  { const obs::ScopedTimer t(&h); }
  { const obs::ScopedTimer t(nullptr); }  // telemetry off: must be a no-op
  h.record_since(obs::now_ns());          // ~0 elapsed, still one sample
  EXPECT_EQ(h.count(), 2u);
}

// ------------------------------------------------------------ registry ----

TEST(ObsRegistry, RegistrationIsIdempotent) {
  MetricsRegistry reg;
  obs::Counter& a = reg.counter("obs_test_idem_total", "help text");
  obs::Counter& b = reg.counter("obs_test_idem_total");
  EXPECT_EQ(&a, &b) << "same name must return the same instrument";
  EXPECT_EQ(reg.size(), 1u);
  a.add(3);
  EXPECT_EQ(reg.value("obs_test_idem_total"), 3.0);
}

TEST(ObsRegistry, KindMismatchAndBadNamesThrow) {
  MetricsRegistry reg;
  reg.counter("obs_test_kind_total");
  EXPECT_THROW(reg.gauge("obs_test_kind_total"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("obs_test_kind_total"), std::invalid_argument);
  // Built via std::string so the lint's literal `counter("")` rule (which
  // this throw is the runtime backstop for) doesn't flag its own test.
  EXPECT_THROW(reg.counter(std::string()), std::invalid_argument);
  EXPECT_THROW(reg.counter("1starts_with_digit"), std::invalid_argument);
  EXPECT_THROW(reg.counter("has space"), std::invalid_argument);
  EXPECT_THROW(reg.counter("unclosed{label=\"v\""), std::invalid_argument);
  // Labeled series names are valid.
  EXPECT_NO_THROW(reg.counter("obs_test_ring{ring=\"p0w1\"}"));
}

TEST(ObsRegistry, UnregisterRemovesAndGaugeFnLastWriterWins) {
  MetricsRegistry reg;
  reg.gauge_fn("obs_test_fn", [] { return 1.0; });
  reg.gauge_fn("obs_test_fn", [] { return 7.0; });
  EXPECT_EQ(reg.value("obs_test_fn"), 7.0);
  EXPECT_TRUE(reg.unregister("obs_test_fn"));
  EXPECT_FALSE(reg.unregister("obs_test_fn"));
  EXPECT_FALSE(reg.has("obs_test_fn"));
  EXPECT_EQ(reg.value("obs_test_fn"), 0.0);
}

TEST(ObsRegistry, PrometheusRendering) {
  MetricsRegistry reg;
  reg.counter("obs_req_total", "requests").add(5);
  reg.gauge("obs_depth", "queue depth").set(-3);
  reg.counter("obs_hits{path=\"a\"}", "hits by path").add(1);
  reg.counter("obs_hits{path=\"b\"}").add(2);
  obs::Histogram& h = reg.histogram("obs_lat_ns", "latency");
  h.record(100);
  h.record(200);
  const std::string text = reg.render_prometheus();
  EXPECT_NE(text.find("# TYPE obs_req_total counter"), std::string::npos);
  EXPECT_NE(text.find("# HELP obs_req_total requests"), std::string::npos);
  EXPECT_NE(text.find("obs_req_total 5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE obs_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("obs_depth -3"), std::string::npos);
  EXPECT_NE(text.find("obs_hits{path=\"a\"} 1"), std::string::npos);
  EXPECT_NE(text.find("obs_hits{path=\"b\"} 2"), std::string::npos);
  // TYPE emitted once per family even with two labeled series.
  std::size_t n = 0;
  for (std::size_t p = text.find("# TYPE obs_hits"); p != std::string::npos;
       p = text.find("# TYPE obs_hits", p + 1)) {
    ++n;
  }
  EXPECT_EQ(n, 1u);
  // Histograms render as summaries: quantiles plus _sum/_count.
  EXPECT_NE(text.find("# TYPE obs_lat_ns summary"), std::string::npos);
  EXPECT_NE(text.find("obs_lat_ns{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(text.find("obs_lat_ns{quantile=\"0.99\"}"), std::string::npos);
  EXPECT_NE(text.find("obs_lat_ns_count 2"), std::string::npos);
  EXPECT_NE(text.find("obs_lat_ns_sum 300"), std::string::npos);
}

TEST(ObsRegistry, JsonRendering) {
  MetricsRegistry reg;
  reg.counter("obs_j_total", "with \"quotes\"").add(9);
  reg.histogram("obs_j_ns").record(50);
  const std::string j = reg.render_json();
  EXPECT_EQ(j.front(), '{');
  EXPECT_EQ(j.back(), '}');
  EXPECT_NE(j.find("\"name\":\"obs_j_total\""), std::string::npos);
  EXPECT_NE(j.find("\"kind\":\"counter\""), std::string::npos);
  EXPECT_NE(j.find("\"value\":9"), std::string::npos);
  EXPECT_NE(j.find("\\\"quotes\\\""), std::string::npos) << "help is escaped";
  EXPECT_NE(j.find("\"kind\":\"histogram\""), std::string::npos);
  EXPECT_NE(j.find("\"count\":1"), std::string::npos);
}

// ----------------------------------------------------------- TraceRing ----

TEST(ObsTraceRing, DumpIsSeqOrderedAndWrapKeepsNewest) {
  TraceRing ring(16);  // rounded to 16
  EXPECT_EQ(ring.capacity(), 16u);
  for (std::uint64_t i = 0; i < 40; ++i) {
    ring.record(TraceEvent::kRotate, static_cast<std::int64_t>(i), i, i * 2);
  }
  EXPECT_EQ(ring.recorded(), 40u);
  const std::vector<obs::TraceRecord> d = ring.dump();
  ASSERT_EQ(d.size(), 16u) << "wrap keeps exactly the newest capacity events";
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(d[i].seq, 24 + i);  // 40 - 16 .. 39, oldest first
    EXPECT_EQ(d[i].arg0, d[i].seq);
    EXPECT_EQ(d[i].arg1, d[i].seq * 2);
    EXPECT_EQ(d[i].event, TraceEvent::kRotate);
  }
}

TEST(ObsTraceRing, ToStringCoversEveryEvent) {
  EXPECT_STREQ(to_string(TraceEvent::kRotate), "rotate");
  EXPECT_STREQ(to_string(TraceEvent::kQuiesce), "quiesce");
  EXPECT_STREQ(to_string(TraceEvent::kSeal), "seal");
  EXPECT_STREQ(to_string(TraceEvent::kArchive), "archive");
  EXPECT_STREQ(to_string(TraceEvent::kArchiveDrop), "archive_drop");
  EXPECT_STREQ(to_string(TraceEvent::kArchiveError), "archive_error");
  EXPECT_STREQ(to_string(TraceEvent::kSegmentRoll), "segment_roll");
  EXPECT_STREQ(to_string(TraceEvent::kCompaction), "compaction");
  EXPECT_STREQ(to_string(TraceEvent::kSnapshot), "snapshot");
  EXPECT_STREQ(to_string(TraceEvent::kScrape), "scrape");
}

// ------------------------------------------------------------ exporter ----

/// Every route answers on an ephemeral port; stop() is idempotent.
TEST(ObsExporter, ServesAllRoutes) {
  MetricsRegistry reg;
  reg.counter("obs_exp_total", "served").add(11);
  TraceRing ring(32);
  ring.record(TraceEvent::kScrape, 123, 1, 0);
  MetricsExporter exp(reg, &ring);
  exp.start(0);
  ASSERT_TRUE(exp.running());
  ASSERT_NE(exp.port(), 0);

  const std::string metrics = obs::http_get_local(exp.port(), "/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("obs_exp_total 11"), std::string::npos);

  const std::string json = obs::http_get_local(exp.port(), "/metrics.json");
  EXPECT_NE(json.find("\"obs_exp_total\""), std::string::npos);

  const std::string trace = obs::http_get_local(exp.port(), "/trace");
  EXPECT_NE(trace.find("\"scrape\""), std::string::npos);

  const std::string health = obs::http_get_local(exp.port(), "/healthz");
  EXPECT_NE(health.find("ok"), std::string::npos);

  const std::string missing = obs::http_get_local(exp.port(), "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos);

  EXPECT_GE(exp.scrapes(), 5u);
  exp.stop();
  EXPECT_FALSE(exp.running());
  exp.stop();  // idempotent
}

// ------------------------------------------------- EINTR resilience ----

std::atomic<int> g_sigusr1_hits{0};
extern "C" void obs_test_on_sigusr1(int) {
  g_sigusr1_hits.fetch_add(1, std::memory_order_relaxed);
}

/// Installs a SIGUSR1 handler WITHOUT SA_RESTART -- blocking syscalls in
/// the signaled thread return EINTR instead of resuming transparently,
/// which is exactly the condition the exporter's retry loops must survive.
/// Restores the previous disposition on scope exit.
struct SigusrGuard {
  struct sigaction old {};
  SigusrGuard() {
    struct sigaction sa {};
    sa.sa_handler = obs_test_on_sigusr1;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;  // deliberately NOT SA_RESTART
    sigaction(SIGUSR1, &sa, &old);
  }
  ~SigusrGuard() { sigaction(SIGUSR1, &old, nullptr); }
};

/// send_all must deliver the whole payload even when signals interrupt the
/// blocked send() mid-transfer (pre-fix it treated EINTR as "client went
/// away" and silently truncated the response).
TEST(ObsExporterEintr, SendAllDeliversAcrossInterruptedWrites) {
  SigusrGuard sig;
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // Tiny send buffer: the 1 MiB payload forces send() to block over and
  // over, maximizing the window a signal can land in.
  const int sndbuf = 4096;
  ::setsockopt(fds[0], SOL_SOCKET, SO_SNDBUF, &sndbuf, sizeof(sndbuf));
  std::string payload(1 << 20, '\0');
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>('a' + i % 26);
  }
  std::atomic<bool> done{false};
  std::thread sender([&] {
    obs::detail::send_all(fds[0], payload);
    ::shutdown(fds[0], SHUT_WR);
    done.store(true, std::memory_order_relaxed);
  });
  const pthread_t sender_h = sender.native_handle();
  std::string got;
  char buf[1024];
  std::size_t since_sleep = 0;
  for (;;) {
    if (!done.load(std::memory_order_relaxed)) pthread_kill(sender_h, SIGUSR1);
    const ssize_t n = ::recv(fds[1], buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // 0 = sender shut down after a complete send_all
    got.append(buf, static_cast<std::size_t>(n));
    // Drain slower than the sender fills, so it spends its time blocked in
    // send() where the signals actually bite.
    since_sleep += static_cast<std::size_t>(n);
    if (since_sleep >= 64 * 1024) {
      since_sleep = 0;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  sender.join();
  ::close(fds[0]);
  ::close(fds[1]);
  EXPECT_EQ(got.size(), payload.size());
  EXPECT_EQ(got, payload);
  EXPECT_GT(g_sigusr1_hits.load(std::memory_order_relaxed), 0);
}

/// read_request must keep reading across EINTR on both poll() and recv():
/// a signal while parked between the two halves of a split request header
/// must not truncate the request (pre-fix the poll error aborted it).
TEST(ObsExporterEintr, ReadRequestReadsAcrossInterruptedPoll) {
  SigusrGuard sig;
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::string req_out;
  std::thread reader([&] { req_out = obs::detail::read_request(fds[1]); });
  const pthread_t reader_h = reader.native_handle();
  const std::string part1 = "GET /metrics HTT";
  const std::string part2 = "P/1.0\r\nHost: x\r\n\r\n";
  ASSERT_EQ(::send(fds[0], part1.data(), part1.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(part1.size()));
  // The reader consumed part1 and is parked in poll() waiting for the rest
  // of the header; interrupt it repeatedly before sending the remainder.
  for (int i = 0; i < 50; ++i) {
    pthread_kill(reader_h, SIGUSR1);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(::send(fds[0], part2.data(), part2.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(part2.size()));
  reader.join();
  ::close(fds[0]);
  ::close(fds[1]);
  EXPECT_EQ(req_out, part1 + part2);
}

/// End to end: a full /metrics scrape survives signals hammering the
/// serving thread mid-response. The response is larger than the socket
/// buffers and the client reads slowly, so the server blocks in send()
/// where an unretried EINTR would cut the body short of Content-Length.
TEST(ObsExporterEintr, ScrapeSurvivesInterruptedWrite) {
  SigusrGuard sig;
  MetricsRegistry reg;
  for (int i = 0; i < 4000; ++i) {
    reg.counter("obs_eintr_padding_counter_number_" + std::to_string(i),
                "padding to outgrow the socket buffers")
        .add(static_cast<std::uint64_t>(i));
  }
  MetricsExporter exp(reg);
  exp.start(0);  // the serving thread inherits an unblocked SIGUSR1 mask
  ASSERT_NE(exp.port(), 0);
  // Block SIGUSR1 in this thread so the process-directed kills below are
  // delivered to the serving thread (the only unblocked candidate).
  sigset_t set, oldmask;
  sigemptyset(&set);
  sigaddset(&set, SIGUSR1);
  pthread_sigmask(SIG_BLOCK, &set, &oldmask);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  const int rcvbuf = 4096;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(exp.port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const std::string req = "GET /metrics HTTP/1.0\r\nHost: x\r\n\r\n";
  ASSERT_EQ(::send(fd, req.data(), req.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(req.size()));
  std::string resp;
  char buf[512];
  for (;;) {
    ::kill(::getpid(), SIGUSR1);
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    resp.append(buf, static_cast<std::size_t>(n));
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  ::close(fd);
  pthread_sigmask(SIG_SETMASK, &oldmask, nullptr);
  exp.stop();

  const std::size_t hdr_end = resp.find("\r\n\r\n");
  ASSERT_NE(hdr_end, std::string::npos) << "no complete header in response";
  const std::size_t cl_pos = resp.find("Content-Length: ");
  ASSERT_NE(cl_pos, std::string::npos);
  const std::size_t declared = std::stoull(resp.substr(cl_pos + 16));
  EXPECT_EQ(resp.size() - (hdr_end + 4), declared)
      << "body truncated: an EINTR mid-send aborted the response";
  EXPECT_NE(resp.find("obs_eintr_padding_counter_number_3999"),
            std::string::npos);
}

/// Acceptance criterion: scraping /metrics while an engine ingests at full
/// rate returns live counters WITHOUT quiescing -- ingestion keeps making
/// progress between scrapes and epochs() stays untouched by the scrape.
TEST(ObsExporter, ScrapesLiveEngineWithoutQuiescing) {
  MetricsRegistry reg;
  EngineConfig cfg;
  cfg.workers = 2;
  cfg.producers = 1;
  cfg.metrics = &reg;
  HhhEngine eng(cfg);
  eng.start();

  MetricsExporter exp(reg, &TraceRing::global());
  exp.start(0);

  std::atomic<bool> stop{false};
  std::thread producer([&] {
    HhhEngine::Producer& p = eng.producer(0);
    Xoroshiro128 rng(7);
    while (!stop.load(std::memory_order_relaxed)) {
      for (int i = 0; i < 512; ++i) p.ingest(Key128{rng(), rng()});
    }
    p.flush();
  });

  std::uint64_t last_offered = 0;
  for (int scrape = 0; scrape < 5; ++scrape) {
    const std::string body = obs::http_get_local(exp.port(), "/metrics");
    ASSERT_NE(body.find("200 OK"), std::string::npos);
    EXPECT_NE(body.find("rhhh_engine_offered"), std::string::npos);
    EXPECT_NE(body.find("rhhh_engine_push_batch_ns"), std::string::npos);
    const std::uint64_t now_offered = eng.producer(0).offered();
    EXPECT_GE(now_offered, last_offered);
    last_offered = now_offered;
  }
  EXPECT_EQ(eng.epochs(), 0u) << "a scrape must never force an epoch quiesce";
  EXPECT_GT(last_offered, 0u) << "ingestion ran concurrently with scrapes";

  stop.store(true, std::memory_order_relaxed);
  producer.join();
  exp.stop();
  eng.stop();
  // After stop + flush the conservation identity is exact.
  EXPECT_EQ(static_cast<std::uint64_t>(reg.value("rhhh_engine_offered")),
            static_cast<std::uint64_t>(reg.value("rhhh_engine_consumed")) +
                static_cast<std::uint64_t>(reg.value("rhhh_engine_dropped")));
}

/// Engine destruction unregisters its `this`-capturing samplers; the
/// registry-owned histograms/gauges stay (cumulative across engines).
TEST(ObsEngineMetrics, DestructorUnregistersEngineOwnedSamplers) {
  MetricsRegistry reg;
  {
    EngineConfig cfg;
    cfg.workers = 1;
    cfg.producers = 1;
    cfg.metrics = &reg;
    HhhEngine eng(cfg);
    EXPECT_TRUE(reg.has("rhhh_engine_offered"));
    EXPECT_TRUE(reg.has("rhhh_engine_ring_occupancy{ring=\"p0w0\"}"));
  }
  EXPECT_FALSE(reg.has("rhhh_engine_offered"))
      << "per-engine gauge_fns must not dangle past the engine";
  EXPECT_FALSE(reg.has("rhhh_engine_ring_occupancy{ring=\"p0w0\"}"));
  EXPECT_TRUE(reg.has("rhhh_engine_push_batch_ns"))
      << "registry-owned instruments survive the engine";
  // A telemetry=off engine registers nothing.
  MetricsRegistry quiet;
  EngineConfig off;
  off.workers = 1;
  off.producers = 1;
  off.telemetry = false;
  off.metrics = &quiet;
  const HhhEngine dark(off);
  EXPECT_EQ(quiet.size(), 0u);
}

}  // namespace
}  // namespace rhhh
