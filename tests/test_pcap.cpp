// Tests for libpcap file interop: golden global-header bytes, round trips
// through build_frame/parse_frame, endianness handling, malformed files and
// non-IPv4 frame skipping.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <vector>

#include "net/frame.hpp"
#include "net/ipv4.hpp"
#include "net/pcap.hpp"
#include "trace/trace_gen.hpp"

namespace rhhh {
namespace {

class PcapTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/rhhh_pcap_test.pcap";
  void TearDown() override { std::remove(path_.c_str()); }

  [[nodiscard]] std::vector<std::uint8_t> file_bytes() const {
    std::ifstream in(path_, std::ios::binary);
    return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
  }
  void write_bytes(const std::vector<std::uint8_t>& bytes) const {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }
};

TEST_F(PcapTest, GoldenGlobalHeader) {
  { PcapWriter w(path_); }
  const auto bytes = file_bytes();
  ASSERT_EQ(bytes.size(), 24u);
  // Little-endian magic 0xa1b2c3d4, version 2.4, DLT_EN10MB = 1.
  EXPECT_EQ(bytes[0], 0xd4);
  EXPECT_EQ(bytes[1], 0xc3);
  EXPECT_EQ(bytes[2], 0xb2);
  EXPECT_EQ(bytes[3], 0xa1);
  EXPECT_EQ(bytes[4], 2);   // major
  EXPECT_EQ(bytes[6], 4);   // minor
  EXPECT_EQ(bytes[20], 1);  // link type
}

TEST_F(PcapTest, RoundTripPackets) {
  TraceGenerator gen(trace_preset("sanjose13"));
  const auto packets = gen.generate(500);
  {
    PcapWriter w(path_);
    for (const auto& p : packets) w.write(p);
    EXPECT_EQ(w.written(), 500u);
  }
  const auto back = PcapReader::read_all(path_);
  ASSERT_EQ(back.size(), 500u);
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back[i].src_ip, packets[i].src_ip);
    EXPECT_EQ(back[i].dst_ip, packets[i].dst_ip);
    EXPECT_EQ(back[i].proto, packets[i].proto);
    if (packets[i].proto != static_cast<std::uint8_t>(IpProto::kIcmp)) {
      EXPECT_EQ(back[i].src_port, packets[i].src_port);
      EXPECT_EQ(back[i].dst_port, packets[i].dst_port);
    }
  }
}

TEST_F(PcapTest, ReaderReportsFlags) {
  {
    PcapWriter w(path_);
    PacketRecord p;
    p.src_ip = ipv4(1, 2, 3, 4);
    w.write(p);
  }
  PcapReader r(path_);
  EXPECT_FALSE(r.swapped());
  EXPECT_FALSE(r.nanosecond());
  EXPECT_TRUE(r.next().has_value());
  EXPECT_FALSE(r.next().has_value());
  EXPECT_EQ(r.frames_read(), 1u);
}

TEST_F(PcapTest, ReadsSwappedEndianHeaders) {
  // Hand-build a big-endian header + one record.
  PacketRecord p;
  p.src_ip = ipv4(9, 8, 7, 6);
  p.dst_ip = ipv4(1, 1, 1, 1);
  p.proto = static_cast<std::uint8_t>(IpProto::kUdp);
  const auto frame = build_frame(p);
  std::vector<std::uint8_t> bytes;
  auto be32 = [&](std::uint32_t v) {
    bytes.push_back(static_cast<std::uint8_t>(v >> 24));
    bytes.push_back(static_cast<std::uint8_t>(v >> 16));
    bytes.push_back(static_cast<std::uint8_t>(v >> 8));
    bytes.push_back(static_cast<std::uint8_t>(v));
  };
  be32(kPcapMagicUsec);
  bytes.push_back(0);
  bytes.push_back(2);  // version 2.4 big-endian
  bytes.push_back(0);
  bytes.push_back(4);
  be32(0);
  be32(0);
  be32(65535);
  be32(kPcapDltEthernet);
  be32(0);  // ts_sec
  be32(0);  // ts_usec
  be32(static_cast<std::uint32_t>(frame.size()));
  be32(static_cast<std::uint32_t>(frame.size()));
  bytes.insert(bytes.end(), frame.begin(), frame.end());
  write_bytes(bytes);

  PcapReader r(path_);
  EXPECT_TRUE(r.swapped());
  const auto rec = r.next();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->src_ip, p.src_ip);
}

TEST_F(PcapTest, SkipsNonIpv4Frames) {
  {
    PcapWriter w(path_);
    // An ARP-ish frame (ethertype 0x0806): must be skipped by next().
    std::vector<std::uint8_t> arp(60, 0);
    arp[12] = 0x08;
    arp[13] = 0x06;
    w.write_frame(arp, 0, 0);
    PacketRecord p;
    p.src_ip = ipv4(4, 4, 4, 4);
    w.write(p);
  }
  PcapReader r(path_);
  const auto rec = r.next();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->src_ip, ipv4(4, 4, 4, 4));
  EXPECT_EQ(r.frames_read(), 2u);
}

TEST_F(PcapTest, RejectsBadMagic) {
  write_bytes(std::vector<std::uint8_t>(24, 0x42));
  EXPECT_THROW(PcapReader r(path_), std::runtime_error);
}

TEST_F(PcapTest, RejectsTruncatedHeader) {
  write_bytes(std::vector<std::uint8_t>(10, 0));
  EXPECT_THROW(PcapReader r(path_), std::runtime_error);
}

TEST_F(PcapTest, RejectsNonEthernetLinkType) {
  std::vector<std::uint8_t> bytes(24, 0);
  bytes[0] = 0xd4;
  bytes[1] = 0xc3;
  bytes[2] = 0xb2;
  bytes[3] = 0xa1;
  bytes[20] = 101;  // DLT_RAW
  write_bytes(bytes);
  EXPECT_THROW(PcapReader r(path_), std::runtime_error);
}

TEST_F(PcapTest, ThrowsOnTruncatedRecordBody) {
  {
    PcapWriter w(path_);
    PacketRecord p;
    p.src_ip = ipv4(1, 2, 3, 4);
    w.write(p);
  }
  auto bytes = file_bytes();
  bytes.resize(bytes.size() - 5);
  write_bytes(bytes);
  PcapReader r(path_);
  EXPECT_THROW((void)r.next(), std::runtime_error);
}

TEST_F(PcapTest, HhhPipelineFromPcap) {
  // End to end: trace -> pcap -> reader -> exact HHH, the real-capture
  // ingestion path.
  {
    PcapWriter w(path_);
    TraceGenerator gen(trace_preset("chicago15"));
    for (int i = 0; i < 2000; ++i) w.write(gen.next());
  }
  const auto packets = PcapReader::read_all(path_);
  EXPECT_EQ(packets.size(), 2000u);
}

}  // namespace
}  // namespace rhhh
