// Tests for the evaluation layer: exact ground truth (Definition 8) on
// hand-crafted streams, conditioned-frequency queries (Definition 6), and
// the three paper metrics, including end-to-end integration with the
// algorithms (RHHH's guarantees checked empirically past psi).
#include <gtest/gtest.h>

#include <vector>

#include "eval/ground_truth.hpp"
#include "eval/metrics.hpp"
#include "hhh/lattice_hhh.hpp"
#include "net/ipv4.hpp"
#include "trace/trace_gen.hpp"

namespace rhhh {
namespace {

// --------------------------------------------------------- ground truth ----

TEST(GroundTruth, EmptyStream) {
  const Hierarchy h = Hierarchy::ipv4_1d(Granularity::kByte);
  ExactHhh truth(h);
  EXPECT_TRUE(truth.compute(0.1).empty());
  EXPECT_TRUE(truth.heavy_prefixes(0.1).empty());
}

TEST(GroundTruth, SingleKeyDominates) {
  const Hierarchy h = Hierarchy::ipv4_1d(Granularity::kByte);
  ExactHhh truth(h);
  const Key128 k = Key128::from_u32(ipv4(8, 8, 8, 8));
  truth.add(k, 90);
  truth.add(Key128::from_u32(ipv4(1, 1, 1, 1)), 10);
  const HhhSet set = truth.compute(0.5);
  // Only the fully-specified 8.8.8.8 qualifies; every ancestor's conditioned
  // frequency drops to 10 once it is selected.
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(h.format(set[0].prefix), "8.8.8.8");
  EXPECT_DOUBLE_EQ(set[0].f_est, 90.0);
}

TEST(GroundTruth, AggregateOnlyHhh) {
  // No single item is heavy but their /16 aggregate is (the DDoS pattern the
  // paper motivates in the introduction).
  const Hierarchy h = Hierarchy::ipv4_1d(Granularity::kByte);
  ExactHhh truth(h);
  for (int i = 0; i < 60; ++i) {
    truth.add(Key128::from_u32(ipv4(66, 66, static_cast<std::uint8_t>(i), 1)), 1);
  }
  for (int i = 0; i < 40; ++i) {
    truth.add(Key128::from_u32(ipv4(static_cast<std::uint8_t>(100 + i), 1, 1, 1)), 1);
  }
  const HhhSet set = truth.compute(0.5);
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(h.format(set[0].prefix), "66.66.*.*");
  EXPECT_DOUBLE_EQ(set[0].c_hat, 60.0);
}

TEST(GroundTruth, LevelConditioningWithinLevel) {
  // Two sibling /24s each heavy, their /16 parent must NOT be an HHH after
  // both are selected (its conditioned count is 0).
  const Hierarchy h = Hierarchy::ipv4_1d(Granularity::kByte);
  ExactHhh truth(h);
  for (int i = 0; i < 50; ++i) {
    truth.add(Key128::from_u32(ipv4(9, 9, 1, static_cast<std::uint8_t>(i))), 1);
    truth.add(Key128::from_u32(ipv4(9, 9, 2, static_cast<std::uint8_t>(i))), 1);
  }
  const HhhSet set = truth.compute(0.3);
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(
      Prefix{h.node_index(1), h.mask_key(h.node_index(1),
                                         Key128::from_u32(ipv4(9, 9, 1, 0)))}));
  EXPECT_TRUE(set.contains(
      Prefix{h.node_index(1), h.mask_key(h.node_index(1),
                                         Key128::from_u32(ipv4(9, 9, 2, 0)))}));
}

TEST(GroundTruth, TwoDimensionalLattice) {
  const Hierarchy h = Hierarchy::ipv4_2d(Granularity::kByte);
  ExactHhh truth(h);
  // 50 packets from one /16 (distinct /24s, fully scattered dsts) and 50
  // packets to one dst address from fully scattered sources -- so the only
  // heavy aggregates are (10.1.*.*, *) and (*, 99.99.99.99).
  for (int i = 0; i < 50; ++i) {
    truth.add(Key128::from_pair(ipv4(10, 1, static_cast<std::uint8_t>(i), 1),
                                ipv4(static_cast<std::uint8_t>(60 + i),
                                     static_cast<std::uint8_t>(i), 1, 1)));
    truth.add(Key128::from_pair(ipv4(static_cast<std::uint8_t>(i), 50, 1, 1),
                                ipv4(99, 99, 99, 99)));
  }
  const HhhSet set = truth.compute(0.4);
  // Expected: (10.1.*, *) from the first pattern and (*, 99.99.99.99).
  bool src_agg = false;
  bool dst_item = false;
  for (const HhhCandidate& c : set) {
    const std::string s = h.format(c.prefix);
    if (s == "(10.1.*.*, *)") src_agg = true;
    if (s == "(*, 99.99.99.99)") dst_item = true;
  }
  EXPECT_TRUE(src_agg);
  EXPECT_TRUE(dst_item);
}

TEST(GroundTruth, FrequenciesBatch) {
  const Hierarchy h = Hierarchy::ipv4_1d(Granularity::kByte);
  ExactHhh truth(h);
  truth.add(Key128::from_u32(ipv4(1, 2, 3, 4)), 7);
  truth.add(Key128::from_u32(ipv4(1, 2, 9, 9)), 5);
  truth.add(Key128::from_u32(ipv4(1, 3, 0, 0)), 2);
  const std::vector<Prefix> qs = {
      {h.node_index(0), Key128::from_u32(ipv4(1, 2, 3, 4))},
      {h.node_index(2), h.mask_key(h.node_index(2), Key128::from_u32(ipv4(1, 2, 0, 0)))},
      {h.node_index(3), h.mask_key(h.node_index(3), Key128::from_u32(ipv4(1, 0, 0, 0)))},
      {h.node_index(4), Key128{}},
      {h.node_index(0), Key128::from_u32(ipv4(66, 66, 66, 66))},  // absent
  };
  const auto f = truth.frequencies(qs);
  EXPECT_EQ(f[0], 7u);
  EXPECT_EQ(f[1], 12u);
  EXPECT_EQ(f[2], 14u);
  EXPECT_EQ(f[3], 14u);
  EXPECT_EQ(f[4], 0u);
}

TEST(GroundTruth, ConditionedMatchesDefinitionSix) {
  const Hierarchy h = Hierarchy::ipv4_1d(Granularity::kByte);
  ExactHhh truth(h);
  // 101.102.* has 102, 101.103.* has 6 (the Section 3.1 example).
  for (int i = 0; i < 102; ++i) {
    truth.add(Key128::from_u32(ipv4(101, 102, static_cast<std::uint8_t>(i), 1)));
  }
  for (int i = 0; i < 6; ++i) {
    truth.add(Key128::from_u32(ipv4(101, 103, static_cast<std::uint8_t>(i), 1)));
  }
  HhhSet P(h.size());
  const Prefix p2{h.node_index(2),
                  h.mask_key(h.node_index(2), Key128::from_u32(ipv4(101, 102, 0, 0)))};
  P.add(HhhCandidate{p2, 102, 102, 102, 102});
  const Prefix p1{h.node_index(3),
                  h.mask_key(h.node_index(3), Key128::from_u32(ipv4(101, 0, 0, 0)))};
  const auto c = truth.conditioned(std::vector<Prefix>{p1}, P);
  EXPECT_EQ(c[0], 6u);  // 108 - 102: the paper's worked numbers
  const auto c_empty = truth.conditioned(std::vector<Prefix>{p1}, HhhSet(h.size()));
  EXPECT_EQ(c_empty[0], 108u);
}

TEST(GroundTruth, HeavyPrefixesFindsAllLevels) {
  const Hierarchy h = Hierarchy::ipv4_1d(Granularity::kByte);
  ExactHhh truth(h);
  truth.add(Key128::from_u32(ipv4(7, 7, 7, 7)), 100);
  const auto heavy = truth.heavy_prefixes(0.5);
  // 7.7.7.7 and each of its 4 ancestors (incl. *) all have f = 100.
  EXPECT_EQ(heavy.size(), 5u);
}

TEST(GroundTruth, ClearResets) {
  const Hierarchy h = Hierarchy::ipv4_1d(Granularity::kByte);
  ExactHhh truth(h);
  truth.add(Key128::from_u32(1), 50);
  truth.clear();
  EXPECT_EQ(truth.stream_length(), 0u);
  EXPECT_TRUE(truth.compute(0.1).empty());
}

// -------------------------------------------------------------- metrics ----

TEST(Metrics, AccuracyCountsLargeErrors) {
  const Hierarchy h = Hierarchy::ipv4_1d(Granularity::kByte);
  ExactHhh truth(h);
  const Key128 k = Key128::from_u32(ipv4(5, 5, 5, 5));
  truth.add(k, 1000);
  HhhSet P(h.size());
  // Estimate off by 5 (within eps*N = 10) and another off by 500 (outside).
  P.add(HhhCandidate{{h.node_index(0), k}, 1005, 1000, 1005, 1005});
  P.add(HhhCandidate{{h.node_index(2), h.mask_key(h.node_index(2), k)}, 1500, 900,
                     1500, 1500});
  const AccuracyReport rep = accuracy_errors(truth, P, 0.01);
  EXPECT_EQ(rep.candidates, 2u);
  EXPECT_EQ(rep.errors, 1u);
  EXPECT_DOUBLE_EQ(rep.ratio(), 0.5);
}

TEST(Metrics, CoverageDetectsMissedAggregate) {
  const Hierarchy h = Hierarchy::ipv4_1d(Granularity::kByte);
  ExactHhh truth(h);
  for (int i = 0; i < 100; ++i) {
    truth.add(Key128::from_u32(ipv4(42, 42, static_cast<std::uint8_t>(i), 1)));
  }
  // Empty returned set: the /16 aggregate (and its ancestors) are missed.
  const CoverageReport miss = coverage_errors(truth, HhhSet(h.size()), 0.5);
  EXPECT_GT(miss.candidates, 0u);
  EXPECT_EQ(miss.misses, miss.candidates);
  // Returning the /16 fixes coverage: remaining heavy ancestors have
  // conditioned frequency 0.
  HhhSet P(h.size());
  P.add(HhhCandidate{{h.node_index(2), h.mask_key(h.node_index(2),
                                                  Key128::from_u32(ipv4(42, 42, 0, 0)))},
                     100, 100, 100, 100});
  const CoverageReport ok = coverage_errors(truth, P, 0.5);
  EXPECT_EQ(ok.misses, 0u);
}

TEST(Metrics, FalsePositiveRatioAndRecall) {
  const Hierarchy h = Hierarchy::ipv4_1d(Granularity::kByte);
  HhhSet exact(h.size());
  const Key128 a = Key128::from_u32(1);
  const Key128 b = Key128::from_u32(2);
  exact.add(HhhCandidate{{h.node_index(0), a}, 1, 1, 1, 1});
  exact.add(HhhCandidate{{h.node_index(0), b}, 1, 1, 1, 1});
  HhhSet returned(h.size());
  returned.add(HhhCandidate{{h.node_index(0), a}, 1, 1, 1, 1});
  returned.add(HhhCandidate{{h.node_index(0), Key128::from_u32(3)}, 1, 1, 1, 1});
  const FalsePositiveReport rep = false_positives(exact, returned);
  EXPECT_EQ(rep.returned, 2u);
  EXPECT_EQ(rep.false_positives, 1u);
  EXPECT_DOUBLE_EQ(rep.ratio(), 0.5);
  EXPECT_EQ(rep.exact_size, 2u);
  EXPECT_EQ(rep.exact_found, 1u);
  EXPECT_DOUBLE_EQ(rep.recall(), 0.5);
}

// --------------------------------------------- end-to-end guarantees ----

/// MST (deterministic) must show zero accuracy and coverage errors at any
/// stream length when its counters are exact for the workload.
TEST(EndToEnd, MstDeterministicGuarantees) {
  const Hierarchy h = Hierarchy::ipv4_2d(Granularity::kByte);
  LatticeParams lp;
  lp.eps = 0.002;
  RhhhSpaceSaving mst(h, LatticeMode::kMst, lp);
  ExactHhh truth(h);
  TraceGenerator gen(trace_preset("chicago15"));
  for (int i = 0; i < 60000; ++i) {
    const Key128 k = h.key_of(gen.next());
    mst.update(k);
    truth.add(k);
  }
  const double theta = 0.03;
  const HhhSet out = mst.output(theta);
  EXPECT_EQ(coverage_errors(truth, out, theta).misses, 0u);
  EXPECT_EQ(accuracy_errors(truth, out, lp.eps).errors, 0u);
}

/// RHHH past its convergence bound: accuracy and coverage error ratios must
/// be small (the Figure 2/3 behaviour), false positives bounded.
TEST(EndToEnd, RhhhGuaranteesPastPsi) {
  const Hierarchy h = Hierarchy::ipv4_1d(Granularity::kByte);  // V = 5: small psi
  LatticeParams lp;
  lp.eps = 0.05;
  lp.delta = 0.1;
  lp.seed = 2024;
  RhhhSpaceSaving alg(h, LatticeMode::kRhhh, lp);
  ExactHhh truth(h);
  TraceGenerator gen(trace_preset("sanjose13"));
  const auto n = static_cast<std::uint64_t>(alg.psi() * 1.5);
  ASSERT_LT(n, 200000u) << "test configuration should keep psi small";
  for (std::uint64_t i = 0; i < n; ++i) {
    const Key128 k = h.key_of(gen.next());
    alg.update(k);
    truth.add(k);
  }
  EXPECT_TRUE(static_cast<double>(alg.stream_length()) > alg.psi());
  const double theta = 0.1;
  const HhhSet out = alg.output(theta);
  const CoverageReport cov = coverage_errors(truth, out, theta);
  EXPECT_EQ(cov.misses, 0u) << "coverage should hold with margin past psi";
  const AccuracyReport acc = accuracy_errors(truth, out, lp.eps);
  EXPECT_LE(acc.ratio(), 0.2);
}

}  // namespace
}  // namespace rhhh
