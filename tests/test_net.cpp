// Tests for the networking substrate: IPv4/IPv6 parsing and formatting
// (round-trip properties), prefix formatting, PacketRecord keys, and raw
// Ethernet/IPv4 frame building + parsing including malformed-input cases.
#include <gtest/gtest.h>

#include <vector>

#include "net/frame.hpp"
#include "net/ipv4.hpp"
#include "net/ipv6.hpp"
#include "net/packet.hpp"
#include "util/random.hpp"

namespace rhhh {
namespace {

// ---------------------------------------------------------------- ipv4 ----

TEST(Ipv4Test, BuildFromOctets) {
  EXPECT_EQ(ipv4(181, 7, 20, 6), 0xB5071406u);
  EXPECT_EQ(ipv4(0, 0, 0, 0), 0u);
  EXPECT_EQ(ipv4(255, 255, 255, 255), 0xffffffffu);
}

TEST(Ipv4Test, ParseValid) {
  EXPECT_EQ(parse_ipv4("181.7.20.6"), ipv4(181, 7, 20, 6));
  EXPECT_EQ(parse_ipv4("0.0.0.0"), 0u);
  EXPECT_EQ(parse_ipv4("255.255.255.255"), 0xffffffffu);
  EXPECT_EQ(parse_ipv4("8.8.8.8"), ipv4(8, 8, 8, 8));
}

TEST(Ipv4Test, ParseRejectsMalformed) {
  EXPECT_FALSE(parse_ipv4(""));
  EXPECT_FALSE(parse_ipv4("1.2.3"));
  EXPECT_FALSE(parse_ipv4("1.2.3.4.5"));
  EXPECT_FALSE(parse_ipv4("256.1.1.1"));
  EXPECT_FALSE(parse_ipv4("1.2.3.x"));
  EXPECT_FALSE(parse_ipv4("1..2.3"));
  EXPECT_FALSE(parse_ipv4("1.2.3.4 "));
  EXPECT_FALSE(parse_ipv4("-1.2.3.4"));
}

TEST(Ipv4Test, FormatRoundTrip) {
  Xoroshiro128 rng(5);
  for (int i = 0; i < 2000; ++i) {
    const Ipv4 a = static_cast<Ipv4>(rng());
    EXPECT_EQ(parse_ipv4(format_ipv4(a)), a);
  }
}

TEST(Ipv4Test, PrefixFormattingByteAligned) {
  const Ipv4 a = ipv4(181, 7, 20, 6);
  EXPECT_EQ(format_ipv4_prefix(a, 0), "*");
  EXPECT_EQ(format_ipv4_prefix(a, 8), "181.*.*.*");
  EXPECT_EQ(format_ipv4_prefix(a, 16), "181.7.*.*");
  EXPECT_EQ(format_ipv4_prefix(a, 24), "181.7.20.*");
  EXPECT_EQ(format_ipv4_prefix(a, 32), "181.7.20.6");
}

TEST(Ipv4Test, PrefixFormattingBitLevel) {
  const Ipv4 a = ipv4(192, 168, 7, 255);
  EXPECT_EQ(format_ipv4_prefix(a, 22), "192.168.4.0/22");
  EXPECT_EQ(format_ipv4_prefix(a, 31), "192.168.7.254/31");
  EXPECT_EQ(format_ipv4_prefix(a, 1), "128.0.0.0/1");
}

// ---------------------------------------------------------------- ipv6 ----

TEST(Ipv6Test, ParseFull) {
  const auto a = parse_ipv6("2001:0db8:0000:0000:0000:0000:0000:0001");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->hi, 0x20010db800000000ull);
  EXPECT_EQ(a->lo, 0x0000000000000001ull);
}

TEST(Ipv6Test, ParseCompressed) {
  const auto a = parse_ipv6("2001:db8::1");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->hi, 0x20010db800000000ull);
  EXPECT_EQ(a->lo, 1ull);
  const auto all_zero = parse_ipv6("::");
  ASSERT_TRUE(all_zero.has_value());
  EXPECT_EQ(*all_zero, (Ipv6{0, 0}));
  const auto loopback = parse_ipv6("::1");
  ASSERT_TRUE(loopback.has_value());
  EXPECT_EQ(loopback->lo, 1u);
  const auto trailing = parse_ipv6("fe80::");
  ASSERT_TRUE(trailing.has_value());
  EXPECT_EQ(trailing->hi, 0xfe80000000000000ull);
}

TEST(Ipv6Test, ParseRejectsMalformed) {
  EXPECT_FALSE(parse_ipv6(""));
  EXPECT_FALSE(parse_ipv6("1:2:3:4:5:6:7"));          // too few, no ::
  EXPECT_FALSE(parse_ipv6("1:2:3:4:5:6:7:8:9"));      // too many
  EXPECT_FALSE(parse_ipv6("1::2::3"));                // two ::
  EXPECT_FALSE(parse_ipv6("1:2:3:4:5:6:7:8::"));      // :: compressing zero
  EXPECT_FALSE(parse_ipv6("12345::"));                // group too wide
  EXPECT_FALSE(parse_ipv6("g::1"));                   // bad hex
}

TEST(Ipv6Test, FormatCanonical) {
  EXPECT_EQ(format_ipv6(Ipv6{0, 0}), "::");
  EXPECT_EQ(format_ipv6(Ipv6{0, 1}), "::1");
  EXPECT_EQ(format_ipv6(Ipv6{0x20010db800000000ull, 1}), "2001:db8::1");
  EXPECT_EQ(format_ipv6(Ipv6{0xfe80000000000000ull, 0}), "fe80::");
  // No run of >= 2 zero groups: no compression.
  EXPECT_EQ(format_ipv6(Ipv6{0x0001000200030004ull, 0x0005000600070008ull}),
            "1:2:3:4:5:6:7:8");
}

TEST(Ipv6Test, FormatPicksLongestZeroRun) {
  // 1:0:0:2:0:0:0:3 -> the later, longer run is compressed.
  const Ipv6 a{0x0001000000000002ull, 0x0000000000000003ull};
  EXPECT_EQ(format_ipv6(a), "1:0:0:2::3");
}

TEST(Ipv6Test, RoundTripRandom) {
  Xoroshiro128 rng(11);
  for (int i = 0; i < 2000; ++i) {
    Ipv6 a{rng(), rng()};
    if (i % 3 == 0) a.hi &= 0xffff0000ffff0000ull;  // force zero groups
    if (i % 4 == 0) a.lo &= 0x0000ffff00000000ull;
    const auto back = parse_ipv6(format_ipv6(a));
    ASSERT_TRUE(back.has_value()) << format_ipv6(a);
    EXPECT_EQ(*back, a) << format_ipv6(a);
  }
}

TEST(Ipv6Test, GroupAccessor) {
  const Ipv6 a{0x0011223344556677ull, 0x8899aabbccddeeffull};
  EXPECT_EQ(a.group(0), 0x0011);
  EXPECT_EQ(a.group(3), 0x6677);
  EXPECT_EQ(a.group(4), 0x8899);
  EXPECT_EQ(a.group(7), 0xeeff);
}

TEST(Ipv6Test, PrefixFormatting) {
  const Ipv6 a{0x20010db8deadbeefull, 0x0123456789abcdefull};
  EXPECT_EQ(format_ipv6_prefix(a, 0), "*");
  EXPECT_EQ(format_ipv6_prefix(a, 32), "2001:db8::/32");
  EXPECT_EQ(format_ipv6_prefix(a, 64), "2001:db8:dead:beef::/64");
  EXPECT_EQ(format_ipv6_prefix(a, 128), format_ipv6(a));
}

// --------------------------------------------------------------- packet ----

TEST(PacketTest, Keys) {
  PacketRecord p;
  p.src_ip = ipv4(10, 0, 0, 1);
  p.dst_ip = ipv4(8, 8, 8, 8);
  EXPECT_EQ(p.src_key().lo, 0x0A000001ull);
  EXPECT_EQ(p.pair_key().lo, 0x0A00000108080808ull);
}

TEST(PacketTest, FiveTupleEquality) {
  PacketRecord p;
  p.src_ip = 1;
  p.dst_ip = 2;
  p.src_port = 3;
  p.dst_port = 4;
  p.proto = 17;
  const FiveTuple a = FiveTuple::of(p);
  FiveTuple b = a;
  EXPECT_EQ(a, b);
  b.dst_port = 5;
  EXPECT_NE(a, b);
  EXPECT_NE(FiveTupleHash{}(a), FiveTupleHash{}(b));
}

// ---------------------------------------------------------------- frame ----

PacketRecord sample_packet(std::uint8_t proto) {
  PacketRecord p;
  p.src_ip = ipv4(181, 7, 20, 6);
  p.dst_ip = ipv4(208, 67, 222, 222);
  p.src_port = 5353;
  p.dst_port = 443;
  p.proto = proto;
  p.length = 96;
  return p;
}

class FrameRoundTrip : public ::testing::TestWithParam<std::uint8_t> {};

TEST_P(FrameRoundTrip, BuildThenParse) {
  const PacketRecord p = sample_packet(GetParam());
  const std::vector<std::uint8_t> f = build_frame(p);
  ASSERT_GE(f.size(), kEthHeaderLen + kIpv4MinHeaderLen);
  const auto parsed = parse_frame(f);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->record.src_ip, p.src_ip);
  EXPECT_EQ(parsed->record.dst_ip, p.dst_ip);
  EXPECT_EQ(parsed->record.proto, p.proto);
  if (GetParam() != static_cast<std::uint8_t>(IpProto::kIcmp)) {
    EXPECT_EQ(parsed->record.src_port, p.src_port);
    EXPECT_EQ(parsed->record.dst_port, p.dst_port);
  } else {
    EXPECT_EQ(parsed->record.src_port, 0);
    EXPECT_EQ(parsed->record.dst_port, 0);
  }
  EXPECT_EQ(parsed->record.length, f.size());
}

INSTANTIATE_TEST_SUITE_P(Protocols, FrameRoundTrip,
                         ::testing::Values(static_cast<std::uint8_t>(IpProto::kUdp),
                                           static_cast<std::uint8_t>(IpProto::kTcp),
                                           static_cast<std::uint8_t>(IpProto::kIcmp)));

TEST(FrameTest, Ipv4HeaderChecksumValid) {
  const auto f = build_frame(sample_packet(static_cast<std::uint8_t>(IpProto::kUdp)));
  // RFC 1071: checksum over a header including its checksum field is 0.
  EXPECT_EQ(internet_checksum({f.data() + kEthHeaderLen, kIpv4MinHeaderLen}), 0);
}

TEST(FrameTest, ChecksumKnownVector) {
  // RFC 1071 example data.
  const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum({data, sizeof data}),
            static_cast<std::uint16_t>(~0xddf2 & 0xffff));
}

TEST(FrameTest, RejectsTruncatedEthernet) {
  const std::vector<std::uint8_t> tiny(10, 0);
  ParseError err{};
  EXPECT_FALSE(parse_frame(tiny, &err));
  EXPECT_EQ(err, ParseError::kTruncatedEthernet);
}

TEST(FrameTest, RejectsNonIpv4EtherType) {
  auto f = build_frame(sample_packet(17));
  f[12] = 0x86;  // IPv6 ethertype
  f[13] = 0xdd;
  ParseError err{};
  EXPECT_FALSE(parse_frame(f, &err));
  EXPECT_EQ(err, ParseError::kNotIpv4);
}

TEST(FrameTest, RejectsBadVersion) {
  auto f = build_frame(sample_packet(17));
  f[kEthHeaderLen] = 0x65;  // version 6, IHL 5
  ParseError err{};
  EXPECT_FALSE(parse_frame(f, &err));
  EXPECT_EQ(err, ParseError::kBadIpv4Version);
}

TEST(FrameTest, RejectsBadIhl) {
  auto f = build_frame(sample_packet(17));
  f[kEthHeaderLen] = 0x4F;  // IHL 15 words = 60 bytes > available
  ParseError err{};
  const auto r = parse_frame({f.data(), kEthHeaderLen + 24}, &err);
  EXPECT_FALSE(r.has_value());
  EXPECT_EQ(err, ParseError::kBadIpv4HeaderLength);
}

TEST(FrameTest, RejectsBadTotalLength) {
  auto f = build_frame(sample_packet(17));
  f[kEthHeaderLen + 2] = 0xff;  // total length 0xff?? far beyond the buffer
  f[kEthHeaderLen + 3] = 0xff;
  ParseError err{};
  EXPECT_FALSE(parse_frame(f, &err));
  EXPECT_EQ(err, ParseError::kBadIpv4TotalLength);
}

TEST(FrameTest, RejectsTruncatedL4) {
  PacketRecord p = sample_packet(static_cast<std::uint8_t>(IpProto::kUdp));
  p.length = 0;  // build_frame clamps to the minimum valid frame
  auto f = build_frame(p);
  // Shrink the IP total length below IP header + UDP header.
  f[kEthHeaderLen + 2] = 0;
  f[kEthHeaderLen + 3] = kIpv4MinHeaderLen + 4;
  ParseError err{};
  EXPECT_FALSE(parse_frame(f, &err));
  EXPECT_EQ(err, ParseError::kTruncatedL4);
}

/// Fuzz: random byte soup must never crash the parser and (rarely) parses.
TEST(FrameTest, FuzzRandomBuffers) {
  Xoroshiro128 rng(21);
  std::vector<std::uint8_t> buf;
  for (int i = 0; i < 5000; ++i) {
    buf.resize(rng.bounded(128));
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng());
    (void)parse_frame(buf);  // must not crash or UB; result irrelevant
  }
}

/// Fuzz: truncating a valid frame at every length never crashes and never
/// mis-parses ports from beyond the buffer.
TEST(FrameTest, TruncationSweep) {
  const auto f = build_frame(sample_packet(static_cast<std::uint8_t>(IpProto::kTcp)));
  for (std::size_t len = 0; len <= f.size(); ++len) {
    (void)parse_frame({f.data(), len});
  }
  SUCCEED();
}

}  // namespace
}  // namespace rhhh
