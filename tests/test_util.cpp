// Unit and property tests for the utility substrate: bit helpers, the RNG,
// Key128, FlatHashMap (including randomized differential tests against
// std::unordered_map) and the SPSC ring (including a producer/consumer
// thread test).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <thread>
#include <unordered_map>
#include <vector>

#include "util/bits.hpp"
#include "util/flat_hash_map.hpp"
#include "util/key128.hpp"
#include "util/random.hpp"
#include "util/spsc_ring.hpp"

namespace rhhh {
namespace {

// ---------------------------------------------------------------- bits ----

TEST(Bits, NextPow2) {
  EXPECT_EQ(next_pow2(0), 1u);
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(4), 4u);
  EXPECT_EQ(next_pow2(1000), 1024u);
  EXPECT_EQ(next_pow2((1ull << 40) + 1), 1ull << 41);
}

TEST(Bits, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(65));
}

TEST(Bits, HighBitsMask) {
  EXPECT_EQ(high_bits_mask64(0), 0u);
  EXPECT_EQ(high_bits_mask64(1), 0x8000000000000000ull);
  EXPECT_EQ(high_bits_mask64(8), 0xff00000000000000ull);
  EXPECT_EQ(high_bits_mask64(64), ~0ull);
}

TEST(Bits, LowBitsMask) {
  EXPECT_EQ(low_bits_mask64(0), 0u);
  EXPECT_EQ(low_bits_mask64(4), 0xfull);
  EXPECT_EQ(low_bits_mask64(64), ~0ull);
}

TEST(Bits, MaskComplement) {
  for (int b = 0; b <= 64; ++b) {
    EXPECT_EQ(high_bits_mask64(b), ~low_bits_mask64(64 - b)) << b;
  }
}

TEST(Bits, Mix64IsInjectiveOnSample) {
  std::unordered_map<std::uint64_t, std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    const auto m = mix64(i);
    auto [it, inserted] = seen.try_emplace(m, i);
    EXPECT_TRUE(inserted) << "collision between " << i << " and " << it->second;
  }
}

// ------------------------------------------------------------- random ----

TEST(Random, DeterministicPerSeed) {
  Xoroshiro128 a(42);
  Xoroshiro128 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Random, DifferentSeedsDiffer) {
  Xoroshiro128 a(1);
  Xoroshiro128 b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LE(equal, 1);
}

TEST(Random, BoundedStaysInRange) {
  Xoroshiro128 rng(7);
  for (std::uint32_t n : {1u, 2u, 5u, 33u, 250u, 1u << 20}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.bounded(n), n);
  }
}

TEST(Random, BoundedOneIsAlwaysZero) {
  Xoroshiro128 rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Random, Uniform01Range) {
  Xoroshiro128 rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

/// Chi-square uniformity check for bounded(): the RHHH level selection
/// depends on each level being picked with probability 1/V.
TEST(Random, BoundedUniformityChiSquare) {
  constexpr std::uint32_t kBuckets = 25;
  constexpr int kDraws = 250000;
  Xoroshiro128 rng(1234);
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.bounded(kBuckets)];
  const double expected = static_cast<double>(kDraws) / kBuckets;
  double chi2 = 0;
  for (int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  // 24 dof: 99.9th percentile is ~51.2; a healthy generator sits far below.
  EXPECT_LT(chi2, 51.2);
}

// ------------------------------------------------------------- Key128 ----

TEST(Key128Test, PackingHelpers) {
  const Key128 k = Key128::from_pair(0x0A0B0C0Du, 0x01020304u);
  EXPECT_EQ(k.hi, 0u);
  EXPECT_EQ(k.lo, 0x0A0B0C0D01020304ull);
  EXPECT_EQ(Key128::from_u32(7).lo, 7u);
  EXPECT_EQ(Key128::from_u64(1ull << 40).lo, 1ull << 40);
}

TEST(Key128Test, BitwiseOps) {
  const Key128 a{0xF0F0, 0x1234};
  const Key128 b{0x0FF0, 0xFF00};
  EXPECT_EQ((a & b), (Key128{0x00F0, 0x1200}));
  EXPECT_EQ((a | b), (Key128{0xFFF0, 0xFF34}));
  EXPECT_EQ((a ^ a), (Key128{}));
  EXPECT_EQ((~Key128{}), (Key128{~0ull, ~0ull}));
}

TEST(Key128Test, HashSeparatesHiLo) {
  const Key128 a{1, 0};
  const Key128 b{0, 1};
  EXPECT_NE(Key128Hash{}(a), Key128Hash{}(b));
}

TEST(Key128Test, Ordering) {
  EXPECT_LT((Key128{0, 5}), (Key128{1, 0}));
  EXPECT_LT((Key128{1, 0}), (Key128{1, 1}));
}

// -------------------------------------------------------- FlatHashMap ----

TEST(FlatHashMap, InsertFindBasic) {
  FlatHashMap<std::uint64_t, std::uint64_t> m;
  EXPECT_TRUE(m.empty());
  m.insert_or_assign(1, 10);
  m.insert_or_assign(2, 20);
  ASSERT_NE(m.find(1), nullptr);
  EXPECT_EQ(*m.find(1), 10u);
  EXPECT_EQ(*m.find(2), 20u);
  EXPECT_EQ(m.find(3), nullptr);
  EXPECT_EQ(m.size(), 2u);
}

TEST(FlatHashMap, InsertOrAssignOverwrites) {
  FlatHashMap<std::uint64_t, int> m;
  m.insert_or_assign(5, 1);
  m.insert_or_assign(5, 2);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(*m.find(5), 2);
}

TEST(FlatHashMap, TryEmplaceReportsExisting) {
  FlatHashMap<std::uint64_t, int> m;
  auto [p1, in1] = m.try_emplace(9, 1);
  EXPECT_TRUE(in1);
  auto [p2, in2] = m.try_emplace(9, 2);
  EXPECT_FALSE(in2);
  EXPECT_EQ(*p2, 1);
  EXPECT_EQ(p1, p2);
}

TEST(FlatHashMap, OperatorBracketDefaultInserts) {
  FlatHashMap<std::uint64_t, std::uint64_t> m;
  EXPECT_EQ(m[77], 0u);
  m[77] += 5;
  EXPECT_EQ(*m.find(77), 5u);
}

TEST(FlatHashMap, EraseBasic) {
  FlatHashMap<std::uint64_t, int> m;
  for (std::uint64_t i = 0; i < 100; ++i) m.insert_or_assign(i, int(i));
  for (std::uint64_t i = 0; i < 100; i += 2) EXPECT_TRUE(m.erase(i));
  EXPECT_FALSE(m.erase(0));
  EXPECT_EQ(m.size(), 50u);
  for (std::uint64_t i = 0; i < 100; ++i) {
    if (i % 2 == 0) {
      EXPECT_EQ(m.find(i), nullptr) << i;
    } else {
      ASSERT_NE(m.find(i), nullptr) << i;
      EXPECT_EQ(*m.find(i), int(i));
    }
  }
}

TEST(FlatHashMap, GrowsThroughRehash) {
  FlatHashMap<std::uint64_t, std::uint64_t> m(8);
  for (std::uint64_t i = 0; i < 10000; ++i) m.insert_or_assign(i * 7919, i);
  EXPECT_EQ(m.size(), 10000u);
  for (std::uint64_t i = 0; i < 10000; ++i) {
    ASSERT_NE(m.find(i * 7919), nullptr);
    EXPECT_EQ(*m.find(i * 7919), i);
  }
}

TEST(FlatHashMap, ClearResets) {
  FlatHashMap<std::uint64_t, int> m;
  for (std::uint64_t i = 0; i < 64; ++i) m.insert_or_assign(i, 1);
  m.clear();
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.find(1), nullptr);
  m.insert_or_assign(1, 2);
  EXPECT_EQ(*m.find(1), 2);
}

TEST(FlatHashMap, ForEachVisitsEverything) {
  FlatHashMap<std::uint64_t, std::uint64_t> m;
  std::uint64_t expected_sum = 0;
  for (std::uint64_t i = 1; i <= 500; ++i) {
    m.insert_or_assign(i, i);
    expected_sum += i;
  }
  std::uint64_t sum = 0;
  std::size_t n = 0;
  m.for_each([&](const std::uint64_t&, const std::uint64_t& v) {
    sum += v;
    ++n;
  });
  EXPECT_EQ(sum, expected_sum);
  EXPECT_EQ(n, 500u);
}

TEST(FlatHashMap, ForEachCanMutateValues) {
  FlatHashMap<std::uint64_t, std::uint64_t> m;
  for (std::uint64_t i = 0; i < 50; ++i) m.insert_or_assign(i, i);
  m.for_each([](const std::uint64_t&, std::uint64_t& v) { v *= 2; });
  for (std::uint64_t i = 0; i < 50; ++i) EXPECT_EQ(*m.find(i), 2 * i);
}

TEST(FlatHashMap, Key128Keys) {
  FlatHashMap<Key128, std::uint64_t> m;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    m.insert_or_assign(Key128{i, ~i}, i);
  }
  for (std::uint64_t i = 0; i < 1000; ++i) {
    ASSERT_NE(m.find(Key128{i, ~i}), nullptr);
    EXPECT_EQ(*m.find(Key128{i, ~i}), i);
  }
  EXPECT_EQ(m.find(Key128{1, 1}), nullptr);
}

/// Differential fuzz: random insert/erase/find mirrored against
/// std::unordered_map.
class FlatHashMapFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlatHashMapFuzz, MatchesStdUnorderedMap) {
  Xoroshiro128 rng(GetParam());
  FlatHashMap<std::uint64_t, std::uint64_t> m(8);
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  for (int step = 0; step < 20000; ++step) {
    const std::uint64_t key = rng.bounded(512);  // dense keyspace: collisions
    switch (rng.bounded(4)) {
      case 0:
      case 1: {  // insert/overwrite
        const std::uint64_t v = rng();
        m.insert_or_assign(key, v);
        ref[key] = v;
        break;
      }
      case 2: {  // erase
        EXPECT_EQ(m.erase(key), ref.erase(key) > 0);
        break;
      }
      case 3: {  // find
        const auto* p = m.find(key);
        const auto it = ref.find(key);
        if (it == ref.end()) {
          EXPECT_EQ(p, nullptr);
        } else {
          ASSERT_NE(p, nullptr);
          EXPECT_EQ(*p, it->second);
        }
        break;
      }
    }
    ASSERT_EQ(m.size(), ref.size());
  }
  // Final full comparison.
  std::size_t visited = 0;
  m.for_each([&](const std::uint64_t& k, const std::uint64_t& v) {
    auto it = ref.find(k);
    ASSERT_NE(it, ref.end());
    EXPECT_EQ(v, it->second);
    ++visited;
  });
  EXPECT_EQ(visited, ref.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlatHashMapFuzz,
                         ::testing::Values(1, 2, 3, 42, 1337, 0xdeadbeef));

// ----------------------------------------------------------- SpscRing ----

TEST(SpscRing, CapacityRounding) {
  SpscRing<int> r(100);
  EXPECT_EQ(r.capacity(), 128u);
}

TEST(SpscRing, PushPopSingleThread) {
  SpscRing<int> r(8);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 7; ++i) EXPECT_TRUE(r.try_push(i)) << i;
    EXPECT_FALSE(r.try_push(99)) << "ring should be full (one slot reserved)";
    int v = -1;
    for (int i = 0; i < 7; ++i) {
      ASSERT_TRUE(r.try_pop(v));
      EXPECT_EQ(v, i);
    }
    EXPECT_FALSE(r.try_pop(v));
  }
}

TEST(SpscRing, SizeApprox) {
  SpscRing<int> r(16);
  EXPECT_EQ(r.size_approx(), 0u);
  for (int i = 0; i < 5; ++i) r.try_push(i);
  EXPECT_EQ(r.size_approx(), 5u);
  int v;
  r.try_pop(v);
  EXPECT_EQ(r.size_approx(), 4u);
}

TEST(SpscRing, WrapAroundPreservesFifo) {
  SpscRing<std::uint64_t> r(4);
  std::uint64_t next_pop = 0;
  std::uint64_t next_push = 0;
  for (int i = 0; i < 1000; ++i) {
    if (r.try_push(next_push)) ++next_push;
    std::uint64_t v;
    if (r.try_pop(v)) {
      EXPECT_EQ(v, next_pop);
      ++next_pop;
    }
  }
  EXPECT_GT(next_pop, 400u);
}

TEST(SpscRing, BatchPushPopRoundTrip) {
  SpscRing<int> r(16);
  int in[10];
  for (int i = 0; i < 10; ++i) in[i] = i;
  EXPECT_EQ(r.try_push_n(in, 10), 10u);
  EXPECT_EQ(r.size_approx(), 10u);
  int out[16] = {};
  EXPECT_EQ(r.try_pop_n(out, 16), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(out[i], i);
  EXPECT_EQ(r.try_pop_n(out, 16), 0u);
}

TEST(SpscRing, BatchPushAcceptsPrefixWhenNearlyFull) {
  SpscRing<int> r(8);  // usable capacity 7
  int in[10];
  for (int i = 0; i < 10; ++i) in[i] = i;
  EXPECT_EQ(r.try_push_n(in, 10), 7u) << "accepts the prefix that fits";
  EXPECT_EQ(r.try_push_n(in, 1), 0u) << "full ring rejects outright";
  int out[8];
  ASSERT_EQ(r.try_pop_n(out, 8), 7u);
  for (int i = 0; i < 7; ++i) EXPECT_EQ(out[i], i);
}

TEST(SpscRing, BatchPopHonorsMax) {
  SpscRing<int> r(16);
  int in[12];
  for (int i = 0; i < 12; ++i) in[i] = 100 + i;
  ASSERT_EQ(r.try_push_n(in, 12), 12u);
  int out[4];
  EXPECT_EQ(r.try_pop_n(out, 4), 4u);
  EXPECT_EQ(out[0], 100);
  EXPECT_EQ(out[3], 103);
  EXPECT_EQ(r.size_approx(), 8u);
}

TEST(SpscRing, BatchWrapAroundPreservesFifo) {
  SpscRing<std::uint64_t> r(8);
  std::uint64_t next_push = 0;
  std::uint64_t next_pop = 0;
  std::uint64_t in[5];
  std::uint64_t out[5];
  for (int round = 0; round < 500; ++round) {
    for (std::size_t i = 0; i < 5; ++i) in[i] = next_push + i;
    next_push += r.try_push_n(in, 5);
    const std::size_t got = r.try_pop_n(out, 5);
    for (std::size_t i = 0; i < got; ++i) {
      ASSERT_EQ(out[i], next_pop);
      ++next_pop;
    }
  }
  EXPECT_EQ(next_pop, next_push);
  EXPECT_GT(next_pop, 1000u);
}

TEST(SpscRing, BatchMixesWithSingleOps) {
  SpscRing<int> r(16);
  int in[3] = {1, 2, 3};
  ASSERT_EQ(r.try_push_n(in, 3), 3u);
  ASSERT_TRUE(r.try_push(4));
  int v = 0;
  ASSERT_TRUE(r.try_pop(v));
  EXPECT_EQ(v, 1);
  int out[8];
  ASSERT_EQ(r.try_pop_n(out, 8), 3u);
  EXPECT_EQ(out[0], 2);
  EXPECT_EQ(out[2], 4);
}

TEST(SpscRing, ProducerConsumerThreads) {
  constexpr std::uint64_t kCount = 200000;
  SpscRing<std::uint64_t> r(1024);
  std::uint64_t sum_consumed = 0;
  std::uint64_t n_consumed = 0;
  std::thread consumer([&] {
    std::uint64_t v;
    std::uint64_t expected = 0;
    while (n_consumed < kCount) {
      if (r.try_pop(v)) {
        // FIFO within SPSC: values arrive in push order.
        ASSERT_EQ(v, expected);
        ++expected;
        sum_consumed += v;
        ++n_consumed;
      }
    }
  });
  for (std::uint64_t i = 0; i < kCount; ++i) {
    while (!r.try_push(i)) std::this_thread::yield();
  }
  consumer.join();
  EXPECT_EQ(n_consumed, kCount);
  EXPECT_EQ(sum_consumed, kCount * (kCount - 1) / 2);
}

/// Threaded FIFO check for the batched API: a producer pushing in batches
/// and a consumer popping in (differently sized) batches must still observe
/// exactly the pushed sequence.
TEST(SpscRing, BatchProducerConsumerThreads) {
  constexpr std::uint64_t kCount = 200000;
  SpscRing<std::uint64_t> r(512);
  std::thread consumer([&] {
    std::uint64_t out[48];
    std::uint64_t expected = 0;
    while (expected < kCount) {
      const std::size_t got = r.try_pop_n(out, 48);
      for (std::size_t i = 0; i < got; ++i) {
        ASSERT_EQ(out[i], expected);
        ++expected;
      }
      if (got == 0) std::this_thread::yield();
    }
  });
  std::uint64_t in[32];
  std::uint64_t next = 0;
  while (next < kCount) {
    const std::size_t want =
        std::min<std::uint64_t>(32, kCount - next);
    for (std::size_t i = 0; i < want; ++i) in[i] = next + i;
    const std::size_t sent = r.try_push_n(in, want);
    next += sent;
    if (sent == 0) std::this_thread::yield();
  }
  consumer.join();
}

}  // namespace
}  // namespace rhhh
