// EngineSnapshot / WindowedEngineSnapshot / TrendSnapshot: the results of
// quiescing the sharded engine at an epoch boundary.
//
// EngineSnapshot is the lifetime view -- one merged LatticeHhh over every
// shard's sub-stream plus the ingest counters frozen at the same instant,
// answering network-wide (all shards, all producers) exactly like the
// multi-switch collector of examples/multi_switch_merge.cpp.
//
// WindowedEngineSnapshot is the two-window change-detection view: when the
// engine rotates window epochs (coordinator clock or rotate_epoch()), each
// shard keeps a ring of window lattices and the snapshot merges the live
// sides and the newest sealed sides -- the current (partial) window and
// the sealed previous window -- into two network-wide lattices, with the
// drops of each window folded into its stream length.
// current()/previous()/emerging() then mirror the single-threaded
// WindowedHhhMonitor at multi-core scale.
//
// TrendSnapshot is the K-window view: every retained sealed window of
// every shard is merged index-aligned (all shards rotate on one shared
// boundary, so sealed(i) of every shard covers the same epoch) into one
// network-wide lattice per epoch, each with its own window's drops folded
// into its stream length. trend()/emerging_sustained() then mirror the
// monitor's k-epoch growth curves and EWMA sustained-ramp alarms.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/window_ring.hpp"
#include "hhh/lattice_hhh.hpp"

namespace rhhh {

/// Ingest accounting, frozen per snapshot (and exposed live by the engine).
struct EngineStats {
  std::uint64_t offered = 0;    ///< packets handed to any producer handle
  std::uint64_t consumed = 0;   ///< packets applied to some shard lattice
  std::uint64_t dropped = 0;    ///< ring-full drops on the lossy offer() path
  std::uint64_t backpressure_waits = 0;  ///< full-ring retry rounds of push()
  std::uint64_t epochs = 0;     ///< quiesce generations (snapshots + rotations)
  std::uint64_t window_epochs = 0;  ///< completed window rotations
  std::uint64_t archived_windows = 0;  ///< sealed windows persisted to the store
  /// Sealed windows lost because the rotation -> archiver queue was full
  /// (rotation never blocks on I/O; see ArchiveConfig::queue_windows).
  std::uint64_t archive_queue_drops = 0;
  std::uint64_t archive_errors = 0;  ///< archiver I/O failures (window skipped)
  /// trend_snapshot() calls served from the merged-sealed-window cache
  /// (no re-merge: the window set was unchanged since the previous call).
  std::uint64_t trend_cache_hits = 0;
  /// Rotations triggered by a spent packet/wall budget (manual
  /// rotate_epoch() calls are excluded -- they have no boundary to drift
  /// from). Denominator for the drift mean.
  std::uint64_t budget_rotations = 0;
  /// Summed boundary drift (ns) over budget_rotations: the steady-clock
  /// gap between the instant the epoch budget was first observed spent and
  /// the rotation that sealed the window. Cooperative rotation bounds each
  /// sample by roughly one worker batch; the 200us-timeslice fallback by a
  /// scheduler quantum.
  std::uint64_t rotation_drift_ns_total = 0;
  /// Budget rotations whose drift exceeded the fallback clock's 200us
  /// timeslice -- the cooperative path missed its bound and the window
  /// boundary slid by a scheduler quantum or worse.
  std::uint64_t late_rotations = 0;
  std::vector<std::uint64_t> per_worker_consumed;  ///< [worker]
  std::vector<std::uint64_t> per_ring_dropped;     ///< [producer * W + worker]
  std::vector<std::uint64_t> per_ring_pushed;      ///< [producer * W + worker]
  std::vector<std::uint64_t> per_ring_popped;      ///< [producer * W + worker]
};

class EngineSnapshot {
 public:
  EngineSnapshot(std::unique_ptr<RhhhSpaceSaving> merged, EngineStats stats,
                 std::uint64_t epoch)
      : merged_(std::move(merged)), stats_(std::move(stats)), epoch_(epoch) {}

  /// The network-wide approximate HHH set at threshold theta.
  [[nodiscard]] HhhSet output(double theta) const { return merged_->output(theta); }

  /// N of the merged stream: every consumed packet plus every counted drop
  /// (a drop still happened on the wire, so thresholds must see it -- the
  /// same convention as DistributedMeasurement's advance_stream()).
  [[nodiscard]] std::uint64_t stream_length() const {
    return merged_->stream_length();
  }

  [[nodiscard]] const RhhhSpaceSaving& algorithm() const noexcept { return *merged_; }
  [[nodiscard]] const EngineStats& stats() const noexcept { return stats_; }
  /// 1-based epoch number this snapshot closed.
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

 private:
  std::unique_ptr<RhhhSpaceSaving> merged_;
  EngineStats stats_;
  std::uint64_t epoch_;
};

/// The two-window network-wide view produced by HhhEngine::window_snapshot().
/// `previous` is absent (empty set, zero length) until the engine's first
/// window rotation, mirroring WindowedHhhMonitor::previous().
class WindowedEngineSnapshot {
 public:
  WindowedEngineSnapshot(std::unique_ptr<RhhhSpaceSaving> current,
                         std::unique_ptr<RhhhSpaceSaving> previous,
                         EngineStats stats, std::uint64_t window_epochs,
                         std::uint64_t current_drops, std::uint64_t previous_drops)
      : current_(std::move(current)),
        previous_(std::move(previous)),
        stats_(std::move(stats)),
        window_epochs_(window_epochs),
        current_drops_(current_drops),
        previous_drops_(previous_drops) {}

  /// Network-wide HHH set of the current (partial) window.
  [[nodiscard]] HhhSet current(double theta) const { return current_->output(theta); }
  /// Network-wide HHH set of the sealed previous window; empty before the
  /// first rotation.
  [[nodiscard]] HhhSet previous(double theta) const {
    if (previous_ == nullptr) return HhhSet(current_->hierarchy().size());
    return previous_->output(theta);
  }
  /// Prefixes heavy in the current window whose share grew by
  /// >= growth_factor vs the previous window (new prefixes: infinite
  /// growth) -- WindowedHhhMonitor::emerging at engine scale.
  [[nodiscard]] std::vector<EmergingPrefix> emerging(double theta,
                                                     double growth_factor) const {
    return emerging_from(*current_, previous_.get(), theta, growth_factor);
  }

  /// N of the current window (shard sub-streams + this window's drops).
  [[nodiscard]] std::uint64_t current_length() const {
    return current_->stream_length();
  }
  /// N of the previous window (0 before the first rotation).
  [[nodiscard]] std::uint64_t previous_length() const {
    return previous_ == nullptr ? 0 : previous_->stream_length();
  }
  [[nodiscard]] bool has_previous() const noexcept { return previous_ != nullptr; }

  [[nodiscard]] const RhhhSpaceSaving& current_algorithm() const noexcept {
    return *current_;
  }
  /// Valid only when has_previous().
  [[nodiscard]] const RhhhSpaceSaving& previous_algorithm() const noexcept {
    return *previous_;
  }

  /// Drops attributed to each window (already folded into the lengths).
  [[nodiscard]] std::uint64_t current_drops() const noexcept { return current_drops_; }
  [[nodiscard]] std::uint64_t previous_drops() const noexcept {
    return previous_drops_;
  }

  [[nodiscard]] const EngineStats& stats() const noexcept { return stats_; }
  /// Completed window rotations when this snapshot was taken.
  [[nodiscard]] std::uint64_t window_epochs() const noexcept { return window_epochs_; }

 private:
  std::unique_ptr<RhhhSpaceSaving> current_;
  std::unique_ptr<RhhhSpaceSaving> previous_;  ///< nullptr before 1st rotation
  EngineStats stats_;
  std::uint64_t window_epochs_;
  std::uint64_t current_drops_;
  std::uint64_t previous_drops_;
};

/// The K-window network-wide view produced by HhhEngine::trend_snapshot():
/// one merged lattice per retained epoch (each shard ring's sealed windows
/// merged index-aligned) plus the live (partial) window, every window's
/// drops folded into its stream length. Sealed windows are indexed by age:
/// window 0 is the most recently sealed epoch. The sealed merges are
/// shared with the engine's per-epoch cache (they are immutable), so
/// repeated polls between rotations pay only the live-window merge.
class TrendSnapshot {
 public:
  TrendSnapshot(std::unique_ptr<RhhhSpaceSaving> current,
                std::vector<std::shared_ptr<const RhhhSpaceSaving>> sealed,
                std::vector<std::uint64_t> sealed_drops,
                std::vector<std::uint64_t> sealed_durations_ns, EngineStats stats,
                std::uint64_t window_epochs, std::uint64_t current_drops,
                std::uint64_t current_duration_ns, bool duration_weighted)
      : current_(std::move(current)),
        sealed_(std::move(sealed)),
        sealed_drops_(std::move(sealed_drops)),
        sealed_durations_ns_(std::move(sealed_durations_ns)),
        stats_(std::move(stats)),
        window_epochs_(window_epochs),
        current_drops_(current_drops),
        current_duration_ns_(current_duration_ns),
        duration_weighted_(duration_weighted) {}

  /// Sealed epochs retained in this snapshot (<= EngineConfig::history_depth).
  [[nodiscard]] std::size_t sealed_windows() const noexcept { return sealed_.size(); }

  /// Network-wide HHH set of the current (partial) window.
  [[nodiscard]] HhhSet current(double theta) const { return current_->output(theta); }
  /// Network-wide HHH set of the sealed window `age` epochs back (0 = the
  /// most recently sealed). Requires age < sealed_windows().
  [[nodiscard]] HhhSet window(std::size_t age, double theta) const {
    return sealed_[age]->output(theta);
  }

  /// The prefix's per-epoch share curve, ordered oldest retained epoch ->
  /// ... -> newest sealed epoch -> live window (sealed_windows() + 1
  /// points) -- WindowedHhhMonitor::trend at engine scale.
  [[nodiscard]] std::vector<TrendPoint> trend(const Prefix& p) const {
    return trend_of(ordered_windows(), p);
  }
  /// Two-window emerging comparison against the most recently sealed epoch
  /// (WindowedHhhMonitor::emerging semantics).
  [[nodiscard]] std::vector<EmergingPrefix> emerging(double theta,
                                                     double growth_factor) const {
    return emerging_from(*current_,
                         sealed_.empty() ? nullptr : sealed_.front().get(), theta,
                         growth_factor);
  }
  /// EWMA-baseline sustained-growth alarms over the whole retained history
  /// (see emerging_sustained_from in core/window_ring.hpp). Under the
  /// pure wall-clock rotation mode the engine marks this snapshot
  /// duration_weighted() and the baseline weighs each window by its
  /// wall-clock length -- unequal idle windows no longer drag a stable
  /// heavy hitter's baseline toward zero. Packet-clock windows are
  /// equal-length by construction and use the plain epoch-weighted EWMA.
  [[nodiscard]] std::vector<SustainedPrefix> emerging_sustained(
      double theta, double growth_factor, std::uint32_t min_epochs,
      double alpha = 0.5) const {
    if (duration_weighted_) {
      return emerging_sustained_from(ordered_windows(), ordered_durations(),
                                     theta, growth_factor, min_epochs, alpha);
    }
    return emerging_sustained_from(ordered_windows(), theta, growth_factor,
                                   min_epochs, alpha);
  }

  /// N of the current window (shard sub-streams + this window's drops).
  [[nodiscard]] std::uint64_t current_length() const {
    return current_->stream_length();
  }
  /// N of the sealed window `age` epochs back (its drops already folded in).
  [[nodiscard]] std::uint64_t window_length(std::size_t age) const {
    return sealed_[age]->stream_length();
  }
  /// Drops attributed to each window (already folded into the lengths).
  [[nodiscard]] std::uint64_t current_drops() const noexcept { return current_drops_; }
  [[nodiscard]] std::uint64_t window_drops(std::size_t age) const {
    return sealed_drops_[age];
  }
  /// Wall-clock (steady) duration each window spent live.
  [[nodiscard]] std::uint64_t current_duration_ns() const noexcept {
    return current_duration_ns_;
  }
  [[nodiscard]] std::uint64_t window_duration_ns(std::size_t age) const {
    return sealed_durations_ns_[age];
  }
  /// True when emerging_sustained() weighs baseline windows by duration
  /// (the engine's pure wall-clock rotation mode).
  [[nodiscard]] bool duration_weighted() const noexcept {
    return duration_weighted_;
  }

  [[nodiscard]] const RhhhSpaceSaving& current_algorithm() const noexcept {
    return *current_;
  }
  [[nodiscard]] const RhhhSpaceSaving& window_algorithm(std::size_t age) const {
    return *sealed_[age];
  }

  [[nodiscard]] const EngineStats& stats() const noexcept { return stats_; }
  /// Completed window rotations when this snapshot was taken.
  [[nodiscard]] std::uint64_t window_epochs() const noexcept { return window_epochs_; }

 private:
  [[nodiscard]] std::vector<const HhhAlgorithm*> ordered_windows() const {
    std::vector<const HhhAlgorithm*> out;
    out.reserve(sealed_.size() + 1);
    for (std::size_t age = sealed_.size(); age-- > 0;) {
      out.push_back(sealed_[age].get());
    }
    out.push_back(current_.get());
    return out;
  }
  /// Durations parallel to ordered_windows() (oldest -> newest -> live).
  [[nodiscard]] std::vector<std::uint64_t> ordered_durations() const {
    std::vector<std::uint64_t> out;
    out.reserve(sealed_.size() + 1);
    for (std::size_t age = sealed_.size(); age-- > 0;) {
      out.push_back(sealed_durations_ns_[age]);
    }
    out.push_back(current_duration_ns_);
    return out;
  }

  std::unique_ptr<RhhhSpaceSaving> current_;
  /// Merged sealed windows by age (0 = newest sealed epoch); shared with
  /// the engine's cache, immutable once sealed.
  std::vector<std::shared_ptr<const RhhhSpaceSaving>> sealed_;
  std::vector<std::uint64_t> sealed_drops_;  ///< [age], parallel to sealed_
  std::vector<std::uint64_t> sealed_durations_ns_;  ///< [age]
  EngineStats stats_;
  std::uint64_t window_epochs_;
  std::uint64_t current_drops_;
  std::uint64_t current_duration_ns_;
  bool duration_weighted_;
};

}  // namespace rhhh
