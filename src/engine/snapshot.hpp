// EngineSnapshot: the result of quiescing the sharded engine at an epoch
// boundary -- one merged LatticeHhh over every shard's sub-stream plus the
// ingest counters frozen at the same instant. Queries answer network-wide
// (all shards, all producers) exactly like the multi-switch collector of
// examples/multi_switch_merge.cpp, with the merged stream length N driving
// thresholds and the randomized-mode slack terms.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "hhh/lattice_hhh.hpp"

namespace rhhh {

/// Ingest accounting, frozen per snapshot (and exposed live by the engine).
struct EngineStats {
  std::uint64_t offered = 0;    ///< packets handed to any producer handle
  std::uint64_t consumed = 0;   ///< packets applied to some shard lattice
  std::uint64_t dropped = 0;    ///< ring-full drops on the lossy offer() path
  std::uint64_t backpressure_waits = 0;  ///< full-ring retry rounds of push()
  std::uint64_t epochs = 0;     ///< snapshots taken so far
  std::vector<std::uint64_t> per_worker_consumed;  ///< [worker]
  std::vector<std::uint64_t> per_ring_dropped;     ///< [producer * W + worker]
};

class EngineSnapshot {
 public:
  EngineSnapshot(std::unique_ptr<RhhhSpaceSaving> merged, EngineStats stats,
                 std::uint64_t epoch)
      : merged_(std::move(merged)), stats_(std::move(stats)), epoch_(epoch) {}

  /// The network-wide approximate HHH set at threshold theta.
  [[nodiscard]] HhhSet output(double theta) const { return merged_->output(theta); }

  /// N of the merged stream: every consumed packet plus every counted drop
  /// (a drop still happened on the wire, so thresholds must see it -- the
  /// same convention as DistributedMeasurement's advance_stream()).
  [[nodiscard]] std::uint64_t stream_length() const {
    return merged_->stream_length();
  }

  [[nodiscard]] const RhhhSpaceSaving& algorithm() const noexcept { return *merged_; }
  [[nodiscard]] const EngineStats& stats() const noexcept { return stats_; }
  /// 1-based epoch number this snapshot closed.
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

 private:
  std::unique_ptr<RhhhSpaceSaving> merged_;
  EngineStats stats_;
  std::uint64_t epoch_;
};

}  // namespace rhhh
