// ShardRouter: maps a packet key to one of W worker shards.
//
// Two policies:
//   kKeyHash    -- route by a strong hash of the fully-specified key, so a
//                  given flow always lands on the same shard. Each shard's
//                  Space-Saving lattice then sees every packet of the flows
//                  it owns, which keeps per-shard counts tight (this is the
//                  Confluo/Akumuli "shard by series" shape).
//   kRoundRobin -- spread packets evenly regardless of key; perfectly
//                  balanced load, but a flow's count spreads across shards
//                  and is only recovered at merge time.
//
// The router is a per-producer value type (the round-robin cursor is
// producer-local state; key-hash is stateless), so no synchronization is
// involved on the packet path.
#pragma once

#include <cstdint>
#include <string_view>

#include "util/key128.hpp"

namespace rhhh {

enum class ShardPolicy : std::uint8_t { kKeyHash, kRoundRobin };

[[nodiscard]] constexpr std::string_view to_string(ShardPolicy p) noexcept {
  switch (p) {
    case ShardPolicy::kKeyHash: return "key-hash";
    case ShardPolicy::kRoundRobin: return "round-robin";
  }
  return "?";
}

class ShardRouter {
 public:
  /// `salt` decorrelates the hash from the backends' own seeds; every router
  /// of one engine must share it so a key maps to the same shard everywhere.
  /// `rr_start` staggers the round-robin cursor (e.g. by producer id) so M
  /// producers do not all hit worker 0 in lockstep.
  explicit constexpr ShardRouter(ShardPolicy policy, std::uint32_t shards,
                                 std::uint64_t salt = 0,
                                 std::uint32_t rr_start = 0) noexcept
      : policy_(policy),
        shards_(shards == 0 ? 1 : shards),
        salt_(mix64(salt)),
        rr_(rr_start % shards_) {}

  [[nodiscard]] constexpr ShardPolicy policy() const noexcept { return policy_; }
  [[nodiscard]] constexpr std::uint32_t shards() const noexcept { return shards_; }

  /// Shard index in [0, shards()) for key `k`. Key-hash uses Lemire's
  /// multiply-shift on the top hash bits (no division); round-robin advances
  /// a cursor.
  [[nodiscard]] constexpr std::uint32_t route(const Key128& k) noexcept {
    if (policy_ == ShardPolicy::kRoundRobin) {
      const std::uint32_t s = rr_;
      rr_ = (rr_ + 1 == shards_) ? 0 : rr_ + 1;
      return s;
    }
    const std::uint64_t h = Key128Hash{}(k) ^ salt_;
    return static_cast<std::uint32_t>(((h >> 32) * shards_) >> 32);
  }

 private:
  ShardPolicy policy_;
  std::uint32_t shards_;
  std::uint64_t salt_;
  std::uint32_t rr_;
};

}  // namespace rhhh
