#include "engine/engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <tuple>

namespace rhhh {

// ------------------------------------------------------------- Producer ----

HhhEngine::Producer::Producer(HhhEngine* eng, std::uint32_t id)
    : eng_(eng),
      id_(id),
      batch_(eng->cfg_.batch),
      // All producers share the hash salt (one key -> one shard engine-wide);
      // the round-robin cursor is staggered by producer id.
      router_(eng->cfg_.policy, eng->workers(), eng->params_.seed, id),
      buf_(eng->workers()) {
  for (auto& b : buf_) b.reserve(batch_);
}

void HhhEngine::Producer::ingest(const PacketRecord& p) {
  ingest(eng_->hierarchy().key_of(p));
}

void HhhEngine::Producer::flush() {
  for (std::uint32_t w = 0; w < eng_->workers(); ++w) flush_worker(w);
}

void HhhEngine::Producer::flush_worker(std::uint32_t w) {
  auto& b = buf_[w];
  if (offered_local_ != 0) {
    offered_.fetch_add(offered_local_, std::memory_order_relaxed);
    offered_local_ = 0;
  }
  if (b.empty()) return;
  SpscRing<Key128>& ring = eng_->ring(id_, w);
  const std::size_t idx = id_ * eng_->workers() + w;
  const Key128* data = b.data();
  std::size_t left = b.size();
  std::size_t pushed = 0;
  while (left != 0) {
    const std::size_t sent = ring.try_push_n(data, left);
    data += sent;
    left -= sent;
    pushed += sent;
    if (left == 0) break;
    // Lossless only while workers are consuming; a stopped engine turns
    // kBlock into drop-tail rather than spinning forever.
    if (eng_->cfg_.overflow == OverflowPolicy::kDropTail ||
        !eng_->running_.load(std::memory_order_acquire)) {
      eng_->ring_dropped_[idx]->fetch_add(left, std::memory_order_relaxed);
      break;
    }
    eng_->backpressure_[id_]->fetch_add(1, std::memory_order_relaxed);
    std::this_thread::yield();
  }
  if (pushed != 0) {
    eng_->ring_pushed_[idx]->fetch_add(pushed, std::memory_order_relaxed);
  }
  b.clear();
}

// ------------------------------------------------------------ HhhEngine ----

HhhEngine::HhhEngine(const EngineConfig& cfg)
    : cfg_(cfg),
      hierarchy_(std::make_unique<Hierarchy>(make_hierarchy(cfg.monitor.hierarchy))) {
  if (cfg.workers == 0) throw std::invalid_argument("HhhEngine: workers must be >= 1");
  if (cfg.producers == 0) {
    throw std::invalid_argument("HhhEngine: producers must be >= 1");
  }
  if (cfg.batch == 0) throw std::invalid_argument("HhhEngine: batch must be >= 1");
  if (cfg.history_depth == 0) {
    throw std::invalid_argument("HhhEngine: history_depth must be >= 1");
  }
  // Throws for the (unmergeable) trie algorithms.
  std::tie(mode_, params_) = lattice_config_of(*hierarchy_, cfg.monitor);
  static_assert(RhhhSpaceSaving::backend_mergeable(),
                "engine snapshots require a mergeable backend");

  pop_batch_ = std::clamp<std::size_t>(cfg.batch, 1, 4096);
  sealed_drops_.assign(cfg.history_depth, 0);
  workers_.reserve(cfg.workers);
  for (std::uint32_t w = 0; w < cfg.workers; ++w) {
    auto ws = std::make_unique<WorkerState>();
    // Every ring slot gets a distinct RNG stream; all slots stay
    // merge-compatible with every other shard by construction. The salt
    // spacing keeps depth-1 rings byte-identical to the original
    // live/sealed pair (slots 0x5eed0000 + w and 0x5eed2000 + w).
    ws->ring = WindowRing<RhhhSpaceSaving>(cfg.history_depth, [&](std::size_t slot) {
      return make_shard_lattice(0x5eed0000ULL + 0x2000ULL * slot + w);
    });
    workers_.push_back(std::move(ws));
  }
  const std::size_t n_rings = std::size_t{cfg.producers} * cfg.workers;
  rings_.reserve(n_rings);
  ring_dropped_.reserve(n_rings);
  ring_pushed_.reserve(n_rings);
  ring_popped_.reserve(n_rings);
  for (std::uint32_t p = 0; p < cfg.producers; ++p) {
    for (std::uint32_t w = 0; w < cfg.workers; ++w) {
      rings_.push_back(std::make_unique<SpscRing<Key128>>(cfg.ring_capacity));
      ring_dropped_.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
      ring_pushed_.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
      ring_popped_.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
    }
    backpressure_.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
  }
  producers_.reserve(cfg.producers);
  for (std::uint32_t p = 0; p < cfg.producers; ++p) {
    producers_.push_back(std::unique_ptr<Producer>(new Producer(this, p)));
  }
  win_started_ns_.store(
      std::chrono::steady_clock::now().time_since_epoch().count(),
      std::memory_order_relaxed);
}

HhhEngine::~HhhEngine() { stop(); }

std::unique_ptr<RhhhSpaceSaving> HhhEngine::make_shard_lattice(
    std::uint64_t salt) const {
  LatticeParams lp = params_;
  // Distinct per-shard RNG streams; merge compatibility only needs the
  // hierarchy/mode/V/r to match, which cloning the params guarantees.
  lp.seed = mix64(params_.seed ^ salt);
  return std::make_unique<RhhhSpaceSaving>(*hierarchy_, mode_, lp);
}

void HhhEngine::start() {
  // snap_mu_ serializes all control ops (start/stop/snapshot/rotate) so a
  // no-quiesce snapshot can never overlap freshly spawned workers.
  std::lock_guard<std::mutex> snap_lk(snap_mu_);
  if (running_.exchange(true)) return;
  for (std::uint32_t w = 0; w < workers(); ++w) {
    workers_[w]->thread = std::thread([this, w] { worker_loop(w); });
  }
  if (windowed()) {
    win_started_ns_.store(
        std::chrono::steady_clock::now().time_since_epoch().count(),
        std::memory_order_relaxed);
    win_processed_base_.store(processed_total(), std::memory_order_relaxed);
    const std::uint64_t gen = clock_gen_.load(std::memory_order_relaxed);
    clock_thread_ = std::thread([this, gen] { clock_loop(gen); });
  }
}

void HhhEngine::stop() {
  std::unique_lock<std::mutex> snap_lk(snap_mu_);
  if (!running_.exchange(false)) return;
  {
    std::lock_guard<std::mutex> lk(ctl_mu_);
    ctl_cv_.notify_all();
  }
  for (auto& ws : workers_) {
    if (ws->thread.joinable()) ws->thread.join();
  }
  // A producer racing stop() can slip a batch into a ring after that
  // worker's shutdown drain saw it empty; sweep the rings once more from
  // here (workers are joined, so this thread is the only consumer) so no
  // accepted record is ever stranded outside consumed/dropped accounting.
  std::vector<Key128> batch(pop_batch_);
  for (std::uint32_t w = 0; w < workers(); ++w) {
    while (drain_pass(w, batch) != 0) {
    }
  }
  // Retire the clock generation and take its handle while still under
  // snap_mu_ (so a concurrent start() never assigns over a joinable
  // thread), but join OUTSIDE the lock: the clock may be blocked on
  // snap_mu_ for a rotation, and the stale generation token makes it exit
  // without rotating as soon as it gets through.
  clock_gen_.fetch_add(1, std::memory_order_release);
  std::thread clock = std::move(clock_thread_);
  snap_lk.unlock();
  if (clock.joinable()) clock.join();
}

std::size_t HhhEngine::drain_pass(std::uint32_t w, std::vector<Key128>& batch) {
  WorkerState& ws = *workers_[w];
  RhhhSpaceSaving& lattice = ws.ring.live();
  std::size_t total = 0;
  for (std::uint32_t p = 0; p < producers(); ++p) {
    const std::size_t n = ring(p, w).try_pop_n(batch.data(), batch.size());
    if (n == 0) continue;
    for (std::size_t i = 0; i < n; ++i) lattice.update(batch[i]);
    ring_popped_[p * workers_.size() + w]->fetch_add(n, std::memory_order_relaxed);
    total += n;
  }
  if (total != 0) ws.consumed.fetch_add(total, std::memory_order_relaxed);
  return total;
}

void HhhEngine::worker_loop(std::uint32_t w) {
  WorkerState& ws = *workers_[w];
  std::vector<Key128> batch(pop_batch_);
  std::uint64_t acked = 0;
  for (;;) {
    const std::size_t got = drain_pass(w, batch);
    const std::uint64_t e = epoch_req_.load(std::memory_order_acquire);
    if (e > acked) {
      // Epoch boundary: consume exactly the backlog visible in each ring at
      // this instant, then ack and park until the coordinator is done with
      // this shard's lattices (merging, or rotating the window pair).
      // Bounding the drain by the observed size keeps quiesce terminating
      // even while producers keep pushing -- later arrivals simply belong
      // to the next epoch.
      RhhhSpaceSaving& lattice = ws.ring.live();
      for (std::uint32_t p = 0; p < producers(); ++p) {
        SpscRing<Key128>& r = ring(p, w);
        std::size_t left = r.size_approx();
        std::uint64_t popped = 0;
        while (left != 0) {
          const std::size_t n =
              r.try_pop_n(batch.data(), std::min(batch.size(), left));
          if (n == 0) break;
          for (std::size_t i = 0; i < n; ++i) lattice.update(batch[i]);
          ws.consumed.fetch_add(n, std::memory_order_relaxed);
          popped += n;
          left -= n;
        }
        if (popped != 0) {
          ring_popped_[p * workers_.size() + w]->fetch_add(
              popped, std::memory_order_relaxed);
        }
      }
      std::unique_lock<std::mutex> lk(ctl_mu_);
      ws.epoch_acked = e;
      acked = e;
      ctl_cv_.notify_all();
      ctl_cv_.wait(lk, [&] {
        return epoch_resume_.load(std::memory_order_relaxed) >= e ||
               !running_.load(std::memory_order_relaxed);
      });
      continue;
    }
    if (got == 0) {
      if (!running_.load(std::memory_order_acquire)) {
        // Shutdown: consume everything still in flight, then exit.
        while (drain_pass(w, batch) != 0) {
        }
        return;
      }
      std::this_thread::yield();
    }
  }
}

void HhhEngine::clock_loop(std::uint64_t gen) {
  // The coordinator clock: meters the packet/wall budget lock-free, and
  // only takes snap_mu_ when a rotation is actually due -- a stream of
  // concurrent snapshots must not starve the clock, and an idle clock must
  // not contend with them. A stale generation token (this thread has been
  // retired by stop(), possibly with a successor already running) exits
  // without touching anything.
  const auto due_now = [&] {
    if (cfg_.epoch_packets > 0 &&
        processed_total() - win_processed_base_.load(std::memory_order_relaxed) >=
            cfg_.epoch_packets) {
      return true;
    }
    if (cfg_.epoch_millis > 0) {
      const std::int64_t now_ns =
          std::chrono::steady_clock::now().time_since_epoch().count();
      if (now_ns - win_started_ns_.load(std::memory_order_relaxed) >=
          static_cast<std::int64_t>(cfg_.epoch_millis) * 1'000'000) {
        return true;
      }
    }
    return false;
  };
  while (clock_gen_.load(std::memory_order_acquire) == gen &&
         running_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    if (!due_now()) continue;
    std::lock_guard<std::mutex> lk(snap_mu_);
    if (clock_gen_.load(std::memory_order_acquire) != gen ||
        !running_.load(std::memory_order_acquire)) {
      break;
    }
    // Re-check under the lock: a manual rotate_epoch() may have just reset
    // the budget while we were waiting.
    if (due_now()) rotate_locked();
  }
}

std::uint64_t HhhEngine::processed_total() const {
  std::uint64_t n = 0;
  for (const auto& ws : workers_) n += ws->consumed.load(std::memory_order_relaxed);
  for (const auto& d : ring_dropped_) n += d->load(std::memory_order_relaxed);
  return n;
}

EngineStats HhhEngine::collect_stats() const {
  EngineStats s;
  s.per_worker_consumed.reserve(workers_.size());
  for (const auto& ws : workers_) {
    const std::uint64_t c = ws->consumed.load(std::memory_order_relaxed);
    s.per_worker_consumed.push_back(c);
    s.consumed += c;
  }
  s.per_ring_dropped.reserve(rings_.size());
  s.per_ring_pushed.reserve(rings_.size());
  s.per_ring_popped.reserve(rings_.size());
  for (const auto& d : ring_dropped_) {
    const std::uint64_t n = d->load(std::memory_order_relaxed);
    s.per_ring_dropped.push_back(n);
    s.dropped += n;
  }
  for (const auto& p : ring_pushed_) {
    s.per_ring_pushed.push_back(p->load(std::memory_order_relaxed));
  }
  for (const auto& p : ring_popped_) {
    s.per_ring_popped.push_back(p->load(std::memory_order_relaxed));
  }
  for (const auto& p : producers_) s.offered += p->offered();
  for (const auto& b : backpressure_) {
    s.backpressure_waits += b->load(std::memory_order_relaxed);
  }
  s.epochs = epoch_req_.load(std::memory_order_relaxed);
  s.window_epochs = window_epochs_.load(std::memory_order_relaxed);
  return s;
}

EngineStats HhhEngine::stats() const { return collect_stats(); }

template <class Fn>
std::uint64_t HhhEngine::quiesced(Fn&& fn) {
  const std::uint64_t e = epoch_req_.load(std::memory_order_relaxed) + 1;
  // running_ cannot flip underneath us: start()/stop() take snap_mu_, which
  // the caller holds.
  const bool live = running_.load(std::memory_order_acquire);
  if (live) {
    epoch_req_.store(e, std::memory_order_release);
    std::unique_lock<std::mutex> lk(ctl_mu_);
    ctl_cv_.wait(lk, [&] {
      return std::all_of(workers_.begin(), workers_.end(),
                         [&](const auto& ws) { return ws->epoch_acked >= e; });
    });
  } else {
    // No workers to quiesce (before start() or after stop()); the lattices
    // are only mutated by workers, so operating directly is safe. The
    // resume mark still has to advance with the request, or workers started
    // later would park at this epoch's boundary waiting for a resume that
    // already happened.
    epoch_req_.store(e, std::memory_order_relaxed);
    epoch_resume_.store(e, std::memory_order_relaxed);
  }
  fn();
  if (live) {
    // Workers park inside ctl_cv_.wait, so everything fn() did to the shard
    // lattices happens-before their wakeup via this mutex hand-off.
    std::lock_guard<std::mutex> lk(ctl_mu_);
    epoch_resume_.store(e, std::memory_order_relaxed);
    ctl_cv_.notify_all();
  }
  return e;
}

EngineSnapshot HhhEngine::snapshot() {
  std::lock_guard<std::mutex> snap_lk(snap_mu_);
  std::unique_ptr<RhhhSpaceSaving> merged;
  EngineStats s;
  const std::uint64_t e = quiesced([&] {
    merged = make_shard_lattice(0x6e7a9000ULL ^
                                epoch_req_.load(std::memory_order_relaxed));
    for (const auto& ws : workers_) merged->merge(ws->ring.live());
    s = collect_stats();
    // A dropped record was still offered on the wire: fold drops into N so
    // thresholds and slack terms see the full stream, exactly like
    // DistributedMeasurement::stop() does.
    if (s.dropped != 0) merged->advance_stream(s.dropped);
  });
  return EngineSnapshot(std::move(merged), std::move(s), e);
}

void HhhEngine::rotate_locked() {
  quiesced([&] {
    for (auto& ws : workers_) ws->ring.rotate();
    std::uint64_t d = 0;
    for (const auto& dr : ring_dropped_) d += dr->load(std::memory_order_relaxed);
    // Drops since the last boundary happened while the just-sealed window
    // was live: attribute them to it. The per-window drop ring ages in
    // lockstep with the shard rings (newest first, oldest falls off).
    sealed_drops_.insert(sealed_drops_.begin(), d - win_drops_base_);
    sealed_drops_.resize(cfg_.history_depth);
    win_drops_base_ = d;
    win_processed_base_.store(processed_total(), std::memory_order_relaxed);
    win_started_ns_.store(
        std::chrono::steady_clock::now().time_since_epoch().count(),
        std::memory_order_relaxed);
  });
  window_epochs_.fetch_add(1, std::memory_order_release);
}

void HhhEngine::rotate_epoch() {
  std::lock_guard<std::mutex> snap_lk(snap_mu_);
  rotate_locked();
}

WindowedEngineSnapshot HhhEngine::window_snapshot() {
  std::lock_guard<std::mutex> snap_lk(snap_mu_);
  std::unique_ptr<RhhhSpaceSaving> cur;
  std::unique_ptr<RhhhSpaceSaving> prev;
  EngineStats s;
  std::uint64_t cur_drops = 0;
  std::uint64_t prev_drops = 0;
  // Rotations hold snap_mu_ too, so the window count is stable here.
  const std::uint64_t we = window_epochs_.load(std::memory_order_relaxed);
  quiesced([&] {
    const std::uint64_t e = epoch_req_.load(std::memory_order_relaxed);
    cur = make_shard_lattice(0x6e7a9000ULL ^ e);
    for (const auto& ws : workers_) cur->merge(ws->ring.live());
    s = collect_stats();
    cur_drops = s.dropped - win_drops_base_;
    if (cur_drops != 0) cur->advance_stream(cur_drops);
    if (we != 0) {
      prev = make_shard_lattice(0x6e7ab000ULL ^ e);
      for (const auto& ws : workers_) prev->merge(ws->ring.sealed(0));
      prev_drops = sealed_drops_[0];
      if (prev_drops != 0) prev->advance_stream(prev_drops);
    }
  });
  return WindowedEngineSnapshot(std::move(cur), std::move(prev), std::move(s), we,
                                cur_drops, prev_drops);
}

TrendSnapshot HhhEngine::trend_snapshot() {
  std::lock_guard<std::mutex> snap_lk(snap_mu_);
  std::unique_ptr<RhhhSpaceSaving> cur;
  std::vector<std::unique_ptr<RhhhSpaceSaving>> sealed;
  std::vector<std::uint64_t> sealed_drops;
  EngineStats s;
  std::uint64_t cur_drops = 0;
  // Rotations hold snap_mu_ too, so the window count is stable here.
  const std::uint64_t we = window_epochs_.load(std::memory_order_relaxed);
  quiesced([&] {
    const std::uint64_t e = epoch_req_.load(std::memory_order_relaxed);
    cur = make_shard_lattice(0x6e7a9000ULL ^ e);
    for (const auto& ws : workers_) cur->merge(ws->ring.live());
    s = collect_stats();
    cur_drops = s.dropped - win_drops_base_;
    if (cur_drops != 0) cur->advance_stream(cur_drops);
    // All shards rotate on one shared boundary, so age i of every shard
    // ring covers the same network-wide epoch: merge index-aligned.
    const std::size_t m = workers_[0]->ring.sealed_count();
    sealed.reserve(m);
    sealed_drops.reserve(m);
    for (std::size_t age = 0; age < m; ++age) {
      auto merged = make_shard_lattice((0x6e7ab000ULL + (age << 20)) ^ e);
      for (const auto& ws : workers_) merged->merge(ws->ring.sealed(age));
      if (sealed_drops_[age] != 0) merged->advance_stream(sealed_drops_[age]);
      sealed.push_back(std::move(merged));
      sealed_drops.push_back(sealed_drops_[age]);
    }
  });
  return TrendSnapshot(std::move(cur), std::move(sealed), std::move(sealed_drops),
                       std::move(s), we, cur_drops);
}

std::unique_ptr<HhhEngine> make_engine(const EngineConfig& cfg) {
  return std::make_unique<HhhEngine>(cfg);
}

}  // namespace rhhh
