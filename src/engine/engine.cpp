#include "engine/engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <tuple>

#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_ring.hpp"
#include "store/archive.hpp"

namespace rhhh {

namespace {

/// EngineStats as a flat JSON object -- the "stats" section of the stall
/// watchdog's flight-recorder dump.
std::string engine_stats_json(const EngineStats& s) {
  std::string out = "{";
  bool first = true;
  const auto field = [&](const char* k, std::uint64_t v) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += k;
    out += "\":";
    out += std::to_string(v);
  };
  field("offered", s.offered);
  field("consumed", s.consumed);
  field("dropped", s.dropped);
  field("backpressure_waits", s.backpressure_waits);
  field("epochs", s.epochs);
  field("window_epochs", s.window_epochs);
  field("archived_windows", s.archived_windows);
  field("archive_queue_drops", s.archive_queue_drops);
  field("archive_errors", s.archive_errors);
  field("trend_cache_hits", s.trend_cache_hits);
  field("budget_rotations", s.budget_rotations);
  field("rotation_drift_ns_total", s.rotation_drift_ns_total);
  field("late_rotations", s.late_rotations);
  out += '}';
  return out;
}

}  // namespace

// ------------------------------------------------------------- Producer ----

HhhEngine::Producer::Producer(HhhEngine* eng, std::uint32_t id)
    : eng_(eng),
      id_(id),
      batch_(eng->cfg_.batch),
      // All producers share the hash salt (one key -> one shard engine-wide);
      // the round-robin cursor is staggered by producer id.
      router_(eng->cfg_.policy, eng->workers(), eng->params_.seed, id),
      buf_(eng->workers()) {
  for (auto& b : buf_) b.reserve(batch_);
}

void HhhEngine::Producer::ingest(const PacketRecord& p) {
  ingest(eng_->hierarchy().key_of(p));
}

void HhhEngine::Producer::flush() {
  for (std::uint32_t w = 0; w < eng_->workers(); ++w) flush_worker(w);
}

void HhhEngine::Producer::flush_worker(std::uint32_t w) {
  auto& b = buf_[w];
  if (offered_local_ != 0) {
    // order: relaxed -- monotonic counter; exact reads happen under quiesce
    // (ctl_mu_ hand-off), approximate reads tolerate staleness.
    offered_.fetch_add(offered_local_, std::memory_order_relaxed);
    offered_local_ = 0;
  }
  if (b.empty()) return;
  // Telemetry probe: two clock reads per batch (~64 keys), recorded only
  // when the engine is instrumented -- the compiled-out baseline is a
  // single pointer test.
  const std::uint64_t obs_t0 =
      eng_->obs_.push_ns != nullptr ? obs::now_ns() : 0;
  SpscRing<Key128>& ring = eng_->ring(id_, w);
  const std::size_t idx = id_ * eng_->workers() + w;
  const Key128* data = b.data();
  std::size_t left = b.size();
  std::size_t pushed = 0;
  while (left != 0) {
    const std::size_t sent = ring.try_push_n(data, left);
    data += sent;
    left -= sent;
    pushed += sent;
    if (left == 0) break;
    // Lossless only while workers are consuming; a stopped engine turns
    // kBlock into drop-tail rather than spinning forever.
    // order: acquire -- pairs with stop()'s acq_rel exchange of running_; a
    // producer that observes the stop must not keep spinning on a ring whose
    // consumer is being joined.
    if (eng_->cfg_.overflow == OverflowPolicy::kDropTail ||
        !eng_->running_.load(std::memory_order_acquire)) {
      // order: relaxed -- drop counter; summed exactly under quiesce only.
      eng_->ring_dropped_[idx]->fetch_add(left, std::memory_order_relaxed);
      break;
    }
    // order: relaxed -- backpressure-retry counter, diagnostic only.
    eng_->backpressure_[id_]->fetch_add(1, std::memory_order_relaxed);
    std::this_thread::yield();
  }
  if (pushed != 0) {
    // order: relaxed -- push counter; the records themselves were published
    // by the ring's release store, not by this statistic.
    eng_->ring_pushed_[idx]->fetch_add(pushed, std::memory_order_relaxed);
  }
  if (eng_->obs_.push_ns != nullptr) eng_->obs_.push_ns->record_since(obs_t0);
  b.clear();
}

// ------------------------------------------------------------ HhhEngine ----

HhhEngine::HhhEngine(const EngineConfig& cfg)
    : cfg_(cfg),
      hierarchy_(std::make_unique<Hierarchy>(make_hierarchy(cfg.monitor.hierarchy))) {
  if (cfg.workers == 0) throw std::invalid_argument("HhhEngine: workers must be >= 1");
  if (cfg.producers == 0) {
    throw std::invalid_argument("HhhEngine: producers must be >= 1");
  }
  if (cfg.batch == 0) throw std::invalid_argument("HhhEngine: batch must be >= 1");
  if (cfg.history_depth == 0) {
    throw std::invalid_argument("HhhEngine: history_depth must be >= 1");
  }
  if (cfg.archive.enabled() && cfg.archive.queue_windows == 0) {
    throw std::invalid_argument("HhhEngine: archive queue_windows must be >= 1");
  }
  // Throws for the (unmergeable) trie algorithms.
  std::tie(mode_, params_) = lattice_config_of(*hierarchy_, cfg.monitor);
  static_assert(RhhhSpaceSaving::backend_mergeable(),
                "engine snapshots require a mergeable backend");
  static_assert(RhhhSpaceSaving::backend_loadable(),
                "the durable store requires a reloadable backend");

  pop_batch_ = std::clamp<std::size_t>(cfg.batch, 1, 4096);
  sealed_drops_.assign(cfg.history_depth, 0);
  sealed_durations_ns_.assign(cfg.history_depth, 0);
  workers_.reserve(cfg.workers);
  for (std::uint32_t w = 0; w < cfg.workers; ++w) {
    auto ws = std::make_unique<WorkerState>();
    // Every ring slot gets a distinct RNG stream; all slots stay
    // merge-compatible with every other shard by construction. The salt
    // spacing keeps depth-1 rings byte-identical to the original
    // live/sealed pair (slots 0x5eed0000 + w and 0x5eed2000 + w).
    ws->ring = WindowRing<RhhhSpaceSaving>(cfg.history_depth, [&](std::size_t slot) {
      return make_shard_lattice(0x5eed0000ULL + 0x2000ULL * slot + w);
    });
    workers_.push_back(std::move(ws));
  }
  const std::size_t n_rings = std::size_t{cfg.producers} * cfg.workers;
  rings_.reserve(n_rings);
  ring_dropped_.reserve(n_rings);
  ring_pushed_.reserve(n_rings);
  ring_popped_.reserve(n_rings);
  for (std::uint32_t p = 0; p < cfg.producers; ++p) {
    for (std::uint32_t w = 0; w < cfg.workers; ++w) {
      rings_.push_back(std::make_unique<SpscRing<Key128>>(cfg.ring_capacity));
      ring_dropped_.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
      ring_pushed_.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
      ring_popped_.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
    }
    backpressure_.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
  }
  producers_.reserve(cfg.producers);
  for (std::uint32_t p = 0; p < cfg.producers; ++p) {
    producers_.push_back(std::unique_ptr<Producer>(new Producer(this, p)));
  }
  // order: relaxed -- constructor runs single-threaded; the handoff to any
  // thread happens-before via std::thread creation in start().
  win_started_ns_.store(
      std::chrono::steady_clock::now().time_since_epoch().count(),
      std::memory_order_relaxed);
  win_started_wall_ns_ =
      std::chrono::system_clock::now().time_since_epoch().count();
  // The archiver inherits the engine's telemetry switch and registry unless
  // the archive config overrides them explicitly.
  if (!cfg_.telemetry) cfg_.archive.telemetry = false;
  if (cfg_.archive.metrics == nullptr) cfg_.archive.metrics = cfg_.metrics;
  bind_metrics();
  bind_health();
}

HhhEngine::~HhhEngine() {
  stop();
  // After stop(): no worker/clock/archiver thread can touch obs_ anymore,
  // and the registry must stop sampling the `this`-capturing gauges before
  // the members they read are destroyed.
  unbind_metrics();
}

void HhhEngine::bind_metrics() {
  if (!cfg_.telemetry) return;
  obs::MetricsRegistry& reg =
      cfg_.metrics != nullptr ? *cfg_.metrics : obs::MetricsRegistry::global();
  obs_.reg = &reg;
  obs_.trace = &obs::TraceRing::global();
  // Histograms and the queue-depth gauge are registry-owned and cumulative:
  // successive engines (bench sweeps) accumulate into the same families.
  obs_.push_ns = &reg.histogram("rhhh_engine_push_batch_ns",
                                "producer batch push latency (ns)");
  obs_.pop_ns = &reg.histogram("rhhh_engine_pop_batch_ns",
                               "worker drain-pass latency (ns)");
  obs_.batch_fill = &reg.histogram(
      "rhhh_engine_batch_fill",
      "records consumed per productive drain pass (batching efficacy)");
  obs_.quiesce_ns = &reg.histogram(
      "rhhh_engine_quiesce_ns", "epoch boundary request->all-acked wait (ns)");
  obs_.rotation_ns =
      &reg.histogram("rhhh_engine_rotation_ns", "window rotation cost (ns)");
  obs_.rotation_drift_ns = &reg.histogram(
      "rhhh_engine_rotation_drift_ns",
      "budget-spent to rotation-start drift (ns, budget-driven rotations)");
  obs_.snapshot_ns = &reg.histogram("rhhh_engine_snapshot_merge_ns",
                                    "snapshot/window_snapshot merge time (ns)");
  obs_.trend_ns = &reg.histogram("rhhh_engine_trend_merge_ns",
                                 "trend_snapshot merge time (ns)");
  obs_.archive_q_depth = &reg.gauge("rhhh_engine_archive_queue_depth",
                                    "sealed windows queued for the archiver");
  // Counter mirrors and occupancy: gauge_fn samplers over the engine's own
  // atomics (lock-free reads only -- the registry samples them under its
  // scrape mutex). They capture `this`, so every name goes on the owned
  // list and dies with the engine.
  const auto own = [&](const std::string& name, std::function<double()> fn,
                       const std::string& help) {
    reg.gauge_fn(name, std::move(fn), help);
    obs_.owned.push_back(name);
  };
  own("rhhh_engine_offered",
      [this] {
        double o = 0;
        for (const auto& p : producers_) o += static_cast<double>(p->offered());
        return o;
      },
      "records accepted and published by producer handles");
  own("rhhh_engine_consumed",
      [this] {
        double c = 0;
        for (const auto& ws : workers_) {
          // order: relaxed -- statistic sampled at scrape time.
          c += static_cast<double>(ws->consumed.load(std::memory_order_relaxed));
        }
        return c;
      },
      "records consumed into shard lattices");
  own("rhhh_engine_dropped",
      [this] {
        double d = 0;
        for (const auto& r : ring_dropped_) {
          // order: relaxed -- statistic sampled at scrape time.
          d += static_cast<double>(r->load(std::memory_order_relaxed));
        }
        return d;
      },
      "records dropped at full rings (kDropTail)");
  own("rhhh_engine_backpressure_waits",
      [this] {
        double b = 0;
        for (const auto& w : backpressure_) {
          // order: relaxed -- statistic sampled at scrape time.
          b += static_cast<double>(w->load(std::memory_order_relaxed));
        }
        return b;
      },
      "producer spin rounds on full rings (kBlock)");
  own("rhhh_engine_epochs",
      [this] {
        // order: relaxed -- statistic sampled at scrape time.
        return static_cast<double>(epoch_req_.load(std::memory_order_relaxed));
      },
      "quiesce generations (snapshots + rotations)");
  own("rhhh_engine_window_epochs",
      [this] {
        // order: relaxed -- statistic sampled at scrape time.
        return static_cast<double>(
            window_epochs_.load(std::memory_order_relaxed));
      },
      "completed window rotations");
  own("rhhh_engine_archived_windows",
      [this] {
        // order: relaxed -- statistic sampled at scrape time.
        return static_cast<double>(
            archived_windows_.load(std::memory_order_relaxed));
      },
      "windows persisted by the archiver");
  own("rhhh_engine_archive_queue_drops",
      [this] {
        // order: relaxed -- statistic sampled at scrape time.
        return static_cast<double>(
            archive_queue_drops_.load(std::memory_order_relaxed));
      },
      "sealed windows dropped at a full archiver queue");
  own("rhhh_engine_archive_errors",
      [this] {
        // order: relaxed -- statistic sampled at scrape time.
        return static_cast<double>(
            archive_errors_.load(std::memory_order_relaxed));
      },
      "windows lost to archive I/O errors");
  own("rhhh_engine_budget_rotations",
      [this] {
        // order: relaxed -- statistic sampled at scrape time.
        return static_cast<double>(
            budget_rotations_.load(std::memory_order_relaxed));
      },
      "budget-driven rotations (the drift-metered subset)");
  own("rhhh_engine_late_rotations",
      [this] {
        // order: relaxed -- statistic sampled at scrape time.
        return static_cast<double>(
            late_rotations_.load(std::memory_order_relaxed));
      },
      "budget rotations later than the 200us fallback timeslice");
  own("rhhh_engine_trend_cache_hits",
      [this] {
        // order: relaxed -- statistic sampled at scrape time.
        return static_cast<double>(
            trend_cache_hits_.load(std::memory_order_relaxed));
      },
      "trend_snapshot sealed-merge cache hits");
  for (std::uint32_t p = 0; p < producers(); ++p) {
    for (std::uint32_t w = 0; w < workers(); ++w) {
      own("rhhh_engine_ring_occupancy{ring=\"p" + std::to_string(p) + "w" +
              std::to_string(w) + "\"}",
          [this, p, w] {
            return static_cast<double>(ring(p, w).size_approx());
          },
          "records in flight per producer x worker ring");
    }
  }
}

void HhhEngine::unbind_metrics() {
  if (obs_.reg == nullptr) return;
  for (const std::string& name : obs_.owned) obs_.reg->unregister(name);
  obs_.owned.clear();
  obs_.reg = nullptr;
}

void HhhEngine::bind_health() {
  // The whole health layer rides the telemetry switch: an uninstrumented
  // engine carries no ledger, no watchdog, and no rotation-path probe cost
  // beyond one null test.
  if (!cfg_.telemetry) return;
  if (cfg_.health.certificates) {
    health_ = std::make_unique<obs::HealthLedger>(obs_.reg, cfg_.health.keep);
  }
  if (!cfg_.health.watchdog_enabled()) return;
  obs::StallWatchdog::Config wcfg;
  wcfg.period_ns =
      static_cast<std::uint64_t>(cfg_.health.watchdog_millis) * 1'000'000;
  wcfg.dump_path = cfg_.health.dump_path;
  // The sampler runs on the watchdog's thread while the engine may be
  // stalled inside a control op: it must stay lock-free (NEVER snap_mu_ --
  // a wedged rotation HOLDS snap_mu_, and diagnosing exactly that case is
  // the watchdog's job). Everything below is relaxed atomic loads.
  const std::int64_t period = static_cast<std::int64_t>(wcfg.period_ns);
  auto sampler = [this, period]() -> obs::StallWatchdog::Progress {
    obs::StallWatchdog::Progress p;
    for (const auto& ws : workers_) {
      // order: relaxed -- statistic sampled at watchdog cadence.
      p.consumed += ws->consumed.load(std::memory_order_relaxed);
    }
    for (const auto& r : rings_) p.backlog += r->size_approx();
    // order: relaxed -- statistic sampled at watchdog cadence.
    p.window_epochs = window_epochs_.load(std::memory_order_relaxed);
    // order: relaxed -- liveness probe; a stale read costs one period.
    if (windowed() && running_.load(std::memory_order_relaxed)) {
      const std::int64_t now =
          std::chrono::steady_clock::now().time_since_epoch().count();
      // order: relaxed x2 -- stale-tolerant budget state (see budget_due);
      // "overdue" means a full watchdog period past the ideal boundary.
      const std::int64_t deadline =
          epoch_deadline_ns_.load(std::memory_order_relaxed);
      const std::int64_t mark =
          budget_spent_ns_.load(std::memory_order_relaxed);
      p.rotation_overdue =
          (cfg_.epoch_millis > 0 && deadline != 0 && now > deadline + period) ||
          (mark != 0 && now > mark + period);
    }
    return p;
  };
  // collect_stats() is all relaxed loads -- safe from the watchdog thread
  // even while the engine is wedged.
  auto stats_fn = [this] { return engine_stats_json(collect_stats()); };
  watchdog_ = std::make_unique<obs::StallWatchdog>(
      std::move(wcfg), std::move(sampler), std::move(stats_fn), health_.get(),
      obs_.trace, obs_.reg);
}

std::unique_ptr<RhhhSpaceSaving> HhhEngine::make_shard_lattice(
    std::uint64_t salt) const {
  LatticeParams lp = params_;
  // Distinct per-shard RNG streams; merge compatibility only needs the
  // hierarchy/mode/V/r to match, which cloning the params guarantees.
  lp.seed = mix64(params_.seed ^ salt);
  return std::make_unique<RhhhSpaceSaving>(*hierarchy_, mode_, lp);
}

void HhhEngine::start() {
  // snap_mu_ serializes all control ops (start/stop/snapshot/rotate) so a
  // no-quiesce snapshot can never overlap freshly spawned workers.
  std::lock_guard<std::mutex> snap_lk(snap_mu_);
  // order: relaxed -- running_ is only written under snap_mu_ (held here),
  // so the flag cannot change between this check and the store below.
  if (running_.load(std::memory_order_relaxed)) return;
  if (cfg_.archive.enabled() && archive_ == nullptr) {
    // Opening the store can fail (bad directory, permissions): do it
    // before anything else runs so a throwing start() leaves the engine
    // fully stopped. Numbering continues after any existing segments.
    archive_ = std::make_unique<store::WindowArchive>(
        store::WindowArchive::open_write(cfg_.archive));
  }
  // order: release -- pairs with the acquire loads in flush_worker() and
  // worker_loop(): a thread that observes running_ == true also observes the
  // archive_ initialization above (workers/producers are created by this
  // thread, but producer handles may be polled from threads start() never
  // spawned).
  running_.store(true, std::memory_order_release);
  if (windowed()) {
    // Reset the whole budget state BEFORE any worker thread exists: workers
    // meter the budget from their first batch, and a previous run may have
    // left a spent countdown or -- if stop() joined a worker mid-claim --
    // a set epoch-due token behind.
    // order: relaxed x5 -- read by the worker/clock threads created below;
    // std::thread creation is the happens-before edge, not these atomics.
    const std::int64_t now_ns =
        std::chrono::steady_clock::now().time_since_epoch().count();
    win_started_ns_.store(now_ns, std::memory_order_relaxed);
    epoch_budget_left_.store(static_cast<std::int64_t>(cfg_.epoch_packets),
                             std::memory_order_relaxed);
    epoch_deadline_ns_.store(
        cfg_.epoch_millis > 0
            ? now_ns + static_cast<std::int64_t>(cfg_.epoch_millis) * 1'000'000
            : 0,
        std::memory_order_relaxed);
    // order: relaxed x2 -- same thread-creation hand-off as above.
    budget_spent_ns_.store(0, std::memory_order_relaxed);
    epoch_due_.store(false, std::memory_order_relaxed);
  }
  for (std::uint32_t w = 0; w < workers(); ++w) {
    workers_[w]->thread = std::thread([this, w] { worker_loop(w); });
  }
  if (windowed()) {
    // order: relaxed -- the generation token is read by the clock thread
    // created on the next line; thread creation is the happens-before edge.
    const std::uint64_t gen = clock_gen_.load(std::memory_order_relaxed);
    clock_thread_ = std::thread([this, gen] { clock_loop(gen); });
  }
  if (archive_ != nullptr) {
    win_started_wall_ns_ =
        std::chrono::system_clock::now().time_since_epoch().count();
    // order: relaxed -- generation only changes under snap_mu_ (held here);
    // the archiver thread inherits it by value at creation.
    const std::uint64_t agen = archive_gen_.load(std::memory_order_relaxed);
    archive_thread_ = std::thread(
        [this, arch = archive_.get(), agen] { archive_loop(arch, agen); });
  }
  // Last: the watchdog observes a fully started engine from its first
  // sample (its sampler never touches snap_mu_, so starting it under the
  // lock is fine).
  if (watchdog_ != nullptr) watchdog_->start();
}

void HhhEngine::stop() {
  std::unique_lock<std::mutex> snap_lk(snap_mu_);
  // order: acq_rel -- the release half publishes the flip to the acquire
  // loads in flush_worker()/worker_loop() (spinning kBlock producers fall
  // back to drop-tail, workers enter their shutdown drain); the acquire half
  // pairs with start()'s release store so the losing racer of two stop()
  // calls returns seeing a fully-started engine, never a half-built one.
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // Retire the watchdog before the workers stop consuming: a draining
  // shutdown must never read as a stall. Its thread never takes snap_mu_,
  // so the join under the lock cannot deadlock.
  if (watchdog_ != nullptr) watchdog_->stop();
  {
    std::lock_guard<std::mutex> lk(ctl_mu_);
    ctl_cv_.notify_all();
  }
  for (auto& ws : workers_) {
    if (ws->thread.joinable()) ws->thread.join();
  }
  // A producer racing stop() can slip a batch into a ring after that
  // worker's shutdown drain saw it empty; sweep the rings once more from
  // here (workers are joined, so this thread is the only consumer) so no
  // accepted record is ever stranded outside consumed/dropped accounting.
  std::vector<Key128> batch(pop_batch_);
  for (std::uint32_t w = 0; w < workers(); ++w) {
    while (drain_pass(w, batch) != 0) {
    }
  }
  // Retire the clock generation and take its handle while still under
  // snap_mu_ (so a concurrent start() never assigns over a joinable
  // thread), but join OUTSIDE the lock: the clock may be blocked on
  // snap_mu_ for a rotation, and the stale generation token makes it exit
  // without rotating as soon as it gets through.
  // order: release -- pairs with clock_loop()'s acquire load of clock_gen_;
  // a clock that observes the new generation also observes running_ == false
  // and every teardown write sequenced before this bump.
  clock_gen_.fetch_add(1, std::memory_order_release);
  std::thread clock = std::move(clock_thread_);
  // Retire the archiver the same way: generation bumped under arch_mu_ so
  // its cv wait cannot miss the wakeup, handle and store taken under
  // snap_mu_ so a concurrent start() spawns a fresh generation. With
  // archive_ null, no further rotation can enqueue.
  std::thread archiver = std::move(archive_thread_);
  std::unique_ptr<store::WindowArchive> arch = std::move(archive_);
  {
    std::lock_guard<std::mutex> lk(arch_mu_);
    // order: release -- pairs with the acquire load in archive_loop()'s wait
    // predicate; bumped under arch_mu_ so the cv wait cannot miss it.
    archive_gen_.fetch_add(1, std::memory_order_release);
  }
  arch_cv_.notify_all();
  snap_lk.unlock();
  if (clock.joinable()) clock.join();
  if (archiver.joinable()) archiver.join();
  if (arch != nullptr) {
    // The retired archiver drains the queue before exiting; sweep once
    // more for pathological interleavings, then seal the segment so a
    // cold reader gets the footer-indexed fast path.
    for (;;) {
      ArchiveItem item;
      {
        std::lock_guard<std::mutex> lk(arch_mu_);
        if (archive_q_.empty()) break;
        item = std::move(archive_q_.front());
        archive_q_.pop_front();
      }
      archive_one(arch.get(), item);
    }
    try {
      arch->close();
    } catch (const std::exception&) {
      // order: relaxed -- error counter; no payload rides on it.
      archive_errors_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void HhhEngine::archive_loop(store::WindowArchive* arch, std::uint64_t gen) {
  for (;;) {
    ArchiveItem item;
    {
      std::unique_lock<std::mutex> lk(arch_mu_);
      arch_cv_.wait(lk, [&] {
        // order: acquire -- pairs with stop()'s release bump; observing the
        // retirement must also observe the stopped state behind it (arch_mu_
        // already orders the queue itself).
        return !archive_q_.empty() ||
               archive_gen_.load(std::memory_order_acquire) != gen;
      });
      // Retired AND drained: exit. While records remain, keep draining
      // even after retirement so stop() loses nothing.
      if (archive_q_.empty()) return;
      item = std::move(archive_q_.front());
      archive_q_.pop_front();
      if (obs_.archive_q_depth != nullptr) {
        obs_.archive_q_depth->set(static_cast<std::int64_t>(archive_q_.size()));
      }
    }
    // Decoding, merging, serialization and disk I/O all happen here,
    // outside every engine lock: an archiver stalled on a slow disk
    // delays nothing but the queue.
    archive_one(arch, item);
  }
}

void HhhEngine::archive_one(store::WindowArchive* arch, const ArchiveItem& item) {
  try {
    // Replay the exact cross-shard merge trend_snapshot() performs for its
    // newest sealed window: a fresh same-configuration lattice, each shard
    // merged in worker order (the decoded blobs reproduce the shard
    // lattices' counter order, so the merge -- and therefore the persisted
    // HHH sets -- are byte-identical to the in-memory view), this window's
    // drops folded into N.
    auto merged = make_shard_lattice(0x6e7ac000ULL ^ item.meta.epoch);
    for (const store::Bytes& blob : item.shard_blobs) {
      const auto shard = store::decode_window(blob.data(), blob.size(), *hierarchy_,
                                              nullptr, &cfg_.monitor.hierarchy);
      merged->merge(*shard);
    }
    if (item.meta.drops != 0) merged->advance_stream(item.meta.drops);
    const std::uint64_t append_t0 =
        obs_.trace != nullptr ? obs::now_ns() : 0;
    arch->append(item.meta, cfg_.monitor.hierarchy, *merged);
    // order: relaxed -- success counter; readers that need it consistent
    // with the on-disk state reopen the store instead.
    archived_windows_.fetch_add(1, std::memory_order_relaxed);
    if (obs_.trace != nullptr) {
      const std::uint64_t now = obs::now_ns();
      obs_.trace->record(obs::TraceEvent::kArchive,
                         static_cast<std::int64_t>(now), item.meta.epoch,
                         now >= append_t0 ? now - append_t0 : 0);
    }
  } catch (const std::exception&) {
    // Window lost (disk full, I/O error); count loudly and keep going.
    // order: relaxed -- error counter; no payload rides on it.
    archive_errors_.fetch_add(1, std::memory_order_relaxed);
    if (obs_.trace != nullptr) {
      obs_.trace->record(obs::TraceEvent::kArchiveError,
                         static_cast<std::int64_t>(obs::now_ns()),
                         item.meta.epoch, 0);
    }
  }
}

void HhhEngine::enqueue_archive(std::uint64_t sealed_drop,
                                std::uint64_t duration_ns,
                                std::int64_t wall_start_ns,
                                std::int64_t wall_end_ns) {
  // A backlogged archiver (slow disk) means this window is going to be
  // dropped anyway: check before paying for the blobs, so drops are
  // near-free exactly when the system is already struggling. The final
  // push re-checks under the same lock.
  {
    std::lock_guard<std::mutex> lk(arch_mu_);
    if (archive_q_.size() >= cfg_.archive.queue_windows) {
      // order: relaxed -- drop counter; the queue itself is under arch_mu_.
      archive_queue_drops_.fetch_add(1, std::memory_order_relaxed);
      if (obs_.trace != nullptr) {
        // order: relaxed -- window_epochs_ stable under snap_mu_ (held).
        obs_.trace->record(obs::TraceEvent::kArchiveDrop,
                           static_cast<std::int64_t>(obs::now_ns()),
                           window_epochs_.load(std::memory_order_relaxed), 0);
      }
      return;
    }
  }
  // Workers are already ingesting the next window; the just-sealed shard
  // windows are immutable until the next rotation, which needs snap_mu_
  // (held here). The rotation path pays only these flat per-shard
  // serializations -- the cross-shard merge and all I/O run on the
  // archiver thread -- and the queue hand-off below never blocks.
  ArchiveItem item;
  // order: relaxed -- window_epochs_ is only advanced under snap_mu_, which
  // the rotation calling us holds; the value is stable here.
  item.meta.epoch = window_epochs_.load(std::memory_order_relaxed);
  item.meta.wall_start_ns = wall_start_ns;
  item.meta.wall_end_ns = wall_end_ns;
  item.meta.duration_ns = duration_ns;
  item.meta.drops = sealed_drop;
  item.shard_blobs.reserve(workers_.size());
  std::uint64_t n = sealed_drop;
  std::uint64_t updates = 0;
  for (const auto& ws : workers_) {
    const RhhhSpaceSaving& shard = ws->ring.sealed(0);
    n += shard.stream_length();
    updates += shard.updates_performed();
    // Each blob carries its own shard's stream counters, so the decoded
    // instances merge exactly like the live shard lattices would.
    store::WindowMeta shard_meta = item.meta;
    shard_meta.stream_length = shard.stream_length();
    shard_meta.updates = shard.updates_performed();
    item.shard_blobs.push_back(
        store::encode_window(shard_meta, cfg_.monitor.hierarchy, shard));
  }
  item.meta.stream_length = n;
  item.meta.updates = updates;
  {
    std::lock_guard<std::mutex> lk(arch_mu_);
    if (archive_q_.size() >= cfg_.archive.queue_windows) {
      // order: relaxed -- drop counter (same as the pre-check above).
      archive_queue_drops_.fetch_add(1, std::memory_order_relaxed);
      if (obs_.trace != nullptr) {
        obs_.trace->record(obs::TraceEvent::kArchiveDrop,
                           static_cast<std::int64_t>(obs::now_ns()),
                           item.meta.epoch, 0);
      }
      return;
    }
    archive_q_.push_back(std::move(item));
    if (obs_.archive_q_depth != nullptr) {
      obs_.archive_q_depth->set(static_cast<std::int64_t>(archive_q_.size()));
    }
  }
  arch_cv_.notify_one();
}

std::size_t HhhEngine::drain_pass(std::uint32_t w, std::vector<Key128>& batch) {
  WorkerState& ws = *workers_[w];
  RhhhSpaceSaving& lattice = ws.ring.live();
  // Telemetry probe: one clock read per pass, recorded only for passes that
  // consumed something (idle spins would swamp the histogram with noise).
  const std::uint64_t obs_t0 = obs_.pop_ns != nullptr ? obs::now_ns() : 0;
  std::size_t total = 0;
  for (std::uint32_t p = 0; p < producers(); ++p) {
    const std::size_t n = ring(p, w).try_pop_n(batch.data(), batch.size());
    if (n == 0) continue;
    // Whole popped batches feed the staged LatticeHhh pipeline (block-RNG,
    // survivor compaction, prefetched apply) -- state remains byte-identical
    // to per-record update() calls by the update_batch contract.
    lattice.update_batch(batch.data(), n);
    // order: relaxed -- pop counter; record visibility came from the ring.
    ring_popped_[p * workers_.size() + w]->fetch_add(n, std::memory_order_relaxed);
    total += n;
  }
  // order: relaxed -- consumed counter; exact only under quiesce.
  if (total != 0) {
    ws.consumed.fetch_add(total, std::memory_order_relaxed);
    if (obs_.pop_ns != nullptr) obs_.pop_ns->record_since(obs_t0);
    // Batching efficacy: how full each productive drain pass ran (idle
    // passes are skipped for the same reason pop_ns skips them).
    if (obs_.batch_fill != nullptr) obs_.batch_fill->record(total);
  }
  return total;
}

void HhhEngine::worker_loop(std::uint32_t w) {
  WorkerState& ws = *workers_[w];
  std::vector<Key128> batch(pop_batch_);
  std::uint64_t acked = 0;
  // Cooperative rotation state, all thread-local so non-windowed engines
  // pay nothing past two immutable bools. `metering` (packet budget
  // configured) drives the countdown whether or not the cooperative path is
  // on -- the fallback clock reads the same countdown, and the drift mark
  // set at the crossing keeps the baseline's drift measurement honest.
  // `claimed` tracks ownership of the epoch-due token across batches while
  // snap_mu_ is busy (the claim survives quiesce boundaries: a try-lock
  // miss below never blocks this worker from acking them).
  const bool metering = cfg_.epoch_packets > 0;
  const bool cooperative = windowed() && cfg_.cooperative_rotation;
  bool claimed = false;
  for (;;) {
    // TEST HOOK (see test_block_worker): park while singled out. Costs the
    // production path one relaxed load + compare per drain pass.
    // order: relaxed -- poll-only injection flag; no payload rides on it.
    while (stall_worker_.load(std::memory_order_relaxed) == w) {
      // order: relaxed -- stop() unparks us; its acq_rel flip is re-checked
      // with proper ordering by the shutdown path below.
      if (!running_.load(std::memory_order_relaxed)) break;
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    const std::size_t got = drain_pass(w, batch);
    if (metering && got != 0) meter_consumed(got);
    if (cooperative && got != 0 && !claimed && budget_due()) {
      // Amortized cooperative check: one relaxed load + compare per batch
      // (plus one clock read when a wall budget is configured), so the
      // per-record update stays O(1). The budget is spent and unclaimed:
      // elect ourselves rotator with a single CAS.
      bool expect = false;
      // order: relaxed -- the token only arbitrates who ATTEMPTS the
      // rotation; every payload the rotation touches is ordered by snap_mu_
      // inside the attempt, and per-variable coherence alone makes the
      // claim exclusive.
      claimed = epoch_due_.compare_exchange_strong(expect, true,
                                                   std::memory_order_relaxed);
    }
    if (claimed && try_rotate_cooperative(w, batch, acked)) {
      // Settled: either we rotated, or a racer (manual call / fallback
      // clock) already reset the budget. Only the claimant releases the
      // token. A false return keeps the claim: snap_mu_ was busy, retry
      // after the next batch (and after servicing any boundary below).
      // order: relaxed -- see the claim CAS above.
      epoch_due_.store(false, std::memory_order_relaxed);
      claimed = false;
    }
    // order: acquire -- pairs with quiesced()'s release store: a worker that
    // sees the new epoch also sees every coordinator write sequenced before
    // the request (nothing rides on it today, but the boundary must not be
    // weaker than the request that created it).
    const std::uint64_t e = epoch_req_.load(std::memory_order_acquire);
    if (e > acked) {
      // Epoch boundary: consume exactly the backlog visible in each ring at
      // this instant, then ack and park until the coordinator is done with
      // this shard's lattices (merging, or rotating the window pair).
      boundary_drain(w, batch);
      std::unique_lock<std::mutex> lk(ctl_mu_);
      ws.epoch_acked = e;
      acked = e;
      ctl_cv_.notify_all();
      ctl_cv_.wait(lk, [&] {
        // order: relaxed x2 -- both flags are checked under ctl_mu_, and
        // their writers (quiesced() resume, stop()) notify under the same
        // mutex: the lock is the happens-before edge, not the atomics.
        return epoch_resume_.load(std::memory_order_relaxed) >= e ||
               !running_.load(std::memory_order_relaxed);
      });
      continue;
    }
    if (got == 0) {
      // order: acquire -- pairs with stop()'s acq_rel exchange; observing
      // the stop must also observe any record a producer pushed before it
      // observed the stop (the final drain below must not miss them).
      if (!running_.load(std::memory_order_acquire)) {
        // Shutdown: consume everything still in flight, then exit.
        while (drain_pass(w, batch) != 0) {
        }
        return;
      }
      std::this_thread::yield();
    }
  }
}

void HhhEngine::boundary_drain(std::uint32_t w, std::vector<Key128>& batch) {
  // Bounding the drain by the observed size keeps quiesce terminating even
  // while producers keep pushing -- later arrivals simply belong to the
  // next epoch.
  WorkerState& ws = *workers_[w];
  RhhhSpaceSaving& lattice = ws.ring.live();
  std::size_t drained = 0;
  for (std::uint32_t p = 0; p < producers(); ++p) {
    SpscRing<Key128>& r = ring(p, w);
    std::size_t left = r.size_approx();
    std::uint64_t popped = 0;
    while (left != 0) {
      const std::size_t n =
          r.try_pop_n(batch.data(), std::min(batch.size(), left));
      if (n == 0) break;
      lattice.update_batch(batch.data(), n);
      // order: relaxed -- consumed counter (see drain_pass).
      ws.consumed.fetch_add(n, std::memory_order_relaxed);
      popped += n;
      left -= n;
    }
    if (popped != 0) {
      // order: relaxed -- pop counter (see drain_pass).
      ring_popped_[p * workers_.size() + w]->fetch_add(
          popped, std::memory_order_relaxed);
      drained += popped;
    }
  }
  // Boundary-drained records reached the live lattice, so they spend the
  // packet budget like any consumed batch (the consumed-only basis). At a
  // rotation boundary the decrement lands before this worker's ack -- and
  // therefore before the budget reset, which runs only once every worker
  // has acked -- so it is wiped with the sealed window, never leaked into
  // the fresh one.
  if (drained != 0 && cfg_.epoch_packets > 0) meter_consumed(drained);
}

void HhhEngine::meter_consumed(std::size_t n) {
  // order: relaxed -- the countdown is budget bookkeeping, not a
  // synchronization point: rotation paths re-check under snap_mu_ before
  // acting, and the reset inside the quiesced rotation cannot race a
  // decrement (every worker is parked past its boundary drain by then).
  const std::int64_t old = epoch_budget_left_.fetch_sub(
      static_cast<std::int64_t>(n), std::memory_order_relaxed);
  if (old > 0 && old <= static_cast<std::int64_t>(n)) {
    // Exactly one decrement takes the countdown from positive to spent
    // (fetch_sub totally orders them): this worker is the budget's first
    // observer and records the ideal boundary instant for drift metering.
    note_budget_spent(
        std::chrono::steady_clock::now().time_since_epoch().count());
  }
}

void HhhEngine::note_budget_spent(std::int64_t mark_ns) {
  std::int64_t expect = 0;
  // order: relaxed -- the mark is a drift statistic: rotate_locked() reads
  // it under snap_mu_ and validates it against the window start, so a
  // racing write needs no ordering (first writer per window wins).
  budget_spent_ns_.compare_exchange_strong(expect, mark_ns,
                                           std::memory_order_relaxed);
}

bool HhhEngine::budget_due() {
  // order: relaxed -- lock-free budget metering tolerates staleness: a
  // spuriously "due" caller re-checks under snap_mu_ before rotating, and a
  // spuriously "not due" one retries next batch / next clock tick.
  if (cfg_.epoch_packets > 0 &&
      epoch_budget_left_.load(std::memory_order_relaxed) <= 0) {
    return true;
  }
  if (cfg_.epoch_millis > 0) {
    const std::int64_t now_ns =
        std::chrono::steady_clock::now().time_since_epoch().count();
    // order: relaxed -- same stale-tolerant budget metering as above.
    const std::int64_t deadline =
        epoch_deadline_ns_.load(std::memory_order_relaxed);
    if (now_ns >= deadline) {
      // The wall budget's ideal boundary is the deadline itself, however
      // late anyone noticed -- which keeps the drift measurement honest
      // even on the polling fallback path.
      note_budget_spent(deadline);
      return true;
    }
  }
  return false;
}

bool HhhEngine::try_rotate_cooperative(std::uint32_t w,
                                       std::vector<Key128>& batch,
                                       std::uint64_t& acked) {
  // NEVER block on snap_mu_ here: a control op holding it may be waiting
  // for this very worker's quiesce ack. On a miss the worker keeps the
  // claim, services any pending boundary, and retries after the next batch.
  std::unique_lock<std::mutex> snap_lk(snap_mu_, std::try_to_lock);
  if (!snap_lk.owns_lock()) return false;
  // order: relaxed -- running_ only flips under snap_mu_ (held); a stopping
  // engine settles the claim without rotating (start() re-arms the token).
  if (!running_.load(std::memory_order_relaxed)) return true;
  // Re-check under the lock: a manual rotate_epoch() or the fallback clock
  // may have rotated (and reset the budget) while we held a stale claim --
  // the claim then simply dissolves. No double rotation is possible.
  if (!budget_due()) return true;
  rotate_locked(w, &batch, &acked);
  return true;
}

void HhhEngine::clock_loop(std::uint64_t gen) {
  // The DEMOTED fallback clock: with cooperative rotation (the default) the
  // workers meter the budget at their batch boundaries and rotate
  // themselves, so this thread matters only for idle streams -- a wall
  // budget with no traffic has no batch boundary to piggyback on. With
  // cooperative_rotation == false it is the sole automatic rotator (the
  // pre-cooperative 200us-timeslice baseline the drift bench compares
  // against). Either way it meters the same consumed-only budget lock-free
  // and only takes snap_mu_ when a rotation is actually due -- a stream of
  // concurrent snapshots must not starve the clock, and an idle clock must
  // not contend with them. A stale generation token (this thread has been
  // retired by stop(), possibly with a successor already running) exits
  // without touching anything.
  constexpr std::int64_t kTimesliceNs = 200'000;  // 200us poll cadence
  // order: acquire x2 -- pair with stop()'s release bump of clock_gen_ and
  // acq_rel flip of running_: a retired/stopped clock must also observe the
  // teardown that retired it before touching anything.
  while (clock_gen_.load(std::memory_order_acquire) == gen &&
         running_.load(std::memory_order_acquire)) {
    if (!budget_due()) {
      // Sleep one timeslice, but never past a wall deadline that lands
      // sooner -- a wall-clock epoch on an idle stream must not overshoot
      // by a whole tick.
      std::int64_t sleep_ns = kTimesliceNs;
      if (cfg_.epoch_millis > 0) {
        const std::int64_t now_ns =
            std::chrono::steady_clock::now().time_since_epoch().count();
        // order: relaxed -- stale-tolerant metering (see budget_due).
        const std::int64_t left =
            epoch_deadline_ns_.load(std::memory_order_relaxed) - now_ns;
        sleep_ns = std::clamp<std::int64_t>(left, 1'000, kTimesliceNs);
      }
      std::this_thread::sleep_for(std::chrono::nanoseconds(sleep_ns));
      continue;
    }
    std::lock_guard<std::mutex> lk(snap_mu_);
    // order: acquire x2 -- re-check under snap_mu_; stop() may have retired
    // this generation while we slept or waited for the lock.
    if (clock_gen_.load(std::memory_order_acquire) != gen ||
        !running_.load(std::memory_order_acquire)) {
      break;
    }
    // Re-check under the lock: a manual rotate_epoch() or a cooperative
    // rotator may have just reset the budget while we waited.
    if (budget_due()) rotate_locked();
  }
}

EngineStats HhhEngine::collect_stats() const {
  // order: relaxed (every counter below) -- stats() documents these as
  // individually-consistent live counters; exactness comes only from calling
  // under quiesce, where the ctl_mu_ hand-off orders the workers' writes.
  EngineStats s;
  s.per_worker_consumed.reserve(workers_.size());
  for (const auto& ws : workers_) {
    // order: relaxed -- per-worker consumed counter (see header comment).
    const std::uint64_t c = ws->consumed.load(std::memory_order_relaxed);
    s.per_worker_consumed.push_back(c);
    s.consumed += c;
  }
  s.per_ring_dropped.reserve(rings_.size());
  s.per_ring_pushed.reserve(rings_.size());
  s.per_ring_popped.reserve(rings_.size());
  for (const auto& d : ring_dropped_) {
    // order: relaxed -- per-ring drop counter.
    const std::uint64_t n = d->load(std::memory_order_relaxed);
    s.per_ring_dropped.push_back(n);
    s.dropped += n;
  }
  for (const auto& p : ring_pushed_) {
    // order: relaxed -- per-ring push counter.
    s.per_ring_pushed.push_back(p->load(std::memory_order_relaxed));
  }
  for (const auto& p : ring_popped_) {
    // order: relaxed -- per-ring pop counter.
    s.per_ring_popped.push_back(p->load(std::memory_order_relaxed));
  }
  for (const auto& p : producers_) s.offered += p->offered();
  for (const auto& b : backpressure_) {
    // order: relaxed -- backpressure-retry counter.
    s.backpressure_waits += b->load(std::memory_order_relaxed);
  }
  // order: relaxed x9 -- scalar counters; the archive trio is written by the
  // archiver thread and only consistent with the on-disk state after stop().
  s.epochs = epoch_req_.load(std::memory_order_relaxed);
  s.window_epochs = window_epochs_.load(std::memory_order_relaxed);
  s.archived_windows = archived_windows_.load(std::memory_order_relaxed);
  s.archive_queue_drops = archive_queue_drops_.load(std::memory_order_relaxed);
  s.archive_errors = archive_errors_.load(std::memory_order_relaxed);
  s.trend_cache_hits = trend_cache_hits_.load(std::memory_order_relaxed);
  s.budget_rotations = budget_rotations_.load(std::memory_order_relaxed);
  s.rotation_drift_ns_total = drift_ns_total_.load(std::memory_order_relaxed);
  s.late_rotations = late_rotations_.load(std::memory_order_relaxed);
  return s;
}

EngineStats HhhEngine::stats() const { return collect_stats(); }

template <class Fn>
std::uint64_t HhhEngine::quiesced(Fn&& fn, std::uint32_t self,
                                  std::vector<Key128>* self_batch) {
  // order: relaxed -- epoch_req_ is only advanced under snap_mu_ (held by
  // every caller), so this read-modify-write cannot race another request.
  const std::uint64_t e = epoch_req_.load(std::memory_order_relaxed) + 1;
  // running_ cannot flip underneath us: start()/stop() take snap_mu_, which
  // the caller holds.
  // order: acquire -- pairs with start()'s release store; a live engine's
  // worker state is fully visible before we signal its workers.
  const bool live = running_.load(std::memory_order_acquire);
  if (live) {
    const std::uint64_t obs_t0 =
        obs_.quiesce_ns != nullptr ? obs::now_ns() : 0;
    // order: release -- pairs with the workers' acquire load in
    // worker_loop(): the boundary request publishes everything sequenced
    // before it alongside the new epoch number.
    epoch_req_.store(e, std::memory_order_release);
    if (self != kNoWorker) {
      // The caller IS worker `self` (a cooperative rotator): it cannot park
      // at its own boundary, so it performs its own boundary drain here and
      // self-acks below, then operates while the other workers wait.
      boundary_drain(self, *self_batch);
    }
    {
      std::unique_lock<std::mutex> lk(ctl_mu_);
      if (self != kNoWorker) workers_[self]->epoch_acked = e;
      ctl_cv_.wait(lk, [&] {
        return std::all_of(workers_.begin(), workers_.end(),
                           [&](const auto& ws) { return ws->epoch_acked >= e; });
      });
    }
    if (obs_.quiesce_ns != nullptr) {
      const std::uint64_t now = obs::now_ns();
      const std::uint64_t dur = now >= obs_t0 ? now - obs_t0 : 0;
      obs_.quiesce_ns->record(dur);
      obs_.trace->record(obs::TraceEvent::kQuiesce,
                         static_cast<std::int64_t>(now), e, dur);
    }
  } else {
    // No workers to quiesce (before start() or after stop()); the lattices
    // are only mutated by workers, so operating directly is safe. The
    // resume mark still has to advance with the request, or workers started
    // later would park at this epoch's boundary waiting for a resume that
    // already happened.
    // order: relaxed x2 -- no workers exist to synchronize with; a later
    // start() publishes these via thread creation.
    epoch_req_.store(e, std::memory_order_relaxed);
    epoch_resume_.store(e, std::memory_order_relaxed);
  }
  fn();
  if (live) {
    // Workers park inside ctl_cv_.wait, so everything fn() did to the shard
    // lattices happens-before their wakeup via this mutex hand-off.
    // order: relaxed -- written and read under ctl_mu_; the mutex is the
    // happens-before edge, not the atomic.
    std::lock_guard<std::mutex> lk(ctl_mu_);
    epoch_resume_.store(e, std::memory_order_relaxed);
    ctl_cv_.notify_all();
  }
  return e;
}

EngineSnapshot HhhEngine::snapshot() {
  std::lock_guard<std::mutex> snap_lk(snap_mu_);
  const obs::ScopedTimer obs_t(obs_.snapshot_ns);
  std::unique_ptr<RhhhSpaceSaving> merged;
  EngineStats s;
  const std::uint64_t e = quiesced([&] {
    // order: relaxed -- epoch_req_ only changes under snap_mu_ (held).
    merged = make_shard_lattice(0x6e7a9000ULL ^
                                epoch_req_.load(std::memory_order_relaxed));
    for (const auto& ws : workers_) merged->merge(ws->ring.live());
    s = collect_stats();
    // A dropped record was still offered on the wire: fold drops into N so
    // thresholds and slack terms see the full stream, exactly like
    // DistributedMeasurement::stop() does.
    if (s.dropped != 0) merged->advance_stream(s.dropped);
  });
  if (obs_.trace != nullptr) {
    obs_.trace->record(obs::TraceEvent::kSnapshot,
                       static_cast<std::int64_t>(obs::now_ns()), e, 0);
  }
  return EngineSnapshot(std::move(merged), std::move(s), e);
}

void HhhEngine::rotate_locked(std::uint32_t self, std::vector<Key128>* self_batch,
                              std::uint64_t* self_acked) {
  const std::uint64_t obs_t0 = obs_.rotation_ns != nullptr ? obs::now_ns() : 0;
  // Drift metering: a budget-driven rotation measures rotation-start minus
  // the instant the budget was first observed spent. The mark must fall
  // inside the closing window -- an observation that raced the previous
  // reset can deposit a mark from the OLD window after the clear below; the
  // validity check discards it (costing at most one sample, never faking
  // one). Manual rotations (no mark) record nothing.
  {
    const std::int64_t rot_start_ns =
        std::chrono::steady_clock::now().time_since_epoch().count();
    // order: relaxed x2 -- both are stable or stale-tolerant under snap_mu_
    // (held): the mark is validated below, the start is written only under
    // this lock.
    const std::int64_t mark = budget_spent_ns_.load(std::memory_order_relaxed);
    const std::int64_t started = win_started_ns_.load(std::memory_order_relaxed);
    if (mark != 0 && mark > started) {
      const std::uint64_t drift =
          rot_start_ns > mark ? static_cast<std::uint64_t>(rot_start_ns - mark)
                              : 0;
      // order: relaxed x3 -- drift statistics, written only under snap_mu_.
      budget_rotations_.fetch_add(1, std::memory_order_relaxed);
      drift_ns_total_.fetch_add(drift, std::memory_order_relaxed);
      if (drift > static_cast<std::uint64_t>(kLateRotationNs)) {
        late_rotations_.fetch_add(1, std::memory_order_relaxed);
      }
      if (obs_.rotation_drift_ns != nullptr) obs_.rotation_drift_ns->record(drift);
    }
  }
  std::uint64_t sealed_drop = 0;
  std::uint64_t duration_ns = 0;
  const std::int64_t wall_start_ns = win_started_wall_ns_;
  const std::int64_t wall_end_ns =
      std::chrono::system_clock::now().time_since_epoch().count();
  const std::uint64_t e = quiesced(
      [&] {
    for (auto& ws : workers_) ws->ring.rotate();
    std::uint64_t d = 0;
    // order: relaxed -- workers are parked (quiesced), so the drop counters
    // are stable; the ctl_mu_ hand-off already ordered their last writes.
    for (const auto& dr : ring_dropped_) d += dr->load(std::memory_order_relaxed);
    // Drops since the last boundary happened while the just-sealed window
    // was live: attribute them to it. The per-window drop ring ages in
    // lockstep with the shard rings (newest first, oldest falls off), and
    // the duration ring tracks how long each window was live (the
    // wall-clock mode's duration-weighted baselines and archive metadata).
    sealed_drop = d - win_drops_base_;
    sealed_drops_.insert(sealed_drops_.begin(), sealed_drop);
    sealed_drops_.resize(cfg_.history_depth);
    win_drops_base_ = d;
    const std::int64_t now_ns =
        std::chrono::steady_clock::now().time_since_epoch().count();
    // order: relaxed -- written only under snap_mu_ (held), stable here.
    const std::int64_t started = win_started_ns_.load(std::memory_order_relaxed);
    duration_ns =
        now_ns > started ? static_cast<std::uint64_t>(now_ns - started) : 0;
    sealed_durations_ns_.insert(sealed_durations_ns_.begin(), duration_ns);
    sealed_durations_ns_.resize(cfg_.history_depth);
    // Reset the whole budget state for the fresh window while every worker
    // is parked past its boundary drain (or IS this thread): no metering
    // decrement can race these stores, and the ctl_mu_ hand-off at resume
    // publishes them to the workers.
    // order: relaxed x4 -- the parked workers' resume (ctl_mu_) and the
    // clock's snap_mu_ re-check are the happens-before edges; lock-free
    // readers tolerate staleness by contract (see budget_due).
    win_started_ns_.store(now_ns, std::memory_order_relaxed);
    epoch_budget_left_.store(static_cast<std::int64_t>(cfg_.epoch_packets),
                             std::memory_order_relaxed);
    epoch_deadline_ns_.store(
        cfg_.epoch_millis > 0
            ? now_ns + static_cast<std::int64_t>(cfg_.epoch_millis) * 1'000'000
            : 0,
        std::memory_order_relaxed);
    budget_spent_ns_.store(0, std::memory_order_relaxed);
      },
      self, self_batch);
  // A rotating worker must not re-park at the boundary it just drove.
  if (self_acked != nullptr) *self_acked = e;
  win_started_wall_ns_ = wall_end_ns;
  // The sealed-window set changed: cached trend merges are stale.
  trend_cache_.clear();
  trend_cache_epoch_ = ~std::uint64_t{0};
  // order: release -- pairs with window_epochs()'s acquire load: a poller
  // that observes rotation N also observes the sealed drop/duration rings
  // written above.
  window_epochs_.fetch_add(1, std::memory_order_release);
  // Archiving runs after the workers resumed: the merge + queue hand-off
  // cost control-plane time only, and never touch the disk (the archiver
  // thread owns all I/O).
  if (archive_ != nullptr) {
    enqueue_archive(sealed_drop, duration_ns, wall_start_ns, wall_end_ns);
  }
  // Certificate stamping shares enqueue_archive()'s contract: the workers
  // have resumed into the fresh window, but the just-sealed shard windows
  // stay immutable until the next rotation (which needs snap_mu_, held
  // here) -- so probing them costs control-plane time only.
  if (health_ != nullptr) {
    // order: relaxed -- just bumped under snap_mu_ (held); stable here.
    stamp_certificate(window_epochs_.load(std::memory_order_relaxed),
                      sealed_drop);
  }
  if (obs_.rotation_ns != nullptr) {
    const std::uint64_t now = obs::now_ns();
    const std::uint64_t rot_ns = now >= obs_t0 ? now - obs_t0 : 0;
    obs_.rotation_ns->record(rot_ns);
    // order: relaxed -- just bumped under snap_mu_ (held); stable here.
    const std::uint64_t we = window_epochs_.load(std::memory_order_relaxed);
    obs_.trace->record(obs::TraceEvent::kRotate,
                       static_cast<std::int64_t>(now), we, rot_ns);
    obs_.trace->record(obs::TraceEvent::kSeal, static_cast<std::int64_t>(now),
                       we, duration_ns);
  }
}

void HhhEngine::rotate_epoch() {
  std::lock_guard<std::mutex> snap_lk(snap_mu_);
  rotate_locked();
}

void HhhEngine::stamp_certificate(std::uint64_t sealed_epoch,
                                  std::uint64_t sealed_drop) {
  std::vector<const RhhhSpaceSaving*> shards;
  shards.reserve(workers_.size());
  for (const auto& ws : workers_) shards.push_back(&ws->ring.sealed(0));
  health_->stamp(obs::certify_window(
      shards, sealed_epoch, sealed_drop,
      static_cast<std::int64_t>(obs::now_ns())));
}

WindowedEngineSnapshot HhhEngine::window_snapshot() {
  std::lock_guard<std::mutex> snap_lk(snap_mu_);
  const obs::ScopedTimer obs_t(obs_.snapshot_ns);
  std::unique_ptr<RhhhSpaceSaving> cur;
  std::unique_ptr<RhhhSpaceSaving> prev;
  EngineStats s;
  std::uint64_t cur_drops = 0;
  std::uint64_t prev_drops = 0;
  // Rotations hold snap_mu_ too, so the window count is stable here.
  // order: relaxed -- stable under snap_mu_ (held).
  const std::uint64_t we = window_epochs_.load(std::memory_order_relaxed);
  quiesced([&] {
    // order: relaxed -- epoch_req_ only changes under snap_mu_ (held).
    const std::uint64_t e = epoch_req_.load(std::memory_order_relaxed);
    cur = make_shard_lattice(0x6e7a9000ULL ^ e);
    for (const auto& ws : workers_) cur->merge(ws->ring.live());
    s = collect_stats();
    cur_drops = s.dropped - win_drops_base_;
    if (cur_drops != 0) cur->advance_stream(cur_drops);
    if (we != 0) {
      prev = make_shard_lattice(0x6e7ab000ULL ^ e);
      for (const auto& ws : workers_) prev->merge(ws->ring.sealed(0));
      prev_drops = sealed_drops_[0];
      if (prev_drops != 0) prev->advance_stream(prev_drops);
    }
  });
  return WindowedEngineSnapshot(std::move(cur), std::move(prev), std::move(s), we,
                                cur_drops, prev_drops);
}

TrendSnapshot HhhEngine::trend_snapshot() {
  std::lock_guard<std::mutex> snap_lk(snap_mu_);
  const obs::ScopedTimer obs_t(obs_.trend_ns);
  std::unique_ptr<RhhhSpaceSaving> cur;
  EngineStats s;
  std::uint64_t cur_drops = 0;
  // Rotations hold snap_mu_ too, so the window count is stable here.
  // order: relaxed -- stable under snap_mu_ (held).
  const std::uint64_t we = window_epochs_.load(std::memory_order_relaxed);
  quiesced([&] {
    // order: relaxed -- epoch_req_ only changes under snap_mu_ (held).
    const std::uint64_t e = epoch_req_.load(std::memory_order_relaxed);
    cur = make_shard_lattice(0x6e7a9000ULL ^ e);
    for (const auto& ws : workers_) cur->merge(ws->ring.live());
    s = collect_stats();
    cur_drops = s.dropped - win_drops_base_;
    if (cur_drops != 0) cur->advance_stream(cur_drops);
  });
  // The sealed merges run after the workers resumed: sealed shard windows
  // are immutable until the next rotation (which needs snap_mu_, held
  // here), so only the live-window merge needs the quiesce pause -- and
  // the merges themselves are cached until the window set changes, so a
  // detection loop polling between rotations pays the live merge only.
  const std::size_t m = workers_[0]->ring.sealed_count();
  if (trend_cache_epoch_ != we) {
    // order: relaxed -- epoch_req_ only changes under snap_mu_ (held).
    const std::uint64_t e = epoch_req_.load(std::memory_order_relaxed);
    trend_cache_.clear();
    trend_cache_.reserve(m);
    // All shards rotate on one shared boundary, so age i of every shard
    // ring covers the same network-wide epoch: merge index-aligned.
    for (std::size_t age = 0; age < m; ++age) {
      auto merged = make_shard_lattice((0x6e7ab000ULL + (age << 20)) ^ e);
      for (const auto& ws : workers_) merged->merge(ws->ring.sealed(age));
      if (sealed_drops_[age] != 0) merged->advance_stream(sealed_drops_[age]);
      trend_cache_.emplace_back(std::move(merged));
    }
    trend_cache_epoch_ = we;
  } else {
    // order: relaxed -- cache-hit counter, diagnostic only.
    trend_cache_hits_.fetch_add(1, std::memory_order_relaxed);
  }
  std::vector<std::shared_ptr<const RhhhSpaceSaving>> sealed = trend_cache_;
  std::vector<std::uint64_t> sealed_drops(sealed_drops_.begin(),
                                          sealed_drops_.begin() +
                                              static_cast<std::ptrdiff_t>(m));
  std::vector<std::uint64_t> sealed_durs(
      sealed_durations_ns_.begin(),
      sealed_durations_ns_.begin() + static_cast<std::ptrdiff_t>(m));
  const std::int64_t now_ns =
      std::chrono::steady_clock::now().time_since_epoch().count();
  // order: relaxed -- written only under snap_mu_ (held), so stable here.
  const std::int64_t started = win_started_ns_.load(std::memory_order_relaxed);
  const std::uint64_t cur_dur =
      now_ns > started ? static_cast<std::uint64_t>(now_ns - started) : 0;
  // Pure wall-clock rotation produces unequal-length windows; weigh the
  // sustained-growth baseline by duration there (see window_ring.hpp).
  const bool weighted = cfg_.epoch_millis > 0 && cfg_.epoch_packets == 0;
  return TrendSnapshot(std::move(cur), std::move(sealed), std::move(sealed_drops),
                       std::move(sealed_durs), std::move(s), we, cur_drops,
                       cur_dur, weighted);
}

std::unique_ptr<HhhEngine> make_engine(const EngineConfig& cfg) {
  return std::make_unique<HhhEngine>(cfg);
}

}  // namespace rhhh
