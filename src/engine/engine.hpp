// HhhEngine: the sharded multi-core ingest engine.
//
// Scale-out shape (the Confluo/Akumuli "per-core writers over per-shard
// summaries" design, applied to RHHH):
//
//   producer 0 ──ring──▶ worker 0 [LatticeHhh shard]
//      │    └───ring──▶ worker 1 [LatticeHhh shard]      snapshot(): quiesce
//   producer 1 ──ring──▶ worker 0         │           ─▶ at an epoch boundary,
//      │    └───ring──▶ worker 1 ─────────┘              LatticeHhh::merge all
//      ⋮                    ⋮                             shards, answer
//                                                        network-wide queries
//
// M producer threads fan packets across W worker shards. Every producer ×
// worker pair owns a dedicated SpscRing, so each ring stays strictly
// single-producer/single-consumer; producers batch records locally and push
// with try_push_n to amortize the ring atomics. Each worker owns a private
// ring of one live plus K sealed window lattices (core/window_ring.hpp,
// K = EngineConfig::history_depth; no shared state on the packet path) and
// consumes its M rings with try_pop_n. All control operations run through
// one quiesce mechanism: workers park at the next epoch boundary (each
// drains its visible ring backlog first), the coordinator operates on the
// shard lattices, and workers resume.
//
// Four operations use it:
//   * snapshot()        -- merge the live lattices (LatticeHhh::merge, the
//                          multi-switch collector of paper Section 7) into
//                          one instance whose stream length N spans every
//                          shard plus counted drops. The lifetime view when
//                          no window rotation is used; the current-window
//                          view otherwise.
//   * rotate_epoch()    -- seal the current window: every shard rotates its
//                          window ring on the shared boundary. Driven
//                          manually, cooperatively by the workers
//                          (EngineConfig::epoch_packets / epoch_millis:
//                          each worker meters the budget at its batch
//                          boundaries and the one that sees it spent
//                          elects itself rotator via one CAS), or -- for
//                          idle streams -- by the fallback coordinator
//                          clock thread.
//   * window_snapshot() -- merge the live side and the newest sealed side
//                          of every ring into a current-window and a
//                          previous-window lattice, with each window's
//                          drops folded into its N: the WindowedHhhMonitor
//                          semantics (current/previous/emerging) at engine
//                          scale.
//   * trend_snapshot()  -- merge every retained sealed window index-aligned
//                          across shards (shared rotation boundary => ring
//                          slot i of every shard covers the same epoch)
//                          into one network-wide lattice per epoch: the
//                          monitor's trend()/emerging_sustained() k-epoch
//                          queries at engine scale.
//
// Accounting: drops are counted per ring (OverflowPolicy::kDropTail, the
// saturated-port semantics of the distributed deployment), pushes and pops
// per ring (conservation invariants; see tests/test_engine_fuzz.cpp),
// backpressure retry rounds per producer (OverflowPolicy::kBlock, the
// lossless mode the throughput benches use), and consumed packets per
// worker.
//
// Durable archiving (EngineConfig::archive, src/store/): when enabled,
// every rotation merges the just-sealed shard windows into one
// network-wide lattice *after* the workers have resumed (sealed slots are
// immutable until the next rotation, which also needs snap_mu_) and hands
// it to a background archiver thread through a bounded queue -- the packet
// path never waits on the merge and no thread ever waits on the disk; a
// full queue drops the window and counts it. The archiver serializes each
// window (store/serde.hpp) and appends it to the segment log
// (store/archive.hpp), where WindowArchive answers last-N / time-range
// queries that reproduce trend_snapshot()'s sealed windows byte for byte.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/monitor.hpp"
#include "core/window_ring.hpp"
#include "engine/shard_router.hpp"
#include "engine/snapshot.hpp"
#include "hhh/lattice_hhh.hpp"
#include "store/serde.hpp"
#include "util/spsc_ring.hpp"

namespace rhhh::store {
class WindowArchive;  // store/archive.hpp
}

namespace rhhh::obs {
class MetricsRegistry;  // obs/metrics.hpp -- forward-declared so the
class Gauge;            // engine header stays decoupled from the telemetry
class Histogram;        // layer; all recording happens in engine.cpp.
class TraceRing;        // obs/trace_ring.hpp
class HealthLedger;     // obs/health.hpp -- estimator health layer
class StallWatchdog;
}

namespace rhhh {

class HhhEngine {
 public:
  /// Validates the config (lattice-mode algorithm, >=1 worker/producer) and
  /// builds the shards and rings; workers start on start().
  explicit HhhEngine(const EngineConfig& cfg);
  ~HhhEngine();

  HhhEngine(const HhhEngine&) = delete;
  HhhEngine& operator=(const HhhEngine&) = delete;

  /// Per-producer-thread ingest handle. NOT thread-safe: exactly one thread
  /// may use a given handle at a time (that is what keeps every ring SPSC).
  class Producer {
   public:
    /// Buffer one packet key; flushes the target shard's batch when full.
    /// With OverflowPolicy::kBlock a full ring spins (lossless, counted as
    /// backpressure); with kDropTail the unpushable batch tail is dropped
    /// and counted against the ring.
    void ingest(Key128 key) {
      offered_local_ += 1;
      const std::uint32_t w = router_.route(key);
      auto& b = buf_[w];
      b.push_back(key);
      if (b.size() >= batch_) flush_worker(w);
    }
    /// Convenience overload mapping a packet through the engine's hierarchy.
    void ingest(const PacketRecord& p);

    /// Push out every partially filled batch (and publish the offered
    /// count). Call before snapshot() for results that include everything
    /// this producer ingested.
    void flush();

    /// Packets this handle has accepted and published. Updated on each
    /// batch flush (so it may trail ingest() by up to one batch until
    /// flush() is called); safe to read from any thread.
    [[nodiscard]] std::uint64_t offered() const noexcept {
      // order: relaxed -- monotonic counter; cross-thread reads want a recent
      // value, not ordering against other memory. Exact totals come from
      // stats() under quiesce, where ctl_mu_ provides the happens-before.
      return offered_.load(std::memory_order_relaxed);
    }

   private:
    friend class HhhEngine;
    Producer(HhhEngine* eng, std::uint32_t id);
    void flush_worker(std::uint32_t w);

    HhhEngine* eng_;
    std::uint32_t id_;
    std::size_t batch_;
    ShardRouter router_;
    std::vector<std::vector<Key128>> buf_;  ///< per-worker pending batch
    std::uint64_t offered_local_ = 0;       ///< not yet published to offered_
    std::atomic<std::uint64_t> offered_{0};
  };

  /// Spawns the W worker threads (and the coordinator clock thread when a
  /// window clock is configured). Idempotent.
  void start();
  /// Drains the rings, stops and joins the workers (and the clock thread).
  /// Producer buffers are not flushed (call Producer::flush() from the
  /// owning thread first). Idempotent; also run by the destructor.
  void stop();

  /// Handle for producer `i` in [0, producers()). Hand each to one thread.
  [[nodiscard]] Producer& producer(std::uint32_t i) { return *producers_[i]; }

  /// Epoch-based network-wide query: quiesces every worker at the next
  /// epoch boundary, merges the live shard lattices into a fresh instance,
  /// folds counted drops into its stream length, and resumes the workers.
  /// Packets still buffered in producer handles (not flushed) are not yet
  /// part of the snapshot. With window rotation in use this covers only the
  /// current (partial) window -- and folds in *all* drops ever counted, so
  /// prefer window_snapshot() on a windowed engine. Serialized with itself
  /// and with start()/stop(); callable before start() and after stop() (no
  /// quiesce needed once workers are gone).
  [[nodiscard]] EngineSnapshot snapshot();

  /// Close the current window on a shared boundary: quiesce, rotate every
  /// shard's window ring (the oldest retained sealed window is discarded),
  /// attribute the drops counted since the last boundary to the newly
  /// sealed window, resume. With EngineConfig::epoch_packets /
  /// epoch_millis set this happens automatically -- cooperatively by the
  /// workers (bounding boundary drift by one worker batch) with the
  /// coordinator clock thread as an idle-stream fallback; manual calls
  /// compose with both (the packet/wall budgets reset either way). The
  /// packet budget meters CONSUMED records only -- see
  /// EngineConfig::epoch_packets for the basis contract.
  void rotate_epoch();

  /// Two-window network-wide query: quiesce, merge the live sides of every
  /// ring into a current-window lattice and the newest sealed sides into a
  /// previous-window lattice (absent before the first rotation), fold each
  /// window's drops into its stream length, resume. Does NOT rotate --
  /// observing is separate from sealing, so several window snapshots can
  /// watch one window evolve.
  [[nodiscard]] WindowedEngineSnapshot window_snapshot();

  /// K-window network-wide query: quiesce, merge every retained sealed
  /// window of every shard index-aligned (all shards rotate together, so
  /// age i covers the same epoch on every shard) plus the live window,
  /// fold each window's own drops into its stream length, resume. Answers
  /// trend() and emerging_sustained() over up to
  /// EngineConfig::history_depth sealed epochs. Does NOT rotate.
  [[nodiscard]] TrendSnapshot trend_snapshot();

  /// Live ingest counters (no quiesce; individually-consistent atomics).
  [[nodiscard]] EngineStats stats() const;

  [[nodiscard]] std::uint32_t workers() const noexcept {
    return static_cast<std::uint32_t>(workers_.size());
  }
  [[nodiscard]] std::uint32_t producers() const noexcept {
    return static_cast<std::uint32_t>(producers_.size());
  }
  [[nodiscard]] const Hierarchy& hierarchy() const noexcept { return *hierarchy_; }
  [[nodiscard]] const EngineConfig& config() const noexcept { return cfg_; }
  /// Quiesce generations so far (snapshots + rotations + window snapshots).
  [[nodiscard]] std::uint64_t epochs() const noexcept {
    // order: relaxed -- monotonic counter read for display/tests; no payload
    // is synchronized through it.
    return epoch_req_.load(std::memory_order_relaxed);
  }
  /// Completed window rotations so far. Safe to poll from any thread (the
  /// detection loops of the demo/bench watch this for new sealed windows).
  [[nodiscard]] std::uint64_t window_epochs() const noexcept {
    // order: acquire -- pairs with rotate_locked()'s release fetch_add so a
    // poller that observes rotation N also observes every write the rotation
    // published before bumping the count (sealed drop/duration rings).
    return window_epochs_.load(std::memory_order_acquire);
  }
  /// True when a coordinator clock (packet or wall) is configured.
  [[nodiscard]] bool windowed() const noexcept {
    return cfg_.epoch_packets > 0 || cfg_.epoch_millis > 0;
  }
  /// The live (current-window) shard lattice of worker `w`. Safe to inspect
  /// when quiescent (before start(), after stop(), or from test code that
  /// knows better).
  [[nodiscard]] const RhhhSpaceSaving& shard(std::uint32_t w) const noexcept {
    return workers_[w]->ring.live();
  }
  /// The newest sealed (previous-window) shard lattice of worker `w`, or
  /// nullptr before the first rotation. Same quiescence caveat as shard().
  [[nodiscard]] const RhhhSpaceSaving* shard_sealed(std::uint32_t w) const noexcept {
    return workers_[w]->ring.sealed_or_null();
  }
  /// The sealed shard lattice of worker `w` from `age` epochs back (0 =
  /// newest). Requires age < shard_sealed_windows(). Same quiescence caveat.
  [[nodiscard]] const RhhhSpaceSaving& shard_sealed(std::uint32_t w,
                                                    std::size_t age) const noexcept {
    return workers_[w]->ring.sealed(age);
  }
  /// Sealed windows currently populated in every shard's ring.
  [[nodiscard]] std::size_t shard_sealed_windows() const noexcept {
    return workers_[0]->ring.sealed_count();
  }

  // -- estimator health layer (src/obs/health.hpp) --------------------------
  /// The certificate ledger, or nullptr (telemetry off or certificates
  /// disabled). Wire this into MetricsExporter for the /health route.
  [[nodiscard]] obs::HealthLedger* health() const noexcept {
    return health_.get();
  }
  /// The stall watchdog, or nullptr (telemetry off or watchdog_millis 0).
  [[nodiscard]] obs::StallWatchdog* watchdog() const noexcept {
    return watchdog_.get();
  }
  /// TEST HOOK: park worker `w`'s loop (it stops consuming and acking until
  /// unblocked or the engine stops) -- the deliberate stall the watchdog
  /// acceptance test injects. Never use outside tests: a blocked worker
  /// deadlocks any control operation that quiesces.
  void test_block_worker(std::uint32_t w) noexcept {
    // order: relaxed -- the worker polls this flag; nothing is published
    // through it and detection latency of one loop pass is fine.
    stall_worker_.store(w, std::memory_order_relaxed);
  }
  /// TEST HOOK: release a test_block_worker() park.
  void test_unblock_workers() noexcept {
    // order: relaxed -- same poll-only contract as test_block_worker().
    stall_worker_.store(kNoWorker, std::memory_order_relaxed);
  }

 private:
  struct WorkerState {
    WindowRing<RhhhSpaceSaving> ring;  ///< live + K sealed window lattices
    std::thread thread;
    std::uint64_t epoch_acked = 0;  ///< guarded by ctl_mu_
    alignas(kCacheLine) std::atomic<std::uint64_t> consumed{0};
  };

  /// `self` sentinel for quiesced()/rotate_locked(): no worker is driving
  /// the control operation (an external caller or the fallback clock is).
  static constexpr std::uint32_t kNoWorker = ~std::uint32_t{0};
  /// A budget rotation later than the fallback clock's polling timeslice
  /// counts as late: the cooperative path missed its one-batch bound.
  static constexpr std::int64_t kLateRotationNs = 200'000;

  [[nodiscard]] SpscRing<Key128>& ring(std::uint32_t p, std::uint32_t w) noexcept {
    return *rings_[p * workers_.size() + w];
  }
  [[nodiscard]] std::unique_ptr<RhhhSpaceSaving> make_shard_lattice(
      std::uint64_t salt) const;
  void worker_loop(std::uint32_t w);
  void clock_loop(std::uint64_t gen);
  /// One try_pop_n sweep over worker w's M rings; returns records consumed.
  std::size_t drain_pass(std::uint32_t w, std::vector<Key128>& batch);
  /// Worker w's epoch-boundary drain: consume exactly the backlog visible
  /// in each of its rings right now (bounded by the observed size, so it
  /// terminates while producers keep pushing -- later arrivals belong to
  /// the next epoch). Runs on worker threads (at a quiesce boundary or as
  /// the self-drain of a cooperative rotator) and once more from stop()
  /// after the workers are joined.
  void boundary_drain(std::uint32_t w, std::vector<Key128>& batch);
  /// Spend `n` consumed records of the packet budget (the consumed-only
  /// basis: drops never pass through here). The decrement that crosses zero
  /// records the boundary instant for drift metering. Called at every batch
  /// boundary and from boundary_drain().
  void meter_consumed(std::size_t n);
  /// True when the packet or wall budget of the current window is spent.
  /// Lock-free and stale-tolerant: both rotation paths re-check under
  /// snap_mu_ before acting. The first observer of a wall-deadline crossing
  /// records the drift mark (the deadline itself), hence non-const.
  [[nodiscard]] bool budget_due();
  /// First observer of a spent budget records the boundary instant (the
  /// wall deadline, or steady-now for a packet-budget crossing); the next
  /// rotation meters its drift against it. First write per window wins; a
  /// write that races the budget reset is discarded by the validity check
  /// in rotate_locked() (it can cost one drift sample, never fake one).
  void note_budget_spent(std::int64_t mark_ns);
  /// Cooperative rotation attempt by worker w (which must hold the
  /// epoch-due token): try-locks snap_mu_ (never blocks -- a worker that
  /// waited here could deadlock a control op quiescing it), re-checks the
  /// budget, rotates. Returns false only when the lock was unavailable
  /// (keep the token, retry next batch); true means the claim is settled
  /// (rotated here, or a racer already reset the budget) and the token
  /// must be released.
  bool try_rotate_cooperative(std::uint32_t w, std::vector<Key128>& batch,
                              std::uint64_t& acked);
  [[nodiscard]] EngineStats collect_stats() const;
  struct ArchiveItem;  // defined with the archiver state below
  /// Archiver thread body: drains the sealed-window queue into `arch`
  /// until its generation is retired.
  void archive_loop(store::WindowArchive* arch, std::uint64_t gen);
  /// Snapshot the newest sealed shard windows as serialized blobs and
  /// enqueue them for the archiver (or drop + count on a full queue).
  /// Caller must hold snap_mu_, after the rotation completed.
  void enqueue_archive(std::uint64_t sealed_drop, std::uint64_t duration_ns,
                       std::int64_t wall_start_ns, std::int64_t wall_end_ns);
  /// Archiver-side work for one queued window: decode the shard blobs,
  /// merge them network-wide exactly like trend_snapshot()'s age-0 merge,
  /// and append to `arch`. Counts success/failure.
  void archive_one(store::WindowArchive* arch, const ArchiveItem& item);
  /// Parks every worker at the next quiesce boundary, runs fn while they
  /// are parked, resumes them; returns the quiesce generation. Caller must
  /// hold snap_mu_. When the caller IS a worker (cooperative rotation),
  /// pass its index and batch buffer: the worker performs its own boundary
  /// drain and self-acks the epoch instead of waiting on itself.
  template <class Fn>
  std::uint64_t quiesced(Fn&& fn, std::uint32_t self = kNoWorker,
                         std::vector<Key128>* self_batch = nullptr);
  /// rotate_epoch() body; caller must hold snap_mu_. `self`/`self_batch`
  /// as in quiesced(); a rotating worker's local ack mark is updated
  /// through `self_acked` so it does not re-park on its own boundary.
  void rotate_locked(std::uint32_t self = kNoWorker,
                     std::vector<Key128>* self_batch = nullptr,
                     std::uint64_t* self_acked = nullptr);
  /// Register this engine's instruments (histograms, counter-mirror and
  /// occupancy gauges) against cfg_.metrics / the global registry when
  /// cfg_.telemetry is set; called once from the constructor. With
  /// telemetry off every obs_ pointer stays null and the hot-path hooks
  /// compile down to a pointer test (the ablation_obs_overhead baseline).
  void bind_metrics();
  /// Unregister the gauge_fn samplers that capture `this` (they must not
  /// outlive the engine); registry-owned histograms/gauges stay, so
  /// successive engines accumulate into the same cumulative families.
  void unbind_metrics();
  /// Construct the health ledger and stall watchdog per cfg_.health (only
  /// with telemetry on); called once from the constructor after
  /// bind_metrics(). The watchdog thread itself starts/stops with the
  /// engine.
  void bind_health();
  /// Probe the just-sealed shard windows and stamp this window's
  /// AccuracyCertificate into the ledger. Caller must hold snap_mu_, after
  /// the workers have resumed (sealed(0) is immutable until the next
  /// rotation, same contract as enqueue_archive()).
  void stamp_certificate(std::uint64_t sealed_epoch, std::uint64_t sealed_drop);

  EngineConfig cfg_;
  std::unique_ptr<Hierarchy> hierarchy_;
  LatticeMode mode_;
  LatticeParams params_;  ///< resolved (kTenRhhh's V applied), base seed
  std::size_t pop_batch_;

  std::vector<std::unique_ptr<SpscRing<Key128>>> rings_;  ///< [p * W + w]
  std::vector<std::unique_ptr<WorkerState>> workers_;
  std::vector<std::unique_ptr<Producer>> producers_;

  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> ring_dropped_;  ///< [p * W + w]
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> ring_pushed_;   ///< [p * W + w]
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> ring_popped_;   ///< [p * W + w]
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> backpressure_;  ///< [p]

  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> epoch_req_{0};
  std::atomic<std::uint64_t> epoch_resume_{0};
  std::mutex ctl_mu_;               ///< guards epoch_acked + the cv below
  std::condition_variable ctl_cv_;
  std::mutex snap_mu_;              ///< serializes snapshot/rotate/start/stop

  // Window bookkeeping. The atomics are written under snap_mu_ (rotations
  // are serialized) but read lock-free: window_epochs_ by detection loops
  // polling for new windows, the budget countdown/deadline by workers
  // metering the epoch budget at batch boundaries and by the fallback
  // clock, neither touching snap_mu_ until a rotation is actually due (so
  // frequent snapshots cannot starve either path).
  std::atomic<std::uint64_t> window_epochs_{0};
  std::uint64_t win_drops_base_ = 0;  ///< total drops at the last rotation
  /// Drops attributed to each retained sealed window, by age (index 0 = the
  /// newest sealed window); size == cfg_.history_depth, slots beyond
  /// shard_sealed_windows() are zero. Written under snap_mu_.
  std::vector<std::uint64_t> sealed_drops_;
  /// Steady-clock live duration of each retained sealed window, by age
  /// (parallel to sealed_drops_). Written under snap_mu_.
  std::vector<std::uint64_t> sealed_durations_ns_;
  /// Packet-budget countdown for the current window: reset to epoch_packets
  /// at every boundary (inside the quiesced rotation, all workers parked),
  /// decremented by each worker's consumed batch size. The worker whose
  /// decrement crosses zero is the budget's first observer. May go negative
  /// transiently (several workers decrement concurrently); <= 0 means spent.
  std::atomic<std::int64_t> epoch_budget_left_{0};
  /// Wall-budget deadline (steady-clock ns) for the current window; 0 when
  /// no wall budget is configured. Reset at every boundary.
  std::atomic<std::int64_t> epoch_deadline_ns_{0};
  /// Steady-clock instant the current window's budget was first observed
  /// spent (0 = not yet): the ideal boundary the next rotation meters its
  /// drift against. For a wall crossing this is the deadline itself; for a
  /// packet crossing, the observer's now().
  std::atomic<std::int64_t> budget_spent_ns_{0};
  /// Cooperative rotator-election token: the worker whose CAS flips it
  /// false->true owns the rotation attempt (and keeps ownership across
  /// batches while snap_mu_ is busy). Released by the claimant only.
  std::atomic<bool> epoch_due_{false};
  // Drift bookkeeping (budget-driven rotations only; manual rotate_epoch()
  // calls have no ideal boundary to drift from).
  std::atomic<std::uint64_t> budget_rotations_{0};
  std::atomic<std::uint64_t> drift_ns_total_{0};
  std::atomic<std::uint64_t> late_rotations_{0};  ///< drift > kLateRotationNs
  std::atomic<std::int64_t> win_started_ns_{0};  ///< boundary steady-clock ns
  std::int64_t win_started_wall_ns_ = 0;  ///< boundary system-clock ns (snap_mu_)
  /// Bumped by stop() to retire the current clock thread. stop() joins the
  /// moved-out handle after releasing snap_mu_ (joining under the lock
  /// would deadlock against a clock blocked on it for a rotation), so a
  /// concurrent start() can already be spawning the next clock generation;
  /// the token keeps the retired thread from ever rotating again.
  std::atomic<std::uint64_t> clock_gen_{0};
  std::thread clock_thread_;

  // Merged-sealed-window cache for trend_snapshot(): the sealed windows
  // (and their drops) are fixed between rotations, so their cross-shard
  // merges are reusable until window_epochs_ changes. All fields written
  // under snap_mu_; rotation invalidates. Entries are immutable shared
  // merges, handed to TrendSnapshot by shared_ptr.
  std::vector<std::shared_ptr<const RhhhSpaceSaving>> trend_cache_;  ///< [age]
  std::uint64_t trend_cache_epoch_ = ~std::uint64_t{0};
  std::atomic<std::uint64_t> trend_cache_hits_{0};

  // Background archiver (EngineConfig::archive). The queue is bounded:
  // rotations enqueue (or drop + count) and never wait; the rotation-path
  // cost is one flat serialization of each shard's just-sealed lattice
  // (sealed slots are reused after K more rotations, so the archiver
  // cannot read them in place). The archiver owns everything expensive:
  // it decodes the shard blobs, replays the exact cross-shard merge
  // trend_snapshot() would do (so the persisted window is byte-identical
  // to the in-memory view), and appends to the segment log. start() opens
  // the store and spawns the thread; stop() retires the generation, joins,
  // drains the remainder synchronously and seals the segment. Queue state
  // under arch_mu_.
  struct ArchiveItem {
    store::WindowMeta meta;
    std::vector<store::Bytes> shard_blobs;  ///< [worker] sealed(0) images
  };
  std::deque<ArchiveItem> archive_q_;
  std::mutex arch_mu_;
  std::condition_variable arch_cv_;
  std::atomic<std::uint64_t> archive_gen_{0};
  std::thread archive_thread_;
  std::unique_ptr<store::WindowArchive> archive_;
  std::atomic<std::uint64_t> archived_windows_{0};
  std::atomic<std::uint64_t> archive_queue_drops_{0};
  std::atomic<std::uint64_t> archive_errors_{0};

  // Always-on telemetry (src/obs/, EngineConfig::telemetry). Instruments
  // are owned by the registry; these are cached lookups so the hot path
  // records through a raw pointer (null = telemetry off). `owned` lists
  // the gauge_fn names whose samplers capture `this` -- unbind_metrics()
  // removes exactly those in the destructor.
  struct Obs {
    obs::MetricsRegistry* reg = nullptr;
    obs::Histogram* push_ns = nullptr;        ///< producer batch push latency
    obs::Histogram* pop_ns = nullptr;         ///< worker drain-pass latency
    obs::Histogram* batch_fill = nullptr;     ///< records consumed per drain pass
    obs::Histogram* quiesce_ns = nullptr;     ///< request -> all-acked wait
    obs::Histogram* rotation_ns = nullptr;    ///< full rotate_locked() cost
    obs::Histogram* rotation_drift_ns = nullptr;  ///< budget-spent -> rotation
    obs::Histogram* snapshot_ns = nullptr;    ///< snapshot/window merge time
    obs::Histogram* trend_ns = nullptr;       ///< trend_snapshot merge time
    obs::Gauge* archive_q_depth = nullptr;    ///< sealed windows queued
    obs::TraceRing* trace = nullptr;          ///< global control-plane trace
    std::vector<std::string> owned;           ///< gauge_fn names to unregister
  };
  Obs obs_;

  // Estimator health layer (src/obs/health.hpp, cfg_.health): certificate
  // ledger stamped at rotation under snap_mu_, watchdog thread sampling
  // lock-free progress state. Both null when telemetry is off.
  std::unique_ptr<obs::HealthLedger> health_;
  std::unique_ptr<obs::StallWatchdog> watchdog_;
  /// Test-only stall injection: the worker whose index matches parks in its
  /// loop until the flag clears or the engine stops (kNoWorker = none).
  std::atomic<std::uint32_t> stall_worker_{kNoWorker};
};

}  // namespace rhhh
