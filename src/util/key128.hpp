// Key128: the single key type used throughout the HHH lattice machinery.
//
// IPv4 one-dimensional prefixes use the low 32 bits, two-dimensional
// source/destination pairs pack src||dst into the low 64 bits, and IPv6
// addresses use the full 128 bits. Using one trivially-copyable key type
// keeps the Space-Saving / hash-map template instantiations small.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>

#include "util/bits.hpp"

namespace rhhh {

struct Key128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend constexpr bool operator==(const Key128&, const Key128&) noexcept = default;
  friend constexpr auto operator<=>(const Key128&, const Key128&) noexcept = default;

  friend constexpr Key128 operator&(const Key128& a, const Key128& b) noexcept {
    return Key128{a.hi & b.hi, a.lo & b.lo};
  }
  friend constexpr Key128 operator|(const Key128& a, const Key128& b) noexcept {
    return Key128{a.hi | b.hi, a.lo | b.lo};
  }
  friend constexpr Key128 operator^(const Key128& a, const Key128& b) noexcept {
    return Key128{a.hi ^ b.hi, a.lo ^ b.lo};
  }
  constexpr Key128 operator~() const noexcept { return Key128{~hi, ~lo}; }

  /// Key for a single 32-bit value (1D IPv4 hierarchies).
  [[nodiscard]] static constexpr Key128 from_u32(std::uint32_t v) noexcept {
    return Key128{0, v};
  }
  /// Key for a (src, dst) IPv4 pair: src in bits [32,64), dst in [0,32).
  [[nodiscard]] static constexpr Key128 from_pair(std::uint32_t src,
                                                  std::uint32_t dst) noexcept {
    return Key128{0, (static_cast<std::uint64_t>(src) << 32) | dst};
  }
  /// Key for a 64-bit value.
  [[nodiscard]] static constexpr Key128 from_u64(std::uint64_t v) noexcept {
    return Key128{0, v};
  }
};

/// Strong hash for Key128 (SplitMix64 over both words; asymmetric combine so
/// swapped hi/lo do not collide).
struct Key128Hash {
  [[nodiscard]] constexpr std::uint64_t operator()(const Key128& k) const noexcept {
    return mix64(k.lo) ^ (mix64(k.hi ^ 0x6a09e667f3bcc909ULL) * 0x9e3779b97f4a7c15ULL);
  }
};

/// Generic key hash usable by the containers for integral keys too.
template <class K>
struct KeyHash {
  [[nodiscard]] constexpr std::uint64_t operator()(const K& k) const noexcept {
    return mix64(static_cast<std::uint64_t>(k));
  }
};
template <>
struct KeyHash<Key128> : Key128Hash {};

}  // namespace rhhh

template <>
struct std::hash<rhhh::Key128> {
  [[nodiscard]] std::size_t operator()(const rhhh::Key128& k) const noexcept {
    return static_cast<std::size_t>(rhhh::Key128Hash{}(k));
  }
};
