// SpscRing: a bounded lock-free single-producer/single-consumer queue.
//
// This is the forwarding channel of the "distributed" measurement deployment
// (paper §5.2): the virtual-switch dataplane pushes sampled packet records,
// a measurement thread pops them. A full ring drops the record (and the
// caller counts it), mirroring a saturated forwarding port.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <vector>

#include "util/bits.hpp"

namespace rhhh {

/// Destructive-interference distance. Pinned to 64 (every mainstream x86/ARM
/// server core) rather than std::hardware_destructive_interference_size,
/// whose value shifts with -mtune and would silently change the ABI.
inline constexpr std::size_t kCacheLine = 64;

template <class T>
class SpscRing {
  static_assert(std::is_trivially_copyable_v<T>,
                "SpscRing is specialized for POD records");

 public:
  /// Capacity is rounded up to a power of two; one slot is kept free to
  /// distinguish full from empty, so usable capacity is `capacity() - 1`.
  explicit SpscRing(std::size_t capacity)
      : buf_(next_pow2(capacity < 2 ? 2 : capacity)), mask_(buf_.size() - 1) {}

  [[nodiscard]] std::size_t capacity() const noexcept { return buf_.size(); }

  /// Producer side. Returns false (drops) when the ring is full.
  bool try_push(const T& v) noexcept {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t next = (tail + 1) & mask_;
    if (next == head_cache_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (next == head_cache_) return false;
    }
    buf_[tail] = v;
    tail_.store(next, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when the ring is empty.
  bool try_pop(T& out) noexcept {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;
    }
    out = buf_[head];
    head_.store((head + 1) & mask_, std::memory_order_release);
    return true;
  }

  /// Approximate number of queued records (exact only when quiescent).
  [[nodiscard]] std::size_t size_approx() const noexcept {
    const std::size_t h = head_.load(std::memory_order_acquire);
    const std::size_t t = tail_.load(std::memory_order_acquire);
    return (t - h) & mask_;
  }

 private:
  std::vector<T> buf_;
  std::size_t mask_;
  alignas(kCacheLine) std::atomic<std::size_t> head_{0};  // consumer index
  alignas(kCacheLine) std::size_t tail_cache_ = 0;        // consumer's view of tail
  alignas(kCacheLine) std::atomic<std::size_t> tail_{0};  // producer index
  alignas(kCacheLine) std::size_t head_cache_ = 0;        // producer's view of head
};

}  // namespace rhhh
