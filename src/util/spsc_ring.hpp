// SpscRing: a bounded lock-free single-producer/single-consumer queue.
//
// This is the forwarding channel of the "distributed" measurement deployment
// (paper §5.2) and of every producer→worker link in the sharded engine
// (src/engine/): a dataplane thread pushes packet records, a measurement /
// worker thread pops them. A full ring drops the record (and the caller
// counts it), mirroring a saturated forwarding port.
//
// Each side caches the opposing index (producer caches head_, consumer
// caches tail_), so the hot path touches the shared cache line only on
// apparent-full / apparent-empty; the batch operations amortize even that
// over up to `n` records per reload and publish with a single store.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <vector>

#include "util/bits.hpp"

namespace rhhh {

/// Destructive-interference distance. Pinned to 64 (every mainstream x86/ARM
/// server core) rather than std::hardware_destructive_interference_size,
/// whose value shifts with -mtune and would silently change the ABI.
inline constexpr std::size_t kCacheLine = 64;

template <class T>
class SpscRing {
  static_assert(std::is_trivially_copyable_v<T>,
                "SpscRing is specialized for POD records");

 public:
  /// Capacity is rounded up to a power of two; one slot is kept free to
  /// distinguish full from empty, so usable capacity is `capacity() - 1`.
  explicit SpscRing(std::size_t capacity)
      : buf_(next_pow2(capacity < 2 ? 2 : capacity)), mask_(buf_.size() - 1) {}

  [[nodiscard]] std::size_t capacity() const noexcept { return buf_.size(); }

  /// Producer side. Returns false (drops) when the ring is full.
  bool try_push(const T& v) noexcept {
    // order: relaxed -- tail_ is producer-owned; only this thread writes it,
    // so its own last store is always visible without synchronization.
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t next = (tail + 1) & mask_;
    if (next == head_cache_) {
      // order: acquire -- pairs with the consumer's release store of head_;
      // guarantees the consumer has finished reading buf_[head] before the
      // producer may overwrite that slot.
      head_cache_ = head_.load(std::memory_order_acquire);
      if (next == head_cache_) return false;
    }
    buf_[tail] = v;
    // order: release -- publishes buf_[tail]; pairs with the consumer's
    // acquire load of tail_, which must observe the record, not the slot's
    // stale bytes.
    tail_.store(next, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when the ring is empty.
  bool try_pop(T& out) noexcept {
    // order: relaxed -- head_ is consumer-owned; only this thread writes it.
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      // order: acquire -- pairs with the producer's release store of tail_;
      // makes the published record in buf_[head] visible before we read it.
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;
    }
    out = buf_[head];
    // order: release -- returns the slot to the producer; pairs with the
    // producer's acquire load of head_ so our read of buf_[head] completes
    // before the slot can be overwritten.
    head_.store((head + 1) & mask_, std::memory_order_release);
    return true;
  }

  /// Producer side, batched: pushes up to `n` records from `v`, returning
  /// how many were accepted (0..n; the tail of the batch is what a full ring
  /// rejects). The opposing index is reloaded at most once per call, and the
  /// accepted records become visible with one release store.
  std::size_t try_push_n(const T* v, std::size_t n) noexcept {
    // order: relaxed -- tail_ is producer-owned (same as try_push).
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    std::size_t free = mask_ - ((tail - head_cache_) & mask_);
    if (free < n) {  // apparent shortfall: refresh the cached consumer index
      // order: acquire -- pairs with the consumer's release of head_; the
      // freed slots must be fully read before this batch overwrites them.
      head_cache_ = head_.load(std::memory_order_acquire);
      free = mask_ - ((tail - head_cache_) & mask_);
      if (free == 0) return 0;
    }
    const std::size_t cnt = std::min(n, free);
    for (std::size_t i = 0; i < cnt; ++i) buf_[(tail + i) & mask_] = v[i];
    // order: release -- one publish for the whole batch; pairs with the
    // consumer's acquire load of tail_.
    tail_.store((tail + cnt) & mask_, std::memory_order_release);
    return cnt;
  }

  /// Consumer side, batched: pops up to `max` records into `out`, returning
  /// how many were taken. The opposing index is reloaded only on apparent
  /// empty (unlike push, a partial batch costs the consumer nothing), and
  /// consumption is published with one release store.
  std::size_t try_pop_n(T* out, std::size_t max) noexcept {
    // order: relaxed -- head_ is consumer-owned (same as try_pop).
    const std::size_t head = head_.load(std::memory_order_relaxed);
    std::size_t avail = (tail_cache_ - head) & mask_;
    if (avail == 0) {
      // order: acquire -- pairs with the producer's release of tail_; every
      // record in the batch is visible before the copy loop reads it.
      tail_cache_ = tail_.load(std::memory_order_acquire);
      avail = (tail_cache_ - head) & mask_;
      if (avail == 0) return 0;
    }
    const std::size_t cnt = std::min(max, avail);
    for (std::size_t i = 0; i < cnt; ++i) out[i] = buf_[(head + i) & mask_];
    // order: release -- one publish returns the whole batch of slots; pairs
    // with the producer's acquire load of head_.
    head_.store((head + cnt) & mask_, std::memory_order_release);
    return cnt;
  }

  /// Approximate number of queued records (exact only when quiescent).
  [[nodiscard]] std::size_t size_approx() const noexcept {
    // order: acquire x2 -- callable from any thread; acquire keeps each index
    // no staler than the matching release store, though the pair is still a
    // non-atomic snapshot (hence "approx").
    const std::size_t h = head_.load(std::memory_order_acquire);
    const std::size_t t = tail_.load(std::memory_order_acquire);
    return (t - h) & mask_;
  }

 private:
  std::vector<T> buf_;
  std::size_t mask_;
  alignas(kCacheLine) std::atomic<std::size_t> head_{0};  // consumer index
  alignas(kCacheLine) std::size_t tail_cache_ = 0;        // consumer's view of tail
  alignas(kCacheLine) std::atomic<std::size_t> tail_{0};  // producer index
  alignas(kCacheLine) std::size_t head_cache_ = 0;        // producer's view of head
};

}  // namespace rhhh
