// FlatHashMap: open-addressing hash map with robin-hood probing and
// backward-shift deletion.
//
// This is the core lookup structure behind Space-Saving, the tries and the
// ground-truth aggregation. It is specialized for the library's needs:
// trivially-copyable keys and values, power-of-two capacity, no iterator
// stability across mutation, and no exceptions on the lookup path.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/bits.hpp"
#include "util/key128.hpp"

namespace rhhh {

template <class K, class V, class Hash = KeyHash<K>>
class FlatHashMap {
  static_assert(std::is_trivially_copyable_v<K>);
  static_assert(std::is_trivially_copyable_v<V>);

  struct Slot {
    K key;
    V value;
    std::uint16_t dist;  // 0 = empty, otherwise probe distance + 1
  };

 public:
  explicit FlatHashMap(std::size_t initial_capacity = 16) {
    rehash(next_pow2(initial_capacity < 8 ? 8 : initial_capacity));
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

  void clear() noexcept {
    for (auto& s : slots_) s.dist = 0;
    size_ = 0;
  }

  /// Ensure `n` entries fit without rehashing.
  void reserve(std::size_t n) {
    const std::size_t want = next_pow2(n + n / 2 + 1);
    if (want > slots_.size()) rehash(want);
  }

  [[nodiscard]] V* find(const K& key) noexcept {
    return find_hashed(key, Hash{}(key));
  }
  [[nodiscard]] const V* find(const K& key) const noexcept {
    return const_cast<FlatHashMap*>(this)->find(key);
  }
  [[nodiscard]] bool contains(const K& key) const noexcept {
    return find(key) != nullptr;
  }

  /// find() with the hash precomputed by the caller -- the probe half of the
  /// batched pipeline's hash/probe split (hash once, prefetch, probe later).
  /// `h` must equal Hash{}(key).
  [[nodiscard]] V* find_hashed(const K& key, std::uint64_t h) noexcept {
    const std::size_t m = mask();
    std::size_t i = h & m;
    std::uint16_t d = 1;
    while (true) {
      Slot& s = slots_[i];
      if (s.dist == 0 || s.dist < d) return nullptr;
      if (s.dist == d && s.key == key) return &s.value;
      i = (i + 1) & m;
      ++d;
    }
  }
  [[nodiscard]] const V* find_hashed(const K& key, std::uint64_t h) const noexcept {
    return const_cast<FlatHashMap*>(this)->find_hashed(key, h);
  }

  /// Pull the home slot of hash `h` (and the following cache line -- robin-
  /// hood probe sequences are short) toward L1 ahead of a find/emplace.
  /// Purely a hint: issuing it for a key never probed is harmless.
  void prefetch(std::uint64_t h) const noexcept {
    const Slot* home = slots_.data() + (h & mask());
    __builtin_prefetch(home, 0, 3);
    // One line further covers the tail of a short probe run. uintptr
    // arithmetic so the hint can point past the array without forming an
    // out-of-bounds pointer.
    __builtin_prefetch(
        reinterpret_cast<const void*>(reinterpret_cast<std::uintptr_t>(home) + 64),
        0, 3);
  }

  /// Insert `value` under `key` if absent; returns {pointer, inserted}.
  std::pair<V*, bool> try_emplace(const K& key, const V& value) {
    return try_emplace_hashed(key, Hash{}(key), value);
  }

  /// try_emplace() with the hash precomputed: ONE probe serves as both the
  /// lookup and the insertion point (find-or-insert), which is what lets
  /// SpaceSaving::increment hash its key exactly once.
  std::pair<V*, bool> try_emplace_hashed(const K& key, std::uint64_t h,
                                         const V& value) {
    if ((size_ + 1) * 4 > slots_.size() * 3) rehash(slots_.size() * 2);
    return insert_impl(key, value, h);
  }

  V& operator[](const K& key) { return *try_emplace(key, V{}).first; }

  void insert_or_assign(const K& key, const V& value) {
    auto [p, inserted] = try_emplace(key, value);
    if (!inserted) *p = value;
  }

  /// Remove `key`; returns true if it was present. Backward-shift deletion
  /// keeps probe sequences dense (no tombstones).
  bool erase(const K& key) noexcept {
    const std::size_t m = mask();
    std::size_t i = Hash{}(key) & m;
    std::uint16_t d = 1;
    while (true) {
      Slot& s = slots_[i];
      if (s.dist == 0 || s.dist < d) return false;
      if (s.dist == d && s.key == key) break;
      i = (i + 1) & m;
      ++d;
    }
    // Shift the cluster back over the vacated slot.
    std::size_t hole = i;
    std::size_t next = (hole + 1) & m;
    while (slots_[next].dist > 1) {
      slots_[hole] = slots_[next];
      --slots_[hole].dist;
      hole = next;
      next = (next + 1) & m;
    }
    slots_[hole].dist = 0;
    --size_;
    return true;
  }

  /// Visit every (key, value) pair; f may mutate the value.
  template <class F>
  void for_each(F&& f) {
    for (auto& s : slots_)
      if (s.dist != 0) f(static_cast<const K&>(s.key), s.value);
  }
  template <class F>
  void for_each(F&& f) const {
    for (const auto& s : slots_)
      if (s.dist != 0) f(s.key, s.value);
  }

 private:
  [[nodiscard]] std::size_t mask() const noexcept { return slots_.size() - 1; }

  std::pair<V*, bool> insert_impl(K key, V value, std::uint64_t h) {
    const K original_key = key;
    const std::size_t m = mask();
    std::size_t i = h & m;
    std::uint16_t d = 1;
    V* result = nullptr;
    while (true) {
      Slot& s = slots_[i];
      if (s.dist == 0) {
        s.key = key;
        s.value = value;
        s.dist = d;
        ++size_;
        return {result != nullptr ? result : &s.value, true};
      }
      if (s.dist == d && s.key == key) {
        assert(result == nullptr);
        return {&s.value, false};
      }
      if (s.dist < d) {
        // Robin-hood: the resident is closer to home than we are; displace it
        // and keep inserting the evicted entry.
        std::swap(s.key, key);
        std::swap(s.value, value);
        std::swap(s.dist, d);
        if (result == nullptr) result = &s.value;
      }
      i = (i + 1) & m;
      ++d;
      if (d == UINT16_MAX) {
        // Pathological clustering: grow, finish inserting the in-flight
        // (possibly displaced) entry, then re-locate the original key since
        // rehashing invalidated any pointer captured above.
        rehash(slots_.size() * 2);
        // `key` may be a displaced resident, not the original: re-hash it.
        insert_impl(key, value, Hash{}(key));
        return {find(original_key), true};
      }
    }
  }

  void rehash(std::size_t new_cap) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_cap, Slot{K{}, V{}, 0});
    size_ = 0;
    for (const auto& s : old)
      if (s.dist != 0) insert_impl(s.key, s.value, Hash{}(s.key));
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

}  // namespace rhhh
