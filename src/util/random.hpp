// Fast deterministic random number generation for the packet path.
//
// RHHH's per-packet work is one bounded random draw plus (sometimes) one
// Space-Saving increment, so the RNG must be a handful of instructions.
// We use xoroshiro128++ (Blackman & Vigna) seeded via SplitMix64, and
// Lemire's multiply-shift method for uniform bounded integers.
#pragma once

#include <cstdint>
#include <limits>

#include "util/bits.hpp"

namespace rhhh {

/// xoroshiro128++ PRNG. Satisfies std::uniform_random_bit_generator so it
/// can also drive <random> distributions in non-hot-path code.
class Xoroshiro128 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the two words of state via SplitMix64 so that any seed (including
  /// 0) yields a well-mixed, nonzero state.
  explicit constexpr Xoroshiro128(std::uint64_t seed = 0x8badf00ddeadbeefULL) noexcept
      : s0_(mix64(seed)), s1_(mix64(seed + 0x9e3779b97f4a7c15ULL)) {
    if (s0_ == 0 && s1_ == 0) s1_ = 1;  // the all-zero state is absorbing
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t r = rotl64(s0_ + s1_, 17) + s0_;
    const std::uint64_t t = s1_ ^ s0_;
    s0_ = rotl64(s0_, 49) ^ t ^ (t << 21);
    s1_ = rotl64(t, 28);
    return r;
  }

  /// Uniform integer in [0, n) via Lemire's multiply-shift. `n` must be > 0.
  /// The slight modulo bias (< 2^-32 for n <= 2^32) is irrelevant for the
  /// sampling analysis and is the standard trade for a division-free path.
  constexpr std::uint32_t bounded(std::uint32_t n) noexcept {
    const std::uint64_t x = (*this)() >> 32;  // top 32 bits: best quality
    return static_cast<std::uint32_t>((x * n) >> 32);
  }

  /// Uniform double in [0, 1) with 53 random bits.
  constexpr double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t s0_;
  std::uint64_t s1_;
};

}  // namespace rhhh
