// Small bit-manipulation helpers shared across the library.
#pragma once

#include <bit>
#include <cstdint>

namespace rhhh {

/// Rotate left (constexpr wrapper so call sites read uniformly).
[[nodiscard]] constexpr std::uint64_t rotl64(std::uint64_t x, int k) noexcept {
  return std::rotl(x, k);
}

/// Next power of two >= x (x == 0 yields 1).
[[nodiscard]] constexpr std::uint64_t next_pow2(std::uint64_t x) noexcept {
  if (x <= 1) return 1;
  return std::uint64_t{1} << (64 - std::countl_zero(x - 1));
}

/// True iff x is a power of two (and nonzero).
[[nodiscard]] constexpr bool is_pow2(std::uint64_t x) noexcept {
  return x != 0 && (x & (x - 1)) == 0;
}

/// A mask with the top `bits` bits of a 64-bit word set.
/// bits == 0 gives 0; bits == 64 gives all ones.
[[nodiscard]] constexpr std::uint64_t high_bits_mask64(int bits) noexcept {
  if (bits <= 0) return 0;
  if (bits >= 64) return ~std::uint64_t{0};
  return ~std::uint64_t{0} << (64 - bits);
}

/// A mask with the low `bits` bits set. bits==0 -> 0, bits>=64 -> all ones.
[[nodiscard]] constexpr std::uint64_t low_bits_mask64(int bits) noexcept {
  if (bits <= 0) return 0;
  if (bits >= 64) return ~std::uint64_t{0};
  return (std::uint64_t{1} << bits) - 1;
}

/// SplitMix64 finalizer: a strong 64-bit mixing function. Used both for
/// hashing and for seeding the stream generators.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace rhhh
