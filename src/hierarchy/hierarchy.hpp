// The prefix-generalization lattice (paper Definitions 1-3, 7, 12).
//
// A Hierarchy describes one or two hierarchical dimensions (e.g. source and
// destination IPv4 prefixes at bit or byte granularity). Lattice nodes are
// *prefix patterns* -- one Space-Saving instance per node in the HHH
// algorithms -- identified by per-dimension generalization steps:
// step 0 keeps the address fully specified, each further step drops one
// granule (byte/nibble/bit). A node's *level* is the total number of steps
// (Definition 7: level 0 = fully specified, level L = (*,*)).
//
// Keys are Key128 values pre-masked by their node's mask; every API below
// that takes a (node, key) pair assumes and preserves that invariant.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "util/key128.hpp"

namespace rhhh {

enum class Granularity : std::uint8_t { kBit = 1, kNibble = 4, kByte = 8 };

/// How one dimension of the lattice maps onto the 128-bit key.
struct DimensionSpec {
  int offset_bits = 0;  ///< bit position of the field's LSB within Key128
  int width_bits = 32;  ///< 32 for IPv4, 128 for IPv6
  std::vector<std::uint8_t> lengths;  ///< descending prefix lengths, e.g. 32,24,...,0
  enum class Format : std::uint8_t { kIpv4, kIpv6 } format = Format::kIpv4;
};

/// A prefix: a lattice node plus a key masked to that node's pattern.
struct Prefix {
  std::uint32_t node = 0;
  Key128 key{};
  friend constexpr bool operator==(const Prefix&, const Prefix&) noexcept = default;
};

struct PrefixHash {
  [[nodiscard]] std::uint64_t operator()(const Prefix& p) const noexcept {
    return Key128Hash{}(p.key) ^ mix64(p.node);
  }
};

class Hierarchy {
 public:
  struct Node {
    std::array<std::uint8_t, 2> step{};  ///< generalization steps per dim
    std::array<std::uint8_t, 2> len{};   ///< kept prefix bits per dim
    Key128 mask{};
    std::uint16_t level = 0;  ///< step[0] + step[1]
  };

  /// Generic construction from dimension specs (1 or 2 dims). Validates that
  /// each dimension's lengths are strictly descending and end at 0, and that
  /// dimensions do not overlap in the key; throws std::invalid_argument.
  explicit Hierarchy(std::vector<DimensionSpec> dims, std::string name);

  // -- Named factories matching the paper's evaluated hierarchies ----------
  /// 1D source-IPv4 hierarchy; byte granularity gives H=5, bit gives H=33.
  [[nodiscard]] static Hierarchy ipv4_1d(Granularity g);
  /// 2D (source, destination) IPv4 hierarchy; byte granularity gives H=25.
  [[nodiscard]] static Hierarchy ipv4_2d(Granularity g);
  /// 1D IPv6 hierarchy: byte granularity H=17, nibble H=33 (paper §1/§7:
  /// the large-H regime motivating O(1) updates).
  [[nodiscard]] static Hierarchy ipv6_1d(Granularity g);

  // -- Shape ----------------------------------------------------------------
  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }  ///< H
  [[nodiscard]] int dims() const noexcept { return static_cast<int>(dims_.size()); }
  [[nodiscard]] int depth() const noexcept { return depth_; }  ///< L
  [[nodiscard]] int num_levels() const noexcept { return depth_ + 1; }
  [[nodiscard]] const Node& node(std::uint32_t i) const noexcept { return nodes_[i]; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const DimensionSpec& dim(int d) const noexcept {
    return dims_[static_cast<std::size_t>(d)];
  }

  /// Steps available in dimension d (number of prefix lengths).
  [[nodiscard]] int steps(int d) const noexcept {
    return static_cast<int>(dims_[static_cast<std::size_t>(d)].lengths.size());
  }
  /// Node index from per-dimension steps (step1 ignored for 1D).
  [[nodiscard]] std::uint32_t node_index(int step0, int step1 = 0) const noexcept {
    return static_cast<std::uint32_t>(step0) * stride_ +
           static_cast<std::uint32_t>(dims_.size() == 2 ? step1 : 0);
  }
  /// Indices of all nodes at generalization level l.
  [[nodiscard]] std::span<const std::uint32_t> nodes_at_level(int l) const noexcept {
    return levels_[static_cast<std::size_t>(l)];
  }
  /// The fully-specified node (level 0).
  [[nodiscard]] std::uint32_t bottom() const noexcept { return node_index(0, 0); }
  /// The fully-general node (*, ..., *).
  [[nodiscard]] std::uint32_t top() const noexcept {
    return node_index(steps(0) - 1, dims() == 2 ? steps(1) - 1 : 0);
  }

  // -- Keys -----------------------------------------------------------------
  /// Masks a fully-specified key down to node n's pattern.
  [[nodiscard]] Key128 mask_key(std::uint32_t n, Key128 fully) const noexcept {
    return fully & nodes_[n].mask;
  }
  /// Fully-specified key for a packet. Requires an IPv4-based hierarchy.
  [[nodiscard]] Key128 key_of(const PacketRecord& p) const noexcept {
    return dims_.size() == 2 ? p.pair_key() : p.src_key();
  }

  // -- Generalization order (Definition 1) ----------------------------------
  /// True iff node a's pattern generalizes (or equals) node b's pattern.
  [[nodiscard]] bool node_generalizes(std::uint32_t a, std::uint32_t b) const noexcept {
    const Node& na = nodes_[a];
    const Node& nb = nodes_[b];
    return na.step[0] >= nb.step[0] && na.step[1] >= nb.step[1];
  }
  /// True iff prefix a generalizes (or equals) prefix b.
  [[nodiscard]] bool generalizes(const Prefix& a, const Prefix& b) const noexcept {
    return node_generalizes(a.node, b.node) && (b.key & nodes_[a.node].mask) == a.key;
  }
  /// Strict version (a generalizes b and a != b).
  [[nodiscard]] bool strictly_generalizes(const Prefix& a, const Prefix& b) const noexcept {
    return a.node != b.node && generalizes(a, b);
  }
  /// Generalize a prefix up to an ancestor node pattern.
  [[nodiscard]] Prefix generalize_to(const Prefix& p, std::uint32_t node) const noexcept {
    return Prefix{node, p.key & nodes_[node].mask};
  }

  // -- Greatest lower bound (Definition 12) ----------------------------------
  /// Node of the most general common descendant pattern of a and b.
  [[nodiscard]] std::uint32_t glb_node(std::uint32_t a, std::uint32_t b) const noexcept {
    const Node& na = nodes_[a];
    const Node& nb = nodes_[b];
    return node_index(std::min(na.step[0], nb.step[0]),
                      std::min(na.step[1], nb.step[1]));
  }
  /// glb of two prefixes: their unique most-general common descendant, or
  /// nullopt when they are incompatible (Definition 12's count-0 item).
  [[nodiscard]] std::optional<Prefix> glb(const Prefix& a, const Prefix& b) const noexcept;

  /// Canonical parent chain used by the trie-based comparators: generalizes
  /// the dimension with fewer steps taken (ties -> dimension 0); one node
  /// per level from bottom() to top(). Returns nullopt at the top.
  [[nodiscard]] std::optional<std::uint32_t> canonical_parent(std::uint32_t n) const noexcept;

  // -- Presentation ----------------------------------------------------------
  /// Formats a prefix in the paper's style, e.g. "181.7.*.*" or
  /// "(181.7.*.*, 208.67.222.222)".
  [[nodiscard]] std::string format(const Prefix& p) const;

 private:
  std::vector<DimensionSpec> dims_;
  std::vector<Node> nodes_;
  std::vector<std::vector<std::uint32_t>> levels_;
  std::uint32_t stride_ = 1;  // nodes per step of dim 0
  int depth_ = 0;
  std::string name_;
};

}  // namespace rhhh
