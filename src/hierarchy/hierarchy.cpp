#include "hierarchy/hierarchy.hpp"

#include <algorithm>
#include <stdexcept>

#include "net/ipv4.hpp"
#include "net/ipv6.hpp"
#include "util/bits.hpp"

namespace rhhh {

namespace {

/// Key128 with bits [lo_bit, hi_bit) set (bit 0 = LSB of Key128::lo).
[[nodiscard]] Key128 bit_range_mask(int lo_bit, int hi_bit) noexcept {
  Key128 m{};
  if (hi_bit > 64) {
    m.hi = low_bits_mask64(hi_bit - 64) & ~low_bits_mask64(std::max(0, lo_bit - 64));
  }
  if (lo_bit < 64) {
    m.lo = low_bits_mask64(std::min(hi_bit, 64)) & ~low_bits_mask64(lo_bit);
  }
  return m;
}

/// Mask covering the top `len` bits of a dimension's field.
[[nodiscard]] Key128 dim_mask(const DimensionSpec& d, int len) noexcept {
  if (len <= 0) return Key128{};
  const int top = d.offset_bits + d.width_bits;
  return bit_range_mask(top - len, top);
}

[[nodiscard]] std::vector<std::uint8_t> descending_lengths(int width, Granularity g) {
  std::vector<std::uint8_t> out;
  const int step = static_cast<int>(g);
  for (int len = width; len >= 0; len -= step)
    out.push_back(static_cast<std::uint8_t>(len));
  return out;
}

[[nodiscard]] const char* gran_name(Granularity g) noexcept {
  switch (g) {
    case Granularity::kBit: return "bits";
    case Granularity::kNibble: return "nibbles";
    case Granularity::kByte: return "bytes";
  }
  return "?";
}

}  // namespace

Hierarchy::Hierarchy(std::vector<DimensionSpec> dims, std::string name)
    : dims_(std::move(dims)), name_(std::move(name)) {
  if (dims_.empty() || dims_.size() > 2) {
    throw std::invalid_argument("Hierarchy: 1 or 2 dimensions required");
  }
  Key128 occupied{};
  for (const auto& d : dims_) {
    if (d.lengths.size() < 2 || d.lengths.front() != d.width_bits ||
        d.lengths.back() != 0 ||
        !std::is_sorted(d.lengths.rbegin(), d.lengths.rend())) {
      throw std::invalid_argument(
          "Hierarchy: lengths must descend strictly from width to 0");
    }
    for (std::size_t i = 1; i < d.lengths.size(); ++i) {
      if (d.lengths[i] >= d.lengths[i - 1]) {
        throw std::invalid_argument("Hierarchy: lengths must be strictly descending");
      }
    }
    const Key128 field = dim_mask(d, d.width_bits);
    if ((occupied & field) != Key128{}) {
      throw std::invalid_argument("Hierarchy: dimensions overlap in the key");
    }
    occupied = occupied | field;
  }

  const int s0 = steps(0);
  const int s1 = dims_.size() == 2 ? steps(1) : 1;
  stride_ = static_cast<std::uint32_t>(s1);
  depth_ = (s0 - 1) + (s1 - 1);
  nodes_.resize(static_cast<std::size_t>(s0) * static_cast<std::size_t>(s1));
  levels_.assign(static_cast<std::size_t>(depth_) + 1, {});

  for (int i = 0; i < s0; ++i) {
    for (int j = 0; j < s1; ++j) {
      const std::uint32_t idx = node_index(i, j);
      Node& n = nodes_[idx];
      n.step = {static_cast<std::uint8_t>(i), static_cast<std::uint8_t>(j)};
      n.len[0] = dims_[0].lengths[static_cast<std::size_t>(i)];
      n.mask = dim_mask(dims_[0], n.len[0]);
      if (dims_.size() == 2) {
        n.len[1] = dims_[1].lengths[static_cast<std::size_t>(j)];
        n.mask = n.mask | dim_mask(dims_[1], n.len[1]);
      }
      n.level = static_cast<std::uint16_t>(i + j);
      levels_[n.level].push_back(idx);
    }
  }
}

Hierarchy Hierarchy::ipv4_1d(Granularity g) {
  DimensionSpec d;
  d.offset_bits = 0;
  d.width_bits = 32;
  d.lengths = descending_lengths(32, g);
  d.format = DimensionSpec::Format::kIpv4;
  return Hierarchy({std::move(d)}, std::string("ipv4-1d-") + gran_name(g));
}

Hierarchy Hierarchy::ipv4_2d(Granularity g) {
  DimensionSpec src;
  src.offset_bits = 32;
  src.width_bits = 32;
  src.lengths = descending_lengths(32, g);
  src.format = DimensionSpec::Format::kIpv4;
  DimensionSpec dst = src;
  dst.offset_bits = 0;
  return Hierarchy({std::move(src), std::move(dst)},
                   std::string("ipv4-2d-") + gran_name(g));
}

Hierarchy Hierarchy::ipv6_1d(Granularity g) {
  DimensionSpec d;
  d.offset_bits = 0;
  d.width_bits = 128;
  d.lengths = descending_lengths(128, g);
  d.format = DimensionSpec::Format::kIpv6;
  return Hierarchy({std::move(d)}, std::string("ipv6-1d-") + gran_name(g));
}

std::optional<Prefix> Hierarchy::glb(const Prefix& a, const Prefix& b) const noexcept {
  // Compatibility: a and b must agree on the bits covered by *both* masks
  // (per dimension that is the shorter prefix's bits).
  const Key128 common = nodes_[a.node].mask & nodes_[b.node].mask;
  if ((a.key & common) != (b.key & common)) return std::nullopt;
  const std::uint32_t n = glb_node(a.node, b.node);
  // Each dimension's bits come from whichever prefix is more specific there;
  // keys are pre-masked, so OR merges them.
  return Prefix{n, a.key | b.key};
}

std::optional<std::uint32_t> Hierarchy::canonical_parent(std::uint32_t n) const noexcept {
  const Node& nd = nodes_[n];
  if (dims_.size() == 1) {
    if (nd.step[0] + 1 >= steps(0)) return std::nullopt;
    return node_index(nd.step[0] + 1);
  }
  const bool can0 = nd.step[0] + 1 < steps(0);
  const bool can1 = nd.step[1] + 1 < steps(1);
  if (!can0 && !can1) return std::nullopt;
  // Generalize the dimension with fewer steps taken; ties -> dimension 0.
  if (can0 && (!can1 || nd.step[0] <= nd.step[1])) {
    return node_index(nd.step[0] + 1, nd.step[1]);
  }
  return node_index(nd.step[0], nd.step[1] + 1);
}

std::string Hierarchy::format(const Prefix& p) const {
  const Node& n = nodes_[p.node];
  auto one = [&](int d) {
    const DimensionSpec& spec = dims_[static_cast<std::size_t>(d)];
    const int len = n.len[d];
    if (spec.format == DimensionSpec::Format::kIpv6) {
      return format_ipv6_prefix(Ipv6{p.key.hi, p.key.lo}, len);
    }
    const auto addr =
        static_cast<Ipv4>((p.key.lo >> spec.offset_bits) & 0xffffffffULL);
    return format_ipv4_prefix(addr, len);
  };
  if (dims_.size() == 1) return one(0);
  // Built by append: the operator+ chain trips GCC 12's -Wrestrict false
  // positive (PR105329) at -O3.
  std::string out = "(";
  out += one(0);
  out += ", ";
  out += one(1);
  out += ")";
  return out;
}

}  // namespace rhhh
