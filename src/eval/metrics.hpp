// The three quality metrics of the paper's evaluation (Section 4):
// accuracy-error ratio (Fig. 2), coverage errors (Fig. 3) and false
// positives (Fig. 4), all measured against the exact ground truth.
#pragma once

#include <cstddef>

#include "eval/ground_truth.hpp"
#include "hhh/hhh_types.hpp"

namespace rhhh {

/// Fig. 2: fraction of returned HHH candidates whose frequency estimate is
/// off by more than eps*N (|f_p - f-hat_p| > eps*N).
struct AccuracyReport {
  std::size_t candidates = 0;
  std::size_t errors = 0;
  [[nodiscard]] double ratio() const noexcept {
    return candidates == 0 ? 0.0 : static_cast<double>(errors) /
                                       static_cast<double>(candidates);
  }
};
[[nodiscard]] AccuracyReport accuracy_errors(const ExactHhh& truth, const HhhSet& P,
                                             double eps);

/// Fig. 3: coverage errors (false negatives): prefixes q not returned whose
/// exact conditioned frequency w.r.t. the returned set reaches theta*N.
/// The candidate universe is every prefix with f_q >= theta*N (no other
/// prefix can violate coverage since C_{q|P} <= f_q).
struct CoverageReport {
  std::size_t candidates = 0;  ///< prefixes examined (heavy, not returned)
  std::size_t misses = 0;      ///< of those, C_{q|P} >= theta*N
  [[nodiscard]] double ratio() const noexcept {
    return candidates == 0 ? 0.0 : static_cast<double>(misses) /
                                       static_cast<double>(candidates);
  }
};
[[nodiscard]] CoverageReport coverage_errors(const ExactHhh& truth, const HhhSet& P,
                                             double theta);

/// Fig. 4: share of returned prefixes that are not exact HHHs, plus recall
/// of the exact set for context.
struct FalsePositiveReport {
  std::size_t returned = 0;
  std::size_t false_positives = 0;
  std::size_t exact_size = 0;
  std::size_t exact_found = 0;
  [[nodiscard]] double ratio() const noexcept {
    return returned == 0 ? 0.0 : static_cast<double>(false_positives) /
                                     static_cast<double>(returned);
  }
  [[nodiscard]] double recall() const noexcept {
    return exact_size == 0 ? 1.0 : static_cast<double>(exact_found) /
                                       static_cast<double>(exact_size);
  }
};
[[nodiscard]] FalsePositiveReport false_positives(const HhhSet& exact,
                                                  const HhhSet& returned);

}  // namespace rhhh
