#include "eval/metrics.hpp"

#include <cmath>
#include <vector>

namespace rhhh {

AccuracyReport accuracy_errors(const ExactHhh& truth, const HhhSet& P, double eps) {
  AccuracyReport rep;
  rep.candidates = P.size();
  if (P.empty()) return rep;
  std::vector<Prefix> ps;
  ps.reserve(P.size());
  for (const HhhCandidate& c : P) ps.push_back(c.prefix);
  const std::vector<std::uint64_t> f = truth.frequencies(ps);
  const double bound = eps * static_cast<double>(truth.stream_length());
  for (std::size_t i = 0; i < ps.size(); ++i) {
    const double err = std::fabs(P[i].f_est - static_cast<double>(f[i]));
    if (err > bound) ++rep.errors;
  }
  return rep;
}

CoverageReport coverage_errors(const ExactHhh& truth, const HhhSet& P, double theta) {
  CoverageReport rep;
  std::vector<Prefix> heavy = truth.heavy_prefixes(theta);
  std::vector<Prefix> missing;
  for (const Prefix& q : heavy) {
    if (!P.contains(q)) missing.push_back(q);
  }
  rep.candidates = missing.size();
  if (missing.empty()) return rep;
  const std::vector<std::uint64_t> c = truth.conditioned(missing, P);
  const double thresh = theta * static_cast<double>(truth.stream_length());
  for (const std::uint64_t ci : c) {
    if (static_cast<double>(ci) >= thresh) ++rep.misses;
  }
  return rep;
}

FalsePositiveReport false_positives(const HhhSet& exact, const HhhSet& returned) {
  FalsePositiveReport rep;
  rep.returned = returned.size();
  rep.exact_size = exact.size();
  for (const HhhCandidate& c : returned) {
    if (!exact.contains(c.prefix)) ++rep.false_positives;
  }
  for (const HhhCandidate& c : exact) {
    if (returned.contains(c.prefix)) ++rep.exact_found;
  }
  return rep;
}

}  // namespace rhhh
