// Exact offline HHH computation (Definitions 6 and 8) -- the ground truth
// behind the paper's accuracy (Fig. 2), coverage (Fig. 3) and false-positive
// (Fig. 4) measurements.
//
// The exact algorithm needs no inclusion-exclusion: it keeps the full
// fully-specified frequency table, walks levels bottom-up, and evaluates
// conditioned frequencies as "mass under q not covered by the already
// selected set" via per-item covered flags (exactly Definition 6).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hhh/hhh_types.hpp"
#include "util/flat_hash_map.hpp"

namespace rhhh {

class ExactHhh {
 public:
  explicit ExactHhh(const Hierarchy& h) : h_(&h) {}

  /// Accumulate `w` arrivals of fully-specified key x.
  void add(Key128 x, std::uint64_t w = 1) {
    counts_[x] += w;
    n_ += w;
    dirty_ = true;
  }

  [[nodiscard]] std::uint64_t stream_length() const noexcept { return n_; }
  [[nodiscard]] std::size_t distinct_keys() const noexcept { return counts_.size(); }
  [[nodiscard]] const Hierarchy& hierarchy() const noexcept { return *h_; }

  /// The exact HHH set at threshold theta (Definition 8). Each returned
  /// candidate carries the exact frequency (f_lo == f_hi == f_est) and the
  /// exact conditioned frequency at admission in c_hat.
  [[nodiscard]] HhhSet compute(double theta) const;

  /// Exact frequencies of arbitrary prefixes (Definition 3).
  [[nodiscard]] std::vector<std::uint64_t> frequencies(std::span<const Prefix> ps) const;

  /// Exact conditioned frequencies C_{q|P} of a batch of prefixes w.r.t. an
  /// arbitrary prefix set P (Definition 6).
  [[nodiscard]] std::vector<std::uint64_t> conditioned(std::span<const Prefix> qs,
                                                       const HhhSet& P) const;

  /// All prefixes (over all lattice nodes) with exact frequency >= theta*N:
  /// the complete candidate set for coverage-error checks (C_{q|P} <= f_q,
  /// so no other prefix can violate coverage).
  [[nodiscard]] std::vector<Prefix> heavy_prefixes(double theta) const;

  void clear() {
    counts_.clear();
    n_ = 0;
    dirty_ = true;
  }

 private:
  void materialize() const;
  /// covered[i] = 1 iff item i is generalized by some member of P.
  [[nodiscard]] std::vector<std::uint8_t> covered_by(const HhhSet& P) const;

  const Hierarchy* h_;
  FlatHashMap<Key128, std::uint64_t> counts_{1 << 12};
  std::uint64_t n_ = 0;

  mutable std::vector<Key128> keys_;
  mutable std::vector<std::uint64_t> freqs_;
  mutable bool dirty_ = true;
};

}  // namespace rhhh
