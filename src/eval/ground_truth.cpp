#include "eval/ground_truth.hpp"

#include <algorithm>

namespace rhhh {

void ExactHhh::materialize() const {
  if (!dirty_) return;
  keys_.clear();
  freqs_.clear();
  keys_.reserve(counts_.size());
  freqs_.reserve(counts_.size());
  counts_.for_each([&](const Key128& k, const std::uint64_t& f) {
    keys_.push_back(k);
    freqs_.push_back(f);
  });
  dirty_ = false;
}

HhhSet ExactHhh::compute(double theta) const {
  materialize();
  HhhSet P(h_->size());
  if (n_ == 0) return P;
  const double thresh = theta * static_cast<double>(n_);
  const std::size_t U = keys_.size();
  std::vector<std::uint8_t> covered(U, 0);

  // Per-prefix (full mass, uncovered mass) accumulator, rebuilt per node.
  struct Mass {
    std::uint64_t full = 0;
    std::uint64_t uncov = 0;
  };

  for (int level = 0; level < h_->num_levels(); ++level) {
    const auto nodes = h_->nodes_at_level(level);
    // Accepted prefixes per node of this level, used to mark coverage after
    // the whole level is decided (Definition 8 conditions level l on
    // HHH_{l-1} only).
    std::vector<FlatHashMap<Key128, std::uint8_t>> accepted;
    accepted.reserve(nodes.size());
    bool any_accepted = false;

    for (const std::uint32_t node : nodes) {
      const Key128 mask = h_->node(node).mask;
      FlatHashMap<Key128, Mass> agg(1 << 12);
      for (std::size_t i = 0; i < U; ++i) {
        Mass& m = agg[keys_[i] & mask];
        m.full += freqs_[i];
        if (!covered[i]) m.uncov += freqs_[i];
      }
      FlatHashMap<Key128, std::uint8_t> acc(64);
      agg.for_each([&](const Key128& key, const Mass& m) {
        if (static_cast<double>(m.uncov) >= thresh) {
          const Prefix p{node, key};
          P.add(HhhCandidate{p, static_cast<double>(m.full),
                             static_cast<double>(m.full),
                             static_cast<double>(m.full),
                             static_cast<double>(m.uncov)});
          acc.insert_or_assign(key, 1);
          any_accepted = true;
        }
      });
      accepted.push_back(std::move(acc));
    }

    if (!any_accepted) continue;
    for (std::size_t i = 0; i < U; ++i) {
      if (covered[i]) continue;
      for (std::size_t nidx = 0; nidx < nodes.size(); ++nidx) {
        if (accepted[nidx].empty()) continue;
        const Key128 mask = h_->node(nodes[nidx]).mask;
        if (accepted[nidx].contains(keys_[i] & mask)) {
          covered[i] = 1;
          break;
        }
      }
    }
  }
  return P;
}

std::vector<std::uint64_t> ExactHhh::frequencies(std::span<const Prefix> ps) const {
  materialize();
  std::vector<std::uint64_t> out(ps.size(), 0);
  // Group queried prefixes by node; accumulate only the queried prefixes
  // (cheaper than aggregating every prefix when |ps| << distinct keys).
  std::vector<FlatHashMap<Key128, std::uint32_t>> queried(h_->size());
  std::vector<std::uint32_t> nodes_used;
  for (std::size_t i = 0; i < ps.size(); ++i) {
    if (queried[ps[i].node].empty()) nodes_used.push_back(ps[i].node);
    queried[ps[i].node].insert_or_assign(ps[i].key, static_cast<std::uint32_t>(i));
  }
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    for (const std::uint32_t node : nodes_used) {
      const Key128 masked = keys_[i] & h_->node(node).mask;
      if (const std::uint32_t* qi = queried[node].find(masked)) {
        out[*qi] += freqs_[i];
      }
    }
  }
  // Duplicate queries resolved to one accumulator slot; copy the result out.
  for (std::size_t i = 0; i < ps.size(); ++i) {
    out[i] = out[*queried[ps[i].node].find(ps[i].key)];
  }
  return out;
}

std::vector<std::uint8_t> ExactHhh::covered_by(const HhhSet& P) const {
  std::vector<std::uint8_t> covered(keys_.size(), 0);
  std::vector<std::uint32_t> p_nodes;
  for (std::uint32_t node = 0; node < h_->size(); ++node) {
    if (!P.at_node(node).empty()) p_nodes.push_back(node);
  }
  std::vector<FlatHashMap<Key128, std::uint8_t>> members;
  members.reserve(p_nodes.size());
  for (const std::uint32_t node : p_nodes) {
    FlatHashMap<Key128, std::uint8_t> m(2 * P.at_node(node).size() + 16);
    for (const std::uint32_t idx : P.at_node(node)) {
      m.insert_or_assign(P[idx].prefix.key, 1);
    }
    members.push_back(std::move(m));
  }
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    for (std::size_t j = 0; j < p_nodes.size(); ++j) {
      const Key128 mask = h_->node(p_nodes[j]).mask;
      if (members[j].contains(keys_[i] & mask)) {
        covered[i] = 1;
        break;
      }
    }
  }
  return covered;
}

std::vector<std::uint64_t> ExactHhh::conditioned(std::span<const Prefix> qs,
                                                 const HhhSet& P) const {
  materialize();
  std::vector<std::uint64_t> out(qs.size(), 0);
  const std::vector<std::uint8_t> covered = covered_by(P);

  std::vector<FlatHashMap<Key128, std::uint32_t>> queried(h_->size());
  std::vector<std::uint32_t> nodes_used;
  for (std::size_t i = 0; i < qs.size(); ++i) {
    if (queried[qs[i].node].empty()) nodes_used.push_back(qs[i].node);
    queried[qs[i].node].insert_or_assign(qs[i].key, static_cast<std::uint32_t>(i));
  }
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    if (covered[i]) continue;
    for (const std::uint32_t node : nodes_used) {
      const Key128 masked = keys_[i] & h_->node(node).mask;
      if (const std::uint32_t* qi = queried[node].find(masked)) {
        out[*qi] += freqs_[i];
      }
    }
  }
  for (std::size_t i = 0; i < qs.size(); ++i) {
    out[i] = out[*queried[qs[i].node].find(qs[i].key)];
  }
  return out;
}

std::vector<Prefix> ExactHhh::heavy_prefixes(double theta) const {
  materialize();
  std::vector<Prefix> out;
  if (n_ == 0) return out;
  const double thresh = theta * static_cast<double>(n_);
  for (std::uint32_t node = 0; node < h_->size(); ++node) {
    const Key128 mask = h_->node(node).mask;
    FlatHashMap<Key128, std::uint64_t> agg(1 << 12);
    for (std::size_t i = 0; i < keys_.size(); ++i) agg[keys_[i] & mask] += freqs_[i];
    agg.for_each([&](const Key128& key, const std::uint64_t& f) {
      if (static_cast<double>(f) >= thresh) out.push_back(Prefix{node, key});
    });
  }
  return out;
}

}  // namespace rhhh
