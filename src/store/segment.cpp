#include "store/segment.hpp"

#include "obs/metrics.hpp"

#include <cstdio>
#include <filesystem>
#include <limits>
#include <memory>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace rhhh::store {

namespace {

// File magics, spelled as little-endian byte sequences: "RHHS" opens a
// segment, "WREC" opens each record frame, "RHHF" closes the footer.
constexpr std::uint32_t kSegmentMagic = 0x53484852u;  // 'R','H','H','S'
constexpr std::uint32_t kRecordMagic = 0x43455257u;   // 'W','R','E','C'
constexpr std::uint32_t kFooterMagic = 0x46484852u;   // 'R','H','H','F'
// v1: magic, version, header len, flags (16 bytes).
// v2 appends the archiver run id (u64) -> 24 bytes. The self-declared
// header length lets a v2 reader skip past headers it has never seen, and
// lets this reader accept v1 files (run id reported as 0).
constexpr std::uint32_t kSegmentFormatVersion = 2;
constexpr std::uint32_t kMinSegmentFormatVersion = 1;
constexpr std::size_t kSegmentHeaderBytesV1 = 16;
constexpr std::size_t kSegmentHeaderBytes = 24;  // v2: v1 fields + run id
constexpr std::size_t kRecordFrameBytes = 12;    // magic, payload len, payload crc
constexpr std::size_t kTrailerBytes = 20;  // index offset u64, len u32, crc u32, magic

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw std::runtime_error("store: " + path + ": " + what);
}

void write_all(std::FILE* f, const std::string& path, const std::uint8_t* data,
               std::size_t len) {
  if (len != 0 && std::fwrite(data, 1, len, f) != len) fail(path, "short write");
}

/// Seek with a full 64-bit offset: std::fseek takes `long`, which is 32
/// bits on some ABIs and would wrap once a segment outgrows 2 GiB (size
/// rolling can be disabled). POSIX fseeko carries off_t; elsewhere, refuse
/// loudly instead of seeking to a wrapped offset.
bool seek_to(std::FILE* f, std::uint64_t offset) {
#if defined(_WIN32)
  return _fseeki64(f, static_cast<long long>(offset), SEEK_SET) == 0;
#elif defined(__unix__) || defined(__APPLE__)
  return fseeko(f, static_cast<off_t>(offset), SEEK_SET) == 0;
#else
  if (offset > static_cast<std::uint64_t>(std::numeric_limits<long>::max())) {
    return false;
  }
  return std::fseek(f, static_cast<long>(offset), SEEK_SET) == 0;
#endif
}

/// Reads exactly `len` bytes at `offset`; false on short read (EOF).
bool read_exact_at(std::FILE* f, std::uint64_t offset, std::uint8_t* out,
                   std::size_t len) {
  if (!seek_to(f, offset)) return false;
  return std::fread(out, 1, len, f) == len;
}

struct FileCloser {
  void operator()(std::FILE* f) const noexcept {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

FilePtr open_read(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) fail(path, "cannot open for reading");
  return f;
}

}  // namespace

Bytes read_record_at(const std::string& path, std::uint64_t offset,
                     std::uint32_t expect_length) {
  FilePtr f = open_read(path);
  std::uint8_t frame[kRecordFrameBytes];
  if (!read_exact_at(f.get(), offset, frame, sizeof frame)) {
    fail(path, "truncated record frame");
  }
  ByteReader r(frame, sizeof frame);
  if (r.u32() != kRecordMagic) fail(path, "bad record magic");
  const std::uint32_t len = r.u32();
  const std::uint32_t crc = r.u32();
  if (len != expect_length) fail(path, "record length does not match the index");
  Bytes payload(len);
  if (!read_exact_at(f.get(), offset + kRecordFrameBytes, payload.data(), len)) {
    fail(path, "truncated record payload");
  }
  if (crc32(payload) != crc) fail(path, "record payload CRC mismatch");
  return payload;
}

// ---------------------------------------------------------- SegmentWriter --

SegmentWriter::SegmentWriter(std::string path, FsyncMode fsync,
                             std::uint64_t run_id)
    : path_(std::move(path)), fsync_(fsync), run_id_(run_id) {
  f_ = std::fopen(path_.c_str(), "wb");
  if (f_ == nullptr) fail(path_, "cannot create segment");
  ByteWriter h;
  h.u32(kSegmentMagic);
  h.u32(kSegmentFormatVersion);
  h.u32(static_cast<std::uint32_t>(kSegmentHeaderBytes));
  h.u32(0);  // flags
  h.u64(run_id_);
  write_all(f_, path_, h.bytes().data(), h.size());
  bytes_ = h.size();
  if (std::fflush(f_) != 0) fail(path_, "flush failed");
}

void SegmentWriter::sync_now() {
#if defined(__unix__) || defined(__APPLE__)
  const std::uint64_t t0 = fsync_probe_ != nullptr ? obs::now_ns() : 0;
  if (::fsync(fileno(f_)) != 0) fail(path_, "fsync failed");
  ++fsyncs_;
  if (fsync_probe_ != nullptr) fsync_probe_->record_since(t0);
#endif
  // No fsync equivalent wired up elsewhere: the mode degrades to the
  // per-record fflush the writer always performs.
}

SegmentWriter::~SegmentWriter() {
  try {
    seal();
  } catch (...) {  // NOLINT(bugprone-empty-catch): destructor must not throw
  }
}

SegmentIndexEntry SegmentWriter::append(const Bytes& payload, std::uint64_t epoch,
                                        std::int64_t wall_start_ns,
                                        std::int64_t wall_end_ns) {
  if (f_ == nullptr) fail(path_, "append on a sealed segment");
  SegmentIndexEntry e;
  e.offset = bytes_;
  e.length = static_cast<std::uint32_t>(payload.size());
  e.epoch = epoch;
  e.wall_start_ns = wall_start_ns;
  e.wall_end_ns = wall_end_ns;

  ByteWriter frame;
  frame.u32(kRecordMagic);
  frame.u32(e.length);
  frame.u32(crc32(payload));
  write_all(f_, path_, frame.bytes().data(), frame.size());
  write_all(f_, path_, payload.data(), payload.size());
  // Per-record flush: a crash loses at most the record being written, and
  // the scan path of a concurrent reader sees only completed frames.
  if (std::fflush(f_) != 0) fail(path_, "flush failed");
  if (fsync_ == FsyncMode::kPerRecord) sync_now();
  bytes_ += frame.size() + payload.size();
  index_.push_back(e);
  return e;
}

void SegmentWriter::seal() {
  if (f_ == nullptr) return;
  ByteWriter idx;
  idx.u32(static_cast<std::uint32_t>(index_.size()));
  for (const SegmentIndexEntry& e : index_) {
    idx.u64(e.offset);
    idx.u32(e.length);
    idx.u64(e.epoch);
    idx.i64(e.wall_start_ns);
    idx.i64(e.wall_end_ns);
  }
  ByteWriter trailer;
  trailer.u64(bytes_);  // index offset
  trailer.u32(static_cast<std::uint32_t>(idx.size()));
  trailer.u32(crc32(idx.bytes()));
  trailer.u32(kFooterMagic);
  write_all(f_, path_, idx.bytes().data(), idx.size());
  write_all(f_, path_, trailer.bytes().data(), trailer.size());
  bytes_ += idx.size() + trailer.size();
  bool ok = std::fflush(f_) == 0;
  if (ok && fsync_ != FsyncMode::kNone) {
    // Both per-roll and per-record sync the footer: a sealed segment that
    // survives a crash must survive with its index.
    try {
      sync_now();
    } catch (const std::runtime_error&) {
      ok = false;
    }
  }
  std::fclose(f_);
  f_ = nullptr;
  if (!ok) fail(path_, "flush failed while sealing");
}

// ---------------------------------------------------------- SegmentReader --

SegmentReader::SegmentReader(std::string path) : path_(std::move(path)) {
  std::error_code ec;
  const std::uintmax_t fsize = std::filesystem::file_size(path_, ec);
  if (ec) fail(path_, "cannot stat segment");
  FilePtr f = open_read(path_);

  // Read the fixed v1 prefix first; its self-declared header length then
  // locates any newer fields (v2's run id) and the first record.
  std::uint8_t hdr[kSegmentHeaderBytesV1];
  if (fsize < kSegmentHeaderBytesV1 ||
      !read_exact_at(f.get(), 0, hdr, sizeof hdr)) {
    fail(path_, "not a segment (short header)");
  }
  ByteReader hr(hdr, sizeof hdr);
  if (hr.u32() != kSegmentMagic) fail(path_, "not a segment (bad magic)");
  version_ = hr.u32();
  if (version_ < kMinSegmentFormatVersion || version_ > kSegmentFormatVersion) {
    fail(path_, "unsupported segment format version " + std::to_string(version_));
  }
  const std::uint32_t header_bytes = hr.u32();
  const std::size_t min_header =
      version_ >= 2 ? kSegmentHeaderBytes : kSegmentHeaderBytesV1;
  if (header_bytes < min_header || header_bytes > fsize) {
    fail(path_, "implausible segment header length");
  }
  if (version_ >= 2) {
    std::uint8_t ext[8];
    if (!read_exact_at(f.get(), kSegmentHeaderBytesV1, ext, sizeof ext)) {
      fail(path_, "short v2 segment header");
    }
    ByteReader er(ext, sizeof ext);
    run_id_ = er.u64();
  }

  // Sealed path: a valid trailer at EOF addresses every record directly.
  if (fsize >= header_bytes + kTrailerBytes) {
    std::uint8_t tr[kTrailerBytes];
    if (read_exact_at(f.get(), fsize - kTrailerBytes, tr, sizeof tr)) {
      ByteReader trr(tr, sizeof tr);
      const std::uint64_t idx_off = trr.u64();
      const std::uint32_t idx_len = trr.u32();
      const std::uint32_t idx_crc = trr.u32();
      if (trr.u32() == kFooterMagic && idx_off >= header_bytes &&
          idx_off + idx_len + kTrailerBytes == fsize) {
        Bytes idx(idx_len);
        if (read_exact_at(f.get(), idx_off, idx.data(), idx_len) &&
            crc32(idx) == idx_crc) {
          ByteReader ir(idx.data(), idx.size());
          const std::uint32_t count = ir.u32();
          index_.reserve(count);
          for (std::uint32_t i = 0; i < count; ++i) {
            SegmentIndexEntry e;
            e.offset = ir.u64();
            e.length = ir.u32();
            e.epoch = ir.u64();
            e.wall_start_ns = ir.i64();
            e.wall_end_ns = ir.i64();
            if (e.offset < header_bytes ||
                e.offset + kRecordFrameBytes + e.length > idx_off) {
              fail(path_, "footer index entry out of bounds");
            }
            index_.push_back(e);
          }
          sealed_ = true;
          return;
        }
      }
    }
  }

  // Scan path (torn segment): accept frames until one fails to verify.
  std::uint64_t pos = header_bytes;
  while (pos + kRecordFrameBytes <= fsize) {
    std::uint8_t frame[kRecordFrameBytes];
    if (!read_exact_at(f.get(), pos, frame, sizeof frame)) break;
    ByteReader fr(frame, sizeof frame);
    if (fr.u32() != kRecordMagic) break;
    const std::uint32_t len = fr.u32();
    const std::uint32_t crc = fr.u32();
    if (pos + kRecordFrameBytes + len > fsize) break;
    Bytes payload(len);
    if (!read_exact_at(f.get(), pos + kRecordFrameBytes, payload.data(), len)) break;
    if (crc32(payload) != crc) break;
    SegmentIndexEntry e;
    e.offset = pos;
    e.length = len;
    try {
      const WindowHeader wh = decode_window_header(payload.data(), payload.size());
      e.epoch = wh.meta.epoch;
      e.wall_start_ns = wh.meta.wall_start_ns;
      e.wall_end_ns = wh.meta.wall_end_ns;
    } catch (const std::runtime_error&) {
      break;  // CRC-valid frame with an unreadable record: stop before it
    }
    index_.push_back(e);
    pos += kRecordFrameBytes + len;
  }
  truncated_ = pos != fsize;
}

Bytes SegmentReader::read(std::size_t i) const {
  if (i >= index_.size()) fail(path_, "record index out of range");
  return read_record_at(path_, index_[i].offset, index_[i].length);
}

}  // namespace rhhh::store
