// Append-only segment files for the durable window store.
//
// A segment is one file of CRC-framed window records followed by a footer
// index (the Akumuli/Confluo append-log shape: immutable once sealed,
// random access through a tail index, whole-file deletion as the
// compaction unit):
//
//   [segment header]            magic, format version, header length
//   [record]*                   rec magic | payload len | payload CRC | payload
//   [footer index]              per record: offset, len, epoch, wall span
//   [footer trailer]            index offset | index len | index CRC | magic
//
// A cleanly closed (sealed) segment is read through the trailer: seek to
// the end, validate the trailer magic and the index CRC, and every record
// is addressable without touching its payload. A segment that was being
// written when the process died has no trailer; the reader then *scans*
// records from the front, accepting every frame whose magic, length and
// CRC check out and stopping at the first that does not -- the records
// before the tear survive, the torn tail is reported, and nothing is ever
// undefined behavior.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/monitor.hpp"
#include "store/serde.hpp"

namespace rhhh::obs {
class Histogram;  // obs/metrics.hpp (optional fsync latency probe)
}

namespace rhhh::store {

/// One record's position and query-relevant metadata inside a segment --
/// what the footer index persists so time-range pruning and last-N
/// selection never decode payloads.
struct SegmentIndexEntry {
  std::uint64_t offset = 0;  ///< file offset of the record frame
  std::uint32_t length = 0;  ///< payload bytes (frame adds 12)
  std::uint64_t epoch = 0;
  std::int64_t wall_start_ns = 0;
  std::int64_t wall_end_ns = 0;
};

/// Reads one framed record at `offset` in `path` and returns its payload,
/// validating the frame magic, the declared length and the payload CRC;
/// throws std::runtime_error on any mismatch. The shared low-level read
/// used by SegmentReader and by the archive's open-segment reads.
[[nodiscard]] Bytes read_record_at(const std::string& path, std::uint64_t offset,
                                   std::uint32_t expect_length);

/// Writes a new segment file. Records are fully flushed per append (a
/// reader's scan path sees every completed append even before the segment
/// is sealed); seal() writes the footer and closes.
class SegmentWriter {
 public:
  /// Creates `path` (truncating any leftover) and writes the header
  /// (format v2: carries `run_id`, the random 64-bit identity of the
  /// archiver run that produced this segment -- 0 when unknown, e.g. a
  /// compaction rewrite of a v1 segment). `fsync` sets the durability
  /// cadence; every mode still fflush()es per record.
  /// Throws std::runtime_error when the file cannot be created.
  explicit SegmentWriter(std::string path, FsyncMode fsync = FsyncMode::kNone,
                         std::uint64_t run_id = 0);
  ~SegmentWriter();

  SegmentWriter(const SegmentWriter&) = delete;
  SegmentWriter& operator=(const SegmentWriter&) = delete;

  /// Appends one framed record; returns its index entry (offset filled in).
  SegmentIndexEntry append(const Bytes& payload, std::uint64_t epoch,
                           std::int64_t wall_start_ns, std::int64_t wall_end_ns);

  /// Bytes written so far, frames and header included (the roll criterion).
  [[nodiscard]] std::uint64_t bytes_written() const noexcept { return bytes_; }
  [[nodiscard]] std::size_t records() const noexcept { return index_.size(); }
  /// Wall-clock start of the first record, or 0 when empty (age-based roll).
  [[nodiscard]] std::int64_t first_wall_ns() const noexcept {
    return index_.empty() ? 0 : index_.front().wall_start_ns;
  }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] const std::vector<SegmentIndexEntry>& index() const noexcept {
    return index_;
  }
  /// The archiver-run identity stamped into this segment's header.
  [[nodiscard]] std::uint64_t run_id() const noexcept { return run_id_; }
  /// fsync() calls issued so far (0 under FsyncMode::kNone; the cadence
  /// knob's observable effect).
  [[nodiscard]] std::uint64_t fsyncs() const noexcept { return fsyncs_; }

  /// Attach a latency histogram that every fsync() duration is recorded
  /// into (telemetry; null detaches). The histogram must outlive the
  /// writer -- registry-owned instruments do.
  void set_fsync_probe(obs::Histogram* h) noexcept { fsync_probe_ = h; }

  /// Writes the footer index + trailer and closes the file. Idempotent;
  /// also run by the destructor (which swallows errors -- call seal()
  /// explicitly when you need them).
  void seal();

 private:
  void sync_now();

  std::string path_;
  std::FILE* f_ = nullptr;
  std::uint64_t bytes_ = 0;
  std::vector<SegmentIndexEntry> index_;
  FsyncMode fsync_ = FsyncMode::kNone;
  std::uint64_t run_id_ = 0;
  std::uint64_t fsyncs_ = 0;
  obs::Histogram* fsync_probe_ = nullptr;  ///< registry-owned, optional
};

/// Opens a segment for reading: through the footer when sealed, by forward
/// scan otherwise. Construction validates the header (magic + version) and
/// throws std::runtime_error on a file that is not a segment at all.
class SegmentReader {
 public:
  explicit SegmentReader(std::string path);

  /// True when a valid footer was found (cleanly closed segment).
  [[nodiscard]] bool sealed() const noexcept { return sealed_; }
  /// Segment format version found in the header (1 = pre-run-id).
  [[nodiscard]] std::uint32_t version() const noexcept { return version_; }
  /// The archiver-run identity from the header; 0 for v1 segments (which
  /// predate the field) and for compaction rewrites of them.
  [[nodiscard]] std::uint64_t run_id() const noexcept { return run_id_; }
  /// True when an unsealed scan stopped at a torn/corrupt frame (records
  /// before it are still served).
  [[nodiscard]] bool truncated_tail() const noexcept { return truncated_; }
  [[nodiscard]] const std::vector<SegmentIndexEntry>& index() const noexcept {
    return index_;
  }
  [[nodiscard]] std::size_t records() const noexcept { return index_.size(); }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// Payload of record `i`, CRC-checked; throws std::runtime_error on
  /// corruption (a sealed index can outlive a later payload flip).
  [[nodiscard]] Bytes read(std::size_t i) const;

 private:
  std::string path_;
  bool sealed_ = false;
  bool truncated_ = false;
  std::uint32_t version_ = 0;
  std::uint64_t run_id_ = 0;
  std::vector<SegmentIndexEntry> index_;
};

}  // namespace rhhh::store
