// WindowArchive: the durable window store over a directory of segments.
//
// A store directory holds numbered append-only segment files
// (00000001.seg, 00000002.seg, ...; see store/segment.hpp for the file
// format). Windows are strictly append-ordered across segments, so the
// catalog -- every record of every segment, oldest first -- is the full
// history, and queries are answered by decoding the relevant records and
// merging them with LatticeHhh::merge exactly like the engine's own
// snapshot paths:
//
//   * last(k)        -- the k most recent windows, newest first (the age
//                       order trend_snapshot() uses), each reproducing its
//                       in-memory HHH sets byte for byte.
//   * range(a, b)    -- every window whose wall-clock span overlaps
//                       [a, b], oldest first (time-range queries).
//   * merged_last /  -- one network-wide lattice folding the selected
//     merged_range      windows together, drops included in its N.
//   * replay()       -- a forward iterator over the whole history for
//                       offline reprocessing.
//
// Write side: open_write() continues the directory's segment numbering,
// append() frames + CRCs each window, rolls segments by size/age and
// applies retention-by-bytes (whole oldest segments deleted -- the
// Akumuli-style compaction unit). A WindowArchive instance is not
// thread-safe; the engine gives its archiver thread exclusive ownership.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/monitor.hpp"
#include "store/segment.hpp"
#include "store/serde.hpp"

namespace rhhh::obs {
class Counter;    // obs/metrics.hpp -- forward-declared; the archive holds
class Gauge;      // raw pointers to registry-owned instruments so it stays
class Histogram;  // movable (no `this`-capturing samplers; see bind_metrics
class TraceRing;  // in archive.cpp).
}

namespace rhhh::store {

/// One decoded window: metadata plus a lattice that answers
/// output()/estimate() exactly as the archived instance did. The lattice
/// references the archive's hierarchy -- do not outlive the archive.
struct ArchivedWindow {
  WindowMeta meta;
  std::unique_ptr<RhhhSpaceSaving> window;
};

class WindowArchive {
 public:
  /// Opens an existing store read-only (the directory must exist). Torn
  /// segments are scanned and their valid prefix served; see
  /// truncated_tail().
  [[nodiscard]] static WindowArchive open_read(const std::string& dir);
  /// Opens (creating the directory if needed) for appending. Existing
  /// segments join the catalog and numbering continues after them; a new
  /// segment starts on the first append.
  [[nodiscard]] static WindowArchive open_write(const ArchiveConfig& cfg);

  WindowArchive(WindowArchive&&) noexcept = default;
  WindowArchive& operator=(WindowArchive&&) noexcept = default;
  WindowArchive(const WindowArchive&) = delete;
  WindowArchive& operator=(const WindowArchive&) = delete;
  ~WindowArchive();

  // -- write side -----------------------------------------------------------
  /// Serializes and appends one sealed window; rolls the segment and
  /// applies retention as configured. Write-mode only (throws otherwise).
  /// Every window of one store must share a hierarchy kind and lattice
  /// configuration (validated; throws std::invalid_argument).
  void append(const WindowMeta& meta, HierarchyKind kind, const RhhhSpaceSaving& w);
  /// Seals the segment being written (footer + close). Idempotent; also
  /// run by the destructor. Read APIs work before and after.
  void close();

  // -- catalog --------------------------------------------------------------
  [[nodiscard]] std::size_t windows() const noexcept { return catalog_.size(); }
  [[nodiscard]] std::size_t segments() const noexcept { return seg_paths_.size(); }
  /// Store footprint in bytes (all segments, the open one included).
  [[nodiscard]] std::uint64_t total_bytes() const;
  /// True when any segment had a torn tail (crash recovery dropped the
  /// unreadable suffix; everything indexed is still valid).
  [[nodiscard]] bool truncated_tail() const noexcept { return truncated_; }
  /// The store's hierarchy, reconstructed from the records (nullptr while
  /// the store is empty).
  [[nodiscard]] const Hierarchy* hierarchy() const noexcept {
    return hierarchy_.get();
  }
  [[nodiscard]] const std::string& dir() const noexcept { return cfg_.dir; }
  /// Full metadata of every window, oldest first (decodes record headers).
  [[nodiscard]] std::vector<WindowMeta> list() const;
  /// This writer's archiver-run identity: a random 64-bit id drawn at
  /// open_write() and stamped into every segment header it creates, so
  /// post-hoc analysis can tell which process run produced which segments.
  /// 0 on read-only archives.
  [[nodiscard]] std::uint64_t run_id() const noexcept { return run_id_; }
  /// The run id recorded in segment `s`'s header (0 for v1 segments).
  [[nodiscard]] std::uint64_t segment_run_id(std::size_t s) const {
    return seg_run_ids_.at(s);
  }
  /// fsync() calls issued across all segments written by this instance
  /// (0 under FsyncMode::kNone; the cadence knob's observable effect).
  [[nodiscard]] std::uint64_t fsyncs() const noexcept;

  // -- queries --------------------------------------------------------------
  /// Window `i` in append order (0 = oldest).
  [[nodiscard]] ArchivedWindow read(std::size_t i) const;
  /// The min(k, windows()) most recent windows, NEWEST first -- index 0
  /// matches trend_snapshot()'s age 0.
  [[nodiscard]] std::vector<ArchivedWindow> last(std::size_t k) const;
  /// Windows whose [wall_start_ns, wall_end_ns] span overlaps
  /// [from_ns, to_ns], oldest first.
  [[nodiscard]] std::vector<ArchivedWindow> range(std::int64_t from_ns,
                                                  std::int64_t to_ns) const;
  /// One lattice merging the last k windows (nullptr when the store is
  /// empty); `drops_out`, if non-null, receives the summed attributed
  /// drops (already folded into the merged stream length).
  [[nodiscard]] std::unique_ptr<RhhhSpaceSaving> merged_last(
      std::size_t k, std::uint64_t* drops_out = nullptr) const;
  /// Same over a wall-clock range.
  [[nodiscard]] std::unique_ptr<RhhhSpaceSaving> merged_range(
      std::int64_t from_ns, std::int64_t to_ns,
      std::uint64_t* drops_out = nullptr) const;

  /// Forward cursor over the whole history, oldest first (offline replay).
  class Replay {
   public:
    /// Decodes the next window into `out`; false at the end of history.
    bool next(ArchivedWindow& out);
    [[nodiscard]] std::size_t position() const noexcept { return pos_; }

   private:
    friend class WindowArchive;
    explicit Replay(const WindowArchive* a) : archive_(a) {}
    const WindowArchive* archive_;
    std::size_t pos_ = 0;
  };
  [[nodiscard]] Replay replay() const { return Replay(this); }

  // -- maintenance ----------------------------------------------------------
  /// Offline compaction (store_tool): rewrites torn segments into sealed
  /// ones (their valid prefix survives, the torn tail is dropped for
  /// good), then deletes the oldest segments while the store exceeds
  /// `retain_bytes` (0 = repair only). Not callable while a segment is
  /// open for writing. Returns the number of segments deleted.
  std::size_t compact(std::uint64_t retain_bytes);

 private:
  struct Entry {
    std::size_t seg = 0;  ///< index into seg_paths_
    SegmentIndexEntry rec;
  };

  WindowArchive(ArchiveConfig cfg, bool writable);
  /// Cache registry-owned instruments (ArchiveConfig::telemetry, writable
  /// archives only) and refresh the point-in-time gauges. All pointers are
  /// plain data: moving the archive moves them safely, and nothing needs
  /// unregistering on destruction.
  void bind_metrics();
  void update_gauges();
  void load_catalog();
  void ensure_hierarchy(HierarchyKind kind);
  void roll_if_due(std::int64_t next_wall_start_ns, std::size_t next_payload);
  void apply_retention(std::uint64_t retain_bytes);
  [[nodiscard]] ArchivedWindow decode_entry(const Entry& e) const;
  [[nodiscard]] std::unique_ptr<RhhhSpaceSaving> merge_entries(
      const std::vector<const Entry*>& sel, std::uint64_t* drops_out) const;

  ArchiveConfig cfg_;
  bool writable_ = false;
  bool truncated_ = false;
  std::uint64_t run_id_ = 0;             ///< this writer's identity; 0 read-only
  std::uint64_t fsyncs_sealed_ = 0;      ///< fsyncs of already-sealed segments
  std::vector<std::string> seg_paths_;   ///< sorted, oldest first
  std::vector<std::uint64_t> seg_bytes_; ///< parallel to seg_paths_
  std::vector<std::uint64_t> seg_run_ids_;  ///< parallel to seg_paths_
  std::vector<Entry> catalog_;           ///< append order, oldest first
  std::unique_ptr<Hierarchy> hierarchy_;
  HierarchyKind kind_ = HierarchyKind::kIpv4TwoDimBytes;
  bool have_kind_ = false;
  std::unique_ptr<SegmentWriter> writer_;
  std::uint64_t next_seg_no_ = 1;

  // Telemetry (null when off or read-only): registry-owned instruments,
  // cached once in bind_metrics().
  obs::Counter* m_bytes_ = nullptr;        ///< payload+frame bytes appended
  obs::Counter* m_rolls_ = nullptr;        ///< segments sealed by roll/close
  obs::Histogram* m_append_ns_ = nullptr;  ///< per-window append latency
  obs::Histogram* m_fsync_ns_ = nullptr;   ///< attached to segment writers
  obs::Histogram* m_compact_ns_ = nullptr; ///< compact() latency
  obs::Gauge* m_segments_ = nullptr;       ///< point-in-time segment count
  obs::Gauge* m_windows_ = nullptr;        ///< point-in-time window count
  obs::Gauge* m_total_bytes_ = nullptr;    ///< point-in-time store bytes
  obs::TraceRing* m_trace_ = nullptr;      ///< roll/compaction events
};

}  // namespace rhhh::store
