#include "store/archive.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <random>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace_ring.hpp"
#include "util/bits.hpp"

namespace rhhh::store {

namespace fs = std::filesystem;

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("store: " + what);
}

std::string segment_name(std::uint64_t no) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%08" PRIu64 ".seg", no);
  return std::string(buf);
}

/// The numeric part of a segment file name, or 0 for foreign files.
std::uint64_t segment_number(const fs::path& p) {
  if (p.extension() != ".seg") return 0;
  const std::string stem = p.stem().string();
  if (stem.size() != 8 ||
      stem.find_first_not_of("0123456789") != std::string::npos) {
    return 0;
  }
  return std::strtoull(stem.c_str(), nullptr, 10);
}

/// A fresh archiver-run identity: random_device entropy folded with the
/// wall clock through mix64, so two runs get distinct ids even on platforms
/// where random_device is deterministic. Never returns 0 (0 = "unknown",
/// the v1 placeholder).
std::uint64_t draw_run_id() {
  std::random_device rd;
  const std::uint64_t entropy =
      (static_cast<std::uint64_t>(rd()) << 32) ^ static_cast<std::uint64_t>(rd());
  const std::uint64_t now = static_cast<std::uint64_t>(
      std::chrono::system_clock::now().time_since_epoch().count());
  const std::uint64_t id = mix64(entropy ^ mix64(now));
  return id != 0 ? id : 1;
}

}  // namespace

WindowArchive::WindowArchive(ArchiveConfig cfg, bool writable)
    : cfg_(std::move(cfg)), writable_(writable) {
  if (cfg_.dir.empty()) fail("archive directory must not be empty");
  if (writable_) {
    run_id_ = draw_run_id();
    std::error_code ec;
    fs::create_directories(cfg_.dir, ec);
    if (ec) fail(cfg_.dir + ": cannot create store directory");
  } else if (!fs::is_directory(cfg_.dir)) {
    fail(cfg_.dir + ": store directory does not exist");
  }
  load_catalog();
  bind_metrics();
}

void WindowArchive::bind_metrics() {
  if (!writable_ || !cfg_.telemetry) return;
  obs::MetricsRegistry& reg =
      cfg_.metrics != nullptr ? *cfg_.metrics : obs::MetricsRegistry::global();
  m_bytes_ = &reg.counter("rhhh_store_bytes_written_total",
                          "window record bytes appended (frames included)");
  m_rolls_ = &reg.counter("rhhh_store_segment_rolls_total",
                          "segments sealed by size/age roll or close");
  m_append_ns_ = &reg.histogram("rhhh_store_append_ns",
                                "per-window append latency (ns)");
  m_fsync_ns_ =
      &reg.histogram("rhhh_store_fsync_ns", "segment fsync latency (ns)");
  m_compact_ns_ =
      &reg.histogram("rhhh_store_compact_ns", "compaction pass latency (ns)");
  m_segments_ = &reg.gauge("rhhh_store_segments", "segments in the store");
  m_windows_ = &reg.gauge("rhhh_store_windows", "windows in the store");
  m_total_bytes_ = &reg.gauge("rhhh_store_bytes", "store footprint in bytes");
  m_trace_ = &obs::TraceRing::global();
  update_gauges();
}

void WindowArchive::update_gauges() {
  if (m_segments_ == nullptr) return;
  m_segments_->set(static_cast<std::int64_t>(segments()));
  m_windows_->set(static_cast<std::int64_t>(windows()));
  m_total_bytes_->set(static_cast<std::int64_t>(total_bytes()));
}

WindowArchive::~WindowArchive() {
  try {
    close();
  } catch (...) {  // NOLINT(bugprone-empty-catch): destructor must not throw
  }
}

WindowArchive WindowArchive::open_read(const std::string& dir) {
  ArchiveConfig cfg;
  cfg.dir = dir;
  return WindowArchive(std::move(cfg), /*writable=*/false);
}

WindowArchive WindowArchive::open_write(const ArchiveConfig& cfg) {
  if (!cfg.enabled()) fail("open_write needs a non-empty archive directory");
  return WindowArchive(cfg, /*writable=*/true);
}

void WindowArchive::load_catalog() {
  std::vector<std::pair<std::uint64_t, fs::path>> found;
  for (const fs::directory_entry& de : fs::directory_iterator(cfg_.dir)) {
    if (!de.is_regular_file()) continue;
    const std::uint64_t no = segment_number(de.path());
    if (no != 0) found.emplace_back(no, de.path());
  }
  std::sort(found.begin(), found.end());
  for (const auto& [no, path] : found) {
    SegmentReader reader(path.string());
    truncated_ = truncated_ || reader.truncated_tail() || !reader.sealed();
    const std::size_t seg = seg_paths_.size();
    seg_paths_.push_back(path.string());
    seg_run_ids_.push_back(reader.run_id());
    std::error_code ec;
    const std::uintmax_t bytes = fs::file_size(path, ec);
    seg_bytes_.push_back(ec ? 0 : static_cast<std::uint64_t>(bytes));
    for (const SegmentIndexEntry& rec : reader.index()) {
      catalog_.push_back(Entry{seg, rec});
    }
    next_seg_no_ = no + 1;
  }
  // Establish the hierarchy from the first surviving record, so read-only
  // opens can decode without out-of-band configuration.
  if (!catalog_.empty()) {
    const Entry& e = catalog_.front();
    const Bytes payload =
        read_record_at(seg_paths_[e.seg], e.rec.offset, e.rec.length);
    const WindowHeader h = decode_window_header(payload.data(), payload.size());
    ensure_hierarchy(h.config.hierarchy);
  }
}

void WindowArchive::ensure_hierarchy(HierarchyKind kind) {
  if (!have_kind_) {
    kind_ = kind;
    hierarchy_ = std::make_unique<Hierarchy>(make_hierarchy(kind));
    have_kind_ = true;
    return;
  }
  if (kind != kind_) {
    throw std::invalid_argument(
        "store: window hierarchy kind differs from the store's");
  }
}

std::uint64_t WindowArchive::total_bytes() const {
  std::uint64_t n = 0;
  for (std::size_t s = 0; s < seg_paths_.size(); ++s) {
    // The open segment's on-disk size grows past the snapshot taken at
    // load; the writer knows the live number.
    if (writer_ != nullptr && s + 1 == seg_paths_.size() &&
        writer_->path() == seg_paths_[s]) {
      n += writer_->bytes_written();
    } else {
      n += seg_bytes_[s];
    }
  }
  return n;
}

void WindowArchive::roll_if_due(std::int64_t next_wall_start_ns,
                                std::size_t next_payload) {
  if (writer_ == nullptr) return;
  bool roll = false;
  if (cfg_.segment_bytes > 0 && writer_->records() > 0 &&
      writer_->bytes_written() + next_payload > cfg_.segment_bytes) {
    roll = true;
  }
  if (cfg_.segment_seconds > 0 && writer_->records() > 0 &&
      next_wall_start_ns - writer_->first_wall_ns() >=
          static_cast<std::int64_t>(cfg_.segment_seconds) * 1'000'000'000) {
    roll = true;
  }
  if (!roll) return;
  const std::uint64_t closed_bytes = writer_->bytes_written();
  writer_->seal();
  seg_bytes_.back() = writer_->bytes_written();
  fsyncs_sealed_ += writer_->fsyncs();
  writer_.reset();
  if (cfg_.retain_bytes > 0) apply_retention(cfg_.retain_bytes);
  if (m_rolls_ != nullptr) {
    m_rolls_->inc();
    m_trace_->record(obs::TraceEvent::kSegmentRoll,
                     static_cast<std::int64_t>(obs::now_ns()), next_seg_no_,
                     closed_bytes);
  }
}

void WindowArchive::append(const WindowMeta& meta, HierarchyKind kind,
                           const RhhhSpaceSaving& w) {
  if (!writable_) fail("append on a read-only archive");
  ensure_hierarchy(kind);
  const std::uint64_t obs_t0 = m_append_ns_ != nullptr ? obs::now_ns() : 0;
  const Bytes payload = encode_window(meta, kind, w);
  roll_if_due(meta.wall_start_ns, payload.size());
  if (writer_ == nullptr) {
    const std::string path =
        (fs::path(cfg_.dir) / segment_name(next_seg_no_++)).string();
    writer_ = std::make_unique<SegmentWriter>(path, cfg_.fsync_mode, run_id_);
    writer_->set_fsync_probe(m_fsync_ns_);
    seg_paths_.push_back(path);
    seg_run_ids_.push_back(run_id_);
    seg_bytes_.push_back(writer_->bytes_written());
  }
  const std::uint64_t before = writer_->bytes_written();
  const SegmentIndexEntry rec =
      writer_->append(payload, meta.epoch, meta.wall_start_ns, meta.wall_end_ns);
  catalog_.push_back(Entry{seg_paths_.size() - 1, rec});
  if (m_append_ns_ != nullptr) {
    m_append_ns_->record_since(obs_t0);
    m_bytes_->add(writer_->bytes_written() - before);
    update_gauges();
  }
}

void WindowArchive::close() {
  if (writer_ == nullptr) return;
  writer_->seal();
  seg_bytes_.back() = writer_->bytes_written();
  fsyncs_sealed_ += writer_->fsyncs();
  writer_.reset();
  if (cfg_.retain_bytes > 0) apply_retention(cfg_.retain_bytes);
  if (m_rolls_ != nullptr) {
    m_rolls_->inc();
    update_gauges();
  }
}

std::uint64_t WindowArchive::fsyncs() const noexcept {
  return fsyncs_sealed_ + (writer_ != nullptr ? writer_->fsyncs() : 0);
}

void WindowArchive::apply_retention(std::uint64_t retain_bytes) {
  // Delete whole oldest segments until the store fits; the segment being
  // written (always the newest) is never deleted.
  while (seg_paths_.size() > 1 && total_bytes() > retain_bytes) {
    const std::string victim = seg_paths_.front();
    std::error_code ec;
    fs::remove(victim, ec);
    if (ec) fail(victim + ": cannot delete during retention");
    seg_paths_.erase(seg_paths_.begin());
    seg_bytes_.erase(seg_bytes_.begin());
    seg_run_ids_.erase(seg_run_ids_.begin());
    std::erase_if(catalog_, [](const Entry& e) { return e.seg == 0; });
    for (Entry& e : catalog_) --e.seg;
  }
}

std::vector<WindowMeta> WindowArchive::list() const {
  std::vector<WindowMeta> out;
  out.reserve(catalog_.size());
  for (const Entry& e : catalog_) {
    const Bytes payload =
        read_record_at(seg_paths_[e.seg], e.rec.offset, e.rec.length);
    out.push_back(decode_window_header(payload.data(), payload.size()).meta);
  }
  return out;
}

ArchivedWindow WindowArchive::decode_entry(const Entry& e) const {
  if (hierarchy_ == nullptr) fail("decode on an empty archive");
  const Bytes payload =
      read_record_at(seg_paths_[e.seg], e.rec.offset, e.rec.length);
  ArchivedWindow out;
  // Pin the exact kind: a foreign same-H segment copied into this store
  // directory must fail loudly, never format under the wrong hierarchy.
  out.window = decode_window(payload.data(), payload.size(), *hierarchy_,
                             &out.meta, &kind_);
  return out;
}

ArchivedWindow WindowArchive::read(std::size_t i) const {
  if (i >= catalog_.size()) fail("window index out of range");
  return decode_entry(catalog_[i]);
}

std::vector<ArchivedWindow> WindowArchive::last(std::size_t k) const {
  std::vector<ArchivedWindow> out;
  const std::size_t m = std::min(k, catalog_.size());
  out.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    out.push_back(decode_entry(catalog_[catalog_.size() - 1 - i]));
  }
  return out;
}

std::vector<ArchivedWindow> WindowArchive::range(std::int64_t from_ns,
                                                 std::int64_t to_ns) const {
  std::vector<ArchivedWindow> out;
  for (const Entry& e : catalog_) {
    if (e.rec.wall_end_ns < from_ns || e.rec.wall_start_ns > to_ns) continue;
    out.push_back(decode_entry(e));
  }
  return out;
}

std::unique_ptr<RhhhSpaceSaving> WindowArchive::merge_entries(
    const std::vector<const Entry*>& sel, std::uint64_t* drops_out) const {
  if (drops_out != nullptr) *drops_out = 0;
  if (sel.empty()) return nullptr;
  std::unique_ptr<RhhhSpaceSaving> merged;
  for (const Entry* e : sel) {
    ArchivedWindow w = decode_entry(*e);
    if (drops_out != nullptr) *drops_out += w.meta.drops;
    if (merged == nullptr) {
      merged = std::move(w.window);
    } else {
      merged->merge(*w.window);
    }
  }
  return merged;
}

std::unique_ptr<RhhhSpaceSaving> WindowArchive::merged_last(
    std::size_t k, std::uint64_t* drops_out) const {
  std::vector<const Entry*> sel;
  const std::size_t m = std::min(k, catalog_.size());
  sel.reserve(m);
  // Oldest-first merge order: deterministic and independent of k vs size.
  for (std::size_t i = catalog_.size() - m; i < catalog_.size(); ++i) {
    sel.push_back(&catalog_[i]);
  }
  return merge_entries(sel, drops_out);
}

std::unique_ptr<RhhhSpaceSaving> WindowArchive::merged_range(
    std::int64_t from_ns, std::int64_t to_ns, std::uint64_t* drops_out) const {
  std::vector<const Entry*> sel;
  for (const Entry& e : catalog_) {
    if (e.rec.wall_end_ns < from_ns || e.rec.wall_start_ns > to_ns) continue;
    sel.push_back(&e);
  }
  return merge_entries(sel, drops_out);
}

bool WindowArchive::Replay::next(ArchivedWindow& out) {
  if (pos_ >= archive_->windows()) return false;
  out = archive_->read(pos_++);
  return true;
}

std::size_t WindowArchive::compact(std::uint64_t retain_bytes) {
  if (writer_ != nullptr) fail("compact while a segment is open for writing");
  const std::uint64_t obs_t0 = m_compact_ns_ != nullptr ? obs::now_ns() : 0;
  // Repair pass: rewrite every torn segment as a sealed one (the valid
  // record prefix survives, the unreadable tail is dropped for good).
  for (std::size_t s = 0; s < seg_paths_.size(); ++s) {
    SegmentReader reader(seg_paths_[s]);
    if (reader.sealed()) continue;
    const std::string tmp = seg_paths_[s] + ".tmp";
    {
      // The rewrite keeps the original segment's run id: compaction repairs
      // the file, it does not re-author the data.
      SegmentWriter rw(tmp, cfg_.fsync_mode, reader.run_id());
      for (std::size_t i = 0; i < reader.records(); ++i) {
        const SegmentIndexEntry& rec = reader.index()[i];
        rw.append(reader.read(i), rec.epoch, rec.wall_start_ns, rec.wall_end_ns);
      }
      rw.seal();
    }
    std::error_code ec;
    fs::rename(tmp, seg_paths_[s], ec);
    if (ec) fail(seg_paths_[s] + ": cannot replace torn segment");
    seg_bytes_[s] = static_cast<std::uint64_t>(fs::file_size(seg_paths_[s]));
  }
  truncated_ = false;

  const std::size_t before = seg_paths_.size();
  if (retain_bytes > 0) apply_retention(retain_bytes);
  const std::size_t deleted = before - seg_paths_.size();
  if (m_compact_ns_ != nullptr) {
    const std::uint64_t now = obs::now_ns();
    const std::uint64_t dur = now >= obs_t0 ? now - obs_t0 : 0;
    m_compact_ns_->record(dur);
    m_trace_->record(obs::TraceEvent::kCompaction,
                     static_cast<std::int64_t>(now), deleted, dur);
    update_gauges();
  }
  return deleted;
}

}  // namespace rhhh::store
