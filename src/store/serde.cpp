#include "store/serde.hpp"

#include <array>
#include <bit>
#include <cstring>
#include <stdexcept>

namespace rhhh::store {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("store: " + what);
}

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    t[i] = c;
  }
  return t;
}

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> t = make_crc_table();
  return t;
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t len,
                    std::uint32_t seed) noexcept {
  const auto& t = crc_table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) c = t[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

void ByteWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

std::uint8_t ByteReader::u8() {
  if (remaining() < 1) fail("truncated record (u8 past end)");
  return data_[pos_++];
}

namespace {

/// Little-endian load: bulk copy on LE hosts, byte shifts elsewhere.
template <class T>
T load_le(const std::uint8_t* p) {
  if constexpr (std::endian::native == std::endian::little) {
    T v;
    std::memcpy(&v, p, sizeof(T));
    return v;
  } else {
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    }
    return static_cast<T>(v);
  }
}

}  // namespace

std::uint16_t ByteReader::u16() {
  if (remaining() < 2) fail("truncated record (u16 past end)");
  const std::uint16_t v = load_le<std::uint16_t>(data_ + pos_);
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  if (remaining() < 4) fail("truncated record (u32 past end)");
  const std::uint32_t v = load_le<std::uint32_t>(data_ + pos_);
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  if (remaining() < 8) fail("truncated record (u64 past end)");
  const std::uint64_t v = load_le<std::uint64_t>(data_ + pos_);
  pos_ += 8;
  return v;
}

double ByteReader::f64() { return std::bit_cast<double>(u64()); }

void ByteReader::skip(std::size_t n) {
  if (remaining() < n) fail("truncated record (skip past end)");
  pos_ += n;
}

namespace {

// Fixed-header layout (v1), after the leading `u32 version` and
// `u32 header_bytes` pair. header_bytes counts everything from the version
// word up to the first per-node roster, so a same-major reader can skip
// fields a later minor revision appends.
//
//   u8  hierarchy_kind   u8  mode   u16 reserved
//   u32 H    u32 V    u32 r    u32 reserved
//   f64 eps  f64 delta
//   u64 seed u64 backend_seed u64 counters_per_node
//   u64 epoch  i64 wall_start_ns  i64 wall_end_ns
//   u64 duration_ns  u64 drops  u64 stream_length  u64 updates
//
// Node rosters follow: H times { u32 entries, u32 reserved, u64 total,
// entries x (u64 key_hi, u64 key_lo, u64 count, u64 error) }.

constexpr std::uint8_t kMaxHierarchyKind =
    static_cast<std::uint8_t>(HierarchyKind::kIpv6Nibbles);
constexpr std::uint8_t kMaxLatticeMode =
    static_cast<std::uint8_t>(LatticeMode::kSampledMst);

void encode_header(ByteWriter& w, const WindowMeta& meta, HierarchyKind kind,
                   const RhhhSpaceSaving& lat) {
  w.u8(static_cast<std::uint8_t>(kind));
  w.u8(static_cast<std::uint8_t>(lat.mode()));
  w.u16(0);
  w.u32(lat.H());
  w.u32(lat.V());
  w.u32(lat.params().r);
  w.u32(0);
  w.f64(lat.params().eps);
  w.f64(lat.params().delta);
  w.u64(lat.params().seed);
  w.u64(lat.params().backend_seed);
  w.u64(lat.counters_per_node());
  w.u64(meta.epoch);
  w.i64(meta.wall_start_ns);
  w.i64(meta.wall_end_ns);
  w.u64(meta.duration_ns);
  w.u64(meta.drops);
  w.u64(meta.stream_length);
  w.u64(meta.updates);
}

WindowHeader read_header(ByteReader& r) {
  WindowHeader h;
  h.version = r.u32();
  if (h.version != kWindowFormatVersion) {
    fail("unsupported window format version " + std::to_string(h.version) +
         " (this build reads version " + std::to_string(kWindowFormatVersion) +
         ")");
  }
  const std::uint32_t header_bytes = r.u32();
  const std::size_t body_start = r.pos();

  const std::uint8_t kind = r.u8();
  if (kind > kMaxHierarchyKind) {
    fail("invalid hierarchy kind " + std::to_string(kind));
  }
  h.config.hierarchy = static_cast<HierarchyKind>(kind);
  const std::uint8_t mode = r.u8();
  if (mode > kMaxLatticeMode) fail("invalid lattice mode " + std::to_string(mode));
  h.config.mode = static_cast<LatticeMode>(mode);
  (void)r.u16();
  h.config.H = r.u32();
  h.config.params.V = r.u32();
  h.config.params.r = r.u32();
  (void)r.u32();
  h.config.params.eps = r.f64();
  h.config.params.delta = r.f64();
  h.config.params.seed = r.u64();
  h.config.params.backend_seed = r.u64();
  const std::uint64_t counters = r.u64();
  if (counters == 0 || counters > (1u << 30)) {
    fail("implausible counters-per-node " + std::to_string(counters));
  }
  h.config.params.counters_override = static_cast<std::size_t>(counters);
  h.meta.epoch = r.u64();
  h.meta.wall_start_ns = r.i64();
  h.meta.wall_end_ns = r.i64();
  h.meta.duration_ns = r.u64();
  h.meta.drops = r.u64();
  h.meta.stream_length = r.u64();
  h.meta.updates = r.u64();

  // Forward compatibility: a later same-major writer may have appended
  // fields; header_bytes delimits them. Shorter-than-written headers are
  // corrupt, not merely old.
  const std::size_t consumed = 8 + (r.pos() - body_start);
  if (header_bytes < consumed) fail("header shorter than the v1 fixed fields");
  r.skip(header_bytes - consumed);
  return h;
}

}  // namespace

Bytes encode_window(const WindowMeta& meta, HierarchyKind kind,
                    const RhhhSpaceSaving& w) {
  ByteWriter out;
  // One upfront reservation: 32 bytes per entry + 16 per node + the fixed
  // header. encode runs on the engine's rotation path, so no reallocs.
  std::size_t entries = 0;
  for (std::uint32_t d = 0; d < w.H(); ++d) entries += w.instance(d).size();
  out.reserve(160 + 16 * static_cast<std::size_t>(w.H()) + 32 * entries);
  out.u32(kWindowFormatVersion);
  out.u32(0);  // header_bytes backpatched below
  encode_header(out, meta, kind, w);
  // Backpatch the header length (version + length words included).
  out.patch_u32(4, static_cast<std::uint32_t>(out.size()));

  // Per-node Space-Saving rosters in counter-array order: reloading in the
  // same order reproduces the array layout, hence output()'s candidate
  // iteration order, byte for byte.
  for (std::uint32_t d = 0; d < w.H(); ++d) {
    const auto& inst = w.instance(d);
    out.u32(static_cast<std::uint32_t>(inst.size()));
    out.u32(0);
    out.u64(inst.total());
    inst.for_each([&](const Key128& k, std::uint64_t up, std::uint64_t lo) {
      out.u64(k.hi);
      out.u64(k.lo);
      out.u64(up);
      out.u64(up - lo);  // error
    });
  }
  return out.take();
}

WindowHeader decode_window_header(const std::uint8_t* data, std::size_t len) {
  ByteReader r(data, len);
  return read_header(r);
}

std::unique_ptr<RhhhSpaceSaving> decode_window(const std::uint8_t* data,
                                               std::size_t len, const Hierarchy& h,
                                               WindowMeta* meta_out,
                                               const HierarchyKind* expected_kind) {
  ByteReader r(data, len);
  const WindowHeader hdr = read_header(r);
  if (hdr.config.H != h.size()) {
    fail("hierarchy mismatch: record has H=" + std::to_string(hdr.config.H) +
         ", supplied hierarchy has H=" + std::to_string(h.size()));
  }
  // H alone cannot distinguish every kind (1D-bit IPv4 and nibble IPv6 are
  // both H=33): enforce the exact kind whenever the caller knows it.
  if (expected_kind != nullptr && hdr.config.hierarchy != *expected_kind) {
    fail("hierarchy mismatch: record is " +
         std::string(to_string(hdr.config.hierarchy)) + ", store expects " +
         std::string(to_string(*expected_kind)));
  }

  auto lat = std::make_unique<RhhhSpaceSaving>(h, hdr.config.mode, hdr.config.params);
  const std::size_t cap = lat->counters_per_node();
  std::vector<HhEntry<Key128>> entries;
  for (std::uint32_t d = 0; d < hdr.config.H; ++d) {
    const std::uint32_t n = r.u32();
    if (n > cap) {
      fail("node " + std::to_string(d) + " roster of " + std::to_string(n) +
           " entries exceeds capacity " + std::to_string(cap));
    }
    (void)r.u32();
    const std::uint64_t total = r.u64();
    entries.clear();
    entries.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      HhEntry<Key128> e;
      e.key.hi = r.u64();
      e.key.lo = r.u64();
      e.upper = r.u64();
      const std::uint64_t error = r.u64();
      if (e.upper == 0 || error > e.upper) {
        fail("node " + std::to_string(d) + " entry " + std::to_string(i) +
             " has impossible count/error");
      }
      e.lower = e.upper - error;
      entries.push_back(e);
    }
    lat->restore_node(d, entries, total);
  }
  if (r.remaining() != 0) fail("trailing bytes after the last node roster");
  lat->restore_stream(hdr.meta.stream_length, hdr.meta.updates);
  if (meta_out != nullptr) *meta_out = hdr.meta;
  return lat;
}

}  // namespace rhhh::store
