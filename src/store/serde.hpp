// Binary serialization of sealed HHH windows (the durable-store wire format).
//
// A *window record* is the self-contained byte image of one sealed,
// network-wide window: the merged lattice state (per-node Space-Saving
// rosters in counter-array order, so a reload reproduces output() and
// estimate() byte-for-byte), the construction parameters needed to rebuild
// a configuration-identical LatticeHhh, and the window metadata (epoch
// ordinal, wall-clock span, live duration, attributed drops). Records are
// what the segment log (store/segment.hpp) frames with length + CRC32.
//
// Format rules:
//   * endianness-stable: every integer is encoded little-endian by explicit
//     byte shifts (no memcpy of host-order words); doubles travel as their
//     IEEE-754 bit patterns.
//   * versioned: the record starts with a format version; decoders reject
//     versions they do not understand loudly (std::runtime_error), never by
//     guessing.
//   * forward-compatible header: the fixed header carries its own byte
//     length, so a v1 reader can skip over fields appended by a later
//     writer as long as the major version still matches.
//
// Corrupt input (truncation, impossible counts, entries exceeding the
// declared capacity) throws std::runtime_error from the decoder -- the
// store layer's contract is "fail loudly, never undefined behavior".
#pragma once

#include <bit>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/monitor.hpp"
#include "hhh/lattice_hhh.hpp"

namespace rhhh::store {

using Bytes = std::vector<std::uint8_t>;

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of `data`. `seed` chains
/// incremental computations (pass a previous return value).
[[nodiscard]] std::uint32_t crc32(const std::uint8_t* data, std::size_t len,
                                  std::uint32_t seed = 0) noexcept;
[[nodiscard]] inline std::uint32_t crc32(const Bytes& b) noexcept {
  return crc32(b.data(), b.size());
}

/// Little-endian append-only encoder over a growable byte buffer. On
/// little-endian hosts multi-byte appends are bulk copies (the encode path
/// runs on the engine's rotation path); big-endian hosts take the explicit
/// byte-shift route, so the wire format never depends on host order.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { append_le(&v, sizeof v); }
  void u32(std::uint32_t v) { append_le(&v, sizeof v); }
  void u64(std::uint64_t v) { append_le(&v, sizeof v); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);  ///< IEEE-754 bit pattern, little-endian
  /// Overwrite a previously written u32 (length backpatching).
  void patch_u32(std::size_t offset, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_[offset + static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v >> (8 * i));
    }
  }

  void reserve(std::size_t n) { buf_.reserve(n); }
  [[nodiscard]] const Bytes& bytes() const noexcept { return buf_; }
  [[nodiscard]] Bytes take() noexcept { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

 private:
  template <class T>
  void append_le(const T* v, std::size_t n) {
    if constexpr (std::endian::native == std::endian::little) {
      const auto* p = reinterpret_cast<const std::uint8_t*>(v);
      buf_.insert(buf_.end(), p, p + n);
    } else {
      auto u = static_cast<std::uint64_t>(*v);
      for (std::size_t i = 0; i < n; ++i) {
        buf_.push_back(static_cast<std::uint8_t>(u >> (8 * i)));
      }
    }
  }

  Bytes buf_;
};

/// Little-endian bounds-checked decoder; every read past the end throws
/// std::runtime_error (truncated input must never become UB).
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t len) : data_(data), len_(len) {}
  explicit ByteReader(std::span<const std::uint8_t> s)
      : data_(s.data()), len_(s.size()) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint16_t u16();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  [[nodiscard]] double f64();
  void skip(std::size_t n);

  [[nodiscard]] std::size_t pos() const noexcept { return pos_; }
  [[nodiscard]] std::size_t remaining() const noexcept { return len_ - pos_; }

 private:
  const std::uint8_t* data_;
  std::size_t len_;
  std::size_t pos_ = 0;
};

/// The wire format version this build writes (and the only major version it
/// reads). Bump on any incompatible layout change.
inline constexpr std::uint32_t kWindowFormatVersion = 1;

/// Per-window metadata persisted alongside the lattice state.
struct WindowMeta {
  std::uint64_t epoch = 0;         ///< 1-based window ordinal within its run
  std::int64_t wall_start_ns = 0;  ///< system_clock ns when the window opened
  std::int64_t wall_end_ns = 0;    ///< system_clock ns when it was sealed
  std::uint64_t duration_ns = 0;   ///< steady-clock live duration
  std::uint64_t drops = 0;         ///< drops attributed (folded into stream_length)
  std::uint64_t stream_length = 0; ///< N of the window, drops included
  std::uint64_t updates = 0;       ///< backend increments (introspection)
};

/// The lattice construction parameters stored with every record, enough to
/// rebuild a configuration-identical instance without out-of-band state.
struct StoredLatticeConfig {
  HierarchyKind hierarchy = HierarchyKind::kIpv4TwoDimBytes;
  LatticeMode mode = LatticeMode::kRhhh;
  std::uint32_t H = 0;  ///< lattice size, cross-checked against the hierarchy
  LatticeParams params; ///< V resolved, counters_override pinned to counters/node
};

/// Everything cheap to know about a record without rebuilding the lattice:
/// what segment indexing, `store_tool inspect` and time-range pruning read.
struct WindowHeader {
  std::uint32_t version = 0;
  StoredLatticeConfig config;
  WindowMeta meta;
};

/// Serializes one sealed window. `kind` names the hierarchy `w` was built
/// over (the declarative enum, so a cold reader can rebuild it).
[[nodiscard]] Bytes encode_window(const WindowMeta& meta, HierarchyKind kind,
                                  const RhhhSpaceSaving& w);

/// Decodes the fixed header only (version, config, metadata) -- no lattice
/// reconstruction. Throws std::runtime_error on truncation or version skew.
[[nodiscard]] WindowHeader decode_window_header(const std::uint8_t* data,
                                                std::size_t len);

/// Fully decodes a record into a fresh lattice over `h`, which must match
/// the stored hierarchy: the lattice sizes (H) must agree, and when
/// `expected_kind` is non-null the stored kind must equal it exactly --
/// pass it whenever the caller knows the store's kind, because distinct
/// kinds can share an H (kIpv4OneDimBits and kIpv6Nibbles are both H=33)
/// and must not silently decode into each other. Throws std::runtime_error
/// on any mismatch. The returned instance reproduces the serialized
/// window's output()/estimate() exactly. `meta_out`, if non-null, receives
/// the stored metadata.
[[nodiscard]] std::unique_ptr<RhhhSpaceSaving> decode_window(
    const std::uint8_t* data, std::size_t len, const Hierarchy& h,
    WindowMeta* meta_out = nullptr, const HierarchyKind* expected_kind = nullptr);

}  // namespace rhhh::store
