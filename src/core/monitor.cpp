#include "core/monitor.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace rhhh {

std::string_view to_string(HierarchyKind k) noexcept {
  switch (k) {
    case HierarchyKind::kIpv4OneDimBytes: return "1D-bytes";
    case HierarchyKind::kIpv4OneDimBits: return "1D-bits";
    case HierarchyKind::kIpv4TwoDimBytes: return "2D-bytes";
    case HierarchyKind::kIpv4TwoDimNibbles: return "2D-nibbles";
    case HierarchyKind::kIpv6Bytes: return "ipv6-bytes";
    case HierarchyKind::kIpv6Nibbles: return "ipv6-nibbles";
  }
  return "?";
}

std::string_view to_string(AlgorithmKind k) noexcept {
  switch (k) {
    case AlgorithmKind::kRhhh: return "RHHH";
    case AlgorithmKind::kTenRhhh: return "10-RHHH";
    case AlgorithmKind::kMst: return "MST";
    case AlgorithmKind::kSampledMst: return "Sampled-MST";
    case AlgorithmKind::kPartialAncestry: return "Partial-Ancestry";
    case AlgorithmKind::kFullAncestry: return "Full-Ancestry";
  }
  return "?";
}

Hierarchy make_hierarchy(HierarchyKind k) {
  switch (k) {
    case HierarchyKind::kIpv4OneDimBytes: return Hierarchy::ipv4_1d(Granularity::kByte);
    case HierarchyKind::kIpv4OneDimBits: return Hierarchy::ipv4_1d(Granularity::kBit);
    case HierarchyKind::kIpv4TwoDimBytes: return Hierarchy::ipv4_2d(Granularity::kByte);
    case HierarchyKind::kIpv4TwoDimNibbles:
      return Hierarchy::ipv4_2d(Granularity::kNibble);
    case HierarchyKind::kIpv6Bytes: return Hierarchy::ipv6_1d(Granularity::kByte);
    case HierarchyKind::kIpv6Nibbles: return Hierarchy::ipv6_1d(Granularity::kNibble);
  }
  throw std::invalid_argument("make_hierarchy: unknown kind");
}

std::string_view to_string(OverflowPolicy p) noexcept {
  switch (p) {
    case OverflowPolicy::kBlock: return "block";
    case OverflowPolicy::kDropTail: return "drop-tail";
  }
  return "?";
}

std::string_view to_string(FsyncMode m) noexcept {
  switch (m) {
    case FsyncMode::kNone: return "none";
    case FsyncMode::kPerRoll: return "per-roll";
    case FsyncMode::kPerRecord: return "per-record";
  }
  return "?";
}

std::pair<LatticeMode, LatticeParams> lattice_config_of(const Hierarchy& h,
                                                        const MonitorConfig& cfg) {
  LatticeParams lp;
  lp.eps = cfg.eps;
  lp.delta = cfg.delta;
  lp.V = cfg.V;
  lp.r = cfg.r;
  lp.seed = cfg.seed;
  switch (cfg.algorithm) {
    case AlgorithmKind::kRhhh:
      return {LatticeMode::kRhhh, lp};
    case AlgorithmKind::kTenRhhh:
      if (lp.V == 0) lp.V = 10 * static_cast<std::uint32_t>(h.size());
      return {LatticeMode::kRhhh, lp};
    case AlgorithmKind::kMst:
      return {LatticeMode::kMst, lp};
    case AlgorithmKind::kSampledMst:
      return {LatticeMode::kSampledMst, lp};
    case AlgorithmKind::kPartialAncestry:
    case AlgorithmKind::kFullAncestry:
      throw std::invalid_argument(
          "lattice_config_of: the ancestry tries are not lattice algorithms");
  }
  throw std::invalid_argument("lattice_config_of: unknown kind");
}

std::unique_ptr<HhhAlgorithm> make_algorithm(const Hierarchy& h,
                                             const MonitorConfig& cfg) {
  switch (cfg.algorithm) {
    case AlgorithmKind::kPartialAncestry:
      return std::make_unique<TrieHhh>(h, AncestryMode::kPartial, cfg.eps);
    case AlgorithmKind::kFullAncestry:
      return std::make_unique<TrieHhh>(h, AncestryMode::kFull, cfg.eps);
    default: {
      const auto [mode, lp] = lattice_config_of(h, cfg);
      return std::make_unique<RhhhSpaceSaving>(h, mode, lp);
    }
  }
}

HhhMonitor::HhhMonitor(MonitorConfig cfg)
    : cfg_(cfg),
      hierarchy_(std::make_unique<Hierarchy>(make_hierarchy(cfg.hierarchy))),
      alg_(make_algorithm(*hierarchy_, cfg)) {}

std::vector<std::string> HhhMonitor::report(double theta) const {
  HhhSet set = query(theta);
  std::vector<const HhhCandidate*> sorted;
  sorted.reserve(set.size());
  for (const HhhCandidate& c : set) sorted.push_back(&c);
  std::sort(sorted.begin(), sorted.end(),
            [](const HhhCandidate* a, const HhhCandidate* b) {
              return a->f_est > b->f_est;
            });
  std::vector<std::string> lines;
  lines.reserve(sorted.size());
  const double n = static_cast<double>(std::max<std::uint64_t>(packets(), 1));
  for (const HhhCandidate* c : sorted) {
    char buf[96];
    std::snprintf(buf, sizeof buf, "  f=[%.0f, %.0f] (%5.2f%%)  ", c->f_lo,
                  c->f_hi, 100.0 * c->f_est / n);
    lines.push_back(hierarchy_->format(c->prefix) + buf);
  }
  return lines;
}

}  // namespace rhhh
