#include "core/epoch_pair.hpp"

#include <algorithm>

namespace rhhh {

std::vector<EmergingPrefix> emerging_from(const HhhAlgorithm& now,
                                          const HhhAlgorithm* before, double theta,
                                          double growth_factor) {
  std::vector<EmergingPrefix> out;
  const std::uint64_t n_now = now.stream_length();
  if (n_now == 0) return out;
  const bool have_before = before != nullptr && before->stream_length() != 0;
  const double n_before =
      have_before ? static_cast<double>(before->stream_length()) : 1.0;

  for (const HhhCandidate& c : now.output(theta)) {
    const double share_now = c.f_est / static_cast<double>(n_now);
    double share_before = 0.0;
    if (have_before) {
      // Probe the sealed epoch's point estimate directly rather than its
      // HHH *set*: conditioned-frequency admission can exclude an ancestor
      // whose mass sat in admitted descendants, which would misreport a
      // steadily heavy aggregate as brand new. The estimate is at least
      // output()'s own f_hi for the prefix, so growth is understated
      // rather than inflated (the conservative direction for alarms) up to
      // each algorithm's estimation guarantee.
      share_before =
          std::min(before->estimate(c.prefix) / n_before, 1.0);
    }
    if (share_before <= 0.0 || share_now / share_before >= growth_factor) {
      out.push_back(EmergingPrefix{c, share_before, share_now});
    }
  }
  return out;
}

}  // namespace rhhh
