#include "core/windowed.hpp"

#include <stdexcept>

namespace rhhh {

WindowedHhhMonitor::WindowedHhhMonitor(MonitorConfig cfg, std::uint64_t epoch_packets,
                                       std::size_t history_depth)
    : cfg_(cfg),
      epoch_packets_(epoch_packets),
      hierarchy_(std::make_unique<Hierarchy>(make_hierarchy(cfg.hierarchy))) {
  if (epoch_packets == 0) {
    throw std::invalid_argument("WindowedHhhMonitor: epoch_packets must be > 0");
  }
  if (history_depth == 0) {
    throw std::invalid_argument("WindowedHhhMonitor: history_depth must be >= 1");
  }
  // One instance per ring slot with independent randomness; slot 0 keeps
  // the config's own seed so depth 1 reproduces the classic live/sealed
  // pair byte for byte.
  ring_ = WindowRing<HhhAlgorithm>(history_depth, [&](std::size_t slot) {
    MonitorConfig slot_cfg = cfg_;
    slot_cfg.seed = cfg_.seed + slot;
    return make_algorithm(*hierarchy_, slot_cfg);
  });
}

void WindowedHhhMonitor::maybe_rotate() {
  if (ring_.live().stream_length() < epoch_packets_) return;
  ring_.rotate();
}

void WindowedHhhMonitor::update(const PacketRecord& p) {
  ring_.live().update(hierarchy_->key_of(p));
  maybe_rotate();
}

void WindowedHhhMonitor::update(Ipv4 src, Ipv4 dst) {
  ring_.live().update(hierarchy_->dims() == 2 ? Key128::from_pair(src, dst)
                                              : Key128::from_u32(src));
  maybe_rotate();
}

void WindowedHhhMonitor::update(Key128 key) {
  ring_.live().update(key);
  maybe_rotate();
}

void WindowedHhhMonitor::update_batch(const Key128* keys, std::size_t n) {
  while (n != 0) {
    // Cap each chunk at the packets left in the live epoch, so the rotation
    // fires on exactly the packet the per-packet path would rotate on.
    const std::uint64_t live_n = ring_.live().stream_length();
    if (live_n >= epoch_packets_) {  // defensive: never loop on a full epoch
      maybe_rotate();
      continue;
    }
    const std::uint64_t room = epoch_packets_ - live_n;
    const std::size_t take =
        n < room ? n : static_cast<std::size_t>(room);
    ring_.live().update_batch(keys, take);
    maybe_rotate();
    keys += take;
    n -= take;
  }
}

HhhSet WindowedHhhMonitor::current(double theta) const {
  return ring_.live().output(theta);
}

HhhSet WindowedHhhMonitor::previous(double theta) const {
  const HhhAlgorithm* sealed = ring_.sealed_or_null();
  if (sealed == nullptr) return HhhSet(hierarchy_->size());
  return sealed->output(theta);
}

std::vector<EmergingPrefix> WindowedHhhMonitor::emerging(double theta,
                                                         double growth_factor) const {
  return emerging_from(ring_.live(), ring_.sealed_or_null(), theta, growth_factor);
}

std::vector<TrendPoint> WindowedHhhMonitor::trend(const Prefix& p) const {
  return trend_of(windows_oldest_first(), p);
}

std::vector<SustainedPrefix> WindowedHhhMonitor::emerging_sustained(
    double theta, double growth_factor, std::uint32_t min_epochs,
    double alpha) const {
  return emerging_sustained_from(windows_oldest_first(), theta, growth_factor,
                                 min_epochs, alpha);
}

}  // namespace rhhh
