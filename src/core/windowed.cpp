#include "core/windowed.hpp"

#include <stdexcept>
#include <utility>

namespace rhhh {

WindowedHhhMonitor::WindowedHhhMonitor(MonitorConfig cfg, std::uint64_t epoch_packets)
    : cfg_(cfg),
      epoch_packets_(epoch_packets),
      hierarchy_(std::make_unique<Hierarchy>(make_hierarchy(cfg.hierarchy))) {
  if (epoch_packets == 0) {
    throw std::invalid_argument("WindowedHhhMonitor: epoch_packets must be > 0");
  }
  current_ = make_algorithm(*hierarchy_, cfg_);
  MonitorConfig prev_cfg = cfg_;
  prev_cfg.seed = cfg_.seed + 1;  // independent randomness per instance
  previous_ = make_algorithm(*hierarchy_, prev_cfg);
}

void WindowedHhhMonitor::maybe_rotate() {
  if (current_->stream_length() < epoch_packets_) return;
  std::swap(current_, previous_);
  current_->clear();
  ++epochs_;
}

void WindowedHhhMonitor::update(const PacketRecord& p) {
  current_->update(hierarchy_->key_of(p));
  maybe_rotate();
}

void WindowedHhhMonitor::update(Ipv4 src, Ipv4 dst) {
  current_->update(hierarchy_->dims() == 2 ? Key128::from_pair(src, dst)
                                           : Key128::from_u32(src));
  maybe_rotate();
}

HhhSet WindowedHhhMonitor::current(double theta) const {
  return current_->output(theta);
}

HhhSet WindowedHhhMonitor::previous(double theta) const {
  if (epochs_ == 0) return HhhSet(hierarchy_->size());
  return previous_->output(theta);
}

std::vector<EmergingPrefix> WindowedHhhMonitor::emerging(double theta,
                                                         double growth_factor) const {
  std::vector<EmergingPrefix> out;
  const std::uint64_t n_now = current_->stream_length();
  if (n_now == 0) return out;
  const HhhSet now = current_->output(theta);
  // The previous epoch is queried at a *lower* threshold so that a prefix
  // that was merely warm before (below theta but measurable) still gets a
  // meaningful previous-share instead of "absent".
  const HhhSet before = previous(theta / growth_factor);
  const auto n_before =
      static_cast<double>(epochs_ == 0 ? 1 : previous_->stream_length());

  for (const HhhCandidate& c : now) {
    const double share_now = c.f_est / static_cast<double>(n_now);
    double share_before = 0.0;
    if (const HhhCandidate* b = before.find(c.prefix)) {
      share_before = b->f_est / n_before;
    }
    if (share_before <= 0.0 || share_now / share_before >= growth_factor) {
      out.push_back(EmergingPrefix{c, share_before, share_now});
    }
  }
  return out;
}

}  // namespace rhhh
