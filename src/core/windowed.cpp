#include "core/windowed.hpp"

#include <stdexcept>

namespace rhhh {

WindowedHhhMonitor::WindowedHhhMonitor(MonitorConfig cfg, std::uint64_t epoch_packets)
    : cfg_(cfg),
      epoch_packets_(epoch_packets),
      hierarchy_(std::make_unique<Hierarchy>(make_hierarchy(cfg.hierarchy))) {
  if (epoch_packets == 0) {
    throw std::invalid_argument("WindowedHhhMonitor: epoch_packets must be > 0");
  }
  MonitorConfig prev_cfg = cfg_;
  prev_cfg.seed = cfg_.seed + 1;  // independent randomness per instance
  pair_ = EpochPair<HhhAlgorithm>(make_algorithm(*hierarchy_, cfg_),
                                  make_algorithm(*hierarchy_, prev_cfg));
}

void WindowedHhhMonitor::maybe_rotate() {
  if (pair_.live().stream_length() < epoch_packets_) return;
  pair_.rotate();
}

void WindowedHhhMonitor::update(const PacketRecord& p) {
  pair_.live().update(hierarchy_->key_of(p));
  maybe_rotate();
}

void WindowedHhhMonitor::update(Ipv4 src, Ipv4 dst) {
  pair_.live().update(hierarchy_->dims() == 2 ? Key128::from_pair(src, dst)
                                              : Key128::from_u32(src));
  maybe_rotate();
}

HhhSet WindowedHhhMonitor::current(double theta) const {
  return pair_.live().output(theta);
}

HhhSet WindowedHhhMonitor::previous(double theta) const {
  const HhhAlgorithm* sealed = pair_.sealed_or_null();
  if (sealed == nullptr) return HhhSet(hierarchy_->size());
  return sealed->output(theta);
}

std::vector<EmergingPrefix> WindowedHhhMonitor::emerging(double theta,
                                                         double growth_factor) const {
  return emerging_from(pair_.live(), pair_.sealed_or_null(), theta, growth_factor);
}

}  // namespace rhhh
