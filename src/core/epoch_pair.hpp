// Epoch rotation primitives shared by the single-threaded
// WindowedHhhMonitor (core/windowed.hpp) and the sharded engine's windowed
// snapshot path (engine/engine.hpp): a live/sealed pair of
// same-configuration HHH instances that swap at epoch boundaries, plus the
// emerging-aggregate comparison between the two epochs.
//
// The paper's algorithms are interval-oblivious; pairing two instances and
// rotating is the standard deployment pattern for change detection (the
// DDoS motivation of Section 1). Keeping the rotation and the growth math
// in one place means the monitor and the multi-core engine report the same
// "emerging" semantics.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "hhh/hhh_types.hpp"

namespace rhhh {

/// A prefix that is heavy now and grew (or appeared) since the last epoch.
struct EmergingPrefix {
  HhhCandidate now;       ///< the candidate in the current epoch
  double previous_share;  ///< its share in the previous epoch (0 if absent)
  double share_now;       ///< estimated share in the current epoch
  /// Share growth vs the previous epoch; a prefix with no previous-epoch
  /// mass is explicitly infinite growth (it is brand new), never a huge
  /// finite ratio against a denominator sentinel.
  [[nodiscard]] double growth() const noexcept {
    return previous_share <= 0.0 ? std::numeric_limits<double>::infinity()
                                 : share_now / previous_share;
  }
};

/// A live/sealed pair of epoch instances. `Alg` is any type with `clear()`
/// (HhhAlgorithm for the monitor, LatticeHhh for the engine shards). The
/// pair starts with zero completed epochs: `sealed_or_null()` is nullptr
/// until the first rotate() so "no previous epoch" is distinguishable from
/// "an empty previous epoch".
template <class Alg>
class EpochPair {
 public:
  EpochPair() = default;
  EpochPair(std::unique_ptr<Alg> live, std::unique_ptr<Alg> sealed)
      : live_(std::move(live)), sealed_(std::move(sealed)) {}

  /// Seal the live epoch and start a fresh one: swap the instances and
  /// clear the new live one. O(counters) for the clear, no allocation.
  void rotate() {
    std::swap(live_, sealed_);
    live_->clear();
    ++epochs_;
  }

  [[nodiscard]] Alg& live() noexcept { return *live_; }
  [[nodiscard]] const Alg& live() const noexcept { return *live_; }
  [[nodiscard]] Alg& sealed() noexcept { return *sealed_; }
  [[nodiscard]] const Alg& sealed() const noexcept { return *sealed_; }
  /// The sealed instance, or nullptr before the first rotation.
  [[nodiscard]] const Alg* sealed_or_null() const noexcept {
    return epochs_ == 0 ? nullptr : sealed_.get();
  }
  /// Completed (sealed) epochs so far.
  [[nodiscard]] std::uint64_t epochs_completed() const noexcept { return epochs_; }

 private:
  std::unique_ptr<Alg> live_;
  std::unique_ptr<Alg> sealed_;
  std::uint64_t epochs_ = 0;
};

/// Prefixes that are HHH in `now` (at threshold theta) and whose share of
/// the stream grew by >= growth_factor since `before` (nullptr or an empty
/// instance: every current HHH is emerging with infinite growth). The
/// previous epoch is probed through HhhAlgorithm::estimate -- a direct
/// per-prefix upper bound -- not through its HHH set, so an aggregate that
/// was heavy before but conditioned out of the previous set still gets its
/// true previous share. Shares are estimates relative to each epoch's own
/// stream length; previous shares are upper bounds (growth is understated,
/// the conservative direction for alarms).
[[nodiscard]] std::vector<EmergingPrefix> emerging_from(const HhhAlgorithm& now,
                                                        const HhhAlgorithm* before,
                                                        double theta,
                                                        double growth_factor);

}  // namespace rhhh
