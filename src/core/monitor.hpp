// HhhMonitor: the library's front door. Picks a hierarchy and an HHH
// algorithm from a declarative config, consumes packets, and answers HHH
// queries -- the API the examples and downstream users work against.
//
//   MonitorConfig cfg;
//   cfg.hierarchy = HierarchyKind::kIpv4TwoDimBytes;
//   cfg.algorithm = AlgorithmKind::kRhhh;
//   HhhMonitor mon(cfg);
//   for (const PacketRecord& p : trace) mon.update(p);
//   for (const HhhCandidate& c : mon.query(0.01)) ...
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "engine/shard_router.hpp"
#include "hhh/lattice_hhh.hpp"
#include "hhh/trie_hhh.hpp"

namespace rhhh {

namespace obs {
class MetricsRegistry;  // obs/metrics.hpp (forward-declared: core/ stays
                        // free of the telemetry layer's <mutex> includes)
}  // namespace obs

enum class HierarchyKind : std::uint8_t {
  kIpv4OneDimBytes,   // H = 5
  kIpv4OneDimBits,    // H = 33
  kIpv4TwoDimBytes,   // H = 25
  kIpv4TwoDimNibbles, // H = 81
  kIpv6Bytes,         // H = 17
  kIpv6Nibbles,       // H = 33
};

enum class AlgorithmKind : std::uint8_t {
  kRhhh,         // the paper's contribution, V = H unless overridden
  kTenRhhh,      // V = 10H ("10-RHHH")
  kMst,          // deterministic baseline [35]
  kSampledMst,   // Section 1 strawman
  kPartialAncestry,
  kFullAncestry,
};

[[nodiscard]] std::string_view to_string(HierarchyKind k) noexcept;
[[nodiscard]] std::string_view to_string(AlgorithmKind k) noexcept;

struct MonitorConfig {
  HierarchyKind hierarchy = HierarchyKind::kIpv4TwoDimBytes;
  AlgorithmKind algorithm = AlgorithmKind::kRhhh;
  double eps = 1e-3;
  double delta = 1e-3;
  std::uint32_t V = 0;  ///< explicit V for the randomized lattice modes
  std::uint32_t r = 1;  ///< RHHH multi-update factor (Corollary 6.8)
  std::uint64_t seed = 1;
};

/// Builds the hierarchy for a kind (factory shared with benches/tests).
[[nodiscard]] Hierarchy make_hierarchy(HierarchyKind k);

/// Builds a standalone algorithm over an existing hierarchy.
[[nodiscard]] std::unique_ptr<HhhAlgorithm> make_algorithm(const Hierarchy& h,
                                                           const MonitorConfig& cfg);

/// Resolves the lattice portion of a MonitorConfig: mode plus LatticeParams
/// with kTenRhhh's V = 10H applied. Throws std::invalid_argument for the
/// trie-based algorithms (they are neither lattice-configured nor
/// mergeable). Shared by make_algorithm and the engine factory.
[[nodiscard]] std::pair<LatticeMode, LatticeParams> lattice_config_of(
    const Hierarchy& h, const MonitorConfig& cfg);

// -- sharded multi-core ingest (src/engine/) ---------------------------------

/// What a full producer→worker ring does with the overflow.
enum class OverflowPolicy : std::uint8_t {
  kBlock,     ///< spin until space frees up: lossless, counted as backpressure
  kDropTail,  ///< drop the unpushable batch tail: the saturated-port semantics
};

[[nodiscard]] std::string_view to_string(OverflowPolicy p) noexcept;

/// How eagerly the segment writer pushes appended windows to stable
/// storage. Every mode still fflush()es per record (a concurrent reader's
/// scan path only ever sees completed frames); fsync is about what survives
/// power loss, not about torn frames.
enum class FsyncMode : std::uint8_t {
  kNone,       ///< OS page cache only: fastest; a crash may lose recent windows
  kPerRoll,    ///< fsync when a segment seals (roll/close): bounded loss window
  kPerRecord,  ///< fsync after every appended window: maximum durability
};

[[nodiscard]] std::string_view to_string(FsyncMode m) noexcept;

/// Durable window store settings (src/store/): where and how sealed windows
/// are persisted. Used by the engine's background archiver (see
/// EngineConfig::archive) and by WindowArchive::open_write directly. An
/// empty `dir` disables archiving entirely.
struct ArchiveConfig {
  std::string dir;  ///< store directory (created on demand); empty = off
  /// Roll to a new segment file once the current one reaches this many
  /// bytes (records are never split across segments). 0 = never roll by
  /// size (one segment per engine run).
  std::uint64_t segment_bytes = 8ull << 20;
  /// >0: also roll once the current segment's first window is this old
  /// (wall-clock seconds) -- bounds how much history one torn segment can
  /// cost after a crash.
  std::uint32_t segment_seconds = 0;
  /// >0: after each roll, delete the oldest sealed segments while the
  /// store exceeds this many bytes (retention-by-bytes compaction; the
  /// segment being written is never deleted). 0 = keep everything.
  std::uint64_t retain_bytes = 0;
  /// Bounded depth of the rotation -> archiver queue. A full queue drops
  /// the sealed window (counted in EngineStats::archive_queue_drops)
  /// rather than ever blocking a rotation on I/O.
  std::size_t queue_windows = 8;
  /// Durability cadence for the segment writer (all I/O stays on the
  /// archiver thread, so even kPerRecord never stalls a rotation).
  FsyncMode fsync_mode = FsyncMode::kNone;

  // -- telemetry (src/obs/) -------------------------------------------------
  /// When true, a writable archive registers store metrics (append/fsync/
  /// compaction latency, bytes written, segment gauges) against `metrics`
  /// (the process-global registry when null) and records roll/compaction
  /// events into the global TraceRing. Read-only archives never register.
  bool telemetry = true;
  obs::MetricsRegistry* metrics = nullptr;

  [[nodiscard]] bool enabled() const noexcept { return !dir.empty(); }
};

/// Estimator health layer settings (src/obs/health.hpp): per-window
/// accuracy certificates plus the stall watchdog. Only active when
/// EngineConfig::telemetry is on -- with telemetry off every health hook is
/// the same single null test as the rest of the layer.
struct HealthConfig {
  /// When true, each rotation probes the just-sealed shard lattices and
  /// stamps an AccuracyCertificate (exported as rhhh_health_* gauges and
  /// served by the exporter's /health route). Probe cost is O(nodes x
  /// counters) per rotation -- control plane only, never the packet path.
  bool certificates = true;
  /// Certificates retained for /health and the flight recorder.
  std::size_t keep = 16;
  /// >0: run a StallWatchdog thread sampling engine progress this often.
  /// 0 (default) disables the watchdog.
  std::uint32_t watchdog_millis = 0;
  /// Flight-recorder dump file written when the watchdog detects a stall
  /// (TraceRing contents + last K certificates + EngineStats). Empty = keep
  /// the dump in memory only (StallWatchdog::last_dump()).
  std::string dump_path;

  [[nodiscard]] bool watchdog_enabled() const noexcept {
    return watchdog_millis > 0;
  }
};

/// Configuration of the sharded multi-core ingest engine: a MonitorConfig
/// restricted to the (mergeable) lattice algorithms, plus the fan-out
/// topology. See HhhEngine (engine/engine.hpp) for the moving parts and
/// README "Architecture" for when to choose HhhMonitor vs HhhEngine.
struct EngineConfig {
  MonitorConfig monitor{};            ///< hierarchy + lattice parameters
  std::uint32_t workers = 4;          ///< W shard (consumer) threads
  std::uint32_t producers = 1;        ///< M ingest handles / threads
  std::size_t ring_capacity = 1 << 14;  ///< slots per producer×worker ring
  std::size_t batch = 64;             ///< producer-side flush batch size
  ShardPolicy policy = ShardPolicy::kKeyHash;
  OverflowPolicy overflow = OverflowPolicy::kBlock;

  // -- windowed change detection (HhhEngine::window_snapshot) ---------------
  /// >0: a window epoch closes once this many records have been CONSUMED
  /// into shard lattices since the last boundary. The budget basis is
  /// consumed-only by contract: drop-tail drops are attributed to the
  /// window they fell in (they fold into its stream length N) but do NOT
  /// spend the budget, so a saturated ring can never silently shorten
  /// windows relative to the traffic that actually reached the lattices.
  /// 0 disables the packet budget.
  std::uint64_t epoch_packets = 0;
  /// >0: a window epoch closes every this many wall-clock milliseconds.
  /// 0 disables the wall budget. Either budget (or manual
  /// HhhEngine::rotate_epoch() calls) drives the same rotation.
  std::uint32_t epoch_millis = 0;
  /// When true (default), workers meter the epoch budget at batch
  /// boundaries and the one that sees it spent elects itself rotator (one
  /// CAS on an epoch-due token) and drives the rotation -- boundary drift
  /// is bounded by one worker batch. The coordinator clock thread is then
  /// only a fallback for idle streams. When false, rotation reverts to the
  /// clock thread's 200us polling timeslice (the pre-cooperative baseline;
  /// kept as an escape hatch and for drift A/B measurement).
  bool cooperative_rotation = true;
  /// Sealed windows each shard retains (>= 1). 1 is the classic
  /// live/previous pair; larger K unlocks HhhEngine::trend_snapshot()'s
  /// k-epoch growth curves and sustained-ramp alarms at the cost of K
  /// extra lattices per shard.
  std::size_t history_depth = 1;

  // -- durable window store (src/store/, HhhEngine background archiver) -----
  /// When enabled (non-empty dir), every sealed window is merged
  /// network-wide at rotation, handed to a background archiver thread
  /// through a bounded queue, and appended to the on-disk segment log --
  /// rotation never blocks on I/O. Requires a window clock or manual
  /// rotate_epoch() calls to produce sealed windows at all.
  ArchiveConfig archive{};

  // -- always-on telemetry (src/obs/) ---------------------------------------
  /// When true (the default -- the layer costs <3% update throughput, see
  /// bench/ablation_obs_overhead), the engine registers latency histograms
  /// (push/pop batch, quiesce, rotation, snapshot/trend merge), occupancy
  /// and queue-depth gauges, and EngineStats counter mirrors against
  /// `metrics` (the process-global registry when null), and records
  /// rotation/quiesce/seal/archive events into the global TraceRing.
  /// `false` is the uninstrumented baseline the overhead ablation measures
  /// against. With several engines sharing one registry, per-instance
  /// gauges are last-writer-wins; pass a private registry for isolation.
  bool telemetry = true;
  obs::MetricsRegistry* metrics = nullptr;

  /// Estimator-side health: accuracy certificates at rotation and the
  /// optional stall watchdog. Gated behind `telemetry` like the rest of
  /// the layer.
  HealthConfig health{};
};

class HhhEngine;  // engine/engine.hpp

/// Builds a sharded engine from the front-door config (defined in
/// engine/engine.cpp). Throws std::invalid_argument for trie algorithms or
/// a degenerate topology (0 workers/producers/batch).
[[nodiscard]] std::unique_ptr<HhhEngine> make_engine(const EngineConfig& cfg);

class HhhMonitor {
 public:
  explicit HhhMonitor(MonitorConfig cfg = {});

  /// Per-packet update. IPv4-based hierarchies only (use the algorithm
  /// directly with Key128 keys for IPv6 streams).
  void update(const PacketRecord& p) { alg_->update(hierarchy_->key_of(p)); }
  void update(Ipv4 src, Ipv4 dst) {
    alg_->update(hierarchy_->dims() == 2 ? Key128::from_pair(src, dst)
                                         : Key128::from_u32(src));
  }

  /// The approximate HHH set at threshold theta.
  [[nodiscard]] HhhSet query(double theta) const { return alg_->output(theta); }

  /// Human-readable report lines, one per HHH, sorted by estimate.
  [[nodiscard]] std::vector<std::string> report(double theta) const;

  [[nodiscard]] std::uint64_t packets() const noexcept {
    return alg_->stream_length();
  }
  /// Convergence bound (Theorem 6.17); the guarantees hold once
  /// packets() > psi().
  [[nodiscard]] double psi() const noexcept { return alg_->psi(); }
  [[nodiscard]] bool converged() const noexcept {
    // Deterministic algorithms (psi == 0) carry their guarantees at any N.
    return psi() == 0.0 || static_cast<double>(packets()) > psi();
  }
  void clear() { alg_->clear(); }

  [[nodiscard]] const Hierarchy& hierarchy() const noexcept { return *hierarchy_; }
  [[nodiscard]] HhhAlgorithm& algorithm() noexcept { return *alg_; }
  [[nodiscard]] const HhhAlgorithm& algorithm() const noexcept { return *alg_; }
  [[nodiscard]] const MonitorConfig& config() const noexcept { return cfg_; }

 private:
  MonitorConfig cfg_;
  std::unique_ptr<Hierarchy> hierarchy_;
  std::unique_ptr<HhhAlgorithm> alg_;
};

}  // namespace rhhh
