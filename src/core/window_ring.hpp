// Epoch-window rotation primitives shared by the single-threaded
// WindowedHhhMonitor (core/windowed.hpp) and the sharded engine's windowed
// snapshot paths (engine/engine.hpp): a ring of one live plus K sealed
// same-configuration HHH instances that rotates at epoch boundaries, plus
// the change-detection queries over those windows -- the two-epoch
// emerging comparison and the K-epoch trend / sustained-growth queries.
//
// The paper's algorithms are interval-oblivious; rotating a ring of
// instances is the standard deployment pattern for change detection over
// mergeable summaries (the DDoS motivation of Section 1; cf. the
// mergeable-summaries line of work, Agarwal et al.). Keeping the rotation
// and the growth math in one place means the monitor and the multi-core
// engine report identical "emerging" and "sustained" semantics.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "hhh/hhh_types.hpp"

namespace rhhh {

/// A prefix that is heavy now and grew (or appeared) since the last epoch.
struct EmergingPrefix {
  HhhCandidate now;       ///< the candidate in the current epoch
  double previous_share;  ///< its share in the previous epoch (0 if absent)
  double share_now;       ///< estimated share in the current epoch
  /// Share growth vs the previous epoch; a prefix with no previous-epoch
  /// mass is explicitly infinite growth (it is brand new), never a huge
  /// finite ratio against a denominator sentinel.
  [[nodiscard]] double growth() const noexcept {
    return previous_share <= 0.0 ? std::numeric_limits<double>::infinity()
                                 : share_now / previous_share;
  }
};

/// One epoch's view of a prefix inside a trend query.
struct TrendPoint {
  std::uint64_t stream_length = 0;  ///< packets this window observed
  double estimate = 0.0;            ///< f-hat for the prefix in this window
  double share = 0.0;               ///< estimate / stream_length (0 if empty)
};

/// A prefix that is heavy now and has stayed above its EWMA baseline for a
/// whole run of consecutive epochs -- the sustained-ramp alarm that a
/// one-epoch blip cannot trip.
struct SustainedPrefix {
  HhhCandidate now;            ///< the candidate in the current epoch
  double baseline_share = 0.0; ///< EWMA share over the pre-run epochs
  double share_now = 0.0;      ///< estimated share in the current epoch
  double min_run_share = 0.0;  ///< smallest share across the sustained run
  /// The persistence bar this alarm cleared: the `min_epochs` the query was
  /// asked to verify (NOT the full length of the ramp, which may be longer).
  std::uint32_t run_epochs = 0;
  /// Growth of the current share vs the EWMA baseline; infinite when the
  /// baseline epochs carried no mass (the aggregate is brand new).
  [[nodiscard]] double growth() const noexcept {
    return baseline_share <= 0.0 ? std::numeric_limits<double>::infinity()
                                 : share_now / baseline_share;
  }
};

/// A ring of one live window plus up to K sealed windows. `Alg` is any type
/// with `clear()` (HhhAlgorithm for the monitor, LatticeHhh for the engine
/// shards). The ring starts with zero completed epochs: sealed windows only
/// exist after rotations, so "no previous epoch" stays distinguishable from
/// "an empty previous epoch". Depth 1 reproduces the original live/sealed
/// pair behavior exactly (same instances, same clear points).
template <class Alg>
class WindowRing {
 public:
  WindowRing() = default;

  /// Takes ownership of `slots` (depth + 1 same-configuration instances,
  /// all non-null). Slot 0 starts live; rotation advances through slots in
  /// index order, so deterministic constructions stay reproducible.
  explicit WindowRing(std::vector<std::unique_ptr<Alg>> slots)
      : slots_(std::move(slots)) {}

  /// Builds depth + 1 instances via `make(slot_index)`.
  template <class Factory>
  WindowRing(std::size_t depth, Factory&& make) {
    slots_.reserve(depth + 1);
    for (std::size_t s = 0; s <= depth; ++s) slots_.push_back(make(s));
  }

  /// Seal the live window and start a fresh one: the live instance becomes
  /// the newest sealed window and the oldest slot is cleared for reuse.
  /// O(counters) for the clear, no allocation.
  void rotate() {
    live_ = (live_ + 1) % slots_.size();
    slots_[live_]->clear();
    ++epochs_;
  }

  /// K: how many sealed windows the ring can hold.
  [[nodiscard]] std::size_t depth() const noexcept { return slots_.size() - 1; }
  /// Sealed windows currently populated: min(epochs_completed, depth).
  [[nodiscard]] std::size_t sealed_count() const noexcept {
    return epochs_ < depth() ? static_cast<std::size_t>(epochs_) : depth();
  }

  /// The live window instance. This is also the ring's batched ingest entry
  /// point: feed whole record batches through live().update_batch(...) (the
  /// HhhAlgorithm contract guarantees state byte-identical to per-record
  /// update() calls); callers owning a rotation budget -- the windowed
  /// monitor, the engine workers -- split batches at their own epoch
  /// boundaries before the call.
  [[nodiscard]] Alg& live() noexcept { return *slots_[live_]; }
  [[nodiscard]] const Alg& live() const noexcept { return *slots_[live_]; }

  /// Sealed window by age: sealed(0) is the most recently sealed epoch,
  /// sealed(sealed_count() - 1) the oldest retained one.
  [[nodiscard]] Alg& sealed(std::size_t age) noexcept {
    return *slots_[slot_of_sealed(age)];
  }
  [[nodiscard]] const Alg& sealed(std::size_t age) const noexcept {
    return *slots_[slot_of_sealed(age)];
  }
  /// The most recently sealed window, or nullptr before the first rotation.
  [[nodiscard]] const Alg* sealed_or_null() const noexcept {
    return epochs_ == 0 ? nullptr : &sealed(0);
  }

  /// Completed (sealed) epochs so far -- counts all rotations, not just the
  /// windows still retained in the ring.
  [[nodiscard]] std::uint64_t epochs_completed() const noexcept { return epochs_; }

  /// The populated windows ordered oldest sealed -> ... -> newest sealed ->
  /// live (always ends with the live window).
  [[nodiscard]] std::vector<const Alg*> windows_oldest_first() const {
    std::vector<const Alg*> out;
    const std::size_t m = sealed_count();
    out.reserve(m + 1);
    for (std::size_t age = m; age-- > 0;) out.push_back(&sealed(age));
    out.push_back(&live());
    return out;
  }

 private:
  [[nodiscard]] std::size_t slot_of_sealed(std::size_t age) const noexcept {
    const std::size_t n = slots_.size();
    return (live_ + n - 1 - age) % n;
  }

  std::vector<std::unique_ptr<Alg>> slots_;
  std::size_t live_ = 0;
  std::uint64_t epochs_ = 0;
};

/// Prefixes that are HHH in `now` (at threshold theta) and whose share of
/// the stream grew by >= growth_factor since `before` (nullptr or an empty
/// instance: every current HHH is emerging with infinite growth). The
/// previous epoch is probed through HhhAlgorithm::estimate -- a direct
/// per-prefix upper bound -- not through its HHH set, so an aggregate that
/// was heavy before but conditioned out of the previous set still gets its
/// true previous share. Shares are estimates relative to each epoch's own
/// stream length; previous shares are upper bounds (growth is understated,
/// the conservative direction for alarms).
[[nodiscard]] std::vector<EmergingPrefix> emerging_from(const HhhAlgorithm& now,
                                                        const HhhAlgorithm* before,
                                                        double theta,
                                                        double growth_factor);

/// The prefix's share curve across `windows` (ordered oldest -> newest, the
/// last entry being the live window; entries must be non-null). Each point
/// probes that window's per-prefix estimate, so off-HHH-set aggregates are
/// tracked too. Returned in the same oldest -> newest order.
[[nodiscard]] std::vector<TrendPoint> trend_of(
    const std::vector<const HhhAlgorithm*>& windows, const Prefix& p);

/// Sustained-growth detection over a window ring (ordered oldest -> newest,
/// live window last): prefixes that are HHH in the live window (threshold
/// theta) AND whose share has stayed >= growth_factor times an EWMA
/// baseline for `min_epochs` consecutive windows ending at the live one.
/// The baseline is the exponentially weighted moving average (smoothing
/// `alpha`, weight of the newer epoch) of the prefix's share over the
/// windows *preceding* the run, so a stable heavy hitter never alarms and a
/// single-epoch blip fails the persistence requirement. A prefix with a
/// zero baseline (brand new) alarms iff it carried mass in every run
/// window. Returns empty when fewer than min_epochs + 1 windows exist (not
/// enough history to tell a blip from a ramp -- the conservative
/// direction). min_epochs must be >= 1 (throws std::invalid_argument), and
/// alpha must be in (0, 1].
[[nodiscard]] std::vector<SustainedPrefix> emerging_sustained_from(
    const std::vector<const HhhAlgorithm*>& windows, double theta,
    double growth_factor, std::uint32_t min_epochs, double alpha = 0.5);

/// Duration-weighted variant for wall-clock rotation: `durations_ns` runs
/// parallel to `windows` (same oldest -> newest order) and gives each
/// window's wall-clock length. The EWMA baseline then treats a window of
/// duration d as d / d_ref consecutive reference-length windows -- its
/// effective smoothing is 1 - (1 - alpha)^(d / d_ref), with d_ref the mean
/// duration of the baseline (pre-run) windows -- so a brief idle window
/// nudges the baseline proportionally to the time it actually covers
/// instead of counting as a full epoch of silence (which would drag a
/// stable heavy hitter's baseline toward zero and fire spurious "ramp"
/// alarms). Zero-duration windows contribute nothing. Equal durations
/// reduce this exactly to the unweighted overload. Run-window persistence
/// (min share vs the baseline bar) is unchanged: every run window must
/// clear it regardless of length. Throws std::invalid_argument when sizes
/// differ or on the unweighted overload's parameter violations.
[[nodiscard]] std::vector<SustainedPrefix> emerging_sustained_from(
    const std::vector<const HhhAlgorithm*>& windows,
    const std::vector<std::uint64_t>& durations_ns, double theta,
    double growth_factor, std::uint32_t min_epochs, double alpha = 0.5);

}  // namespace rhhh
