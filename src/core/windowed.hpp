// WindowedHhhMonitor: epoch-rotating HHH monitoring with change detection.
//
// Anomaly detection (the paper's DDoS motivation, Section 1) needs *change*,
// not lifetime totals: a /16 that always carries 10% of traffic is
// backbone weather; one that jumps from 0.5% to 10% inside an epoch is an
// event. This monitor keeps two same-configuration HHH instances -- the
// live epoch and the sealed previous epoch (core/epoch_pair.hpp) -- rotates
// them every `epoch_packets` updates, and reports "emerging" aggregates:
// prefixes heavy now whose share grew by at least `growth_factor` since the
// last epoch. For the same semantics at multi-core scale, see the engine's
// windowed snapshot path (engine/engine.hpp, rotate_epoch /
// window_snapshot).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/epoch_pair.hpp"
#include "core/monitor.hpp"

namespace rhhh {

class WindowedHhhMonitor {
 public:
  /// `epoch_packets` updates per epoch. The config's eps should be chosen
  /// so that psi fits inside one epoch (psi <= epoch_packets), otherwise
  /// early-epoch queries over-report; query `converged_epoch()` to check.
  WindowedHhhMonitor(MonitorConfig cfg, std::uint64_t epoch_packets);

  void update(const PacketRecord& p);
  void update(Ipv4 src, Ipv4 dst);

  /// HHH set of the current (partial) epoch.
  [[nodiscard]] HhhSet current(double theta) const;
  /// HHH set of the last completed epoch; empty before the first rotation.
  [[nodiscard]] HhhSet previous(double theta) const;

  /// Prefixes that are HHH now and grew by >= growth_factor vs the previous
  /// epoch (new prefixes count as infinite growth). Shares are estimates
  /// relative to each epoch's packet count.
  [[nodiscard]] std::vector<EmergingPrefix> emerging(double theta,
                                                     double growth_factor) const;

  [[nodiscard]] std::uint64_t epochs_completed() const noexcept {
    return pair_.epochs_completed();
  }
  [[nodiscard]] std::uint64_t epoch_packets() const noexcept { return epoch_packets_; }
  [[nodiscard]] std::uint64_t packets_in_epoch() const noexcept {
    return pair_.live().stream_length();
  }
  [[nodiscard]] bool converged_epoch() const noexcept {
    return pair_.live().psi() == 0.0 ||
           static_cast<double>(epoch_packets_) > pair_.live().psi();
  }
  [[nodiscard]] const Hierarchy& hierarchy() const noexcept { return *hierarchy_; }

 private:
  void maybe_rotate();

  MonitorConfig cfg_;
  std::uint64_t epoch_packets_;
  std::unique_ptr<Hierarchy> hierarchy_;
  EpochPair<HhhAlgorithm> pair_;
};

}  // namespace rhhh
