// WindowedHhhMonitor: epoch-rotating HHH monitoring with change detection.
//
// Anomaly detection (the paper's DDoS motivation, Section 1) needs *change*,
// not lifetime totals: a /16 that always carries 10% of traffic is
// backbone weather; one that jumps from 0.5% to 10% inside an epoch is an
// event. This monitor keeps a ring of same-configuration HHH instances --
// the live epoch plus up to `history_depth` sealed epochs
// (core/window_ring.hpp) -- rotates every `epoch_packets` updates, and
// answers three change queries:
//
//   * emerging()           -- prefixes heavy now whose share grew by at
//                             least `growth_factor` vs the last epoch.
//   * trend(prefix)        -- the prefix's per-epoch share curve across the
//                             retained windows (k-epoch growth curves).
//   * emerging_sustained() -- prefixes heavy now whose share stayed above
//                             an EWMA baseline for `min_epochs` consecutive
//                             epochs: a sustained ramp alarms, a one-epoch
//                             blip does not.
//
// For the same semantics at multi-core scale, see the engine's windowed
// snapshot paths (engine/engine.hpp, rotate_epoch / window_snapshot /
// trend_snapshot).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/monitor.hpp"
#include "core/window_ring.hpp"

namespace rhhh {

class WindowedHhhMonitor {
 public:
  /// `epoch_packets` updates per epoch; the ring retains `history_depth`
  /// sealed epochs (>= 1; 1 reproduces the classic live/previous pair).
  /// The config's eps should be chosen so that psi fits inside one epoch
  /// (psi <= epoch_packets), otherwise early-epoch queries over-report;
  /// query `converged_epoch()` to check.
  WindowedHhhMonitor(MonitorConfig cfg, std::uint64_t epoch_packets,
                     std::size_t history_depth = 1);

  void update(const PacketRecord& p);
  void update(Ipv4 src, Ipv4 dst);
  /// Direct fully-specified-key ingest (the engine producers' currency);
  /// lets one key stream drive the monitor and the engine identically.
  void update(Key128 key);
  /// Batched ingest: equivalent to n update(keys[i]) calls, byte for byte.
  /// Batches are split internally at epoch boundaries, so a rotation lands
  /// on exactly the same packet as the per-packet path -- batch sizing
  /// never shifts a window edge. Feeds WindowRing::live() through
  /// HhhAlgorithm::update_batch (the staged LatticeHhh pipeline).
  void update_batch(const Key128* keys, std::size_t n);

  /// HHH set of the current (partial) epoch.
  [[nodiscard]] HhhSet current(double theta) const;
  /// HHH set of the last completed epoch; empty before the first rotation.
  [[nodiscard]] HhhSet previous(double theta) const;

  /// Prefixes that are HHH now and grew by >= growth_factor vs the previous
  /// epoch (new prefixes count as infinite growth). Shares are estimates
  /// relative to each epoch's packet count.
  [[nodiscard]] std::vector<EmergingPrefix> emerging(double theta,
                                                     double growth_factor) const;

  /// The prefix's share across every retained window, ordered oldest sealed
  /// epoch -> ... -> newest sealed epoch -> live (partial) epoch. Size is
  /// sealed_windows() + 1.
  [[nodiscard]] std::vector<TrendPoint> trend(const Prefix& p) const;

  /// EWMA-baseline sustained-growth alarms (see emerging_sustained_from in
  /// core/window_ring.hpp): prefixes heavy now whose share held at
  /// >= growth_factor x the baseline for `min_epochs` consecutive epochs
  /// ending at the live one. Needs history_depth >= min_epochs and at least
  /// min_epochs completed rotations; returns empty until then.
  [[nodiscard]] std::vector<SustainedPrefix> emerging_sustained(
      double theta, double growth_factor, std::uint32_t min_epochs,
      double alpha = 0.5) const;

  [[nodiscard]] std::uint64_t epochs_completed() const noexcept {
    return ring_.epochs_completed();
  }
  [[nodiscard]] std::uint64_t epoch_packets() const noexcept { return epoch_packets_; }
  /// K: sealed epochs the ring retains.
  [[nodiscard]] std::size_t history_depth() const noexcept { return ring_.depth(); }
  /// Sealed epochs currently populated (saturates at history_depth()).
  [[nodiscard]] std::size_t sealed_windows() const noexcept {
    return ring_.sealed_count();
  }
  [[nodiscard]] std::uint64_t packets_in_epoch() const noexcept {
    return ring_.live().stream_length();
  }
  [[nodiscard]] bool converged_epoch() const noexcept {
    return ring_.live().psi() == 0.0 ||
           static_cast<double>(epoch_packets_) > ring_.live().psi();
  }
  [[nodiscard]] const Hierarchy& hierarchy() const noexcept { return *hierarchy_; }

 private:
  void maybe_rotate();
  [[nodiscard]] std::vector<const HhhAlgorithm*> windows_oldest_first() const {
    return ring_.windows_oldest_first();
  }

  MonitorConfig cfg_;
  std::uint64_t epoch_packets_;
  std::unique_ptr<Hierarchy> hierarchy_;
  WindowRing<HhhAlgorithm> ring_;
};

}  // namespace rhhh
