#include "core/window_ring.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rhhh {

namespace {

/// Upper-bound share of prefix p in one window (0 for an empty window),
/// clamped to 1: estimates can exceed the window length by slack terms.
double share_in(const HhhAlgorithm& w, const Prefix& p) {
  const std::uint64_t n = w.stream_length();
  if (n == 0) return 0.0;
  return std::min(w.estimate(p) / static_cast<double>(n), 1.0);
}

}  // namespace

std::vector<EmergingPrefix> emerging_from(const HhhAlgorithm& now,
                                          const HhhAlgorithm* before, double theta,
                                          double growth_factor) {
  std::vector<EmergingPrefix> out;
  const std::uint64_t n_now = now.stream_length();
  if (n_now == 0) return out;
  const bool have_before = before != nullptr && before->stream_length() != 0;

  for (const HhhCandidate& c : now.output(theta)) {
    const double share_now = c.f_est / static_cast<double>(n_now);
    double share_before = 0.0;
    if (have_before) {
      // Probe the sealed epoch's point estimate directly rather than its
      // HHH *set*: conditioned-frequency admission can exclude an ancestor
      // whose mass sat in admitted descendants, which would misreport a
      // steadily heavy aggregate as brand new. The estimate is at least
      // output()'s own f_hi for the prefix, so growth is understated
      // rather than inflated (the conservative direction for alarms) up to
      // each algorithm's estimation guarantee.
      share_before = share_in(*before, c.prefix);
    }
    if (share_before <= 0.0 || share_now / share_before >= growth_factor) {
      out.push_back(EmergingPrefix{c, share_before, share_now});
    }
  }
  return out;
}

std::vector<TrendPoint> trend_of(const std::vector<const HhhAlgorithm*>& windows,
                                 const Prefix& p) {
  std::vector<TrendPoint> out;
  out.reserve(windows.size());
  for (const HhhAlgorithm* w : windows) {
    TrendPoint t;
    t.stream_length = w->stream_length();
    t.estimate = t.stream_length == 0 ? 0.0 : w->estimate(p);
    t.share = share_in(*w, p);
    out.push_back(t);
  }
  return out;
}

namespace {

/// Shared body of the two emerging_sustained_from overloads: validates the
/// parameters, walks the live window's HHH set and applies the persistence
/// rule; `baseline_of(prefix, run_begin)` supplies the (plain or
/// duration-weighted) EWMA baseline.
template <class BaselineFn>
std::vector<SustainedPrefix> sustained_impl(
    const std::vector<const HhhAlgorithm*>& windows, double theta,
    double growth_factor, std::uint32_t min_epochs, double alpha,
    BaselineFn&& baseline_of) {
  if (min_epochs == 0) {
    throw std::invalid_argument("emerging_sustained_from: min_epochs must be >= 1");
  }
  if (!(alpha > 0.0) || alpha > 1.0) {
    throw std::invalid_argument("emerging_sustained_from: alpha must be in (0,1]");
  }
  std::vector<SustainedPrefix> out;
  // The run is the last min_epochs windows (live included); at least one
  // older window must remain to form the baseline, or a ramp is
  // indistinguishable from "the stream just started" -- report nothing.
  if (windows.size() < static_cast<std::size_t>(min_epochs) + 1) return out;
  const HhhAlgorithm& live = *windows.back();
  const std::uint64_t n_live = live.stream_length();
  if (n_live == 0) return out;
  const std::size_t run_begin = windows.size() - min_epochs;

  for (const HhhCandidate& c : live.output(theta)) {
    const double baseline = baseline_of(c.prefix, run_begin);
    const double share_now = c.f_est / static_cast<double>(n_live);
    double min_run = share_now;
    for (std::size_t i = run_begin; i + 1 < windows.size(); ++i) {
      min_run = std::min(min_run, share_in(*windows[i], c.prefix));
    }

    // Persistence: every run window must clear the growth bar (or, for a
    // brand-new aggregate with zero baseline, carry any mass at all). A
    // one-epoch blip leaves at least one quiet run window behind and fails.
    const bool sustained = baseline <= 0.0
                               ? min_run > 0.0
                               : min_run >= growth_factor * baseline;
    if (sustained) {
      SustainedPrefix s;
      s.now = c;
      s.baseline_share = baseline;
      s.share_now = share_now;
      s.min_run_share = min_run;
      s.run_epochs = min_epochs;
      out.push_back(s);
    }
  }
  return out;
}

}  // namespace

std::vector<SustainedPrefix> emerging_sustained_from(
    const std::vector<const HhhAlgorithm*>& windows, double theta,
    double growth_factor, std::uint32_t min_epochs, double alpha) {
  return sustained_impl(
      windows, theta, growth_factor, min_epochs, alpha,
      [&](const Prefix& p, std::size_t run_begin) {
        // EWMA baseline over the pre-run windows, oldest first, so recent
        // baseline epochs weigh more. Empty windows contribute a zero
        // share (no traffic is a legitimate quiet baseline).
        double baseline = share_in(*windows[0], p);
        for (std::size_t i = 1; i < run_begin; ++i) {
          baseline = alpha * share_in(*windows[i], p) + (1.0 - alpha) * baseline;
        }
        return baseline;
      });
}

std::vector<SustainedPrefix> emerging_sustained_from(
    const std::vector<const HhhAlgorithm*>& windows,
    const std::vector<std::uint64_t>& durations_ns, double theta,
    double growth_factor, std::uint32_t min_epochs, double alpha) {
  if (durations_ns.size() != windows.size()) {
    throw std::invalid_argument(
        "emerging_sustained_from: durations must parallel windows");
  }
  return sustained_impl(
      windows, theta, growth_factor, min_epochs, alpha,
      [&](const Prefix& p, std::size_t run_begin) {
        // Reference length: the mean positive duration of the baseline
        // windows, so the weighting is self-normalizing (equal durations
        // reduce to the plain overload exactly).
        double dsum = 0.0;
        std::size_t dcount = 0;
        for (std::size_t i = 0; i < run_begin; ++i) {
          if (durations_ns[i] > 0) {
            dsum += static_cast<double>(durations_ns[i]);
            ++dcount;
          }
        }
        if (dcount == 0) return 0.0;  // no timed baseline: brand-new semantics
        const double d_ref = dsum / static_cast<double>(dcount);

        double baseline = 0.0;
        bool seeded = false;
        for (std::size_t i = 0; i < run_begin; ++i) {
          if (durations_ns[i] == 0) continue;  // weightless: covers no time
          const double share = share_in(*windows[i], p);
          if (!seeded) {
            baseline = share;
            seeded = true;
            continue;
          }
          // A window of duration d acts as d / d_ref consecutive
          // reference-length epochs of the same share: folding the EWMA
          // that many times gives weight 1 - (1 - alpha)^(d / d_ref).
          const double a_eff =
              1.0 - std::pow(1.0 - alpha,
                             static_cast<double>(durations_ns[i]) / d_ref);
          baseline = a_eff * share + (1.0 - a_eff) * baseline;
        }
        return baseline;
      });
}

}  // namespace rhhh
