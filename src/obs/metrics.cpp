#include "obs/metrics.hpp"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <stdexcept>
#include <utility>
#include <vector>

namespace rhhh::obs {

namespace {

// `family` or `family{...}` with family matching
// [a-zA-Z_:][a-zA-Z0-9_:]* -- the Prometheus metric-name grammar, with the
// label block accepted opaquely (rendering just splices it back).
bool valid_name(const std::string& name) {
  if (name.empty()) return false;
  std::size_t i = 0;
  const auto family_char = [](char c, bool first) {
    const bool alpha = (std::isalpha(static_cast<unsigned char>(c)) != 0);
    const bool digit = (std::isdigit(static_cast<unsigned char>(c)) != 0);
    return alpha || c == '_' || c == ':' || (!first && digit);
  };
  if (!family_char(name[0], /*first=*/true)) return false;
  for (i = 1; i < name.size() && name[i] != '{'; ++i) {
    if (!family_char(name[i], /*first=*/false)) return false;
  }
  if (i == name.size()) return true;  // bare family
  return name.back() == '}' && i + 1 < name.size();
}

std::string family_of(const std::string& name) {
  const std::size_t brace = name.find('{');
  return brace == std::string::npos ? name : name.substr(0, brace);
}

// "" for a bare family, the inner `k="v",...` text otherwise.
std::string labels_of(const std::string& name) {
  const std::size_t brace = name.find('{');
  if (brace == std::string::npos) return {};
  return name.substr(brace + 1, name.size() - brace - 2);
}

// family + optional suffix + merged label block (existing labels plus an
// optional extra `k="v"` pair), Prometheus-style.
std::string series(const std::string& family, const std::string& suffix,
                   const std::string& labels, const std::string& extra) {
  std::string out = family + suffix;
  if (labels.empty() && extra.empty()) return out;
  out += '{';
  out += labels;
  if (!labels.empty() && !extra.empty()) out += ',';
  out += extra;
  out += '}';
  return out;
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

constexpr double kQuantiles[] = {0.5, 0.9, 0.99, 1.0};

}  // namespace

LogHistogram Histogram::snapshot() const {
  LogHistogram out;
  for (const Slot& s : slots_) {
    // order: relaxed -- statistic-only fold; tearing between a shard's
    // buckets/count/sum just means a near-consistent cut, which scrape
    // semantics accept. Sum is folded separately (n=0) because per-bucket
    // totals aren't tracked, only the shard-wide sum.
    for (int b = 0; b < LogHistogram::kBuckets; ++b) {
      const std::uint64_t n =
          s.buckets[static_cast<std::size_t>(b)].load(std::memory_order_relaxed);
      if (n != 0) out.add_bucketed(b, n, 0);
    }
    // order: relaxed -- same statistic-only fold as above.
    out.add_bucketed(0, 0, s.sum.load(std::memory_order_relaxed));
  }
  return out;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry g;
  return g;
}

MetricsRegistry::Metric& MetricsRegistry::intern(const std::string& name,
                                                 Kind kind,
                                                 const std::string& help) {
  if (!valid_name(name)) {
    throw std::invalid_argument("obs: invalid metric name '" + name + "'");
  }
  std::unique_ptr<Metric>& slot = metrics_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Metric>();
    slot->kind = kind;
    slot->help = help;
    switch (kind) {
      case Kind::kCounter: slot->counter.reset(new Counter()); break;
      case Kind::kGauge: slot->gauge.reset(new Gauge()); break;
      case Kind::kHistogram: slot->histogram.reset(new Histogram()); break;
      case Kind::kGaugeFn: break;  // caller installs fn
    }
  } else if (slot->kind != kind) {
    throw std::invalid_argument("obs: metric '" + name +
                                "' re-registered with a different kind");
  }
  return *slot;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help) {
  const std::lock_guard<std::mutex> lk(mu_);
  return *intern(name, Kind::kCounter, help).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& help) {
  const std::lock_guard<std::mutex> lk(mu_);
  return *intern(name, Kind::kGauge, help).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help) {
  const std::lock_guard<std::mutex> lk(mu_);
  return *intern(name, Kind::kHistogram, help).histogram;
}

void MetricsRegistry::gauge_fn(const std::string& name,
                               std::function<double()> fn,
                               const std::string& help) {
  if (!fn) throw std::invalid_argument("obs: gauge_fn '" + name + "' is empty");
  const std::lock_guard<std::mutex> lk(mu_);
  Metric& m = intern(name, Kind::kGaugeFn, help);
  m.fn = std::move(fn);  // last writer wins (documented)
}

bool MetricsRegistry::unregister(const std::string& name) {
  const std::lock_guard<std::mutex> lk(mu_);
  return metrics_.erase(name) != 0;
}

std::size_t MetricsRegistry::size() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return metrics_.size();
}

bool MetricsRegistry::has(const std::string& name) const {
  const std::lock_guard<std::mutex> lk(mu_);
  return metrics_.count(name) != 0;
}

double MetricsRegistry::value(const std::string& name) const {
  const std::lock_guard<std::mutex> lk(mu_);
  const auto it = metrics_.find(name);
  if (it == metrics_.end()) return 0.0;
  const Metric& m = *it->second;
  switch (m.kind) {
    case Kind::kCounter: return static_cast<double>(m.counter->value());
    case Kind::kGauge: return static_cast<double>(m.gauge->value());
    case Kind::kGaugeFn: return m.fn ? m.fn() : 0.0;
    case Kind::kHistogram: return static_cast<double>(m.histogram->count());
  }
  return 0.0;
}

std::string MetricsRegistry::render_prometheus() const {
  const std::lock_guard<std::mutex> lk(mu_);
  std::string out;
  out.reserve(4096);
  std::string typed_family;  // map is sorted: one TYPE block per family run
  for (const auto& [name, m] : metrics_) {
    const std::string family = family_of(name);
    const std::string labels = labels_of(name);
    if (family != typed_family) {
      typed_family = family;
      if (!m->help.empty()) {
        out += "# HELP " + family + " " + m->help + "\n";
      }
      const char* type = "gauge";
      if (m->kind == Kind::kCounter) type = "counter";
      if (m->kind == Kind::kHistogram) type = "summary";
      out += "# TYPE " + family + " " + type + "\n";
    }
    switch (m->kind) {
      case Kind::kCounter:
        out += series(family, "", labels, "") + " " +
               std::to_string(m->counter->value()) + "\n";
        break;
      case Kind::kGauge:
        out += series(family, "", labels, "") + " " +
               std::to_string(m->gauge->value()) + "\n";
        break;
      case Kind::kGaugeFn:
        out += series(family, "", labels, "") + " " +
               fmt_double(m->fn ? m->fn() : 0.0) + "\n";
        break;
      case Kind::kHistogram: {
        const LogHistogram h = m->histogram->snapshot();
        for (const double q : kQuantiles) {
          out += series(family, "", labels,
                        "quantile=\"" + fmt_double(q) + "\"") +
                 " " + std::to_string(h.quantile(q)) + "\n";
        }
        out += series(family, "_sum", labels, "") + " " +
               fmt_double(h.mean() * static_cast<double>(h.count())) + "\n";
        out += series(family, "_count", labels, "") + " " +
               std::to_string(h.count()) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::render_json() const {
  const std::lock_guard<std::mutex> lk(mu_);
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const auto& [name, m] : metrics_) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"" + json_escape(name) + "\",";
    if (!m->help.empty()) out += "\"help\":\"" + json_escape(m->help) + "\",";
    switch (m->kind) {
      case Kind::kCounter:
        out += "\"kind\":\"counter\",\"value\":" +
               std::to_string(m->counter->value());
        break;
      case Kind::kGauge:
        out += "\"kind\":\"gauge\",\"value\":" +
               std::to_string(m->gauge->value());
        break;
      case Kind::kGaugeFn:
        out += "\"kind\":\"gauge\",\"value\":" + fmt_double(m->fn ? m->fn() : 0.0);
        break;
      case Kind::kHistogram: {
        const LogHistogram h = m->histogram->snapshot();
        out += "\"kind\":\"histogram\",\"count\":" + std::to_string(h.count()) +
               ",\"sum\":" + fmt_double(h.mean() * static_cast<double>(h.count())) +
               ",\"min\":" + std::to_string(h.min()) +
               ",\"max\":" + std::to_string(h.max()) + ",\"quantiles\":{";
        bool qfirst = true;
        for (const double q : kQuantiles) {
          if (!qfirst) out += ',';
          qfirst = false;
          // Appends, not `"literal" + std::string`: GCC 12 -Wrestrict
          // false positive (PR105329) fires on the latter at -O3.
          out += '"';
          out += fmt_double(q);
          out += "\":";
          out += std::to_string(h.quantile(q));
        }
        out += "}";
        break;
      }
    }
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace rhhh::obs
