#include "obs/exporter.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_ring.hpp"

namespace rhhh::obs {

namespace {

constexpr int kAcceptPollMs = 100;        // stop() latency bound
constexpr int kRequestPollMs = 500;       // per-request read patience
constexpr std::size_t kMaxHead = 16 * 1024;  // read_request()'s cap

std::string status_line(int code) {
  switch (code) {
    case 200: return "HTTP/1.0 200 OK\r\n";
    case 400: return "HTTP/1.0 400 Bad Request\r\n";
    case 404: return "HTTP/1.0 404 Not Found\r\n";
    case 405: return "HTTP/1.0 405 Method Not Allowed\r\n";
    case 414: return "HTTP/1.0 414 URI Too Long\r\n";
    default: return "HTTP/1.0 500 Internal Server Error\r\n";
  }
}

void respond(int fd, int code, const std::string& content_type,
             const std::string& body) {
  std::string out = status_line(code);
  out += "Content-Type: " + content_type + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  detail::send_all(fd, out);
}

/// "GET <path> HTTP/1.x" -> {0, path}; anything else -> a 4xx code and "".
/// A head that hit read_request()'s size cap without a terminator is 414,
/// a recognizable non-GET method is 405, everything unparseable is 400.
struct ParsedRequest {
  int error = 0;
  std::string path;
};

ParsedRequest parse_request(const std::string& req) {
  if (req.size() >= kMaxHead && req.find("\r\n\r\n") == std::string::npos) {
    return {414, {}};
  }
  const std::size_t m = req.find(' ');
  if (m == std::string::npos || m == 0) return {400, {}};
  const std::size_t sp = req.find(' ', m + 1);
  if (sp == std::string::npos || sp == m + 1) return {400, {}};
  if (req.compare(0, m, "GET") != 0) return {405, {}};
  return {0, req.substr(m + 1, sp - m - 1)};
}

/// Split "<route>?<query>" -- routes never contain '?', so everything past
/// the first one is the query string.
void split_query(const std::string& path, std::string& route,
                 std::string& query) {
  const std::size_t q = path.find('?');
  route = path.substr(0, q);
  query = q == std::string::npos ? std::string{} : path.substr(q + 1);
}

/// The numeric value of `key` in an "a=1&b=2" query string, or `fallback`
/// when absent/non-numeric.
std::uint64_t query_u64(const std::string& query, const std::string& key,
                        std::uint64_t fallback) {
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::size_t eq = query.find('=', pos);
    if (eq != std::string::npos && eq < amp &&
        query.compare(pos, eq - pos, key) == 0 && eq + 1 < amp) {
      std::uint64_t v = 0;
      bool numeric = true;
      for (std::size_t i = eq + 1; i < amp; ++i) {
        const char c = query[i];
        if (c < '0' || c > '9') {
          numeric = false;
          break;
        }
        v = v * 10 + static_cast<std::uint64_t>(c - '0');
      }
      if (numeric) return v;
    }
    pos = amp + 1;
  }
  return fallback;
}

std::string trace_json(const TraceRing& ring, std::uint64_t limit) {
  std::vector<TraceRecord> recs = ring.dump();
  if (limit < recs.size()) {
    // dump() is oldest-first; ?n= keeps the newest n.
    recs.erase(recs.begin(),
               recs.end() - static_cast<std::ptrdiff_t>(limit));
  }
  std::string out = "{\"recorded\":" + std::to_string(ring.recorded()) +
                    ",\"capacity\":" + std::to_string(ring.capacity()) +
                    ",\"events\":[";
  bool first = true;
  for (const TraceRecord& r : recs) {
    if (!first) out += ',';
    first = false;
    out += "{\"seq\":" + std::to_string(r.seq) +
           ",\"ts_ns\":" + std::to_string(r.ts_ns) + ",\"event\":\"" +
           to_string(r.event) + "\",\"arg0\":" + std::to_string(r.arg0) +
           ",\"arg1\":" + std::to_string(r.arg1) + "}";
  }
  out += "]}";
  return out;
}

}  // namespace

namespace detail {

void send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;  // signal, not a dead client
    if (n <= 0) return;  // client went away; nothing to recover
    off += static_cast<std::size_t>(n);
  }
}

/// Read until the header terminator (one request per connection; bodies are
/// ignored -- every route is a GET).
std::string read_request(int fd) {
  std::string req;
  char buf[2048];
  struct pollfd pfd = {fd, POLLIN, 0};
  while (req.size() < 16 * 1024 && req.find("\r\n\r\n") == std::string::npos) {
    const int rc = ::poll(&pfd, 1, kRequestPollMs);
    if (rc < 0 && errno == EINTR) continue;  // signal, not a timeout
    if (rc <= 0) break;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    req.append(buf, static_cast<std::size_t>(n));
  }
  return req;
}

}  // namespace detail

MetricsExporter::MetricsExporter(MetricsRegistry& reg, TraceRing* trace)
    : reg_(&reg), trace_(trace) {}

MetricsExporter::~MetricsExporter() { stop(); }

void MetricsExporter::start(std::uint16_t port) {
  // order: relaxed -- start/stop are caller-serialized; the flag only
  // signals the serving thread and running() observers.
  if (running_.load(std::memory_order_relaxed)) return;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("obs: socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error(std::string("obs: bind/listen failed: ") +
                             std::strerror(err));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);

  listen_fd_ = fd;
  // order: relaxed -- published before the thread is constructed; the
  // std::thread launch itself is the synchronization point.
  port_.store(ntohs(addr.sin_port), std::memory_order_relaxed);
  running_.store(true, std::memory_order_relaxed);
  thread_ = std::thread([this] { serve_loop(); });
}

void MetricsExporter::stop() {
  // order: relaxed -- the serving thread re-checks this between polls; the
  // join below is the real synchronization.
  if (!running_.exchange(false, std::memory_order_relaxed)) return;
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // order: relaxed -- observational reset.
  port_.store(0, std::memory_order_relaxed);
}

void MetricsExporter::serve_loop() {
  struct pollfd pfd = {listen_fd_, POLLIN, 0};
  // order: relaxed -- loop condition; stop() joins, so a stale true costs
  // at most one extra poll timeout.
  while (running_.load(std::memory_order_relaxed)) {
    const int rc = ::poll(&pfd, 1, kAcceptPollMs);
    if (rc <= 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    const ParsedRequest parsed = parse_request(detail::read_request(client));
    // order: relaxed -- a statistic.
    scrapes_.fetch_add(1, std::memory_order_relaxed);
    // order: acquire -- pairs with set_health_source()'s release store.
    const HealthLedger* health = health_.load(std::memory_order_acquire);
    std::string route;
    std::string query;
    split_query(parsed.path, route, query);
    if (parsed.error != 0) {
      respond(client, parsed.error, "text/plain", "bad request\n");
    } else if (route == "/metrics") {
      respond(client, 200, "text/plain; version=0.0.4",
              reg_->render_prometheus());
    } else if (route == "/metrics.json") {
      respond(client, 200, "application/json", reg_->render_json());
    } else if (route == "/trace" && trace_ != nullptr) {
      respond(client, 200, "application/json",
              trace_json(*trace_, query_u64(query, "n", ~std::uint64_t{0})));
    } else if (route == "/health" && health != nullptr) {
      respond(client, 200, "application/json", health->render_json());
    } else if (route == "/healthz") {
      respond(client, 200, "text/plain", "ok\n");
    } else {
      respond(client, 404, "text/plain", "not found\n");
    }
    ::close(client);
  }
}

std::string http_get_local(std::uint16_t port, const std::string& path,
                           int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  const std::string req = "GET " + path + " HTTP/1.0\r\nHost: localhost\r\n\r\n";
  detail::send_all(fd, req);
  std::string resp;
  char buf[4096];
  struct pollfd pfd = {fd, POLLIN, 0};
  while (true) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0 && errno == EINTR) continue;  // signal, not a timeout
    if (rc <= 0) break;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    resp.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return resp;
}

}  // namespace rhhh::obs
