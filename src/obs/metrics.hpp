// Always-on telemetry: a process-wide registry of named counters, gauges
// and log-scale latency histograms, cheap enough to record on the packet
// path (a relaxed atomic add into a per-thread-sharded slot) and aggregated
// only at scrape time (render_prometheus / render_json, or the TCP exporter
// in obs/exporter.hpp).
//
// Hot-path contract: Counter::add, Gauge::set/add and Histogram::record are
// wait-free, allocation-free and lock-free; the registry mutex is touched
// only on (idempotent) registration and on scrape. Instruments are owned by
// their registry and never move, so call sites cache the reference once and
// record through it forever. `gauge_fn` samplers run under the registry
// mutex during a scrape -- they must be lock-free reads of atomics (all
// in-tree samplers are) or they can deadlock a scrape against control ops.
//
// src/obs/ is NOT a hot-path-lint directory: headers here may use <mutex>;
// nothing under src/core|hh|hhh|util may include this file (the engine's
// config only forward-declares MetricsRegistry).
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "stats/histogram.hpp"

namespace rhhh::obs {

// Destructive-interference padding for the sharded slots (mirrors
// rhhh::kCacheLine in util/spsc_ring.hpp without pulling the ring in).
inline constexpr std::size_t kObsCacheLine = 64;

/// Small cheap per-thread shard index: threads hash onto one of N slots so
/// concurrent recorders usually touch distinct cache lines. Collisions are
/// benign (just contended adds), so N stays small and fixed.
[[nodiscard]] inline std::size_t thread_slot() noexcept {
  static std::atomic<std::size_t> next{0};
  // order: relaxed -- a once-per-thread round-robin ticket; only uniqueness
  // of the returned value matters, no other state is published through it.
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

/// Monotonic nanosecond clock for latency measurements (steady_clock, so
/// intervals survive wall-clock adjustment).
[[nodiscard]] inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Monotonic counter, sharded over kSlots cache lines so concurrent
/// hot-path increments don't bounce one line. value() sums the shards --
/// monotone but not a consistent cut (standard for scrape-time counters).
class Counter {
 public:
  static constexpr std::size_t kSlots = 16;
  static_assert((kSlots & (kSlots - 1)) == 0, "slot mask needs a power of 2");

  void add(std::uint64_t n) noexcept {
    // order: relaxed -- a pure statistic; nothing is published through it
    // and scrape-time sums tolerate (bounded) staleness.
    slots_[thread_slot() & (kSlots - 1)].v.fetch_add(n,
                                                     std::memory_order_relaxed);
  }
  void inc() noexcept { add(1); }

  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Slot& s : slots_) {
      // order: relaxed -- same statistic-only contract as add().
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

 private:
  friend class MetricsRegistry;
  Counter() = default;

  struct alignas(kObsCacheLine) Slot {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Slot, kSlots> slots_{};
};

/// Point-in-time signed value (queue depth, occupancy). Single atomic: set
/// and add are rare relative to counter increments, so no sharding.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    // order: relaxed -- last-writer-wins sample; readers want "a recent
    // value", not an ordering edge.
    v_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) noexcept {
    // order: relaxed -- same sample-only contract as set().
    v_.fetch_add(d, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    // order: relaxed -- scrape reads a recent sample, no synchronization.
    return v_.load(std::memory_order_relaxed);
  }

  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

 private:
  friend class MetricsRegistry;
  Gauge() = default;

  std::atomic<std::int64_t> v_{0};
};

/// Latency histogram: per-thread-sharded atomic buckets with LogHistogram's
/// log-scale bucketing done inline on the recording thread. record() is two
/// relaxed adds plus a bucket add; snapshot() folds every shard into a
/// plain LogHistogram for quantile queries. Cumulative (never reset by
/// scrapes), so concurrent scrapers are read-only.
class Histogram {
 public:
  static constexpr std::size_t kSlots = 8;
  static_assert((kSlots & (kSlots - 1)) == 0, "slot mask needs a power of 2");

  void record(std::uint64_t v) noexcept {
    Slot& s = slots_[thread_slot() & (kSlots - 1)];
    const auto b = static_cast<std::size_t>(LogHistogram::bucket_index(v));
    // order: relaxed -- pure statistics (bucket count, sample count, sum);
    // scrape-time folds tolerate tearing between the three adds.
    s.buckets[b].fetch_add(1, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
  }

  /// Record a steady_clock interval that started at `t0 = now_ns()`.
  void record_since(std::uint64_t t0_ns) noexcept {
    const std::uint64_t now = now_ns();
    record(now >= t0_ns ? now - t0_ns : 0);
  }

  /// Fold all shards into one queryable LogHistogram. Concurrent recorders
  /// keep running; the result is a near-consistent cut (count/sum/buckets
  /// may disagree by in-flight samples).
  [[nodiscard]] LogHistogram snapshot() const;

  [[nodiscard]] std::uint64_t count() const noexcept {
    std::uint64_t total = 0;
    for (const Slot& s : slots_) {
      // order: relaxed -- statistic-only, same as record().
      total += s.count.load(std::memory_order_relaxed);
    }
    return total;
  }

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

 private:
  friend class MetricsRegistry;
  Histogram() = default;

  struct Slot {
    alignas(kObsCacheLine) std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::array<std::atomic<std::uint64_t>, LogHistogram::kBuckets> buckets{};
  };
  std::array<Slot, kSlots> slots_{};
};

/// RAII latency probe: records the enclosing scope's duration (ns) into a
/// histogram, or nothing when the histogram is null (telemetry off).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* h) noexcept
      : h_(h), t0_(h != nullptr ? now_ns() : 0) {}
  ~ScopedTimer() {
    if (h_ != nullptr) h_->record_since(t0_);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* h_;
  std::uint64_t t0_;
};

/// Named instrument registry. Names follow Prometheus conventions --
/// `family` or `family{label="v",...}` with family matching
/// [a-zA-Z_:][a-zA-Z0-9_:]* -- and registration is idempotent: asking for
/// an existing name returns the existing instrument (and throws
/// std::invalid_argument on a kind mismatch or malformed name, the runtime
/// backstop behind scripts/lint_invariants.py's call-site rule).
///
/// Instruments live until unregister()d; references returned by
/// counter()/gauge()/histogram() are stable (unique_ptr-backed) for the
/// instrument's lifetime. gauge_fn() registers a callback sampled at scrape
/// time -- re-registering a name replaces the sampler (last writer wins),
/// and owners that capture `this` MUST unregister before destruction.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide default registry (what `metrics == nullptr` configs
  /// resolve to).
  [[nodiscard]] static MetricsRegistry& global();

  Counter& counter(const std::string& name, const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& help = "");
  Histogram& histogram(const std::string& name, const std::string& help = "");
  void gauge_fn(const std::string& name, std::function<double()> fn,
                const std::string& help = "");

  /// Remove an instrument; returns false when the name wasn't registered.
  bool unregister(const std::string& name);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] bool has(const std::string& name) const;

  /// Current numeric value of a registered instrument (counter total, gauge
  /// value, sampled gauge_fn, histogram sample count); 0 for unknown names.
  [[nodiscard]] double value(const std::string& name) const;

  /// Prometheus text exposition (version 0.0.4). Histograms render as
  /// summaries: quantile-labelled series plus _count/_sum.
  [[nodiscard]] std::string render_prometheus() const;

  /// JSON exposition: {"metrics":[{name,help?,kind,value|...},...]}.
  [[nodiscard]] std::string render_json() const;

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kGaugeFn, kHistogram };

  struct Metric {
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::function<double()> fn;
  };

  Metric& intern(const std::string& name, Kind kind, const std::string& help);

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Metric>> metrics_;
};

}  // namespace rhhh::obs
