// TraceRing: a bounded, lock-free, multi-producer event ring for control-
// plane milestones (rotation, quiesce, seal, archive, segment roll,
// compaction). Writers claim a monotonically increasing sequence with one
// relaxed fetch_add and fill the slot with all-atomic fields, so recording
// from any thread is wait-free and TSan-clean; the ring wraps, keeping the
// newest `capacity` events. dump() reconstructs the surviving window
// oldest-first, using a per-slot ticket (seqlock-style) to discard slots a
// concurrent writer is overwriting -- readers never block writers.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace rhhh::obs {

enum class TraceEvent : std::uint8_t {
  kRotate = 0,     // arg0 = sealed epoch, arg1 = rotation duration ns
  kQuiesce,        // arg0 = epoch, arg1 = wait-for-ack duration ns
  kSnapshot,       // arg0 = epoch, arg1 = merge duration ns
  kSeal,           // arg0 = sealed epoch, arg1 = window stream length
  kArchive,        // arg0 = archived epoch, arg1 = append duration ns
  kArchiveDrop,    // arg0 = dropped epoch (bounded queue full)
  kArchiveError,   // arg0 = failed epoch
  kSegmentRoll,    // arg0 = new segment index, arg1 = closed segment bytes
  kCompaction,     // arg0 = segments deleted, arg1 = duration ns
  kScrape,         // arg0 = exporter scrape count
  kStall,          // arg0 = consecutive stalled watchdog periods, arg1 = ring backlog
};

[[nodiscard]] constexpr const char* to_string(TraceEvent e) noexcept {
  switch (e) {
    case TraceEvent::kRotate: return "rotate";
    case TraceEvent::kQuiesce: return "quiesce";
    case TraceEvent::kSnapshot: return "snapshot";
    case TraceEvent::kSeal: return "seal";
    case TraceEvent::kArchive: return "archive";
    case TraceEvent::kArchiveDrop: return "archive_drop";
    case TraceEvent::kArchiveError: return "archive_error";
    case TraceEvent::kSegmentRoll: return "segment_roll";
    case TraceEvent::kCompaction: return "compaction";
    case TraceEvent::kScrape: return "scrape";
    case TraceEvent::kStall: return "stall";
  }
  return "unknown";
}

struct TraceRecord {
  std::uint64_t seq;    // global record number (0-based, never reused)
  std::int64_t ts_ns;   // steady_clock nanoseconds at record() time
  TraceEvent event;
  std::uint64_t arg0;
  std::uint64_t arg1;
};

class TraceRing {
 public:
  /// Capacity is rounded up to a power of two (minimum 8).
  explicit TraceRing(std::size_t capacity = 1024)
      : slots_(round_up(capacity)), mask_(slots_.size() - 1) {}

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// Process-wide ring shared by engine and store instrumentation.
  [[nodiscard]] static TraceRing& global() {
    static TraceRing g(1024);
    return g;
  }

  void record(TraceEvent ev, std::int64_t ts_ns, std::uint64_t arg0 = 0,
              std::uint64_t arg1 = 0) noexcept {
    // order: relaxed -- the fetch_add only needs a unique sequence number;
    // publication of the payload happens through the ticket release below.
    const std::uint64_t seq = head_.fetch_add(1, std::memory_order_relaxed);
    Slot& s = slots_[static_cast<std::size_t>(seq) & mask_];
    // order: relaxed invalidate -- readers seeing ticket 0 (or any value
    // != this generation's seq+1) discard the slot, so the payload stores
    // below need no ordering among themselves.
    s.ticket.store(0, std::memory_order_relaxed);
    s.ts_ns.store(ts_ns, std::memory_order_relaxed);
    s.event.store(static_cast<std::uint8_t>(ev), std::memory_order_relaxed);
    s.arg0.store(arg0, std::memory_order_relaxed);
    s.arg1.store(arg1, std::memory_order_relaxed);
    // order: release -- publishes the payload stores above; a reader that
    // acquires this ticket value sees this generation's complete payload.
    s.ticket.store(seq + 1, std::memory_order_release);
  }

  /// Reconstruct the surviving window oldest-first. Slots being rewritten
  /// by a concurrent record() (ticket mismatch) are skipped, so the result
  /// is a gap-tolerant but strictly seq-ordered subset of the last
  /// `capacity()` events.
  [[nodiscard]] std::vector<TraceRecord> dump() const {
    // order: acquire -- pairs with the ticket releases: every event
    // numbered below this head has its slot fully published (or has been
    // invalidated by a newer writer, which the ticket check catches).
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    const std::uint64_t cap = slots_.size();
    const std::uint64_t start = head > cap ? head - cap : 0;
    std::vector<TraceRecord> out;
    out.reserve(static_cast<std::size_t>(head - start));
    for (std::uint64_t seq = start; seq < head; ++seq) {
      const Slot& s = slots_[static_cast<std::size_t>(seq) & mask_];
      // order: acquire -- pairs with record()'s release; a matching ticket
      // guarantees the payload reads below observe this generation.
      if (s.ticket.load(std::memory_order_acquire) != seq + 1) continue;
      TraceRecord r;
      r.seq = seq;
      // order: relaxed -- payload fields, ordered by the ticket acquire
      // above and validated by the ticket re-check below.
      r.ts_ns = s.ts_ns.load(std::memory_order_relaxed);
      r.event =
          static_cast<TraceEvent>(s.event.load(std::memory_order_relaxed));
      r.arg0 = s.arg0.load(std::memory_order_relaxed);
      r.arg1 = s.arg1.load(std::memory_order_relaxed);
      // order: acquire -- seqlock validation: if the ticket still matches,
      // no writer invalidated the slot while the payload was read.
      if (s.ticket.load(std::memory_order_acquire) != seq + 1) continue;
      out.push_back(r);
    }
    return out;
  }

  /// Total events ever recorded (monotone; may exceed capacity()).
  [[nodiscard]] std::uint64_t recorded() const noexcept {
    // order: relaxed -- a statistic; no payload is read through it.
    return head_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

 private:
  [[nodiscard]] static std::size_t round_up(std::size_t n) noexcept {
    std::size_t p = 8;
    while (p < n) p <<= 1;
    return p;
  }

  struct Slot {
    // ticket == seq+1 marks a fully published generation (0 = never/being
    // written); +1 keeps slot 0's first generation distinguishable.
    alignas(64) std::atomic<std::uint64_t> ticket{0};
    std::atomic<std::int64_t> ts_ns{0};
    std::atomic<std::uint8_t> event{0};
    std::atomic<std::uint64_t> arg0{0};
    std::atomic<std::uint64_t> arg1{0};
  };

  std::vector<Slot> slots_;
  std::size_t mask_;
  alignas(64) std::atomic<std::uint64_t> head_{0};
};

}  // namespace rhhh::obs
