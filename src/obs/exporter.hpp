// MetricsExporter: a minimal self-contained TCP listener serving the
// registry over HTTP -- the first brick of the ROADMAP's daemon story.
//
//   GET /metrics       Prometheus text exposition (0.0.4)
//   GET /metrics.json  JSON exposition
//   GET /trace[?n=K]   TraceRing dump as JSON, newest K events (when a
//                      ring is attached)
//   GET /health        last-K AccuracyCertificates as JSON (when a
//                      HealthLedger is attached)
//   GET /healthz       "ok" (liveness only; /health is the deep check)
//
// Malformed requests get clean 4xx + close, never a hang: non-GET
// methods 405, unparseable request lines 400, request heads exceeding
// the 16 KiB read cap 414.
//
// One background thread, poll()-based accept with a short timeout so
// stop() converges quickly, one request per connection (Connection:
// close). Scrapes only read registry atomics -- a live engine keeps
// ingesting at full rate while being scraped (no quiesce, no engine
// locks).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

namespace rhhh::obs {

class MetricsRegistry;
class TraceRing;
class HealthLedger;

class MetricsExporter {
 public:
  /// Serves `reg`; `trace` (optional) enables the /trace route.
  explicit MetricsExporter(MetricsRegistry& reg, TraceRing* trace = nullptr);
  ~MetricsExporter();

  /// Attach (or detach, with nullptr) the /health data source. Safe while
  /// serving -- demos construct the exporter before the engine that owns
  /// the ledger exists. The ledger must outlive the exporter or be
  /// detached first.
  void set_health_source(const HealthLedger* ledger) noexcept {
    // order: release -- pairs with the serving thread's acquire load; a
    // request that observes the pointer must observe the constructed ledger.
    health_.store(ledger, std::memory_order_release);
  }

  MetricsExporter(const MetricsExporter&) = delete;
  MetricsExporter& operator=(const MetricsExporter&) = delete;

  /// Bind 127.0.0.1:port (0 = kernel-assigned, see port()) and start the
  /// serving thread. Throws std::runtime_error on socket/bind failure.
  /// No-op when already running.
  void start(std::uint16_t port);

  /// Stop serving and join the thread. Idempotent.
  void stop();

  [[nodiscard]] bool running() const noexcept {
    // order: relaxed -- observational flag; start/stop synchronize via the
    // thread join, not this load.
    return running_.load(std::memory_order_relaxed);
  }

  /// The bound port (useful after start(0)).
  [[nodiscard]] std::uint16_t port() const noexcept {
    // order: relaxed -- published before the serving thread starts; readers
    // only need a recent value.
    return port_.load(std::memory_order_relaxed);
  }

  /// Total requests served (any route).
  [[nodiscard]] std::uint64_t scrapes() const noexcept {
    // order: relaxed -- a statistic.
    return scrapes_.load(std::memory_order_relaxed);
  }

 private:
  void serve_loop();

  MetricsRegistry* reg_;
  TraceRing* trace_;
  std::atomic<const HealthLedger*> health_{nullptr};
  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<std::uint16_t> port_{0};
  std::atomic<std::uint64_t> scrapes_{0};
  std::thread thread_;
};

/// Blocking HTTP/1.0 GET against 127.0.0.1:port; returns the full response
/// (status line + headers + body), or "" on connect/timeout failure. Test
/// and demo helper -- not a general client.
[[nodiscard]] std::string http_get_local(std::uint16_t port,
                                         const std::string& path,
                                         int timeout_ms = 2000);

namespace detail {
/// Write all of `data` to `fd`, retrying short writes and EINTR (a signal
/// landing mid-scrape must not truncate the response -- only a real error
/// or a closed peer aborts). Exposed for the interrupted-write unit test.
void send_all(int fd, const std::string& data);
/// Read from `fd` until the HTTP header terminator ("\r\n\r\n"), a 16 KiB
/// cap, a quiet period, or EOF -- retrying EINTR on both poll() and recv()
/// so an interrupted read never drops the request. Exposed for tests.
[[nodiscard]] std::string read_request(int fd);
}  // namespace detail

}  // namespace rhhh::obs
