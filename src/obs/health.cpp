#include "obs/health.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "obs/metrics.hpp"
#include "obs/trace_ring.hpp"

namespace rhhh::obs {

namespace {

void append_u64(std::string& out, const char* key, std::uint64_t v) {
  out += '"';
  out += key;
  out += "\":";
  out += std::to_string(v);
}

void append_i64(std::string& out, const char* key, std::int64_t v) {
  out += '"';
  out += key;
  out += "\":";
  out += std::to_string(v);
}

void append_f64(std::string& out, const char* key, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":%.12g", key, v);
  out += buf;
}

[[nodiscard]] std::string trace_records_json(const std::vector<TraceRecord>& recs) {
  std::string out = "[";
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const TraceRecord& r = recs[i];
    if (i > 0) out += ',';
    out += '{';
    append_u64(out, "seq", r.seq);
    out += ',';
    append_i64(out, "ts_ns", r.ts_ns);
    out += ",\"event\":\"";
    out += to_string(r.event);
    out += "\",";
    append_u64(out, "arg0", r.arg0);
    out += ',';
    append_u64(out, "arg1", r.arg1);
    out += '}';
  }
  out += ']';
  return out;
}

// Gauge samplers funnel through rlx(): each reads one statistic mirror
// that stamp() overwrites whole, so scrape-time staleness by at most one
// certificate is the only slack.
[[nodiscard]] double rlx(const std::atomic<std::uint64_t>& a) {
  // order: relaxed -- scrape-time read of a mirror; publishes nothing.
  return static_cast<double>(a.load(std::memory_order_relaxed));
}
[[nodiscard]] double rlx(const std::atomic<double>& a) {
  // order: relaxed -- scrape-time read of a mirror; publishes nothing.
  return a.load(std::memory_order_relaxed);
}
[[nodiscard]] double rlx(const std::atomic<bool>& a) {
  // order: relaxed -- scrape-time read of a mirror; publishes nothing.
  return a.load(std::memory_order_relaxed) ? 1.0 : 0.0;
}

}  // namespace

AccuracyCertificate certify_window(
    const std::vector<const RhhhSpaceSaving*>& shards, std::uint64_t epoch,
    std::uint64_t drops, std::int64_t stamped_ns) {
  AccuracyCertificate c;
  c.epoch = epoch;
  c.stamped_ns = stamped_ns;
  c.drops = drops;
  c.stream_length = drops;  // drop-folded N: offered = consumed + dropped
  if (shards.empty()) return c;
  const RhhhSpaceSaving& first = *shards.front();
  c.eps_configured = first.eps_a();

  // Node min-counts add across shards: the merged structure's untracked
  // upper bound for node d is the sum of per-shard min bounds, so the
  // per-node additive error of the cross-shard view is bounded by it.
  std::vector<double> node_min;
  double fill_sum = 0.0;
  std::size_t fill_n = 0;
  for (const RhhhSpaceSaving* s : shards) {
    c.stream_length += s->stream_length();
    c.updates += s->updates_performed();
    const std::vector<BackendProbe> probes = s->health_probes();
    if (node_min.size() < probes.size()) node_min.resize(probes.size(), 0.0);
    for (std::size_t d = 0; d < probes.size(); ++d) {
      node_min[d] += s->scale() * static_cast<double>(probes[d].min_count);
      c.evictions += probes[d].evictions;
      c.max_saturation = std::max(c.max_saturation, probes[d].saturation);
      fill_sum += probes[d].saturation;
      ++fill_n;
    }
  }

  const double n = static_cast<double>(c.stream_length);
  double worst = 0.0;
  for (const double m : node_min) worst = std::max(worst, m);
  c.eps_empirical = n > 0.0 ? worst / n : 0.0;
  if (first.mode() != LatticeMode::kMst && n > 0.0) {
    // Theorems 6.11/6.15 at the drop-folded cross-shard N: the same slack
    // correction() reports per shard, recomputed at the combined length.
    const double corr =
        2.0 * first.z_corr() * std::sqrt(n * static_cast<double>(first.V()));
    c.sampling_slack = corr / n;
  }
  c.occupancy = fill_n > 0 ? fill_sum / static_cast<double>(fill_n) : 0.0;
  c.converged = first.mode() == LatticeMode::kMst || n > first.psi();
  return c;
}

std::string certificate_json(const AccuracyCertificate& c) {
  std::string out = "{";
  append_u64(out, "epoch", c.epoch);
  out += ',';
  append_i64(out, "stamped_ns", c.stamped_ns);
  out += ',';
  append_u64(out, "stream_length", c.stream_length);
  out += ',';
  append_u64(out, "drops", c.drops);
  out += ',';
  append_u64(out, "updates", c.updates);
  out += ',';
  append_u64(out, "evictions", c.evictions);
  out += ',';
  append_f64(out, "eps_configured", c.eps_configured);
  out += ',';
  append_f64(out, "eps_empirical", c.eps_empirical);
  out += ',';
  append_f64(out, "sampling_slack", c.sampling_slack);
  out += ',';
  append_f64(out, "occupancy", c.occupancy);
  out += ',';
  append_f64(out, "max_saturation", c.max_saturation);
  out += ",\"converged\":";
  out += c.converged ? "true" : "false";
  out += '}';
  return out;
}

HealthLedger::HealthLedger(MetricsRegistry* reg, std::size_t keep)
    : reg_(reg), keep_(keep == 0 ? 1 : keep) {
  if (reg_ == nullptr) return;
  const auto own = [&](const std::string& name, std::function<double()> fn,
                       const std::string& help) {
    reg_->gauge_fn(name, std::move(fn), help);
    owned_.push_back(name);
  };
  // Samplers go through rlx() above: one relaxed mirror read each.
  own("rhhh_health_certificates_total", [this] { return rlx(stamped_); },
      "Accuracy certificates stamped since start");
  own("rhhh_health_window_epoch", [this] { return rlx(epoch_); },
      "Newest certified window epoch");
  own("rhhh_health_window_stream_length", [this] { return rlx(n_); },
      "Drop-folded N of the newest certified window");
  own("rhhh_health_window_drops", [this] { return rlx(drops_); },
      "Records dropped at the rings during the newest certified window");
  own("rhhh_health_evictions", [this] { return rlx(evictions_); },
      "Space-Saving roster evictions in the newest certified window");
  own("rhhh_health_eps_empirical", [this] { return rlx(eps_emp_); },
      "Empirical additive-error bound of the newest window, relative to N");
  own("rhhh_health_eps_configured", [this] { return rlx(eps_cfg_); },
      "Construction-time per-node eps_a target");
  own("rhhh_health_sampling_slack", [this] { return rlx(slack_); },
      "Theorem 6.11 sampling slack of the newest window, relative to N");
  own("rhhh_health_occupancy", [this] { return rlx(occupancy_); },
      "Mean backend fill fraction across lattice nodes");
  own("rhhh_health_saturation", [this] { return rlx(saturation_); },
      "Worst backend fill fraction across lattice nodes");
  own("rhhh_health_converged", [this] { return rlx(converged_); },
      "1 when the newest certified window cleared psi (Theorem 6.17)");
}

HealthLedger::~HealthLedger() {
  if (reg_ == nullptr) return;
  for (const std::string& name : owned_) reg_->unregister(name);
}

void HealthLedger::stamp(const AccuracyCertificate& c) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ring_.push_front(c);
    if (ring_.size() > keep_) ring_.pop_back();
  }
  // order: relaxed -- the mirror fields are independent statistics sampled
  // by gauge_fns; a scrape tearing across two certificates is acceptable.
  epoch_.store(c.epoch, std::memory_order_relaxed);
  n_.store(c.stream_length, std::memory_order_relaxed);
  drops_.store(c.drops, std::memory_order_relaxed);
  evictions_.store(c.evictions, std::memory_order_relaxed);
  eps_emp_.store(c.eps_empirical, std::memory_order_relaxed);
  eps_cfg_.store(c.eps_configured, std::memory_order_relaxed);
  slack_.store(c.sampling_slack, std::memory_order_relaxed);
  occupancy_.store(c.occupancy, std::memory_order_relaxed);
  saturation_.store(c.max_saturation, std::memory_order_relaxed);
  converged_.store(c.converged, std::memory_order_relaxed);
  stamped_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<AccuracyCertificate> HealthLedger::recent() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return {ring_.begin(), ring_.end()};
}

std::string HealthLedger::render_json() const {
  const std::vector<AccuracyCertificate> certs = recent();
  std::string out = "{";
  append_u64(out, "stamped", stamped());
  out += ",\"certificates\":[";
  for (std::size_t i = 0; i < certs.size(); ++i) {
    if (i > 0) out += ',';
    out += certificate_json(certs[i]);
  }
  out += "]}";
  return out;
}

StallWatchdog::StallWatchdog(Config cfg, Sampler sampler, StatsJson stats_json,
                             const HealthLedger* ledger, TraceRing* trace,
                             MetricsRegistry* reg)
    : cfg_(cfg),
      sampler_(std::move(sampler)),
      stats_json_(std::move(stats_json)),
      ledger_(ledger),
      trace_(trace),
      reg_(reg) {
  if (cfg_.period_ns == 0) cfg_.period_ns = 100'000'000;
  if (reg_ == nullptr) return;
  const auto own = [&](const std::string& name, std::function<double()> fn,
                       const std::string& help) {
    reg_->gauge_fn(name, std::move(fn), help);
    owned_.push_back(name);
  };
  // order: relaxed -- statistic mirrors, same contract as the ledger's.
  own("rhhh_health_stall_periods_total",
      [this] { return static_cast<double>(stalls_.load(std::memory_order_relaxed)); },
      "Watchdog periods that observed a stalled engine");
  own("rhhh_health_stall_episodes_total",
      [this] { return static_cast<double>(episodes_.load(std::memory_order_relaxed)); },
      "Distinct stall episodes (one flight-recorder dump each)");
}

StallWatchdog::~StallWatchdog() {
  stop();
  if (reg_ == nullptr) return;
  for (const std::string& name : owned_) reg_->unregister(name);
}

void StallWatchdog::start() {
  // order: relaxed -- start/stop are externally serialized (engine control
  // plane); the flag only answers "is a thread running".
  if (running_.exchange(true, std::memory_order_relaxed)) return;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = false;
  }
  thread_ = std::thread([this] { loop(); });
}

void StallWatchdog::stop() {
  // order: relaxed -- same externally-serialized contract as start().
  if (!running_.exchange(false, std::memory_order_relaxed)) return;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

std::string StallWatchdog::last_dump() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return last_dump_;
}

void StallWatchdog::loop() {
  Progress prev{};
  bool have_prev = false;
  std::uint64_t consecutive = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, std::chrono::nanoseconds(cfg_.period_ns),
                   [this] { return stop_requested_; });
      if (stop_requested_) return;
    }
    const Progress p = sampler_ ? sampler_() : Progress{};
    // Detection: a full period with the consumed tally frozen while the
    // rings hold work, or a rotation the sampler reports as overdue. The
    // first comparison needs a previous sample, so a fresh stall is seen
    // within two periods of onset.
    const char* reason = nullptr;
    if (have_prev && p.consumed == prev.consumed && p.backlog > 0) {
      reason = "no_progress";
    } else if (p.rotation_overdue) {
      reason = "rotation_overdue";
    }
    if (reason != nullptr) {
      ++consecutive;
      const auto now = static_cast<std::int64_t>(now_ns());
      if (trace_ != nullptr) {
        trace_->record(TraceEvent::kStall, now, consecutive, p.backlog);
      }
      if (consecutive == 1) {
        on_stall(p, reason, now);
        // order: release -- the dump is stored (and the trace event
        // recorded) before the episode becomes countable; pairs with the
        // acquire in stall_episodes().
        episodes_.fetch_add(1, std::memory_order_release);
      }
      // order: release -- incremented last so a poller that observes the
      // stall also finds the episode's flight recorder already written;
      // pairs with the acquire in stalls().
      stalls_.fetch_add(1, std::memory_order_release);
    } else {
      consecutive = 0;
    }
    prev = p;
    have_prev = true;
  }
}

void StallWatchdog::on_stall(const Progress& p, const char* reason,
                             std::int64_t detected_ns) {
  // Flight recorder: everything a postmortem needs, in one JSON document.
  std::string dump = "{";
  append_i64(dump, "detected_ns", detected_ns);
  dump += ",\"reason\":\"";
  dump += reason;
  dump += "\",\"progress\":{";
  append_u64(dump, "consumed", p.consumed);
  dump += ',';
  append_u64(dump, "backlog", p.backlog);
  dump += ',';
  append_u64(dump, "window_epochs", p.window_epochs);
  dump += "},\"stats\":";
  dump += stats_json_ ? stats_json_() : std::string("null");
  dump += ",\"certificates\":[";
  if (ledger_ != nullptr) {
    const std::vector<AccuracyCertificate> certs = ledger_->recent();
    for (std::size_t i = 0; i < certs.size(); ++i) {
      if (i > 0) dump += ',';
      dump += certificate_json(certs[i]);
    }
  }
  dump += "],\"trace\":";
  dump += trace_ != nullptr ? trace_records_json(trace_->dump())
                            : std::string("[]");
  dump += '}';

  if (!cfg_.dump_path.empty()) {
    std::ofstream out(cfg_.dump_path, std::ios::trunc);
    if (out) out << dump << '\n';
  }
  const std::lock_guard<std::mutex> lock(mu_);
  last_dump_ = std::move(dump);
}

}  // namespace rhhh::obs
