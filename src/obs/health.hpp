// Estimator health layer: live accuracy certificates and a stall watchdog.
//
// PR 7 made the *system* observable; this makes the *estimator* observable.
// Three pieces:
//
//   * certify_window() folds the per-node BackendProbe snapshots of one or
//     more same-configuration lattice shards (index-aligned, like
//     TrendSnapshot's merge) into an AccuracyCertificate: an empirical
//     additive-error upper bound recomputed from what the backends actually
//     hold (max node min-count / N), the Theorem 6.11/6.15 sampling slack at
//     the drop-folded cross-shard N, and structure-health aggregates
//     (roster occupancy, eviction churn, sketch saturation).
//   * HealthLedger keeps the last K certificates, mirrors the newest one
//     into lock-free atomics exported as the rhhh_health_* gauge families,
//     and renders the /health JSON body the exporter serves.
//   * StallWatchdog samples engine progress (via an engine-provided
//     lock-free sampler) on its own thread; when consumed counters stop
//     advancing while rings hold backlog, or a rotation runs overdue vs its
//     budget, it records kStall trace events and writes a flight-recorder
//     dump (TraceRing contents + last K certificates + EngineStats JSON) to
//     a configurable path for postmortems.
//
// src/obs/ is not a hot-path-lint directory (mutex/thread are fine here);
// nothing under src/core|hh|hhh|util includes this file.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "hh/backend.hpp"
#include "hhh/lattice_hhh.hpp"

namespace rhhh::obs {

class MetricsRegistry;
class TraceRing;

/// Per-window accuracy certificate: the estimator's self-reported error
/// bound for one sealed window, checkable online from backend state alone.
/// The certified additive bound on any estimate's error is
/// (eps_empirical + sampling_slack) * stream_length.
struct AccuracyCertificate {
  std::uint64_t epoch = 0;          ///< sealed window epoch this certifies
  std::int64_t stamped_ns = 0;      ///< steady-clock stamp time
  std::uint64_t stream_length = 0;  ///< drop-folded N (consumed + dropped)
  std::uint64_t drops = 0;          ///< records dropped at the window's rings
  std::uint64_t updates = 0;        ///< backend increments performed
  std::uint64_t evictions = 0;      ///< summed Space-Saving roster evictions
  double eps_configured = 0.0;      ///< the construction-time eps_a target
  double eps_empirical = 0.0;       ///< max_d (scale * min-count_d) / N
  double sampling_slack = 0.0;      ///< 2 Z sqrt(N V) / N (0 for MST)
  double occupancy = 0.0;           ///< mean roster/sketch fill across nodes
  double max_saturation = 0.0;      ///< worst node fill (1.0 = roster full)
  bool converged = false;           ///< N cleared psi (Theorem 6.17)
};

/// Fold probes from same-configuration lattice shards observing disjoint
/// streams into one certificate (the cross-shard view a merge would have):
/// node min-counts add across shards, N is the drop-folded sum. A single
/// shard is the trivial fold. `shards` must be non-empty and index-aligned.
[[nodiscard]] AccuracyCertificate certify_window(
    const std::vector<const RhhhSpaceSaving*>& shards, std::uint64_t epoch,
    std::uint64_t drops, std::int64_t stamped_ns);

/// One certificate as a JSON object.
[[nodiscard]] std::string certificate_json(const AccuracyCertificate& c);

/// Thread-safe last-K certificate ring. When a registry is supplied, the
/// constructor registers the rhhh_health_* gauge_fn families (sampling only
/// this ledger's atomics, so scrapes stay lock-free) and the destructor
/// unregisters them -- the ledger must outlive no registry it binds to.
class HealthLedger {
 public:
  explicit HealthLedger(MetricsRegistry* reg, std::size_t keep = 16);
  ~HealthLedger();

  HealthLedger(const HealthLedger&) = delete;
  HealthLedger& operator=(const HealthLedger&) = delete;

  void stamp(const AccuracyCertificate& c);

  /// Retained certificates, newest first.
  [[nodiscard]] std::vector<AccuracyCertificate> recent() const;
  /// Certificates ever stamped (monotone; may exceed the retained K).
  [[nodiscard]] std::uint64_t stamped() const noexcept {
    // order: relaxed -- a statistic; no payload is read through it.
    return stamped_.load(std::memory_order_relaxed);
  }

  /// The /health endpoint body: {"stamped":n,"certificates":[newest,...]}.
  [[nodiscard]] std::string render_json() const;

 private:
  MetricsRegistry* reg_;
  std::size_t keep_;
  std::vector<std::string> owned_;  ///< gauge_fn names to unregister

  mutable std::mutex mu_;
  std::deque<AccuracyCertificate> ring_;  ///< newest at the front

  // Lock-free mirror of the newest certificate for gauge_fn samplers.
  std::atomic<std::uint64_t> stamped_{0};
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint64_t> n_{0};
  std::atomic<std::uint64_t> drops_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<double> eps_emp_{0.0};
  std::atomic<double> eps_cfg_{0.0};
  std::atomic<double> slack_{0.0};
  std::atomic<double> occupancy_{0.0};
  std::atomic<double> saturation_{0.0};
  std::atomic<bool> converged_{false};
};

/// Background progress watchdog. The engine hands it a lock-free Progress
/// sampler plus a stats serializer; the watchdog owns the detection policy:
/// a period with no consumed progress while backlog sits in the rings, or a
/// sampler-reported overdue rotation, counts as a stalled period. The first
/// stalled period of an episode writes the flight recorder; progress
/// re-arms it.
class StallWatchdog {
 public:
  struct Config {
    std::uint64_t period_ns = 100'000'000;  ///< sampling period (100 ms)
    std::string dump_path;  ///< flight-recorder file; empty = memory only
  };
  /// One lock-free sample of engine progress.
  struct Progress {
    std::uint64_t consumed = 0;       ///< records applied to lattices, total
    std::uint64_t backlog = 0;        ///< records visible in the rings
    std::uint64_t window_epochs = 0;  ///< completed rotations
    bool rotation_overdue = false;    ///< budget spent/deadline passed > period
  };
  using Sampler = std::function<Progress()>;
  using StatsJson = std::function<std::string()>;

  /// `ledger` and `trace` are optional (null = that section of the dump is
  /// empty); `reg` (optional) gets the stall counters as gauge_fns.
  StallWatchdog(Config cfg, Sampler sampler, StatsJson stats_json,
                const HealthLedger* ledger, TraceRing* trace,
                MetricsRegistry* reg);
  ~StallWatchdog();

  StallWatchdog(const StallWatchdog&) = delete;
  StallWatchdog& operator=(const StallWatchdog&) = delete;

  /// Spawn the sampling thread. No-op when already running.
  void start();
  /// Stop and join. Idempotent.
  void stop();

  /// Stalled periods observed (every period inside an episode counts).
  [[nodiscard]] std::uint64_t stalls() const noexcept {
    // order: acquire -- pairs with the loop's release increment: a reader
    // that sees a stalled period also sees that episode's dump stored.
    return stalls_.load(std::memory_order_acquire);
  }
  /// Distinct stall episodes (each wrote one flight-recorder dump).
  [[nodiscard]] std::uint64_t stall_episodes() const noexcept {
    // order: acquire -- pairs with the loop's release increment; the
    // episode's flight recorder is visible once it is countable.
    return episodes_.load(std::memory_order_acquire);
  }
  /// The last episode's flight-recorder JSON ("" before any episode).
  [[nodiscard]] std::string last_dump() const;

  [[nodiscard]] const Config& config() const noexcept { return cfg_; }

 private:
  void loop();
  void on_stall(const Progress& p, const char* reason, std::int64_t detected_ns);

  Config cfg_;
  Sampler sampler_;
  StatsJson stats_json_;
  const HealthLedger* ledger_;
  TraceRing* trace_;
  MetricsRegistry* reg_;
  std::vector<std::string> owned_;

  mutable std::mutex mu_;  ///< guards cv_ waits and last_dump_
  std::condition_variable cv_;
  bool stop_requested_ = false;
  std::string last_dump_;
  std::thread thread_;

  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> stalls_{0};
  std::atomic<std::uint64_t> episodes_{0};
};

}  // namespace rhhh::obs
