// LogHistogram: constant-memory quantile estimation for latency-style data.
//
// Values are bucketed at ~4% resolution (16 sub-buckets per power of two),
// so p99.9/max queries over hundreds of millions of per-packet latencies
// cost 2 KiB instead of a giant sort -- used by the latency-tail ablation
// and suitable for always-on dataplane telemetry.
#pragma once

#include <array>
#include <cstdint>

namespace rhhh {

class LogHistogram {
 public:
  static constexpr int kSubBits = 4;  // 16 sub-buckets per octave
  static constexpr int kBuckets = 64 << kSubBits;

  void add(std::uint64_t value) noexcept {
    ++buckets_[bucket_of(value)];
    ++count_;
    sum_ += value;
    if (value > max_) max_ = value;
    if (count_ == 1 || value < min_) min_ = value;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
  [[nodiscard]] std::uint64_t min() const noexcept { return min_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// Value at quantile q in [0,1]; upper edge of the containing bucket, so
  /// the result is within ~6% of the true order statistic.
  [[nodiscard]] std::uint64_t quantile(double q) const noexcept {
    if (count_ == 0) return 0;
    if (q <= 0.0) return min_;
    if (q >= 1.0) return max_;
    const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1));
    std::uint64_t seen = 0;
    for (int b = 0; b < kBuckets; ++b) {
      seen += buckets_[static_cast<std::size_t>(b)];
      if (seen > rank) return upper_edge(b);
    }
    return max_;
  }

  void clear() noexcept {
    buckets_.fill(0);
    count_ = 0;
    sum_ = 0;
    max_ = 0;
    min_ = 0;
  }

  /// Synonym for clear(): the name the telemetry layer's scrape-and-reset
  /// aggregation cycle uses (obs::Histogram drains per-thread shards into a
  /// fresh instance per scrape).
  void reset() noexcept { clear(); }

  /// Raw bucket index a value lands in (exposed for the telemetry shards,
  /// which bucket on the hot path and fold counts at scrape time).
  [[nodiscard]] static int bucket_index(std::uint64_t v) noexcept {
    return bucket_of(v);
  }
  /// Upper edge of raw bucket `b` (the value quantile() would report).
  [[nodiscard]] static std::uint64_t bucket_upper(int b) noexcept {
    return upper_edge(b);
  }

  /// Fold a pre-bucketed batch: `n` samples that landed in raw bucket `b`
  /// (as produced by bucket_index) whose values summed to `total`. min/max
  /// are tracked at bucket-edge resolution (exact for values < 16, within
  /// ~6% otherwise -- the same resolution quantile() already has). `n` may
  /// be 0 to fold only a sum contribution.
  void add_bucketed(int b, std::uint64_t n, std::uint64_t total) noexcept {
    sum_ += total;
    if (n == 0) return;
    buckets_[static_cast<std::size_t>(b)] += n;
    const std::uint64_t edge = upper_edge(b);
    if (count_ == 0 || edge < min_) min_ = edge;
    if (edge > max_) max_ = edge;
    count_ += n;
  }

  /// Merge another histogram (distributed collection).
  void merge(const LogHistogram& other) noexcept {
    for (int b = 0; b < kBuckets; ++b) {
      buckets_[static_cast<std::size_t>(b)] +=
          other.buckets_[static_cast<std::size_t>(b)];
    }
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.count_ != 0) {
      if (other.max_ > max_) max_ = other.max_;
      if (count_ == other.count_ || other.min_ < min_) min_ = other.min_;
    }
  }

 private:
  [[nodiscard]] static int bucket_of(std::uint64_t v) noexcept {
    if (v < (1u << kSubBits)) return static_cast<int>(v);  // exact small values
    const int msb = 63 - __builtin_clzll(v);
    const int sub = static_cast<int>((v >> (msb - kSubBits)) & ((1 << kSubBits) - 1));
    return ((msb - kSubBits + 1) << kSubBits) + sub;
  }
  [[nodiscard]] static std::uint64_t upper_edge(int b) noexcept {
    if (b < (1 << kSubBits)) return static_cast<std::uint64_t>(b);
    const int octave = (b >> kSubBits) + kSubBits - 1;
    const int sub = b & ((1 << kSubBits) - 1);
    return ((std::uint64_t{1} << kSubBits) + static_cast<std::uint64_t>(sub) + 1)
               << (octave - kSubBits)
           ;
  }

  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
  std::uint64_t min_ = 0;
};

}  // namespace rhhh
