// Standard normal distribution: CDF and quantile (inverse CDF).
//
// The quantile provides the Z values used throughout the paper's analysis:
// the sampling-noise slack 2*Z*sqrt(N*V) in Algorithm 1 and the convergence
// bound psi = Z_{1-delta_s/2} * V * eps_s^-2 (Theorem 6.3).
#pragma once

namespace rhhh {

/// P(X <= x) for X ~ N(0,1).
[[nodiscard]] double normal_cdf(double x) noexcept;

/// phi(x): the standard normal density.
[[nodiscard]] double normal_pdf(double x) noexcept;

/// Inverse CDF: returns z with normal_cdf(z) == p, for p in (0,1).
/// Acklam's rational approximation refined by one Halley step; absolute
/// error below 1e-9 across the domain. Out-of-domain p returns +-infinity.
[[nodiscard]] double normal_quantile(double p) noexcept;

/// Z_alpha as used in the paper (the z with Phi(z) = alpha), e.g.
/// z_value(1 - delta/8) for the coverage slack of Theorems 6.11/6.15.
[[nodiscard]] double z_value(double alpha) noexcept;

}  // namespace rhhh
