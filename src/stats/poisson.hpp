// Poisson confidence intervals.
//
// The RHHH analysis (Section 6) approximates the balls-and-bins update
// process by independent Poisson variables and builds confidence intervals
// around bin loads: Lemma 6.2 uses the normal approximation
// |X - E[X]| < Z_{1-delta} * sqrt(E[X]), citing Schwertman & Martinez [40].
// Both that simple interval and the (better-calibrated) Schwertman-Martinez
// second approximation are provided.
#pragma once

namespace rhhh {

struct Interval {
  double lo = 0.0;
  double hi = 0.0;
  [[nodiscard]] bool contains(double x) const noexcept { return lo <= x && x <= hi; }
  [[nodiscard]] double width() const noexcept { return hi - lo; }
};

/// Lemma 6.2 interval around the mean: lambda +- Z_{1-delta/2} * sqrt(lambda).
/// Two-sided with total miss probability ~delta.
[[nodiscard]] Interval poisson_interval(double lambda, double delta) noexcept;

/// Schwertman-Martinez approximate interval for the *mean* given an observed
/// count x: [x + z^2/2 - z*sqrt(x + z^2/4), x + z^2/2 + z*sqrt(x + z^2/4)]
/// with z = Z_{1-delta/2}. Better behaved at small counts.
[[nodiscard]] Interval poisson_mean_interval(double observed, double delta) noexcept;

/// Poisson pmf P(X = k) for X ~ Poisson(lambda) (log-space, safe for large k).
[[nodiscard]] double poisson_pmf(unsigned k, double lambda) noexcept;

}  // namespace rhhh
