// Streaming summary statistics (Welford) and mean confidence intervals.
//
// Every benchmark data point is reported as mean over R runs with a
// two-sided 95% Student-t confidence interval, matching the paper's
// methodology (Section 4: 5 runs, two-sided Student's t-test, 95% CI).
#pragma once

#include <cstddef>
#include <span>

#include "stats/poisson.hpp"

namespace rhhh {

/// Numerically stable running mean/variance accumulator.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    if (n_ == 1 || x < min_) min_ = x;
    if (n_ == 1 || x > max_) max_ = x;
  }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  /// Sample variance (n-1 denominator); 0 with fewer than two samples.
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept;
  /// Standard error of the mean.
  [[nodiscard]] double sem() const noexcept;
  /// Two-sided Student-t confidence interval on the mean.
  [[nodiscard]] Interval mean_ci(double confidence = 0.95) const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Convenience: mean CI over a batch of observations.
[[nodiscard]] Interval mean_ci(std::span<const double> xs,
                               double confidence = 0.95) noexcept;

}  // namespace rhhh
