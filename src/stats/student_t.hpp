// Student's t distribution: CDF and quantile.
//
// The paper reports each data point as the mean of 5 runs with a two-sided
// 95% Student-t confidence interval; the bench harness does the same.
#pragma once

namespace rhhh {

/// Regularized incomplete beta function I_x(a, b), x in [0,1].
[[nodiscard]] double incomplete_beta(double a, double b, double x) noexcept;

/// P(T <= t) for T ~ Student-t with `df` degrees of freedom (df > 0).
[[nodiscard]] double student_t_cdf(double t, double df) noexcept;

/// Inverse CDF of the Student-t distribution, p in (0,1).
[[nodiscard]] double student_t_quantile(double p, double df) noexcept;

/// Two-sided critical value: t with P(|T| <= t) == confidence.
/// E.g. t_critical(4, 0.95) == 2.776... (5 runs -> 4 degrees of freedom).
[[nodiscard]] double t_critical(double df, double confidence) noexcept;

}  // namespace rhhh
