#include "stats/student_t.hpp"

#include <cmath>
#include <limits>

#include "stats/normal.hpp"

namespace rhhh {

namespace {

// Continued-fraction evaluation of the incomplete beta (Lentz's algorithm),
// valid for x < (a+1)/(a+b+2); callers use the symmetry relation otherwise.
double beta_cf(double a, double b, double x) noexcept {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-14;
  constexpr double kTiny = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double incomplete_beta(double a, double b, double x) noexcept {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b) +
                          a * std::log(x) + b * std::log1p(-x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_cf(a, b, x) / a;
  }
  return 1.0 - front * beta_cf(b, a, 1.0 - x) / b;
}

double student_t_cdf(double t, double df) noexcept {
  if (df <= 0.0) return std::numeric_limits<double>::quiet_NaN();
  const double x = df / (df + t * t);
  const double p = 0.5 * incomplete_beta(0.5 * df, 0.5, x);
  return t >= 0.0 ? 1.0 - p : p;
}

double student_t_quantile(double p, double df) noexcept {
  if (!(p > 0.0)) return -std::numeric_limits<double>::infinity();
  if (!(p < 1.0)) return std::numeric_limits<double>::infinity();
  if (p == 0.5) return 0.0;

  // Start from the normal quantile, then bisect/secant on the monotone CDF.
  double lo = -1e3;
  double hi = 1e3;
  double t = normal_quantile(p);
  for (int i = 0; i < 200; ++i) {
    const double c = student_t_cdf(t, df);
    if (c > p) {
      hi = t;
    } else {
      lo = t;
    }
    const double next = 0.5 * (lo + hi);
    if (std::fabs(next - t) < 1e-12 * (1.0 + std::fabs(t))) return next;
    t = next;
  }
  return t;
}

double t_critical(double df, double confidence) noexcept {
  return student_t_quantile(0.5 + 0.5 * confidence, df);
}

}  // namespace rhhh
