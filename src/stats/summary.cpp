#include "stats/summary.hpp"

#include <cmath>

#include "stats/student_t.hpp"

namespace rhhh {

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::sem() const noexcept {
  return n_ > 0 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

Interval RunningStats::mean_ci(double confidence) const noexcept {
  if (n_ < 2) return Interval{mean_, mean_};
  const double t = t_critical(static_cast<double>(n_ - 1), confidence);
  const double half = t * sem();
  return Interval{mean_ - half, mean_ + half};
}

Interval mean_ci(std::span<const double> xs, double confidence) noexcept {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.mean_ci(confidence);
}

}  // namespace rhhh
