#include "stats/poisson.hpp"

#include <algorithm>
#include <cmath>

#include "stats/normal.hpp"

namespace rhhh {

Interval poisson_interval(double lambda, double delta) noexcept {
  const double z = z_value(1.0 - 0.5 * delta);
  const double half = z * std::sqrt(std::max(lambda, 0.0));
  return Interval{lambda - half, lambda + half};
}

Interval poisson_mean_interval(double observed, double delta) noexcept {
  const double z = z_value(1.0 - 0.5 * delta);
  const double center = observed + 0.5 * z * z;
  const double half = z * std::sqrt(std::max(observed, 0.0) + 0.25 * z * z);
  return Interval{std::max(0.0, center - half), center + half};
}

double poisson_pmf(unsigned k, double lambda) noexcept {
  if (lambda <= 0.0) return k == 0 ? 1.0 : 0.0;
  const double lp = k * std::log(lambda) - lambda - std::lgamma(double(k) + 1.0);
  return std::exp(lp);
}

}  // namespace rhhh
