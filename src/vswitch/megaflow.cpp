#include "vswitch/megaflow.hpp"

namespace rhhh {

void MegaflowTable::add_rule(const FlowMask& mask, const FiveTuple& match,
                             Action action) {
  for (Subtable& st : subtables_) {
    if (st.mask == mask) {
      st.flows.insert_or_assign(mask.apply(match), action);
      ++rules_;
      return;
    }
  }
  subtables_.emplace_back();
  subtables_.back().mask = mask;
  subtables_.back().flows.insert_or_assign(mask.apply(match), action);
  ++rules_;
}

const Action* MegaflowTable::lookup(const FiveTuple& t) const noexcept {
  for (const Subtable& st : subtables_) {
    if (const Action* a = st.flows.find(st.mask.apply(t))) return a;
  }
  return nullptr;
}

}  // namespace rhhh
