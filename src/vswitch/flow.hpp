// Flow-level vocabulary of the mini virtual switch: actions, wildcard masks
// and masked flow rules (the OVS "megaflow" abstraction).
#pragma once

#include <cstdint>

#include "net/packet.hpp"

namespace rhhh {

enum class ActionType : std::uint8_t { kOutput, kDrop };

struct Action {
  ActionType type = ActionType::kDrop;
  std::uint16_t port = 0;

  friend constexpr bool operator==(const Action&, const Action&) noexcept = default;

  [[nodiscard]] static constexpr Action output(std::uint16_t port) noexcept {
    return Action{ActionType::kOutput, port};
  }
  [[nodiscard]] static constexpr Action drop() noexcept {
    return Action{ActionType::kDrop, 0};
  }
};

/// Bitwise wildcard mask over the 5-tuple (OVS-style: a megaflow subtable
/// is the set of flows sharing one mask).
struct FlowMask {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t proto = 0;

  friend constexpr bool operator==(const FlowMask&, const FlowMask&) noexcept = default;

  [[nodiscard]] constexpr FiveTuple apply(const FiveTuple& t) const noexcept {
    return FiveTuple{t.src_ip & src_ip, t.dst_ip & dst_ip,
                     static_cast<std::uint16_t>(t.src_port & src_port),
                     static_cast<std::uint16_t>(t.dst_port & dst_port),
                     static_cast<std::uint8_t>(t.proto & proto)};
  }

  [[nodiscard]] static constexpr FlowMask exact() noexcept {
    return FlowMask{0xffffffffu, 0xffffffffu, 0xffff, 0xffff, 0xff};
  }
  /// Source/destination prefix mask (ports and protocol wildcarded).
  [[nodiscard]] static FlowMask prefixes(int src_bits, int dst_bits) noexcept;
};

}  // namespace rhhh
