#include "vswitch/emc.hpp"

#include "util/bits.hpp"

namespace rhhh {

ExactMatchCache::ExactMatchCache(std::size_t capacity) {
  const std::size_t sets = next_pow2(capacity < kWays ? 1 : capacity / kWays);
  slots_.resize(sets * kWays);
  set_mask_ = sets - 1;
}

const Action* ExactMatchCache::lookup(const FiveTuple& t) noexcept {
  Slot* set = &slots_[set_of(t) * kWays];
  for (std::size_t w = 0; w < kWays; ++w) {
    if (set[w].valid && set[w].key == t) {
      ++hits_;
      return &set[w].action;
    }
  }
  ++misses_;
  return nullptr;
}

void ExactMatchCache::insert(const FiveTuple& t, Action a) noexcept {
  Slot* set = &slots_[set_of(t) * kWays];
  for (std::size_t w = 0; w < kWays; ++w) {
    if (set[w].valid && set[w].key == t) {
      set[w].action = a;
      return;
    }
  }
  for (std::size_t w = 0; w < kWays; ++w) {
    if (!set[w].valid) {
      set[w] = Slot{t, a, true};
      return;
    }
  }
  set[tick_++ % kWays] = Slot{t, a, true};
}

void ExactMatchCache::clear() noexcept {
  for (Slot& s : slots_) s.valid = false;
  hits_ = 0;
  misses_ = 0;
}

}  // namespace rhhh
