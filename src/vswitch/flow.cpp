#include "vswitch/flow.hpp"

#include "util/bits.hpp"

namespace rhhh {

FlowMask FlowMask::prefixes(int src_bits, int dst_bits) noexcept {
  FlowMask m;
  m.src_ip = static_cast<std::uint32_t>(high_bits_mask64(src_bits) >> 32);
  m.dst_ip = static_cast<std::uint32_t>(high_bits_mask64(dst_bits) >> 32);
  m.src_port = 0;
  m.dst_port = 0;
  m.proto = 0;
  return m;
}

}  // namespace rhhh
