// Distributed measurement deployment (paper Section 5.2 / Figure 8): the
// switch dataplane performs only RHHH's random level selection and forwards
// sampled records over a lock-free ring to a separate measurement thread
// (the paper's measurement VM). With V > H only a H/V fraction of packets
// crosses the ring, which is why throughput grows with V in Figure 8.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "hhh/lattice_hhh.hpp"
#include "util/random.hpp"
#include "util/spsc_ring.hpp"
#include "vswitch/datapath.hpp"

namespace rhhh {

class DistributedMeasurement final : public MeasurementHook {
 public:
  /// The hierarchy/params configure the consumer-side RHHH instance; the
  /// producer side only needs V and H. Ring overflow drops the sample (a
  /// saturated forwarding port) and is counted.
  DistributedMeasurement(const Hierarchy& h, LatticeParams params,
                         std::size_t ring_capacity = 1 << 16);
  ~DistributedMeasurement() override;

  DistributedMeasurement(const DistributedMeasurement&) = delete;
  DistributedMeasurement& operator=(const DistributedMeasurement&) = delete;

  /// Spawns the measurement thread. Must be called before feeding packets.
  void start();
  /// Drains the ring, stops and joins the measurement thread, and folds the
  /// observed stream length into the consumer-side instance.
  void stop();

  // -- producer side (datapath thread) --------------------------------------
  void on_packet(const PacketRecord& p) override {
    // order: relaxed -- offered/drop counters on the per-packet fast path;
    // stop() reads them only after the datapath has quiesced (see stop()).
    offered_.fetch_add(1, std::memory_order_relaxed);
    const std::uint32_t d = rng_.bounded(V_);
    if (d < H_) {
      if (!ring_.try_push(Sample{d, key_of(p)})) {
        // order: relaxed -- drop counter (see above).
        drops_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  [[nodiscard]] std::string_view name() const override { return name_; }

  // -- results (valid after stop()) -----------------------------------------
  [[nodiscard]] HhhSet output(double theta) const { return rhhh_.output(theta); }
  [[nodiscard]] const RhhhSpaceSaving& algorithm() const noexcept { return rhhh_; }

  /// Forwarding-path accounting. `drop_rate` is the share of ring-bound
  /// samples lost to a full ring: drops / (forwarded + drops).
  struct Stats {
    std::uint64_t offered = 0;    ///< packets seen at the switch
    std::uint64_t forwarded = 0;  ///< samples delivered to the measurement thread
    std::uint64_t drops = 0;      ///< samples lost to a full ring
    double drop_rate = 0.0;
  };
  [[nodiscard]] Stats stats() const noexcept {
    Stats s;
    // order: relaxed x3 -- individually-consistent live counters; exact
    // totals only after stop() (thread join is the happens-before edge).
    s.offered = offered_.load(std::memory_order_relaxed);
    s.forwarded = forwarded_.load(std::memory_order_relaxed);
    s.drops = drops_.load(std::memory_order_relaxed);
    const std::uint64_t bound = s.forwarded + s.drops;
    s.drop_rate = bound == 0 ? 0.0
                             : static_cast<double>(s.drops) /
                                   static_cast<double>(bound);
    return s;
  }

  [[nodiscard]] std::uint64_t offered() const noexcept {
    // order: relaxed -- live counter (see stats()).
    return offered_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t forwarded() const noexcept {
    // order: relaxed -- live counter (see stats()).
    return forwarded_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t drops() const noexcept {
    // order: relaxed -- live counter (see stats()).
    return drops_.load(std::memory_order_relaxed);
  }

 private:
  struct Sample {
    std::uint32_t level;
    Key128 key;
  };

  [[nodiscard]] Key128 key_of(const PacketRecord& p) const noexcept {
    return rhhh_.hierarchy().key_of(p);
  }
  void consume();

  RhhhSpaceSaving rhhh_;  // consumer-side instance; sampling done by producer
  SpscRing<Sample> ring_;
  Xoroshiro128 rng_;
  std::thread consumer_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> offered_{0};
  std::atomic<std::uint64_t> forwarded_{0};
  std::atomic<std::uint64_t> drops_{0};
  std::uint32_t V_;
  std::uint32_t H_;
  std::string name_;
};

}  // namespace rhhh
