#include "vswitch/datapath.hpp"

#include "obs/metrics.hpp"

namespace rhhh {

Datapath::Datapath(DatapathConfig cfg)
    : emc_(cfg.emc_capacity), default_action_(cfg.default_action) {
  if (cfg.telemetry) {
    obs::MetricsRegistry& reg = cfg.metrics != nullptr
                                    ? *cfg.metrics
                                    : obs::MetricsRegistry::global();
    m_emc_hits_ = &reg.counter("rhhh_vswitch_emc_hits_total",
                               "exact-match cache hits");
    m_megaflow_hits_ = &reg.counter("rhhh_vswitch_megaflow_hits_total",
                                    "megaflow classifier hits");
    m_upcalls_ = &reg.counter("rhhh_vswitch_upcalls_total",
                              "slow-path upcalls (cache + classifier miss)");
  }
}

Action Datapath::process(const PacketRecord& p) {
  ++stats_.received;
  if (hook_ != nullptr) hook_->on_packet(p);

  const FiveTuple t = FiveTuple::of(p);
  Action action;
  if (const Action* a = emc_.lookup(t)) {
    ++stats_.emc_hits;
    if (m_emc_hits_ != nullptr) m_emc_hits_->inc();
    action = *a;
  } else if (const Action* m = megaflow_.lookup(t)) {
    ++stats_.megaflow_hits;
    if (m_megaflow_hits_ != nullptr) m_megaflow_hits_->inc();
    action = *m;
    emc_.insert(t, action);
  } else {
    // In OVS this is the upcall path; we apply the configured default and
    // install it so the flow stays on the fast path.
    ++stats_.misses;
    if (m_upcalls_ != nullptr) m_upcalls_->inc();
    action = default_action_;
    emc_.insert(t, action);
  }

  if (action.type == ActionType::kOutput) {
    ++stats_.forwarded;
  } else {
    ++stats_.dropped;
  }
  return action;
}

std::uint64_t Datapath::run(std::span<const PacketRecord> packets) {
  std::uint64_t forwarded = 0;
  for (const PacketRecord& p : packets) {
    if (process(p).type == ActionType::kOutput) ++forwarded;
  }
  return forwarded;
}

}  // namespace rhhh
