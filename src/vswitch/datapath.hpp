// The userspace datapath pipeline (mini dpif-netdev): exact-match cache ->
// megaflow classifier -> action, with an optional per-packet measurement
// hook -- exactly where the paper's dataplane integration places the HHH
// update (Section 5.2, "HHH measurement can be performed as part of the OVS
// dataplane").
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "hhh/hhh_types.hpp"
#include "net/packet.hpp"
#include "vswitch/emc.hpp"
#include "vswitch/megaflow.hpp"

namespace rhhh {

namespace obs {
class Counter;          // obs/metrics.hpp -- forward-declared; counters are
class MetricsRegistry;  // bound in datapath.cpp when telemetry is on.
}  // namespace obs

/// Per-packet measurement callback attached to the datapath.
class MeasurementHook {
 public:
  virtual ~MeasurementHook() = default;
  virtual void on_packet(const PacketRecord& p) = 0;
  [[nodiscard]] virtual std::string_view name() const = 0;
};

/// Adapts any HhhAlgorithm into a dataplane hook.
class HhhHook final : public MeasurementHook {
 public:
  explicit HhhHook(HhhAlgorithm& alg) : alg_(&alg) {}
  void on_packet(const PacketRecord& p) override {
    alg_->update(alg_->hierarchy().key_of(p));
  }
  [[nodiscard]] std::string_view name() const override { return alg_->name(); }

 private:
  HhhAlgorithm* alg_;
};

struct DatapathConfig {
  std::size_t emc_capacity = 8192;
  Action default_action = Action::output(1);  ///< applied on classifier miss
  /// Always-on telemetry (src/obs/): process-wide EMC-hit / megaflow-hit /
  /// upcall counters registered against `metrics` (the global registry when
  /// null). One sharded relaxed-atomic add per packet; set false for the
  /// uninstrumented baseline.
  bool telemetry = true;
  obs::MetricsRegistry* metrics = nullptr;
};

class Datapath {
 public:
  struct Stats {
    std::uint64_t received = 0;
    std::uint64_t emc_hits = 0;
    std::uint64_t megaflow_hits = 0;
    std::uint64_t misses = 0;  ///< neither cache nor classifier matched
    std::uint64_t forwarded = 0;
    std::uint64_t dropped = 0;
  };

  explicit Datapath(DatapathConfig cfg = {});

  /// Attach (or detach with nullptr) the measurement hook; non-owning.
  void set_hook(MeasurementHook* hook) noexcept { hook_ = hook; }
  void add_rule(const FlowMask& mask, const FiveTuple& match, Action action) {
    megaflow_.add_rule(mask, match, action);
  }

  /// Full pipeline for one packet; returns the applied action.
  Action process(const PacketRecord& p);

  /// Convenience batch loop; returns packets forwarded.
  std::uint64_t run(std::span<const PacketRecord> packets);

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const ExactMatchCache& emc() const noexcept { return emc_; }
  [[nodiscard]] const MegaflowTable& megaflow() const noexcept { return megaflow_; }

 private:
  ExactMatchCache emc_;
  MegaflowTable megaflow_;
  MeasurementHook* hook_ = nullptr;
  Action default_action_;
  Stats stats_{};
  // Registry-owned process-wide counters (null = telemetry off); several
  // datapaths accumulate into the same families.
  obs::Counter* m_emc_hits_ = nullptr;
  obs::Counter* m_megaflow_hits_ = nullptr;
  obs::Counter* m_upcalls_ = nullptr;
};

}  // namespace rhhh
