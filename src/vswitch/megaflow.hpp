// Megaflow classifier: OVS-style tuple-space search. Rules sharing a
// wildcard mask live in one hash subtable; lookup masks the packet with
// each subtable's mask in insertion-priority order and returns the first
// hit.
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.hpp"
#include "util/flat_hash_map.hpp"
#include "vswitch/flow.hpp"

namespace rhhh {

class MegaflowTable {
 public:
  /// Adds a rule: packets whose masked 5-tuple equals mask.apply(match) get
  /// `action`. Subtables keep the insertion order of their first rule
  /// (earlier masks win on overlap).
  void add_rule(const FlowMask& mask, const FiveTuple& match, Action action);

  /// First-match lookup across subtables; nullptr if nothing matches.
  [[nodiscard]] const Action* lookup(const FiveTuple& t) const noexcept;

  [[nodiscard]] std::size_t subtables() const noexcept { return subtables_.size(); }
  [[nodiscard]] std::size_t rules() const noexcept { return rules_; }

 private:
  struct Subtable {
    FlowMask mask;
    FlatHashMap<FiveTuple, Action, FiveTupleHash> flows{64};
  };
  std::vector<Subtable> subtables_;
  std::size_t rules_ = 0;
};

}  // namespace rhhh
