#include "vswitch/distributed.hpp"

namespace rhhh {

DistributedMeasurement::DistributedMeasurement(const Hierarchy& h,
                                               LatticeParams params,
                                               std::size_t ring_capacity)
    : rhhh_(h, LatticeMode::kRhhh, params),
      ring_(ring_capacity),
      rng_(mix64(params.seed ^ 0xd15717b07ed0ULL)),
      V_(rhhh_.V()),
      H_(rhhh_.H()),
      name_("distributed-" + std::string(rhhh_.name())) {}

DistributedMeasurement::~DistributedMeasurement() { stop(); }

void DistributedMeasurement::start() {
  // order: acq_rel -- the winner of a start/start race proceeds to spawn;
  // release publishes construction to any thread polling running_, acquire
  // keeps a restart from being reordered before a previous stop()'s join.
  if (running_.exchange(true, std::memory_order_acq_rel)) return;
  consumer_ = std::thread([this] { consume(); });
}

void DistributedMeasurement::stop() {
  // order: acq_rel -- release publishes the flip to the consumer's acquire
  // load (it exits after one final drain); acquire pairs with start()'s
  // release so the winning stop() observes the spawned thread it joins.
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  if (consumer_.joinable()) consumer_.join();
  // The consumer drained the ring on exit; fold the full stream length in.
  // order: relaxed -- the caller quiesces the datapath before stop() (the
  // hook contract), so offered_ is final; the join above ordered the
  // consumer's writes, and this read has no payload of its own.
  rhhh_.advance_stream(offered_.load(std::memory_order_relaxed));
}

void DistributedMeasurement::consume() {
  // Batched consumption (SpscRing::try_pop_n): one acquire reload and one
  // release store cover up to a whole batch, so the measurement thread's
  // ring overhead amortizes the same way the engine workers' does.
  constexpr std::size_t kBatch = 128;
  Sample batch[kBatch];
  const auto drain = [&]() -> std::size_t {
    std::size_t total = 0;
    for (std::size_t n; (n = ring_.try_pop_n(batch, kBatch)) != 0;) {
      for (std::size_t i = 0; i < n; ++i) {
        rhhh_.ingest_sampled(batch[i].level, batch[i].key);
      }
      // order: relaxed -- forwarded counter; sample visibility came from
      // the ring's acquire/release pair, not this statistic.
      forwarded_.fetch_add(n, std::memory_order_relaxed);
      total += n;
    }
    return total;
  };
  // order: acquire -- pairs with stop()'s acq_rel exchange: once the flip is
  // observed, every sample pushed before it is visible to the final drain.
  while (running_.load(std::memory_order_acquire)) {
    if (drain() == 0) std::this_thread::yield();
  }
  // Final drain after the producer stopped.
  drain();
}

}  // namespace rhhh
