#include "vswitch/distributed.hpp"

namespace rhhh {

DistributedMeasurement::DistributedMeasurement(const Hierarchy& h,
                                               LatticeParams params,
                                               std::size_t ring_capacity)
    : rhhh_(h, LatticeMode::kRhhh, params),
      ring_(ring_capacity),
      rng_(mix64(params.seed ^ 0xd15717b07ed0ULL)),
      V_(rhhh_.V()),
      H_(rhhh_.H()),
      name_("distributed-" + std::string(rhhh_.name())) {}

DistributedMeasurement::~DistributedMeasurement() { stop(); }

void DistributedMeasurement::start() {
  if (running_.exchange(true)) return;
  consumer_ = std::thread([this] { consume(); });
}

void DistributedMeasurement::stop() {
  if (!running_.exchange(false)) return;
  if (consumer_.joinable()) consumer_.join();
  // The consumer drained the ring on exit; fold the full stream length in.
  rhhh_.advance_stream(offered_.load(std::memory_order_relaxed));
}

void DistributedMeasurement::consume() {
  Sample s;
  while (running_.load(std::memory_order_relaxed)) {
    if (ring_.try_pop(s)) {
      rhhh_.ingest_sampled(s.level, s.key);
      forwarded_.fetch_add(1, std::memory_order_relaxed);
    } else {
      std::this_thread::yield();
    }
  }
  // Final drain after the producer stopped.
  while (ring_.try_pop(s)) {
    rhhh_.ingest_sampled(s.level, s.key);
    forwarded_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace rhhh
