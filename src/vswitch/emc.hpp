// Exact-match cache: the first-level per-flow cache of the OVS userspace
// datapath (dpif-netdev). Two-way set-associative over the full 5-tuple;
// megaflow lookups install their result here so subsequent packets of the
// same flow hit in O(1).
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.hpp"
#include "vswitch/flow.hpp"

namespace rhhh {

class ExactMatchCache {
 public:
  /// `capacity` is rounded up to a power of two (default mirrors OVS's 8192).
  explicit ExactMatchCache(std::size_t capacity = 8192);

  /// Returns the cached action or nullptr on miss.
  [[nodiscard]] const Action* lookup(const FiveTuple& t) noexcept;

  /// Installs (or refreshes) an entry, evicting within the set if needed.
  void insert(const FiveTuple& t, Action a) noexcept;

  void clear() noexcept;
  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }

 private:
  struct Slot {
    FiveTuple key{};
    Action action{};
    bool valid = false;
  };
  static constexpr std::size_t kWays = 2;

  [[nodiscard]] std::size_t set_of(const FiveTuple& t) const noexcept {
    return (FiveTupleHash{}(t) >> 8) & set_mask_;
  }

  std::vector<Slot> slots_;
  std::size_t set_mask_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t tick_ = 0;  // round-robin victim selection within a set
};

}  // namespace rhhh
