// Binary trace files ("RHHT" format): persist and replay PacketRecord
// streams so experiments can be re-run on identical inputs and shared
// between the example tools and the benchmark harness.
//
// Layout (little-endian):
//   header: magic "RHHT" (4 bytes), version u32, count u64
//   record: src u32 | dst u32 | sport u16 | dport u16 | proto u8 | pad u8
//           | length u16 | ts_us u32                            (20 bytes)
#pragma once

#include <cstdint>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "net/packet.hpp"

namespace rhhh {

inline constexpr std::uint32_t kTraceMagic = 0x54484852u;  // "RHHT" LE
inline constexpr std::uint32_t kTraceVersion = 1;
inline constexpr std::size_t kTraceRecordSize = 20;

class TraceWriter {
 public:
  /// Opens (truncates) `path`; throws std::runtime_error on failure.
  explicit TraceWriter(const std::string& path);
  ~TraceWriter();
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  void write(const PacketRecord& p);
  /// Flushes and patches the record count into the header. Idempotent;
  /// called by the destructor if not called explicitly.
  void close();
  [[nodiscard]] std::uint64_t written() const noexcept { return count_; }

 private:
  std::ofstream out_;
  std::uint64_t count_ = 0;
  bool closed_ = false;
};

class TraceReader {
 public:
  /// Opens and validates the header; throws std::runtime_error on failure
  /// or malformed header.
  explicit TraceReader(const std::string& path);

  /// Next record, or nullopt at end of stream.
  [[nodiscard]] std::optional<PacketRecord> next();
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }

  /// Convenience: slurp a whole file.
  [[nodiscard]] static std::vector<PacketRecord> read_all(const std::string& path);

 private:
  std::ifstream in_;
  std::uint64_t count_ = 0;
  std::uint64_t read_ = 0;
};

}  // namespace rhhh
