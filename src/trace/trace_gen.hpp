// Synthetic packet-trace generation.
//
// Stand-in for the paper's four CAIDA backbone captures (Chicago 2015/2016,
// San Jose 2013/2014, 1B packets each). Each preset fixes a seed, a flow
// popularity skew and per-byte address skews, producing a deterministic,
// heavy-tailed, hierarchically structured stream (see DESIGN.md,
// Substitutions, for why this preserves the evaluated behaviour).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "net/packet.hpp"
#include "trace/address_model.hpp"
#include "trace/zipf.hpp"
#include "util/random.hpp"

namespace rhhh {

struct TraceConfig {
  std::string name = "synthetic";
  std::uint64_t seed = 1;
  std::uint64_t num_flows = 1u << 20;
  double flow_skew = 1.05;  ///< Zipf exponent over flow popularity
  std::array<double, 4> src_byte_skew{1.2, 1.0, 0.9, 0.7};
  std::array<double, 4> dst_byte_skew{1.1, 1.0, 0.8, 0.6};
  double tcp_share = 0.62;   ///< remaining split between UDP and a little ICMP
  double icmp_share = 0.02;
};

/// The four named presets (chicago15, chicago16, sanjose13, sanjose14);
/// throws std::invalid_argument for unknown names.
[[nodiscard]] TraceConfig trace_preset(std::string_view name);
[[nodiscard]] const std::vector<std::string>& trace_preset_names();

class TraceGenerator {
 public:
  explicit TraceGenerator(TraceConfig cfg);

  /// Next packet in the stream (deterministic given the config).
  [[nodiscard]] PacketRecord next();

  /// Generate a batch (appends nothing; returns a fresh vector).
  [[nodiscard]] std::vector<PacketRecord> generate(std::size_t n);

  [[nodiscard]] const TraceConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] std::uint64_t packets_emitted() const noexcept { return emitted_; }

 private:
  TraceConfig cfg_;
  Xoroshiro128 rng_;
  ZipfDistribution flow_dist_;
  HierarchicalAddressModel src_model_;
  HierarchicalAddressModel dst_model_;
  std::uint32_t ts_us_ = 0;
  std::uint64_t emitted_ = 0;

  // Hot-flow address cache: Zipf makes low flow ids dominate, so caching the
  // first 64Ki flows removes nearly all per-packet address synthesis.
  static constexpr std::size_t kCacheSize = 1u << 16;
  struct CachedFlow {
    Ipv4 src = 0;
    Ipv4 dst = 0;
    bool valid = false;
  };
  std::vector<CachedFlow> cache_;
};

}  // namespace rhhh
