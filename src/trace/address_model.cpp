#include "trace/address_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/bits.hpp"
#include "util/random.hpp"

namespace rhhh {

HierarchicalAddressModel::HierarchicalAddressModel(
    std::uint64_t seed, const std::array<double, 4>& byte_skews)
    : seed_(seed) {
  for (int k = 0; k < 4; ++k) {
    auto& cdf = cdf_[static_cast<std::size_t>(k)];
    auto& perm = perm_[static_cast<std::size_t>(k)];
    const double s = byte_skews[static_cast<std::size_t>(k)];

    // Exact Zipf pmf over ranks 1..256 (rank r has weight (r)^-s).
    std::array<double, 256> w{};
    double total = 0.0;
    for (int r = 0; r < 256; ++r) {
      w[static_cast<std::size_t>(r)] =
          s <= 0.0 ? 1.0 : std::pow(static_cast<double>(r + 1), -s);
      total += w[static_cast<std::size_t>(r)];
    }
    double acc = 0.0;
    for (int r = 0; r < 256; ++r) {
      acc += w[static_cast<std::size_t>(r)] / total;
      const double scaled = acc * 4294967296.0;
      cdf[static_cast<std::size_t>(r)] = static_cast<std::uint32_t>(
          std::min(scaled, 4294967295.0));
    }
    cdf[255] = 0xffffffffu;  // exact closure despite rounding

    // Fisher-Yates permutation of byte values, seeded per (seed, k).
    for (int v = 0; v < 256; ++v) perm[static_cast<std::size_t>(v)] =
        static_cast<std::uint8_t>(v);
    Xoroshiro128 rng(mix64(seed ^ (0xa24baed4963ee407ULL + static_cast<std::uint64_t>(k))));
    for (int v = 255; v > 0; --v) {
      const auto j = rng.bounded(static_cast<std::uint32_t>(v + 1));
      std::swap(perm[static_cast<std::size_t>(v)], perm[j]);
    }
  }
}

std::uint8_t HierarchicalAddressModel::byte_at(std::uint64_t flow_id, int k) const noexcept {
  const auto& cdf = cdf_[static_cast<std::size_t>(k)];
  // Deterministic 32-bit draw per (flow, byte position).
  const auto u = static_cast<std::uint32_t>(
      mix64(flow_id ^ (seed_ + 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(k) + 1))) >> 32);
  const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
  const auto rank = static_cast<std::size_t>(it - cdf.begin());
  return perm_[static_cast<std::size_t>(k)][rank];
}

Ipv4 HierarchicalAddressModel::address(std::uint64_t flow_id) const noexcept {
  return ipv4(byte_at(flow_id, 0), byte_at(flow_id, 1), byte_at(flow_id, 2),
              byte_at(flow_id, 3));
}

Ipv6 HierarchicalAddressModel::address6(std::uint64_t flow_id) const noexcept {
  // Derive 16 bytes from four independent skewed draws per quarter: byte
  // positions 0..3 reuse skew profile 0..3 within each 4-byte group, with a
  // distinct flow perturbation per group so groups are not identical.
  Ipv6 out{};
  for (int group = 0; group < 4; ++group) {
    std::uint32_t word = 0;
    const std::uint64_t fid = flow_id ^ (0x6c62272e07bb0142ULL * static_cast<std::uint64_t>(group));
    for (int k = 0; k < 4; ++k) {
      word = (word << 8) | byte_at(fid, k);
    }
    if (group < 2) {
      out.hi = (out.hi << 32) | word;
    } else {
      out.lo = (out.lo << 32) | word;
    }
  }
  return out;
}

}  // namespace rhhh
