#include "trace/trace_io.hpp"

#include <array>
#include <cstring>
#include <stdexcept>

namespace rhhh {

namespace {

void put_u16(std::uint8_t* p, std::uint16_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}
void put_u32(std::uint8_t* p, std::uint32_t v) noexcept {
  put_u16(p, static_cast<std::uint16_t>(v));
  put_u16(p + 2, static_cast<std::uint16_t>(v >> 16));
}
void put_u64(std::uint8_t* p, std::uint64_t v) noexcept {
  put_u32(p, static_cast<std::uint32_t>(v));
  put_u32(p + 4, static_cast<std::uint32_t>(v >> 32));
}
[[nodiscard]] std::uint16_t get_u16(const std::uint8_t* p) noexcept {
  return static_cast<std::uint16_t>(p[0] | (std::uint16_t{p[1]} << 8));
}
[[nodiscard]] std::uint32_t get_u32(const std::uint8_t* p) noexcept {
  return get_u16(p) | (std::uint32_t{get_u16(p + 2)} << 16);
}
[[nodiscard]] std::uint64_t get_u64(const std::uint8_t* p) noexcept {
  return get_u32(p) | (std::uint64_t{get_u32(p + 4)} << 32);
}

constexpr std::size_t kHeaderSize = 16;

}  // namespace

TraceWriter::TraceWriter(const std::string& path)
    : out_(path, std::ios::binary | std::ios::trunc) {
  if (!out_) throw std::runtime_error("TraceWriter: cannot open " + path);
  std::array<std::uint8_t, kHeaderSize> h{};
  put_u32(h.data(), kTraceMagic);
  put_u32(h.data() + 4, kTraceVersion);
  put_u64(h.data() + 8, 0);  // patched in close()
  out_.write(reinterpret_cast<const char*>(h.data()), kHeaderSize);
}

TraceWriter::~TraceWriter() {
  try {
    close();
  } catch (...) {
    // Destructor must not throw; an incomplete file keeps count = 0 in the
    // header and is rejected only if truncated mid-record.
  }
}

void TraceWriter::write(const PacketRecord& p) {
  std::array<std::uint8_t, kTraceRecordSize> r{};
  put_u32(r.data(), p.src_ip);
  put_u32(r.data() + 4, p.dst_ip);
  put_u16(r.data() + 8, p.src_port);
  put_u16(r.data() + 10, p.dst_port);
  r[12] = p.proto;
  r[13] = 0;
  put_u16(r.data() + 14, p.length);
  put_u32(r.data() + 16, p.ts_us);
  out_.write(reinterpret_cast<const char*>(r.data()), kTraceRecordSize);
  if (!out_) throw std::runtime_error("TraceWriter: write failed");
  ++count_;
}

void TraceWriter::close() {
  if (closed_) return;
  closed_ = true;
  std::array<std::uint8_t, 8> c{};
  put_u64(c.data(), count_);
  out_.seekp(8);
  out_.write(reinterpret_cast<const char*>(c.data()), 8);
  out_.flush();
  if (!out_) throw std::runtime_error("TraceWriter: close failed");
}

TraceReader::TraceReader(const std::string& path) : in_(path, std::ios::binary) {
  if (!in_) throw std::runtime_error("TraceReader: cannot open " + path);
  std::array<std::uint8_t, kHeaderSize> h{};
  in_.read(reinterpret_cast<char*>(h.data()), kHeaderSize);
  if (in_.gcount() != kHeaderSize || get_u32(h.data()) != kTraceMagic) {
    throw std::runtime_error("TraceReader: bad header in " + path);
  }
  if (get_u32(h.data() + 4) != kTraceVersion) {
    throw std::runtime_error("TraceReader: unsupported version in " + path);
  }
  count_ = get_u64(h.data() + 8);
}

std::optional<PacketRecord> TraceReader::next() {
  if (read_ >= count_) return std::nullopt;
  std::array<std::uint8_t, kTraceRecordSize> r{};
  in_.read(reinterpret_cast<char*>(r.data()), kTraceRecordSize);
  if (in_.gcount() != static_cast<std::streamsize>(kTraceRecordSize)) {
    throw std::runtime_error("TraceReader: truncated record");
  }
  PacketRecord p;
  p.src_ip = get_u32(r.data());
  p.dst_ip = get_u32(r.data() + 4);
  p.src_port = get_u16(r.data() + 8);
  p.dst_port = get_u16(r.data() + 10);
  p.proto = r[12];
  p.length = get_u16(r.data() + 14);
  p.ts_us = get_u32(r.data() + 16);
  ++read_;
  return p;
}

std::vector<PacketRecord> TraceReader::read_all(const std::string& path) {
  TraceReader reader(path);
  std::vector<PacketRecord> out;
  out.reserve(reader.count());
  while (auto p = reader.next()) out.push_back(*p);
  return out;
}

}  // namespace rhhh
