// Hierarchically skewed address synthesis.
//
// The algorithms under test aggregate traffic along prefixes, so the
// synthetic traces must exhibit skew at *every* hierarchy level, as real
// backbone traffic does. Each address byte is drawn from an exact Zipf pmf
// over 0..255 (skew decreasing with depth: /8s are more concentrated than
// host bytes) and passed through a seeded byte permutation so different
// trace presets place their heavy prefixes in different parts of the
// address space. Flow id -> address is deterministic.
#pragma once

#include <array>
#include <cstdint>

#include "net/ipv4.hpp"
#include "net/ipv6.hpp"

namespace rhhh {

class HierarchicalAddressModel {
 public:
  /// `byte_skews[k]` is the Zipf exponent for byte k (k = 0 is the most
  /// significant byte). A skew of 0 gives a uniform byte.
  HierarchicalAddressModel(std::uint64_t seed, const std::array<double, 4>& byte_skews);

  /// Deterministic IPv4 address for a flow id.
  [[nodiscard]] Ipv4 address(std::uint64_t flow_id) const noexcept;

  /// Deterministic IPv6 address for a flow id: the IPv4-style skewed bytes
  /// are expanded over 16 bytes (each nibble pattern repeated) so that
  /// prefix-level structure exists along the whole 128-bit hierarchy.
  [[nodiscard]] Ipv6 address6(std::uint64_t flow_id) const noexcept;

 private:
  [[nodiscard]] std::uint8_t byte_at(std::uint64_t flow_id, int k) const noexcept;

  // cdf_[k][v]: P(byte <= v) scaled to 2^32, inverted by binary search.
  std::array<std::array<std::uint32_t, 256>, 4> cdf_{};
  std::array<std::array<std::uint8_t, 256>, 4> perm_{};
  std::uint64_t seed_;
};

}  // namespace rhhh
