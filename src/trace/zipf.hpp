// Bounded Zipf distribution via rejection-inversion sampling
// [Hoermann & Derflinger 1996], the standard exact method for
// Zipf(n, s) without precomputing harmonic tables.
//
// Internet flow-size distributions are heavy-tailed; the synthetic traces
// standing in for the paper's CAIDA captures draw flow popularity from this
// distribution (DESIGN.md, Substitutions).
#pragma once

#include <cstdint>

#include "util/random.hpp"

namespace rhhh {

/// Zipf over {1, ..., n} with P(k) proportional to k^-s. Smaller k = more
/// popular. Exponent s > 0 (s near 1 is typical for flow popularity).
class ZipfDistribution {
 public:
  ZipfDistribution(std::uint64_t n, double s);

  [[nodiscard]] std::uint64_t n() const noexcept { return n_; }
  [[nodiscard]] double s() const noexcept { return s_; }

  /// Draws one sample in [1, n].
  [[nodiscard]] std::uint64_t operator()(Xoroshiro128& rng) const noexcept;

 private:
  [[nodiscard]] double h(double x) const noexcept;
  [[nodiscard]] double h_integral(double x) const noexcept;
  [[nodiscard]] double h_integral_inverse(double v) const noexcept;

  std::uint64_t n_;
  double s_;
  bool log_mode_;  // |s - 1| tiny: use the logarithmic branch
  double h_x1_;
  double h_n_;
  double threshold_;
};

}  // namespace rhhh
