#include "trace/zipf.hpp"

#include <cmath>
#include <stdexcept>

namespace rhhh {

ZipfDistribution::ZipfDistribution(std::uint64_t n, double s) : n_(n), s_(s) {
  if (n == 0) throw std::invalid_argument("ZipfDistribution: n must be > 0");
  if (!(s > 0.0)) throw std::invalid_argument("ZipfDistribution: s must be > 0");
  log_mode_ = std::fabs(s - 1.0) < 1e-9;
  h_x1_ = h_integral(1.5) - 1.0;
  h_n_ = h_integral(static_cast<double>(n) + 0.5);
  threshold_ = 2.0 - h_integral_inverse(h_integral(2.5) - h(2.0));
}

double ZipfDistribution::h(double x) const noexcept {
  return log_mode_ ? 1.0 / x : std::pow(x, -s_);
}

double ZipfDistribution::h_integral(double x) const noexcept {
  if (log_mode_) return std::log(x);
  return (std::pow(x, 1.0 - s_) - 1.0) / (1.0 - s_);
}

double ZipfDistribution::h_integral_inverse(double v) const noexcept {
  if (log_mode_) return std::exp(v);
  double t = v * (1.0 - s_) + 1.0;
  if (t < 0.0) t = 0.0;  // numerical guard near the tail
  return std::pow(t, 1.0 / (1.0 - s_));
}

std::uint64_t ZipfDistribution::operator()(Xoroshiro128& rng) const noexcept {
  // Rejection-inversion (Apache Commons RejectionInversionZipfSampler
  // formulation): invert on the integral envelope, accept with the exact pmf.
  while (true) {
    const double u = h_n_ + rng.uniform01() * (h_x1_ - h_n_);
    const double x = h_integral_inverse(u);
    std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
    if (k < 1) {
      k = 1;
    } else if (k > n_) {
      k = n_;
    }
    const double kd = static_cast<double>(k);
    if (kd - x <= threshold_ || u >= h_integral(kd + 0.5) - h(kd)) {
      return k;
    }
  }
}

}  // namespace rhhh
