#include "trace/trace_gen.hpp"

#include <stdexcept>

#include "util/bits.hpp"

namespace rhhh {

TraceConfig trace_preset(std::string_view name) {
  TraceConfig cfg;
  cfg.name = std::string(name);
  if (name == "chicago15") {
    cfg.seed = 0xC41CA600151217ULL;
    cfg.flow_skew = 1.03;
    cfg.num_flows = 1u << 20;
    cfg.src_byte_skew = {1.25, 1.05, 0.90, 0.70};
    cfg.dst_byte_skew = {1.10, 0.95, 0.85, 0.65};
  } else if (name == "chicago16") {
    cfg.seed = 0xC41CA600160218ULL;
    cfg.flow_skew = 1.08;
    cfg.num_flows = 3u << 19;
    cfg.src_byte_skew = {1.30, 1.00, 0.85, 0.70};
    cfg.dst_byte_skew = {1.15, 1.00, 0.80, 0.60};
  } else if (name == "sanjose13") {
    cfg.seed = 0x5A4705E00131219ULL;
    cfg.flow_skew = 0.98;
    cfg.num_flows = 1u << 21;
    cfg.src_byte_skew = {1.20, 1.05, 0.95, 0.75};
    cfg.dst_byte_skew = {1.05, 0.95, 0.85, 0.70};
  } else if (name == "sanjose14") {
    cfg.seed = 0x5A4705E00140619ULL;
    cfg.flow_skew = 1.12;
    cfg.num_flows = 1u << 20;
    cfg.src_byte_skew = {1.35, 1.10, 0.90, 0.65};
    cfg.dst_byte_skew = {1.20, 1.00, 0.85, 0.60};
  } else {
    throw std::invalid_argument("unknown trace preset: " + cfg.name);
  }
  return cfg;
}

const std::vector<std::string>& trace_preset_names() {
  static const std::vector<std::string> names = {"chicago15", "chicago16",
                                                 "sanjose13", "sanjose14"};
  return names;
}

TraceGenerator::TraceGenerator(TraceConfig cfg)
    : cfg_(std::move(cfg)),
      rng_(cfg_.seed),
      flow_dist_(cfg_.num_flows, cfg_.flow_skew),
      src_model_(mix64(cfg_.seed ^ 0x535243ULL), cfg_.src_byte_skew),
      dst_model_(mix64(cfg_.seed ^ 0x445354ULL), cfg_.dst_byte_skew),
      cache_(kCacheSize) {}

PacketRecord TraceGenerator::next() {
  const std::uint64_t flow = flow_dist_(rng_);
  PacketRecord p;
  if (flow < kCacheSize) {
    CachedFlow& c = cache_[flow];
    if (!c.valid) {
      c.src = src_model_.address(flow);
      c.dst = dst_model_.address(flow);
      c.valid = true;
    }
    p.src_ip = c.src;
    p.dst_ip = c.dst;
  } else {
    p.src_ip = src_model_.address(flow);
    p.dst_ip = dst_model_.address(flow);
  }

  // Ports / protocol / size are flow-deterministic so the same flow looks
  // consistent across its packets.
  const std::uint64_t fh = mix64(flow ^ cfg_.seed);
  const double proto_roll = static_cast<double>(fh & 0xffff) * 0x1p-16;
  if (proto_roll < cfg_.icmp_share) {
    p.proto = static_cast<std::uint8_t>(IpProto::kIcmp);
    p.src_port = 0;
    p.dst_port = 0;
  } else {
    p.proto = static_cast<std::uint8_t>(
        proto_roll < cfg_.icmp_share + cfg_.tcp_share ? IpProto::kTcp : IpProto::kUdp);
    p.src_port = static_cast<std::uint16_t>(1024 + ((fh >> 16) % 60000));
    p.dst_port = static_cast<std::uint16_t>((fh >> 40) % 9 == 0
                                                ? 443
                                                : ((fh >> 32) % 10 == 0 ? 80 : 53));
  }
  // Packet size mix: mostly small (ACK-sized), some MTU-sized.
  const std::uint32_t size_roll = rng_.bounded(10);
  p.length = size_roll < 5 ? 64 : (size_roll < 8 ? 576 : 1500);
  ts_us_ += 1 + rng_.bounded(3);
  p.ts_us = ts_us_;
  ++emitted_;
  return p;
}

std::vector<PacketRecord> TraceGenerator::generate(std::size_t n) {
  std::vector<PacketRecord> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(next());
  return out;
}

}  // namespace rhhh
