// Count Sketch [Charikar, Chen & Farach-Colton, ICALP'02] with a tracked
// top-k candidate list -- the second sketch family the paper cites as
// applicable per-node structure (reference [9], discussed after
// Definition 4).
//
// Each row adds a random sign; the estimate is the median across rows, so
// unlike Count-Min the error is two-sided but unbiased:
// |est - f| <= eps * N per row pair w.h.p. for the depths used here.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "hh/backend.hpp"
#include "util/flat_hash_map.hpp"
#include "util/key128.hpp"

namespace rhhh {

template <class Key, class Hash = KeyHash<Key>>
class CountSketchHh {
 public:
  CountSketchHh(double eps, double delta, std::size_t track_capacity,
                std::uint64_t seed)
      : eps_(eps), track_cap_(track_capacity) {
    if (!(eps > 0.0) || eps >= 1.0) {
      throw std::invalid_argument("CountSketchHh: eps must be in (0,1)");
    }
    if (!(delta > 0.0) || delta >= 1.0) {
      throw std::invalid_argument("CountSketchHh: delta must be in (0,1)");
    }
    if (track_capacity == 0) {
      throw std::invalid_argument("CountSketchHh: track capacity must be > 0");
    }
    width_ = static_cast<std::size_t>(std::ceil(3.0 / (eps * eps))) | 1;
    // Count Sketch widths grow as eps^-2; cap the table so the backend stays
    // usable at small eps (the error guarantee then degrades gracefully,
    // which the ablation reports honestly).
    width_ = std::min<std::size_t>(width_, 1 << 16);
    depth_ = static_cast<std::size_t>(std::ceil(std::log(1.0 / delta))) | 1;  // odd
    depth_ = std::min(depth_, kMaxDepth - 1) | 1;
    rows_.assign(width_ * depth_, 0);
    row_seed_.resize(depth_);
    for (std::size_t d = 0; d < depth_; ++d) row_seed_[d] = mix64(seed + 31 * d + 7);
    tracked_.reserve(2 * track_cap_ + 1);
  }

  [[nodiscard]] static CountSketchHh make(const BackendConfig& cfg) {
    return CountSketchHh(cfg.eps_a, cfg.delta_a, cfg.capacity, cfg.seed);
  }

  /// Batched hash/probe split (see space_saving.hpp for the contract).
  [[nodiscard]] static std::uint64_t hash_of(const Key& k) noexcept {
    return Hash{}(k);
  }

  /// Pull every row cell for hash `h` toward L1 ahead of increment_hashed().
  void prefetch(std::uint64_t h) const noexcept {
    for (std::size_t d = 0; d < depth_; ++d) {
      const std::uint64_t hd = mix64(h ^ row_seed_[d]);
      __builtin_prefetch(rows_.data() + d * width_ + hd % width_, 1, 3);
    }
  }

  void increment(const Key& k, std::uint64_t w = 1) {
    increment_hashed(k, Hash{}(k), w);
  }

  /// increment() with the key hash precomputed. The per-row mix64 chain is
  /// staged into a stack array (data-parallel across rows, vectorizable)
  /// before the signed cell updates.
  void increment_hashed(const Key& k, std::uint64_t h, std::uint64_t w = 1) {
    if (w == 0) return;
    total_ += w;
    std::uint64_t hd[kMaxDepth];
    for (std::size_t d = 0; d < depth_; ++d) hd[d] = mix64(h ^ row_seed_[d]);
    for (std::size_t d = 0; d < depth_; ++d) {
      const std::size_t slot = static_cast<std::size_t>(hd[d] % width_);
      const std::int64_t sign = (hd[d] >> 63) != 0 ? 1 : -1;
      rows_[d * width_ + slot] += sign * static_cast<std::int64_t>(w);
    }
    track(k);
  }

  /// Median-of-rows point estimate (can be negative for cold keys).
  [[nodiscard]] std::int64_t estimate(const Key& k) const {
    std::vector<std::int64_t> est(depth_);
    const std::uint64_t h = Hash{}(k);
    for (std::size_t d = 0; d < depth_; ++d) {
      const std::uint64_t hd = mix64(h ^ row_seed_[d]);
      const std::size_t slot = static_cast<std::size_t>(hd % width_);
      const std::int64_t sign = (hd >> 63) != 0 ? 1 : -1;
      est[d] = sign * rows_[d * width_ + slot];
    }
    std::nth_element(est.begin(), est.begin() + static_cast<std::ptrdiff_t>(depth_ / 2),
                     est.end());
    return est[depth_ / 2];
  }

  [[nodiscard]] std::uint64_t upper(const Key& k) const {
    const std::int64_t e = estimate(k);
    const auto slack = static_cast<std::int64_t>(eps_ * static_cast<double>(total_));
    return static_cast<std::uint64_t>(std::max<std::int64_t>(0, e + slack));
  }
  [[nodiscard]] std::uint64_t lower(const Key& k) const {
    const std::int64_t e = estimate(k);
    const auto slack = static_cast<std::int64_t>(eps_ * static_cast<double>(total_));
    return static_cast<std::uint64_t>(std::max<std::int64_t>(0, e - slack));
  }

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t size() const noexcept { return tracked_.size(); }
  [[nodiscard]] std::size_t width() const noexcept { return width_; }
  [[nodiscard]] std::size_t depth() const noexcept { return depth_; }

  /// Introspection snapshot for the estimator health layer: per-row fill
  /// (nonzero signed cells) and the eps_a * N noise estimate. Scans the
  /// whole counter array -- probe-time (rotation/scrape) only.
  [[nodiscard]] BackendProbe probe() const noexcept {
    BackendProbe p;
    p.total = total_;
    p.capacity = width_ * depth_;
    for (std::size_t d = 0; d < depth_; ++d) {
      std::size_t fill = 0;
      for (std::size_t i = 0; i < width_; ++i) {
        fill += rows_[d * width_ + i] != 0 ? 1 : 0;
      }
      p.occupancy += fill;
      p.saturation = std::max(
          p.saturation, static_cast<double>(fill) / static_cast<double>(width_));
    }
    p.noise = eps_ * static_cast<double>(total_);
    return p;
  }

  template <class F>
  void for_each(F&& f) const {
    tracked_.for_each([&](const Key& k, const std::uint64_t&) {
      const std::uint64_t up = upper(k);
      const std::uint64_t lo = lower(k);
      f(k, up, lo < up ? lo : up);
    });
  }

  [[nodiscard]] std::vector<HhEntry<Key>> entries() const {
    std::vector<HhEntry<Key>> out;
    out.reserve(tracked_.size());
    for_each([&](const Key& k, std::uint64_t up, std::uint64_t lo) {
      out.push_back(HhEntry<Key>{k, up, lo});
    });
    return out;
  }

  void clear() {
    std::fill(rows_.begin(), rows_.end(), 0);
    tracked_.clear();
    total_ = 0;
  }

  /// Merge another sketch observing a *different* stream: Count Sketch is a
  /// linear sketch, so the combined sketch is the element-wise sum of the
  /// signed counter arrays (signs are a function of the hash seeds, which
  /// must match) and the unbiased median estimate carries over to the
  /// combined stream. Requires identical dimensions and per-row hash
  /// seeds; throws std::invalid_argument otherwise. The candidate list is
  /// re-pruned against the merged rows.
  void merge(const CountSketchHh& other) {
    if (width_ != other.width_ || depth_ != other.depth_ ||
        row_seed_ != other.row_seed_) {
      throw std::invalid_argument(
          "CountSketchHh::merge: incompatible sketch dimensions or hash seeds");
    }
    for (std::size_t i = 0; i < rows_.size(); ++i) rows_[i] += other.rows_[i];
    total_ += other.total_;
    // track() prunes by re-estimating against the merged rows, so offering
    // the other side's candidates keeps the strongest of both. Snapshot the
    // keys first: track() mutates tracked_, and `other` may alias *this on
    // a self-merge (same convention as SpaceSaving::merge).
    std::vector<Key> candidates;
    candidates.reserve(other.tracked_.size());
    other.tracked_.for_each(
        [&](const Key& k, const std::uint64_t&) { candidates.push_back(k); });
    for (const Key& k : candidates) track(k);
  }

 private:
  /// Depth bound for the increment_hashed() stack staging; depth_ is
  /// ceil(ln 1/delta) | 1, so 64 covers every representable configuration.
  static constexpr std::size_t kMaxDepth = 64;

  void track(const Key& k) {
    tracked_.insert_or_assign(k, 1);
    if (tracked_.size() <= 2 * track_cap_) return;
    std::vector<std::pair<std::int64_t, Key>> all;
    all.reserve(tracked_.size());
    tracked_.for_each([&](const Key& key, const std::uint64_t&) {
      all.emplace_back(estimate(key), key);
    });
    std::nth_element(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(track_cap_),
                     all.end(),
                     [](const auto& a, const auto& b) { return a.first > b.first; });
    tracked_.clear();
    for (std::size_t i = 0; i < track_cap_; ++i) {
      tracked_.insert_or_assign(all[i].second, 1);
    }
  }

  std::vector<std::int64_t> rows_;
  std::vector<std::uint64_t> row_seed_;
  FlatHashMap<Key, std::uint64_t, Hash> tracked_{64};
  double eps_;
  std::size_t width_ = 0;
  std::size_t depth_ = 0;
  std::size_t track_cap_;
  std::uint64_t total_ = 0;
};

}  // namespace rhhh
