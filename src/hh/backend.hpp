// Common vocabulary for heavy-hitter counter backends.
//
// RHHH is backend-agnostic (paper Definition 4): any counter algorithm that
// solves (eps, delta)-Frequency Estimation and can enumerate its heavy
// hitters plugs into the lattice. Every backend in src/hh implements:
//
//   void   increment(const Key&, uint64_t w)   -- process one arrival
//   uint64_t upper(const Key&) const           -- upper bound on arrivals
//   uint64_t lower(const Key&) const           -- lower bound on arrivals
//   uint64_t total() const                     -- arrivals seen
//   void   for_each(f) const                   -- f(key, upper, lower) per
//                                                  tracked candidate
//   std::vector<HhEntry<Key>> entries() const
//   void   clear()
//   static B make(const BackendConfig&)        -- uniform construction
//
// Bounds contract: lower(k) <= f_k <= upper(k) for every key (for the
// sketch backend the upper/lower bounds hold with probability 1 - delta_a,
// which Definition 4 permits).
#pragma once

#include <cstddef>
#include <cstdint>

namespace rhhh {

template <class Key>
struct HhEntry {
  Key key{};
  std::uint64_t upper = 0;
  std::uint64_t lower = 0;
};

/// Uniform construction parameters for all backends. `capacity` is the
/// number of tracked counters (Space-Saving / Misra-Gries); eps_a = 1 /
/// capacity is the equivalent additive-error parameter used by the
/// window/sketch backends.
struct BackendConfig {
  std::size_t capacity = 1000;
  double eps_a = 1e-3;
  double delta_a = 1e-3;  ///< only the sketch backend consumes this
  std::uint64_t seed = 0;
};

/// Cheap introspection snapshot of one backend instance, read at probe time
/// (rotation / scrape) -- never on the packet path. Backends that support
/// it expose `BackendProbe probe() const`; the estimator health layer
/// (src/obs/health) folds per-node probes into per-window accuracy
/// certificates. Plain data only: this header rides in every hot-path TU.
struct BackendProbe {
  std::uint64_t total = 0;      ///< arrivals into this instance
  std::uint64_t min_count = 0;  ///< Space-Saving untracked upper bound
  std::uint64_t evictions = 0;  ///< cumulative roster evictions (Space-Saving)
  std::size_t occupancy = 0;    ///< tracked counters / nonzero sketch cells
  std::size_t capacity = 0;     ///< roster slots / total sketch cells
  double saturation = 0.0;      ///< roster fill, or max per-row sketch fill
  double noise = 0.0;           ///< estimated collision noise (eps_a * total)
};

}  // namespace rhhh
