// Misra-Gries / "Frequent" [Karp, Shenker & Papadimitriou, TODS'03].
//
// Alternate heavy-hitter backend for the Definition 4 ablation: k counters,
// arrivals of untracked keys when full trigger a decrement-all by the
// minimum count. Amortized O(1) per unit update (each decrement-all is paid
// for by the mass it removes), worst case O(k).
//
// Bounds (N = total arrivals): count <= f <= count + dec, dec <= N/(k+1).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "hh/backend.hpp"
#include "util/flat_hash_map.hpp"
#include "util/key128.hpp"

namespace rhhh {

template <class Key, class Hash = KeyHash<Key>>
class MisraGries {
 public:
  explicit MisraGries(std::size_t k) : counts_(2 * k), k_(k) {
    if (k == 0) throw std::invalid_argument("MisraGries: capacity must be > 0");
    counts_.reserve(k_ + 1);
  }

  [[nodiscard]] static MisraGries make(const BackendConfig& cfg) {
    return MisraGries(cfg.capacity);
  }

  void increment(const Key& k, std::uint64_t w = 1) {
    if (w == 0) return;
    total_ += w;
    if (std::uint64_t* v = counts_.find(k)) {
      *v += w;
      return;
    }
    counts_.try_emplace(k, w);
    if (counts_.size() <= k_) return;

    // Decrement everything by the minimum; at least one counter hits zero.
    std::uint64_t m = UINT64_MAX;
    counts_.for_each([&](const Key&, std::uint64_t& c) {
      if (c < m) m = c;
    });
    dec_ += m;
    dead_.clear();
    counts_.for_each([&](const Key& key, std::uint64_t& c) {
      c -= m;
      if (c == 0) dead_.push_back(key);
    });
    for (const Key& key : dead_) counts_.erase(key);
  }

  [[nodiscard]] std::uint64_t upper(const Key& k) const noexcept {
    const std::uint64_t* v = counts_.find(k);
    return (v != nullptr ? *v : 0) + dec_;
  }
  [[nodiscard]] std::uint64_t lower(const Key& k) const noexcept {
    const std::uint64_t* v = counts_.find(k);
    return v != nullptr ? *v : 0;
  }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t size() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return k_; }
  /// Total decrement mass (the additive error bound for every key).
  [[nodiscard]] std::uint64_t decrements() const noexcept { return dec_; }

  template <class F>
  void for_each(F&& f) const {
    counts_.for_each(
        [&](const Key& k, const std::uint64_t& c) { f(k, c + dec_, c); });
  }

  [[nodiscard]] std::vector<HhEntry<Key>> entries() const {
    std::vector<HhEntry<Key>> out;
    out.reserve(counts_.size());
    for_each([&](const Key& k, std::uint64_t up, std::uint64_t lo) {
      out.push_back(HhEntry<Key>{k, up, lo});
    });
    return out;
  }

  void clear() {
    counts_.clear();
    total_ = 0;
    dec_ = 0;
  }

 private:
  FlatHashMap<Key, std::uint64_t, Hash> counts_;
  std::vector<Key> dead_;
  std::size_t k_;
  std::uint64_t total_ = 0;
  std::uint64_t dec_ = 0;
};

}  // namespace rhhh
