// Space-Saving [Metwally, Agrawal & El Abbadi, ICDT'05] on the
// stream-summary structure.
//
// This is the paper's heavy-hitter building block (one instance per lattice
// node). The stream-summary keeps counters grouped into buckets of equal
// count, buckets in a doubly-linked list sorted by count, so a unit
// increment moves a counter to the adjacent bucket in O(1) *worst case* --
// the property Theorem 6.18 relies on for RHHH's O(1) update bound.
//
// Guarantees (m = capacity, N = total arrivals into this instance):
//   * tracked:   count - error <= f <= count, with error <= N/m
//   * untracked: f <= min-count over tracked counters (<= N/m)
//   * every key with f > N/m is tracked (heavy-hitter recall)
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "hh/backend.hpp"
#include "util/flat_hash_map.hpp"
#include "util/key128.hpp"

namespace rhhh {

template <class Key, class Hash = KeyHash<Key>>
class SpaceSaving {
 public:
  explicit SpaceSaving(std::size_t capacity)
      : index_(2 * capacity), cap_(capacity) {
    if (capacity == 0) throw std::invalid_argument("SpaceSaving: capacity must be > 0");
    counters_.resize(cap_);
    buckets_.resize(cap_ + 1);
    reset_freelist();
    index_.reserve(cap_);
  }

  [[nodiscard]] static SpaceSaving make(const BackendConfig& cfg) {
    return SpaceSaving(cfg.capacity);
  }

  /// The key hash this instance's index uses. Exposed so batched callers can
  /// hash once, prefetch(), and later probe via increment_hashed() /
  /// find-paths without paying the hash again (the hash/probe split).
  [[nodiscard]] static std::uint64_t hash_of(const Key& k) noexcept {
    return Hash{}(k);
  }

  /// Pull the index slots for hash `h` toward L1 ahead of an
  /// increment_hashed(). Safe to issue for any hash value.
  void prefetch(std::uint64_t h) const noexcept { index_.prefetch(h); }

  /// Pull the counter cell of key `k` toward L1: a dependent second-stage
  /// prefetch (the cell address needs one index probe, so issue this at a
  /// shorter distance than prefetch(), once the slot line has arrived).
  void prefetch_counter(const Key& k, std::uint64_t h) const noexcept {
    if (const std::uint32_t* slot = index_.find_hashed(k, h)) {
      __builtin_prefetch(counters_.data() + *slot, 1, 3);
    }
  }

  /// Count `w` arrivals of key `k`. O(1) for w == 1 (the RHHH datapath);
  /// weighted updates walk at most the number of distinct counts crossed.
  void increment(const Key& k, std::uint64_t w = 1) {
    increment_hashed(k, hash_of(k), w);
  }

  /// increment() with the key hash precomputed. The lookup and the
  /// insertion share ONE index probe (find-or-insert), so every arrival
  /// hashes and walks the probe sequence exactly once -- tracked hit,
  /// fresh-counter insert and eviction alike.
  void increment_hashed(const Key& k, std::uint64_t h, std::uint64_t w = 1) {
    if (w == 0) return;
    total_ += w;
    std::uint32_t c;
    bool attached = true;
    auto [slot, inserted] = index_.try_emplace_hashed(k, h, kNil);
    if (!inserted) {
      c = *slot;
    } else if (size_ < cap_) {
      c = static_cast<std::uint32_t>(size_++);
      counters_[c] = Counter{k, 0, 0, kNil, kNil, kNil};
      *slot = c;
      attached = false;
    } else {
      // Evict the minimum: replace its key, inherit its count as the error
      // bound (the classic Space-Saving replacement step). Write the slot
      // value BEFORE erasing the evicted key: backward-shift deletion may
      // relocate our freshly inserted entry (copying its value along), so
      // the pointer is only trustworthy until the erase.
      const std::uint32_t b = bucket_head_;
      c = buckets_[b].head;
      const std::uint64_t min = buckets_[b].value;
      *slot = c;
      index_.erase(counters_[c].key);
      counters_[c].key = k;
      counters_[c].error = min;
      counters_[c].count = min;
      ++evictions_;
    }
    advance(c, w, attached);
  }

  /// Upper bound on the number of arrivals of `k`.
  [[nodiscard]] std::uint64_t upper(const Key& k) const noexcept {
    const std::uint32_t* slot = index_.find(k);
    return slot != nullptr ? counters_[*slot].count : min_bound();
  }
  /// Lower bound on the number of arrivals of `k`.
  [[nodiscard]] std::uint64_t lower(const Key& k) const noexcept {
    const std::uint32_t* slot = index_.find(k);
    if (slot == nullptr) return 0;
    const Counter& c = counters_[*slot];
    return c.count - c.error;
  }
  [[nodiscard]] bool tracked(const Key& k) const noexcept { return index_.contains(k); }

  /// Upper bound on the arrivals of *any* untracked key.
  [[nodiscard]] std::uint64_t min_bound() const noexcept {
    return size_ == cap_ ? buckets_[bucket_head_].value : 0;
  }

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return cap_; }

  /// Roster evictions since construction (or the last clear()). Churn over
  /// any window is the difference of two readings.
  [[nodiscard]] std::uint64_t evictions() const noexcept { return evictions_; }

  /// Introspection snapshot for the estimator health layer. O(1).
  [[nodiscard]] BackendProbe probe() const noexcept {
    BackendProbe p;
    p.total = total_;
    p.min_count = min_bound();
    p.evictions = evictions_;
    p.occupancy = size_;
    p.capacity = cap_;
    p.saturation =
        cap_ > 0 ? static_cast<double>(size_) / static_cast<double>(cap_) : 0.0;
    p.noise = static_cast<double>(min_bound());
    return p;
  }

  template <class F>
  void for_each(F&& f) const {
    for (std::size_t i = 0; i < size_; ++i) {
      const Counter& c = counters_[i];
      f(c.key, c.count, c.count - c.error);
    }
  }

  [[nodiscard]] std::vector<HhEntry<Key>> entries() const {
    std::vector<HhEntry<Key>> out;
    out.reserve(size_);
    for_each([&](const Key& k, std::uint64_t up, std::uint64_t lo) {
      out.push_back(HhEntry<Key>{k, up, lo});
    });
    return out;
  }

  /// Tracked keys whose upper bound meets `threshold` (superset of the true
  /// heavy hitters at that threshold).
  [[nodiscard]] std::vector<HhEntry<Key>> heavy_hitters(std::uint64_t threshold) const {
    std::vector<HhEntry<Key>> out;
    for_each([&](const Key& k, std::uint64_t up, std::uint64_t lo) {
      if (up >= threshold) out.push_back(HhEntry<Key>{k, up, lo});
    });
    return out;
  }

  void clear() {
    index_.clear();
    size_ = 0;
    total_ = 0;
    evictions_ = 0;
    bucket_head_ = kNil;
    reset_freelist();
  }

  /// Merge another summary into this one (mergeable-summaries semantics:
  /// Agarwal et al.). Counts add where keys overlap; a key tracked on only
  /// one side is charged the other side's min bound as additional count and
  /// error; the top `capacity()` merged counters are kept. Upper/lower
  /// bound guarantees are preserved for the combined stream. This is the
  /// paper's Section 7 multi-device aggregation path ("analyzing data from
  /// multiple network devices").
  void merge(const SpaceSaving& other) {
    struct Merged {
      Key key;
      std::uint64_t count;
      std::uint64_t error;
    };
    const std::uint64_t my_min = min_bound();
    const std::uint64_t their_min = other.min_bound();
    std::vector<Merged> merged;
    merged.reserve(size_ + other.size_);
    for_each([&](const Key& k, std::uint64_t up, std::uint64_t lo) {
      const std::uint64_t extra = other.tracked(k) ? other.upper(k) : their_min;
      const std::uint64_t extra_err =
          other.tracked(k) ? other.upper(k) - other.lower(k) : their_min;
      merged.push_back(Merged{k, up + extra, (up - lo) + extra_err});
    });
    other.for_each([&](const Key& k, std::uint64_t up, std::uint64_t lo) {
      if (tracked(k)) return;  // handled above
      merged.push_back(Merged{k, up + my_min, (up - lo) + my_min});
    });
    std::sort(merged.begin(), merged.end(),
              [](const Merged& a, const Merged& b) { return a.count > b.count; });
    if (merged.size() > cap_) merged.resize(cap_);

    const std::uint64_t combined_total = total_ + other.total_;
    // The rebuild below inserts <= cap_ entries into an empty structure, so
    // it never evicts; churn from both input streams carries through.
    const std::uint64_t combined_evictions = evictions_ + other.evictions_;
    clear();
    // Rebuild smallest-first so bucket insertion walks stay short.
    for (auto it = merged.rbegin(); it != merged.rend(); ++it) {
      increment(it->key, it->count);
      counters_[*index_.find(it->key)].error = it->error;
    }
    total_ = combined_total;
    evictions_ = combined_evictions;
  }

  /// Rebuild this summary from a serialized roster (the durable store's
  /// reload path). Entries must arrive in the counter-array order for_each
  /// emits, so the reloaded instance reproduces the original's iteration
  /// order (hence byte-identical downstream HHH sets); each increment()
  /// assigns array slots sequentially, which preserves exactly that order.
  /// `total` restores the arrivals count, which merge() legitimately keeps
  /// above the sum of the retained counters. Throws std::invalid_argument
  /// on impossible rosters (over capacity, zero counts, error > count) --
  /// corrupt input must fail loudly, never corrupt the structure.
  void load(const std::vector<HhEntry<Key>>& entries, std::uint64_t total) {
    if (entries.size() > cap_) {
      throw std::invalid_argument("SpaceSaving::load: roster exceeds capacity");
    }
    for (const HhEntry<Key>& e : entries) {
      if (e.upper == 0 || e.lower > e.upper) {
        throw std::invalid_argument("SpaceSaving::load: impossible entry bounds");
      }
    }
    clear();
    for (const HhEntry<Key>& e : entries) {
      increment(e.key, e.upper);
      counters_[*index_.find(e.key)].error = e.upper - e.lower;
    }
    total_ = total;
  }

  /// Structural invariant check for tests: bucket list ascending and
  /// consistent, every counter indexed, counts summing to total().
  [[nodiscard]] bool validate() const {
    std::size_t seen = 0;
    std::uint64_t sum = 0;
    std::uint64_t prev_value = 0;
    bool first_bucket = true;
    for (std::uint32_t b = bucket_head_; b != kNil; b = buckets_[b].next) {
      const Bucket& bk = buckets_[b];
      if (!first_bucket && bk.value <= prev_value) return false;
      first_bucket = false;
      prev_value = bk.value;
      if (bk.head == kNil) return false;  // empty buckets must be freed
      std::uint32_t prev_c = kNil;
      for (std::uint32_t c = bk.head; c != kNil; c = counters_[c].next) {
        const Counter& cn = counters_[c];
        if (cn.bucket != b || cn.prev != prev_c) return false;
        if (cn.count != bk.value || cn.error > cn.count) return false;
        const std::uint32_t* slot = index_.find(cn.key);
        if (slot == nullptr || *slot != c) return false;
        sum += cn.count;
        ++seen;
        prev_c = c;
      }
    }
    (void)sum;  // equals total() for pure streams; merge() legitimately drops mass
    return seen == size_ && index_.size() == size_;
  }

  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return counters_.capacity() * sizeof(Counter) +
           buckets_.capacity() * sizeof(Bucket) +
           index_.capacity() * (sizeof(Key) + sizeof(std::uint32_t) + 2);
  }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  struct Counter {
    Key key{};
    std::uint64_t count = 0;
    std::uint64_t error = 0;
    std::uint32_t bucket = kNil;
    std::uint32_t prev = kNil;  // within-bucket list
    std::uint32_t next = kNil;
  };
  struct Bucket {
    std::uint64_t value = 0;
    std::uint32_t head = kNil;  // first counter in this bucket
    std::uint32_t prev = kNil;  // bucket list (ascending by value)
    std::uint32_t next = kNil;
  };

  void reset_freelist() noexcept {
    bucket_free_ = 0;
    for (std::uint32_t i = 0; i < buckets_.size(); ++i) {
      buckets_[i].next = (i + 1 < buckets_.size()) ? i + 1 : kNil;
    }
  }

  [[nodiscard]] std::uint32_t alloc_bucket(std::uint64_t value) noexcept {
    const std::uint32_t b = bucket_free_;
    bucket_free_ = buckets_[b].next;
    buckets_[b] = Bucket{value, kNil, kNil, kNil};
    return b;
  }
  void free_bucket(std::uint32_t b) noexcept {
    buckets_[b].next = bucket_free_;
    bucket_free_ = b;
  }

  void detach_counter(std::uint32_t c) noexcept {
    Counter& cn = counters_[c];
    if (cn.prev != kNil) {
      counters_[cn.prev].next = cn.next;
    } else {
      buckets_[cn.bucket].head = cn.next;
    }
    if (cn.next != kNil) counters_[cn.next].prev = cn.prev;
  }

  void push_counter(std::uint32_t c, std::uint32_t b) noexcept {
    Counter& cn = counters_[c];
    cn.bucket = b;
    cn.prev = kNil;
    cn.next = buckets_[b].head;
    if (cn.next != kNil) counters_[cn.next].prev = c;
    buckets_[b].head = c;
  }

  void insert_bucket_after(std::uint32_t b, std::uint32_t after) noexcept {
    Bucket& bn = buckets_[b];
    if (after == kNil) {
      bn.prev = kNil;
      bn.next = bucket_head_;
      if (bucket_head_ != kNil) buckets_[bucket_head_].prev = b;
      bucket_head_ = b;
    } else {
      bn.prev = after;
      bn.next = buckets_[after].next;
      if (bn.next != kNil) buckets_[bn.next].prev = b;
      buckets_[after].next = b;
    }
  }

  void remove_bucket(std::uint32_t b) noexcept {
    const Bucket& bn = buckets_[b];
    if (bn.prev != kNil) {
      buckets_[bn.prev].next = bn.next;
    } else {
      bucket_head_ = bn.next;
    }
    if (bn.next != kNil) buckets_[bn.next].prev = bn.prev;
    free_bucket(b);
  }

  /// Move counter c forward by w; `attached` says whether c currently sits
  /// in a bucket (false only for a brand-new counter).
  void advance(std::uint32_t c, std::uint64_t w, bool attached) noexcept {
    Counter& cn = counters_[c];
    const std::uint64_t target = cn.count + w;
    std::uint32_t old_bucket = kNil;
    std::uint32_t last = kNil;  // last bucket with value < target
    if (attached) {
      old_bucket = cn.bucket;
      detach_counter(c);
      last = old_bucket;  // its value == old count < target
    }
    std::uint32_t next = (last == kNil) ? bucket_head_ : buckets_[last].next;
    while (next != kNil && buckets_[next].value < target) {
      last = next;
      next = buckets_[next].next;
    }
    if (next != kNil && buckets_[next].value == target) {
      push_counter(c, next);
    } else {
      const std::uint32_t b = alloc_bucket(target);
      insert_bucket_after(b, last);
      push_counter(c, b);
    }
    cn.count = target;
    if (old_bucket != kNil && buckets_[old_bucket].head == kNil) {
      remove_bucket(old_bucket);
    }
  }

  std::vector<Counter> counters_;
  std::vector<Bucket> buckets_;
  std::uint32_t bucket_free_ = kNil;
  std::uint32_t bucket_head_ = kNil;
  FlatHashMap<Key, std::uint32_t, Hash> index_;
  std::size_t cap_;
  std::size_t size_ = 0;
  std::uint64_t total_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace rhhh
