// ExactCounter: an unbounded hash-map backend.
//
// Not a streaming algorithm -- memory grows with distinct keys -- but a
// valuable oracle: plugged into LatticeHhh it isolates the error introduced
// by *sampling* (RHHH's randomization) from the error introduced by the
// bounded per-node counters, and it serves as a differential-testing
// reference for the approximate backends.
#pragma once

#include <cstdint>
#include <vector>

#include "hh/backend.hpp"
#include "util/flat_hash_map.hpp"
#include "util/key128.hpp"

namespace rhhh {

template <class Key, class Hash = KeyHash<Key>>
class ExactCounter {
 public:
  ExactCounter() : counts_(1 << 10) {}

  [[nodiscard]] static ExactCounter make(const BackendConfig&) {
    return ExactCounter();
  }

  void increment(const Key& k, std::uint64_t w = 1) {
    if (w == 0) return;
    counts_[k] += w;
    total_ += w;
  }

  [[nodiscard]] std::uint64_t upper(const Key& k) const noexcept {
    const std::uint64_t* v = counts_.find(k);
    return v != nullptr ? *v : 0;
  }
  [[nodiscard]] std::uint64_t lower(const Key& k) const noexcept { return upper(k); }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t size() const noexcept { return counts_.size(); }

  template <class F>
  void for_each(F&& f) const {
    counts_.for_each(
        [&](const Key& k, const std::uint64_t& c) { f(k, c, c); });
  }

  [[nodiscard]] std::vector<HhEntry<Key>> entries() const {
    std::vector<HhEntry<Key>> out;
    out.reserve(counts_.size());
    for_each([&](const Key& k, std::uint64_t up, std::uint64_t lo) {
      out.push_back(HhEntry<Key>{k, up, lo});
    });
    return out;
  }

  void clear() {
    counts_.clear();
    total_ = 0;
  }

 private:
  FlatHashMap<Key, std::uint64_t, Hash> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace rhhh
