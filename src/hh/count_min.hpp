// Count-Min sketch [Cormode & Muthukrishnan, J. Algorithms'05] with a
// tracked-candidate list.
//
// The paper notes (after Definition 4) that sketches are applicable as the
// per-node algorithm provided each sketch also maintains a list of heavy
// hitter items (Definition 5); this backend does exactly that: a depth x
// width counter array for estimation plus a bounded candidate set that keeps
// the highest-estimate keys for enumeration.
//
// Bounds (w.p. >= 1 - delta_a per key): f <= upper(k) <= f + eps_a * N.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "hh/backend.hpp"
#include "util/flat_hash_map.hpp"
#include "util/key128.hpp"

namespace rhhh {

template <class Key, class Hash = KeyHash<Key>>
class CountMinHh {
 public:
  CountMinHh(double eps, double delta, std::size_t track_capacity,
             std::uint64_t seed)
      : eps_(eps), track_cap_(track_capacity) {
    if (!(eps > 0.0) || eps >= 1.0) {
      throw std::invalid_argument("CountMinHh: eps must be in (0,1)");
    }
    if (!(delta > 0.0) || delta >= 1.0) {
      throw std::invalid_argument("CountMinHh: delta must be in (0,1)");
    }
    if (track_capacity == 0) {
      throw std::invalid_argument("CountMinHh: track capacity must be > 0");
    }
    width_ = static_cast<std::size_t>(std::ceil(std::exp(1.0) / eps));
    depth_ = std::max<std::size_t>(1, static_cast<std::size_t>(std::ceil(std::log(1.0 / delta))));
    depth_ = std::min(depth_, kMaxDepth);
    rows_.assign(width_ * depth_, 0);
    row_seed_.resize(depth_);
    for (std::size_t d = 0; d < depth_; ++d) row_seed_[d] = mix64(seed + d + 1);
    tracked_.reserve(2 * track_cap_ + 1);
  }

  [[nodiscard]] static CountMinHh make(const BackendConfig& cfg) {
    return CountMinHh(cfg.eps_a, cfg.delta_a, cfg.capacity, cfg.seed);
  }

  /// The key hash the row-slot derivation starts from; see hash_of /
  /// prefetch / increment_hashed in space_saving.hpp for the batched
  /// hash/probe-split contract they implement.
  [[nodiscard]] static std::uint64_t hash_of(const Key& k) noexcept {
    return Hash{}(k);
  }

  /// Pull every row cell for hash `h` toward L1 ahead of an
  /// increment_hashed(); with depth ~7 rows of eps^-1-wide arrays, each row
  /// touch is an independent likely-cold line.
  void prefetch(std::uint64_t h) const noexcept {
    for (std::size_t d = 0; d < depth_; ++d) {
      __builtin_prefetch(rows_.data() + d * width_ + slot(h, d), 1, 3);
    }
  }

  void increment(const Key& k, std::uint64_t w = 1) {
    increment_hashed(k, Hash{}(k), w);
  }

  /// increment() with the key hash precomputed (`h` must equal hash_of(k)).
  /// Slots are derived row-by-row into a stack array first: the mix64 chain
  /// per row is data-parallel across rows, so the compiler is free to
  /// vectorize the derivation before the (gather-shaped) cell updates.
  void increment_hashed(const Key& k, std::uint64_t h, std::uint64_t w = 1) {
    if (w == 0) return;
    total_ += w;
    std::size_t slots[kMaxDepth];
    for (std::size_t d = 0; d < depth_; ++d) slots[d] = slot(h, d);
    std::uint64_t est = UINT64_MAX;
    for (std::size_t d = 0; d < depth_; ++d) {
      std::uint64_t& cell = rows_[d * width_ + slots[d]];
      cell += w;
      est = std::min(est, cell);
    }
    track(k, est);
  }

  /// Point estimate from the sketch; an upper bound on f w.h.p.
  [[nodiscard]] std::uint64_t upper(const Key& k) const noexcept {
    const std::uint64_t h = Hash{}(k);
    std::uint64_t est = UINT64_MAX;
    for (std::size_t d = 0; d < depth_; ++d) {
      est = std::min(est, rows_[d * width_ + slot(h, d)]);
    }
    return est;
  }
  /// est - eps*N: a lower bound w.p. 1 - delta_a.
  [[nodiscard]] std::uint64_t lower(const Key& k) const noexcept {
    const std::uint64_t up = upper(k);
    const auto slack = static_cast<std::uint64_t>(eps_ * static_cast<double>(total_));
    return up > slack ? up - slack : 0;
  }

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t size() const noexcept { return tracked_.size(); }
  [[nodiscard]] std::size_t width() const noexcept { return width_; }
  [[nodiscard]] std::size_t depth() const noexcept { return depth_; }

  /// Introspection snapshot for the estimator health layer: per-row fill
  /// (nonzero cells) and the eps_a * N collision-noise estimate. Scans the
  /// whole counter array -- probe-time (rotation/scrape) only.
  [[nodiscard]] BackendProbe probe() const noexcept {
    BackendProbe p;
    p.total = total_;
    p.capacity = width_ * depth_;
    for (std::size_t d = 0; d < depth_; ++d) {
      std::size_t fill = 0;
      for (std::size_t i = 0; i < width_; ++i) {
        fill += rows_[d * width_ + i] != 0 ? 1 : 0;
      }
      p.occupancy += fill;
      p.saturation = std::max(
          p.saturation, static_cast<double>(fill) / static_cast<double>(width_));
    }
    p.noise = eps_ * static_cast<double>(total_);
    return p;
  }

  template <class F>
  void for_each(F&& f) const {
    tracked_.for_each([&](const Key& k, const std::uint64_t&) {
      const std::uint64_t up = upper(k);
      f(k, up, lower(k) < up ? lower(k) : up);
    });
  }

  [[nodiscard]] std::vector<HhEntry<Key>> entries() const {
    std::vector<HhEntry<Key>> out;
    out.reserve(tracked_.size());
    for_each([&](const Key& k, std::uint64_t up, std::uint64_t lo) {
      out.push_back(HhEntry<Key>{k, up, lo});
    });
    return out;
  }

  void clear() {
    std::fill(rows_.begin(), rows_.end(), 0);
    tracked_.clear();
    total_ = 0;
  }

  /// Merge another sketch observing a *different* stream (mergeable-
  /// summaries semantics): Count-Min is a linear sketch, so the combined
  /// sketch is the element-wise sum of the counter arrays and every
  /// estimation guarantee carries over to the combined stream at the
  /// combined N. Requires identical dimensions AND per-row hash seeds
  /// (cells must mean the same thing on both sides); throws
  /// std::invalid_argument otherwise. Candidate lists are re-ranked
  /// against the merged counters.
  void merge(const CountMinHh& other) {
    if (width_ != other.width_ || depth_ != other.depth_ ||
        row_seed_ != other.row_seed_) {
      throw std::invalid_argument(
          "CountMinHh::merge: incompatible sketch dimensions or hash seeds");
    }
    for (std::size_t i = 0; i < rows_.size(); ++i) rows_[i] += other.rows_[i];
    total_ += other.total_;
    // Snapshot both candidate sets BEFORE mutating tracked_ (track() can
    // prune mid-stream, and `other` may alias *this on a self-merge --
    // same convention as SpaceSaving::merge), then re-rank everything
    // against the merged counters: stored estimates are only used for
    // pruning, but stale pre-merge values would bias evictions.
    std::vector<Key> candidates;
    candidates.reserve(tracked_.size() + other.tracked_.size());
    tracked_.for_each(
        [&](const Key& k, const std::uint64_t&) { candidates.push_back(k); });
    if (&other != this) {
      other.tracked_.for_each(
          [&](const Key& k, const std::uint64_t&) { candidates.push_back(k); });
    }
    for (const Key& k : candidates) track(k, upper(k));
  }

 private:
  /// Upper bound on depth (ceil(ln 1/delta)): 64 rows corresponds to
  /// delta < 1e-27, far past any usable configuration; it exists so
  /// increment_hashed can stage row slots in a fixed stack array.
  static constexpr std::size_t kMaxDepth = 64;

  [[nodiscard]] std::size_t slot(std::uint64_t h, std::size_t d) const noexcept {
    return static_cast<std::size_t>(mix64(h ^ row_seed_[d]) % width_);
  }

  /// Keep up to 2*cap candidates; when exceeded, prune to the top cap by
  /// current estimate (amortized O(1) per update).
  void track(const Key& k, std::uint64_t est) {
    tracked_.insert_or_assign(k, est);
    if (tracked_.size() <= 2 * track_cap_) return;
    std::vector<std::pair<std::uint64_t, Key>> all;
    all.reserve(tracked_.size());
    tracked_.for_each([&](const Key& key, const std::uint64_t& e) {
      all.emplace_back(e, key);
    });
    std::nth_element(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(track_cap_),
                     all.end(),
                     [](const auto& a, const auto& b) { return a.first > b.first; });
    tracked_.clear();
    for (std::size_t i = 0; i < track_cap_; ++i) {
      tracked_.insert_or_assign(all[i].second, all[i].first);
    }
  }

  std::vector<std::uint64_t> rows_;
  std::vector<std::uint64_t> row_seed_;
  FlatHashMap<Key, std::uint64_t, Hash> tracked_{64};
  double eps_;
  std::size_t width_ = 0;
  std::size_t depth_ = 0;
  std::size_t track_cap_;
  std::uint64_t total_ = 0;
};

}  // namespace rhhh
