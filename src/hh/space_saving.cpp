// Explicit instantiations of the heavy-hitter backends for the key types the
// library uses, so downstream TUs link against one copy.
#include "hh/space_saving.hpp"

#include "hh/count_min.hpp"
#include "hh/count_sketch.hpp"
#include "hh/exact_counter.hpp"
#include "hh/lossy_counting.hpp"
#include "hh/misra_gries.hpp"

namespace rhhh {

template class SpaceSaving<Key128>;
template class SpaceSaving<std::uint64_t>;
template class MisraGries<Key128>;
template class LossyCounting<Key128>;
template class CountMinHh<Key128>;
template class CountSketchHh<Key128>;
template class ExactCounter<Key128>;

}  // namespace rhhh
