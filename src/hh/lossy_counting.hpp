// Lossy Counting [Manku & Motwani, VLDB'02].
//
// Window-based heavy-hitter backend: the stream is cut into windows of
// w = ceil(1/eps) arrivals; at each boundary, entries whose (count + delta)
// fall at or below the current window index are pruned. Tracked entries
// satisfy f - eps*N <= count <= f; count + delta >= f.
#pragma once

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "hh/backend.hpp"
#include "util/flat_hash_map.hpp"
#include "util/key128.hpp"

namespace rhhh {

template <class Key, class Hash = KeyHash<Key>>
class LossyCounting {
 public:
  explicit LossyCounting(double eps) : eps_(eps) {
    if (!(eps > 0.0) || eps >= 1.0) {
      throw std::invalid_argument("LossyCounting: eps must be in (0,1)");
    }
    window_ = static_cast<std::uint64_t>(std::ceil(1.0 / eps));
    next_prune_ = window_;
  }

  [[nodiscard]] static LossyCounting make(const BackendConfig& cfg) {
    return LossyCounting(cfg.eps_a);
  }

  void increment(const Key& k, std::uint64_t w = 1) {
    if (w == 0) return;
    total_ += w;
    if (std::uint64_t* g = cells_.find(k)) {
      *g += w;
    } else {
      // delta = bucket-1 is stored implicitly: cells track g only and the
      // per-entry delta in deltas_ (parallel map would double lookups; store
      // packed instead).
      cells_.try_emplace(k, pack(w, bucket_ - 1));
    }
    while (total_ >= next_prune_) {
      ++bucket_;
      prune();
      next_prune_ += window_;
    }
  }

  [[nodiscard]] std::uint64_t upper(const Key& k) const noexcept {
    const std::uint64_t* c = cells_.find(k);
    return c != nullptr ? g_of(*c) + d_of(*c) : bucket_ - 1;
  }
  [[nodiscard]] std::uint64_t lower(const Key& k) const noexcept {
    const std::uint64_t* c = cells_.find(k);
    return c != nullptr ? g_of(*c) : 0;
  }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t size() const noexcept { return cells_.size(); }
  [[nodiscard]] double eps() const noexcept { return eps_; }

  template <class F>
  void for_each(F&& f) const {
    cells_.for_each([&](const Key& k, const std::uint64_t& c) {
      f(k, g_of(c) + d_of(c), g_of(c));
    });
  }

  [[nodiscard]] std::vector<HhEntry<Key>> entries() const {
    std::vector<HhEntry<Key>> out;
    out.reserve(cells_.size());
    for_each([&](const Key& k, std::uint64_t up, std::uint64_t lo) {
      out.push_back(HhEntry<Key>{k, up, lo});
    });
    return out;
  }

  void clear() {
    cells_.clear();
    total_ = 0;
    bucket_ = 1;
    next_prune_ = window_;
  }

 private:
  // g in the low 40 bits, delta in the high 24 (delta <= number of windows,
  // which stays far below 2^24 for any stream this library targets; g is
  // additionally bounded by the stream length).
  static constexpr int kGBits = 40;
  [[nodiscard]] static constexpr std::uint64_t pack(std::uint64_t g,
                                                    std::uint64_t d) noexcept {
    return g | (d << kGBits);
  }
  [[nodiscard]] static constexpr std::uint64_t g_of(std::uint64_t c) noexcept {
    return c & ((std::uint64_t{1} << kGBits) - 1);
  }
  [[nodiscard]] static constexpr std::uint64_t d_of(std::uint64_t c) noexcept {
    return c >> kGBits;
  }

  void prune() {
    dead_.clear();
    cells_.for_each([&](const Key& k, std::uint64_t& c) {
      if (g_of(c) + d_of(c) <= bucket_ - 1) dead_.push_back(k);
    });
    for (const Key& k : dead_) cells_.erase(k);
  }

  FlatHashMap<Key, std::uint64_t, Hash> cells_{64};
  std::vector<Key> dead_;
  double eps_;
  std::uint64_t window_ = 0;
  std::uint64_t next_prune_ = 0;
  std::uint64_t bucket_ = 1;
  std::uint64_t total_ = 0;
};

}  // namespace rhhh
