#include "hhh/lattice_hhh.hpp"

#include <algorithm>
#include <stdexcept>

namespace rhhh {

template <class Backend>
LatticeHhh<Backend>::LatticeHhh(const Hierarchy& h, LatticeMode mode, LatticeParams p)
    : h_(&h), mode_(mode), p_(p), rng_(p.seed) {
  H_ = static_cast<std::uint32_t>(h.size());
  if (H_ >= (1u << 16)) {
    // update_batch packs the lattice node into 16 bits of a pick word; every
    // shipped hierarchy is orders of magnitude below this.
    throw std::invalid_argument("LatticeHhh: hierarchy size must be < 65536");
  }
  if (!(p_.eps > 0.0) || p_.eps >= 1.0) {
    throw std::invalid_argument("LatticeHhh: eps must be in (0,1)");
  }
  if (!(p_.delta > 0.0) || p_.delta >= 1.0) {
    throw std::invalid_argument("LatticeHhh: delta must be in (0,1)");
  }
  if (p_.r == 0) throw std::invalid_argument("LatticeHhh: r must be >= 1");

  V_ = (p_.V == 0) ? H_ : p_.V;
  if (V_ < H_) throw std::invalid_argument("LatticeHhh: V must be >= H");
  if (mode_ == LatticeMode::kMst) V_ = H_;  // unused by the update rule
  if (mode_ != LatticeMode::kRhhh && p_.r != 1) {
    throw std::invalid_argument("LatticeHhh: r applies to RHHH only");
  }

  // Error-budget split (Theorem 6.6): eps = eps_a + eps_s,
  // delta = delta_a + 2*delta_s. MST is deterministic: no sampling share.
  if (mode_ == LatticeMode::kMst) {
    eps_a_ = p_.eps;
    eps_s_ = 0.0;
    delta_a_ = p_.delta;
    delta_s_ = 0.0;
    scale_ = 1.0;
  } else {
    eps_a_ = 0.5 * p_.eps;
    eps_s_ = 0.5 * p_.eps;
    delta_a_ = p_.delta / 3.0;
    delta_s_ = p_.delta / 3.0;
    scale_ = (mode_ == LatticeMode::kRhhh)
                 ? static_cast<double>(V_) / static_cast<double>(p_.r)
                 : static_cast<double>(V_) / static_cast<double>(H_);
  }

  // Over-sample compensation (Section 6.1): size each instance for
  // eps_a' = eps_a / (1 + eps_s), i.e. ceil((1+eps_s)/eps_a) counters --
  // the paper's "1000 counters become 1001" example.
  counters_ = p_.counters_override != 0
                  ? p_.counters_override
                  : static_cast<std::size_t>(std::ceil((1.0 + eps_s_) / eps_a_));
  z_corr_ = z_value(1.0 - p_.delta / 8.0);

  BackendConfig cfg;
  cfg.capacity = counters_;
  cfg.eps_a = 1.0 / static_cast<double>(counters_);
  cfg.delta_a = delta_a_;
  hh_.reserve(H_);
  const std::uint64_t bseed = p_.backend_seed != 0 ? p_.backend_seed : p_.seed;
  for (std::uint32_t d = 0; d < H_; ++d) {
    cfg.seed = mix64(bseed ^ (0x5851f42d4c957f2dULL + d));
    hh_.push_back(Backend::make(cfg));
  }

  name_ = std::string(to_string(mode_));
  if (mode_ != LatticeMode::kMst && V_ != H_) {
    // Annotate non-default V as in the paper ("10-RHHH" for V = 10H).
    if (V_ % H_ == 0) {
      name_ = std::to_string(V_ / H_) + "-" + name_;
    } else {
      name_ += "(V=" + std::to_string(V_) + ")";
    }
  }
  if (p_.r > 1) name_ += "(r=" + std::to_string(p_.r) + ")";
}

template <class Backend>
void LatticeHhh<Backend>::apply_survivors() {
  // Stage 3: replay the compacted work list against the per-node backends.
  // Survivors sit in packet order and each node's backend is an independent
  // structure, so the resulting state is byte-identical to the per-packet
  // interleaving. For backends with the hash/probe split, index slots are
  // prefetched `D` apply steps ahead and counter cells D/2 ahead (the cell
  // address is a dependent load through the index, so its prefetch runs at
  // a shorter distance, once the slot line has had time to arrive).
  const std::size_t m = survivors_.size();
  if constexpr (backend_prefetchable()) {
    const std::size_t far = p_.prefetch_distance;
    const std::size_t near = (far + 1) / 2;
    constexpr bool has_counter_stage = requires(const Backend& b, const Key128& k,
                                                std::uint64_t h) {
      b.prefetch_counter(k, h);
    };
    for (std::size_t j = 0; j < m; ++j) {
      if (far != 0 && j + far < m) {
        const Survivor& s = survivors_[j + far];
        hh_[s.node].prefetch(s.hash);
      }
      if constexpr (has_counter_stage) {
        if (far != 0 && j + near < m) {
          const Survivor& s = survivors_[j + near];
          hh_[s.node].prefetch_counter(s.mkey, s.hash);
        }
      }
      const Survivor& s = survivors_[j];
      hh_[s.node].increment_hashed(s.mkey, s.hash, 1);
    }
  } else {
    for (std::size_t j = 0; j < m; ++j) {
      const Survivor& s = survivors_[j];
      hh_[s.node].increment(s.mkey, 1);
    }
  }
  updates_ += m;
}

template <class Backend>
void LatticeHhh<Backend>::update_batch(const Key128* keys, std::size_t n) {
  if (n == 0) return;
  n_ += n;
  const auto hash_or_zero = [&](const Key128& k) -> std::uint64_t {
    if constexpr (backend_prefetchable()) return Backend::hash_of(k);
    (void)k;
    return 0;
  };
  switch (mode_) {
    case LatticeMode::kRhhh: {
      // Stage 1: block-RNG with branchless compaction. The generator chain
      // is serial (state-carried), so it is the loop's latency bound; the
      // Lemire multiply-shift reduction and the pick store ride for free in
      // its shadow. Compaction is a blind store plus a flag add -- no
      // data-dependent branch, so the ~H/V random "survivor" pattern (1 in
      // 10 for 10-RHHH) costs zero mispredicts, unlike the per-packet
      // path's d < H branch. Draw i*r+j is packet i's j-th draw -- exactly
      // the sequence n per-packet update() calls would consume.
      const std::size_t total_draws = n * p_.r;
      picks_.resize(total_draws);
      std::uint64_t* pk = picks_.data();
      const std::uint64_t v = V_;
      std::size_t m = 0;
      for (std::size_t i = 0; i < total_draws; ++i) {
        const auto d = static_cast<std::uint32_t>(((rng_() >> 32) * v) >> 32);
        // Dead entries (d >= H) are overwritten by the next iteration; only
        // pk[0..m) is ever read, and those all carry d < H (< 2^16).
        pk[m] = (static_cast<std::uint64_t>(i) << 16) | d;
        m += d < H_ ? 1 : 0;
      }
      // Stage 2: survivor build over the compacted picks only -- a passing
      // draw pays its mask + hash here, once, off the probe path.
      const std::uint32_t r = p_.r;
      survivors_.resize(m);
      for (std::size_t j = 0; j < m; ++j) {
        const std::uint64_t e = pk[j];
        const auto d = static_cast<std::uint32_t>(e & 0xffff);
        const auto di = static_cast<std::size_t>(e >> 16);
        const std::size_t pkt = r == 1 ? di : di / r;
        const Key128 mkey = h_->mask_key(d, keys[pkt]);
        survivors_[j] =
            Survivor{d, static_cast<std::uint32_t>(pkt), hash_or_zero(mkey), mkey};
      }
      break;
    }
    case LatticeMode::kMst: {
      // Every packet updates all H nodes: the "survivors" are all (packet,
      // node) pairs, which still amortizes the per-node mask + hash compute
      // away from the probes and lets the apply loop prefetch across the
      // whole H*n sequence.
      survivors_.resize(n * H_);
      std::size_t w = 0;
      for (std::size_t i = 0; i < n; ++i) {
        for (std::uint32_t d = 0; d < H_; ++d) {
          const Key128 mkey = h_->mask_key(d, keys[i]);
          survivors_[w++] = Survivor{d, static_cast<std::uint32_t>(i),
                                     hash_or_zero(mkey), mkey};
        }
      }
      break;
    }
    case LatticeMode::kSampledMst: {
      // One draw per packet (same order as per-packet update()), compacted
      // branchlessly as in kRhhh; a sampled packet fans out across all H
      // nodes in stage 2.
      picks_.resize(n);
      std::uint64_t* pk = picks_.data();
      const std::uint64_t v = V_;
      std::size_t m = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const auto d = static_cast<std::uint32_t>(((rng_() >> 32) * v) >> 32);
        pk[m] = i;
        m += d < H_ ? 1 : 0;
      }
      survivors_.resize(m * H_);
      std::size_t w = 0;
      for (std::size_t j = 0; j < m; ++j) {
        const auto pkt = static_cast<std::size_t>(pk[j]);
        for (std::uint32_t d = 0; d < H_; ++d) {
          const Key128 mkey = h_->mask_key(d, keys[pkt]);
          survivors_[w++] = Survivor{d, static_cast<std::uint32_t>(pkt),
                                     hash_or_zero(mkey), mkey};
        }
      }
      break;
    }
  }
  apply_survivors();
}

template <class Backend>
void LatticeHhh<Backend>::update_weighted(Key128 x, std::uint64_t w) {
  if (w == 0) return;
  n_ += w;
  switch (mode_) {
    case LatticeMode::kRhhh:
      for (std::uint32_t i = 0; i < p_.r; ++i) {
        const std::uint32_t d = rng_.bounded(V_);
        if (d < H_) {
          hh_[d].increment(h_->mask_key(d, x), w);
          ++updates_;
        }
      }
      break;
    case LatticeMode::kMst:
      for (std::uint32_t d = 0; d < H_; ++d) {
        hh_[d].increment(h_->mask_key(d, x), w);
      }
      updates_ += H_;
      break;
    case LatticeMode::kSampledMst:
      if (rng_.bounded(V_) < H_) {
        for (std::uint32_t d = 0; d < H_; ++d) {
          hh_[d].increment(h_->mask_key(d, x), w);
        }
        updates_ += H_;
      }
      break;
  }
}

template <class Backend>
double LatticeHhh<Backend>::correction() const noexcept {
  if (mode_ == LatticeMode::kMst) return 0.0;
  // Theorems 6.11 / 6.15: 2 * Z_{1-delta/8} * sqrt(N * V).
  return 2.0 * z_corr_ *
         std::sqrt(static_cast<double>(n_) * static_cast<double>(V_));
}

template <class Backend>
double LatticeHhh<Backend>::psi() const {
  if (mode_ == LatticeMode::kMst) return 0.0;
  // psi = Z_{1 - delta_s/2} * V * eps_s^-2 (Theorem 6.3); r draws per packet
  // converge r times faster (Corollary 6.8).
  const double z = z_value(1.0 - 0.5 * delta_s_);
  return z * static_cast<double>(V_) / (eps_s_ * eps_s_) /
         static_cast<double>(p_.r);
}

template <class Backend>
HhhSet LatticeHhh<Backend>::output(double theta) const {
  HhhSet P(h_->size());
  if (n_ == 0) return P;
  const double N = static_cast<double>(n_);
  const double thresh = theta * N;
  const double corr = correction();

  const UpperEstimate glb_upper = [this](const Prefix& q) {
    return scale_ * static_cast<double>(hh_[q.node].upper(q.key));
  };

  // Levels from fully specified (0) to fully general (Definition 8's order).
  for (int level = 0; level < h_->num_levels(); ++level) {
    for (const std::uint32_t node : h_->nodes_at_level(level)) {
      hh_[node].for_each([&](const Key128& key, std::uint64_t up, std::uint64_t lo) {
        const Prefix p{node, key};
        const double f_hi = scale_ * static_cast<double>(up);
        const double f_lo = scale_ * static_cast<double>(lo);
        // Candidates whose upper bound plus sampling slack cannot reach the
        // threshold have (w.h.p.) true conditioned frequency below it --
        // their admission could only come from inclusion-exclusion bound
        // slop (calcPred > 0), so skipping them is sound and trims false
        // positives. In one dimension calcPred <= 0 makes this exact.
        if (f_hi + corr < thresh) return;
        const auto g_set = best_generalized(*h_, p, P);
        const double c_hat =
            f_hi + calc_pred(*h_, p, P, g_set, glb_upper) + corr;
        if (c_hat >= thresh) {
          P.add(HhhCandidate{p, f_hi, f_lo, f_hi, c_hat});
        }
      });
    }
  }
  return P;
}

template <class Backend>
void LatticeHhh<Backend>::merge(const LatticeHhh& other) {
  if (!mergeable_with(other)) {
    throw std::invalid_argument(
        "LatticeHhh::merge: instances must share hierarchy, mode, V and r");
  }
  if constexpr (backend_mergeable()) {
    for (std::uint32_t d = 0; d < H_; ++d) hh_[d].merge(other.hh_[d]);
    n_ += other.n_;
    updates_ += other.updates_;
  } else {
    throw std::logic_error("LatticeHhh::merge: backend is not mergeable");
  }
}

template <class Backend>
std::vector<BackendProbe> LatticeHhh<Backend>::health_probes() const {
  std::vector<BackendProbe> out;
  if constexpr (backend_probeable()) {
    out.reserve(H_);
    for (std::uint32_t d = 0; d < H_; ++d) out.push_back(hh_[d].probe());
  }
  return out;
}

template <class Backend>
void LatticeHhh<Backend>::restore_node(std::uint32_t node,
                                       const std::vector<HhEntry<Key128>>& entries,
                                       std::uint64_t total) {
  if (node >= H_) {
    throw std::invalid_argument("LatticeHhh::restore_node: node out of range");
  }
  if constexpr (backend_loadable()) {
    hh_[node].load(entries, total);
  } else {
    throw std::logic_error("LatticeHhh::restore_node: backend has no load path");
  }
}

template <class Backend>
void LatticeHhh<Backend>::clear() {
  for (auto& inst : hh_) inst.clear();
  n_ = 0;
  updates_ = 0;
  rng_ = Xoroshiro128(p_.seed);
}

template class LatticeHhh<SpaceSaving<Key128>>;
template class LatticeHhh<MisraGries<Key128>>;
template class LatticeHhh<LossyCounting<Key128>>;
template class LatticeHhh<CountMinHh<Key128>>;
template class LatticeHhh<CountSketchHh<Key128>>;
template class LatticeHhh<ExactCounter<Key128>>;

std::unique_ptr<RhhhSpaceSaving> make_rhhh(const Hierarchy& h, LatticeParams p) {
  return std::make_unique<RhhhSpaceSaving>(h, LatticeMode::kRhhh, p);
}

std::unique_ptr<RhhhSpaceSaving> make_10rhhh(const Hierarchy& h, LatticeParams p) {
  p.V = 10 * static_cast<std::uint32_t>(h.size());
  return std::make_unique<RhhhSpaceSaving>(h, LatticeMode::kRhhh, p);
}

std::unique_ptr<RhhhSpaceSaving> make_mst(const Hierarchy& h, LatticeParams p) {
  return std::make_unique<RhhhSpaceSaving>(h, LatticeMode::kMst, p);
}

}  // namespace rhhh
