#include "hhh/conditioned.hpp"

namespace rhhh {

std::vector<std::uint32_t> best_generalized(const Hierarchy& h, const Prefix& p,
                                            const HhhSet& P) {
  // Collect every member of P strictly generalized by p. Only lattice nodes
  // strictly below p's node pattern can hold such members.
  std::vector<std::uint32_t> covered;
  const std::size_t H = h.size();
  for (std::uint32_t nd = 0; nd < H; ++nd) {
    if (nd == p.node || !h.node_generalizes(p.node, nd)) continue;
    for (std::uint32_t idx : P.at_node(nd)) {
      const Prefix& q = P[idx].prefix;
      if ((q.key & h.node(p.node).mask) == p.key) covered.push_back(idx);
    }
  }
  if (covered.size() <= 1) return covered;

  // Keep only the maximal elements: drop h if some other covered member
  // strictly generalizes it (Definition 2's "no h' between h and p").
  std::vector<std::uint32_t> maximal;
  maximal.reserve(covered.size());
  for (std::uint32_t i : covered) {
    bool dominated = false;
    for (std::uint32_t j : covered) {
      if (i == j) continue;
      if (h.strictly_generalizes(P[j].prefix, P[i].prefix)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) maximal.push_back(i);
  }
  return maximal;
}

double calc_pred(const Hierarchy& h, const Prefix& p, const HhhSet& P,
                 const std::vector<std::uint32_t>& g_set,
                 const UpperEstimate& upper_estimate) {
  (void)p;
  double r = 0.0;
  for (std::uint32_t i : g_set) r -= P[i].f_lo;  // Algorithm 2/3 line 4

  if (h.dims() == 2 && g_set.size() >= 2) {
    // Inclusion-exclusion add-back (Algorithm 3 lines 6-11): for each pair,
    // add back the glb's upper bound unless a third member of G(p|P)
    // generalizes it (its mass was then only subtracted once).
    for (std::size_t a = 0; a < g_set.size(); ++a) {
      for (std::size_t b = a + 1; b < g_set.size(); ++b) {
        const auto q = h.glb(P[g_set[a]].prefix, P[g_set[b]].prefix);
        if (!q.has_value()) continue;  // incompatible: count-0 item (Def. 12)
        bool third_covers = false;
        for (std::size_t c = 0; c < g_set.size(); ++c) {
          if (c == a || c == b) continue;
          if (h.generalizes(P[g_set[c]].prefix, *q)) {
            third_covers = true;
            break;
          }
        }
        if (!third_covers) r += upper_estimate(*q);
      }
    }
  }
  return r;
}

}  // namespace rhhh
