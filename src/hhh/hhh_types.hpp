// Shared vocabulary of the HHH layer: results, result sets and the
// algorithm interface every HHH implementation satisfies.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "hh/backend.hpp"
#include "hierarchy/hierarchy.hpp"
#include "util/flat_hash_map.hpp"

namespace rhhh {

/// One returned HHH prefix with its frequency bounds (Definition 11) and the
/// conservative conditioned-frequency estimate that admitted it.
struct HhhCandidate {
  Prefix prefix{};
  double f_est = 0.0;  ///< point estimate of f_p (V * X-hat for RHHH)
  double f_lo = 0.0;   ///< lower bound on f_p
  double f_hi = 0.0;   ///< upper bound on f_p
  double c_hat = 0.0;  ///< conservative estimate of C_{p|P} at admission
};

/// The set P produced by Output (Algorithm 1), with O(1) membership tests
/// and per-node grouping (used when computing G(p|P) for higher levels).
class HhhSet {
 public:
  explicit HhhSet(std::size_t num_nodes = 0) : by_node_(num_nodes) {}

  void add(const HhhCandidate& c) {
    const auto idx = static_cast<std::uint32_t>(items_.size());
    items_.push_back(c);
    index_.try_emplace(c.prefix, idx);
    if (c.prefix.node < by_node_.size()) by_node_[c.prefix.node].push_back(idx);
  }

  [[nodiscard]] bool contains(const Prefix& p) const noexcept {
    return index_.contains(p);
  }
  [[nodiscard]] const HhhCandidate* find(const Prefix& p) const noexcept {
    const std::uint32_t* i = index_.find(p);
    return i != nullptr ? &items_[*i] : nullptr;
  }

  [[nodiscard]] const std::vector<HhhCandidate>& items() const noexcept {
    return items_;
  }
  [[nodiscard]] const HhhCandidate& operator[](std::size_t i) const noexcept {
    return items_[i];
  }
  /// Indices of members whose prefix lives at lattice node `n`.
  [[nodiscard]] const std::vector<std::uint32_t>& at_node(std::uint32_t n) const noexcept {
    return by_node_[n];
  }
  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }
  [[nodiscard]] auto begin() const noexcept { return items_.begin(); }
  [[nodiscard]] auto end() const noexcept { return items_.end(); }

 private:
  std::vector<HhhCandidate> items_;
  FlatHashMap<Prefix, std::uint32_t, PrefixHash> index_{64};
  std::vector<std::vector<std::uint32_t>> by_node_;
};

/// Interface shared by all HHH algorithms (RHHH, MST, Sampled-MST, the
/// ancestry tries). `update` is the per-packet path; `output` materializes
/// the approximate HHH set for a threshold theta (Definition 10).
class HhhAlgorithm {
 public:
  virtual ~HhhAlgorithm() = default;

  /// Process one packet with fully-specified key `x`.
  virtual void update(Key128 x) = 0;
  /// Process `n` packets in one call: the batched hot path. The contract is
  /// strict equivalence -- update_batch(keys, n) leaves the algorithm in
  /// EXACTLY the state n update(keys[i]) calls in order would (randomized
  /// implementations must consume their RNG draws in packet order), so
  /// callers may mix the two paths freely and split batches anywhere. The
  /// default is the per-packet loop; LatticeHhh overrides it with a staged
  /// block-RNG / survivor-compaction / prefetched-apply pipeline.
  virtual void update_batch(const Key128* keys, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) update(keys[i]);
  }
  /// Process a weighted arrival (e.g. byte counting). Weight w acts as w
  /// consecutive packets of the same key.
  virtual void update_weighted(Key128 x, std::uint64_t w) = 0;
  /// The approximate HHH set at threshold theta.
  [[nodiscard]] virtual HhhSet output(double theta) const = 0;
  /// Conservative point estimate of f_p for an arbitrary prefix, usable
  /// without materializing an HHH set -- what the emerging-aggregate
  /// comparison (core/window_ring.hpp) probes the sealed epoch with. At
  /// least as large as the f_hi output() would report for the prefix; the
  /// same accuracy guarantee as output() applies (an eps*N-style bound,
  /// not a hard upper bound for every implementation -- see
  /// TrieHhh::estimate for the partial-ancestry caveat).
  [[nodiscard]] virtual double estimate(const Prefix& p) const = 0;
  /// N: stream length consumed so far (total weight).
  [[nodiscard]] virtual std::uint64_t stream_length() const = 0;
  /// Convergence bound psi (Theorem 6.17); 0 for deterministic algorithms.
  [[nodiscard]] virtual double psi() const { return 0.0; }
  /// Per-node backend introspection probes for the estimator health layer
  /// (src/obs/health): one BackendProbe per lattice node, in node order.
  /// Probe-time cost only -- never taken on the packet path. The default is
  /// empty: algorithms without probeable backends report nothing and the
  /// health layer degrades to stream-level certificates.
  [[nodiscard]] virtual std::vector<BackendProbe> health_probes() const {
    return {};
  }
  /// Reset to the empty-stream state (same configuration).
  virtual void clear() = 0;
  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual const Hierarchy& hierarchy() const = 0;

  HhhAlgorithm() = default;
  HhhAlgorithm(const HhhAlgorithm&) = delete;
  HhhAlgorithm& operator=(const HhhAlgorithm&) = delete;
};

}  // namespace rhhh
