// LatticeHhh: the paper's lattice-of-heavy-hitters structure with three
// update disciplines sharing one Output implementation (Algorithm 1):
//
//   kRhhh        -- the paper's contribution: draw d ~ U[0, V); iff d < H,
//                   update lattice node d. O(1) worst-case per packet
//                   (Theorem 6.18). V = H processes every packet, V = 10H is
//                   the paper's "10-RHHH". The r parameter implements
//                   Corollary 6.8 (r independent draws per packet).
//   kMst         -- the deterministic baseline of [35]: update all H nodes.
//   kSampledMst  -- the Section 1 strawman: with probability H/V update all
//                   H nodes; O(1) amortized but O(H) worst case.
//
// Estimates scale by V/r (RHHH), 1 (MST) or V/H (Sampled-MST); randomized
// modes add the 2*Z*sqrt(N*V) slack of Theorems 6.11/6.15 to conditioned
// frequencies.
#pragma once

#include <cmath>
#include <concepts>
#include <cstdint>
#include <memory>
#include <string>

#include "hh/backend.hpp"
#include "hhh/conditioned.hpp"
#include "hhh/hhh_types.hpp"
#include "stats/normal.hpp"
#include "util/random.hpp"

namespace rhhh {

enum class LatticeMode : std::uint8_t { kRhhh, kMst, kSampledMst };

[[nodiscard]] constexpr std::string_view to_string(LatticeMode m) noexcept {
  switch (m) {
    case LatticeMode::kRhhh: return "RHHH";
    case LatticeMode::kMst: return "MST";
    case LatticeMode::kSampledMst: return "Sampled-MST";
  }
  return "?";
}

struct LatticeParams {
  double eps = 1e-3;    ///< overall accuracy target (split eps_a = eps_s = eps/2)
  double delta = 1e-3;  ///< overall confidence target (delta_a = delta_s = delta/3)
  std::uint32_t V = 0;  ///< performance parameter; 0 means V = H
  std::uint32_t r = 1;  ///< independent updates per packet (Corollary 6.8)
  std::uint64_t seed = 1;
  std::size_t counters_override = 0;  ///< nonzero: explicit per-node capacity
  /// Nonzero: base seed for the per-node backend instances, decoupled from
  /// `seed` (which keeps driving the RHHH sampling RNG). Shard-style
  /// deployments of hash-keyed backends (the Count-Min / Count Sketch
  /// linear sketches) need identical backend hash functions on every shard
  /// for element-wise merge() while still drawing independent sampling
  /// streams per shard: pin backend_seed engine-wide and vary seed. 0 (the
  /// default) derives backend seeds from `seed` as before.
  std::uint64_t backend_seed = 0;
  /// Software-prefetch lookahead of the batched apply loop (survivor slots
  /// prefetched this many apply steps ahead; 0 disables prefetching). A
  /// pure performance knob: results are byte-identical for every value.
  /// ~8 covers an L2 miss at survivor-apply cost on commodity cores;
  /// bench/ablation_batch_pipeline sweeps it.
  std::uint32_t prefetch_distance = 8;
};

template <class Backend>
class LatticeHhh final : public HhhAlgorithm {
 public:
  LatticeHhh(const Hierarchy& h, LatticeMode mode, LatticeParams p);

  /// Per-packet update (Algorithm 1 lines 1-7). noexcept and allocation-free.
  void update(Key128 x) override {
    ++n_;
    switch (mode_) {
      case LatticeMode::kRhhh:
        for (std::uint32_t i = 0; i < p_.r; ++i) {
          const std::uint32_t d = rng_.bounded(V_);
          if (d < H_) {
            hh_[d].increment(h_->mask_key(d, x), 1);
            ++updates_;
          }
        }
        break;
      case LatticeMode::kMst:
        for (std::uint32_t d = 0; d < H_; ++d) {
          hh_[d].increment(h_->mask_key(d, x), 1);
        }
        updates_ += H_;
        break;
      case LatticeMode::kSampledMst:
        if (rng_.bounded(V_) < H_) {
          for (std::uint32_t d = 0; d < H_; ++d) {
            hh_[d].increment(h_->mask_key(d, x), 1);
          }
          updates_ += H_;
        }
        break;
    }
  }

  /// Batched update (the engine hot path): a staged pipeline equivalent to
  /// n update() calls in order, byte for byte.
  ///
  ///   1. block-RNG     -- all sampling draws for the batch generated in
  ///                       one tight Lemire-bounded loop with *branchless*
  ///                       survivor compaction: the serial generator chain
  ///                       is the loop's latency bound and the reduction,
  ///                       pick store, and flag add ride in its shadow, so
  ///                       the random ~H/V survivor pattern costs zero
  ///                       branch mispredicts (the per-packet path eats one
  ///                       ~10%-taken branch per draw). Draws are consumed
  ///                       in packet order (r per packet), so the RNG state
  ///                       after the batch matches the per-packet path
  ///                       exactly.
  ///   2. survivor build -- the compacted picks (draw < H; in 10-RHHH ~1
  ///                       packet in 10) expand into a dense list carrying
  ///                       the lattice node, the node-masked key and its
  ///                       backend hash: the common no-op packet costs one
  ///                       draw and two blind stores, and the per-node mask
  ///                       + hash work is paid once here, not at the probe.
  ///   3. apply         -- survivors replayed in packet order against the
  ///                       per-node backends, index slots software-
  ///                       prefetched `prefetch_distance` slots ahead and
  ///                       counter cells half that distance ahead (the
  ///                       dependent second touch), for backends exposing
  ///                       the hash/probe split (Space-Saving, Count-Min,
  ///                       Count Sketch); others apply unprefeteched.
  ///
  /// MST batches stage 2/3 over every (packet, node) pair (no draws);
  /// Sampled-MST draws once per packet and fans survivors across all H
  /// nodes. Per-node increment order equals the per-packet path's, so all
  /// modes produce identical output()/estimate() state (golden-digest
  /// pinned in tests/test_batch.cpp).
  void update_batch(const Key128* keys, std::size_t n) override;

  /// Weighted arrival: behaves as w consecutive packets of key x, but the
  /// randomized modes draw once and feed the whole weight through (the
  /// "duplicate the packet" view of Corollary 6.8 applied to weights).
  void update_weighted(Key128 x, std::uint64_t w) override;

  [[nodiscard]] HhhSet output(double theta) const override;

  // -- distributed deployment support (paper Section 5.2) -------------------
  /// Ingest one pre-sampled record: the switch already drew d < H and
  /// forwarded (d, x); this applies the corresponding per-node update.
  void ingest_sampled(std::uint32_t node, Key128 x) {
    hh_[node].increment(h_->mask_key(node, x), 1);
    ++updates_;
  }
  /// Account for `packets` offered at the switch (sampled or not) so that
  /// thresholds and slack terms use the true stream length N.
  void advance_stream(std::uint64_t packets) noexcept { n_ += packets; }

  /// Merge a same-configuration instance observing a *different* stream
  /// (paper Section 7: the distributed deployment "is capable of analyzing
  /// data from multiple network devices"). Requires identical hierarchy,
  /// mode, V and r (so per-node estimates share one scale); throws
  /// std::invalid_argument otherwise. Only available for backends that
  /// support merging (Space-Saving and the Count-Min / Count Sketch linear
  /// sketches; the sketches additionally require matching hash seeds --
  /// pin LatticeParams::backend_seed across shards -- and throw per node
  /// otherwise).
  void merge(const LatticeHhh& other);

  /// True iff the backend supports merge() at all (Space-Saving and the
  /// linear sketches do; the windowed/exact backends currently do not).
  [[nodiscard]] static constexpr bool backend_mergeable() noexcept {
    return requires(Backend& b, const Backend& o) { b.merge(o); };
  }
  /// True iff merge(other) would be accepted: same hierarchy shape, mode,
  /// V and r. Sampling seeds may differ (and should, across shards);
  /// hash-keyed backends additionally enforce seed alignment themselves.
  [[nodiscard]] bool mergeable_with(const LatticeHhh& other) const noexcept {
    return H_ == other.H_ && h_->name() == other.h_->name() &&
           mode_ == other.mode_ && V_ == other.V_ && p_.r == other.p_.r;
  }
  /// The construction parameters (V still as passed; see V() for the
  /// resolved value). Snapshot paths use this to clone compatible instances.
  [[nodiscard]] const LatticeParams& params() const noexcept { return p_; }

  [[nodiscard]] std::uint64_t stream_length() const override { return n_; }
  [[nodiscard]] double psi() const override;
  void clear() override;
  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] const Hierarchy& hierarchy() const override { return *h_; }

  // -- introspection (tests, benches) ---------------------------------------
  [[nodiscard]] LatticeMode mode() const noexcept { return mode_; }
  [[nodiscard]] std::uint32_t V() const noexcept { return V_; }
  [[nodiscard]] std::uint32_t H() const noexcept { return H_; }
  /// Estimate scale: multiply per-node counts by this to estimate f.
  [[nodiscard]] double scale() const noexcept { return scale_; }
  /// Total backend increments performed (the work RHHH saves).
  [[nodiscard]] std::uint64_t updates_performed() const noexcept { return updates_; }
  [[nodiscard]] const Backend& instance(std::uint32_t node) const noexcept {
    return hh_[node];
  }
  [[nodiscard]] std::size_t counters_per_node() const noexcept { return counters_; }
  /// Apply-loop prefetch lookahead (see LatticeParams::prefetch_distance);
  /// adjustable at runtime for sweeps -- never changes results.
  [[nodiscard]] std::uint32_t prefetch_distance() const noexcept {
    return p_.prefetch_distance;
  }
  void set_prefetch_distance(std::uint32_t d) noexcept { p_.prefetch_distance = d; }
  /// True iff the backend exposes the hash/probe split the batched apply
  /// loop prefetches through (hash_of / prefetch / increment_hashed).
  [[nodiscard]] static constexpr bool backend_prefetchable() noexcept {
    return requires(Backend& b, const Backend& cb, const Key128& k, std::uint64_t h) {
      { Backend::hash_of(k) } -> std::convertible_to<std::uint64_t>;
      cb.prefetch(h);
      b.increment_hashed(k, h, std::uint64_t{1});
    };
  }
  /// True iff the backend exposes the health-layer introspection probe
  /// (Space-Saving and both sketches do; the deterministic comparison
  /// backends do not and health_probes() returns empty).
  [[nodiscard]] static constexpr bool backend_probeable() noexcept {
    return requires(const Backend& cb) {
      { cb.probe() } -> std::convertible_to<BackendProbe>;
    };
  }
  /// One BackendProbe per lattice node (empty for unprobeable backends);
  /// the estimator health layer folds these into accuracy certificates.
  [[nodiscard]] std::vector<BackendProbe> health_probes() const override;
  [[nodiscard]] double eps_a() const noexcept { return eps_a_; }
  [[nodiscard]] double eps_s() const noexcept { return eps_s_; }
  /// The Z_{1 - delta/8} quantile correction() is built from (0 for MST);
  /// exposed so the health layer can recompute the sampling slack at a
  /// merged cross-shard N.
  [[nodiscard]] double z_corr() const noexcept { return z_corr_; }
  /// The additive conditioned-frequency slack used by output (0 for MST).
  [[nodiscard]] double correction() const noexcept;
  /// Point estimate f-hat for an arbitrary prefix (Definition 11's
  /// V * X-hat, using the backend's upper estimate).
  [[nodiscard]] double estimate(const Prefix& p) const override {
    return scale_ * static_cast<double>(hh_[p.node].upper(p.key));
  }

  // -- durable-store reload (src/store/serde.cpp) ---------------------------
  /// Rebuild node `node`'s backend from a serialized roster (counter-array
  /// order, see SpaceSaving::load) plus its arrivals total. Only available
  /// for backends with a load() path (Space-Saving); throws
  /// std::logic_error otherwise and std::invalid_argument on impossible
  /// rosters. The reloaded node reproduces the serialized instance's
  /// estimates and iteration order exactly.
  void restore_node(std::uint32_t node, const std::vector<HhEntry<Key128>>& entries,
                    std::uint64_t total);
  /// True iff the backend supports restore_node().
  [[nodiscard]] static constexpr bool backend_loadable() noexcept {
    return requires(Backend& b, const std::vector<HhEntry<Key128>>& e) {
      b.load(e, std::uint64_t{0});
    };
  }
  /// Restore the stream-level counters a reload cannot derive from the
  /// rosters: N (which output() thresholds and slack terms scale by) and
  /// the performed-updates tally.
  void restore_stream(std::uint64_t n, std::uint64_t updates) noexcept {
    n_ = n;
    updates_ = updates;
  }

 private:
  const Hierarchy* h_;
  LatticeMode mode_;
  LatticeParams p_;
  std::string name_;
  double eps_a_ = 0.0;
  double eps_s_ = 0.0;
  double delta_a_ = 0.0;
  double delta_s_ = 0.0;
  double scale_ = 1.0;
  double z_corr_ = 0.0;  ///< Z_{1 - delta/8}
  std::size_t counters_ = 0;
  std::uint32_t V_ = 1;
  std::uint32_t H_ = 1;
  std::vector<Backend> hh_;
  Xoroshiro128 rng_;
  std::uint64_t n_ = 0;
  std::uint64_t updates_ = 0;

  // -- update_batch() scratch (reused across batches; no semantic state, so
  //    clear() leaves them alone and they never serialize) ------------------
  /// One survivor of the compaction pass: packet order is preserved, so the
  /// apply loop replays increments in exactly the per-packet sequence.
  struct Survivor {
    std::uint32_t node;  ///< lattice node the draw selected
    std::uint32_t pkt;   ///< originating batch index (diagnostics/asserts)
    std::uint64_t hash;  ///< Backend::hash_of(mkey); 0 if not prefetchable
    Key128 mkey;         ///< node-masked key, ready to apply
  };
  /// Stage-1 compacted picks, packed (draw_index << 16) | node -- H < 2^16
  /// is enforced at construction, and only the surviving prefix is read.
  std::vector<std::uint64_t> picks_;
  std::vector<Survivor> survivors_;    ///< stage-2 masked + hashed work list
  void apply_survivors();              ///< stage 3 (lattice_hhh.cpp)
};

}  // namespace rhhh

#include "hh/count_min.hpp"
#include "hh/count_sketch.hpp"
#include "hh/exact_counter.hpp"
#include "hh/lossy_counting.hpp"
#include "hh/misra_gries.hpp"
#include "hh/space_saving.hpp"

namespace rhhh {

// The shipped configurations are explicitly instantiated in lattice_hhh.cpp.
extern template class LatticeHhh<SpaceSaving<Key128>>;
extern template class LatticeHhh<MisraGries<Key128>>;
extern template class LatticeHhh<LossyCounting<Key128>>;
extern template class LatticeHhh<CountMinHh<Key128>>;
extern template class LatticeHhh<CountSketchHh<Key128>>;
extern template class LatticeHhh<ExactCounter<Key128>>;

/// Space-Saving is the paper's evaluated backend.
using RhhhSpaceSaving = LatticeHhh<SpaceSaving<Key128>>;

/// Factory helpers mirroring the paper's named configurations.
[[nodiscard]] std::unique_ptr<RhhhSpaceSaving> make_rhhh(const Hierarchy& h,
                                                         LatticeParams p = {});
/// "10-RHHH": V = 10 * H.
[[nodiscard]] std::unique_ptr<RhhhSpaceSaving> make_10rhhh(const Hierarchy& h,
                                                           LatticeParams p = {});
[[nodiscard]] std::unique_ptr<RhhhSpaceSaving> make_mst(const Hierarchy& h,
                                                        LatticeParams p = {});

}  // namespace rhhh
