#include "hhh/hhh_types.hpp"

namespace rhhh {

// HhhAlgorithm's key is out-of-line so the vtable has a home TU.

}  // namespace rhhh
