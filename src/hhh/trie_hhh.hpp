// Full and Partial Ancestry [Cormode, Korn, Muthukrishnan & Srivastava,
// TKDD'08]: the deterministic trie-based HHH comparators the paper
// evaluates against (Figures 2-5).
//
// Both maintain a trie of tracked prefixes along the hierarchy's canonical
// parent chain, with lossy-counting epochs of w = ceil(1/eps) updates: a
// node records (g, delta) -- arrivals counted since insertion and the
// maximal undercount at insertion time (current epoch - 1). At each epoch
// boundary, leaf nodes with g + delta <= epoch are compressed into their
// nearest tracked ancestor.
//
//   * Full Ancestry inserts the arriving item *and* every missing ancestor
//     on its chain (the invariant: a tracked node's ancestors are tracked).
//   * Partial Ancestry lazily expands one node per arrival: it inserts only
//     the next missing node below the nearest tracked ancestor, so hot paths
//     grow toward the items while cold regions stay shallow.
//
// For 2D lattices we use Hierarchy::canonical_parent as the chain (see
// DESIGN.md, "Full/Partial Ancestry adaptation").
//
// Update cost is O(H) worst case, amortized O(H_chain + eps * cleanup) --
// notably *decreasing* with smaller eps (fewer compressions), the effect
// visible in the paper's Figure 5.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "hhh/hhh_types.hpp"
#include "util/flat_hash_map.hpp"

namespace rhhh {

enum class AncestryMode : std::uint8_t { kFull, kPartial };

[[nodiscard]] constexpr std::string_view to_string(AncestryMode m) noexcept {
  return m == AncestryMode::kFull ? "Full-Ancestry" : "Partial-Ancestry";
}

class TrieHhh final : public HhhAlgorithm {
 public:
  TrieHhh(const Hierarchy& h, AncestryMode mode, double eps);

  void update(Key128 x) override { update_weighted(x, 1); }
  void update_weighted(Key128 x, std::uint64_t w) override;
  [[nodiscard]] HhhSet output(double theta) const override;
  /// Counted mass of every tracked node under p plus the lossy-counting
  /// undercount bound (epoch - 1) -- exactly the f_hi output() computes
  /// for p. O(1) per probe against a per-node mass index that is rebuilt
  /// lazily after mutations (O(tracked x H) once per update batch, shared
  /// with output()), so estimate-heavy workloads -- the emerging-prefix
  /// probes and k-epoch trend queries over sealed windows -- pay the
  /// rebuild once and every probe after that is a hash lookup. The update
  /// path only flips a dirty bit. Note: with kPartial, arrivals counted at
  /// *ancestors* of p during lazy path expansion are not included (the
  /// same holds for output()'s f_hi), so early-stream estimates can trail
  /// the true count by more than the slack until the paths are built.
  [[nodiscard]] double estimate(const Prefix& p) const override;
  [[nodiscard]] std::uint64_t stream_length() const override { return n_; }
  void clear() override;
  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] const Hierarchy& hierarchy() const override { return *h_; }

  // -- introspection ---------------------------------------------------------
  [[nodiscard]] AncestryMode mode() const noexcept { return mode_; }
  [[nodiscard]] std::size_t tracked_nodes() const noexcept { return live_; }
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] double eps() const noexcept { return eps_; }
  [[nodiscard]] std::uint64_t compressions() const noexcept { return compressions_; }

  /// Structural invariant check for tests: the root is live and never has a
  /// parent; every live node's parent is live, strictly generalizes it, and
  /// child counts match reality; total mass (sum of g) equals the stream
  /// length.
  [[nodiscard]] bool validate() const;

 private:
  struct TrieNode {
    Prefix self{};
    Prefix parent{};       // valid while parent_valid
    std::uint64_t g = 0;   // arrivals counted at this node since insertion
    std::uint64_t delta = 0;  // maximal undercount at insertion
    std::uint32_t children = 0;
    std::uint16_t level = 0;
    bool parent_valid = false;
    bool live = false;
  };

  [[nodiscard]] std::uint32_t alloc_node();
  void insert_node(const Prefix& p, const Prefix& parent, bool parent_valid,
                   std::uint64_t g, std::uint64_t delta);
  void compress();
  /// (Re)build mass_index_: counted mass per *lattice* prefix, every
  /// tracked node contributing its g to all of its lattice ancestors.
  void rebuild_mass_index() const;

  const Hierarchy* h_;
  AncestryMode mode_;
  double eps_;
  std::string name_;
  std::uint64_t window_ = 0;      // epoch width: ceil(1/eps)
  std::uint64_t next_epoch_ = 0;  // N at which the next compression runs
  std::uint64_t epoch_ = 1;       // current epoch index b
  std::uint64_t n_ = 0;
  std::uint64_t compressions_ = 0;
  std::size_t live_ = 0;

  FlatHashMap<Prefix, std::uint32_t, PrefixHash> index_{1024};
  /// Per-(lattice node, masked key) counted-mass index serving estimate()
  /// probes and output()'s candidate enumeration. Lazily rebuilt: updates
  /// only mark it dirty, the first query after a mutation pays the rebuild.
  /// Mutable cache -- the monitor/trie is single-threaded by contract.
  mutable FlatHashMap<Prefix, std::uint64_t, PrefixHash> mass_index_{1024};
  mutable bool mass_index_dirty_ = true;
  std::vector<TrieNode> pool_;
  std::vector<std::uint32_t> free_;
  std::vector<Prefix> chain_scratch_;  // avoids per-update allocation
  std::vector<std::pair<std::uint32_t, std::uint32_t>> sweep_scratch_;
};

}  // namespace rhhh
