#include "hhh/trie_hhh.hpp"

#include <algorithm>
#include <stdexcept>

#include "hhh/conditioned.hpp"

namespace rhhh {

TrieHhh::TrieHhh(const Hierarchy& h, AncestryMode mode, double eps)
    : h_(&h), mode_(mode), eps_(eps), name_(to_string(mode)) {
  if (!(eps > 0.0) || eps >= 1.0) {
    throw std::invalid_argument("TrieHhh: eps must be in (0,1)");
  }
  window_ = static_cast<std::uint64_t>(std::ceil(1.0 / eps));
  clear();
}

std::uint32_t TrieHhh::alloc_node() {
  if (!free_.empty()) {
    const std::uint32_t s = free_.back();
    free_.pop_back();
    return s;
  }
  pool_.emplace_back();
  return static_cast<std::uint32_t>(pool_.size() - 1);
}

void TrieHhh::insert_node(const Prefix& p, const Prefix& parent, bool parent_valid,
                          std::uint64_t g, std::uint64_t delta) {
  const std::uint32_t s = alloc_node();
  TrieNode& n = pool_[s];
  n.self = p;
  n.parent = parent;
  n.parent_valid = parent_valid;
  n.g = g;
  n.delta = delta;
  n.children = 0;
  n.level = h_->node(p.node).level;
  n.live = true;
  index_.insert_or_assign(p, s);
  ++live_;
}

void TrieHhh::update_weighted(Key128 x, std::uint64_t w) {
  if (w == 0) return;
  n_ += w;
  mass_index_dirty_ = true;  // the only hot-path cost of the estimate index

  Prefix cur{h_->bottom(), h_->mask_key(h_->bottom(), x)};
  if (std::uint32_t* slot = index_.find(cur)) {
    pool_[*slot].g += w;
  } else {
    // Walk the canonical chain upward to the nearest tracked ancestor,
    // collecting the untracked prefixes on the way (the root is always
    // tracked, so the walk terminates).
    auto& chain = chain_scratch_;
    chain.clear();
    chain.push_back(cur);
    Prefix par = cur;
    std::uint32_t par_slot = 0;
    while (true) {
      const auto pn = h_->canonical_parent(par.node);
      par = h_->generalize_to(par, *pn);  // pn always exists below the root
      if (const std::uint32_t* slot = index_.find(par)) {
        par_slot = *slot;
        break;
      }
      chain.push_back(par);
    }

    const std::uint64_t delta = epoch_ - 1;
    if (mode_ == AncestryMode::kPartial) {
      // Lazy one-step path expansion: track only the next missing node below
      // the nearest tracked ancestor. Repeated traffic under a prefix grows
      // the path toward the items one level per arrival, so aggregate
      // structure materializes without full-path inserts.
      insert_node(chain.back(), par, true, w, delta);
      ++pool_[par_slot].children;
    } else {
      // Full ancestry: materialize the whole missing path so every tracked
      // node's ancestors are tracked. Intermediates carry no own mass.
      Prefix parent = par;
      for (std::size_t i = chain.size(); i-- > 1;) {
        insert_node(chain[i], parent, true, 0, delta);
        pool_[*index_.find(chain[i])].children = 1;
        parent = chain[i];
      }
      insert_node(chain.front(), parent, true, w, delta);
      ++pool_[par_slot].children;
    }
  }

  while (n_ >= next_epoch_) {
    compress();
    ++epoch_;
    next_epoch_ += window_;
  }
}

void TrieHhh::compress() {
  // Prune compressible leaves, most specific level first so a parent whose
  // last child disappears can be pruned in the same sweep.
  auto& sweep = sweep_scratch_;
  sweep.clear();
  for (std::uint32_t s = 0; s < pool_.size(); ++s) {
    if (pool_[s].live) sweep.emplace_back(pool_[s].level, s);
  }
  std::sort(sweep.begin(), sweep.end());
  for (const auto& [level, s] : sweep) {
    TrieNode& n = pool_[s];
    if (!n.live || n.children != 0 || !n.parent_valid) continue;
    if (n.g + n.delta > epoch_) continue;
    const std::uint32_t* ps = index_.find(n.parent);
    TrieNode& parent = pool_[*ps];  // invariant: parents of live nodes live
    parent.g += n.g;
    --parent.children;
    index_.erase(n.self);
    n.live = false;
    free_.push_back(s);
    --live_;
    ++compressions_;
  }
}

void TrieHhh::rebuild_mass_index() const {
  // Counted mass per *lattice* prefix: every tracked node contributes its g
  // to all of its lattice ancestors, so (unlike the canonical-parent tree)
  // off-chain aggregates such as (*, d) in two dimensions are estimated too.
  mass_index_.clear();
  const std::size_t H = h_->size();
  for (std::uint32_t s = 0; s < pool_.size(); ++s) {
    const TrieNode& n = pool_[s];
    if (!n.live || n.g == 0) continue;
    for (std::uint32_t a = 0; a < H; ++a) {
      if (h_->node_generalizes(a, n.self.node)) {
        mass_index_[Prefix{a, h_->mask_key(a, n.self.key)}] += n.g;
      }
    }
  }
  mass_index_dirty_ = false;
}

double TrieHhh::estimate(const Prefix& p) const {
  if (n_ == 0) return 0.0;
  // Every arrival is counted (g) at exactly one tracked node, and
  // compression folds a removed node's g into its parent: the mass of any
  // prefix is the sum over tracked nodes it generalizes, undercounting by
  // at most epoch - 1 (the lossy-counting bound output() uses as slack).
  // The per-prefix sums live in mass_index_, rebuilt lazily after updates.
  if (mass_index_dirty_) rebuild_mass_index();
  const std::uint64_t* f = mass_index_.find(p);
  // A prefix with zero tracked evidence reports 0, not the bare slack:
  // emerging_from() treats a zero previous share as "brand new, infinite
  // growth", and a slack-only floor would silently suppress exactly those
  // alarms on trie-backed windowed monitors.
  if (f == nullptr || *f == 0) return 0.0;
  return static_cast<double>(*f) + static_cast<double>(epoch_ - 1);
}

HhhSet TrieHhh::output(double theta) const {
  HhhSet P(h_->size());
  if (n_ == 0) return P;
  const double thresh = theta * static_cast<double>(n_);
  // Lossy-counting undercount bound: any prefix missed at most (epoch - 1)
  // ~ eps*N arrivals across insertion lag and compressions.
  const double slack = static_cast<double>(epoch_ - 1);

  if (mass_index_dirty_) rebuild_mass_index();
  const auto& counted = mass_index_;
  const std::size_t H = h_->size();

  const UpperEstimate upper = [&](const Prefix& q) {
    const std::uint64_t* f = counted.find(q);
    return (f != nullptr ? static_cast<double>(*f) : 0.0) + slack;
  };

  std::vector<std::vector<std::pair<Prefix, std::uint64_t>>> by_node(H);
  counted.for_each([&](const Prefix& p, const std::uint64_t& f) {
    by_node[p.node].emplace_back(p, f);
  });

  // Same conservative level ascent as Algorithm 1 (shared calcPred), with
  // the deterministic slack in place of the sampling correction.
  for (int level = 0; level < h_->num_levels(); ++level) {
    for (const std::uint32_t node : h_->nodes_at_level(level)) {
      for (const auto& [p, f] : by_node[node]) {
        const double f_lo = static_cast<double>(f);
        const double f_hi = f_lo + slack;
        // A prefix with f_hi < theta*N has true conditioned frequency below
        // the threshold (C <= f <= f_hi): skipping it is sound and removes
        // bound-slop false positives.
        if (f_hi < thresh) continue;
        const auto g_set = best_generalized(*h_, p, P);
        const double c_hat = f_hi + calc_pred(*h_, p, P, g_set, upper);
        if (c_hat >= thresh) {
          P.add(HhhCandidate{p, f_hi, f_lo, f_hi, c_hat});
        }
      }
    }
  }
  return P;
}

bool TrieHhh::validate() const {
  FlatHashMap<Prefix, std::uint32_t, PrefixHash> child_counts(2 * live_ + 16);
  std::size_t live_seen = 0;
  std::uint64_t mass = 0;
  bool root_seen = false;
  for (const TrieNode& n : pool_) {
    if (!n.live) continue;
    ++live_seen;
    mass += n.g;
    const std::uint32_t* slot = index_.find(n.self);
    if (slot == nullptr || !pool_[*slot].live || !(pool_[*slot].self == n.self)) {
      return false;
    }
    if (!n.parent_valid) {
      if (root_seen || n.self.node != h_->top()) return false;
      root_seen = true;
      continue;
    }
    const std::uint32_t* ps = index_.find(n.parent);
    if (ps == nullptr || !pool_[*ps].live) return false;
    if (!h_->strictly_generalizes(n.parent, n.self)) return false;
    ++child_counts[n.parent];
  }
  if (!root_seen || live_seen != live_ || mass != n_) return false;
  bool ok = true;
  for (const TrieNode& n : pool_) {
    if (!n.live) continue;
    const std::uint32_t* c = child_counts.find(n.self);
    const std::uint32_t actual = c != nullptr ? *c : 0;
    if (n.children != actual) ok = false;
  }
  return ok;
}

void TrieHhh::clear() {
  index_.clear();
  mass_index_.clear();
  mass_index_dirty_ = true;
  pool_.clear();
  free_.clear();
  live_ = 0;
  n_ = 0;
  epoch_ = 1;
  next_epoch_ = window_;
  compressions_ = 0;
  const Prefix root{h_->top(), Key128{}};
  insert_node(root, root, false, 0, 0);
}

}  // namespace rhhh
