// Conditioned-frequency estimation shared by the lattice algorithms:
// G(p|P) (Definition 14 / Definition 2) and calcPred (Algorithms 2 and 3).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "hhh/hhh_types.hpp"
#include "hierarchy/hierarchy.hpp"

namespace rhhh {

/// G(p|P): indices (into P.items()) of the members of P that are strictly
/// generalized by p with no other member of P strictly between them and p.
[[nodiscard]] std::vector<std::uint32_t> best_generalized(const Hierarchy& h,
                                                          const Prefix& p,
                                                          const HhhSet& P);

/// Upper-bound estimate for an arbitrary prefix's frequency (used for the
/// glb add-back in two dimensions, where the glb prefix is usually not a
/// member of P).
using UpperEstimate = std::function<double(const Prefix&)>;

/// calcPred (Algorithm 2 in one dimension, Algorithm 3 in two):
///   R = - sum_{h in G} f_lo(h)
///     + sum_{pairs h,h' in G, glb defined, no third member of G generalizes
///            the glb} f_hi(glb(h,h'))            (2D only)
/// The caller adds f_hi(p) and the sampling-slack term (Algorithm 1 lines
/// 12-13).
[[nodiscard]] double calc_pred(const Hierarchy& h, const Prefix& p, const HhhSet& P,
                               const std::vector<std::uint32_t>& g_set,
                               const UpperEstimate& upper_estimate);

}  // namespace rhhh
