#include "net/frame.hpp"

#include <algorithm>
#include <cstring>

namespace rhhh {

namespace {

[[nodiscard]] std::uint16_t load_be16(const std::uint8_t* p) noexcept {
  return static_cast<std::uint16_t>((std::uint16_t{p[0]} << 8) | p[1]);
}
[[nodiscard]] std::uint32_t load_be32(const std::uint8_t* p) noexcept {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | p[3];
}
void store_be16(std::uint8_t* p, std::uint16_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v >> 8);
  p[1] = static_cast<std::uint8_t>(v);
}
void store_be32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

void set_error(ParseError* out, ParseError e) noexcept {
  if (out != nullptr) *out = e;
}

}  // namespace

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) noexcept {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) sum += load_be16(data.data() + i);
  if (i < data.size()) sum += std::uint32_t{data[i]} << 8;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

std::optional<ParseResult> parse_frame(std::span<const std::uint8_t> frame,
                                       ParseError* error) noexcept {
  if (frame.size() < kEthHeaderLen) {
    set_error(error, ParseError::kTruncatedEthernet);
    return std::nullopt;
  }
  if (load_be16(frame.data() + 12) != kEtherTypeIpv4) {
    set_error(error, ParseError::kNotIpv4);
    return std::nullopt;
  }
  const std::uint8_t* ip = frame.data() + kEthHeaderLen;
  const std::size_t ip_avail = frame.size() - kEthHeaderLen;
  if (ip_avail < kIpv4MinHeaderLen) {
    set_error(error, ParseError::kTruncatedIpv4);
    return std::nullopt;
  }
  if ((ip[0] >> 4) != 4) {
    set_error(error, ParseError::kBadIpv4Version);
    return std::nullopt;
  }
  const std::size_t ihl = static_cast<std::size_t>(ip[0] & 0x0f) * 4;
  if (ihl < kIpv4MinHeaderLen || ihl > ip_avail) {
    set_error(error, ParseError::kBadIpv4HeaderLength);
    return std::nullopt;
  }
  const std::uint16_t total_len = load_be16(ip + 2);
  if (total_len < ihl || total_len > ip_avail) {
    set_error(error, ParseError::kBadIpv4TotalLength);
    return std::nullopt;
  }

  PacketRecord rec;
  rec.proto = ip[9];
  rec.src_ip = load_be32(ip + 12);
  rec.dst_ip = load_be32(ip + 16);
  rec.length = static_cast<std::uint16_t>(frame.size());

  const std::uint8_t* l4 = ip + ihl;
  const std::size_t l4_avail = total_len - ihl;
  if (rec.proto == static_cast<std::uint8_t>(IpProto::kUdp)) {
    if (l4_avail < kUdpHeaderLen) {
      set_error(error, ParseError::kTruncatedL4);
      return std::nullopt;
    }
    rec.src_port = load_be16(l4);
    rec.dst_port = load_be16(l4 + 2);
  } else if (rec.proto == static_cast<std::uint8_t>(IpProto::kTcp)) {
    if (l4_avail < kTcpMinHeaderLen) {
      set_error(error, ParseError::kTruncatedL4);
      return std::nullopt;
    }
    rec.src_port = load_be16(l4);
    rec.dst_port = load_be16(l4 + 2);
  }
  return ParseResult{rec};
}

std::vector<std::uint8_t> build_frame(const PacketRecord& p) {
  const bool udp = p.proto == static_cast<std::uint8_t>(IpProto::kUdp);
  const bool tcp = p.proto == static_cast<std::uint8_t>(IpProto::kTcp);
  const std::size_t l4_len = udp ? kUdpHeaderLen : (tcp ? kTcpMinHeaderLen : 8);
  const std::size_t min_len = kEthHeaderLen + kIpv4MinHeaderLen + l4_len;
  const std::size_t frame_len = std::max<std::size_t>(p.length, min_len);

  std::vector<std::uint8_t> f(frame_len, 0);
  // Ethernet: locally-administered MACs derived from the addresses.
  f[0] = 0x02;
  store_be32(f.data() + 1, p.dst_ip);
  f[6] = 0x02;
  store_be32(f.data() + 7, p.src_ip);
  store_be16(f.data() + 12, kEtherTypeIpv4);

  std::uint8_t* ip = f.data() + kEthHeaderLen;
  const std::uint16_t ip_total = static_cast<std::uint16_t>(frame_len - kEthHeaderLen);
  ip[0] = 0x45;  // version 4, IHL 5
  store_be16(ip + 2, ip_total);
  ip[8] = 64;  // TTL
  ip[9] = p.proto;
  store_be32(ip + 12, p.src_ip);
  store_be32(ip + 16, p.dst_ip);
  store_be16(ip + 10, 0);
  store_be16(ip + 10, internet_checksum({ip, kIpv4MinHeaderLen}));

  std::uint8_t* l4 = ip + kIpv4MinHeaderLen;
  if (udp) {
    store_be16(l4, p.src_port);
    store_be16(l4 + 2, p.dst_port);
    store_be16(l4 + 4, static_cast<std::uint16_t>(ip_total - kIpv4MinHeaderLen));
  } else if (tcp) {
    store_be16(l4, p.src_port);
    store_be16(l4 + 2, p.dst_port);
    l4[12] = 0x50;  // data offset 5 words
  }
  return f;
}

}  // namespace rhhh
