// Raw frame parsing and building: Ethernet II / IPv4 / {UDP, TCP, ICMP}.
//
// The OVS integration (paper §5) parses packet headers in the dataplane
// before flow lookup; this module provides that parse step for the
// mini-vswitch, plus a frame builder so tests and the traffic generator can
// produce valid byte buffers (the reproduction's stand-in for MoonGen).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/packet.hpp"

namespace rhhh {

inline constexpr std::size_t kEthHeaderLen = 14;
inline constexpr std::size_t kIpv4MinHeaderLen = 20;
inline constexpr std::size_t kUdpHeaderLen = 8;
inline constexpr std::size_t kTcpMinHeaderLen = 20;
inline constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;

/// Why a frame failed to parse (kept precise for dataplane drop counters).
enum class ParseError : std::uint8_t {
  kTruncatedEthernet,
  kNotIpv4,
  kTruncatedIpv4,
  kBadIpv4Version,
  kBadIpv4HeaderLength,
  kBadIpv4TotalLength,
  kTruncatedL4,
};

struct ParseResult {
  PacketRecord record;
};

/// Parses an Ethernet II frame carrying IPv4. On success fills a
/// PacketRecord (ports are zero for non-TCP/UDP payloads). Never throws;
/// malformed input yields the specific ParseError.
[[nodiscard]] std::optional<ParseResult> parse_frame(
    std::span<const std::uint8_t> frame, ParseError* error = nullptr) noexcept;

/// Builds a well-formed Ethernet/IPv4/UDP (or TCP/ICMP) frame for `p`,
/// padded to p.length bytes (>= the minimum for the protocol).
[[nodiscard]] std::vector<std::uint8_t> build_frame(const PacketRecord& p);

/// IETF internet checksum (RFC 1071) over a byte range.
[[nodiscard]] std::uint16_t internet_checksum(std::span<const std::uint8_t> data) noexcept;

}  // namespace rhhh
