#include "net/pcap.hpp"

#include <array>
#include <stdexcept>

#include "net/frame.hpp"

namespace rhhh {

namespace {

void put_u16(std::uint8_t* p, std::uint16_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}
void put_u32(std::uint8_t* p, std::uint32_t v) noexcept {
  put_u16(p, static_cast<std::uint16_t>(v));
  put_u16(p + 2, static_cast<std::uint16_t>(v >> 16));
}
[[nodiscard]] std::uint32_t get_u32(const std::uint8_t* p, bool swapped) noexcept {
  const std::uint32_t v = static_cast<std::uint32_t>(p[0]) |
                          (static_cast<std::uint32_t>(p[1]) << 8) |
                          (static_cast<std::uint32_t>(p[2]) << 16) |
                          (static_cast<std::uint32_t>(p[3]) << 24);
  if (!swapped) return v;
  return ((v & 0xff) << 24) | ((v & 0xff00) << 8) | ((v >> 8) & 0xff00) | (v >> 24);
}

constexpr std::size_t kGlobalHeader = 24;
constexpr std::size_t kRecordHeader = 16;

}  // namespace

PcapWriter::PcapWriter(const std::string& path, std::uint32_t snaplen)
    : out_(path, std::ios::binary | std::ios::trunc) {
  if (!out_) throw std::runtime_error("PcapWriter: cannot open " + path);
  std::array<std::uint8_t, kGlobalHeader> h{};
  put_u32(h.data(), kPcapMagicUsec);
  put_u16(h.data() + 4, 2);   // version major
  put_u16(h.data() + 6, 4);   // version minor
  put_u32(h.data() + 8, 0);   // thiszone
  put_u32(h.data() + 12, 0);  // sigfigs
  put_u32(h.data() + 16, snaplen);
  put_u32(h.data() + 20, kPcapDltEthernet);
  out_.write(reinterpret_cast<const char*>(h.data()), kGlobalHeader);
}

void PcapWriter::write_frame(const std::vector<std::uint8_t>& frame,
                             std::uint32_t ts_sec, std::uint32_t ts_usec) {
  std::array<std::uint8_t, kRecordHeader> h{};
  put_u32(h.data(), ts_sec);
  put_u32(h.data() + 4, ts_usec);
  put_u32(h.data() + 8, static_cast<std::uint32_t>(frame.size()));
  put_u32(h.data() + 12, static_cast<std::uint32_t>(frame.size()));
  out_.write(reinterpret_cast<const char*>(h.data()), kRecordHeader);
  out_.write(reinterpret_cast<const char*>(frame.data()),
             static_cast<std::streamsize>(frame.size()));
  if (!out_) throw std::runtime_error("PcapWriter: write failed");
  ++count_;
}

void PcapWriter::write(const PacketRecord& p) {
  write_frame(build_frame(p), p.ts_us / 1000000u, p.ts_us % 1000000u);
}

PcapReader::PcapReader(const std::string& path) : in_(path, std::ios::binary) {
  if (!in_) throw std::runtime_error("PcapReader: cannot open " + path);
  std::array<std::uint8_t, kGlobalHeader> h{};
  in_.read(reinterpret_cast<char*>(h.data()), kGlobalHeader);
  if (static_cast<std::size_t>(in_.gcount()) != kGlobalHeader) {
    throw std::runtime_error("PcapReader: truncated global header");
  }
  const std::uint32_t magic = get_u32(h.data(), false);
  if (magic == kPcapMagicUsec) {
    swapped_ = false;
    nsec_ = false;
  } else if (magic == kPcapMagicNsec) {
    swapped_ = false;
    nsec_ = true;
  } else {
    const std::uint32_t sw = get_u32(h.data(), true);
    if (sw == kPcapMagicUsec) {
      swapped_ = true;
      nsec_ = false;
    } else if (sw == kPcapMagicNsec) {
      swapped_ = true;
      nsec_ = true;
    } else {
      throw std::runtime_error("PcapReader: bad magic in " + path);
    }
  }
  snaplen_ = get_u32(h.data() + 16, swapped_);
  const std::uint32_t dlt = get_u32(h.data() + 20, swapped_);
  if (dlt != kPcapDltEthernet) {
    throw std::runtime_error("PcapReader: unsupported link type " +
                             std::to_string(dlt));
  }
}

std::optional<std::vector<std::uint8_t>> PcapReader::next_frame() {
  std::array<std::uint8_t, kRecordHeader> h{};
  in_.read(reinterpret_cast<char*>(h.data()), kRecordHeader);
  if (in_.gcount() == 0) return std::nullopt;  // clean EOF
  if (static_cast<std::size_t>(in_.gcount()) != kRecordHeader) {
    throw std::runtime_error("PcapReader: truncated record header");
  }
  const std::uint32_t incl = get_u32(h.data() + 8, swapped_);
  if (incl > snaplen_ && incl > (1u << 24)) {
    throw std::runtime_error("PcapReader: implausible record length");
  }
  std::vector<std::uint8_t> frame(incl);
  in_.read(reinterpret_cast<char*>(frame.data()), static_cast<std::streamsize>(incl));
  if (in_.gcount() != static_cast<std::streamsize>(incl)) {
    throw std::runtime_error("PcapReader: truncated record body");
  }
  ++frames_;
  return frame;
}

std::optional<PacketRecord> PcapReader::next() {
  while (auto frame = next_frame()) {
    if (const auto parsed = parse_frame(*frame)) return parsed->record;
  }
  return std::nullopt;
}

std::vector<PacketRecord> PcapReader::read_all(const std::string& path) {
  PcapReader reader(path);
  std::vector<PacketRecord> out;
  while (auto p = reader.next()) out.push_back(*p);
  return out;
}

}  // namespace rhhh
