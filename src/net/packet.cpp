// packet.hpp is header-only; this TU exists so the net library always has
// at least one object file and to host non-inline helpers if they grow.
#include "net/packet.hpp"

namespace rhhh {

static_assert(sizeof(PacketRecord) <= 24, "PacketRecord must stay compact");

}  // namespace rhhh
