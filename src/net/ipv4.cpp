#include "net/ipv4.hpp"

#include <charconv>

#include "util/bits.hpp"

namespace rhhh {

std::optional<Ipv4> parse_ipv4(std::string_view s) noexcept {
  std::uint32_t out = 0;
  const char* p = s.data();
  const char* end = s.data() + s.size();
  for (int i = 0; i < 4; ++i) {
    unsigned octet = 0;
    auto [next, ec] = std::from_chars(p, end, octet);
    if (ec != std::errc{} || next == p || octet > 255) return std::nullopt;
    out = (out << 8) | octet;
    p = next;
    if (i < 3) {
      if (p == end || *p != '.') return std::nullopt;
      ++p;
    }
  }
  if (p != end) return std::nullopt;
  return out;
}

std::string format_ipv4(Ipv4 addr) {
  std::string s;
  s.reserve(15);
  for (int shift = 24; shift >= 0; shift -= 8) {
    s += std::to_string((addr >> shift) & 0xff);
    if (shift > 0) s += '.';
  }
  return s;
}

std::string format_ipv4_prefix(Ipv4 addr, int prefix_bits) {
  if (prefix_bits <= 0) return "*";
  if (prefix_bits >= 32) return format_ipv4(addr);
  if (prefix_bits % 8 == 0) {
    const int bytes = prefix_bits / 8;
    std::string s;
    for (int i = 0; i < 4; ++i) {
      if (i > 0) s += '.';
      if (i < bytes) {
        s += std::to_string((addr >> (24 - 8 * i)) & 0xff);
      } else {
        s += '*';
      }
    }
    return s;
  }
  const Ipv4 masked = addr & static_cast<Ipv4>(high_bits_mask64(prefix_bits) >> 32);
  return format_ipv4(masked) + "/" + std::to_string(prefix_bits);
}

}  // namespace rhhh
