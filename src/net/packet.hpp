// PacketRecord: the normalized unit of traffic throughout the library.
//
// Trace generators produce PacketRecords, the virtual switch forwards them,
// and HHH algorithms consume the (src, dst) pair. A compact 24-byte POD so
// pre-generated traces of tens of millions of packets fit in memory.
#pragma once

#include <cstdint>

#include "net/ipv4.hpp"
#include "util/key128.hpp"

namespace rhhh {

/// IP protocol numbers used by the trace generator and switch.
enum class IpProto : std::uint8_t { kIcmp = 1, kTcp = 6, kUdp = 17 };

struct PacketRecord {
  Ipv4 src_ip = 0;
  Ipv4 dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t proto = static_cast<std::uint8_t>(IpProto::kUdp);
  std::uint16_t length = 64;   // wire length in bytes
  std::uint32_t ts_us = 0;     // microseconds since trace start

  friend constexpr bool operator==(const PacketRecord&, const PacketRecord&) noexcept =
      default;

  /// 1D key: the source address (the hierarchies the paper evaluates in one
  /// dimension are source-prefix hierarchies).
  [[nodiscard]] constexpr Key128 src_key() const noexcept {
    return Key128::from_u32(src_ip);
  }
  /// 2D key: source||destination.
  [[nodiscard]] constexpr Key128 pair_key() const noexcept {
    return Key128::from_pair(src_ip, dst_ip);
  }
};

/// The exact-match 5-tuple used by the virtual switch flow caches.
struct FiveTuple {
  Ipv4 src_ip = 0;
  Ipv4 dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t proto = 0;

  friend constexpr bool operator==(const FiveTuple&, const FiveTuple&) noexcept = default;

  [[nodiscard]] static constexpr FiveTuple of(const PacketRecord& p) noexcept {
    return FiveTuple{p.src_ip, p.dst_ip, p.src_port, p.dst_port, p.proto};
  }
};

struct FiveTupleHash {
  [[nodiscard]] std::uint64_t operator()(const FiveTuple& t) const noexcept {
    const std::uint64_t a = (std::uint64_t{t.src_ip} << 32) | t.dst_ip;
    const std::uint64_t b = (std::uint64_t{t.src_port} << 32) |
                            (std::uint64_t{t.dst_port} << 16) | t.proto;
    return mix64(a ^ rotl64(mix64(b), 23));
  }
};

}  // namespace rhhh
