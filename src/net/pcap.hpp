// Classic libpcap capture files (tcpdump format): reader and writer.
//
// The paper's traces are CAIDA captures distributed as pcap; this module
// lets the tooling consume real captures and emit captures other tools can
// open. Both endiannesses and both timestamp resolutions (usec 0xa1b2c3d4,
// nsec 0xa1b23c4d) are read; writing emits native-endian microsecond
// files with Ethernet (DLT_EN10MB) link type.
#pragma once

#include <cstdint>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "net/packet.hpp"

namespace rhhh {

inline constexpr std::uint32_t kPcapMagicUsec = 0xa1b2c3d4u;
inline constexpr std::uint32_t kPcapMagicNsec = 0xa1b23c4du;
inline constexpr std::uint32_t kPcapDltEthernet = 1;

class PcapWriter {
 public:
  /// Opens (truncates) `path` and writes the global header; throws
  /// std::runtime_error on failure.
  explicit PcapWriter(const std::string& path, std::uint32_t snaplen = 65535);

  /// Writes one record: the PacketRecord is rendered as a well-formed
  /// Ethernet/IPv4 frame (net/frame.hpp) with its ts_us as the timestamp.
  void write(const PacketRecord& p);
  /// Writes a pre-built frame with an explicit timestamp.
  void write_frame(const std::vector<std::uint8_t>& frame, std::uint32_t ts_sec,
                   std::uint32_t ts_usec);

  [[nodiscard]] std::uint64_t written() const noexcept { return count_; }

 private:
  std::ofstream out_;
  std::uint64_t count_ = 0;
};

class PcapReader {
 public:
  /// Opens and validates the global header (any endianness / resolution);
  /// throws std::runtime_error on failure or non-Ethernet link type.
  explicit PcapReader(const std::string& path);

  /// Next IPv4 packet, parsed through the frame parser. Non-IPv4 frames are
  /// skipped; nullopt at end of file. Throws on a truncated record.
  [[nodiscard]] std::optional<PacketRecord> next();

  /// Next raw frame regardless of contents; nullopt at end of file.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> next_frame();

  [[nodiscard]] bool swapped() const noexcept { return swapped_; }
  [[nodiscard]] bool nanosecond() const noexcept { return nsec_; }
  [[nodiscard]] std::uint64_t frames_read() const noexcept { return frames_; }

  /// Convenience: read every parseable IPv4 packet of a file.
  [[nodiscard]] static std::vector<PacketRecord> read_all(const std::string& path);

 private:
  std::ifstream in_;
  bool swapped_ = false;
  bool nsec_ = false;
  std::uint32_t snaplen_ = 0;
  std::uint64_t frames_ = 0;
};

}  // namespace rhhh
