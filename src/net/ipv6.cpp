#include "net/ipv6.hpp"

#include <array>
#include <charconv>

#include "util/bits.hpp"

namespace rhhh {

namespace {

std::optional<unsigned> parse_group(std::string_view s) noexcept {
  if (s.empty() || s.size() > 4) return std::nullopt;
  unsigned v = 0;
  auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v, 16);
  if (ec != std::errc{} || p != s.data() + s.size()) return std::nullopt;
  return v;
}

Ipv6 from_groups(const std::array<std::uint16_t, 8>& g) noexcept {
  Ipv6 a;
  for (int i = 0; i < 4; ++i) a.hi = (a.hi << 16) | g[static_cast<std::size_t>(i)];
  for (int i = 4; i < 8; ++i) a.lo = (a.lo << 16) | g[static_cast<std::size_t>(i)];
  return a;
}

}  // namespace

std::optional<Ipv6> parse_ipv6(std::string_view s) noexcept {
  // Split on "::" (at most one occurrence).
  const auto dc = s.find("::");
  std::string_view left = s;
  std::string_view right{};
  bool compressed = false;
  if (dc != std::string_view::npos) {
    if (s.find("::", dc + 1) != std::string_view::npos) return std::nullopt;
    compressed = true;
    left = s.substr(0, dc);
    right = s.substr(dc + 2);
  }

  auto split_groups = [](std::string_view part,
                         std::array<std::uint16_t, 8>& out, int& n) -> bool {
    if (part.empty()) return true;
    std::size_t pos = 0;
    while (true) {
      const auto colon = part.find(':', pos);
      const std::string_view tok =
          colon == std::string_view::npos ? part.substr(pos) : part.substr(pos, colon - pos);
      const auto v = parse_group(tok);
      if (!v || n >= 8) return false;
      out[static_cast<std::size_t>(n++)] = static_cast<std::uint16_t>(*v);
      if (colon == std::string_view::npos) return true;
      pos = colon + 1;
    }
  };

  std::array<std::uint16_t, 8> lg{};
  std::array<std::uint16_t, 8> rg{};
  int ln = 0;
  int rn = 0;
  if (!split_groups(left, lg, ln)) return std::nullopt;
  if (!split_groups(right, rg, rn)) return std::nullopt;

  std::array<std::uint16_t, 8> g{};
  if (compressed) {
    if (ln + rn >= 8) return std::nullopt;  // "::" must compress >= 1 group
    for (int i = 0; i < ln; ++i) g[static_cast<std::size_t>(i)] = lg[static_cast<std::size_t>(i)];
    for (int i = 0; i < rn; ++i)
      g[static_cast<std::size_t>(8 - rn + i)] = rg[static_cast<std::size_t>(i)];
  } else {
    if (ln != 8) return std::nullopt;
    g = lg;
  }
  return from_groups(g);
}

std::string format_ipv6(const Ipv6& addr) {
  std::array<std::uint16_t, 8> g{};
  for (int i = 0; i < 8; ++i) g[static_cast<std::size_t>(i)] = addr.group(i);

  // Longest run of zero groups (length >= 2) gets "::".
  int best_start = -1;
  int best_len = 0;
  for (int i = 0; i < 8;) {
    if (g[static_cast<std::size_t>(i)] != 0) {
      ++i;
      continue;
    }
    int j = i;
    while (j < 8 && g[static_cast<std::size_t>(j)] == 0) ++j;
    if (j - i > best_len) {
      best_len = j - i;
      best_start = i;
    }
    i = j;
  }
  if (best_len < 2) best_start = -1;

  std::string out;
  char buf[8];
  int i = 0;
  while (i < 8) {
    if (i == best_start) {
      out += "::";
      i += best_len;
      continue;
    }
    if (!out.empty() && out.back() != ':') out += ':';
    auto [p, ec] = std::to_chars(buf, buf + sizeof buf, g[static_cast<std::size_t>(i)], 16);
    (void)ec;
    out.append(buf, p);
    ++i;
  }
  return out;
}

std::string format_ipv6_prefix(const Ipv6& addr, int prefix_bits) {
  if (prefix_bits <= 0) return "*";
  if (prefix_bits >= 128) return format_ipv6(addr);
  Ipv6 masked = addr;
  if (prefix_bits <= 64) {
    masked.hi &= high_bits_mask64(prefix_bits);
    masked.lo = 0;
  } else {
    masked.lo &= high_bits_mask64(prefix_bits - 64);
  }
  return format_ipv6(masked) + "/" + std::to_string(prefix_bits);
}

}  // namespace rhhh
