// IPv4 address handling: parse, format, prefix formatting with wildcards.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace rhhh {

/// IPv4 addresses are host-order 32-bit integers throughout the library
/// (the first dotted octet is the most significant byte).
using Ipv4 = std::uint32_t;

/// Builds an address from its four dotted octets: ipv4(181,7,20,6).
[[nodiscard]] constexpr Ipv4 ipv4(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                                  std::uint8_t d) noexcept {
  return (std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
         (std::uint32_t{c} << 8) | std::uint32_t{d};
}

/// Parses dotted-quad notation ("181.7.20.6"). Rejects out-of-range octets,
/// missing components and trailing garbage.
[[nodiscard]] std::optional<Ipv4> parse_ipv4(std::string_view s) noexcept;

/// Formats as dotted quad.
[[nodiscard]] std::string format_ipv4(Ipv4 addr);

/// Formats the first `prefix_bits` bits as a prefix in the paper's style:
/// byte-aligned prefixes use wildcard octets ("181.7.*.*"), other lengths
/// use CIDR notation ("181.7.16.0/22"). prefix_bits == 0 yields "*".
[[nodiscard]] std::string format_ipv4_prefix(Ipv4 addr, int prefix_bits);

}  // namespace rhhh
