// IPv6 address handling.
//
// IPv6 is the paper's motivating case for large hierarchies (Section 1:
// "The transition to IPv6 is expected to increase hierarchies' sizes and
// render existing approaches even slower"). The hierarchy-scaling ablation
// runs 1D IPv6 byte/nibble hierarchies on these addresses.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "util/key128.hpp"

namespace rhhh {

/// 128-bit IPv6 address; hi holds the first 8 bytes (network order semantics:
/// the top bit of `hi` is the first bit on the wire).
struct Ipv6 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend constexpr bool operator==(const Ipv6&, const Ipv6&) noexcept = default;

  [[nodiscard]] constexpr Key128 key() const noexcept { return Key128{hi, lo}; }
  [[nodiscard]] static constexpr Ipv6 from_key(Key128 k) noexcept {
    return Ipv6{k.hi, k.lo};
  }
  /// The i-th 16-bit group, i in [0,8), group 0 first on the wire.
  [[nodiscard]] constexpr std::uint16_t group(int i) const noexcept {
    const std::uint64_t w = i < 4 ? hi : lo;
    return static_cast<std::uint16_t>(w >> (48 - 16 * (i & 3)));
  }
};

/// Parses full and "::"-compressed textual form (no embedded IPv4 form).
[[nodiscard]] std::optional<Ipv6> parse_ipv6(std::string_view s) noexcept;

/// Formats in canonical RFC 5952 style (lowercase hex, longest zero run
/// compressed with "::").
[[nodiscard]] std::string format_ipv6(const Ipv6& addr);

/// Prefix formatting ("2001:db8::/32"); prefix_bits == 0 yields "*".
[[nodiscard]] std::string format_ipv6_prefix(const Ipv6& addr, int prefix_bits);

}  // namespace rhhh
