# ASan + UBSan instrumentation for the whole tree (RHHH_SANITIZE=ON, used by
# the `asan` preset). Applied globally rather than per-target so that
# rhhh_core, gtest glue and test binaries all agree on the runtime.

if(RHHH_SANITIZE)
  if(MSVC)
    add_compile_options(/fsanitize=address)
  else()
    add_compile_options(
      -fsanitize=address,undefined
      -fno-sanitize-recover=all
      -fno-omit-frame-pointer
      -g)
    add_link_options(-fsanitize=address,undefined)
  endif()
endif()
