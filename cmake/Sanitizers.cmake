# Sanitizer instrumentation for the whole tree. Applied globally rather than
# per-target so that rhhh_core, gtest glue and test binaries all agree on the
# runtime.
#
#   RHHH_SANITIZE=ON  -- ASan + UBSan (the `asan` preset)
#   RHHH_TSAN=ON      -- ThreadSanitizer (the `tsan` preset): the concurrency
#                        gate over the engine's lock-free hot path (SPSC
#                        rings, coordinator budget metering, epoch quiesce,
#                        archiver hand-off). Mutually exclusive with ASan --
#                        the runtimes cannot share a process.

if(RHHH_SANITIZE AND RHHH_TSAN)
  message(FATAL_ERROR "RHHH_SANITIZE (ASan) and RHHH_TSAN cannot be combined: "
    "the sanitizer runtimes are mutually exclusive. Configure one preset at a "
    "time (build-asan / build-tsan are separate binary dirs).")
endif()

if(RHHH_SANITIZE)
  if(MSVC)
    add_compile_options(/fsanitize=address)
  else()
    add_compile_options(
      -fsanitize=address,undefined
      -fno-sanitize-recover=all
      -fno-omit-frame-pointer
      -g)
    add_link_options(-fsanitize=address,undefined)
  endif()
endif()

if(RHHH_TSAN)
  if(MSVC)
    message(FATAL_ERROR "RHHH_TSAN requires a GCC/Clang toolchain")
  endif()
  # -O1/-O2 keep the instrumented hot loops fast enough for the stress
  # suites; frame pointers keep TSan's reports readable.
  add_compile_options(
    -fsanitize=thread
    -fno-omit-frame-pointer
    -g)
  add_link_options(-fsanitize=thread)
endif()
