# Every public header must compile as its own translation unit (no hidden
# include-order dependencies). For each src/**/*.hpp a one-line TU is
# generated that includes only that header; the `rhhh_header_check` target
# compiles them all and nothing links them. CI builds the target; locally,
# `cmake --build build --target rhhh_header_check`.

file(GLOB_RECURSE _rhhh_public_headers CONFIGURE_DEPENDS
  ${CMAKE_CURRENT_SOURCE_DIR}/src/*.hpp)

set(_rhhh_header_tus "")
foreach(hdr IN LISTS _rhhh_public_headers)
  file(RELATIVE_PATH rel ${CMAKE_CURRENT_SOURCE_DIR}/src ${hdr})
  string(REPLACE "/" "_" tu_name ${rel})
  string(REPLACE ".hpp" ".cpp" tu_name ${tu_name})
  set(tu ${CMAKE_BINARY_DIR}/header_check/${tu_name})
  file(WRITE ${tu} "#include \"${rel}\"  // self-containment check\n")
  list(APPEND _rhhh_header_tus ${tu})
endforeach()

add_library(rhhh_header_check OBJECT EXCLUDE_FROM_ALL ${_rhhh_header_tus})
target_include_directories(rhhh_header_check PRIVATE ${CMAKE_CURRENT_SOURCE_DIR}/src)
target_link_libraries(rhhh_header_check PRIVATE rhhh_warnings)
