# Warning policy shared by rhhh_core, the tests, benches and examples.
# Consumed by linking the INTERFACE target `rhhh_warnings` (PRIVATE, so the
# flags never propagate to downstream users of rhhh_core).

add_library(rhhh_warnings INTERFACE)

if(MSVC)
  target_compile_options(rhhh_warnings INTERFACE /W4)
  if(RHHH_WERROR)
    target_compile_options(rhhh_warnings INTERFACE /WX)
  endif()
else()
  target_compile_options(rhhh_warnings INTERFACE -Wall -Wextra -Wpedantic)
  if(RHHH_WERROR)
    target_compile_options(rhhh_warnings INTERFACE -Werror)
  endif()
endif()
