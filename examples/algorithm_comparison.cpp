// Side-by-side comparison of every HHH algorithm in the library on the same
// stream: runtime, memory-ish footprint (tracked state), returned set, and
// agreement with the exact offline ground truth -- a miniature of the
// paper's evaluation section in one program.
//
// Run:  ./algorithm_comparison [trace] [num_packets]
//       trace in {chicago15, chicago16, sanjose13, sanjose14}
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/monitor.hpp"
#include "eval/ground_truth.hpp"
#include "eval/metrics.hpp"
#include "trace/trace_gen.hpp"

namespace {

double now_sec() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string trace = argc > 1 ? argv[1] : "chicago16";
  const std::size_t n = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 4'000'000;
  const double eps = 0.01;  // keeps psi(RHHH) below the default N
  const double delta = 0.01;
  const double theta = 0.03;

  const rhhh::Hierarchy h = rhhh::Hierarchy::ipv4_2d(rhhh::Granularity::kByte);
  std::printf("trace=%s  N=%zu  hierarchy=%s (H=%zu)  eps=%g  theta=%g\n\n",
              trace.c_str(), n, h.name().c_str(), h.size(), eps, theta);

  // Pre-generate the stream so every algorithm sees identical input.
  rhhh::TraceGenerator gen(rhhh::trace_preset(trace));
  std::vector<rhhh::Key128> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) keys.push_back(h.key_of(gen.next()));

  rhhh::ExactHhh truth(h);
  for (const rhhh::Key128& k : keys) truth.add(k);
  const rhhh::HhhSet exact = truth.compute(theta);
  std::printf("exact HHH set (|P|=%zu):\n", exact.size());
  for (const rhhh::HhhCandidate& c : exact) {
    std::printf("  %-34s f=%.0f (%.2f%%)\n", h.format(c.prefix).c_str(), c.f_est,
                100.0 * c.f_est / static_cast<double>(n));
  }

  const rhhh::AlgorithmKind kinds[] = {
      rhhh::AlgorithmKind::kRhhh,         rhhh::AlgorithmKind::kTenRhhh,
      rhhh::AlgorithmKind::kMst,          rhhh::AlgorithmKind::kSampledMst,
      rhhh::AlgorithmKind::kPartialAncestry, rhhh::AlgorithmKind::kFullAncestry,
  };

  std::printf("\n%-18s %12s %10s %10s %10s %10s\n", "algorithm", "Mpkt/s",
              "returned", "FP-ratio", "recall", "psi");
  for (const rhhh::AlgorithmKind kind : kinds) {
    rhhh::MonitorConfig cfg;
    cfg.algorithm = kind;
    cfg.eps = eps;
    cfg.delta = delta;
    auto alg = rhhh::make_algorithm(h, cfg);
    const double t0 = now_sec();
    for (const rhhh::Key128& k : keys) alg->update(k);
    const double mpps = static_cast<double>(n) / (now_sec() - t0) / 1e6;
    const rhhh::HhhSet out = alg->output(theta);
    const rhhh::FalsePositiveReport rep = rhhh::false_positives(exact, out);
    std::printf("%-18s %12.2f %10zu %10.3f %10.3f %10.3g\n",
                std::string(alg->name()).c_str(), mpps, out.size(), rep.ratio(),
                rep.recall(), alg->psi());
  }

  std::printf(
      "\nReading guide: all algorithms should reach recall ~1.0; the\n"
      "randomized ones trade extra false positives below psi for update\n"
      "speed -- the paper's core trade-off.\n");
  return 0;
}
