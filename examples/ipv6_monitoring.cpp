// IPv6 hierarchical heavy hitters -- the paper's large-H motivation made
// concrete (Section 1: "The transition to IPv6 is expected to increase
// hierarchies' sizes and render existing approaches even slower";
// Section 7 reiterates it for the O(1) update bound).
//
// Monitors a synthetic IPv6 stream on the 1D nibble hierarchy (H = 33,
// same size as IPv4 1D bits) with RHHH and MST side by side: identical
// reports, ~H-fold update-cost gap.
//
// Run:  ./ipv6_monitoring [num_packets]
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "hhh/lattice_hhh.hpp"
#include "net/ipv6.hpp"
#include "trace/address_model.hpp"
#include "trace/zipf.hpp"
#include "util/random.hpp"

namespace {

double now_sec() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4'000'000;
  const rhhh::Hierarchy h = rhhh::Hierarchy::ipv6_1d(rhhh::Granularity::kNibble);
  std::printf("hierarchy: %s, H=%zu, depth=%d\n", h.name().c_str(), h.size(),
              h.depth());

  // Synthetic IPv6 traffic: Zipf flows over hierarchically skewed addresses.
  rhhh::HierarchicalAddressModel model(2026, {1.3, 1.05, 0.9, 0.7});
  rhhh::ZipfDistribution flows(1 << 20, 1.1);
  rhhh::Xoroshiro128 rng(7);

  rhhh::LatticeParams lp;
  lp.eps = 0.01;
  lp.delta = 0.01;
  rhhh::RhhhSpaceSaving fast(h, rhhh::LatticeMode::kRhhh, lp);
  rhhh::RhhhSpaceSaving slow(h, rhhh::LatticeMode::kMst, lp);

  std::vector<rhhh::Key128> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys.push_back(model.address6(flows(rng)).key());
  }

  double t0 = now_sec();
  for (const rhhh::Key128& k : keys) fast.update(k);
  const double t_rhhh = now_sec() - t0;
  t0 = now_sec();
  for (const rhhh::Key128& k : keys) slow.update(k);
  const double t_mst = now_sec() - t0;

  std::printf("RHHH: %.1f M packets/s   MST: %.1f M packets/s   (x%.1f at H=%zu)\n",
              double(n) / t_rhhh / 1e6, double(n) / t_mst / 1e6, t_mst / t_rhhh,
              h.size());

  const double theta = 0.05;
  std::printf("\nIPv6 HHH at theta=%.0f%% (RHHH | in MST too?):\n", theta * 100);
  const rhhh::HhhSet mst_set = slow.output(theta);
  for (const rhhh::HhhCandidate& c : fast.output(theta)) {
    std::printf("  %-42s ~%5.2f%%  %s\n", h.format(c.prefix).c_str(),
                100.0 * c.f_est / double(n),
                mst_set.contains(c.prefix) ? "[both]" : "[RHHH only]");
  }
  std::printf("\npsi(RHHH at H=33) = %.3g packets; the larger the hierarchy, the\n"
              "bigger RHHH's speed edge -- and IPv6 hierarchies only grow.\n",
              fast.psi());
  return 0;
}
