// DDoS detection -- the paper's motivating application (Section 1): "each
// device generates a small portion of the traffic but their combined volume
// is overwhelming. HH measurement is therefore insufficient as each
// individual device is not a heavy hitter."
//
// This example simulates exactly that: background backbone traffic, then an
// attack ramping up from thousands of distinct sources inside one /16
// toward a single victim. A per-epoch RHHH monitor flags the attacking
// aggregate (a source-prefix HHH) even though no single attacker is a heavy
// hitter, and a naive top-flows view sees nothing.
//
// Run:  ./ddos_detection
#include <cstdio>
#include <string>

#include "core/monitor.hpp"
#include "hh/space_saving.hpp"
#include "net/ipv4.hpp"
#include "trace/trace_gen.hpp"
#include "util/random.hpp"

namespace {

// Epochs long enough that the randomized slack 2Z*sqrt(NV) sits well below
// theta*N (about half of it here), so aggregate alerts are not noise.
constexpr std::size_t kEpochPackets = 2'000'000;
constexpr double kTheta = 0.05;

struct AttackModel {
  rhhh::Ipv4 subnet = rhhh::ipv4(45, 137, 0, 0);  // attackers live in 45.137/16
  rhhh::Ipv4 victim = rhhh::ipv4(203, 0, 113, 10);
  double intensity = 0.0;  // fraction of epoch traffic
};

rhhh::PacketRecord attack_packet(const AttackModel& a, rhhh::Xoroshiro128& rng) {
  rhhh::PacketRecord p;
  // Thousands of distinct spoofed sources inside the /16: each individual
  // source stays far below any per-flow heavy-hitter threshold.
  p.src_ip = a.subnet | rng.bounded(1 << 16);
  p.dst_ip = a.victim;
  p.src_port = static_cast<std::uint16_t>(1024 + rng.bounded(60000));
  p.dst_port = 80;
  p.proto = static_cast<std::uint8_t>(rhhh::IpProto::kTcp);
  p.length = 64;
  return p;
}

}  // namespace

int main() {
  rhhh::MonitorConfig cfg;
  cfg.hierarchy = rhhh::HierarchyKind::kIpv4TwoDimBytes;
  cfg.algorithm = rhhh::AlgorithmKind::kRhhh;
  cfg.eps = 0.01;
  cfg.delta = 0.01;
  rhhh::HhhMonitor monitor(cfg);

  // The naive comparison: a per-flow (fully-specified pair) heavy hitter
  // tracker, as deployed for elephant-flow detection.
  rhhh::SpaceSaving<rhhh::Key128> per_flow(1000);

  rhhh::TraceGenerator background(rhhh::trace_preset("sanjose14"));
  rhhh::Xoroshiro128 rng(7);
  AttackModel attack;

  std::printf("epoch | attack%% | HHH verdict                          | naive top-flow share\n");
  std::printf("------+---------+--------------------------------------+---------------------\n");

  for (int epoch = 0; epoch < 8; ++epoch) {
    // Attack ramps up from epoch 3.
    attack.intensity = epoch < 3 ? 0.0 : 0.12 * (epoch - 2);
    monitor.clear();
    per_flow.clear();
    for (std::size_t i = 0; i < kEpochPackets; ++i) {
      const bool attacking = rng.uniform01() < attack.intensity;
      const rhhh::PacketRecord p =
          attacking ? attack_packet(attack, rng) : background.next();
      monitor.update(p);
      per_flow.increment(monitor.hierarchy().key_of(p));
    }

    // HHH view: look for source aggregates pointed at a single destination.
    std::string verdict = "clean";
    const rhhh::HhhSet hhh = monitor.query(kTheta);
    for (const rhhh::HhhCandidate& c : hhh) {
      const auto& node = monitor.hierarchy().node(c.prefix.node);
      // Alarm rule: a source prefix strictly coarser than a host (aggregate
      // of many sources) hitting a fully specified destination.
      if (node.step[0] >= 1 && node.step[1] == 0) {
        verdict = "ALERT " + monitor.hierarchy().format(c.prefix) + " (" +
                  std::to_string(static_cast<int>(
                      100.0 * c.f_est / static_cast<double>(monitor.packets()))) +
                  "% of traffic)";
      }
    }

    // Naive view: biggest single flow share.
    double top_flow = 0;
    per_flow.for_each([&](const rhhh::Key128&, std::uint64_t up, std::uint64_t) {
      top_flow = std::max(top_flow, static_cast<double>(up));
    });
    std::printf("%5d | %6.0f%% | %-36s | %.2f%%\n", epoch, attack.intensity * 100,
                verdict.c_str(), 100.0 * top_flow / kEpochPackets);
  }

  std::printf(
      "\nThe aggregate (45.137.*.*, 203.0.113.10) is flagged as soon as the\n"
      "attack exceeds theta. The naive per-flow tracker's top flow stays the\n"
      "same background elephant throughout: every spoofed source is\n"
      "individually tiny, so the attack never surfaces as a flow.\n");
  return 0;
}
