// Windowed change detection at engine scale: the paper's Section 1
// motivation (realtime DDoS detection) run end to end on the sharded
// multi-core engine.
//
// Two producer threads feed four worker shards with heavy-tailed backbone
// traffic (trace_gen presets). The engine's coordinator packet clock
// rotates every shard's live/sealed lattice pair each `epoch` records.
// At 60% of the stream an attack ramps up: 25% of subsequent packets flood
// one victim from scattered sources inside 66.66.0.0/16. A collector loop
// polls window_epochs() and, after each rotation, asks the two-window
// snapshot for emerging() aggregates -- prefixes heavy *now* that grew
// >= 3x vs the sealed previous window. The flood's /16 aggregate trips the
// alarm; the steady backbone heavy hitters never do.
//
// Run:  ./ddos_burst_demo [packets] [epoch]
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/monitor.hpp"
#include "engine/engine.hpp"
#include "net/ipv4.hpp"
#include "trace/trace_gen.hpp"
#include "util/random.hpp"

int main(int argc, char** argv) {
  const std::size_t packets =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2'000'000;
  const std::uint64_t epoch =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : packets / 16;
  const double theta = 0.1;
  const double growth = 3.0;

  rhhh::EngineConfig cfg;
  cfg.monitor.hierarchy = rhhh::HierarchyKind::kIpv4TwoDimBytes;
  cfg.monitor.algorithm = rhhh::AlgorithmKind::kRhhh;
  // Windowed deployments must size eps so the convergence bound psi
  // (Theorem 6.17) fits inside ONE window, not the lifetime stream --
  // each window's queries stand alone (cf. WindowedHhhMonitor's
  // converged_epoch()). eps = 0.08 puts psi ~ 37k packets for 2D bytes.
  cfg.monitor.eps = 0.08;
  cfg.monitor.delta = 0.05;
  cfg.workers = 4;
  cfg.producers = 2;
  cfg.epoch_packets = epoch;  // the coordinator clock drives the windows
  const std::unique_ptr<rhhh::HhhEngine> eng = rhhh::make_engine(cfg);
  const rhhh::Hierarchy& h = eng->hierarchy();
  eng->start();
  std::printf(
      "windowed engine: %u producers -> %u shards, epoch = %llu packets "
      "(psi = %.0f; epoch must exceed it)\n"
      "burst: 25%% of traffic from 66.66.0.0/16 -> one victim, starting at "
      "60%% of %zu packets\n\n",
      eng->producers(), eng->workers(), static_cast<unsigned long long>(epoch),
      eng->shard(0).psi(), packets);

  const rhhh::Ipv4 attack_net = rhhh::ipv4(66, 66, 0, 0);
  const rhhh::Ipv4 victim = rhhh::ipv4(203, 0, 113, 9);
  const std::size_t burst_start = packets * 6 / 10;

  std::vector<std::thread> producers;
  for (std::uint32_t p = 0; p < 2; ++p) {
    producers.emplace_back([&, p] {
      rhhh::HhhEngine::Producer& prod = eng->producer(p);
      rhhh::TraceGenerator gen(
          rhhh::trace_preset(p == 0 ? "chicago16" : "sanjose14"));
      rhhh::Xoroshiro128 rng(4242 + p);
      const std::size_t share = packets / 2;
      for (std::size_t i = 0; i < share; ++i) {
        // Producers advance in lockstep through the global stream position,
        // so the burst switches on for both at the same wall-clock point.
        const std::size_t global = i * 2 + p;
        if (global >= burst_start && rng.bounded(100) < 25) {
          prod.ingest(rhhh::Key128::from_pair(attack_net | rng.bounded(1 << 16),
                                              victim));
        } else {
          prod.ingest(h.key_of(gen.next()));
        }
      }
      prod.flush();
    });
  }

  // The collector: probe the two-window view every few milliseconds --
  // detection must not wait for the attacked window to be sealed. Alarms
  // only fire once the live window is at least a quarter full (a fresh
  // window of a handful of packets estimates shares too noisily), and each
  // emerging prefix is announced once per window.
  const rhhh::Prefix attack_bottom{
      h.bottom(), rhhh::Key128::from_pair(attack_net | 0x0102u, victim)};
  bool detected = false;
  std::uint64_t offered = 0;
  std::uint64_t seen_windows = 0;
  std::set<std::string> announced;
  const auto probe = [&](const rhhh::WindowedEngineSnapshot& snap) {
    if (!snap.has_previous() || snap.current_length() < epoch / 4) return;
    for (const rhhh::EmergingPrefix& e : snap.emerging(theta, growth)) {
      // Candidates below half the threshold ride in on the randomized
      // modes' conditioned-frequency slack; skip the noise.
      if (e.share_now < theta / 2) continue;
      std::string name = h.format(e.now.prefix);
      if (!announced.insert(name).second) continue;
      const bool is_attack = h.generalizes(e.now.prefix, attack_bottom);
      char gbuf[32];
      if (std::isinf(e.growth())) {
        std::snprintf(gbuf, sizeof gbuf, "new");
      } else {
        std::snprintf(gbuf, sizeof gbuf, "x%.1f", e.growth());
      }
      std::printf(
          "  EMERGING in window %llu: %-30s %5.1f%% of window (was %4.1f%%, "
          "%s)%s\n",
          static_cast<unsigned long long>(snap.window_epochs() + 1),
          name.c_str(), 100.0 * e.share_now, 100.0 * e.previous_share, gbuf,
          is_attack ? "  <-- planted burst" : "");
      if (is_attack && e.share_now > 0.15) detected = true;
    }
  };
  do {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    const std::uint64_t w = eng->window_epochs();
    if (w > seen_windows) {
      seen_windows = w;
      announced.clear();
      std::printf("window %llu sealed\n", static_cast<unsigned long long>(w));
    }
    probe(eng->window_snapshot());
    offered = eng->producer(0).offered() + eng->producer(1).offered();
  } while (offered < 2 * (packets / 2));  // each producer ingests packets/2
  for (std::thread& t : producers) t.join();
  eng->stop();

  // Final look: the tail of the burst sits in the last (partial) window.
  probe(eng->window_snapshot());

  const rhhh::EngineStats s = eng->stats();
  std::printf(
      "\n%s after %llu windows (consumed=%llu dropped=%llu)\n"
      "The alarm keys off *growth*: the backbone's stable heavy hitters\n"
      "carry a similar share in both windows and stay quiet; only the\n"
      "flood's aggregates emerge.\n",
      detected ? "BURST DETECTED" : "burst NOT detected",
      static_cast<unsigned long long>(s.window_epochs),
      static_cast<unsigned long long>(s.consumed),
      static_cast<unsigned long long>(s.dropped));
  return 0;
}
