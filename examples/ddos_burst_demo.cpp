// Windowed change detection at engine scale: the paper's Section 1
// motivation (realtime DDoS detection) run end to end on the sharded
// multi-core engine, with a K-deep window ring separating a real attack
// from a transient.
//
// Two producer threads feed four worker shards with heavy-tailed backbone
// traffic (trace_gen presets). The engine's coordinator packet clock
// rotates every shard's window ring (history_depth = 6 sealed epochs) each
// `epoch` records. Two anomalies are planted:
//
//   * a one-epoch SPIKE: for exactly one window starting at 25% of the
//     stream, 25% of packets flood one victim from 77.77.0.0/16;
//   * a sustained RAMP: from 60% of the stream to the end, 30% of packets
//     flood another victim from 66.66.0.0/16.
//
// A collector loop polls window_epochs() and, after each rotation, asks
// the trend snapshot two questions:
//
//   * emerging(theta, growth)            -- the one-shot two-window alarm:
//     fires on anything that grew, the spike included;
//   * emerging_sustained(theta, growth, 3) -- the EWMA-baseline alarm:
//     only fires when the growth persists for 3 consecutive windows, so
//     the spike stays quiet and the ramp trips it.
//
// That contrast is the point: one-epoch blips are weather, multi-epoch
// ramps are events, and only a ring of sealed windows can tell them apart.
//
// Run:  ./ddos_burst_demo [packets] [epoch]
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/monitor.hpp"
#include "engine/engine.hpp"
#include "net/ipv4.hpp"
#include "trace/trace_gen.hpp"
#include "util/random.hpp"

int main(int argc, char** argv) {
  const std::size_t packets =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2'000'000;
  const std::uint64_t epoch =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : packets / 16;
  const double theta = 0.1;
  const double growth = 3.0;
  const std::uint32_t min_epochs = 3;

  rhhh::EngineConfig cfg;
  cfg.monitor.hierarchy = rhhh::HierarchyKind::kIpv4TwoDimBytes;
  cfg.monitor.algorithm = rhhh::AlgorithmKind::kRhhh;
  // Windowed deployments must size eps so the convergence bound psi
  // (Theorem 6.17) fits inside ONE window, not the lifetime stream --
  // each window's queries stand alone (cf. WindowedHhhMonitor's
  // converged_epoch()). eps = 0.08 puts psi ~ 37k packets for 2D bytes.
  cfg.monitor.eps = 0.08;
  cfg.monitor.delta = 0.05;
  cfg.workers = 4;
  cfg.producers = 2;
  cfg.epoch_packets = epoch;  // the coordinator clock drives the windows
  cfg.history_depth = 6;      // K sealed windows: enough for min_epochs + baseline
  const std::unique_ptr<rhhh::HhhEngine> eng = rhhh::make_engine(cfg);
  const rhhh::Hierarchy& h = eng->hierarchy();
  eng->start();
  std::printf(
      "windowed engine: %u producers -> %u shards, epoch = %llu packets, "
      "ring keeps %zu sealed windows (psi = %.0f; epoch must exceed it)\n"
      "planted: one-epoch spike from 77.77.0.0/16 at 25%% of %zu packets;\n"
      "         sustained ramp from 66.66.0.0/16 from 60%% to the end\n\n",
      eng->producers(), eng->workers(), static_cast<unsigned long long>(epoch),
      cfg.history_depth, eng->shard(0).psi(), packets);

  const rhhh::Ipv4 ramp_net = rhhh::ipv4(66, 66, 0, 0);
  const rhhh::Ipv4 spike_net = rhhh::ipv4(77, 77, 0, 0);
  const rhhh::Ipv4 victim = rhhh::ipv4(203, 0, 113, 9);
  // The spike's victim lives in a different test net (TEST-NET-2) so no
  // lattice aggregate generalizes both anomalies -- keeps the verdicts
  // attributable.
  const rhhh::Ipv4 victim2 = rhhh::ipv4(198, 51, 100, 77);
  const std::size_t spike_start = packets / 4;
  const std::size_t spike_end = spike_start + epoch;
  const std::size_t ramp_start = packets * 6 / 10;

  std::vector<std::thread> producers;
  for (std::uint32_t p = 0; p < 2; ++p) {
    producers.emplace_back([&, p] {
      rhhh::HhhEngine::Producer& prod = eng->producer(p);
      rhhh::TraceGenerator gen(
          rhhh::trace_preset(p == 0 ? "chicago16" : "sanjose14"));
      rhhh::Xoroshiro128 rng(4242 + p);
      const std::size_t share = packets / 2;
      for (std::size_t i = 0; i < share; ++i) {
        // Producers advance in lockstep through the global stream position,
        // so both anomalies switch on/off at the same wall-clock point.
        const std::size_t global = i * 2 + p;
        if (global >= spike_start && global < spike_end &&
            rng.bounded(100) < 25) {
          prod.ingest(rhhh::Key128::from_pair(spike_net | rng.bounded(1 << 16),
                                              victim2));
        } else if (global >= ramp_start && rng.bounded(100) < 30) {
          prod.ingest(rhhh::Key128::from_pair(ramp_net | rng.bounded(1 << 16),
                                              victim));
        } else {
          prod.ingest(h.key_of(gen.next()));
        }
      }
      prod.flush();
    });
  }

  // The collector: watch the ring. One-shot emerging() alarms are announced
  // as "EMERGING" (they catch the spike while its window is live); sustained
  // alarms as "SUSTAINED" -- only the ramp should ever earn that tag. Alarms
  // only fire once the live window is at least a quarter full (a fresh
  // window of a handful of packets estimates shares too noisily).
  const rhhh::Prefix ramp_bottom{
      h.bottom(), rhhh::Key128::from_pair(ramp_net | 0x0102u, victim)};
  const rhhh::Prefix spike_bottom{
      h.bottom(), rhhh::Key128::from_pair(spike_net | 0x0102u, victim2)};
  bool spike_emerged = false;
  bool ramp_sustained = false;
  bool spike_sustained = false;
  std::uint64_t offered = 0;
  std::uint64_t seen_windows = 0;
  std::set<std::string> announced;
  const auto probe = [&](const rhhh::TrendSnapshot& snap) {
    if (snap.sealed_windows() == 0 || snap.current_length() < epoch / 4) return;
    for (const rhhh::EmergingPrefix& e : snap.emerging(theta, growth)) {
      if (e.share_now < theta / 2) continue;  // conditioned-slack noise
      std::string name = "E:" + h.format(e.now.prefix);
      if (!announced.insert(name).second) continue;
      const bool is_spike = h.generalizes(e.now.prefix, spike_bottom);
      const bool is_ramp = h.generalizes(e.now.prefix, ramp_bottom);
      if (is_spike && e.share_now > 0.15) spike_emerged = true;
      std::printf("  EMERGING  in window %llu: %-28s %5.1f%% of window "
                  "(was %4.1f%%)%s\n",
                  static_cast<unsigned long long>(snap.window_epochs() + 1),
                  h.format(e.now.prefix).c_str(), 100.0 * e.share_now,
                  100.0 * e.previous_share,
                  is_spike   ? "  <-- planted spike (one-shot alarm only)"
                  : is_ramp ? "  <-- planted ramp"
                            : "");
    }
    for (const rhhh::SustainedPrefix& s :
         snap.emerging_sustained(theta, growth, min_epochs)) {
      if (s.share_now < theta / 2) continue;
      std::string name = "S:" + h.format(s.now.prefix);
      if (!announced.insert(name).second) continue;
      const bool is_spike = h.generalizes(s.now.prefix, spike_bottom);
      const bool is_ramp = h.generalizes(s.now.prefix, ramp_bottom);
      if (is_ramp && s.share_now > 0.15) ramp_sustained = true;
      if (is_spike) spike_sustained = true;
      char gbuf[32];
      if (std::isinf(s.growth())) {
        std::snprintf(gbuf, sizeof gbuf, "new");
      } else {
        std::snprintf(gbuf, sizeof gbuf, "x%.1f", s.growth());
      }
      std::printf("  SUSTAINED in window %llu: %-28s %5.1f%% for %u+ epochs "
                  "(baseline %4.1f%%, %s)%s\n",
                  static_cast<unsigned long long>(snap.window_epochs() + 1),
                  h.format(s.now.prefix).c_str(), 100.0 * s.min_run_share,
                  s.run_epochs, 100.0 * s.baseline_share, gbuf,
                  is_ramp ? "  <-- planted ramp: ALARM" : "");
    }
  };
  do {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    const std::uint64_t w = eng->window_epochs();
    if (w > seen_windows) {
      seen_windows = w;
      announced.clear();
      std::printf("window %llu sealed\n", static_cast<unsigned long long>(w));
    }
    probe(eng->trend_snapshot());
    offered = eng->producer(0).offered() + eng->producer(1).offered();
  } while (offered < 2 * (packets / 2));  // each producer ingests packets/2
  for (std::thread& t : producers) t.join();
  eng->stop();

  // Final look: the tail of the ramp sits in the last (partial) window and
  // the ring still holds the 6 windows before it.
  probe(eng->trend_snapshot());

  // The ramp aggregate's share curve across the retained history.
  const rhhh::TrendSnapshot last = eng->trend_snapshot();
  const rhhh::Prefix ramp16 = h.generalize_to(ramp_bottom, h.node_index(2, 0));
  std::printf("\nramp /16 share curve (oldest retained window -> live): ");
  for (const rhhh::TrendPoint& tp : last.trend(ramp16)) {
    std::printf("%.0f%% ", 100.0 * tp.share);
  }
  std::printf("\n");

  const rhhh::EngineStats s = eng->stats();
  std::printf(
      "\n%s after %llu windows (consumed=%llu dropped=%llu)\n"
      "%s\n"
      "The sustained alarm keys off *persistent* growth over an EWMA\n"
      "baseline: the one-epoch spike and the backbone's stable heavy\n"
      "hitters never earn it; only the ramp does.\n",
      ramp_sustained ? "SUSTAINED RAMP DETECTED" : "ramp NOT detected",
      static_cast<unsigned long long>(s.window_epochs),
      static_cast<unsigned long long>(s.consumed),
      static_cast<unsigned long long>(s.dropped),
      spike_sustained
          ? "SPIKE WRONGLY FLAGGED AS SUSTAINED"
          : (spike_emerged
                 ? "spike tripped only the one-shot emerging alarm -- correct"
                 : "spike fell between polls (one-shot alarm not observed)"));
  return spike_sustained ? 1 : 0;
}
