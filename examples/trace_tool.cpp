// trace_tool: generate, inspect and analyze RHHT binary trace files -- the
// workflow glue for reproducing experiments on frozen inputs.
//
//   trace_tool generate <preset> <num_packets> <out.rhht>
//   trace_tool info     <file.rhht>
//   trace_tool hhh      <file.rhht> [theta] [1d|2d]
//
// With no arguments, runs a self-contained demo in /tmp.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "core/monitor.hpp"
#include "eval/ground_truth.hpp"
#include "net/ipv4.hpp"
#include "trace/trace_gen.hpp"
#include "trace/trace_io.hpp"

namespace {

int cmd_generate(const std::string& preset, std::size_t n, const std::string& path) {
  rhhh::TraceGenerator gen(rhhh::trace_preset(preset));
  rhhh::TraceWriter writer(path);
  for (std::size_t i = 0; i < n; ++i) writer.write(gen.next());
  writer.close();
  std::printf("wrote %zu packets of preset '%s' to %s\n", n, preset.c_str(),
              path.c_str());
  return 0;
}

int cmd_info(const std::string& path) {
  rhhh::TraceReader reader(path);
  std::printf("%s: %llu packets\n", path.c_str(),
              static_cast<unsigned long long>(reader.count()));
  std::map<std::uint8_t, std::uint64_t> protos;
  std::uint64_t bytes = 0;
  std::uint32_t first_ts = 0;
  std::uint32_t last_ts = 0;
  bool first = true;
  while (auto p = reader.next()) {
    ++protos[p->proto];
    bytes += p->length;
    if (first) {
      first_ts = p->ts_us;
      first = false;
    }
    last_ts = p->ts_us;
  }
  std::printf("  bytes: %llu, duration: %.3fs\n",
              static_cast<unsigned long long>(bytes),
              (last_ts - first_ts) / 1e6);
  for (const auto& [proto, count] : protos) {
    std::printf("  proto %3d: %llu packets\n", proto,
                static_cast<unsigned long long>(count));
  }
  return 0;
}

int cmd_hhh(const std::string& path, double theta, const std::string& dims) {
  const rhhh::Hierarchy h = dims == "1d"
                                ? rhhh::Hierarchy::ipv4_1d(rhhh::Granularity::kByte)
                                : rhhh::Hierarchy::ipv4_2d(rhhh::Granularity::kByte);
  rhhh::ExactHhh truth(h);
  rhhh::TraceReader reader(path);
  while (auto p = reader.next()) truth.add(h.key_of(*p));
  std::printf("%s: exact HHH at theta=%.2f%% over %s\n", path.c_str(), theta * 100,
              h.name().c_str());
  const rhhh::HhhSet set = truth.compute(theta);
  for (const rhhh::HhhCandidate& c : set) {
    std::printf("  %-36s f=%.0f  conditioned=%.0f\n", h.format(c.prefix).c_str(),
                c.f_est, c.c_hat);
  }
  std::printf("(%zu prefixes)\n", set.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 1) {
    const std::string demo = "/tmp/rhhh_demo.rhht";
    std::printf("demo: generate -> info -> hhh (use --help style args for real use)\n\n");
    cmd_generate("chicago16", 500'000, demo);
    cmd_info(demo);
    return cmd_hhh(demo, 0.03, "2d");
  }
  const std::string cmd = argv[1];
  if (cmd == "generate" && argc == 5) {
    return cmd_generate(argv[2], std::strtoull(argv[3], nullptr, 10), argv[4]);
  }
  if (cmd == "info" && argc == 3) {
    return cmd_info(argv[2]);
  }
  if (cmd == "hhh" && (argc == 3 || argc == 4 || argc == 5)) {
    return cmd_hhh(argv[2], argc > 3 ? std::atof(argv[3]) : 0.03,
                   argc > 4 ? argv[4] : "2d");
  }
  std::fprintf(stderr,
               "usage: trace_tool generate <preset> <n> <out.rhht>\n"
               "       trace_tool info <file.rhht>\n"
               "       trace_tool hhh <file.rhht> [theta] [1d|2d]\n");
  return 2;
}
