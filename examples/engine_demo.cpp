// Sharded multi-core ingest with HhhEngine: two producer threads fan a
// planted-attack trace across four worker shards; an epoch snapshot merges
// the per-shard RHHH lattices into one network-wide view mid-stream and
// again at the end -- the live-query pattern a collector daemon would run.
//
// With --archive DIR the engine additionally rotates window epochs and its
// background archiver persists every sealed window to the durable store at
// DIR; after shutdown the demo reopens the store cold and answers the same
// last-K query from disk (inspect it further with store_tool).
//
// With --metrics PORT (0 = kernel-assigned) the telemetry exporter serves
// GET /metrics, /metrics.json, /trace, /health and /healthz on 127.0.0.1
// for the whole run -- `curl 127.0.0.1:PORT/metrics` while the demo
// ingests. --serve-ms MS keeps serving that long after the run finishes
// (for external scrapers); the demo always self-scrapes once at the end
// and fails if the engine's own families are missing from the exposition
// or /health serves no certificate ledger.
//
// --watchdog-ms MS arms the engine's stall watchdog at that period;
// --watchdog-dump PATH points its flight recorder at a file.
//
// Run:  ./engine_demo [packets] [--archive DIR] [--metrics PORT
//                     [--serve-ms MS]] [--watchdog-ms MS]
//                     [--watchdog-dump PATH]
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "core/monitor.hpp"
#include "engine/engine.hpp"
#include "net/ipv4.hpp"
#include "obs/exporter.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_ring.hpp"
#include "store/archive.hpp"
#include "trace/trace_gen.hpp"
#include "util/random.hpp"

namespace {

void print_view(const rhhh::HhhEngine& eng, const rhhh::EngineSnapshot& snap,
                double theta) {
  const auto n = static_cast<double>(snap.stream_length());
  const rhhh::EngineStats& s = snap.stats();
  std::printf("epoch %llu: N=%.0f offered=%llu consumed=%llu dropped=%llu\n",
              static_cast<unsigned long long>(snap.epoch()), n,
              static_cast<unsigned long long>(s.offered),
              static_cast<unsigned long long>(s.consumed),
              static_cast<unsigned long long>(s.dropped));
  for (const rhhh::HhhCandidate& c : snap.output(theta)) {
    std::printf("  %-36s ~%5.2f%%\n", eng.hierarchy().format(c.prefix).c_str(),
                100.0 * c.f_est / n);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t packets = 2'000'000;
  std::string archive_dir;
  bool serve_metrics = false;
  std::uint16_t metrics_port = 0;
  std::uint64_t serve_ms = 0;
  std::uint32_t watchdog_ms = 0;
  std::string watchdog_dump;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--archive") == 0 && i + 1 < argc) {
      archive_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      serve_metrics = true;
      metrics_port =
          static_cast<std::uint16_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--serve-ms") == 0 && i + 1 < argc) {
      serve_ms = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--watchdog-ms") == 0 && i + 1 < argc) {
      watchdog_ms =
          static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--watchdog-dump") == 0 && i + 1 < argc) {
      watchdog_dump = argv[++i];
    } else {
      packets = std::strtoull(argv[i], nullptr, 10);
    }
  }
  const double theta = 0.1;

  // The exporter serves the global registry -- the same one the engine
  // binds its instruments to below (EngineConfig::metrics defaults to it).
  rhhh::obs::MetricsExporter exporter(rhhh::obs::MetricsRegistry::global(),
                                      &rhhh::obs::TraceRing::global());
  if (serve_metrics) {
    exporter.start(metrics_port);
    std::printf("metrics: serving http://127.0.0.1:%u/metrics\n",
                exporter.port());
  }

  rhhh::EngineConfig cfg;
  cfg.monitor.hierarchy = rhhh::HierarchyKind::kIpv4TwoDimBytes;
  cfg.monitor.algorithm = rhhh::AlgorithmKind::kRhhh;
  cfg.monitor.eps = 0.01;
  cfg.monitor.delta = 0.01;
  cfg.workers = 4;
  cfg.producers = 2;
  std::size_t store_baseline = 0;
  if (!archive_dir.empty()) {
    // Durable archiving: rotate ~8 windows over the stream and persist
    // each sealed window; small segments exercise the roll path.
    cfg.epoch_packets = std::max<std::uint64_t>(packets / 8, 1);
    cfg.history_depth = 4;
    cfg.archive.dir = archive_dir;
    cfg.archive.segment_bytes = 1u << 20;
    // Re-running against an existing store appends to it: remember how
    // many windows it already held so the end-of-run check counts only
    // this run's contribution.
    try {
      store_baseline = rhhh::store::WindowArchive::open_read(archive_dir).windows();
    } catch (const std::exception&) {
      store_baseline = 0;  // fresh directory
    }
  }
  cfg.health.watchdog_millis = watchdog_ms;
  cfg.health.dump_path = watchdog_dump;
  const std::unique_ptr<rhhh::HhhEngine> eng = rhhh::make_engine(cfg);
  // The engine outlives every exporter request (the exporter is stopped, or
  // was never started, before eng dies at end of main), so handing its
  // ledger to the /health route is safe.
  exporter.set_health_source(eng->health());
  eng->start();
  std::printf("engine: %u producers -> %u shards, %s routing, %s overflow\n\n",
              eng->producers(), eng->workers(), to_string(cfg.policy).data(),
              to_string(cfg.overflow).data());

  // Two ingest threads: mixed background traffic with a 20% flood toward
  // one /24 (scattered sources -- only the destination aggregate is heavy).
  const rhhh::Ipv4 victim = rhhh::ipv4(203, 0, 113, 0);
  std::vector<std::thread> producers;
  for (std::uint32_t p = 0; p < 2; ++p) {
    producers.emplace_back([&, p] {
      rhhh::HhhEngine::Producer& prod = eng->producer(p);
      rhhh::TraceGenerator gen(
          rhhh::trace_preset(p == 0 ? "chicago16" : "sanjose14"));
      rhhh::Xoroshiro128 rng(1234 + p);
      for (std::size_t i = 0; i < packets / 2; ++i) {
        if (rng.bounded(10) < 2) {
          prod.ingest(rhhh::Key128::from_pair(static_cast<rhhh::Ipv4>(rng()),
                                              victim | rng.bounded(256)));
        } else {
          prod.ingest(eng->hierarchy().key_of(gen.next()));
        }
      }
      prod.flush();
    });
  }

  // A mid-stream epoch: quiesce, merge the four shard lattices, resume --
  // the producers keep running across the snapshot.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  print_view(*eng, eng->snapshot(), theta);

  for (std::thread& t : producers) t.join();
  eng->stop();

  std::printf("\n");
  const rhhh::EngineSnapshot final_snap = eng->snapshot();
  print_view(*eng, final_snap, theta);

  const rhhh::EngineStats& s = final_snap.stats();
  std::printf("\nper-shard consumed:");
  for (std::uint32_t w = 0; w < eng->workers(); ++w) {
    std::printf(" [%u]=%llu", w,
                static_cast<unsigned long long>(s.per_worker_consumed[w]));
  }
  std::printf("\nbackpressure waits: %llu\n",
              static_cast<unsigned long long>(s.backpressure_waits));
  std::printf(
      "\nThe victim /24's flood is assembled across both producers and all\n"
      "four shards; no single shard needs to see the whole stream, and the\n"
      "epoch merge corrects every estimate for the network-wide N.\n");

  if (!archive_dir.empty()) {
    // Cold read-back: reopen the store a collector restart would see and
    // answer the last-4-windows query straight from disk.
    std::printf("\narchived windows: %" PRIu64 " (queue drops %" PRIu64
                ", errors %" PRIu64 ")\n",
                s.archived_windows, s.archive_queue_drops, s.archive_errors);
    const rhhh::store::WindowArchive ar =
        rhhh::store::WindowArchive::open_read(archive_dir);
    std::printf("store %s: %zu segment(s), %zu window(s), %" PRIu64 " bytes\n",
                ar.dir().c_str(), ar.segments(), ar.windows(), ar.total_bytes());
    if (store_baseline + s.archived_windows != ar.windows()) {
      std::printf("ERROR: store window count does not match the archiver's\n");
      return 1;
    }
    std::uint64_t drops = 0;
    const auto merged = ar.merged_last(4, &drops);
    if (merged != nullptr) {
      const auto n = static_cast<double>(merged->stream_length());
      std::printf("last-4-windows HHH set from disk (N=%.0f, drops %" PRIu64
                  "):\n",
                  n, drops);
      for (const rhhh::HhhCandidate& c : merged->output(theta)) {
        std::printf("  %-36s ~%5.2f%%\n",
                    merged->hierarchy().format(c.prefix).c_str(),
                    100.0 * c.f_est / n);
      }
    }
  }

  if (serve_metrics) {
    // Self-scrape: the demo doubles as the exporter smoke test.
    const std::string body =
        rhhh::obs::http_get_local(exporter.port(), "/metrics");
    if (body.find("rhhh_engine_push_batch_ns") == std::string::npos) {
      std::printf("ERROR: /metrics is missing the engine families\n");
      return 1;
    }
    const std::string health =
        rhhh::obs::http_get_local(exporter.port(), "/health");
    if (health.find("\"certificates\"") == std::string::npos) {
      std::printf("ERROR: /health is missing the certificate ledger\n");
      return 1;
    }
    std::printf("\nself-scrape ok: %zu bytes of exposition, %" PRIu64
                " request(s) served\n",
                body.size(), exporter.scrapes());
    if (serve_ms > 0) {
      std::printf("serving /metrics for another %" PRIu64 " ms...\n", serve_ms);
      std::this_thread::sleep_for(std::chrono::milliseconds(serve_ms));
    }
    exporter.stop();
  }
  return 0;
}
