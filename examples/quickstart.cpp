// Quickstart: the five-minute tour of the public API.
//
//   1. configure an HhhMonitor (hierarchy + algorithm + accuracy targets)
//   2. feed it packets
//   3. query hierarchical heavy hitters at a threshold
//
// Run:  ./quickstart [num_packets]
#include <cstdio>
#include <cstdlib>

#include "core/monitor.hpp"
#include "trace/trace_gen.hpp"

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4'000'000;

  // 1. Configure: 2-dimensional source/destination byte hierarchy (H = 25),
  //    the paper's RHHH with V = H. eps trades memory & convergence speed
  //    for precision: psi grows as eps^-2, so pick eps to match how much
  //    traffic you will see (the paper uses 0.001 against 10^9 packets).
  rhhh::MonitorConfig cfg;
  cfg.hierarchy = rhhh::HierarchyKind::kIpv4TwoDimBytes;
  cfg.algorithm = rhhh::AlgorithmKind::kRhhh;
  cfg.eps = 0.01;
  cfg.delta = 0.01;
  rhhh::HhhMonitor monitor(cfg);

  std::printf("RHHH quickstart: H=%zu, psi=%.3g packets to full guarantees\n",
              monitor.hierarchy().size(), monitor.psi());

  // 2. Feed traffic (here: a synthetic backbone-like trace; in production,
  //    call monitor.update(...) from your packet path -- it is O(1)).
  rhhh::TraceGenerator gen(rhhh::trace_preset("chicago16"));
  for (std::size_t i = 0; i < n; ++i) monitor.update(gen.next());

  std::printf("ingested %llu packets (converged: %s)\n",
              static_cast<unsigned long long>(monitor.packets()),
              monitor.converged() ? "yes" : "not yet");

  // 3. Query: every prefix aggregate carrying >= 5% of traffic.
  const double theta = 0.05;
  std::printf("\nhierarchical heavy hitters at theta=%.0f%%:\n", theta * 100);
  for (const std::string& line : monitor.report(theta)) {
    std::printf("%s\n", line.c_str());
  }
  return 0;
}
