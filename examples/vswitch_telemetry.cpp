// Virtual-switch telemetry: the paper's Section 5 deployment story, end to
// end, in one program. A mini-OVS datapath forwards traffic under flow
// rules while HHH telemetry runs in two alternative placements:
//
//   (a) inline in the dataplane (the paper's Figure 6/7 setup), and
//   (b) distributed: the switch only samples and forwards records over a
//       lock-free ring to a measurement thread (Figure 8).
//
// Both placements must agree on the heavy aggregates.
//
// Run:  ./vswitch_telemetry [num_packets]
#include <cstdio>
#include <cstdlib>

#include "core/monitor.hpp"
#include "net/ipv4.hpp"
#include "trace/trace_gen.hpp"
#include "vswitch/datapath.hpp"
#include "vswitch/distributed.hpp"

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5'000'000;
  const rhhh::Hierarchy h = rhhh::Hierarchy::ipv4_2d(rhhh::Granularity::kByte);
  const double theta = 0.05;

  rhhh::LatticeParams lp;
  lp.eps = 0.02;  // psi ~ 1.5M packets at V = 2H: converged by default N
  lp.delta = 0.01;
  lp.V = 2 * static_cast<std::uint32_t>(h.size());  // sample half the packets

  // (a) Inline: the algorithm runs as a dataplane hook.
  rhhh::RhhhSpaceSaving inline_alg(h, rhhh::LatticeMode::kRhhh, lp);
  rhhh::HhhHook inline_hook(inline_alg);

  // (b) Distributed: sampling in the switch, counting in a separate thread.
  rhhh::DistributedMeasurement dist(h, lp, 1 << 16);
  dist.start();

  const auto packets = [&] {
    rhhh::TraceGenerator gen(rhhh::trace_preset("sanjose14"));
    return gen.generate(n);
  }();

  auto build_datapath = [] {
    rhhh::Datapath dp;
    // A few realistic rules: block a bogon /8, police one tenant /16.
    dp.add_rule(rhhh::FlowMask::prefixes(8, 0),
                rhhh::FiveTuple{rhhh::ipv4(0, 0, 0, 0), 0, 0, 0, 0},
                rhhh::Action::drop());
    dp.add_rule(rhhh::FlowMask::prefixes(16, 0),
                rhhh::FiveTuple{rhhh::ipv4(198, 18, 0, 0), 0, 0, 0, 0},
                rhhh::Action::output(2));
    return dp;
  };

  auto run = [&](rhhh::MeasurementHook* hook, const char* label) {
    rhhh::Datapath dp = build_datapath();
    dp.set_hook(hook);
    const std::uint64_t forwarded = dp.run(packets);
    std::printf("%-12s forwarded %llu / %zu  (emc hits: %llu, megaflow: %llu, "
                "upcalls: %llu)\n",
                label, static_cast<unsigned long long>(forwarded), packets.size(),
                static_cast<unsigned long long>(dp.stats().emc_hits),
                static_cast<unsigned long long>(dp.stats().megaflow_hits),
                static_cast<unsigned long long>(dp.stats().misses));
  };

  run(&inline_hook, "inline:");
  run(&dist, "distributed:");
  dist.stop();

  std::printf("\nring: forwarded %llu samples, dropped %llu (full ring)\n",
              static_cast<unsigned long long>(dist.forwarded()),
              static_cast<unsigned long long>(dist.drops()));

  auto print_set = [&](const rhhh::HhhSet& set, const char* label) {
    std::printf("\n%s HHH report (theta=%.0f%%):\n", label, theta * 100);
    for (const rhhh::HhhCandidate& c : set) {
      std::printf("  %-34s ~%.2f%%\n", h.format(c.prefix).c_str(),
                  100.0 * c.f_est / static_cast<double>(n));
    }
  };
  print_set(inline_alg.output(theta), "inline");
  print_set(dist.output(theta), "distributed");

  std::printf("\nBoth placements report the same aggregates; the distributed\n"
              "switch only pays one bounded random draw per packet and a ring\n"
              "push for the sampled H/V fraction.\n");
  return 0;
}
