// Network-wide HHH from per-switch summaries (paper Section 7: the
// distributed deployment "is capable of analyzing data from multiple
// network devices").
//
// Four edge switches each monitor their own traffic mix with RHHH. A
// collector merges their mergeable Space-Saving lattices into one global
// instance and answers *network-wide* queries. A content farm is dominant
// at one switch (12%) and background noise at the others (~2-4%): each
// switch either misses it or reports a *local* share; only the merged view
// yields the true network-wide picture.
//
// Run:  ./multi_switch_merge [packets_per_switch]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "hhh/lattice_hhh.hpp"
#include "net/ipv4.hpp"
#include "trace/trace_gen.hpp"
#include "util/random.hpp"

namespace {

/// True iff the candidate is the farm's destination-/16 aggregate.
bool is_farm_prefix(const rhhh::Hierarchy& h, const rhhh::HhhCandidate& c,
                    rhhh::Ipv4 farm) {
  const auto& node = h.node(c.prefix.node);
  return node.len[1] == 16 && node.len[0] == 0 &&
         (c.prefix.key.lo & 0xffff0000ull) == farm;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t per_switch =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4'000'000;
  const rhhh::Hierarchy h = rhhh::Hierarchy::ipv4_2d(rhhh::Granularity::kByte);
  const double theta = 0.05;
  const rhhh::Ipv4 farm = rhhh::ipv4(77, 240, 0, 0);

  const char* presets[] = {"chicago15", "chicago16", "sanjose13", "sanjose14"};
  const unsigned farm_percent[] = {12, 2, 2, 4};

  std::vector<std::unique_ptr<rhhh::RhhhSpaceSaving>> switches;
  rhhh::Xoroshiro128 rng(42);
  std::printf("per-switch view (theta=%.0f%%, %zu packets each):\n", theta * 100,
              per_switch);
  for (int s = 0; s < 4; ++s) {
    rhhh::LatticeParams lp;
    lp.eps = 0.01;
    lp.delta = 0.01;
    lp.seed = static_cast<std::uint64_t>(s + 1);
    auto sw = std::make_unique<rhhh::RhhhSpaceSaving>(h, rhhh::LatticeMode::kRhhh, lp);
    rhhh::TraceGenerator gen(rhhh::trace_preset(presets[s]));
    for (std::size_t i = 0; i < per_switch; ++i) {
      if (rng.bounded(100) < farm_percent[s]) {
        // Farm traffic: fully scattered client sources, many hosts inside
        // the /16 -- only the destination aggregate is heavy.
        sw->update(rhhh::Key128::from_pair(static_cast<rhhh::Ipv4>(rng()),
                                           farm | rng.bounded(1 << 16)));
      } else {
        sw->update(h.key_of(gen.next()));
      }
    }
    bool local_hit = false;
    for (const rhhh::HhhCandidate& c : sw->output(theta)) {
      if (is_farm_prefix(h, c, farm)) local_hit = true;
    }
    std::printf("  switch %d (%-9s, farm share %2u%%): farm /16 reported: %s\n", s,
                presets[s], farm_percent[s], local_hit ? "YES" : "no");
    switches.push_back(std::move(sw));
  }

  // Collector: merge the four summaries into a fresh same-config instance.
  rhhh::LatticeParams lp;
  lp.eps = 0.01;
  lp.delta = 0.01;
  lp.seed = 999;
  rhhh::RhhhSpaceSaving global(h, rhhh::LatticeMode::kRhhh, lp);
  for (const auto& sw : switches) global.merge(*sw);

  const auto n = static_cast<double>(global.stream_length());
  std::printf("\nnetwork-wide view after merging %.0f packets:\n", n);
  for (const rhhh::HhhCandidate& c : global.output(theta)) {
    std::printf("  %-36s ~%5.2f%%%s\n", h.format(c.prefix).c_str(),
                100.0 * c.f_est / n,
                is_farm_prefix(h, c, farm) ? "   <-- cross-switch aggregate" : "");
  }
  std::printf(
      "\nThe farm's true network-wide share is (12+2+2+4)/4 = 5%%. Switches\n"
      "with a heavy local share report their *local* view (12%%); quiet\n"
      "switches miss it; the merged summaries yield the network-wide share\n"
      "no single vantage point can compute.\n");
  return 0;
}
