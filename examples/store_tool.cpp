// store_tool: inspect, query, replay and compact a durable window store
// directory (the segment log an archiver-enabled HhhEngine writes; see
// src/store/).
//
//   store_tool inspect DIR
//       Segments, window catalog, wall-clock coverage, total bytes; flags
//       torn segments left by a crash.
//   store_tool query DIR [--last K] [--from NS --to NS] [--theta T]
//       Merge the selected windows (default: last 4) into one network-wide
//       lattice and print its HHH set -- the cold-store equivalent of
//       trend_snapshot()'s folded history.
//   store_tool replay DIR [--theta T] [--top M]
//       Walk the whole history oldest-first, printing each window's top
//       HHHs: offline reprocessing through WindowArchive::Replay.
//   store_tool compact DIR [--retain-bytes B]
//       Rewrite torn segments as sealed ones and (with --retain-bytes)
//       delete the oldest segments beyond the byte budget.
//   store_tool stats DIR [--json]
//       Store health as metrics: segment/window/byte gauges plus
//       per-window stream-length and duration histograms, rendered in the
//       same Prometheus text (default) or JSON exposition a live engine's
//       /metrics endpoint serves.
//
// Exits 0 on success, 1 on a corrupt/unusable store, 2 on usage errors.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "store/archive.hpp"

namespace {

using namespace rhhh;

int usage() {
  std::fprintf(stderr,
               "usage: store_tool inspect DIR\n"
               "       store_tool query DIR [--last K] [--from NS --to NS] "
               "[--theta T]\n"
               "       store_tool replay DIR [--theta T] [--top M]\n"
               "       store_tool compact DIR [--retain-bytes B]\n"
               "       store_tool stats DIR [--json]\n");
  return 2;
}

double wall_sec(std::int64_t ns) { return static_cast<double>(ns) / 1e9; }

void print_hhh(const Hierarchy& h, const HhhSet& set, double n, std::size_t top) {
  std::size_t printed = 0;
  for (const HhhCandidate& c : set) {
    if (top != 0 && printed++ >= top) break;
    std::printf("  %-40s ~%6.2f%%  (f=%.0f)\n", h.format(c.prefix).c_str(),
                n > 0 ? 100.0 * c.f_est / n : 0.0, c.f_est);
  }
}

int cmd_inspect(const store::WindowArchive& ar) {
  std::printf("store: %s\n", ar.dir().c_str());
  std::printf("  segments: %zu   windows: %zu   bytes: %" PRIu64 "%s\n",
              ar.segments(), ar.windows(), ar.total_bytes(),
              ar.truncated_tail() ? "   [TORN TAIL: run compact]" : "");
  if (ar.hierarchy() != nullptr) {
    std::printf("  hierarchy: %s (H=%zu)\n", ar.hierarchy()->name().c_str(),
                ar.hierarchy()->size());
  }
  for (std::size_t s = 0; s < ar.segments(); ++s) {
    const std::uint64_t rid = ar.segment_run_id(s);
    if (rid != 0) {
      std::printf("  segment %zu run-id=%016" PRIx64 "\n", s, rid);
    } else {
      std::printf("  segment %zu run-id=unknown (v1 segment)\n", s);
    }
  }
  const std::vector<store::WindowMeta> metas = ar.list();
  for (const store::WindowMeta& m : metas) {
    std::printf("  window epoch=%-4" PRIu64 " N=%-10" PRIu64 " drops=%-8" PRIu64
                " live=%.3fs wall=[%.3f, %.3f]\n",
                m.epoch, m.stream_length, m.drops,
                static_cast<double>(m.duration_ns) / 1e9,
                wall_sec(m.wall_start_ns), wall_sec(m.wall_end_ns));
  }
  return 0;
}

int cmd_query(const store::WindowArchive& ar, std::size_t last, bool ranged,
              std::int64_t from, std::int64_t to, double theta) {
  std::uint64_t drops = 0;
  std::unique_ptr<RhhhSpaceSaving> merged;
  if (ranged) {
    std::printf("query: wall range [%.3f, %.3f] s, theta=%.3g\n", wall_sec(from),
                wall_sec(to), theta);
    merged = ar.merged_range(from, to, &drops);
  } else {
    std::printf("query: last %zu window(s), theta=%.3g\n", last, theta);
    merged = ar.merged_last(last, &drops);
  }
  if (merged == nullptr) {
    std::printf("  (no windows matched)\n");
    return 0;
  }
  const auto n = static_cast<double>(merged->stream_length());
  std::printf("  merged N=%.0f (drops folded: %" PRIu64 ")\n", n, drops);
  print_hhh(merged->hierarchy(), merged->output(theta), n, 0);
  return 0;
}

int cmd_replay(const store::WindowArchive& ar, double theta, std::size_t top) {
  store::WindowArchive::Replay it = ar.replay();
  store::ArchivedWindow w;
  while (it.next(w)) {
    std::printf("window epoch=%" PRIu64 " N=%" PRIu64 " drops=%" PRIu64 "\n",
                w.meta.epoch, w.meta.stream_length, w.meta.drops);
    print_hhh(w.window->hierarchy(), w.window->output(theta),
              static_cast<double>(w.meta.stream_length), top);
  }
  std::printf("replayed %zu window(s)\n", it.position());
  return 0;
}

int cmd_stats(const store::WindowArchive& ar, bool json) {
  // Offline rendering of the same families a live writable archive
  // registers, against a private registry: the cold-store health check in
  // scrape-ready form.
  obs::MetricsRegistry reg;
  reg.gauge("rhhh_store_segments", "segment files in the store").set(
      static_cast<std::int64_t>(ar.segments()));
  reg.gauge("rhhh_store_windows", "archived windows across all segments")
      .set(static_cast<std::int64_t>(ar.windows()));
  reg.gauge("rhhh_store_bytes", "store footprint in bytes")
      .set(static_cast<std::int64_t>(ar.total_bytes()));
  reg.gauge("rhhh_store_torn_tail", "1 when a crash left a torn segment tail")
      .set(ar.truncated_tail() ? 1 : 0);
  obs::Counter& stream = reg.counter("rhhh_store_stream_total",
                                     "packets across all archived windows");
  obs::Counter& drops =
      reg.counter("rhhh_store_drops_total", "attributed drops, all windows");
  obs::Histogram& len = reg.histogram("rhhh_store_window_stream_length",
                                      "per-window packet count");
  obs::Histogram& dur = reg.histogram("rhhh_store_window_duration_ns",
                                      "per-window live duration (ns)");
  for (const store::WindowMeta& m : ar.list()) {
    stream.add(m.stream_length);
    drops.add(m.drops);
    len.record(m.stream_length);
    dur.record(static_cast<std::uint64_t>(m.duration_ns));
  }
  const std::string out = json ? reg.render_json() : reg.render_prometheus();
  std::printf("%s", out.c_str());
  if (json) std::printf("\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  const std::string dir = argv[2];

  std::size_t last = 4;
  // A half-specified range is still a range: --from alone means "from
  // there onward", --to alone means "everything up to there".
  bool have_from = false;
  bool have_to = false;
  std::int64_t from = std::numeric_limits<std::int64_t>::min();
  std::int64_t to = std::numeric_limits<std::int64_t>::max();
  double theta = 0.05;
  std::uint64_t retain = 0;
  std::size_t top = 5;
  bool json = false;
  for (int i = 3; i < argc; ++i) {
    const auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "store_tool: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--last") == 0) {
      last = std::strtoull(need("--last"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--from") == 0) {
      from = std::strtoll(need("--from"), nullptr, 10);
      have_from = true;
    } else if (std::strcmp(argv[i], "--to") == 0) {
      to = std::strtoll(need("--to"), nullptr, 10);
      have_to = true;
    } else if (std::strcmp(argv[i], "--theta") == 0) {
      theta = std::strtod(need("--theta"), nullptr);
    } else if (std::strcmp(argv[i], "--retain-bytes") == 0) {
      retain = std::strtoull(need("--retain-bytes"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--top") == 0) {
      top = std::strtoull(need("--top"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      std::fprintf(stderr, "store_tool: unknown flag %s\n", argv[i]);
      return usage();
    }
  }

  try {
    if (cmd == "inspect") {
      return cmd_inspect(rhhh::store::WindowArchive::open_read(dir));
    }
    if (cmd == "query") {
      return cmd_query(rhhh::store::WindowArchive::open_read(dir), last,
                       have_from || have_to, from, to, theta);
    }
    if (cmd == "replay") {
      return cmd_replay(rhhh::store::WindowArchive::open_read(dir), theta, top);
    }
    if (cmd == "stats") {
      return cmd_stats(rhhh::store::WindowArchive::open_read(dir), json);
    }
    if (cmd == "compact") {
      rhhh::ArchiveConfig cfg;
      cfg.dir = dir;
      rhhh::store::WindowArchive ar = rhhh::store::WindowArchive::open_write(cfg);
      const std::size_t deleted = ar.compact(retain);
      std::printf("compacted %s: %zu segment(s) deleted, %zu window(s) / "
                  "%" PRIu64 " bytes remain\n",
                  dir.c_str(), deleted, ar.windows(), ar.total_bytes());
      return 0;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "store_tool: %s\n", e.what());
    return 1;
  }
  return usage();
}
