// Figure 3: coverage errors (false negatives) vs stream length (2D bytes,
// four traces): prefixes q outside the returned set whose exact conditioned
// frequency C_{q|P} still reaches theta*N (paper Section 4.1).
//
// Expected shape: same as Figure 2 -- randomized algorithms converge to zero
// coverage errors by psi, deterministic algorithms never miss.
#include <cstdio>
#include <vector>

#include "common/bench_common.hpp"

using namespace rhhh;
using namespace rhhh::bench;

int main(int argc, char** argv) {
  const Args args = Args::parse(argc, argv);
  print_figure_header("Figure 3",
                      "Coverage error ratio (false negatives) vs stream length, 2D bytes",
                      args);

  const Hierarchy h = Hierarchy::ipv4_2d(Granularity::kByte);
  std::vector<std::uint64_t> checkpoints;
  for (const double c : {0.2e6, 0.5e6, 1.0e6, 2.0e6, 4.0e6}) {
    checkpoints.push_back(static_cast<std::uint64_t>(c * args.scale));
  }
  const std::uint64_t total = checkpoints.back();

  for (const std::string& trace : trace_preset_names()) {
    const auto& keys = trace_keys(h, trace, total);
    auto roster = paper_roster(h, args.eps, args.delta, args.seed);

    std::printf("\n-- %s --\n", trace.c_str());
    std::vector<std::string> head = {"algorithm \\ N"};
    for (const auto cp : checkpoints) head.push_back(fmt(double(cp)));
    print_row(head);

    ExactHhh truth(h);
    std::size_t fed = 0;
    std::size_t fed_truth = 0;
    std::vector<std::vector<double>> ratios(roster.size());
    for (const auto cp : checkpoints) {
      for (; fed < cp; ++fed) {
        for (auto& alg : roster) alg->update(keys[fed]);
      }
      for (; fed_truth < cp; ++fed_truth) truth.add(keys[fed_truth]);
      for (std::size_t a = 0; a < roster.size(); ++a) {
        const HhhSet out = roster[a]->output(args.theta);
        const CoverageReport rep = coverage_errors(truth, out, args.theta);
        ratios[a].push_back(rep.ratio());
      }
    }
    for (std::size_t a = 0; a < roster.size(); ++a) {
      std::vector<std::string> row = {std::string(roster[a]->name())};
      for (const double r : ratios[a]) row.push_back(fmt(r));
      print_row(row);
    }
  }
  std::printf("\n(expected shape: coverage misses vanish for randomized rows as\n"
              " N -> psi; deterministic rows are 0 everywhere)\n");
  return 0;
}
